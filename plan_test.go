package prodsys

import (
	"errors"
	"io"
	"strings"
	"testing"

	"prodsys/internal/workload"
)

// TestPlanExplainCoversFiftyRuleWorkload is the acceptance check on
// the Plan/Explain API: after a 200-op run of the 50-rule payroll
// program, sys.Plans must return at least one plan per rule, every
// condition element of every plan must render both estimated and
// actual cardinalities, and the plan cache must have served hits.
func TestPlanExplainCoversFiftyRuleWorkload(t *testing.T) {
	sys, _, res := tracedPayrollRun(t, MatcherCore, 200)
	if res.Firings == 0 {
		t.Fatal("no firings")
	}
	for _, rule := range sys.RuleNames() {
		plans, err := sys.Plans(rule)
		if err != nil {
			t.Fatalf("Plans(%s): %v", rule, err)
		}
		if len(plans) == 0 {
			t.Fatalf("Plans(%s): no plans", rule)
		}
		best, err := sys.Plan(rule)
		if err != nil || best == nil {
			t.Fatalf("Plan(%s): %v", rule, err)
		}
		for _, p := range plans {
			if p.Rule != rule {
				t.Fatalf("plan for %s claims rule %s", rule, p.Rule)
			}
			out := p.String()
			for _, s := range p.Steps {
				if s.Class == "" {
					t.Fatalf("%s: step with no class:\n%s", rule, out)
				}
			}
			if got := strings.Count(out, "est="); got != len(p.Steps) {
				t.Fatalf("%s: %d est= renderings for %d steps:\n%s", rule, got, len(p.Steps), out)
			}
			if got := strings.Count(out, "actual="); got != len(p.Steps) {
				t.Fatalf("%s: %d actual= renderings for %d steps:\n%s", rule, got, len(p.Steps), out)
			}
		}
	}
	m := sys.Metrics()
	if m.Planner.PlanCacheHits == 0 {
		t.Error("plan cache served no hits across the run")
	}
	if m.Planner.PlansBuilt == 0 {
		t.Error("no plans built")
	}
	if rate := m.Planner.CacheHitRate(); rate <= 0 || rate > 1 {
		t.Errorf("CacheHitRate = %v", rate)
	}
}

// TestPlannerOptionModes pins the Options.Planner contract: the zero
// value and PlannerCost attach a planner, PlannerFixed answers Plan
// with ErrNoPlanner, and an unknown mode fails Load.
func TestPlannerOptionModes(t *testing.T) {
	src := workload.PayrollRules(1, false)
	for _, mode := range []Planner{"", PlannerCost} {
		sys, err := Load(src, Options{Planner: mode, Out: io.Discard})
		if err != nil {
			t.Fatalf("mode %q: %v", mode, err)
		}
		if _, err := sys.Plans("pay-0"); err != nil {
			t.Fatalf("mode %q: Plans: %v", mode, err)
		}
	}
	sys, err := Load(src, Options{Planner: PlannerFixed, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Plan("pay-0"); !errors.Is(err, ErrNoPlanner) {
		t.Fatalf("fixed-mode Plan err = %v, want ErrNoPlanner", err)
	}
	if _, err := Load(src, Options{Planner: "bogus", Out: io.Discard}); !errors.Is(err, ErrUnknownPlanner) {
		t.Fatalf("bogus mode err = %v, want ErrUnknownPlanner", err)
	}
	sys, err = Load(src, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Plan("ghost"); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("unknown rule err = %v, want ErrUnknownRule", err)
	}
}
