// Package analysis computes the static rule-interaction graph underlying
// §5.2's concurrency argument: when transaction T_i fires, which other
// rules can it add to the conflict set (the Δadd_i sets) and which can it
// delete (Δdel_i)? Two rules with no interaction commute — their firings
// interleave freely — so the fraction of non-interacting pairs estimates
// the concurrency available to the parallel executor (the benefit
// estimates the paper attributes to [RASC87]).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"prodsys/internal/lang"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

// Effect describes how one rule's actions touch a class.
type Effect struct {
	Class string
	// Inserts reports a make (or the insert half of a modify).
	Inserts bool
	// Deletes reports a remove (or the delete half of a modify).
	Deletes bool
	// Restrictions known statically about inserted tuples (constant
	// assignments from make/modify), used to prune impossible enablings.
	Consts []relation.Restriction
}

// effectsOf derives a rule's write effects per class.
func effectsOf(r *rules.Rule) []Effect {
	byClass := map[string]*Effect{}
	get := func(class string) *Effect {
		if e, ok := byClass[class]; ok {
			return e
		}
		e := &Effect{Class: class}
		byClass[class] = e
		return e
	}
	for _, act := range r.Actions {
		switch act.Kind {
		case lang.ActMake:
			e := get(act.Class)
			e.Inserts = true
			e.Consts = append(e.Consts, constAssigns(r, act, act.Class)...)
		case lang.ActRemove:
			get(r.CEs[act.CE-1].Class).Deletes = true
		case lang.ActModify:
			e := get(r.CEs[act.CE-1].Class)
			e.Deletes = true
			e.Inserts = true
			e.Consts = append(e.Consts, constAssigns(r, act, e.Class)...)
		}
	}
	out := make([]Effect, 0, len(byClass))
	for _, e := range byClass {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// constAssigns extracts the constant attribute assignments of an action.
func constAssigns(r *rules.Rule, act *lang.Action, class string) []relation.Restriction {
	var out []relation.Restriction
	for _, as := range act.Assigns {
		if as.Term.Kind != lang.TermConst {
			continue
		}
		// Position resolution needs the class schema; find it via any CE
		// of the class or skip when unavailable.
		pos := -1
		for _, ce := range r.CEs {
			if ce.Class == class {
				if p, ok := ce.Schema.Pos(as.Attr); ok {
					pos = p
				}
				break
			}
		}
		if pos < 0 {
			continue
		}
		out = append(out, relation.Restriction{Pos: pos, Op: value.OpEq, Val: as.Term.Val})
	}
	return out
}

// mayAffect reports whether an effect on a class can change the
// satisfaction of the given condition element: a compatible insert
// enables a positive CE and disables (blocks) a negated one; a delete
// disables a positive CE and enables a negated one.
func mayAffect(e Effect, ce *rules.CE) (enables, disables bool) {
	if e.Class != ce.Class {
		return false, false
	}
	// An insert whose constant assignments contradict the CE's constant
	// restrictions can never match it.
	insertCompatible := e.Inserts && !contradicts(e.Consts, ce.Consts)
	if ce.Negated {
		return e.Deletes, insertCompatible
	}
	return insertCompatible, e.Deletes
}

// contradicts reports whether the statically-known inserted values can
// never satisfy the CE's constant restrictions (equality conflicts only;
// anything uncertain counts as compatible).
func contradicts(assigns, consts []relation.Restriction) bool {
	for _, a := range assigns {
		for _, c := range consts {
			if a.Pos != c.Pos || c.Op != value.OpEq {
				continue
			}
			if !value.Equal(a.Val, c.Val) {
				return true
			}
		}
	}
	return false
}

// Interaction summarizes how rule A's firing can affect rule B.
type Interaction struct {
	Enables  bool // A's actions can add instantiations of B (Δadd)
	Disables bool // A's actions can remove instantiations of B (Δdel)
}

// Graph is the rule-interaction matrix.
type Graph struct {
	Rules []*rules.Rule
	// Edges[i][j] describes rule i's effect on rule j (i ≠ j; the
	// self-edge is included because a rule can re-enable itself).
	Edges [][]Interaction
}

// Build computes the interaction graph of a rule set.
func Build(set *rules.Set) *Graph {
	g := &Graph{Rules: set.Rules}
	effects := make([][]Effect, len(set.Rules))
	for i, r := range set.Rules {
		effects[i] = effectsOf(r)
	}
	g.Edges = make([][]Interaction, len(set.Rules))
	for i := range set.Rules {
		g.Edges[i] = make([]Interaction, len(set.Rules))
		for j, rb := range set.Rules {
			var inter Interaction
			for _, e := range effects[i] {
				for _, ce := range rb.CEs {
					en, dis := mayAffect(e, ce)
					inter.Enables = inter.Enables || en
					inter.Disables = inter.Disables || dis
				}
			}
			g.Edges[i][j] = inter
		}
	}
	return g
}

// Independent reports whether two rules commute: neither's firing can
// enable or disable the other. Same-class insert-insert pairs commute
// (each creates its own tuple), and delete conflicts are already covered
// by the Δdel edges (a remove on a class disables every rule positively
// dependent on it), so no separate write-write check is needed.
func (g *Graph) Independent(i, j int) bool {
	if i == j {
		return false
	}
	a, b := g.Edges[i][j], g.Edges[j][i]
	return !a.Enables && !a.Disables && !b.Enables && !b.Disables
}

// ConcurrencyPotential returns the fraction of distinct rule pairs that
// are independent — a static estimate of how much the §5 concurrent
// executor can interleave.
func (g *Graph) ConcurrencyPotential() float64 {
	n := len(g.Rules)
	if n < 2 {
		return 0
	}
	pairs, indep := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs++
			if g.Independent(i, j) {
				indep++
			}
		}
	}
	return float64(indep) / float64(pairs)
}

// String renders the interaction matrix.
func (g *Graph) String() string {
	var b strings.Builder
	for i, r := range g.Rules {
		for j, s := range g.Rules {
			e := g.Edges[i][j]
			if !e.Enables && !e.Disables {
				continue
			}
			verbs := []string{}
			if e.Enables {
				verbs = append(verbs, "enables")
			}
			if e.Disables {
				verbs = append(verbs, "disables")
			}
			fmt.Fprintf(&b, "%s %s %s\n", r.Name, strings.Join(verbs, "+"), s.Name)
		}
	}
	return b.String()
}
