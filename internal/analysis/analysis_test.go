package analysis

import (
	"strings"
	"testing"

	"prodsys/internal/rules"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(set)
}

func edge(t *testing.T, g *Graph, from, to string) Interaction {
	t.Helper()
	fi, ti := -1, -1
	for i, r := range g.Rules {
		if r.Name == from {
			fi = i
		}
		if r.Name == to {
			ti = i
		}
	}
	if fi < 0 || ti < 0 {
		t.Fatalf("rules %s/%s not found", from, to)
	}
	return g.Edges[fi][ti]
}

func TestEnablingThroughMake(t *testing.T) {
	g := build(t, `
(literalize A x)
(literalize B x)
(p producer (A ^x <v>) --> (make B ^x <v>))
(p consumer (B ^x <v>) --> (remove 1))`)
	e := edge(t, g, "producer", "consumer")
	if !e.Enables || e.Disables {
		t.Fatalf("producer→consumer = %+v", e)
	}
	back := edge(t, g, "consumer", "producer")
	if back.Enables || back.Disables {
		t.Fatalf("consumer→producer = %+v", back)
	}
}

func TestDisablingThroughRemove(t *testing.T) {
	g := build(t, `
(literalize A x)
(p eater (A ^x <v>) --> (remove 1))
(p watcher (A ^x > 5) --> (halt))`)
	e := edge(t, g, "eater", "watcher")
	if !e.Disables {
		t.Fatalf("eater should disable watcher: %+v", e)
	}
	// eater also disables itself (consumes its own support).
	self := edge(t, g, "eater", "eater")
	if !self.Disables {
		t.Fatalf("self edge: %+v", self)
	}
}

func TestNegationInvertsPolarity(t *testing.T) {
	g := build(t, `
(literalize A x)
(literalize B x)
(p maker (A ^x <v>) --> (make B ^x <v>))
(p lonely (A ^x <v>) - (B ^x <v>) --> (halt))`)
	e := edge(t, g, "maker", "lonely")
	// Inserting B blocks lonely's negated CE: a disable.
	if !e.Disables {
		t.Fatalf("maker should disable lonely: %+v", e)
	}
	g2 := build(t, `
(literalize A x)
(literalize B x)
(p remover (B ^x <v>) --> (remove 1))
(p lonely (A ^x <v>) - (B ^x <v>) --> (halt))`)
	e2 := edge(t, g2, "remover", "lonely")
	// Deleting B can unblock lonely: an enable.
	if !e2.Enables {
		t.Fatalf("remover should enable lonely: %+v", e2)
	}
}

func TestConstantContradictionPrunes(t *testing.T) {
	g := build(t, `
(literalize A tag x)
(p redMaker (A ^tag seed ^x <v>) --> (make A ^tag red ^x <v>))
(p blueWatcher (A ^tag blue) --> (halt))
(p redWatcher (A ^tag red) --> (halt))`)
	if e := edge(t, g, "redMaker", "blueWatcher"); e.Enables {
		t.Fatalf("tag=red cannot enable a tag=blue condition: %+v", e)
	}
	if e := edge(t, g, "redMaker", "redWatcher"); !e.Enables {
		t.Fatalf("tag=red must enable the red watcher: %+v", e)
	}
}

func TestIndependenceAndPotential(t *testing.T) {
	// Two rules on disjoint classes with disjoint writes: independent.
	g := build(t, `
(literalize A x)
(literalize B x)
(literalize DoneA x)
(literalize DoneB x)
(p pa (A ^x <v>) --> (remove 1) (make DoneA ^x <v>))
(p pb (B ^x <v>) --> (remove 1) (make DoneB ^x <v>))`)
	if !g.Independent(0, 1) {
		t.Fatal("pa and pb should be independent")
	}
	if g.Independent(0, 0) {
		t.Fatal("a rule is never independent of itself")
	}
	if got := g.ConcurrencyPotential(); got != 1.0 {
		t.Fatalf("potential = %v, want 1.0", got)
	}

	// A shared insert-only target does not break independence: the two
	// inserts create distinct tuples and commute.
	g2 := build(t, `
(literalize A x)
(literalize B x)
(literalize Done tag)
(p pa (A ^x <v>) --> (remove 1) (make Done ^tag a))
(p pb (B ^x <v>) --> (remove 1) (make Done ^tag b))`)
	if !g2.Independent(0, 1) {
		t.Fatal("insert-insert on Done should commute")
	}
	// But a shared *consumed* class does: both rules remove from A.
	g3 := build(t, `
(literalize A x)
(p p1 (A ^x <v>) --> (remove 1))
(p p2 (A ^x > 3) --> (remove 1))`)
	if g3.Independent(0, 1) {
		t.Fatal("rules consuming the same class must interact")
	}
	if got := g3.ConcurrencyPotential(); got != 0 {
		t.Fatalf("potential = %v, want 0", got)
	}
}

func TestPotentialSmallSets(t *testing.T) {
	g := build(t, `(literalize A x) (p only (A ^x 1) --> (halt))`)
	if g.ConcurrencyPotential() != 0 {
		t.Fatal("single rule has no pairs")
	}
}

func TestStringRendering(t *testing.T) {
	g := build(t, `
(literalize A x)
(literalize B x)
(p producer (A ^x <v>) --> (make B ^x <v>))
(p consumer (B ^x <v>) --> (remove 1))`)
	out := g.String()
	if !strings.Contains(out, "producer enables consumer") {
		t.Fatalf("rendering:\n%s", out)
	}
	if !strings.Contains(out, "consumer disables consumer") {
		t.Fatalf("self-disable missing:\n%s", out)
	}
}

func TestModifyCountsAsBoth(t *testing.T) {
	g := build(t, `
(literalize A x)
(p toggler (A ^x <v>) --> (modify 1 ^x 9))
(p watcher (A ^x 9) --> (halt))`)
	e := edge(t, g, "toggler", "watcher")
	if !e.Enables || !e.Disables {
		t.Fatalf("modify should both enable and disable: %+v", e)
	}
}
