// Package crashcheck holds the crash-recovery equivalence property
// tests: a system killed at ANY point — any WAL record boundary, any
// torn byte offset, any injected write fault — must recover to working
// memory and a conflict set identical to some committed prefix of the
// run it was killed in. The oracle is the live run itself: the state
// after every committed unit is captured and indexed by the wal_appends
// counter, then each crash image is rebooted and compared.
package crashcheck

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"prodsys"
	"prodsys/internal/faultfs"
	"prodsys/internal/wal"
)

// crashSrc declares the workload rulebase. No initial facts: everything
// enters working memory through the transactional batch API or rule
// firings, so every tuple of the final state traveled through the WAL.
const crashSrc = `
(literalize Job id state)
(literalize Done id)
(literalize Elem x)

(p finish
    (Job ^id <i> ^state ready)
  -->
    (modify 1 ^state done)
    (make Done ^id <i>))

(p lonely
    (Elem ^x <v>)
  - (Done ^id <v>)
  -->
    (make Done ^id <v>))
`

const walPath = "wm.wal"

// snap is one observable state: canonical WM dump plus the sorted
// conflict-set keys. Two snaps are equal iff the recovered system is
// indistinguishable from the live one at that unit boundary.
type snap struct {
	wm   string
	keys string
}

func capture(s *prodsys.System) snap {
	keys := s.ConflictKeys()
	sort.Strings(keys)
	return snap{wm: s.WM(), keys: strings.Join(keys, "\n")}
}

func appends(s *prodsys.System) int {
	return int(s.Metrics().Durability.WALAppends)
}

// drive runs the workload: each iteration commits one batch (asserts
// plus periodic retracts) and then fires at most one rule. After every
// successful operation the state is recorded under the current
// wal_appends count; on the first error (a crashed filesystem) the
// in-memory state is still recorded — the unit may have reached the log
// even though the call failed — and driving stops.
func drive(t *testing.T, sys *prodsys.System, iters int, states map[int]snap) {
	t.Helper()
	var elems []uint64
	record := func() { states[appends(sys)] = capture(sys) }
	record()
	for i := 1; i <= iters; i++ {
		b := sys.Batch().
			Assert("Job", i, "ready").
			Assert("Elem", i%5)
		if i%3 == 0 && len(elems) > 0 {
			b.Retract("Elem", elems[0])
			elems = elems[1:]
		}
		ids, err := b.Commit()
		record()
		if err != nil {
			return
		}
		elems = append(elems, ids[1])
		// MaxFirings 1 makes every productive Run call end with the
		// firing-cap error; the single firing it performed still
		// committed, so only other errors (a crashed disk) stop the run.
		if _, err := sys.Run(); err != nil && !strings.Contains(err.Error(), "firing cap") {
			record()
			return
		}
		record()
	}
}

// load opens the workload system over the given (fault-injectable)
// filesystem. MaxFirings 1 turns each Run call into a single rule
// firing, so the oracle sees a state at every unit boundary.
func load(m prodsys.Matcher, fs *faultfs.FS) (*prodsys.System, error) {
	return prodsys.Load(crashSrc, prodsys.Options{
		Matcher:    m,
		MaxFirings: 1,
		Out:        io.Discard,
		WALPath:    walPath,
		WALFS:      fs,
	})
}

// reboot loads a fresh system from a surviving disk image.
func reboot(t *testing.T, m prodsys.Matcher, image map[string][]byte) *prodsys.System {
	t.Helper()
	sys, err := prodsys.Load(crashSrc, prodsys.Options{
		Matcher: m,
		Out:     io.Discard,
		WALPath: walPath,
		WALFS:   faultfs.FromSnapshot(image),
	})
	if err != nil {
		t.Fatalf("recovery load: %v", err)
	}
	return sys
}

// TestRecoveryAtEveryRecordBoundary drives a 200+-transaction workload
// once per matcher, then crashes it at every single WAL record boundary
// by truncating the log to that prefix and rebooting. The recovered
// state must equal the live state captured after exactly the units
// committed in that prefix — for all seven matching algorithms, since
// recovery replays through each matcher's own maintenance path.
func TestRecoveryAtEveryRecordBoundary(t *testing.T) {
	const iters = 105
	for _, m := range prodsys.Matchers() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			t.Parallel()
			fs := faultfs.New()
			sys, err := load(m, fs)
			if err != nil {
				t.Fatal(err)
			}
			states := map[int]snap{}
			drive(t, sys, iters, states)
			total := appends(sys)
			if total < 200 {
				t.Fatalf("workload produced %d units, want >= 200", total)
			}
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}

			data := fs.Snapshot()[walPath]
			_, units, bounds, torn := wal.ScanLog(data)
			if torn {
				t.Fatal("clean shutdown left a torn log")
			}
			if len(units) != total {
				t.Fatalf("log holds %d units, counter says %d", len(units), total)
			}
			for _, b := range bounds {
				prefix := data[:b]
				_, u, _, _ := wal.ScanLog(prefix)
				want, ok := states[len(u)]
				if !ok {
					t.Fatalf("no oracle state for %d units", len(u))
				}
				rec := reboot(t, m, map[string][]byte{walPath: prefix})
				if got := capture(rec); got != want {
					t.Fatalf("crash at byte %d (%d units): recovered state diverges\nwm:\n%s\nwant wm:\n%s\nkeys:\n%s\nwant keys:\n%s",
						b, len(u), got.wm, want.wm, got.keys, want.keys)
				}
				info := rec.Recovery()
				if !info.Recovered || info.Txns != len(u) || info.TornTail {
					t.Fatalf("crash at byte %d: recovery info %+v, want %d clean txns", b, info, len(u))
				}
				rec.Close()
			}
		})
	}
}

// TestRecoveryFromTornTails crashes mid-record: for a sample of byte
// offsets strictly inside records, recovery must land on the last full
// unit before the tear and report the torn tail.
func TestRecoveryFromTornTails(t *testing.T) {
	fs := faultfs.New()
	sys, err := load(prodsys.MatcherCore, fs)
	if err != nil {
		t.Fatal(err)
	}
	states := map[int]snap{}
	drive(t, sys, 40, states)
	sys.Close()

	data := fs.Snapshot()[walPath]
	_, _, bounds, _ := wal.ScanLog(data)
	for i := 0; i+1 < len(bounds); i += 3 {
		lo, hi := bounds[i], bounds[i+1]
		if hi-lo < 2 {
			continue
		}
		cut := lo + (hi-lo)/2
		prefix := data[:cut]
		_, u, _, _ := wal.ScanLog(prefix)
		rec := reboot(t, prodsys.MatcherCore, map[string][]byte{walPath: prefix})
		if got, want := capture(rec), states[len(u)]; got != want {
			t.Fatalf("tear at byte %d: recovered state diverges from unit %d", cut, len(u))
		}
		if info := rec.Recovery(); !info.TornTail {
			t.Fatalf("tear at byte %d not reported: %+v", cut, info)
		}
		rec.Close()
	}
}

// TestCrashAtEveryWrite is the full fault-injection sweep, with
// checkpoint compaction in the loop: the workload reruns once per
// write the clean run performs, crashing (torn write, frozen
// filesystem) at that write. Whatever survives on the frozen disk —
// mid-unit, mid-checkpoint, between the checkpoint rename and the log
// reset — must reboot into SOME state the live run passed through.
func TestCrashAtEveryWrite(t *testing.T) {
	const iters = 25
	run := func(crashAt, keep int) (map[int]snap, *faultfs.FS) {
		fs := faultfs.New()
		if crashAt > 0 {
			fs.FailWrite(crashAt, keep, true)
		}
		sys, err := prodsys.Load(crashSrc, prodsys.Options{
			Matcher:            prodsys.MatcherCore,
			MaxFirings:         1,
			Out:                io.Discard,
			WALPath:            walPath,
			WALFS:              fs,
			WALCheckpointEvery: 8,
		})
		states := map[int]snap{}
		if err != nil {
			return states, fs // crashed inside Load: only pre-open states exist
		}
		drive(t, sys, iters, states)
		sys.Close()
		return states, fs
	}

	// Clean run: learn the write count and the full oracle.
	clean, cleanFS := run(0, 0)
	if cleanFS.Crashed() {
		t.Fatal("clean run crashed")
	}
	legal := map[snap]bool{}
	for _, st := range clean {
		legal[st] = true
	}
	total := cleanFS.Writes()
	if total < 100 {
		t.Fatalf("clean run performed %d writes, workload too small", total)
	}

	for k := 1; k <= total; k++ {
		states, fs := run(k, k%4)
		for _, st := range states {
			legal[st] = true // states reached before the crash surfaced
		}
		rec, err := prodsys.Load(crashSrc, prodsys.Options{
			Matcher:            prodsys.MatcherCore,
			Out:                io.Discard,
			WALPath:            walPath,
			WALFS:              faultfs.FromSnapshot(fs.Snapshot()),
			WALCheckpointEvery: 8,
		})
		if err != nil {
			t.Fatalf("crash at write %d: recovery load: %v", k, err)
		}
		if got := capture(rec); !legal[got] {
			t.Fatalf("crash at write %d: recovered to a state the live run never committed\nwm:\n%s\nkeys:\n%s",
				k, got.wm, got.keys)
		}
		rec.Close()
	}
}

// TestCheckpointCompactionEquivalence reruns the boundary sweep against
// a log that has been checkpoint-compacted mid-run: recovery must see
// checkpoint + tail as exactly the same world as the uncompacted log.
func TestCheckpointCompactionEquivalence(t *testing.T) {
	for _, every := range []int{1, 8} {
		t.Run(fmt.Sprintf("every=%d", every), func(t *testing.T) {
			fs := faultfs.New()
			sys, err := prodsys.Load(crashSrc, prodsys.Options{
				Matcher:            prodsys.MatcherRete,
				MaxFirings:         1,
				Out:                io.Discard,
				WALPath:            walPath,
				WALFS:              fs,
				WALCheckpointEvery: every,
			})
			if err != nil {
				t.Fatal(err)
			}
			states := map[int]snap{}
			drive(t, sys, 30, states)
			final := capture(sys)
			if n := sys.Metrics().Durability.WALCheckpoints; n == 0 {
				t.Fatal("no checkpoints taken")
			}
			sys.Close()

			rec := reboot(t, prodsys.MatcherRete, cleanImage(fs))
			if got := capture(rec); got != final {
				t.Fatalf("recovery after compaction diverges\nwm:\n%s\nwant:\n%s", got.wm, final.wm)
			}
			rec.Close()
		})
	}
}

// cleanImage snapshots a healthy filesystem for reboot.
func cleanImage(fs *faultfs.FS) map[string][]byte { return fs.Snapshot() }

// TestTruncationAtGroupCommitBoundaries cuts the log of a group-commit
// run at exactly every committed-unit boundary — the cut a replica
// promotion makes with TruncateTail — and asserts the reboot is
// perfectly clean: no torn tail reported, exactly the prefix's units
// replayed, state equal to the live oracle. One byte past the same
// boundary must instead report a torn tail yet recover to the very
// same state: the partial record carries no committed unit.
func TestTruncationAtGroupCommitBoundaries(t *testing.T) {
	fs := faultfs.New()
	sys, err := prodsys.Load(crashSrc, prodsys.Options{
		Matcher:    prodsys.MatcherRete,
		MaxFirings: 1,
		Out:        io.Discard,
		WALPath:    walPath,
		WALFS:      fs,
		WALSync:    prodsys.WALSyncGroup,
	})
	if err != nil {
		t.Fatal(err)
	}
	states := map[int]snap{}
	drive(t, sys, 30, states)
	sys.Close()

	data := fs.Snapshot()[walPath]
	_, _, bounds, torn := wal.ScanLog(data)
	if torn {
		t.Fatal("clean shutdown left a torn log")
	}
	unitCuts := 0
	for _, b := range bounds {
		if wal.LastUnitBoundary(data[:b]) != b {
			continue // record boundary mid-unit, not a commit boundary
		}
		unitCuts++
		prefix := data[:b]
		_, u, _, _ := wal.ScanLog(prefix)
		want, ok := states[len(u)]
		if !ok {
			t.Fatalf("no oracle state for %d units", len(u))
		}

		rec := reboot(t, prodsys.MatcherRete, map[string][]byte{walPath: prefix})
		if info := rec.Recovery(); info.TornTail || info.Txns != len(u) {
			t.Fatalf("cut at unit boundary %d: recovery %+v, want %d clean txns", b, info, len(u))
		}
		if got := capture(rec); got != want {
			t.Fatalf("cut at unit boundary %d: state diverges from live run", b)
		}
		rec.Close()

		if b < int64(len(data)) {
			past := data[:b+1]
			recTorn := reboot(t, prodsys.MatcherRete, map[string][]byte{walPath: past})
			if info := recTorn.Recovery(); !info.TornTail {
				t.Fatalf("cut one byte past boundary %d: torn tail not reported: %+v", b, info)
			}
			if got := capture(recTorn); got != want {
				t.Fatalf("cut one byte past boundary %d: state diverges", b)
			}
			recTorn.Close()
		}
	}
	if unitCuts < 30 {
		t.Fatalf("exercised only %d unit boundaries", unitCuts)
	}
}
