package relation

import (
	"strings"
	"testing"

	"prodsys/internal/value"
)

// FuzzDecodeValue asserts the dump/WAL value decoder never panics and
// that whatever it accepts survives an encode/decode round trip.
func FuzzDecodeValue(f *testing.F) {
	for _, v := range []value.V{
		value.OfInt(-42), value.OfFloat(3.25), value.OfSym("Toy"),
		value.OfString("tab\tand\nnewline"), {},
	} {
		f.Add(EncodeValue(v))
	}
	f.Add("i:")
	f.Add("s:\"unterminated")
	f.Add("q:zzz")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := DecodeValue(s)
		if err != nil {
			return
		}
		again, err := DecodeValue(EncodeValue(v))
		if err != nil {
			t.Fatalf("re-decode of accepted %q: %v", s, err)
		}
		if again.Kind() != v.Kind() {
			t.Fatalf("round trip of %q changed kind: %v vs %v", s, v.Kind(), again.Kind())
		}
		if !v.IsNil() && !value.Equal(v, again) {
			t.Fatalf("round trip of %q changed value: %v vs %v", s, v, again)
		}
	})
}

// FuzzRestore asserts the dump reader never panics on arbitrary input
// and stays all-or-nothing: when Restore reports an error the catalog
// is untouched, and when it succeeds a second restore of the same dump
// must fail (every ID is now live).
func FuzzRestore(f *testing.F) {
	f.Add("#relation Emp name salary\n1\ty:Ann\ti:100\n2\ty:Bob\tf:2.5\n")
	f.Add("#relation Emp name salary\n1\ty:a\ti:1\n1\ty:b\ti:2\n")
	f.Add("#relation Ghost x\n1\ty:a\n")
	f.Add("1\ty:a\n")
	f.Add("#relation Emp name salary\n9\ts:\"x\"\tn:\n\n")
	f.Fuzz(func(t *testing.T, dump string) {
		db := NewDB(nil)
		db.Create("Emp", "name", "salary")
		db.MustGet("Emp").CreateIndex(0)
		restored, err := db.Restore(strings.NewReader(dump))
		count := 0
		db.MustGet("Emp").Scan(func(TupleID, Tuple) bool { count++; return true })
		if err != nil {
			if count != 0 || restored != nil {
				t.Fatalf("failed restore mutated the catalog: %d tuples, %v", count, restored)
			}
			return
		}
		if count != len(restored) {
			t.Fatalf("restored %d tuples but %d live", len(restored), count)
		}
		if len(restored) > 0 {
			if _, err := db.Restore(strings.NewReader(dump)); err == nil {
				t.Fatal("second restore of the same IDs succeeded")
			}
		}
	})
}
