package relation

import "sort"

// DeltaEntry is one working-memory change within a Delta: a tuple
// together with the ID it is (or was) stored under.
type DeltaEntry struct {
	ID    TupleID
	Tuple Tuple
}

// Delta groups a batch of working-memory changes per class: the unit the
// set-oriented maintenance pipeline processes at a time. Where the
// tuple-at-a-time path runs the full match-maintenance process once per
// update, a Delta lets the matchers amortize their per-class work — one
// COND-relation scan per (class, condition element) pair, one join
// re-evaluation per affected rule, one pass over each beta memory — over
// every tuple in the batch (the set-at-a-time processing of §4.2/§5.1).
//
// Insertions and deletions are kept separate; a maintenance pass applies
// all deletions before all insertions, which yields the same final
// conflict set as any sequential interleaving of the same net changes.
// Delta is not safe for concurrent use.
type Delta struct {
	inserts map[string][]DeltaEntry
	deletes map[string][]DeltaEntry
}

// NewDelta creates an empty batch.
func NewDelta() *Delta {
	return &Delta{
		inserts: make(map[string][]DeltaEntry),
		deletes: make(map[string][]DeltaEntry),
	}
}

// AddInsert records that tuple t was stored in class under id.
func (d *Delta) AddInsert(class string, id TupleID, t Tuple) {
	d.inserts[class] = append(d.inserts[class], DeltaEntry{ID: id, Tuple: t})
}

// AddDelete records that the identified tuple (with value t at removal
// time) was removed from class.
func (d *Delta) AddDelete(class string, id TupleID, t Tuple) {
	d.deletes[class] = append(d.deletes[class], DeltaEntry{ID: id, Tuple: t})
}

// CancelInsert withdraws a pending insertion (a tuple both asserted and
// retracted within one batch nets out to no change). It reports whether
// the entry was found.
func (d *Delta) CancelInsert(class string, id TupleID) bool {
	list := d.inserts[class]
	for i, e := range list {
		if e.ID == id {
			d.inserts[class] = append(list[:i], list[i+1:]...)
			return true
		}
	}
	return false
}

// Inserts returns the batched insertions for one class.
func (d *Delta) Inserts(class string) []DeltaEntry { return d.inserts[class] }

// Deletes returns the batched deletions for one class.
func (d *Delta) Deletes(class string) []DeltaEntry { return d.deletes[class] }

// Classes lists every class touched by the batch, sorted so maintenance
// order is deterministic.
func (d *Delta) Classes() []string {
	seen := make(map[string]bool, len(d.inserts)+len(d.deletes))
	var out []string
	for c, list := range d.inserts {
		if len(list) > 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for c, list := range d.deletes {
		if len(list) > 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Tuples counts the changes in the batch.
func (d *Delta) Tuples() int {
	n := 0
	for _, list := range d.inserts {
		n += len(list)
	}
	for _, list := range d.deletes {
		n += len(list)
	}
	return n
}

// Empty reports whether the batch holds no changes.
func (d *Delta) Empty() bool { return d.Tuples() == 0 }
