package relation

import (
	"sort"

	"prodsys/internal/value"
)

// colStore is the column-major backend: one value array per attribute,
// a parallel ascending ID array, and a tombstone bitmap. It is built
// for the set-oriented ApplyDelta path — a batch insert is one append
// per column, and an unindexed selection touches a single column
// instead of materializing whole tuples. Deletions tombstone in place;
// the arrays compact once tombstones dominate.
type colStore struct {
	arity   int
	ids     []TupleID   // ascending; includes tombstoned rows until compaction
	cols    [][]value.V // cols[pos][row]
	dead    []bool
	nDead   int
	indexes map[int]*attrIndex
}

// colCompactMin is the tombstone count below which compaction never
// runs; beyond it the store compacts when at least half the rows are
// dead, keeping amortized delete cost constant.
const colCompactMin = 64

func newColStore(arity int) *colStore {
	s := &colStore{arity: arity, indexes: make(map[int]*attrIndex)}
	s.cols = make([][]value.V, arity)
	return s
}

func (s *colStore) Kind() StorageKind { return StorageColumnar }

func (s *colStore) Len() int { return len(s.ids) - s.nDead }

// rowOf binary-searches the ID array; ok is false for unknown or
// tombstoned IDs.
func (s *colStore) rowOf(id TupleID) (int, bool) {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if i < len(s.ids) && s.ids[i] == id && !s.dead[i] {
		return i, true
	}
	return i, false
}

// tuple materializes row i.
func (s *colStore) tuple(i int) Tuple {
	t := make(Tuple, s.arity)
	for pos := range s.cols {
		t[pos] = s.cols[pos][i]
	}
	return t
}

func (s *colStore) Get(id TupleID) (Tuple, bool) {
	i, ok := s.rowOf(id)
	if !ok {
		return nil, false
	}
	return s.tuple(i), true
}

func (s *colStore) Insert(id TupleID, t Tuple) {
	if n := len(s.ids); n == 0 || s.ids[n-1] < id {
		// Common case: IDs arrive in increasing order — pure append.
		s.ids = append(s.ids, id)
		s.dead = append(s.dead, false)
		for pos := range s.cols {
			s.cols[pos] = append(s.cols[pos], t[pos])
		}
	} else {
		// Out-of-order ID (restore/recovery): positional insert. A
		// tombstoned row under the same ID is revived in place rather
		// than duplicated.
		i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
		if i < len(s.ids) && s.ids[i] == id {
			for pos := range s.cols {
				s.cols[pos][i] = t[pos]
			}
			s.dead[i] = false
			s.nDead--
			for pos, ix := range s.indexes {
				ix.add(t[pos], id)
			}
			return
		}
		s.ids = append(s.ids, 0)
		copy(s.ids[i+1:], s.ids[i:])
		s.ids[i] = id
		s.dead = append(s.dead, false)
		copy(s.dead[i+1:], s.dead[i:])
		s.dead[i] = false
		for pos := range s.cols {
			s.cols[pos] = append(s.cols[pos], value.V{})
			copy(s.cols[pos][i+1:], s.cols[pos][i:])
			s.cols[pos][i] = t[pos]
		}
	}
	for pos, ix := range s.indexes {
		ix.add(t[pos], id)
	}
}

func (s *colStore) InsertBatch(entries []DeltaEntry) {
	// One growth decision per column for the whole batch.
	for pos := range s.cols {
		if cap(s.cols[pos])-len(s.cols[pos]) < len(entries) {
			grown := make([]value.V, len(s.cols[pos]), len(s.cols[pos])+len(entries))
			copy(grown, s.cols[pos])
			s.cols[pos] = grown
		}
	}
	for _, e := range entries {
		s.Insert(e.ID, e.Tuple)
	}
}

func (s *colStore) Delete(id TupleID) (Tuple, bool) {
	i, ok := s.rowOf(id)
	if !ok {
		return nil, false
	}
	t := s.tuple(i)
	s.dead[i] = true
	s.nDead++
	for pos, ix := range s.indexes {
		ix.remove(t[pos], id)
	}
	if s.nDead >= colCompactMin && s.nDead*2 >= len(s.ids) {
		s.compact()
	}
	return t, true
}

// compact rewrites the arrays without tombstoned rows. Indexes hold
// IDs, not row positions, so they are unaffected.
func (s *colStore) compact() {
	live := 0
	for i := range s.ids {
		if s.dead[i] {
			continue
		}
		s.ids[live] = s.ids[i]
		for pos := range s.cols {
			s.cols[pos][live] = s.cols[pos][i]
		}
		live++
	}
	s.ids = s.ids[:live]
	for pos := range s.cols {
		s.cols[pos] = s.cols[pos][:live]
	}
	s.dead = s.dead[:live]
	for i := range s.dead {
		s.dead[i] = false
	}
	s.nDead = 0
}

func (s *colStore) IDs() []TupleID {
	out := make([]TupleID, 0, s.Len())
	for i, id := range s.ids {
		if !s.dead[i] {
			out = append(out, id)
		}
	}
	return out
}

func (s *colStore) Scan(fn func(id TupleID, t Tuple) bool) {
	for i, id := range s.ids {
		if s.dead[i] {
			continue
		}
		if !fn(id, s.tuple(i)) {
			return
		}
	}
}

func (s *colStore) SelectEq(pos int, v value.V) ([]TupleID, bool) {
	if ix := s.indexes[pos]; ix != nil {
		return ix.lookupIDs(v), true
	}
	// Unindexed equality touches one column — the columnar advantage.
	col := s.cols[pos]
	var out []TupleID
	for i, id := range s.ids {
		if !s.dead[i] && value.Equal(col[i], v) {
			out = append(out, id)
		}
	}
	return out, false
}

func (s *colStore) SelectRange(pos int, b Bounds) ([]TupleID, bool) {
	if ix := s.indexes[pos]; ix != nil {
		return ix.rangeIDs(b), true
	}
	col := s.cols[pos]
	var out []TupleID
	for i, id := range s.ids {
		if !s.dead[i] && b.Contains(col[i]) {
			out = append(out, id)
		}
	}
	return out, false
}

func (s *colStore) CreateIndex(pos int) {
	if _, exists := s.indexes[pos]; exists {
		return
	}
	ix := newAttrIndex()
	col := s.cols[pos]
	for i, id := range s.ids {
		if !s.dead[i] {
			ix.add(col[i], id)
		}
	}
	s.indexes[pos] = ix
}

func (s *colStore) HasIndex(pos int) bool {
	_, ok := s.indexes[pos]
	return ok
}

func (s *colStore) Clear() {
	s.ids = nil
	s.dead = nil
	s.nDead = 0
	for pos := range s.cols {
		s.cols[pos] = nil
	}
	for _, ix := range s.indexes {
		ix.clear()
	}
}

func (s *colStore) Stats() StoreStats {
	st := StoreStats{Backend: StorageColumnar, Tuples: s.Len()}
	positions := make([]int, 0, len(s.indexes))
	for pos := range s.indexes {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	for _, pos := range positions {
		st.Indexes = append(st.Indexes, IndexStat{Pos: pos, Distinct: s.indexes[pos].distinct()})
	}
	return st
}
