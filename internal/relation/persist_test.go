package relation

import (
	"strings"
	"testing"

	"prodsys/internal/value"
)

func buildSample(t *testing.T) *DB {
	t.Helper()
	db := NewDB(nil)
	emp, _ := db.Create("Emp", "name", "salary", "note")
	db.Create("Dept", "dno")
	emp.Insert(Tuple{value.OfSym("Ann"), value.OfInt(100), value.OfString("line1\nline2")})
	emp.Insert(Tuple{value.OfSym("Bob"), value.OfFloat(2.5), value.V{}})
	dept := db.MustGet("Dept")
	dept.Insert(Tuple{value.OfInt(7)})
	return db
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	db := buildSample(t)
	// Delete one tuple so IDs have a gap.
	db.MustGet("Emp").Insert(Tuple{value.OfSym("Tmp"), value.OfInt(1), value.V{}})
	db.MustGet("Emp").Delete(3)

	var buf strings.Builder
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB(nil)
	db2.Create("Emp", "name", "salary", "note")
	db2.Create("Dept", "dno")
	db2.MustGet("Emp").CreateIndex(0)
	restored, err := db2.Restore(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 3 {
		t.Fatalf("restored %d tuples", len(restored))
	}
	// Tuple IDs preserved.
	got, ok := db2.MustGet("Emp").Get(2)
	if !ok || got[0].AsString() != "Bob" || !got[2].IsNil() {
		t.Fatalf("Bob under id 2: %v %v", got, ok)
	}
	if got[1].Kind() != value.Float || got[1].AsFloat() != 2.5 {
		t.Fatalf("float round trip: %v", got[1])
	}
	ann, _ := db2.MustGet("Emp").Get(1)
	if ann[2].Kind() != value.Str || ann[2].AsString() != "line1\nline2" {
		t.Fatalf("string escape round trip: %v", ann[2])
	}
	// New inserts continue after the restored maximum live ID.
	id, _ := db2.MustGet("Emp").Insert(Tuple{value.OfSym("New"), value.OfInt(1), value.V{}})
	if id != 3 {
		t.Fatalf("next id = %d, want 3", id)
	}
	// Indexes were maintained during restore.
	if hits := db2.MustGet("Emp").SelectEq(0, value.OfSym("Bob")); len(hits) != 1 || hits[0] != 2 {
		t.Fatalf("restored index lookup: %v", hits)
	}
	// Second dump is byte-identical (deterministic order).
	var buf2 strings.Builder
	if err := db2.Dump(&buf2); err != nil {
		t.Fatal(err)
	}
	// db2 has one extra tuple; compare against a fresh dump of db2 only.
	var buf3 strings.Builder
	db2.Dump(&buf3)
	if buf2.String() != buf3.String() {
		t.Fatal("dump is not deterministic")
	}
}

func TestRestoreErrors(t *testing.T) {
	mk := func() *DB {
		db := NewDB(nil)
		db.Create("Emp", "name")
		return db
	}
	cases := []struct {
		name string
		dump string
	}{
		{"unknown relation", "#relation Ghost x\n1\ty:a\n"},
		{"attr count mismatch", "#relation Emp name extra\n"},
		{"attr name mismatch", "#relation Emp wrong\n"},
		{"tuple before header", "1\ty:a\n"},
		{"bad id", "#relation Emp name\nxx\ty:a\n"},
		{"wrong field count", "#relation Emp name\n1\ty:a\ty:b\n"},
		{"bad value", "#relation Emp name\n1\tq:zzz\n"},
		{"bad int", "#relation Emp name\n1\ti:zz\n"},
		{"bad float", "#relation Emp name\n1\tf:zz\n"},
		{"bad string", "#relation Emp name\n1\ts:unquoted\n"},
		{"short value", "#relation Emp name\n1\tx\n"},
		{"duplicate id", "#relation Emp name\n1\ty:a\n1\ty:b\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := mk().Restore(strings.NewReader(tc.dump)); err == nil {
				t.Errorf("Restore(%q) should fail", tc.dump)
			}
		})
	}
}

func TestRestoreSkipsBlankLines(t *testing.T) {
	db := NewDB(nil)
	db.Create("Emp", "name")
	dump := "\n#relation Emp name\n\n1\ty:a\n\n"
	restored, err := db.Restore(strings.NewReader(dump))
	if err != nil || len(restored) != 1 {
		t.Fatalf("restored=%v err=%v", restored, err)
	}
}

func TestEncodeDecodeValueProperty(t *testing.T) {
	vals := []value.V{
		value.OfInt(0), value.OfInt(-42), value.OfInt(1 << 60),
		value.OfFloat(3.14159), value.OfFloat(-0.5),
		value.OfSym("Toy"), value.OfSym("with-dash_und.er"),
		value.OfString(""), value.OfString("tab\tand\nnewline"),
		{},
	}
	for _, v := range vals {
		got, err := DecodeValue(EncodeValue(v))
		if err != nil {
			t.Fatalf("round trip of %v: %v", v, err)
		}
		if v.IsNil() {
			if !got.IsNil() {
				t.Fatalf("nil round trip: %v", got)
			}
			continue
		}
		if got.Kind() != v.Kind() || !value.Equal(got, v) {
			t.Fatalf("round trip of %v gave %v", v, got)
		}
	}
}
