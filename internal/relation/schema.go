// Package relation implements the small relational storage engine the
// paper assumes as its substrate: named relations with positional
// attributes, hash indexes, selection and join access paths, and simulated
// page-I/O accounting.
//
// Working-memory classes declared with OPS5's literalize command map to
// relations here (§3.2 of the paper); the COND relations of the simplified
// and matching-pattern algorithms are also hosted on this engine.
package relation

import (
	"fmt"
	"strings"

	"prodsys/internal/value"
)

// Schema names a relation and its attributes. Attribute types are not
// declared, mirroring OPS5 literalize ("except types are not explicitly
// defined", §3.2).
type Schema struct {
	name  string
	attrs []string
	pos   map[string]int
}

// NewSchema builds a schema, rejecting empty names and duplicate
// attributes.
func NewSchema(name string, attrs ...string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation %s: no attributes", name)
	}
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation %s: empty attribute name at position %d", name, i)
		}
		if _, dup := pos[a]; dup {
			return nil, fmt.Errorf("relation %s: duplicate attribute %q", name, a)
		}
		pos[a] = i
	}
	return &Schema{name: name, attrs: append([]string(nil), attrs...), pos: pos}, nil
}

// MustSchema is NewSchema that panics on error; for tests and fixtures.
func MustSchema(name string, attrs ...string) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attrs returns the attribute names in declaration order.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// Attr returns the attribute name at position i.
func (s *Schema) Attr(i int) string { return s.attrs[i] }

// Pos returns the position of the named attribute.
func (s *Schema) Pos(attr string) (int, bool) {
	p, ok := s.pos[attr]
	return p, ok
}

// String renders the schema as Name(attr1, attr2, ...).
func (s *Schema) String() string {
	return s.name + "(" + strings.Join(s.attrs, ", ") + ")"
}

// Tuple is a row: one value per schema attribute.
type Tuple []value.V

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	return append(Tuple(nil), t...)
}

// Equal reports element-wise value.Equal over two tuples of the same
// arity.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !value.Equal(t[i], u[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Restriction is a single-attribute predicate "attr op value" used by
// selection access paths.
type Restriction struct {
	Pos int
	Op  value.Op
	Val value.V
}

// Satisfies reports whether tuple t meets the restriction.
func (r Restriction) Satisfies(t Tuple) bool {
	if r.Pos < 0 || r.Pos >= len(t) {
		return false
	}
	return r.Op.Apply(t[r.Pos], r.Val)
}

// SatisfiesAll reports whether t meets every restriction.
func SatisfiesAll(t Tuple, rs []Restriction) bool {
	for _, r := range rs {
		if !r.Satisfies(t) {
			return false
		}
	}
	return true
}
