package relation

import (
	"prodsys/internal/metrics"
	"prodsys/internal/value"
)

// JoinCond relates an attribute of a left tuple to an attribute of a
// right tuple: left[LeftPos] Op right[RightPos].
type JoinCond struct {
	LeftPos  int
	RightPos int
	Op       value.Op
}

// Satisfies reports whether the pair (l, r) meets the join condition.
func (jc JoinCond) Satisfies(l, r Tuple) bool {
	return jc.Op.Apply(l[jc.LeftPos], r[jc.RightPos])
}

// JoinPair is one (left, right) result of a join probe.
type JoinPair struct {
	LeftID  TupleID
	RightID TupleID
}

// JoinProbe finds all tuples of rel joining with the single tuple t under
// conds (t plays the left role), optionally pre-filtered by restrictions
// on rel. An equality join condition with an index on rel is used as the
// access path when available; otherwise rel is scanned. This is the
// "degenerate selection" of §4.1: a two-way join against a single new WM
// element reduces to a selection on the other relation.
func JoinProbe(t Tuple, rel *Relation, conds []JoinCond, rs []Restriction) []TupleID {
	rel.stats.Inc(metrics.JoinsComputed)
	// Access path: equality join condition with an index on the right.
	probe := -1
	for i, jc := range conds {
		if jc.Op == value.OpEq && rel.HasIndex(jc.RightPos) {
			probe = i
			break
		}
	}
	check := func(id TupleID, u Tuple) bool {
		if !SatisfiesAll(u, rs) {
			return false
		}
		for _, jc := range conds {
			if !jc.Satisfies(t, u) {
				return false
			}
		}
		return true
	}
	var out []TupleID
	if probe >= 0 {
		jc := conds[probe]
		for _, id := range rel.SelectEq(jc.RightPos, t[jc.LeftPos]) {
			u, ok := rel.Get(id)
			if !ok {
				continue
			}
			rel.stats.Inc(metrics.TuplesScanned)
			if check(id, u) {
				out = append(out, id)
			}
		}
		return out
	}
	rel.Scan(func(id TupleID, u Tuple) bool {
		if check(id, u) {
			out = append(out, id)
		}
		return true
	})
	return out
}
