package relation

import (
	"prodsys/internal/metrics"
	"prodsys/internal/value"
)

// JoinCond relates an attribute of a left tuple to an attribute of a
// right tuple: left[LeftPos] Op right[RightPos].
type JoinCond struct {
	LeftPos  int
	RightPos int
	Op       value.Op
}

// Satisfies reports whether the pair (l, r) meets the join condition.
func (jc JoinCond) Satisfies(l, r Tuple) bool {
	return jc.Op.Apply(l[jc.LeftPos], r[jc.RightPos])
}

// JoinPair is one (left, right) result of a join probe.
type JoinPair struct {
	LeftID  TupleID
	RightID TupleID
}

// JoinProbe finds all tuples of rel joining with the single tuple t under
// conds (t plays the left role), optionally pre-filtered by restrictions
// on rel. The access path prefers an equality join condition with a hash
// index on rel, then an inequality join condition with an ordered index,
// then an indexed restriction on rel itself; only when no index applies
// is rel scanned. This is the "degenerate selection" of §4.1: a two-way
// join against a single new WM element reduces to a selection on the
// other relation.
func JoinProbe(t Tuple, rel *Relation, conds []JoinCond, rs []Restriction) []TupleID {
	rel.stats.Inc(metrics.JoinsComputed)
	check := func(id TupleID, u Tuple) bool {
		if !SatisfiesAll(u, rs) {
			return false
		}
		for _, jc := range conds {
			if !jc.Satisfies(t, u) {
				return false
			}
		}
		return true
	}
	// Residual filtering of index-probe candidates is not charged as
	// tuples_scanned: the probe already counted its access path, and
	// one CE evaluation must account exactly one access path for
	// Explain's actual-vs-estimated rows to reconcile.
	filter := func(candidates []TupleID) []TupleID {
		var out []TupleID
		for _, id := range candidates {
			u, ok := rel.Get(id)
			if !ok {
				continue
			}
			if check(id, u) {
				out = append(out, id)
			}
		}
		return out
	}
	// First choice: equality join condition with an index on the right.
	for _, jc := range conds {
		if jc.Op == value.OpEq && rel.HasIndex(jc.RightPos) {
			return filter(rel.SelectEq(jc.RightPos, t[jc.LeftPos]))
		}
	}
	// Second choice: inequality join condition probed through the
	// ordered index. "t[L] op u[R]" constrains u[R] by the flipped
	// operator against the known left value.
	for _, jc := range conds {
		if !rel.HasIndex(jc.RightPos) {
			continue
		}
		if b, ok := RangeFor(jc.Op.Flip(), t[jc.LeftPos]); ok {
			return filter(rel.SelectRange(jc.RightPos, b))
		}
	}
	// Third choice: an indexed restriction on rel narrows the
	// candidates before the join conditions are checked.
	for _, c := range rs {
		if c.Op == value.OpEq && rel.HasIndex(c.Pos) {
			return filter(rel.SelectEq(c.Pos, c.Val))
		}
	}
	var out []TupleID
	rel.Scan(func(id TupleID, u Tuple) bool {
		if check(id, u) {
			out = append(out, id)
		}
		return true
	})
	return out
}
