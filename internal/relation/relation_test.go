package relation

import (
	"fmt"
	"testing"
	"testing/quick"

	"prodsys/internal/metrics"
	"prodsys/internal/value"
)

func empTuple(name string, age, salary int64, dept string) Tuple {
	return Tuple{value.OfSym(name), value.OfInt(age), value.OfInt(salary), value.OfSym(dept)}
}

func newEmp(t *testing.T) *Relation {
	t.Helper()
	return New(MustSchema("Emp", "name", "age", "salary", "dept"), nil)
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewSchema("R"); err == nil {
		t.Error("no attributes should fail")
	}
	if _, err := NewSchema("R", "a", "a"); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := NewSchema("R", "a", ""); err == nil {
		t.Error("empty attribute should fail")
	}
	s, err := NewSchema("R", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 || s.Name() != "R" || s.Attr(1) != "b" {
		t.Errorf("schema basics wrong: %v", s)
	}
	if p, ok := s.Pos("b"); !ok || p != 1 {
		t.Errorf("Pos(b) = %d,%v", p, ok)
	}
	if _, ok := s.Pos("zzz"); ok {
		t.Error("Pos of missing attribute should be !ok")
	}
	if got := s.String(); got != "R(a, b)" {
		t.Errorf("String = %q", got)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on invalid schema")
		}
	}()
	MustSchema("R")
}

func TestInsertGetDelete(t *testing.T) {
	r := newEmp(t)
	id, err := r.Insert(empTuple("Mike", 30, 1000, "Toy"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	got, ok := r.Get(id)
	if !ok || !got.Equal(empTuple("Mike", 30, 1000, "Toy")) {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := r.Get(id + 99); ok {
		t.Error("Get of unknown id should fail")
	}
	del, err := r.Delete(id)
	if err != nil || !del.Equal(empTuple("Mike", 30, 1000, "Toy")) {
		t.Fatalf("Delete = %v, %v", del, err)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after delete = %d", r.Len())
	}
	if _, err := r.Delete(id); err == nil {
		t.Error("double delete should fail")
	}
}

func TestInsertArityMismatch(t *testing.T) {
	r := newEmp(t)
	if _, err := r.Insert(Tuple{value.OfInt(1)}); err == nil {
		t.Error("short tuple should fail")
	}
}

func TestInsertClonesTuple(t *testing.T) {
	r := newEmp(t)
	src := empTuple("Sam", 40, 2000, "Shoe")
	id, _ := r.Insert(src)
	src[0] = value.OfSym("Mutated")
	got, _ := r.Get(id)
	if got[0].AsString() != "Sam" {
		t.Error("relation must not alias caller's tuple")
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	r := newEmp(t)
	var ids []TupleID
	for i := 0; i < 5; i++ {
		id, _ := r.Insert(empTuple(fmt.Sprintf("e%d", i), int64(20+i), 100, "D"))
		ids = append(ids, id)
	}
	r.Delete(ids[2])
	var seen []TupleID
	r.Scan(func(id TupleID, _ Tuple) bool {
		seen = append(seen, id)
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("scan saw %d tuples", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("scan not in ascending id order: %v", seen)
		}
	}
	count := 0
	r.Scan(func(TupleID, Tuple) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestSelectEqWithAndWithoutIndex(t *testing.T) {
	r := newEmp(t)
	for i := 0; i < 10; i++ {
		dept := "Toy"
		if i%2 == 0 {
			dept = "Shoe"
		}
		r.Insert(empTuple(fmt.Sprintf("e%d", i), int64(20+i), int64(100*i), dept))
	}
	scanRes := r.SelectEq(3, value.OfSym("Toy"))
	if len(scanRes) != 5 {
		t.Fatalf("scan SelectEq found %d", len(scanRes))
	}
	if err := r.CreateIndex(3); err != nil {
		t.Fatal(err)
	}
	if !r.HasIndex(3) {
		t.Fatal("index not created")
	}
	idxRes := r.SelectEq(3, value.OfSym("Toy"))
	if len(idxRes) != len(scanRes) {
		t.Fatalf("index SelectEq found %d, scan found %d", len(idxRes), len(scanRes))
	}
	for i := range idxRes {
		if idxRes[i] != scanRes[i] {
			t.Fatalf("index and scan results differ: %v vs %v", idxRes, scanRes)
		}
	}
}

func TestCreateIndexValidation(t *testing.T) {
	r := newEmp(t)
	if err := r.CreateIndex(-1); err == nil {
		t.Error("negative pos should fail")
	}
	if err := r.CreateIndex(4); err == nil {
		t.Error("out of range pos should fail")
	}
	if err := r.CreateIndex(0); err != nil {
		t.Error(err)
	}
	if err := r.CreateIndex(0); err != nil {
		t.Error("re-creating index should be idempotent")
	}
}

func TestIndexMaintainedAcrossDelete(t *testing.T) {
	r := newEmp(t)
	r.CreateIndex(3)
	id1, _ := r.Insert(empTuple("a", 1, 1, "Toy"))
	id2, _ := r.Insert(empTuple("b", 2, 2, "Toy"))
	r.Delete(id1)
	got := r.SelectEq(3, value.OfSym("Toy"))
	if len(got) != 1 || got[0] != id2 {
		t.Fatalf("SelectEq after delete = %v", got)
	}
}

func TestIndexNumericCoercion(t *testing.T) {
	r := New(MustSchema("R", "x"), nil)
	r.CreateIndex(0)
	r.Insert(Tuple{value.OfFloat(3.0)})
	got := r.SelectEq(0, value.OfInt(3))
	if len(got) != 1 {
		t.Fatalf("index lookup should find Float(3.0) by Int(3), got %v", got)
	}
}

func TestSelectWithRestrictions(t *testing.T) {
	r := newEmp(t)
	r.CreateIndex(3)
	for i := 0; i < 10; i++ {
		r.Insert(empTuple(fmt.Sprintf("e%d", i), int64(20+i), int64(100*i), "Toy"))
	}
	rs := []Restriction{
		{Pos: 3, Op: value.OpEq, Val: value.OfSym("Toy")},
		{Pos: 1, Op: value.OpGt, Val: value.OfInt(25)},
	}
	got := r.Select(rs)
	if len(got) != 4 {
		t.Fatalf("Select found %d, want 4", len(got))
	}
	ids, tuples := r.SelectTuples(rs)
	if len(ids) != len(tuples) || len(ids) != 4 {
		t.Fatalf("SelectTuples sizes: %d, %d", len(ids), len(tuples))
	}
	for i, tup := range tuples {
		if !SatisfiesAll(tup, rs) {
			t.Fatalf("tuple %d does not satisfy: %v", ids[i], tup)
		}
	}
}

func TestSelectNoIndexPath(t *testing.T) {
	r := newEmp(t)
	for i := 0; i < 4; i++ {
		r.Insert(empTuple(fmt.Sprintf("e%d", i), int64(i), 0, "D"))
	}
	got := r.Select([]Restriction{{Pos: 1, Op: value.OpGe, Val: value.OfInt(2)}})
	if len(got) != 2 {
		t.Fatalf("Select = %v", got)
	}
}

func TestFindEqual(t *testing.T) {
	r := newEmp(t)
	r.Insert(empTuple("a", 1, 1, "X"))
	id2, _ := r.Insert(empTuple("b", 2, 2, "Y"))
	got, ok := r.FindEqual(empTuple("b", 2, 2, "Y"))
	if !ok || got != id2 {
		t.Fatalf("FindEqual = %v,%v", got, ok)
	}
	if _, ok := r.FindEqual(empTuple("zz", 0, 0, "Q")); ok {
		t.Error("FindEqual of absent tuple should fail")
	}
}

func TestClear(t *testing.T) {
	r := newEmp(t)
	r.CreateIndex(3)
	r.Insert(empTuple("a", 1, 1, "X"))
	r.Clear()
	if r.Len() != 0 {
		t.Fatalf("Len after clear = %d", r.Len())
	}
	if got := r.SelectEq(3, value.OfSym("X")); len(got) != 0 {
		t.Fatalf("index not cleared: %v", got)
	}
	// IDs keep increasing after Clear.
	id, _ := r.Insert(empTuple("b", 2, 2, "Y"))
	if id != 2 {
		t.Fatalf("id after clear = %d, want 2", id)
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewDB(nil)
	r1, err := db.Create("Emp", "name", "age")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("Emp", "x"); err == nil {
		t.Error("duplicate create should fail")
	}
	if _, err := db.Create("", "x"); err == nil {
		t.Error("bad schema should fail")
	}
	db.Create("Dept", "dno")
	got, ok := db.Get("Emp")
	if !ok || got != r1 {
		t.Fatalf("Get = %v,%v", got, ok)
	}
	if names := db.Names(); len(names) != 2 || names[0] != "Dept" || names[1] != "Emp" {
		t.Fatalf("Names = %v", names)
	}
	if db.MustGet("Emp") != r1 {
		t.Fatal("MustGet mismatch")
	}
	db.Drop("Dept")
	if _, ok := db.Get("Dept"); ok {
		t.Error("Drop failed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustGet of missing relation should panic")
			}
		}()
		db.MustGet("Nope")
	}()
}

func TestMetricsAccounting(t *testing.T) {
	var stats metrics.Set
	db := NewDB(&stats)
	r, _ := db.Create("R", "x")
	for i := 0; i < 100; i++ {
		r.Insert(Tuple{value.OfInt(int64(i))})
	}
	if got := stats.Get(metrics.TuplesInserted); got != 100 {
		t.Fatalf("TuplesInserted = %d", got)
	}
	before := stats.Get(metrics.PagesRead)
	r.Scan(func(TupleID, Tuple) bool { return true })
	delta := stats.Get(metrics.PagesRead) - before
	want := int64((100 + DefaultPageSize - 1) / DefaultPageSize)
	if delta != want {
		t.Fatalf("scan pages read = %d, want %d", delta, want)
	}
	r.CreateIndex(0)
	before = stats.Get(metrics.IndexLookups)
	r.SelectEq(0, value.OfInt(5))
	if stats.Get(metrics.IndexLookups) != before+1 {
		t.Fatal("index lookup not counted")
	}
}

func TestRestrictionSatisfies(t *testing.T) {
	tup := Tuple{value.OfInt(5), value.OfSym("x")}
	if !(Restriction{Pos: 0, Op: value.OpGt, Val: value.OfInt(3)}).Satisfies(tup) {
		t.Error("5 > 3 should hold")
	}
	if (Restriction{Pos: 5, Op: value.OpEq, Val: value.OfInt(3)}).Satisfies(tup) {
		t.Error("out-of-range restriction should be false")
	}
	if !SatisfiesAll(tup, nil) {
		t.Error("empty restrictions are vacuously satisfied")
	}
}

func TestTupleCloneEqualString(t *testing.T) {
	tup := empTuple("a", 1, 2, "D")
	c := tup.Clone()
	if !c.Equal(tup) {
		t.Error("clone not equal")
	}
	c[0] = value.OfSym("zz")
	if tup[0].AsString() != "a" {
		t.Error("clone aliases original")
	}
	if Tuple(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
	if tup.Equal(tup[:2]) {
		t.Error("different arities are unequal")
	}
	if got := (Tuple{value.OfInt(1), value.OfSym("a")}).String(); got != "(1, a)" {
		t.Errorf("tuple String = %q", got)
	}
	// Numeric coercion in tuple equality.
	if !(Tuple{value.OfInt(3)}).Equal(Tuple{value.OfFloat(3.0)}) {
		t.Error("Int/Float tuples should be Equal")
	}
}

func TestJoinProbe(t *testing.T) {
	var stats metrics.Set
	db := NewDB(&stats)
	dept, _ := db.Create("Dept", "dno", "dname", "floor")
	dept.Insert(Tuple{value.OfInt(1), value.OfSym("Toy"), value.OfInt(1)})
	dept.Insert(Tuple{value.OfInt(2), value.OfSym("Shoe"), value.OfInt(2)})
	dept.Insert(Tuple{value.OfInt(1), value.OfSym("Toy2"), value.OfInt(3)})

	emp := Tuple{value.OfSym("Mike"), value.OfInt(1)} // (name, dno)
	conds := []JoinCond{{LeftPos: 1, RightPos: 0, Op: value.OpEq}}
	got := JoinProbe(emp, dept, conds, nil)
	if len(got) != 2 {
		t.Fatalf("JoinProbe found %d, want 2", len(got))
	}
	// With a restriction on the right side.
	got = JoinProbe(emp, dept, conds, []Restriction{{Pos: 1, Op: value.OpEq, Val: value.OfSym("Toy")}})
	if len(got) != 1 {
		t.Fatalf("restricted JoinProbe found %d, want 1", len(got))
	}
	// Indexed path agrees with scan path.
	dept.CreateIndex(0)
	gotIdx := JoinProbe(emp, dept, conds, nil)
	if len(gotIdx) != 2 {
		t.Fatalf("indexed JoinProbe found %d", len(gotIdx))
	}
	if stats.Get(metrics.JoinsComputed) != 3 {
		t.Fatalf("JoinsComputed = %d", stats.Get(metrics.JoinsComputed))
	}
	// Non-equality join condition.
	gt := []JoinCond{{LeftPos: 1, RightPos: 2, Op: value.OpLt}} // emp.dno < dept.floor
	got = JoinProbe(emp, dept, gt, nil)
	if len(got) != 2 {
		t.Fatalf("lt JoinProbe found %d, want 2", len(got))
	}
}

func TestJoinCondSatisfies(t *testing.T) {
	l := Tuple{value.OfInt(3)}
	r := Tuple{value.OfInt(5)}
	if !(JoinCond{0, 0, value.OpLt}).Satisfies(l, r) {
		t.Error("3 < 5 should hold")
	}
	if (JoinCond{0, 0, value.OpEq}).Satisfies(l, r) {
		t.Error("3 = 5 should not hold")
	}
}

func TestConcurrentInsertScan(t *testing.T) {
	r := New(MustSchema("R", "x"), nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r.Insert(Tuple{value.OfInt(int64(i))})
		}
	}()
	for i := 0; i < 50; i++ {
		r.Scan(func(TupleID, Tuple) bool { return true })
	}
	<-done
	if r.Len() != 500 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestIDMonotonicityProperty(t *testing.T) {
	// TupleIDs are strictly increasing regardless of interleaved deletes.
	f := func(ops []bool) bool {
		r := New(MustSchema("R", "x"), nil)
		var last TupleID
		var live []TupleID
		for i, ins := range ops {
			if ins || len(live) == 0 {
				id, err := r.Insert(Tuple{value.OfInt(int64(i))})
				if err != nil || id <= last {
					return false
				}
				last = id
				live = append(live, id)
			} else {
				id := live[len(live)-1]
				live = live[:len(live)-1]
				if _, err := r.Delete(id); err != nil {
					return false
				}
			}
		}
		return r.Len() == len(live)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
