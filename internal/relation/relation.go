package relation

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"prodsys/internal/metrics"
	"prodsys/internal/value"
)

// ErrArity marks a tuple whose length disagrees with its relation's
// schema; test with errors.Is.
var ErrArity = errors.New("arity mismatch")

// ErrUnknownRelation marks a catalog lookup for a name with no
// relation; test with errors.Is.
var ErrUnknownRelation = errors.New("unknown relation")

// TupleID identifies a stored tuple within one relation. IDs are assigned
// monotonically and never reused, so they double as insertion timestamps
// (the "recency" used by OPS5-style conflict resolution).
type TupleID uint64

// DefaultPageSize is the simulated number of tuples per disk page used for
// I/O accounting.
const DefaultPageSize = 32

// Relation is a stored relation: a bag of tuples addressable by TupleID,
// with optional per-attribute hash indexes. All methods are safe for
// concurrent use.
type Relation struct {
	schema   *Schema
	pageSize int
	stats    *metrics.Set

	mu      sync.RWMutex
	tuples  map[TupleID]Tuple
	ids     []TupleID // maintained sorted ascending
	indexes map[int]*hashIndex
	next    TupleID
}

// hashIndex maps a normalized attribute value to the set of tuple IDs
// carrying it.
type hashIndex struct {
	entries map[value.V]map[TupleID]struct{}
}

func newHashIndex() *hashIndex {
	return &hashIndex{entries: make(map[value.V]map[TupleID]struct{})}
}

func (ix *hashIndex) add(v value.V, id TupleID) {
	k := v.Key()
	set := ix.entries[k]
	if set == nil {
		set = make(map[TupleID]struct{})
		ix.entries[k] = set
	}
	set[id] = struct{}{}
}

func (ix *hashIndex) remove(v value.V, id TupleID) {
	k := v.Key()
	if set := ix.entries[k]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(ix.entries, k)
		}
	}
}

func (ix *hashIndex) lookup(v value.V) map[TupleID]struct{} {
	return ix.entries[v.Key()]
}

// New creates an empty relation over schema. stats may be nil.
func New(schema *Schema, stats *metrics.Set) *Relation {
	return &Relation{
		schema:   schema,
		pageSize: DefaultPageSize,
		stats:    stats,
		tuples:   make(map[TupleID]Tuple),
		indexes:  make(map[int]*hashIndex),
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Name returns the relation name.
func (r *Relation) Name() string { return r.schema.Name() }

// Len returns the current tuple count.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tuples)
}

// CreateIndex builds (idempotently) a hash index on the attribute at
// position pos.
func (r *Relation) CreateIndex(pos int) error {
	if pos < 0 || pos >= r.schema.Arity() {
		return fmt.Errorf("relation %s: index position %d out of range", r.Name(), pos)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.indexes[pos]; exists {
		return nil
	}
	ix := newHashIndex()
	for id, t := range r.tuples {
		ix.add(t[pos], id)
	}
	r.indexes[pos] = ix
	return nil
}

// HasIndex reports whether an index exists on attribute position pos.
func (r *Relation) HasIndex(pos int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.indexes[pos]
	return ok
}

// Insert stores tuple t and returns its new ID. The tuple is cloned, so
// callers may reuse the slice.
func (r *Relation) Insert(t Tuple) (TupleID, error) {
	if len(t) != r.schema.Arity() {
		return 0, fmt.Errorf("relation %s: %w: tuple has %d values, schema needs %d",
			r.Name(), ErrArity, len(t), r.schema.Arity())
	}
	ct := t.Clone()
	r.mu.Lock()
	r.next++
	id := r.next
	r.tuples[id] = ct
	r.ids = append(r.ids, id) // ids are assigned in increasing order, so the slice stays sorted
	for pos, ix := range r.indexes {
		ix.add(ct[pos], id)
	}
	r.mu.Unlock()
	r.stats.Inc(metrics.TuplesInserted)
	r.stats.Inc(metrics.PagesWritten)
	return id, nil
}

// Get returns the tuple stored under id.
func (r *Relation) Get(id TupleID) (Tuple, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tuples[id]
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

// Delete removes the tuple stored under id, returning the removed tuple.
func (r *Relation) Delete(id TupleID) (Tuple, error) {
	r.mu.Lock()
	t, ok := r.tuples[id]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("relation %s: delete of unknown tuple id %d", r.Name(), id)
	}
	delete(r.tuples, id)
	if i := r.findID(id); i >= 0 {
		r.ids = append(r.ids[:i], r.ids[i+1:]...)
	}
	for pos, ix := range r.indexes {
		ix.remove(t[pos], id)
	}
	r.mu.Unlock()
	r.stats.Inc(metrics.TuplesDeleted)
	r.stats.Inc(metrics.PagesWritten)
	return t, nil
}

// findID binary-searches the sorted id slice. Caller holds mu.
func (r *Relation) findID(id TupleID) int {
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	if i < len(r.ids) && r.ids[i] == id {
		return i
	}
	return -1
}

// Scan visits every tuple in ascending TupleID order until fn returns
// false. The visited tuples are the live ones at call time; fn must not
// mutate the relation.
func (r *Relation) Scan(fn func(id TupleID, t Tuple) bool) {
	r.mu.RLock()
	ids := append([]TupleID(nil), r.ids...)
	n := len(ids)
	r.mu.RUnlock()
	r.accountScan(n)
	for _, id := range ids {
		r.mu.RLock()
		t, ok := r.tuples[id]
		r.mu.RUnlock()
		if !ok {
			continue
		}
		r.stats.Inc(metrics.TuplesScanned)
		if !fn(id, t) {
			return
		}
	}
}

// accountScan charges simulated page reads for touching n tuples.
func (r *Relation) accountScan(n int) {
	if n == 0 {
		return
	}
	r.stats.Add(metrics.PagesRead, int64((n+r.pageSize-1)/r.pageSize))
}

// SelectEq returns the IDs of tuples whose attribute at pos equals v,
// using a hash index when available and a scan otherwise. Results are in
// ascending ID order.
func (r *Relation) SelectEq(pos int, v value.V) []TupleID {
	r.mu.RLock()
	ix := r.indexes[pos]
	if ix != nil {
		set := ix.lookup(v)
		out := make([]TupleID, 0, len(set))
		for id := range set {
			// Hash equality collapses Int/Float and Str/Sym the same way
			// value.Equal does, so no re-check is needed.
			out = append(out, id)
		}
		r.mu.RUnlock()
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		r.stats.Inc(metrics.IndexLookups)
		r.stats.Inc(metrics.PagesRead)
		return out
	}
	r.mu.RUnlock()
	var out []TupleID
	r.Scan(func(id TupleID, t Tuple) bool {
		if value.Equal(t[pos], v) {
			out = append(out, id)
		}
		return true
	})
	return out
}

// Select returns IDs of tuples satisfying every restriction. When an
// equality restriction has an index the engine probes it and filters;
// otherwise it scans.
func (r *Relation) Select(rs []Restriction) []TupleID {
	// Pick an indexed equality restriction as the access path.
	probe := -1
	for i, c := range rs {
		if c.Op == value.OpEq && r.HasIndex(c.Pos) {
			probe = i
			break
		}
	}
	var out []TupleID
	if probe >= 0 {
		for _, id := range r.SelectEq(rs[probe].Pos, rs[probe].Val) {
			t, ok := r.Get(id)
			if !ok {
				continue
			}
			r.stats.Inc(metrics.TuplesScanned)
			if SatisfiesAll(t, rs) {
				out = append(out, id)
			}
		}
		return out
	}
	r.Scan(func(id TupleID, t Tuple) bool {
		if SatisfiesAll(t, rs) {
			out = append(out, id)
		}
		return true
	})
	return out
}

// SelectTuples is Select but materializes the tuples alongside their IDs.
func (r *Relation) SelectTuples(rs []Restriction) (ids []TupleID, tuples []Tuple) {
	ids = r.Select(rs)
	tuples = make([]Tuple, len(ids))
	for i, id := range ids {
		t, _ := r.Get(id)
		tuples[i] = t
	}
	return ids, tuples
}

// FindEqual returns the ID of some live tuple value-equal to t, for
// delete-by-value semantics (OPS5 remove addresses the matched element;
// the DBMS translation deletes an equal tuple).
func (r *Relation) FindEqual(t Tuple) (TupleID, bool) {
	var found TupleID
	ok := false
	r.Scan(func(id TupleID, u Tuple) bool {
		if u.Equal(t) {
			found, ok = id, true
			return false
		}
		return true
	})
	return found, ok
}

// Clear removes all tuples but keeps indexes and the ID counter.
func (r *Relation) Clear() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tuples = make(map[TupleID]Tuple)
	r.ids = nil
	for pos := range r.indexes {
		r.indexes[pos] = newHashIndex()
	}
}

// DB is a catalog of relations sharing one metrics set.
type DB struct {
	mu    sync.RWMutex
	rels  map[string]*Relation
	stats *metrics.Set
}

// NewDB creates an empty catalog. stats may be nil.
func NewDB(stats *metrics.Set) *DB {
	return &DB{rels: make(map[string]*Relation), stats: stats}
}

// Stats returns the catalog's metrics set.
func (db *DB) Stats() *metrics.Set { return db.stats }

// Create adds a new relation; it is an error if the name exists.
func (db *DB) Create(name string, attrs ...string) (*Relation, error) {
	schema, err := NewSchema(name, attrs...)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.rels[name]; dup {
		return nil, fmt.Errorf("relation %s already exists", name)
	}
	r := New(schema, db.stats)
	db.rels[name] = r
	return r, nil
}

// Get returns the named relation.
func (db *DB) Get(name string) (*Relation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	return r, ok
}

// Lookup returns the named relation or ErrUnknownRelation (wrapped
// with the name) when absent.
func (db *DB) Lookup(name string) (*Relation, error) {
	r, ok := db.Get(name)
	if !ok {
		return nil, fmt.Errorf("relation %s: %w", name, ErrUnknownRelation)
	}
	return r, nil
}

// MustGet returns the named relation, panicking if absent; for callers
// that have already validated the catalog against the rule set. Code
// that handles unvalidated names should use Lookup instead.
func (db *DB) MustGet(name string) *Relation {
	r, err := db.Lookup(name)
	if err != nil {
		panic(err.Error())
	}
	return r
}

// Drop removes the named relation from the catalog.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.rels, name)
}

// Names returns the catalog's relation names in sorted order.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.rels))
	for n := range db.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
