package relation

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"prodsys/internal/metrics"
	"prodsys/internal/value"
)

// ErrArity marks a tuple whose length disagrees with its relation's
// schema; test with errors.Is.
var ErrArity = errors.New("arity mismatch")

// ErrUnknownRelation marks a catalog lookup for a name with no
// relation; test with errors.Is.
var ErrUnknownRelation = errors.New("unknown relation")

// TupleID identifies a stored tuple within one relation. IDs are assigned
// monotonically and never reused, so they double as insertion timestamps
// (the "recency" used by OPS5-style conflict resolution).
type TupleID uint64

// DefaultPageSize is the simulated number of tuples per disk page used for
// I/O accounting.
const DefaultPageSize = 32

// Relation is a stored relation: a bag of tuples addressable by TupleID.
// Tuple storage and secondary indexes live behind the pluggable Store
// interface; Relation layers concurrency control, ID assignment, value
// interning, tuple cloning, and simulated I/O accounting on top. All
// methods are safe for concurrent use.
type Relation struct {
	schema   *Schema
	pageSize int
	stats    *metrics.Set
	intern   *internTable

	mu    sync.RWMutex
	store Store
	next  TupleID
}

// New creates an empty relation over schema with the row storage
// backend. stats may be nil.
func New(schema *Schema, stats *metrics.Set) *Relation {
	return NewWithStorage(schema, stats, StorageRow)
}

// NewWithStorage creates an empty relation served by the given storage
// backend. stats may be nil.
func NewWithStorage(schema *Schema, stats *metrics.Set, kind StorageKind) *Relation {
	return newRelation(schema, stats, kind, newInternTable(), 1)
}

// NewSharded creates an empty relation partitioned across shards
// sub-stores of the given backend by the hash of the first attribute
// (see shard.go). shards <= 1 yields a plain relation. stats may be nil.
func NewSharded(schema *Schema, stats *metrics.Set, kind StorageKind, shards int) *Relation {
	return newRelation(schema, stats, kind, newInternTable(), shards)
}

// newRelation wires a relation to a (possibly catalog-shared) intern
// table, sharding the store when shards > 1.
func newRelation(schema *Schema, stats *metrics.Set, kind StorageKind, intern *internTable, shards int) *Relation {
	var st Store
	if shards > 1 {
		st = newShardedStore(kind, schema.Arity(), shards)
	} else {
		st = newStore(kind, schema.Arity())
	}
	return &Relation{
		schema:   schema,
		pageSize: DefaultPageSize,
		stats:    stats,
		intern:   intern,
		store:    st,
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Name returns the relation name.
func (r *Relation) Name() string { return r.schema.Name() }

// Storage reports the backend serving this relation.
func (r *Relation) Storage() StorageKind {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store.Kind()
}

// Len returns the current live tuple count. The count moves only under
// Insert/Delete/Clear; it is exact, never an estimate, regardless of
// backend.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store.Len()
}

// Stats snapshots the relation's storage shape: backend, cardinality,
// and per-index distinct key counts — the selectivity inputs a
// cost-based planner consumes.
func (r *Relation) Stats() StoreStats {
	r.mu.RLock()
	st := r.store.Stats()
	r.mu.RUnlock()
	for i := range st.Indexes {
		if p := st.Indexes[i].Pos; p >= 0 && p < r.schema.Arity() {
			st.Indexes[i].Attr = r.schema.Attrs()[p]
		}
	}
	return st
}

// CreateIndex builds (idempotently) secondary indexes — hash for
// equality probes, ordered for range probes — on the attribute at
// position pos.
func (r *Relation) CreateIndex(pos int) error {
	if pos < 0 || pos >= r.schema.Arity() {
		return fmt.Errorf("relation %s: index position %d out of range", r.Name(), pos)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store.CreateIndex(pos)
	return nil
}

// HasIndex reports whether an index exists on attribute position pos.
func (r *Relation) HasIndex(pos int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store.HasIndex(pos)
}

// internTuple canonicalizes the string payloads of a freshly cloned
// tuple in place, so equal stored strings share one backing array and
// the comparison hot path short-circuits on pointers.
func (r *Relation) internTuple(t Tuple) {
	if r.intern == nil {
		return
	}
	for i, v := range t {
		iv, hit := r.intern.val(v)
		t[i] = iv
		if hit {
			r.stats.Inc(metrics.InternHits)
		}
	}
}

// Insert stores tuple t and returns its new ID. The tuple is cloned, so
// callers may reuse the slice.
func (r *Relation) Insert(t Tuple) (TupleID, error) {
	if len(t) != r.schema.Arity() {
		return 0, fmt.Errorf("relation %s: %w: tuple has %d values, schema needs %d",
			r.Name(), ErrArity, len(t), r.schema.Arity())
	}
	ct := t.Clone()
	r.internTuple(ct)
	r.mu.Lock()
	r.next++
	id := r.next
	r.store.Insert(id, ct)
	r.mu.Unlock()
	r.stats.Inc(metrics.TuplesInserted)
	r.stats.Inc(metrics.PagesWritten)
	return id, nil
}

// InsertBatch stores the tuples of entries in one storage operation,
// assigning ascending IDs which are written back into the entries —
// the set-oriented append path of ApplyDelta. Entry tuples are cloned.
func (r *Relation) InsertBatch(entries []DeltaEntry) error {
	for _, e := range entries {
		if len(e.Tuple) != r.schema.Arity() {
			return fmt.Errorf("relation %s: %w: tuple has %d values, schema needs %d",
				r.Name(), ErrArity, len(e.Tuple), r.schema.Arity())
		}
	}
	if len(entries) == 0 {
		return nil
	}
	staged := make([]DeltaEntry, len(entries))
	for i, e := range entries {
		ct := e.Tuple.Clone()
		r.internTuple(ct)
		staged[i] = DeltaEntry{Tuple: ct}
	}
	r.mu.Lock()
	for i := range staged {
		r.next++
		staged[i].ID = r.next
	}
	r.store.InsertBatch(staged)
	r.mu.Unlock()
	for i := range staged {
		entries[i].ID = staged[i].ID
		entries[i].Tuple = staged[i].Tuple
	}
	r.stats.Inc(metrics.BatchInserts)
	r.stats.Add(metrics.TuplesInserted, int64(len(staged)))
	r.stats.Add(metrics.PagesWritten, int64((len(staged)+r.pageSize-1)/r.pageSize))
	return nil
}

// Get returns the tuple stored under id.
func (r *Relation) Get(id TupleID) (Tuple, bool) {
	r.mu.RLock()
	t, ok := r.store.Get(id)
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

// Delete removes the tuple stored under id, returning the removed tuple.
func (r *Relation) Delete(id TupleID) (Tuple, error) {
	r.mu.Lock()
	t, ok := r.store.Delete(id)
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("relation %s: delete of unknown tuple id %d", r.Name(), id)
	}
	r.stats.Inc(metrics.TuplesDeleted)
	r.stats.Inc(metrics.PagesWritten)
	return t, nil
}

// Scan visits every tuple in ascending TupleID order — a guarantee of
// the Store contract, never Go map iteration order, so a scan is
// deterministic for a given working-memory state on every backend —
// until fn returns false. The visited tuples are the live ones at call
// time; fn must not mutate the relation or the visited tuples.
func (r *Relation) Scan(fn func(id TupleID, t Tuple) bool) {
	r.mu.RLock()
	ids := r.store.IDs()
	r.mu.RUnlock()
	r.accountScan(len(ids))
	for _, id := range ids {
		r.mu.RLock()
		t, ok := r.store.Get(id)
		r.mu.RUnlock()
		if !ok {
			continue
		}
		r.stats.Inc(metrics.TuplesScanned)
		if !fn(id, t) {
			return
		}
	}
}

// accountScan charges simulated page reads for touching n tuples.
func (r *Relation) accountScan(n int) {
	if n == 0 {
		return
	}
	r.stats.Add(metrics.PagesRead, int64((n+r.pageSize-1)/r.pageSize))
}

// SelectEq returns the IDs of tuples whose attribute at pos equals v,
// probing the hash index when one exists and scanning otherwise.
// Results are in ascending ID order.
func (r *Relation) SelectEq(pos int, v value.V) []TupleID {
	r.mu.RLock()
	ids, indexed := r.store.SelectEq(pos, v)
	n := r.store.Len()
	r.mu.RUnlock()
	if indexed {
		r.stats.Inc(metrics.IndexLookups)
		r.stats.Inc(metrics.PagesRead)
	} else {
		r.stats.Add(metrics.TuplesScanned, int64(n))
		r.accountScan(n)
	}
	return ids
}

// SelectRange returns the IDs of tuples whose attribute at pos lies
// within b, probing the ordered index when one exists and scanning
// otherwise. Results are in ascending ID order.
func (r *Relation) SelectRange(pos int, b Bounds) []TupleID {
	r.mu.RLock()
	ids, indexed := r.store.SelectRange(pos, b)
	n := r.store.Len()
	r.mu.RUnlock()
	if indexed {
		r.stats.Inc(metrics.IndexRangeProbes)
		r.stats.Inc(metrics.PagesRead)
	} else {
		r.stats.Add(metrics.TuplesScanned, int64(n))
		r.accountScan(n)
	}
	return ids
}

// Select returns IDs of tuples satisfying every restriction. The access
// path is chosen in order of selectivity: an indexed equality
// restriction is probed via the hash index; failing that, the indexed
// range restrictions on one attribute are merged and probed via the
// ordered index; otherwise the relation is scanned.
func (r *Relation) Select(rs []Restriction) []TupleID {
	// First choice: indexed equality probe.
	probe := -1
	for i, c := range rs {
		if c.Op == value.OpEq && r.HasIndex(c.Pos) {
			probe = i
			break
		}
	}
	var candidates []TupleID
	switch {
	case probe >= 0:
		candidates = r.SelectEq(rs[probe].Pos, rs[probe].Val)
	default:
		// Second choice: ordered-index range probe, merging every range
		// restriction on the chosen attribute (e.g. lo < salary < hi).
		rangePos := -1
		var rb Bounds
		for _, c := range rs {
			b, ok := RangeFor(c.Op, c.Val)
			if !ok || !r.HasIndex(c.Pos) {
				continue
			}
			if rangePos < 0 {
				rangePos, rb = c.Pos, b
			} else if c.Pos == rangePos {
				rb = rb.And(b)
			}
		}
		if rangePos < 0 {
			// Last resort: full scan.
			var out []TupleID
			r.Scan(func(id TupleID, t Tuple) bool {
				if SatisfiesAll(t, rs) {
					out = append(out, id)
				}
				return true
			})
			return out
		}
		candidates = r.SelectRange(rangePos, rb)
	}
	// Residual filtering of the probed candidates is not charged as
	// tuples_scanned: the index probe above already accounted the
	// access path, and each Select must count exactly one access path
	// so planner Explain's actual-vs-estimated rows reconcile.
	var out []TupleID
	for _, id := range candidates {
		r.mu.RLock()
		t, ok := r.store.Get(id)
		r.mu.RUnlock()
		if !ok {
			continue
		}
		if SatisfiesAll(t, rs) {
			out = append(out, id)
		}
	}
	return out
}

// SelectTuples is Select but materializes the tuples alongside their IDs.
func (r *Relation) SelectTuples(rs []Restriction) (ids []TupleID, tuples []Tuple) {
	ids = r.Select(rs)
	tuples = make([]Tuple, len(ids))
	for i, id := range ids {
		t, _ := r.Get(id)
		tuples[i] = t
	}
	return ids, tuples
}

// FindEqual returns the ID of the oldest live tuple value-equal to t,
// for delete-by-value semantics (OPS5 remove addresses the matched
// element; the DBMS translation deletes an equal tuple). "Oldest" is
// well-defined because Scan order is ascending TupleID on every
// backend.
func (r *Relation) FindEqual(t Tuple) (TupleID, bool) {
	var found TupleID
	ok := false
	r.Scan(func(id TupleID, u Tuple) bool {
		if u.Equal(t) {
			found, ok = id, true
			return false
		}
		return true
	})
	return found, ok
}

// Clear removes all tuples but keeps indexes and the ID counter.
func (r *Relation) Clear() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store.Clear()
}

// DB is a catalog of relations sharing one metrics set, one
// value-interning table, and a storage-backend configuration.
type DB struct {
	mu            sync.RWMutex
	rels          map[string]*Relation
	stats         *metrics.Set
	def           StorageKind
	byClass       map[string]StorageKind
	defShards     int
	shardsByClass map[string]int
	intern        *internTable
}

// NewDB creates an empty catalog whose relations default to
// DefaultStorageKind() (StorageRow unless overridden by the
// PRODSYS_STORAGE environment variable) and DefaultShardCount()
// (unsharded unless overridden by PRODSYS_SHARDS). stats may be nil.
func NewDB(stats *metrics.Set) *DB {
	return &DB{
		rels:          make(map[string]*Relation),
		stats:         stats,
		def:           DefaultStorageKind(),
		byClass:       make(map[string]StorageKind),
		defShards:     DefaultShardCount(),
		shardsByClass: make(map[string]int),
		intern:        newInternTable(),
	}
}

// Stats returns the catalog's metrics set.
func (db *DB) Stats() *metrics.Set { return db.stats }

// InternHits returns the number of string payloads the catalog's
// interning cache has deduplicated.
func (db *DB) InternHits() int64 { return db.intern.Hits() }

// SetDefaultStorage selects the backend for relations created from now
// on; the empty kind resets to the process default. Existing relations
// are unaffected.
func (db *DB) SetDefaultStorage(kind StorageKind) error {
	k, err := ParseStorage(string(kind))
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.def = k
	return nil
}

// SetClassStorage overrides the backend for one future relation by
// name. It is an error if the relation already exists.
func (db *DB) SetClassStorage(name string, kind StorageKind) error {
	k, err := ParseStorage(string(kind))
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.rels[name]; exists {
		return fmt.Errorf("relation %s already exists", name)
	}
	db.byClass[name] = k
	return nil
}

// SetDefaultShards selects the shard count for relations created from
// now on; 0 resets to the process default (PRODSYS_SHARDS or 1).
// Existing relations are unaffected.
func (db *DB) SetDefaultShards(n int) error {
	v, err := ParseShards(n)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.defShards = v
	return nil
}

// SetClassShards overrides the shard count for one future relation by
// name (0 selects the process default at creation time). It is an error
// if the relation already exists.
func (db *DB) SetClassShards(name string, n int) error {
	v, err := ParseShards(n)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.rels[name]; exists {
		return fmt.Errorf("relation %s already exists", name)
	}
	db.shardsByClass[name] = v
	return nil
}

// ShardsFor reports the shard count a relation of the given name has
// (when live) or would be created with.
func (db *DB) ShardsFor(name string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if r, ok := db.rels[name]; ok {
		return r.Shards()
	}
	if n, ok := db.shardsByClass[name]; ok {
		return n
	}
	return db.defShards
}

// ShardSpace is the catalog-wide shard fan-out: the maximum shard count
// across the live relations and the creation default. It sizes the
// per-shard partitioning of matcher derived state and the engine's
// sub-delta split (a class with fewer shards simply never routes to the
// upper shard indices).
func (db *DB) ShardSpace() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	space := db.defShards
	for _, r := range db.rels {
		if n := r.Shards(); n > space {
			space = n
		}
	}
	if space < 1 {
		space = 1
	}
	return space
}

// ShardOf maps a (class, tuple) pair to its shard index — 0 for
// unknown or unsharded classes. Matchers use it to place derived state
// (matching patterns, support links) on the shard of the contributing
// WM tuple, aligning derived-state partitions with storage partitions.
func (db *DB) ShardOf(class string, t Tuple) int {
	r, ok := db.Get(class)
	if !ok {
		return 0
	}
	return r.ShardOf(t)
}

// StorageFor reports the backend a relation of the given name has (when
// live) or would be created with.
func (db *DB) StorageFor(name string) StorageKind {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if r, ok := db.rels[name]; ok {
		return r.store.Kind()
	}
	if k, ok := db.byClass[name]; ok {
		return k
	}
	return db.def
}

// Create adds a new relation; it is an error if the name exists. The
// backend is the per-class override when one is set, the catalog
// default otherwise.
func (db *DB) Create(name string, attrs ...string) (*Relation, error) {
	schema, err := NewSchema(name, attrs...)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.rels[name]; dup {
		return nil, fmt.Errorf("relation %s already exists", name)
	}
	kind := db.def
	if k, ok := db.byClass[name]; ok {
		kind = k
	}
	shards := db.defShards
	if n, ok := db.shardsByClass[name]; ok {
		shards = n
	}
	r := newRelation(schema, db.stats, kind, db.intern, shards)
	db.rels[name] = r
	return r, nil
}

// Get returns the named relation.
func (db *DB) Get(name string) (*Relation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	return r, ok
}

// Lookup returns the named relation or ErrUnknownRelation (wrapped
// with the name) when absent.
func (db *DB) Lookup(name string) (*Relation, error) {
	r, ok := db.Get(name)
	if !ok {
		return nil, fmt.Errorf("relation %s: %w", name, ErrUnknownRelation)
	}
	return r, nil
}

// MustGet returns the named relation, panicking if absent; for callers
// that have already validated the catalog against the rule set. Code
// that handles unvalidated names should use Lookup instead.
func (db *DB) MustGet(name string) *Relation {
	r, err := db.Lookup(name)
	if err != nil {
		panic(err.Error())
	}
	return r
}

// Drop removes the named relation from the catalog.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.rels, name)
}

// Names returns the catalog's relation names in sorted order.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.rels))
	for n := range db.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
