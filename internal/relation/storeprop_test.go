package relation

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"prodsys/internal/metrics"
	"prodsys/internal/value"
)

// randVal draws a value from a small mixed-type domain: ints, floats
// that collapse to ints under Key(), strings, symbols, and the odd nil.
func randVal(rng *rand.Rand) value.V {
	switch rng.Intn(10) {
	case 0:
		return value.V{} // nil: equal to nothing, never indexed
	case 1, 2:
		return value.OfFloat(float64(rng.Intn(20)))
	case 3, 4:
		return value.OfSym(fmt.Sprintf("s%d", rng.Intn(8)))
	case 5:
		return value.OfString(fmt.Sprintf("s%d", rng.Intn(8)))
	default:
		return value.OfInt(int64(rng.Intn(20)))
	}
}

// buildRandom populates a fresh 3-ary relation on the given backend with
// churn: n inserts interleaved with random deletes.
func buildRandom(t *testing.T, kind StorageKind, indexed []int, seed int64, n int) *Relation {
	t.Helper()
	schema, err := NewSchema("T", "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	rel := NewWithStorage(schema, &metrics.Set{}, kind)
	for _, pos := range indexed {
		if err := rel.CreateIndex(pos); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var live []TupleID
	for i := 0; i < n; i++ {
		id, err := rel.Insert(Tuple{randVal(rng), randVal(rng), randVal(rng)})
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
		if len(live) > 4 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			if _, err := rel.Delete(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}
	}
	return rel
}

// scanWhere is the brute-force oracle: every live tuple satisfying pred,
// in scan order.
func scanWhere(rel *Relation, pred func(Tuple) bool) []TupleID {
	var out []TupleID
	rel.Scan(func(id TupleID, t Tuple) bool {
		if pred(t) {
			out = append(out, id)
		}
		return true
	})
	return out
}

func sorted(ids []TupleID) []TupleID {
	out := append([]TupleID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestPropSelectAgreesWithScan drives randomized single- and
// multi-restriction selections over both backends — with position 1
// indexed and position 0 deliberately not — and checks that every access
// path (hash probe, ordered range probe, fallback scan) returns exactly
// the tuples a full scan filter returns.
func TestPropSelectAgreesWithScan(t *testing.T) {
	ops := []value.Op{value.OpEq, value.OpNe, value.OpLt, value.OpLe, value.OpGt, value.OpGe}
	for _, kind := range StorageKinds() {
		t.Run(string(kind), func(t *testing.T) {
			rel := buildRandom(t, kind, []int{1, 2}, 11, 400)
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 500; trial++ {
				pos := rng.Intn(3)
				op := ops[rng.Intn(len(ops))]
				v := randVal(rng)
				rs := []Restriction{{Pos: pos, Op: op, Val: v}}
				if rng.Intn(3) == 0 { // sometimes a conjunction, e.g. lo < b < hi
					rs = append(rs, Restriction{Pos: rng.Intn(3), Op: ops[rng.Intn(len(ops))], Val: randVal(rng)})
				}
				want := scanWhere(rel, func(t Tuple) bool { return SatisfiesAll(t, rs) })
				got := sorted(rel.Select(rs))
				if !reflect.DeepEqual(got, sorted(want)) {
					t.Fatalf("trial %d: Select(%v) = %v, scan oracle = %v", trial, rs, got, want)
				}
			}
			// SelectEq and SelectRange directly.
			for trial := 0; trial < 300; trial++ {
				pos := rng.Intn(3)
				v := randVal(rng)
				wantEq := scanWhere(rel, func(t Tuple) bool { return value.Equal(t[pos], v) })
				if got := sorted(rel.SelectEq(pos, v)); !reflect.DeepEqual(got, sorted(wantEq)) {
					t.Fatalf("trial %d: SelectEq(%d, %v) = %v, oracle %v", trial, pos, v, got, wantEq)
				}
				b, ok := RangeFor(ops[2+rng.Intn(4)], v) // Lt/Le/Gt/Ge
				if !ok {
					continue // nil probe value: no range
				}
				if rng.Intn(2) == 0 {
					if b2, ok2 := RangeFor(ops[2+rng.Intn(4)], randVal(rng)); ok2 {
						b = b.And(b2)
					}
				}
				wantR := scanWhere(rel, func(t Tuple) bool { return b.Contains(t[pos]) })
				if got := sorted(rel.SelectRange(pos, b)); !reflect.DeepEqual(got, sorted(wantR)) {
					t.Fatalf("trial %d: SelectRange(%d, %+v) = %v, oracle %v", trial, pos, b, got, wantR)
				}
			}
		})
	}
}

// TestPropBackendsEquivalent applies one randomized churn stream to a
// row-backed and a columnar-backed relation and checks they are
// observationally identical: same Len, same Scan sequence (ascending
// TupleID order on every backend), same selection results, same
// FindEqual answers.
func TestPropBackendsEquivalent(t *testing.T) {
	row := buildRandom(t, StorageRow, []int{0, 1}, 7, 500)
	col := buildRandom(t, StorageColumnar, []int{0, 1}, 7, 500)
	if row.Len() != col.Len() {
		t.Fatalf("Len: row %d, columnar %d", row.Len(), col.Len())
	}
	type pair struct {
		ID TupleID
		T  string
	}
	snap := func(r *Relation) []pair {
		var out []pair
		r.Scan(func(id TupleID, t Tuple) bool {
			out = append(out, pair{id, t.String()})
			return true
		})
		return out
	}
	rs, cs := snap(row), snap(col)
	if !reflect.DeepEqual(rs, cs) {
		t.Fatalf("scan sequences diverge:\nrow: %v\ncol: %v", rs, cs)
	}
	rng := rand.New(rand.NewSource(3))
	ops := []value.Op{value.OpEq, value.OpNe, value.OpLt, value.OpLe, value.OpGt, value.OpGe}
	for trial := 0; trial < 400; trial++ {
		rsx := []Restriction{{Pos: rng.Intn(3), Op: ops[rng.Intn(len(ops))], Val: randVal(rng)}}
		a, b := sorted(row.Select(rsx)), sorted(col.Select(rsx))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: Select(%v): row %v, columnar %v", trial, rsx, a, b)
		}
	}
	// FindEqual returns the oldest live match on both backends.
	row.Scan(func(id TupleID, tup Tuple) bool {
		rid, rok := row.FindEqual(tup)
		cid, cok := col.FindEqual(tup)
		if rok != cok || rid != cid {
			t.Fatalf("FindEqual(%v): row (%d,%v), columnar (%d,%v)", tup, rid, rok, cid, cok)
		}
		return true
	})
}

// TestDumpRestoreAcrossBackends round-trips a dump taken from one
// backend into a catalog running the other backend: contents, IDs, and
// subsequent ID assignment must survive the swap.
func TestDumpRestoreAcrossBackends(t *testing.T) {
	kinds := StorageKinds()
	for _, from := range kinds {
		for _, to := range kinds {
			t.Run(string(from)+"_to_"+string(to), func(t *testing.T) {
				src := NewDB(&metrics.Set{})
				if err := src.SetDefaultStorage(from); err != nil {
					t.Fatal(err)
				}
				rel, err := src.Create("T", "a", "b", "c")
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(21))
				var live []TupleID
				for i := 0; i < 200; i++ {
					id, err := rel.Insert(Tuple{randVal(rng), randVal(rng), randVal(rng)})
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, id)
					if len(live) > 2 && rng.Intn(4) == 0 {
						k := rng.Intn(len(live))
						if _, err := rel.Delete(live[k]); err != nil {
							t.Fatal(err)
						}
						live = append(live[:k], live[k+1:]...)
					}
				}
				var buf bytes.Buffer
				if err := src.Dump(&buf); err != nil {
					t.Fatal(err)
				}

				dst := NewDB(&metrics.Set{})
				if err := dst.SetDefaultStorage(to); err != nil {
					t.Fatal(err)
				}
				drel, err := dst.Create("T", "a", "b", "c")
				if err != nil {
					t.Fatal(err)
				}
				if _, err := dst.Restore(&buf); err != nil {
					t.Fatal(err)
				}
				if drel.Storage() != to {
					t.Fatalf("restored backend = %s, want %s", drel.Storage(), to)
				}
				snap := func(r *Relation) []string {
					var out []string
					r.Scan(func(id TupleID, tup Tuple) bool {
						out = append(out, fmt.Sprintf("%d:%s", id, tup))
						return true
					})
					return out
				}
				if got, want := snap(drel), snap(rel); !reflect.DeepEqual(got, want) {
					t.Fatalf("restored contents diverge:\ngot  %v\nwant %v", got, want)
				}
				// Fresh inserts must not collide with restored IDs.
				id, err := drel.Insert(Tuple{value.OfInt(1), value.OfInt(2), value.OfInt(3)})
				if err != nil {
					t.Fatal(err)
				}
				for _, l := range snap(rel) {
					if fmt.Sprintf("%d:", id) == l[:len(fmt.Sprintf("%d:", id))] {
						t.Fatalf("fresh ID %d collides with restored tuple %s", id, l)
					}
				}
			})
		}
	}
}

// TestStoreStats checks the typed Stats view on both backends.
func TestStoreStats(t *testing.T) {
	for _, kind := range StorageKinds() {
		rel := buildRandom(t, kind, []int{1}, 5, 100)
		st := rel.Stats()
		if st.Backend != kind {
			t.Errorf("%s: Backend = %s", kind, st.Backend)
		}
		if st.Tuples != rel.Len() {
			t.Errorf("%s: Tuples = %d, Len = %d", kind, st.Tuples, rel.Len())
		}
		if len(st.Indexes) != 1 || st.Indexes[0].Pos != 1 || st.Indexes[0].Attr != "b" {
			t.Errorf("%s: Indexes = %+v", kind, st.Indexes)
		}
		// Distinct count matches a scan over the indexed column.
		seen := map[value.V]bool{}
		rel.Scan(func(id TupleID, tup Tuple) bool {
			if !tup[1].IsNil() {
				seen[tup[1].Key()] = true
			}
			return true
		})
		if st.Indexes[0].Distinct != len(seen) {
			t.Errorf("%s: Distinct = %d, scan says %d", kind, st.Indexes[0].Distinct, len(seen))
		}
	}
}
