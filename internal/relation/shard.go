package relation

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"
	"strconv"

	"prodsys/internal/value"
)

// This file implements horizontal sharding of a relation: the tuples of
// one WM class are partitioned across N independent Store instances by a
// hash of the shard key (the first attribute), so per-shard maintenance
// work — the §4.2 matching-pattern check the paper calls "a
// single-relation search, fully parallelizable" — can proceed
// concurrently on disjoint state. The sharded store is itself a Store:
// Relation and everything above it (planner, matchers, persistence) see
// one relation with aggregate cardinality and statistics, while the
// engine's parallel match scheduler uses ShardOf to split delta batches
// into per-shard units.

// MaxShards bounds the shard count of one relation. The limit exists to
// keep per-shard fixed overhead (index maps, stores) proportionate; it
// is far above any useful fan-out on realistic hardware.
const MaxShards = 64

// EnvShards is the environment variable naming the process-default
// shard count (the CI shard matrix hook, mirroring PRODSYS_STORAGE).
const EnvShards = "PRODSYS_SHARDS"

// DefaultShardCount is the shard count used when none is configured:
// the PRODSYS_SHARDS environment variable when it holds an integer in
// [1, MaxShards], 1 (unsharded) otherwise.
func DefaultShardCount() int {
	if n, err := strconv.Atoi(os.Getenv(EnvShards)); err == nil && n >= 1 && n <= MaxShards {
		return n
	}
	return 1
}

// ParseShards validates a shard-count setting: 0 selects the process
// default (see DefaultShardCount), values in [1, MaxShards] pass
// through.
func ParseShards(n int) (int, error) {
	switch {
	case n == 0:
		return DefaultShardCount(), nil
	case n >= 1 && n <= MaxShards:
		return n, nil
	}
	return 0, fmt.Errorf("shard count %d out of range [1, %d]", n, MaxShards)
}

// hashValue hashes one attribute value under OPS5 equality: values that
// compare Equal (Int(3) vs Float(3.0), Sym vs Str of one spelling) hash
// identically, so equal shard keys always co-locate.
func hashValue(v value.V) uint64 {
	k := v.Key()
	h := fnv.New64a()
	var tag [9]byte
	tag[0] = byte(k.Kind())
	switch k.Kind() {
	case value.Int:
		binary.LittleEndian.PutUint64(tag[1:], uint64(k.AsInt()))
		h.Write(tag[:])
	case value.Float:
		binary.LittleEndian.PutUint64(tag[1:], math.Float64bits(k.AsFloat()))
		h.Write(tag[:])
	case value.Str, value.Sym:
		h.Write(tag[:1])
		h.Write([]byte(k.AsString()))
	default: // Nil
		h.Write(tag[:1])
	}
	return h.Sum64()
}

// shardOfTuple maps a tuple to its shard in [0, n): the hash of the
// first attribute modulo the shard count. Tuples with no attributes (or
// a nil key) land on shard 0.
func shardOfTuple(t Tuple, n int) int {
	if n <= 1 || len(t) == 0 {
		return 0
	}
	return int(hashValue(t[0]) % uint64(n))
}

// shardedStore partitions one relation's tuples across n sub-stores of
// a single backend kind by shardOfTuple. It implements Store, so the
// Relation shell above is oblivious to the partitioning; aggregate
// Len/Stats keep the planner's cardinality and drift inputs correct
// across shards (a single shard's view would trip spurious plan
// invalidations).
//
// ID-addressed operations route through byID; value-addressed equality
// probes on the shard key route to exactly one shard, and every other
// access fans out and merges in ascending-ID order, preserving the
// Store contract's determinism guarantees.
type shardedStore struct {
	kind StorageKind
	subs []Store
	byID map[TupleID]uint8

	// distinct tracks, per indexed attribute position, the live
	// refcount of each key value — so aggregate Stats reports the exact
	// distinct count across shards instead of a per-shard sum that
	// overcounts values split across shards.
	distinct map[int]map[value.V]int
}

// newShardedStore builds an n-way sharded store of the given backend.
func newShardedStore(kind StorageKind, arity, n int) *shardedStore {
	subs := make([]Store, n)
	for i := range subs {
		subs[i] = newStore(kind, arity)
	}
	return &shardedStore{
		kind:     kind,
		subs:     subs,
		byID:     make(map[TupleID]uint8),
		distinct: make(map[int]map[value.V]int),
	}
}

func (s *shardedStore) shardOf(t Tuple) int { return shardOfTuple(t, len(s.subs)) }

// Kind identifies the underlying backend; the partitioning is not a
// distinct storage kind.
func (s *shardedStore) Kind() StorageKind { return s.kind }

// Len returns the aggregate live tuple count across every shard.
func (s *shardedStore) Len() int { return len(s.byID) }

func (s *shardedStore) Get(id TupleID) (Tuple, bool) {
	sh, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return s.subs[sh].Get(id)
}

// countKeys adjusts the distinct refcounts for one tuple's indexed
// attributes by delta (+1 on insert, -1 on delete).
func (s *shardedStore) countKeys(t Tuple, delta int) {
	for pos, counts := range s.distinct {
		if pos >= len(t) {
			continue
		}
		k := t[pos].Key()
		if n := counts[k] + delta; n > 0 {
			counts[k] = n
		} else {
			delete(counts, k)
		}
	}
}

func (s *shardedStore) Insert(id TupleID, t Tuple) {
	sh := s.shardOf(t)
	s.subs[sh].Insert(id, t)
	s.byID[id] = uint8(sh)
	s.countKeys(t, +1)
}

func (s *shardedStore) InsertBatch(entries []DeltaEntry) {
	// Partition preserving order: each shard's slice keeps the batch's
	// ascending-ID invariant, so the sub-stores' bulk paths apply.
	parts := make([][]DeltaEntry, len(s.subs))
	for _, e := range entries {
		sh := s.shardOf(e.Tuple)
		parts[sh] = append(parts[sh], e)
		s.byID[e.ID] = uint8(sh)
		s.countKeys(e.Tuple, +1)
	}
	for sh, part := range parts {
		if len(part) > 0 {
			s.subs[sh].InsertBatch(part)
		}
	}
}

func (s *shardedStore) Delete(id TupleID) (Tuple, bool) {
	sh, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	t, ok := s.subs[sh].Delete(id)
	if ok {
		delete(s.byID, id)
		s.countKeys(t, -1)
	}
	return t, ok
}

// IDs merges the shards' (individually ascending) ID sequences into one
// ascending sequence — the Scan determinism contract.
func (s *shardedStore) IDs() []TupleID {
	out := make([]TupleID, 0, len(s.byID))
	for _, sub := range s.subs {
		out = append(out, sub.IDs()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *shardedStore) Scan(fn func(id TupleID, t Tuple) bool) {
	for _, id := range s.IDs() {
		t, ok := s.Get(id)
		if !ok {
			continue
		}
		if !fn(id, t) {
			return
		}
	}
}

func (s *shardedStore) SelectEq(pos int, v value.V) ([]TupleID, bool) {
	// An equality probe on the shard key touches exactly one shard:
	// OPS5-equal values hash identically, so every candidate lives there.
	if pos == 0 && len(s.subs) > 1 {
		return s.subs[shardOfTuple(Tuple{v}, len(s.subs))].SelectEq(pos, v)
	}
	return s.mergeProbe(func(sub Store) ([]TupleID, bool) { return sub.SelectEq(pos, v) })
}

func (s *shardedStore) SelectRange(pos int, b Bounds) ([]TupleID, bool) {
	return s.mergeProbe(func(sub Store) ([]TupleID, bool) { return sub.SelectRange(pos, b) })
}

// mergeProbe fans a probe out to every shard and merges the results in
// ascending-ID order. indexed reflects the shards' shared index
// configuration (CreateIndex fans out, so it is uniform).
func (s *shardedStore) mergeProbe(probe func(Store) ([]TupleID, bool)) ([]TupleID, bool) {
	var out []TupleID
	indexed := true
	for _, sub := range s.subs {
		ids, ix := probe(sub)
		out = append(out, ids...)
		indexed = indexed && ix
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, indexed
}

func (s *shardedStore) CreateIndex(pos int) {
	for _, sub := range s.subs {
		sub.CreateIndex(pos)
	}
	if _, ok := s.distinct[pos]; !ok {
		counts := make(map[value.V]int)
		s.Scan(func(_ TupleID, t Tuple) bool {
			if pos < len(t) {
				counts[t[pos].Key()]++
			}
			return true
		})
		s.distinct[pos] = counts
	}
}

func (s *shardedStore) HasIndex(pos int) bool { return s.subs[0].HasIndex(pos) }

func (s *shardedStore) Clear() {
	for _, sub := range s.subs {
		sub.Clear()
	}
	s.byID = make(map[TupleID]uint8)
	for pos := range s.distinct {
		s.distinct[pos] = make(map[value.V]int)
	}
}

// Stats aggregates across shards: cardinality is the sum, and each
// index's distinct count is the exact number of distinct live keys
// across all shards (tracked by refcount, not a per-shard sum — a value
// split across shards is still one value). This aggregate view is what
// the cost-based planner's estimates and drift invalidation consume.
func (s *shardedStore) Stats() StoreStats {
	st := StoreStats{Backend: s.kind, Tuples: len(s.byID), Shards: len(s.subs)}
	base := s.subs[0].Stats()
	for _, ix := range base.Indexes {
		st.Indexes = append(st.Indexes, IndexStat{
			Pos:      ix.Pos,
			Distinct: len(s.distinct[ix.Pos]),
		})
	}
	return st
}

// ShardStats snapshots each shard's own store shape — the per-shard
// observability view (skew diagnosis) that must never feed the planner.
func (s *shardedStore) ShardStats() []StoreStats {
	out := make([]StoreStats, len(s.subs))
	for i, sub := range s.subs {
		out[i] = sub.Stats()
		out[i].Shards = 1
	}
	return out
}

// Shards reports the relation's shard count (1 when unsharded).
func (r *Relation) Shards() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ss, ok := r.store.(*shardedStore); ok {
		return len(ss.subs)
	}
	return 1
}

// ShardOf maps a tuple to the shard it is (or would be) stored on: the
// hash of the first attribute modulo the shard count, 0 when unsharded.
// The engine's delta splitter uses this to route batch entries to
// per-shard sub-deltas that align exactly with the storage partitions.
func (r *Relation) ShardOf(t Tuple) int {
	return shardOfTuple(t, r.Shards())
}

// ShardStats snapshots per-shard storage statistics: one StoreStats per
// shard for a sharded relation, a single-element slice otherwise. The
// per-shard view serves observability (shard skew); planner inputs come
// from the aggregate Stats.
func (r *Relation) ShardStats() []StoreStats {
	r.mu.RLock()
	ss, ok := r.store.(*shardedStore)
	var out []StoreStats
	if ok {
		out = ss.ShardStats()
	} else {
		out = []StoreStats{r.store.Stats()}
	}
	r.mu.RUnlock()
	for i := range out {
		for j := range out[i].Indexes {
			if p := out[i].Indexes[j].Pos; p >= 0 && p < r.schema.Arity() {
				out[i].Indexes[j].Attr = r.schema.Attrs()[p]
			}
		}
	}
	return out
}
