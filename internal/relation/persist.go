package relation

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"prodsys/internal/value"
)

// The persistence format is line-oriented text:
//
//	#relation <name> <attr> <attr> ...
//	<id>\t<value>\t<value>...
//
// Values are kind-prefixed: i:42, f:2.5, y:symbol, s:"quoted string",
// n: (nil). Tuple IDs are preserved across a dump/restore cycle, so
// conflict-set keys and recency stay meaningful — the working memory "can
// reside on secondary storage and be persistent" (paper §3.2).

// EncodeValue renders one value in the kind-prefixed dump encoding. The
// write-ahead log uses the same encoding for tuple payloads.
func EncodeValue(v value.V) string {
	switch v.Kind() {
	case value.Int:
		return "i:" + strconv.FormatInt(v.AsInt(), 10)
	case value.Float:
		return "f:" + strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
	case value.Sym:
		return "y:" + v.AsString()
	case value.Str:
		return "s:" + strconv.Quote(v.AsString())
	default:
		return "n:"
	}
}

// DecodeValue parses one value in the kind-prefixed dump encoding.
func DecodeValue(s string) (value.V, error) {
	if len(s) < 2 || s[1] != ':' {
		return value.V{}, fmt.Errorf("relation: malformed value %q", s)
	}
	body := s[2:]
	switch s[0] {
	case 'i':
		i, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return value.V{}, fmt.Errorf("relation: bad int %q: %v", body, err)
		}
		return value.OfInt(i), nil
	case 'f':
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return value.V{}, fmt.Errorf("relation: bad float %q: %v", body, err)
		}
		return value.OfFloat(f), nil
	case 'y':
		return value.OfSym(body), nil
	case 's':
		str, err := strconv.Unquote(body)
		if err != nil {
			return value.V{}, fmt.Errorf("relation: bad string %q: %v", body, err)
		}
		return value.OfString(str), nil
	case 'n':
		return value.V{}, nil
	default:
		return value.V{}, fmt.Errorf("relation: unknown value kind %q", s)
	}
}

// Dump writes every relation of the catalog in the text format, relations
// and tuples in deterministic order.
func (db *DB) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range db.Names() {
		rel, err := db.Lookup(name)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "#relation %s %s\n", name, strings.Join(rel.Schema().Attrs(), " ")); err != nil {
			return err
		}
		var scanErr error
		rel.Scan(func(id TupleID, t Tuple) bool {
			parts := make([]string, 1, len(t)+1)
			parts[0] = strconv.FormatUint(uint64(id), 10)
			for _, v := range t {
				parts = append(parts, EncodeValue(v))
			}
			if _, err := fmt.Fprintln(bw, strings.Join(parts, "\t")); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if scanErr != nil {
			return scanErr
		}
	}
	return bw.Flush()
}

// RestoredTuple is one tuple read back from a dump, delivered to the
// caller so it can replay matcher maintenance.
type RestoredTuple struct {
	Class string
	ID    TupleID
	Tuple Tuple
}

// Restore reads a dump into the catalog. Relations must already exist
// with matching schemas (the rule program defines them); tuple IDs are
// preserved. The restored tuples are returned in file order so the caller
// can replay them through its matcher.
//
// Restore is all-or-nothing: the whole dump is parsed and validated —
// headers against the catalog, values, tuple IDs against both the live
// contents and the dump itself — before any relation is mutated. On
// error the catalog is untouched and no tuples are returned.
func (db *DB) Restore(r io.Reader) ([]RestoredTuple, error) {
	staged, err := db.parseDump(r)
	if err != nil {
		return nil, err
	}
	// Validation passed for every line; apply the whole dump.
	for _, rt := range staged {
		rel, err := db.Lookup(rt.Class)
		if err != nil {
			return nil, fmt.Errorf("relation: restore apply: %v", err)
		}
		if err := rel.insertWithID(rt.ID, rt.Tuple); err != nil {
			// Unreachable after validation; report rather than panic.
			return nil, fmt.Errorf("relation: restore apply: %v", err)
		}
	}
	return staged, nil
}

// parseDump reads and validates a dump without touching the catalog.
func (db *DB) parseDump(r io.Reader) ([]RestoredTuple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var cur *Relation
	var curName string
	var out []RestoredTuple
	// seen guards against duplicate IDs within the dump; live IDs are
	// checked against the relation itself.
	seen := map[string]map[TupleID]bool{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#relation ") {
			fields := strings.Fields(text)
			if len(fields) < 3 {
				return nil, fmt.Errorf("relation: line %d: malformed header %q", line, text)
			}
			name := fields[1]
			rel, ok := db.Get(name)
			if !ok {
				return nil, fmt.Errorf("relation: line %d: relation %s not in catalog", line, name)
			}
			attrs := rel.Schema().Attrs()
			if len(attrs) != len(fields)-2 {
				return nil, fmt.Errorf("relation: line %d: %s has %d attributes, dump has %d",
					line, name, len(attrs), len(fields)-2)
			}
			for i, a := range attrs {
				if a != fields[i+2] {
					return nil, fmt.Errorf("relation: line %d: attribute mismatch %q vs %q", line, a, fields[i+2])
				}
			}
			cur, curName = rel, name
			if seen[curName] == nil {
				seen[curName] = map[TupleID]bool{}
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("relation: line %d: tuple before any #relation header", line)
		}
		parts := strings.Split(text, "\t")
		if len(parts) != cur.Schema().Arity()+1 {
			return nil, fmt.Errorf("relation: line %d: expected %d fields, got %d",
				line, cur.Schema().Arity()+1, len(parts))
		}
		idU, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("relation: line %d: bad tuple id %q", line, parts[0])
		}
		t := make(Tuple, len(parts)-1)
		for i, p := range parts[1:] {
			v, err := DecodeValue(p)
			if err != nil {
				return nil, fmt.Errorf("relation: line %d: %v", line, err)
			}
			t[i] = v
		}
		id := TupleID(idU)
		if seen[curName][id] {
			return nil, fmt.Errorf("relation: line %d: relation %s: duplicate tuple id %d", line, curName, id)
		}
		if _, live := cur.Get(id); live {
			return nil, fmt.Errorf("relation: line %d: relation %s: tuple id %d already live", line, curName, id)
		}
		seen[curName][id] = true
		out = append(out, RestoredTuple{Class: curName, ID: id, Tuple: t})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// insertWithID stores a tuple under a specific ID (restore and recovery
// paths only). It works against any storage backend: the Store contract
// accepts out-of-order IDs, and the relation's ID counter is raised so
// future inserts never collide with restored tuples.
func (r *Relation) insertWithID(id TupleID, t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("relation %s: arity mismatch", r.Name())
	}
	ct := t.Clone()
	r.internTuple(ct)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.store.Get(id); dup {
		return fmt.Errorf("relation %s: duplicate tuple id %d", r.Name(), id)
	}
	r.store.Insert(id, ct)
	if id > r.next {
		r.next = id
	}
	return nil
}

// InsertAt stores a tuple under a caller-chosen ID — the write-ahead-log
// recovery path, which must reproduce the exact IDs the original run
// assigned so conflict-set keys and recency survive a restart. It is an
// error if the ID is already live.
func (r *Relation) InsertAt(id TupleID, t Tuple) error {
	return r.insertWithID(id, t)
}
