package relation

import (
	"sort"

	"prodsys/internal/value"
)

// rowStore is the row-major backend: tuples in a TupleID-keyed map plus
// a sorted ID slice for ordered iteration. Point access is O(1); scans
// follow the ID slice so iteration order is ascending TupleID (never Go
// map order). This is the original Relation representation moved behind
// the Store interface and upgraded with ordered secondary indexes.
type rowStore struct {
	tuples  map[TupleID]Tuple
	ids     []TupleID // maintained sorted ascending
	indexes map[int]*attrIndex
}

func newRowStore() *rowStore {
	return &rowStore{
		tuples:  make(map[TupleID]Tuple),
		indexes: make(map[int]*attrIndex),
	}
}

func (s *rowStore) Kind() StorageKind { return StorageRow }

func (s *rowStore) Len() int { return len(s.tuples) }

func (s *rowStore) Get(id TupleID) (Tuple, bool) {
	t, ok := s.tuples[id]
	return t, ok
}

func (s *rowStore) Insert(id TupleID, t Tuple) {
	s.tuples[id] = t
	s.ids = idInsert(s.ids, id)
	for pos, ix := range s.indexes {
		ix.add(t[pos], id)
	}
}

func (s *rowStore) InsertBatch(entries []DeltaEntry) {
	for _, e := range entries {
		s.Insert(e.ID, e.Tuple)
	}
}

func (s *rowStore) Delete(id TupleID) (Tuple, bool) {
	t, ok := s.tuples[id]
	if !ok {
		return nil, false
	}
	delete(s.tuples, id)
	s.ids = idRemove(s.ids, id)
	for pos, ix := range s.indexes {
		ix.remove(t[pos], id)
	}
	return t, true
}

func (s *rowStore) IDs() []TupleID {
	return append([]TupleID(nil), s.ids...)
}

func (s *rowStore) Scan(fn func(id TupleID, t Tuple) bool) {
	for _, id := range s.ids {
		if !fn(id, s.tuples[id]) {
			return
		}
	}
}

func (s *rowStore) SelectEq(pos int, v value.V) ([]TupleID, bool) {
	if ix := s.indexes[pos]; ix != nil {
		return ix.lookupIDs(v), true
	}
	var out []TupleID
	for _, id := range s.ids {
		if value.Equal(s.tuples[id][pos], v) {
			out = append(out, id)
		}
	}
	return out, false
}

func (s *rowStore) SelectRange(pos int, b Bounds) ([]TupleID, bool) {
	if ix := s.indexes[pos]; ix != nil {
		return ix.rangeIDs(b), true
	}
	var out []TupleID
	for _, id := range s.ids {
		if b.Contains(s.tuples[id][pos]) {
			out = append(out, id)
		}
	}
	return out, false
}

func (s *rowStore) CreateIndex(pos int) {
	if _, exists := s.indexes[pos]; exists {
		return
	}
	ix := newAttrIndex()
	for id, t := range s.tuples {
		ix.add(t[pos], id)
	}
	s.indexes[pos] = ix
}

func (s *rowStore) HasIndex(pos int) bool {
	_, ok := s.indexes[pos]
	return ok
}

func (s *rowStore) Clear() {
	s.tuples = make(map[TupleID]Tuple)
	s.ids = nil
	for _, ix := range s.indexes {
		ix.clear()
	}
}

func (s *rowStore) Stats() StoreStats {
	st := StoreStats{Backend: StorageRow, Tuples: len(s.tuples)}
	positions := make([]int, 0, len(s.indexes))
	for pos := range s.indexes {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	for _, pos := range positions {
		st.Indexes = append(st.Indexes, IndexStat{Pos: pos, Distinct: s.indexes[pos].distinct()})
	}
	return st
}
