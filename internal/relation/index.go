package relation

import (
	"sort"

	"prodsys/internal/value"
)

// attrIndex is one secondary index over a single attribute position,
// maintained by both storage backends. It pairs a hash map for O(1)
// equality probes with sorted key lists for ordered range probes — the
// "sorted in addition to hash" access paths of ROADMAP item 3. Keys are
// normalized with value.V.Key(), so Int/Float and Str/Sym collapse the
// same way value.Equal does. Nil values are not indexed: OPS5 equality
// and range comparisons never admit nil, so a nil-valued tuple can
// never be an index hit (probing for nil correctly yields nothing,
// matching the scan path).
type attrIndex struct {
	hash map[value.V]map[TupleID]struct{}
	num  []ordEntry // numeric keys, ascending by numeric value
	txt  []ordEntry // textual keys, ascending by string
}

// ordEntry groups the IDs carrying one distinct key value.
type ordEntry struct {
	key value.V
	ids []TupleID // ascending
}

func newAttrIndex() *attrIndex {
	return &attrIndex{hash: make(map[value.V]map[TupleID]struct{})}
}

func (ix *attrIndex) add(v value.V, id TupleID) {
	if v.IsNil() {
		return
	}
	k := v.Key()
	set := ix.hash[k]
	if set == nil {
		set = make(map[TupleID]struct{})
		ix.hash[k] = set
	}
	set[id] = struct{}{}
	if k.IsNumeric() {
		ix.num = ordInsert(ix.num, k, id)
	} else {
		ix.txt = ordInsert(ix.txt, k, id)
	}
}

func (ix *attrIndex) remove(v value.V, id TupleID) {
	if v.IsNil() {
		return
	}
	k := v.Key()
	if set := ix.hash[k]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(ix.hash, k)
		}
	}
	if k.IsNumeric() {
		ix.num = ordRemove(ix.num, k, id)
	} else {
		ix.txt = ordRemove(ix.txt, k, id)
	}
}

// lookup returns the ID set for an equality probe; nil probes hit
// nothing by construction.
func (ix *attrIndex) lookup(v value.V) map[TupleID]struct{} {
	if v.IsNil() {
		return nil
	}
	return ix.hash[v.Key()]
}

// lookupIDs materializes an equality probe in ascending ID order.
func (ix *attrIndex) lookupIDs(v value.V) []TupleID {
	set := ix.lookup(v)
	if len(set) == 0 {
		return nil
	}
	out := make([]TupleID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// distinct returns the number of distinct live key values.
func (ix *attrIndex) distinct() int { return len(ix.hash) }

func (ix *attrIndex) clear() {
	ix.hash = make(map[value.V]map[TupleID]struct{})
	ix.num, ix.txt = nil, nil
}

// rangeIDs collects the IDs of tuples whose key lies within b, in
// ascending ID order. The bound values pick the category list; a range
// never spans categories (value.Compare orders only like categories).
func (ix *attrIndex) rangeIDs(b Bounds) []TupleID {
	bound := b.Lo
	if bound.IsNil() {
		bound = b.Hi
	}
	if bound.IsNil() {
		return nil
	}
	if !b.Lo.IsNil() && !b.Hi.IsNil() {
		if _, ok := value.Compare(b.Lo, b.Hi); !ok {
			return nil // mixed-category bounds: nothing satisfies both
		}
	}
	list := ix.txt
	if bound.IsNumeric() {
		list = ix.num
	}
	lo := 0
	if !b.Lo.IsNil() {
		lo = sort.Search(len(list), func(i int) bool {
			cmp, _ := value.Compare(list[i].key, b.Lo)
			if b.LoIncl {
				return cmp >= 0
			}
			return cmp > 0
		})
	}
	hi := len(list)
	if !b.Hi.IsNil() {
		hi = sort.Search(len(list), func(i int) bool {
			cmp, _ := value.Compare(list[i].key, b.Hi)
			if b.HiIncl {
				return cmp > 0
			}
			return cmp >= 0
		})
	}
	if lo >= hi {
		return nil
	}
	n := 0
	for _, e := range list[lo:hi] {
		n += len(e.ids)
	}
	out := make([]TupleID, 0, n)
	for _, e := range list[lo:hi] {
		out = append(out, e.ids...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ordFind locates the entry for key k (already Key()-normalized) in a
// sorted entry list, returning the insertion point and whether the
// entry exists.
func ordFind(list []ordEntry, k value.V) (int, bool) {
	i := sort.Search(len(list), func(i int) bool {
		cmp, _ := value.Compare(list[i].key, k)
		return cmp >= 0
	})
	if i < len(list) {
		if cmp, ok := value.Compare(list[i].key, k); ok && cmp == 0 {
			return i, true
		}
	}
	return i, false
}

// ordInsert adds (k, id) to the sorted entry list.
func ordInsert(list []ordEntry, k value.V, id TupleID) []ordEntry {
	i, found := ordFind(list, k)
	if found {
		list[i].ids = idInsert(list[i].ids, id)
		return list
	}
	list = append(list, ordEntry{})
	copy(list[i+1:], list[i:])
	list[i] = ordEntry{key: k, ids: []TupleID{id}}
	return list
}

// ordRemove drops (k, id) from the sorted entry list, deleting the
// entry when its ID list empties.
func ordRemove(list []ordEntry, k value.V, id TupleID) []ordEntry {
	i, found := ordFind(list, k)
	if !found {
		return list
	}
	list[i].ids = idRemove(list[i].ids, id)
	if len(list[i].ids) == 0 {
		list = append(list[:i], list[i+1:]...)
	}
	return list
}

// idInsert adds id to a sorted ID slice. IDs are assigned in increasing
// order, so the common case is a plain append.
func idInsert(ids []TupleID, id TupleID) []TupleID {
	if n := len(ids); n == 0 || ids[n-1] < id {
		return append(ids, id)
	}
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// idRemove drops id from a sorted ID slice.
func idRemove(ids []TupleID, id TupleID) []TupleID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return append(ids[:i], ids[i+1:]...)
	}
	return ids
}
