package relation

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"prodsys/internal/value"
)

// This file defines the pluggable storage layer behind Relation: the
// Store interface every tuple backend implements, the backend registry,
// and the value-interning cache shared by the backends. The paper's
// thesis is that working memory is relational data; making the relation
// a thin concurrency/accounting shell over an exchangeable access-method
// layer is the DBMS reading of that thesis (§3.2), and the seam the
// cost-based planner and sharding arcs build on.

// StorageKind names a tuple storage backend.
type StorageKind string

// The built-in storage backends.
const (
	// StorageRow is the row-major backend: a TupleID-keyed map with
	// hash+ordered secondary indexes. Best for tuple-at-a-time updates
	// and point access.
	StorageRow StorageKind = "row"
	// StorageColumnar is the column-major backend: per-attribute value
	// arrays with positional tombstones, optimized for the set-oriented
	// ApplyDelta maintenance path (bulk appends, single-column
	// selection scans).
	StorageColumnar StorageKind = "columnar"
)

// ErrUnknownStorage marks a storage-kind spelling with no backend; test
// with errors.Is.
var ErrUnknownStorage = errors.New("unknown storage backend")

// StorageKinds returns the available backends in stable order.
func StorageKinds() []StorageKind {
	return []StorageKind{StorageRow, StorageColumnar}
}

// ParseStorage validates a storage-kind spelling. The empty string
// selects the process default (see DefaultStorageKind).
func ParseStorage(s string) (StorageKind, error) {
	switch StorageKind(s) {
	case "":
		return DefaultStorageKind(), nil
	case StorageRow, StorageColumnar:
		return StorageKind(s), nil
	}
	return "", fmt.Errorf("%w: %q (want one of %v)", ErrUnknownStorage, s, StorageKinds())
}

// DefaultStorageKind is the backend used when none is configured: the
// PRODSYS_STORAGE environment variable when it names a valid backend,
// StorageRow otherwise. The env hook lets the whole test suite run
// against an alternate backend without per-call plumbing (the CI
// backend matrix).
func DefaultStorageKind() StorageKind {
	switch k := StorageKind(os.Getenv("PRODSYS_STORAGE")); k {
	case StorageRow, StorageColumnar:
		return k
	}
	return StorageRow
}

// Bounds is a one-dimensional range over attribute values: Lo/Hi are
// inclusive or exclusive endpoints, and a nil value leaves that side
// unbounded. Comparisons follow value.Compare, so a bound only admits
// values of its own category (numeric or textual) — exactly the
// semantics of value.Op.Apply for the range operators.
type Bounds struct {
	Lo, Hi         value.V
	LoIncl, HiIncl bool
}

// RangeFor translates a range restriction "attr op v" into Bounds; ok
// is false for operators that are not ranges (=, <>) or a nil operand.
func RangeFor(op value.Op, v value.V) (Bounds, bool) {
	if v.IsNil() {
		return Bounds{}, false
	}
	switch op {
	case value.OpLt:
		return Bounds{Hi: v}, true
	case value.OpLe:
		return Bounds{Hi: v, HiIncl: true}, true
	case value.OpGt:
		return Bounds{Lo: v}, true
	case value.OpGe:
		return Bounds{Lo: v, LoIncl: true}, true
	}
	return Bounds{}, false
}

// Contains reports whether v lies within the bounds. Values incomparable
// with a bound (nil, or the other category) are outside.
func (b Bounds) Contains(v value.V) bool {
	if !b.Lo.IsNil() {
		cmp, ok := value.Compare(v, b.Lo)
		if !ok || cmp < 0 || (cmp == 0 && !b.LoIncl) {
			return false
		}
	}
	if !b.Hi.IsNil() {
		cmp, ok := value.Compare(v, b.Hi)
		if !ok || cmp > 0 || (cmp == 0 && !b.HiIncl) {
			return false
		}
	}
	return true
}

// And intersects two bounds, keeping the tighter endpoint on each side.
// Incomparable endpoints (mixed categories) keep the receiver's side;
// the residual restriction filter catches what the probe over-returns.
func (b Bounds) And(o Bounds) Bounds {
	out := b
	if !o.Lo.IsNil() {
		if out.Lo.IsNil() {
			out.Lo, out.LoIncl = o.Lo, o.LoIncl
		} else if cmp, ok := value.Compare(o.Lo, out.Lo); ok && (cmp > 0 || (cmp == 0 && !o.LoIncl)) {
			out.Lo, out.LoIncl = o.Lo, o.LoIncl
		}
	}
	if !o.Hi.IsNil() {
		if out.Hi.IsNil() {
			out.Hi, out.HiIncl = o.Hi, o.HiIncl
		} else if cmp, ok := value.Compare(o.Hi, out.Hi); ok && (cmp < 0 || (cmp == 0 && !o.HiIncl)) {
			out.Hi, out.HiIncl = o.Hi, o.HiIncl
		}
	}
	return out
}

// IndexStat describes one secondary index for planning and diagnostics.
type IndexStat struct {
	// Pos is the indexed attribute position.
	Pos int
	// Attr is the attribute name (filled by Relation.StoreStats).
	Attr string
	// Distinct is the number of distinct live key values — the
	// selectivity input a cost-based planner needs.
	Distinct int
}

// StoreStats is a typed snapshot of one store's shape.
type StoreStats struct {
	// Backend is the storage kind serving the relation.
	Backend StorageKind
	// Tuples is the live cardinality. For a sharded relation this is
	// the aggregate across every shard — the figure planner estimates
	// and drift invalidation must consume.
	Tuples int
	// Shards is the shard count of a horizontally partitioned relation;
	// zero means the store is a plain (unsharded) backend.
	Shards int
	// Indexes lists the secondary indexes in ascending position order.
	Indexes []IndexStat
}

// Store is a tuple storage backend: a bag of tuples addressable by
// TupleID with optional per-attribute secondary indexes (hash for
// equality, ordered for ranges). A Store is NOT safe for concurrent
// use — Relation serializes access under its lock and layers cloning,
// ID assignment, and I/O accounting on top.
//
// Tuples handed to Insert/InsertBatch are owned by the store; tuples
// returned by Get/Scan must not be mutated by the caller.
type Store interface {
	// Kind identifies the backend.
	Kind() StorageKind
	// Len returns the live tuple count.
	Len() int
	// Get returns the tuple stored under id.
	Get(id TupleID) (Tuple, bool)
	// Insert stores t under id. The caller guarantees id is not live
	// and t matches the arity.
	Insert(id TupleID, t Tuple)
	// InsertBatch bulk-stores entries (ascending IDs, none live) — the
	// set-oriented append the ApplyDelta path uses.
	InsertBatch(entries []DeltaEntry)
	// Delete removes the tuple under id, returning it.
	Delete(id TupleID) (Tuple, bool)
	// IDs returns a fresh slice of the live IDs in ascending order.
	IDs() []TupleID
	// Scan visits every live tuple in ascending TupleID order until fn
	// returns false.
	Scan(fn func(id TupleID, t Tuple) bool)
	// SelectEq returns the IDs (ascending) of tuples whose attribute at
	// pos equals v under OPS5 equality. indexed reports whether an index
	// probe served the call; otherwise the store fell back to scanning.
	SelectEq(pos int, v value.V) (ids []TupleID, indexed bool)
	// SelectRange returns the IDs (ascending) of tuples whose attribute
	// at pos lies within b. indexed reports an ordered-index probe.
	SelectRange(pos int, b Bounds) (ids []TupleID, indexed bool)
	// CreateIndex builds (idempotently) hash+ordered indexes on pos.
	CreateIndex(pos int)
	// HasIndex reports whether pos is indexed.
	HasIndex(pos int) bool
	// Clear removes every tuple but keeps the indexes.
	Clear()
	// Stats snapshots cardinality and per-index distinct counts.
	Stats() StoreStats
}

// newStore constructs a backend of the given kind. Unknown kinds fall
// back to the row store (callers validate with ParseStorage first).
func newStore(kind StorageKind, arity int) Store {
	if kind == StorageColumnar {
		return newColStore(arity)
	}
	return newRowStore()
}

// internTable deduplicates string payloads across the relations of one
// catalog. Interning makes equal stored strings share one backing
// array, so the string comparisons saturating the join/alpha hot path
// short-circuit on the data pointer instead of comparing bytes —
// janus-datalog measured 6.26× on comparison-bound workloads from
// exactly this. hits counts payloads that were already present.
type internTable struct {
	mu   sync.Mutex
	strs map[string]string
	hits int64
}

func newInternTable() *internTable {
	return &internTable{strs: make(map[string]string)}
}

// str returns the canonical copy of s, recording a hit when s was
// already interned.
func (it *internTable) str(s string) (string, bool) {
	it.mu.Lock()
	defer it.mu.Unlock()
	if c, ok := it.strs[s]; ok {
		it.hits++
		return c, true
	}
	it.strs[s] = s
	return s, false
}

// val canonicalizes the payload of textual values; other kinds pass
// through untouched.
func (it *internTable) val(v value.V) (value.V, bool) {
	if it == nil {
		return v, false
	}
	switch v.Kind() {
	case value.Str:
		s, hit := it.str(v.AsString())
		return value.OfString(s), hit
	case value.Sym:
		s, hit := it.str(v.AsString())
		return value.OfSym(s), hit
	}
	return v, false
}

// Hits returns the number of interned (deduplicated) payloads so far.
func (it *internTable) Hits() int64 {
	if it == nil {
		return 0
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.hits
}
