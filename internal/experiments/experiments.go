// Package experiments implements the reproduction harness: one function
// per experiment in the DESIGN.md index (E1–E11 plus the paper's three
// figures), each returning a printable table. The cmd/psbench binary
// prints them; bench_test.go wraps the hot kernels in testing.B loops.
//
// The paper reports no measured numbers, so each table's "expected shape"
// note states the qualitative claim from the paper that the measurement
// substantiates.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/marker"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/ptree"
	"prodsys/internal/relation"
	"prodsys/internal/requery"
	"prodsys/internal/rete"
	"prodsys/internal/rules"
	"prodsys/internal/workload"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Note    string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		b.WriteString("note: " + t.Note + "\n")
	}
	return b.String()
}

// session bundles a WM catalog with one matcher.
type session struct {
	set     *rules.Set
	db      *relation.DB
	matcher match.Matcher
	stats   *metrics.Set
	live    map[string][]relation.TupleID
}

// newSession compiles src and builds the named matcher.
func newSession(src, matcherName string) (*session, error) {
	set, _, err := rules.CompileSource(src)
	if err != nil {
		return nil, err
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := rules.BuildDB(set, db); err != nil {
		return nil, err
	}
	cs := conflict.NewSet(stats)
	var m match.Matcher
	switch matcherName {
	case "rete":
		m = rete.New(set, cs, stats)
	case "rete-shared":
		m = rete.NewShared(set, cs, stats)
	case "requery":
		m = requery.New(set, db, cs, stats)
	case "core":
		m = core.New(set, db, cs, stats)
	case "core-parallel":
		m = core.New(set, db, cs, stats, core.WithParallelPropagation())
	case "marker":
		m = marker.New(set, db, cs, stats)
	case "ptree":
		m = ptree.NewMatcher(set, db, cs, stats)
	default:
		return nil, fmt.Errorf("experiments: unknown matcher %q", matcherName)
	}
	return &session{set: set, db: db, matcher: m, stats: stats, live: map[string][]relation.TupleID{}}, nil
}

// mustSession panics on setup errors (workload sources are trusted).
func mustSession(src, matcherName string) *session {
	s, err := newSession(src, matcherName)
	if err != nil {
		panic(err)
	}
	return s
}

// mustSessionOpts builds a session over the core matcher with explicit
// options.
func mustSessionOpts(src string, opts ...core.Option) *session {
	set, _, err := rules.CompileSource(src)
	if err != nil {
		panic(err)
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := rules.BuildDB(set, db); err != nil {
		panic(err)
	}
	cs := conflict.NewSet(stats)
	return &session{
		set: set, db: db, stats: stats,
		matcher: core.New(set, db, cs, stats, opts...),
		live:    map[string][]relation.TupleID{},
	}
}

// insert stores the tuple in WM and notifies the matcher.
func (s *session) insert(class string, t relation.Tuple) relation.TupleID {
	rel, err := s.db.Lookup(class)
	if err != nil {
		panic(err)
	}
	id, err := rel.Insert(t)
	if err != nil {
		panic(err)
	}
	stored, _ := rel.Get(id)
	if err := s.matcher.Insert(class, id, stored); err != nil {
		panic(err)
	}
	s.live[class] = append(s.live[class], id)
	return id
}

// deleteOldest removes the oldest live tuple of the class (round-robin
// fallback across classes when the class is empty).
func (s *session) deleteOldest(class string) {
	ids := s.live[class]
	if len(ids) == 0 {
		for c, l := range s.live {
			if len(l) > 0 {
				class, ids = c, l
				break
			}
		}
		if len(ids) == 0 {
			return
		}
	}
	id := ids[0]
	s.live[class] = ids[1:]
	rel, err := s.db.Lookup(class)
	if err != nil {
		panic(err)
	}
	t, err := rel.Delete(id)
	if err != nil {
		panic(err)
	}
	if err := s.matcher.Delete(class, id, t); err != nil {
		panic(err)
	}
}

// apply runs a workload op stream.
func (s *session) apply(ops []workload.Op) {
	for _, op := range ops {
		if op.Delete {
			s.deleteOldest(op.Class)
			continue
		}
		s.insert(op.Class, op.Tuple)
	}
}

// timeIt measures fn.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// ns renders a duration in microseconds with 1 decimal.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

// All returns every experiment table, in index order, using default
// (moderate) parameters. scale < 1 shrinks the workloads for quick runs.
func All(scale float64) []Table {
	if scale <= 0 {
		scale = 1
	}
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 1 {
			return 1
		}
		return v
	}
	return []Table{
		Fig1(),
		Fig2(),
		Fig3(),
		E1PropagationDepth([]int{2, 4, 8, 16, 32}, n(200)),
		E2MatchTime([]int{10, 100, 1000}, n(2000)),
		E3Space([]int{10, 100}, n(1000)),
		E4FalseDrops([]float64{0, 0.25, 0.5, 0.75, 0.9}, n(1000)),
		E5ParallelPropagation(n(300)),
		E6Serializability(6),
		E7ConcurrentThroughput(8, n(64), []int{1, 2, 4, 8}),
		E8ScheduleCount(),
		E9Negation(n(1500)),
		E10ViewMaintenance(n(500)),
		E11RuleQuery(n(1000), n(500)),
		E12SharedNetwork(5, 4, n(800)),
		E13ConcurrencyPotential(n(64)),
	}
}
