package experiments

import (
	"fmt"
	"math/rand"
	"reflect"

	"prodsys/internal/joiner"
	"prodsys/internal/metrics"
	"prodsys/internal/ptree"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
	"prodsys/internal/view"
	"prodsys/internal/workload"
)

// negationChurnSrc exercises inverted-default semantics: rules fire on
// the absence of blockers, and blockers come and go.
const negationChurnSrc = `
(literalize Emp name dno)
(literalize Dept dno dname)
(p Orphan (Emp ^name <n> ^dno <d>) - (Dept ^dno <d>) --> (halt))
(p Staffed (Dept ^dno <d> ^dname <m>) (Emp ^dno <d>) --> (halt))
`

// E9Negation measures negated-condition maintenance under churn
// (§4.2.2: "negated conditions can be supported easily") and verifies
// all matchers agree at the end.
func E9Negation(ops int) Table {
	t := Table{
		ID:    "E9",
		Title: fmt.Sprintf("negated condition elements under churn (%d ops, 35%% deletes)", ops),
		Columns: []string{
			"matcher", "total ms", "instantiations", "retractions", "final conflict set",
		},
		Note: "every matcher must converge to the same conflict set; the cost difference is where the NOT EXISTS work happens",
	}
	gen := func() []workload.Op {
		r := rand.New(rand.NewSource(99))
		out := make([]workload.Op, 0, ops)
		live := 0
		for i := 0; i < ops; i++ {
			if live > 0 && r.Float64() < 0.35 {
				cls := "Emp"
				if r.Intn(2) == 0 {
					cls = "Dept"
				}
				out = append(out, workload.Op{Delete: true, Class: cls})
				live--
				continue
			}
			if r.Intn(2) == 0 {
				out = append(out, workload.Op{Class: "Dept", Tuple: relation.Tuple{
					value.OfInt(int64(r.Intn(6))), value.OfSym("d"),
				}})
			} else {
				out = append(out, workload.Op{Class: "Emp", Tuple: relation.Tuple{
					value.OfSym(fmt.Sprintf("e%d", i)), value.OfInt(int64(r.Intn(6))),
				}})
			}
			live++
		}
		return out
	}
	stream := gen()
	var reference []string
	agree := true
	for _, m := range []string{"rete", "requery", "core"} {
		s := mustSession(negationChurnSrc, m)
		d := timeIt(func() { s.apply(stream) })
		keys := s.matcher.ConflictSet().Keys()
		if reference == nil {
			reference = keys
		} else if !reflect.DeepEqual(reference, keys) {
			agree = false
		}
		sn := s.stats.Snapshot()
		t.Rows = append(t.Rows, []string{
			m,
			fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3),
			fmt.Sprintf("%d", sn.Get(metrics.Instantiations)),
			fmt.Sprintf("%d", sn.Get(metrics.Retractions)),
			fmt.Sprintf("%d entries", len(keys)),
		})
	}
	if agree {
		t.Note += "; matchers AGREE on the final conflict set"
	} else {
		t.Note += "; MATCHERS DISAGREE — correctness bug"
	}
	return t
}

// E10ViewMaintenance compares incremental materialized-view maintenance
// (this paper's machinery, §2.3/§6) against recomputing the view on
// every update (the Buneman–Clemons baseline the paper cites as "very
// expensive").
func E10ViewMaintenance(updates int) Table {
	const viewSrc = `
(literalize Emp name salary dno)
(literalize Dept dno dname)
(p ToyStaff
    (Emp ^name <n> ^salary <s> ^dno <d>)
    (Dept ^dno <d> ^dname Toy)
  -->)
`
	t := Table{
		ID:    "E10",
		Title: fmt.Sprintf("materialized view over Emp⋈Dept, %d updates", updates),
		Columns: []string{
			"strategy", "total ms", "tuples scanned", "final view rows",
		},
		Note: "incremental maintenance touches COND relations per update; recomputation joins the base relations after every update",
	}
	makeOps := func() []workload.Op {
		r := rand.New(rand.NewSource(5))
		ops := make([]workload.Op, 0, updates)
		for d := 0; d < 10; d++ {
			name := "Toy"
			if d%2 == 1 {
				name = "Shoe"
			}
			ops = append(ops, workload.Op{Class: "Dept", Tuple: relation.Tuple{
				value.OfInt(int64(d)), value.OfSym(name),
			}})
		}
		live := 0
		for i := len(ops); i < updates; i++ {
			if live > 0 && r.Float64() < 0.3 {
				ops = append(ops, workload.Op{Delete: true, Class: "Emp"})
				live--
				continue
			}
			ops = append(ops, workload.Op{Class: "Emp", Tuple: relation.Tuple{
				value.OfSym(fmt.Sprintf("e%d", i)), value.OfInt(int64(r.Intn(5000))), value.OfInt(int64(r.Intn(10))),
			}})
			live++
		}
		return ops
	}

	// Incremental: the view manager over the matching-pattern matcher.
	{
		set, _, err := rules.CompileSource(viewSrc)
		if err != nil {
			panic(err)
		}
		stats := &metrics.Set{}
		db := relation.NewDB(stats)
		if err := rules.BuildDB(set, db); err != nil {
			panic(err)
		}
		mgr, err := view.NewManager(viewSrc, db, stats)
		if err != nil {
			panic(err)
		}
		live := map[string][]relation.TupleID{}
		d := timeIt(func() {
			for _, op := range makeOps() {
				if op.Delete {
					ids := live[op.Class]
					if len(ids) == 0 {
						continue
					}
					id := ids[0]
					live[op.Class] = ids[1:]
					rel, err := db.Lookup(op.Class)
					if err != nil {
						panic(err)
					}
					tup, _ := rel.Delete(id)
					mgr.Delete(op.Class, id, tup)
					continue
				}
				rel, err := db.Lookup(op.Class)
				if err != nil {
					panic(err)
				}
				id, _ := rel.Insert(op.Tuple)
				tup, _ := rel.Get(id)
				mgr.Insert(op.Class, id, tup)
				live[op.Class] = append(live[op.Class], id)
			}
		})
		v, _ := mgr.View("ToyStaff")
		t.Rows = append(t.Rows, []string{
			"incremental (matching patterns)",
			fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3),
			fmt.Sprintf("%d", stats.Get(metrics.TuplesScanned)),
			fmt.Sprintf("%d", v.Len()),
		})
	}

	// Recompute: evaluate the qualification from scratch after every
	// update.
	{
		set, _, err := rules.CompileSource(viewSrc)
		if err != nil {
			panic(err)
		}
		stats := &metrics.Set{}
		db := relation.NewDB(stats)
		if err := rules.BuildDB(set, db); err != nil {
			panic(err)
		}
		r := set.Rules[0]
		live := map[string][]relation.TupleID{}
		rowCount := 0
		d := timeIt(func() {
			for _, op := range makeOps() {
				if op.Delete {
					ids := live[op.Class]
					if len(ids) == 0 {
						continue
					}
					id := ids[0]
					live[op.Class] = ids[1:]
					rel, err := db.Lookup(op.Class)
					if err != nil {
						panic(err)
					}
					rel.Delete(id)
				} else {
					rel, err := db.Lookup(op.Class)
					if err != nil {
						panic(err)
					}
					id, _ := rel.Insert(op.Tuple)
					live[op.Class] = append(live[op.Class], id)
				}
				rowCount = 0
				joiner.Enumerate(db, r, nil, nil, stats, func([]relation.TupleID, []relation.Tuple, rules.Bindings) {
					rowCount++
				})
			}
		})
		t.Rows = append(t.Rows, []string{
			"recompute per update",
			fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3),
			fmt.Sprintf("%d", stats.Get(metrics.TuplesScanned)),
			fmt.Sprintf("%d", rowCount),
		})
	}
	return t
}

// E11RuleQuery compares the Predicate Indexing R-tree against a linear
// scan of the COND relation for rulebase queries and insertion-time
// candidate search (§4.2.3: R-trees on COND relations "help in speeding
// up this process").
func E11RuleQuery(conditions, probes int) Table {
	t := Table{
		ID:    "E11",
		Title: fmt.Sprintf("condition search: R-tree vs linear scan (%d conditions, %d probes)", conditions, probes),
		Columns: []string{
			"method", "total ms", "avg candidates", "avg checked",
		},
		Note: "the R-tree inspects only subtrees whose bounding rectangles admit the probe; the linear scan checks every condition",
	}
	// Build a rule set with `conditions` disjoint salary-band rules.
	src := workload.OverlapRules(conditions, 0)
	set, _, err := rules.CompileSource(src)
	if err != nil {
		panic(err)
	}
	ix := ptree.NewIndex(set, &metrics.Set{})
	r := rand.New(rand.NewSource(3))
	probeTuples := make([]relation.Tuple, probes)
	for i := range probeTuples {
		probeTuples[i] = relation.Tuple{
			value.OfSym("e"), value.OfInt(int64(r.Intn(10000))), value.OfInt(int64(r.Intn(5))),
		}
	}

	var treeCands int
	treeTime := timeIt(func() {
		for _, tup := range probeTuples {
			treeCands += len(ix.CandidatesFor("Emp", tup))
		}
	})

	var scanCands, scanChecked int
	scanTime := timeIt(func() {
		for _, tup := range probeTuples {
			for _, ce := range set.ByClass["Emp"] {
				scanChecked++
				if ce.MatchAlpha(tup) {
					scanCands++
				}
			}
		}
	})

	t.Rows = append(t.Rows, []string{
		"R-tree (predicate index)",
		fmt.Sprintf("%.2f", float64(treeTime.Microseconds())/1e3),
		fmt.Sprintf("%.2f", float64(treeCands)/float64(probes)),
		"pruned subtrees only",
	})
	t.Rows = append(t.Rows, []string{
		"linear COND scan",
		fmt.Sprintf("%.2f", float64(scanTime.Microseconds())/1e3),
		fmt.Sprintf("%.2f", float64(scanCands)/float64(probes)),
		fmt.Sprintf("%.0f per probe", float64(scanChecked)/float64(probes)),
	})
	return t
}
