package experiments

import (
	"fmt"
	"io"
	"time"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/engine"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/requery"
	"prodsys/internal/rules"
	"prodsys/internal/workload"
)

// StorageResult is one (matcher, backend, indexed) cell of the storage
// benchmark: the time to apply one payroll insert batch set-at-a-time,
// plus the storage-layer counters that explain it.
type StorageResult struct {
	Matcher       string  `json:"matcher"`
	Backend       string  `json:"backend"`
	Indexed       bool    `json:"indexed"`
	Rules         int     `json:"rules"`
	Ops           int     `json:"ops"`
	Millis        float64 `json:"ms"`
	TuplesScanned int64   `json:"tuples_scanned"`
	IndexLookups  int64   `json:"index_lookups"`
	RangeProbes   int64   `json:"index_range_probes"`
	BatchInserts  int64   `json:"batch_inserts"`
	InternHits    int64   `json:"intern_hits"`
}

// StorageBench measures the storage access paths under match load: the
// payroll insert workload applied as one ApplyDelta batch, crossed over
// {row, columnar} × {indexed, scan-only} × {core, requery}. The indexed
// runs answer alpha selections (^salary > n) and join probes from the
// hash+ordered secondary indexes; the scan-only runs build the same
// catalog with BuildCatalog alone, forcing every selection through a
// full class scan.
func StorageBench(ruleCount, nOps int) []StorageResult {
	var out []StorageResult
	for _, matcherName := range []string{"core", "requery"} {
		for _, kind := range relation.StorageKinds() {
			for _, indexed := range []bool{true, false} {
				out = append(out, storageRun(matcherName, kind, indexed, ruleCount, nOps))
			}
		}
	}
	return out
}

func storageRun(matcherName string, kind relation.StorageKind, indexed bool, ruleCount, nOps int) StorageResult {
	set, _, err := rules.CompileSource(workload.PayrollRules(ruleCount, false))
	if err != nil {
		panic(err)
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := db.SetDefaultStorage(kind); err != nil {
		panic(err)
	}
	if err := rules.BuildCatalog(set, db); err != nil {
		panic(err)
	}
	if indexed {
		if err := rules.BuildIndexes(set, db); err != nil {
			panic(err)
		}
	}
	cs := conflict.NewSet(stats)
	var e *engine.Engine
	switch matcherName {
	case "core":
		e = engine.New(set, db, core.New(set, db, cs, stats), stats, engine.Config{Out: io.Discard})
	case "requery":
		e = engine.New(set, db, requery.New(set, db, cs, stats), stats, engine.Config{Out: io.Discard})
	default:
		panic(fmt.Sprintf("experiments: unknown storage-bench matcher %q", matcherName))
	}
	ops := workload.PayrollOps(42, nOps, 0) // insert-only: one bulk batch
	delta := make([]engine.DeltaOp, len(ops))
	for i, op := range ops {
		delta[i] = engine.DeltaOp{Class: op.Class, Tuple: op.Tuple}
	}
	before := stats.Snapshot()
	d := timeIt(func() {
		if _, err := e.ApplyDelta(delta); err != nil {
			panic(err)
		}
	})
	diff := stats.Snapshot().Diff(before)
	return StorageResult{
		Matcher:       matcherName,
		Backend:       string(kind),
		Indexed:       indexed,
		Rules:         ruleCount,
		Ops:           nOps,
		Millis:        float64(d.Nanoseconds()) / float64(time.Millisecond),
		TuplesScanned: diff.Get(metrics.TuplesScanned),
		IndexLookups:  diff.Get(metrics.IndexLookups),
		RangeProbes:   diff.Get(metrics.IndexRangeProbes),
		BatchInserts:  diff.Get(metrics.BatchInserts),
		InternHits:    diff.Get(metrics.InternHits),
	}
}

// StorageTable renders StorageBench results as an experiment table.
func StorageTable(rows []StorageResult) Table {
	t := Table{
		ID:    "E14",
		Title: "storage access paths: backend × index availability (payroll batch)",
		Columns: []string{
			"matcher", "backend", "indexed", "rules", "ops", "total ms",
			"scanned", "eq probes", "range probes", "bulk inserts", "intern hits",
		},
		Note: "indexed runs answer alpha selections and join probes from hash+ordered secondary indexes; scan-only runs pay tuples_scanned for the same answers; the columnar backend takes the bulk-insert path either way",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Matcher, r.Backend, fmt.Sprintf("%v", r.Indexed),
			fmt.Sprintf("%d", r.Rules), fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%.2f", r.Millis),
			fmt.Sprintf("%d", r.TuplesScanned),
			fmt.Sprintf("%d", r.IndexLookups),
			fmt.Sprintf("%d", r.RangeProbes),
			fmt.Sprintf("%d", r.BatchInserts),
			fmt.Sprintf("%d", r.InternHits),
		})
	}
	return t
}
