package experiments

import (
	"fmt"
	"io"
	"time"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/engine"
	"prodsys/internal/joiner"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/requery"
	"prodsys/internal/rules"
	"prodsys/internal/workload"
)

// PlannerResult is one (matcher, planner, workload) cell of the planner
// benchmark: the time to drive a per-tuple insert stream through the
// delta-match path, plus the plan-cache counters that explain it.
// Speedup is this cell's fixed-order time over its own time (1.0 for
// the fixed rows themselves).
type PlannerResult struct {
	Matcher       string  `json:"matcher"`
	Planner       string  `json:"planner"`
	Workload      string  `json:"workload"`
	Rules         int     `json:"rules"`
	Ops           int     `json:"ops"`
	Millis        float64 `json:"ms"`
	Speedup       float64 `json:"speedup"`
	PlansBuilt    int64   `json:"plans_built"`
	PlanCacheHits int64   `json:"plan_cache_hits"`
	CacheHitRate  float64 `json:"plan_cache_hit_rate"`
	Invalidations int64   `json:"plan_invalidations"`
}

// plannerWorkload is one benchmark stream: a rule program plus the
// per-tuple insert ops driven through it.
type plannerWorkload struct {
	name  string
	src   string
	rules int
	ops   []workload.Op
}

func plannerWorkloads(scale float64) []plannerWorkload {
	chainLen := 6
	chains := int(float64(120) * scale)
	if chains < 4 {
		chains = 4
	}
	var chainOps []workload.Op
	for c := 0; c < chains; c++ {
		for i := 0; i < chainLen; i++ {
			class, tup := workload.ChainLink(c, i)
			chainOps = append(chainOps, workload.Op{Class: class, Tuple: tup})
		}
	}
	payrollRules := 50
	payrollN := int(float64(1000) * scale)
	if payrollN < 50 {
		payrollN = 50
	}
	return []plannerWorkload{
		{"chain", workload.ChainRules(chainLen), 1, chainOps},
		{"payroll", workload.PayrollRules(payrollRules, false), payrollRules, workload.PayrollOps(11, payrollN, 0)},
	}
}

// PlannerBench measures the cost-based join planner against the fixed
// left-to-right order on the two workload shapes where order matters
// differently: the Figure 1 chain join (order dominates — fixed order
// rescans K0 for every arriving link, the planner starts from the
// pinned delta and probes outward) and the payroll two-way joins
// (order nearly irrelevant — the planner must win by not losing).
// Matrix: {fixed, cost} × {chain, payroll} × {core, requery}.
func PlannerBench(scale float64) []PlannerResult {
	var out []PlannerResult
	for _, w := range plannerWorkloads(scale) {
		for _, matcherName := range []string{"core", "requery"} {
			fixed := plannerRun(matcherName, "fixed", w)
			cost := plannerRun(matcherName, "cost", w)
			fixed.Speedup = 1
			if cost.Millis > 0 {
				cost.Speedup = fixed.Millis / cost.Millis
			}
			out = append(out, fixed, cost)
		}
	}
	return out
}

func plannerRun(matcherName, planner string, w plannerWorkload) PlannerResult {
	set, _, err := rules.CompileSource(w.src)
	if err != nil {
		panic(err)
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := rules.BuildDB(set, db); err != nil {
		panic(err)
	}
	cs := conflict.NewSet(stats)
	var m match.Matcher
	switch matcherName {
	case "core":
		m = core.New(set, db, cs, stats)
	case "requery":
		m = requery.New(set, db, cs, stats)
	default:
		panic(fmt.Sprintf("experiments: unknown planner-bench matcher %q", matcherName))
	}
	if planner == "cost" {
		match.AttachPlanner(m, joiner.NewPlanner(db, stats))
	}
	e := engine.New(set, db, m, stats, engine.Config{Out: io.Discard})
	before := stats.Snapshot()
	d := timeIt(func() {
		for _, op := range w.ops {
			if _, err := e.Assert(op.Class, op.Tuple); err != nil {
				panic(err)
			}
		}
	})
	diff := stats.Snapshot().Diff(before)
	built := diff[metrics.PlansBuilt]
	hits := diff[metrics.PlanCacheHits]
	rate := 0.0
	if built+hits > 0 {
		rate = float64(hits) / float64(built+hits)
	}
	return PlannerResult{
		Matcher:       matcherName,
		Planner:       planner,
		Workload:      w.name,
		Rules:         w.rules,
		Ops:           len(w.ops),
		Millis:        float64(d.Nanoseconds()) / float64(time.Millisecond),
		PlansBuilt:    built,
		PlanCacheHits: hits,
		CacheHitRate:  rate,
		Invalidations: diff[metrics.PlanInvalidations],
	}
}

// PlannerTable renders PlannerBench results as an experiment table.
func PlannerTable(rows []PlannerResult) Table {
	t := Table{
		ID:    "E15",
		Title: "cost-based join planning: fixed vs planned order (per-tuple delta match)",
		Columns: []string{
			"workload", "matcher", "planner", "rules", "ops", "total ms",
			"speedup", "plans built", "cache hits", "hit rate", "invalidations",
		},
		Note: "speedup is fixed-order ms over the same cell's ms; the chain workload is where order matters (fixed order rescans K0 per delta, the planner starts from the pinned tuple), payroll is the must-not-lose control",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Matcher, r.Planner,
			fmt.Sprintf("%d", r.Rules), fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%.2f", r.Millis),
			fmt.Sprintf("%.2f", r.Speedup),
			fmt.Sprintf("%d", r.PlansBuilt),
			fmt.Sprintf("%d", r.PlanCacheHits),
			fmt.Sprintf("%.3f", r.CacheHitRate),
			fmt.Sprintf("%d", r.Invalidations),
		})
	}
	return t
}
