package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/engine"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/workload"
)

// ShardResult is one (shards, workers) cell of the shard-scaling
// benchmark: the time to apply one payroll insert batch through the
// parallel match scheduler, with the scheduler counters that explain
// the shape of the run and the speedup against the unsharded baseline.
type ShardResult struct {
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"`
	Rules      int     `json:"rules"`
	Ops        int     `json:"ops"`
	NumCPU     int     `json:"num_cpu"`
	Millis     float64 `json:"ms"`
	Speedup    float64 `json:"speedup_vs_shard1"`
	Maintains  int64   `json:"shard_maintains"`
	Steals     int64   `json:"shard_steals"`
	CrossShard int64   `json:"cross_shard_txns"`
	Rebalances int64   `json:"shard_rebalance"`
}

// ShardBench measures how batch match maintenance scales with the
// work-stealing scheduler's worker count: the payroll insert workload
// applied as one ApplyDelta batch on a 4-way sharded catalog at 1, 2,
// 4, and 8 workers, against the unsharded serial baseline. Each cell
// is the median of three runs. Workers beyond the shard space are
// capped to it, so the 8-worker row documents the scaling plateau.
// NumCPU is recorded because the wall-clock speedup is bounded by the
// runner: on a single-core host every worker count serializes and the
// parallel rows only show scheduler overhead.
func ShardBench(ruleCount, nOps int) []ShardResult {
	cells := []struct{ shards, workers int }{
		{1, 0}, {4, 1}, {4, 2}, {4, 4}, {4, 8},
	}
	out := make([]ShardResult, 0, len(cells))
	var baseline float64
	for _, c := range cells {
		r := shardRun(c.shards, c.workers, ruleCount, nOps)
		if c.shards == 1 {
			baseline = r.Millis
		}
		if baseline > 0 {
			r.Speedup = baseline / r.Millis
		}
		out = append(out, r)
	}
	return out
}

func shardRun(shards, workers, ruleCount, nOps int) ShardResult {
	ops := workload.PayrollOps(42, nOps, 0) // insert-only: one bulk batch
	delta := make([]engine.DeltaOp, len(ops))
	for i, op := range ops {
		delta[i] = engine.DeltaOp{Class: op.Class, Tuple: op.Tuple}
	}
	const runs = 3
	times := make([]float64, 0, runs)
	var last *metrics.Set
	for i := 0; i < runs; i++ {
		set, _, err := rules.CompileSource(workload.PayrollRules(ruleCount, false))
		if err != nil {
			panic(err)
		}
		stats := &metrics.Set{}
		db := relation.NewDB(stats)
		if err := db.SetDefaultShards(shards); err != nil {
			panic(err)
		}
		if err := rules.BuildDB(set, db); err != nil {
			panic(err)
		}
		cs := conflict.NewSet(stats)
		e := engine.New(set, db, core.New(set, db, cs, stats), stats,
			engine.Config{Out: io.Discard, ShardWorkers: workers})
		d := timeIt(func() {
			if _, err := e.ApplyDelta(delta); err != nil {
				panic(err)
			}
		})
		times = append(times, float64(d.Nanoseconds())/float64(time.Millisecond))
		last = stats
	}
	sort.Float64s(times)
	sn := last.Snapshot()
	return ShardResult{
		Shards:     shards,
		Workers:    workers,
		Rules:      ruleCount,
		Ops:        nOps,
		NumCPU:     runtime.NumCPU(),
		Millis:     times[len(times)/2],
		Maintains:  sn.Get(metrics.ShardMaintains),
		Steals:     sn.Get(metrics.ShardSteals),
		CrossShard: sn.Get(metrics.CrossShardTxns),
		Rebalances: sn.Get(metrics.ShardRebalances),
	}
}

// ShardTable renders ShardBench results as an experiment table.
func ShardTable(rows []ShardResult) Table {
	t := Table{
		ID:    "E17",
		Title: "sharded match scheduler: worker scaling (payroll batch, median of 3)",
		Columns: []string{
			"shards", "workers", "rules", "ops", "total ms", "speedup",
			"maintains", "steals", "cross-shard", "rebalances",
		},
		Note: fmt.Sprintf("runner has %d CPU(s); speedup is against the unsharded serial baseline and is bounded by the runner's core count", runtime.NumCPU()),
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Rules),
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%.2f", r.Millis),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.Maintains),
			fmt.Sprintf("%d", r.Steals),
			fmt.Sprintf("%d", r.CrossShard),
			fmt.Sprintf("%d", r.Rebalances),
		})
	}
	return t
}
