package experiments

import (
	"fmt"
	"strings"

	"prodsys/internal/relation"
	"prodsys/internal/rete"
	"prodsys/internal/value"
	"prodsys/internal/workload"
)

// Fig1 reproduces Figure 1: the discrimination network built for a
// conjunction C1 ∧ C2 ∧ … ∧ Cn (n = 4 here), rendered from the actual
// compiled Rete network.
func Fig1() Table {
	s := mustSession(workload.ChainRules(4), "rete")
	net := s.matcher.(*rete.Network)
	desc := net.Describe()
	rows := make([][]string, 0)
	for _, line := range strings.Split(strings.TrimRight(desc, "\n"), "\n") {
		rows = append(rows, []string{line})
	}
	return Table{
		ID:      "Fig1",
		Title:   "discrimination network for C1 ∧ C2 ∧ C3 ∧ C4 (compiled)",
		Columns: []string{"network"},
		Rows:    rows,
		Note: fmt.Sprintf("propagation depth %d: a token entering C1 crosses every two-input node sequentially — the hierarchy the paper flattens",
			net.Depth()),
	}
}

// Fig2 reproduces Figure 2: the OPS5 dataflow — changes to working
// memory propagate through the Rete network and emerge as changes to the
// conflict set. The table is an event trace over Example 2's rules.
func Fig2() Table {
	s := mustSession(workload.SimplifyRules(), "rete")
	cs := s.matcher.ConflictSet()
	type step struct {
		op    string
		class string
		tuple relation.Tuple
	}
	steps := []step{
		{"+", "Goal", relation.Tuple{value.OfSym("Simplify"), value.OfSym("e1")}},
		{"+", "Expression", relation.Tuple{value.OfSym("e1"), value.OfInt(0), value.OfSym("+"), value.OfInt(7)}},
		{"+", "Expression", relation.Tuple{value.OfSym("e1"), value.OfInt(0), value.OfSym("*"), value.OfInt(9)}},
		{"-", "Goal", nil}, // delete the goal: both instantiations retract
	}
	rows := make([][]string, 0, len(steps))
	for _, st := range steps {
		before := cs.Keys()
		if st.op == "+" {
			s.insert(st.class, st.tuple)
		} else {
			s.deleteOldest(st.class)
		}
		after := cs.Keys()
		rows = append(rows, []string{
			fmt.Sprintf("%s%s%v", st.op, st.class, st.tuple),
			fmt.Sprintf("%v", diffKeys(after, before)),
			fmt.Sprintf("%v", diffKeys(before, after)),
		})
	}
	return Table{
		ID:      "Fig2",
		Title:   "OPS5 function: WM changes → Rete network → conflict set changes",
		Columns: []string{"token (±tuple)", "added to conflict set", "removed from conflict set"},
		Rows:    rows,
		Note:    "tokens are tuples tagged +/− (§3.1); modifications are a deletion followed by an insertion",
	}
}

// diffKeys returns the keys in a but not in b.
func diffKeys(a, b []string) []string {
	inB := map[string]bool{}
	for _, k := range b {
		inB[k] = true
	}
	out := []string{}
	for _, k := range a {
		if !inB[k] {
			out = append(out, k)
		}
	}
	return out
}

// Fig3 reproduces Figure 3: the network compiled from Example 2's PlusOX
// and TimesOX rules, showing the shared Goal one-input chain.
func Fig3() Table {
	s := mustSession(workload.SimplifyRules(), "rete")
	net := s.matcher.(*rete.Network)
	rows := make([][]string, 0)
	for _, line := range strings.Split(strings.TrimRight(net.Describe(), "\n"), "\n") {
		rows = append(rows, []string{line})
	}
	return Table{
		ID:      "Fig3",
		Title:   "compiled network for PlusOX and TimesOX (Example 2)",
		Columns: []string{"network"},
		Rows:    rows,
		Note:    "the Goal one-input chain is shared between both rules, as in the paper's figure",
	}
}
