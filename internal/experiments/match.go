package experiments

import (
	"fmt"
	"strings"
	"time"

	"prodsys/internal/core"
	"prodsys/internal/marker"
	"prodsys/internal/metrics"
	"prodsys/internal/rete"
	"prodsys/internal/workload"
)

// E1PropagationDepth measures the cost of completing a chain C1∧…∧Cn as
// n grows (§4: "the propagation delay of inserting a token into C2 will
// be significant if the number of single input nodes n is large").
// The probe deletes and re-inserts the first link of a complete chain:
// Rete pushes the token through n two-input nodes sequentially; the
// matching-pattern matcher answers from a single COND-relation search.
func E1PropagationDepth(ns []int, probes int) Table {
	t := Table{
		ID:    "E1",
		Title: "chain completion cost vs chain length n (per probe)",
		Columns: []string{
			"n", "rete µs", "rete activations", "core µs", "core checks (COND+verify)", "core maint ops",
		},
		Note: "rete join-node activations grow with n (the sequential hierarchy); core answers from one COND search plus one bounded verification join, and its maintenance per probe stays constant — patterns propagate only to variable-sharing condition elements",
	}
	for _, n := range ns {
		src := workload.ChainRules(n)
		reteS := mustSession(src, "rete")
		coreS := mustSession(src, "core")
		// Build one complete chain instance in both.
		for i := 0; i < n; i++ {
			cls, tup := workload.ChainLink(0, i)
			reteS.insert(cls, tup)
			coreS.insert(cls, tup)
		}
		probe := func(s *session) (time.Duration, metrics.Snapshot) {
			cls, tup := workload.ChainLink(0, 0)
			before := s.stats.Snapshot()
			d := timeIt(func() {
				for p := 0; p < probes; p++ {
					s.deleteOldest(cls)
					s.insert(cls, tup)
				}
			})
			return d / time.Duration(probes), s.stats.Snapshot().Diff(before)
		}
		rd, rsn := probe(reteS)
		cd, csn := probe(coreS)
		per := int64(probes)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			us(rd),
			fmt.Sprintf("%d", rsn.Get(metrics.NodeActivations)/per),
			us(cd),
			fmt.Sprintf("%d", csn.Get(metrics.CandidateChecks)/per),
			fmt.Sprintf("%d", csn.Get(metrics.MaintenanceOps)/per),
		})
	}
	return t
}

// E2MatchTime compares every matcher's total cost on the payroll
// workload as the rule count grows (§4.2.3 Time: "matching is very fast
// with our approach because only a single search over a COND relation is
// necessary"; §4.1: the simplified algorithm re-computes joins on every
// change).
func E2MatchTime(ruleCounts []int, ops int) Table {
	t := Table{
		ID:    "E2",
		Title: "match maintenance cost by matcher and rule count (payroll workload)",
		Columns: []string{
			"rules", "ops", "matcher", "total ms", "joins", "activations", "COND searches", "instantiations",
		},
		Note: "requery pays joins per update; rete pays activations through the hierarchy; core pays COND searches + bounded verification joins; marker pays full re-evaluations on wakes",
	}
	for _, rc := range ruleCounts {
		n := ops
		if rc >= 1000 {
			n = ops / 4 // the O(R) matchers would dominate the run otherwise
		}
		stream := workload.PayrollOps(42, n, 0.25)
		src := workload.PayrollRules(rc, false)
		for _, m := range []string{"rete", "requery", "core", "marker", "ptree"} {
			s := mustSession(src, m)
			d := timeIt(func() { s.apply(stream) })
			sn := s.stats.Snapshot()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", rc),
				fmt.Sprintf("%d", n),
				m,
				fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3),
				fmt.Sprintf("%d", sn.Get(metrics.JoinsComputed)),
				fmt.Sprintf("%d", sn.Get(metrics.NodeActivations)),
				fmt.Sprintf("%d", sn.Get(metrics.PatternSearches)),
				fmt.Sprintf("%d", sn.Get(metrics.Instantiations)),
			})
		}
	}
	return t
}

// E3Space compares the storage each scheme keeps beyond working memory
// (§4.2.3 Space: "our approach consumes a lot of space for storing
// matching patterns … the matching patterns are actually the result of
// joins we have so far computed").
func E3Space(ruleCounts []int, ops int) Table {
	t := Table{
		ID:    "E3",
		Title: "intermediate storage by matcher (payroll workload, insert-only)",
		Columns: []string{
			"rules", "WM tuples", "matcher", "stored items", "what they are",
		},
		Note: "requery stores nothing (recomputation); marker stores rule IDs on tuples; rete stores tokens per two-input node; core stores matching patterns ≈ projected join results",
	}
	for _, rc := range ruleCounts {
		stream := workload.PayrollOps(7, ops, 0) // insert-only
		src := workload.PayrollRules(rc, false)
		wm := 0
		for _, m := range []string{"requery", "marker", "rete", "core"} {
			s := mustSession(src, m)
			s.apply(stream)
			wm = 0
			for _, name := range s.db.Names() {
				if rel, err := s.db.Lookup(name); err == nil {
					wm += rel.Len()
				}
			}
			var stored int
			var what string
			switch mm := s.matcher.(type) {
			case *rete.Network:
				stored = mm.TokenCount()
				what = "tokens in alpha/beta memories"
			case *core.Matcher:
				stored = mm.PatternCount()
				what = "matching patterns in COND relations"
			case *marker.Matcher:
				stored = mm.MarkCount()
				what = "rule markers on data tuples"
			default:
				stored = 0
				what = "none (joins recomputed)"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", rc),
				fmt.Sprintf("%d", wm),
				s.matcher.Name(),
				fmt.Sprintf("%d", stored),
				what,
			})
		}
	}
	return t
}

// E4FalseDrops measures the false-drop rate of the Basic Locking scheme
// as condition read sets overlap (§2.3/§3.2: "depending on … the number
// of conditions that overlap … the first or the second approach becomes
// more efficient"; POSTGRES "will incur unnecessarily high computation
// cost" on false wakes).
func E4FalseDrops(overlaps []float64, inserts int) Table {
	t := Table{
		ID:    "E4",
		Title: "false drops vs condition overlap (20 salary-band rules)",
		Columns: []string{
			"overlap", "matcher", "wakes/searches", "false drops", "rate", "joins",
		},
		Note: "marker wakes every rule whose marked interval covers the inserted salary; as bands widen the wasted re-evaluations grow. core verifies only fully-marked patterns; its false drops stay near zero",
	}
	for _, o := range overlaps {
		src := workload.OverlapRules(20, o)
		stream := workload.OverlapOps(11, inserts)
		for _, m := range []string{"marker", "core"} {
			s := mustSession(src, m)
			s.apply(stream)
			sn := s.stats.Snapshot()
			var wakes int64
			if m == "marker" {
				wakes = sn.Get(metrics.CandidateChecks)
			} else {
				wakes = sn.Get(metrics.PatternSearches)
			}
			fd := sn.Get(metrics.FalseDrops)
			rate := 0.0
			if wakes > 0 {
				rate = float64(fd) / float64(wakes)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.2f", o),
				m,
				fmt.Sprintf("%d", wakes),
				fmt.Sprintf("%d", fd),
				fmt.Sprintf("%.3f", rate),
				fmt.Sprintf("%d", sn.Get(metrics.JoinsComputed)),
			})
		}
	}
	return t
}

// E5ParallelPropagation compares serial and parallel matching-pattern
// maintenance on a star join whose hub propagates to 8 COND relations
// per insert (§4.2.3: "propagation of changes can be performed in
// parallel to all the COND relations. In contrast to that, the Rete
// Network method is highly sequential"). A 200µs simulated page write per
// COND-relation update models the paper's secondary-storage setting; the
// in-memory update alone is too cheap to parallelize.
func E5ParallelPropagation(hubs int) Table {
	const satellites = 8
	const ioDelay = 200 * time.Microsecond
	t := Table{
		ID:    "E5",
		Title: fmt.Sprintf("matching-pattern maintenance, serial vs parallel (star of %d, %d hub inserts, %v simulated I/O per COND update)", satellites, hubs, ioDelay),
		Columns: []string{
			"matcher", "total ms", "µs/insert", "maintenance ops", "patterns stored",
		},
		Note: "each hub insert updates 8 COND relations; the parallel matcher overlaps their (simulated) page writes, approaching the latency of the slowest single update — the flattened hierarchy of §4",
	}
	src := workload.StarRules(satellites)
	for _, parallel := range []bool{false, true} {
		opts := []core.Option{core.WithSimulatedIO(ioDelay)}
		name := "core"
		if parallel {
			opts = append(opts, core.WithParallelPropagation())
			name = "core-parallel"
		}
		s := mustSessionOpts(src, opts...)
		d := timeIt(func() {
			for h := 0; h < hubs; h++ {
				s.insert("Hub", workload.StarHub(satellites, h))
			}
		})
		sn := s.stats.Snapshot()
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3),
			fmt.Sprintf("%.1f", float64(d.Microseconds())/float64(hubs)),
			fmt.Sprintf("%d", sn.Get(metrics.MaintenanceOps)),
			fmt.Sprintf("%d", sn.Get(metrics.PatternsStored)),
		})
	}
	return t
}

// E12SharedNetwork measures the effect of beta-prefix sharing — the
// multiple-query optimization the paper defers to future work (§6,
// [SELL88]): rules with common condition-element prefixes share the
// two-input nodes of that prefix.
func E12SharedNetwork(families, variants, inserts int) Table {
	t := Table{
		ID:    "E12",
		Title: fmt.Sprintf("Rete vs multiple-query-optimized Rete (%d rule families × %d variants)", families, variants),
		Columns: []string{
			"matcher", "total ms", "activations", "tokens stored", "instantiations",
		},
		Note: "each family's variants share a two-condition prefix; the shared network compiles the prefix once, cutting activations and token storage without changing the conflict set",
	}
	src := sharedFamiliesSrc(families, variants)
	stream := workload.PayrollOps(21, inserts, 0.2)
	var inst []int64
	for _, m := range []string{"rete", "rete-shared"} {
		s := mustSession(src, m)
		d := timeIt(func() { s.apply(stream) })
		sn := s.stats.Snapshot()
		inst = append(inst, sn.Get(metrics.Instantiations))
		t.Rows = append(t.Rows, []string{
			m,
			fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3),
			fmt.Sprintf("%d", sn.Get(metrics.NodeActivations)),
			fmt.Sprintf("%d", sn.Get(metrics.TokensStored)),
			fmt.Sprintf("%d", sn.Get(metrics.Instantiations)),
		})
	}
	if len(inst) == 2 && inst[0] != inst[1] {
		t.Note += " — WARNING: instantiation counts diverge (bug)"
	}
	return t
}

// sharedFamiliesSrc builds `families` groups of `variants` rules; rules
// within a family share their first two condition elements and differ in
// the third.
func sharedFamiliesSrc(families, variants int) string {
	var b strings.Builder
	b.WriteString("(literalize Emp name age salary dno)\n")
	b.WriteString("(literalize Dept dno dname floor)\n")
	for f := 0; f < families; f++ {
		for v := 0; v < variants; v++ {
			fmt.Fprintf(&b, `(p fam%d-v%d
    (Emp ^salary > %d ^dno <d>)
    (Dept ^dno <d> ^floor %d)
    (Dept ^dname dept%d ^dno <d2>)
  -->
    (remove 1))
`, f, v, f*500, f%5+1, v)
		}
	}
	return b.String()
}
