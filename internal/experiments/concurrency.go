package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"prodsys/internal/analysis"
	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/engine"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/workload"
)

// buildEngine compiles src, loads its facts and extra ops, and returns an
// engine over the core matcher.
func buildEngine(src string, extra []workload.Op, cfg engine.Config) (*engine.Engine, *metrics.Set, error) {
	set, prog, err := rules.CompileSource(src)
	if err != nil {
		return nil, nil, err
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := rules.BuildDB(set, db); err != nil {
		return nil, nil, err
	}
	cs := conflict.NewSet(stats)
	m := core.New(set, db, cs, stats)
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	e := engine.New(set, db, m, stats, cfg)
	if err := e.LoadFacts(prog); err != nil {
		return nil, nil, err
	}
	for _, op := range extra {
		if _, err := e.Assert(op.Class, op.Tuple); err != nil {
			return nil, nil, err
		}
	}
	return e, stats, nil
}

// exploreSerialOutcomes exhaustively executes every possible serial
// selection order of a production system (the arbitrary Select of §2.1)
// and returns the set of distinct final WM states, plus the number of
// serial schedules explored. The exploration is exponential; cap guards
// runaway programs.
func exploreSerialOutcomes(src string, extra []workload.Op, cap int) (states map[string]int, schedules int, capped bool) {
	states = map[string]int{}
	var explore func(trace []string)
	explore = func(trace []string) {
		if schedules >= cap {
			capped = true
			return
		}
		// Rebuild and replay the trace (simple and allocation-heavy, but
		// exact; the workloads are tiny).
		e, _, err := buildEngine(src, extra, engine.Config{})
		if err != nil {
			panic(err)
		}
		replayed := true
		for _, key := range trace {
			in := findInstantiation(e, key)
			if in == nil {
				replayed = false
				break
			}
			e.ConflictSet().MarkFired(in.Key())
			if _, err := e.ApplyForExploration(in); err != nil {
				panic(err)
			}
		}
		if !replayed {
			return
		}
		avail := e.ConflictSet().SelectAll()
		if len(avail) == 0 {
			schedules++
			states[e.SnapshotWM()]++
			return
		}
		for _, in := range avail {
			explore(append(trace[:len(trace):len(trace)], in.Key()))
		}
	}
	explore(nil)
	return states, schedules, capped
}

// findInstantiation locates a live instantiation by key.
func findInstantiation(e *engine.Engine, key string) *conflict.Instantiation {
	for _, in := range e.ConflictSet().SelectAll() {
		if in.Key() == key {
			return in
		}
	}
	return nil
}

// E6Serializability verifies the paper's central §5.2 claim: the final
// state of a concurrent execution equals the final state of SOME serial
// execution. Serial outcomes are enumerated exhaustively.
func E6Serializability(concRuns int) Table {
	t := Table{
		ID:    "E6",
		Title: "concurrent execution ≡ some serial execution (exhaustive check)",
		Columns: []string{
			"workload", "serial schedules", "distinct final states", "concurrent runs", "all runs ∈ serial states",
		},
		Note: "for every workload, each concurrent run's final WM must appear among the exhaustively enumerated serial outcomes (§5.2)",
	}
	cases := []struct {
		name  string
		src   string
		extra []workload.Op
	}{
		{
			name: "racing removers",
			src: `
(literalize A x)
(literalize W who)
(p P1 (A ^x token) --> (remove 1) (make W ^who p1))
(p P2 (A ^x token) --> (remove 1) (make W ^who p2))
(A token)`,
		},
		{
			name: "make-once negation",
			src: `
(literalize A x)
(literalize B x)
(p Once (A ^x <v>) - (B ^x marker) --> (make B ^x marker))
(A 1) (A 2) (A 3)`,
		},
		{
			name:  "independent tasks",
			src:   workload.TaskRules(3, false),
			extra: workload.TaskFacts(3, false, 3),
		},
		{
			name: "pipeline",
			src: `
(literalize S n)
(p s1 (S ^n one) --> (remove 1) (make S ^n two))
(p s2 (S ^n two) --> (remove 1) (make S ^n three))
(S one)`,
		},
	}
	for _, c := range cases {
		states, schedules, capped := exploreSerialOutcomes(c.src, c.extra, 5000)
		allIn := true
		for run := 0; run < concRuns; run++ {
			e, _, err := buildEngine(c.src, c.extra, engine.Config{Workers: 4})
			if err != nil {
				panic(err)
			}
			if _, err := e.RunConcurrent(); err != nil {
				panic(err)
			}
			if _, ok := states[e.SnapshotWM()]; !ok {
				allIn = false
			}
		}
		verdict := "yes"
		if !allIn {
			verdict = "NO — serializability violated"
		}
		sched := fmt.Sprintf("%d", schedules)
		if capped {
			sched += "+"
		}
		t.Rows = append(t.Rows, []string{
			c.name, sched, fmt.Sprintf("%d", len(states)), fmt.Sprintf("%d", concRuns), verdict,
		})
	}
	return t
}

// E7ConcurrentThroughput measures the concurrent executor against the
// §5.2 cost model: "In the best case … this will be proportional to the
// maximum number of updates to any WM relation or COND relation. In the
// worst case, this will reduce to the time taken for a serial execution."
func E7ConcurrentThroughput(kinds int, tasks int, workerCounts []int) Table {
	t := Table{
		ID:    "E7",
		Title: fmt.Sprintf("concurrent execution, %d rules over %d tasks", kinds, tasks),
		Columns: []string{
			"distribution", "workers", "ms", "rounds", "firings", "aborts", "serial ops", "max rel updates",
		},
		Note: "serial ops counts the non-interleavable maintenance section; max rel updates is the paper's best-case bound (the busiest relation)",
	}
	for _, skewed := range []bool{false, true} {
		label := "uniform"
		if skewed {
			label = "skewed(all rules on one class)"
		}
		src := workload.TaskRules(kinds, skewed)
		facts := workload.TaskFacts(kinds, skewed, tasks)
		for _, w := range workerCounts {
			e, stats, err := buildEngine(src, facts, engine.Config{Workers: w})
			if err != nil {
				panic(err)
			}
			start := time.Now()
			res, err := e.RunConcurrent()
			if err != nil {
				panic(err)
			}
			d := time.Since(start)
			sn := stats.Snapshot()
			maxRel := int64(0)
			for k, v := range sn {
				if strings.HasPrefix(string(k), "updates_") && v > maxRel {
					maxRel = v
				}
			}
			t.Rows = append(t.Rows, []string{
				label,
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3),
				fmt.Sprintf("%d", res.Cycles),
				fmt.Sprintf("%d", res.Firings),
				fmt.Sprintf("%d", res.Aborts),
				fmt.Sprintf("%d", sn.Get(metrics.SerialOps)),
				fmt.Sprintf("%d", maxRel),
			})
		}
	}
	return t
}

// E8ScheduleCount reports the paper's second benefit measure (§5.2):
// "the number of serializable schedules equivalent to a single serial
// schedule … proportional to the number of possible choices of actions
// that can be executed at any instant."
func E8ScheduleCount() Table {
	t := Table{
		ID:    "E8",
		Title: "serial schedule space vs distinct outcomes",
		Columns: []string{
			"workload", "initial |Ψ1|", "serial schedules", "distinct final states", "schedules per state",
		},
		Note: "independent transactions: n! schedules, one state (maximal concurrency benefit); conflicting transactions: every schedule may give its own state (no safe interleaving)",
	}
	cases := []struct {
		name  string
		src   string
		extra []workload.Op
	}{
		{"2 independent", workload.TaskRules(2, false), workload.TaskFacts(2, false, 2)},
		{"3 independent", workload.TaskRules(3, false), workload.TaskFacts(3, false, 3)},
		{"4 independent", workload.TaskRules(4, false), workload.TaskFacts(4, false, 4)},
		{"2 conflicting", `
(literalize A x)
(literalize W who)
(p P1 (A ^x token) --> (remove 1) (make W ^who p1))
(p P2 (A ^x token) --> (remove 1) (make W ^who p2))
(A token)`, nil},
		{"3 conflicting", `
(literalize A x)
(literalize W who)
(p P1 (A ^x token) --> (remove 1) (make W ^who p1))
(p P2 (A ^x token) --> (remove 1) (make W ^who p2))
(p P3 (A ^x token) --> (remove 1) (make W ^who p3))
(A token)`, nil},
	}
	for _, c := range cases {
		e, _, err := buildEngine(c.src, c.extra, engine.Config{})
		if err != nil {
			panic(err)
		}
		psi1 := e.ConflictSet().Len()
		states, schedules, _ := exploreSerialOutcomes(c.src, c.extra, 5000)
		per := "—"
		if len(states) > 0 {
			per = fmt.Sprintf("%.1f", float64(schedules)/float64(len(states)))
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", psi1),
			fmt.Sprintf("%d", schedules),
			fmt.Sprintf("%d", len(states)),
			per,
		})
	}
	return t
}

// E13ConcurrencyPotential relates the static rule-interaction analysis
// (the Δadd/Δdel structure of §5.2, the estimates attributed to [RASC87])
// to the concurrent executor's observed behaviour: rule sets with a high
// fraction of independent pairs run with few aborts; fully conflicting
// sets degrade toward serial execution.
func E13ConcurrencyPotential(tasks int) Table {
	t := Table{
		ID:    "E13",
		Title: "static concurrency potential vs measured concurrent behaviour",
		Columns: []string{
			"workload", "rules", "independent pairs", "potential", "firings", "aborts", "abort ratio",
		},
		Note: "potential = fraction of rule pairs that commute (no Δadd/Δdel edge between them); high potential should coincide with low abort ratios in the §5 executor",
	}
	cases := []struct {
		name  string
		src   string
		extra []workload.Op
	}{
		{"8 independent consumers", workload.TaskRules(8, false), workload.TaskFacts(8, false, tasks)},
		{"8 skewed consumers", workload.TaskRules(8, true), workload.TaskFacts(8, true, tasks)},
		{"manufacturing pipeline", workload.ManufacturingRules(), workload.ManufacturingFacts(tasks / 4)},
	}
	for _, c := range cases {
		set, _, err := rules.CompileSource(c.src)
		if err != nil {
			panic(err)
		}
		g := analysis.Build(set)
		indep := 0
		n := len(set.Rules)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if g.Independent(i, j) {
					indep++
				}
			}
		}
		e, _, err := buildEngine(c.src, c.extra, engine.Config{Workers: 4})
		if err != nil {
			panic(err)
		}
		res, err := e.RunConcurrent()
		if err != nil {
			panic(err)
		}
		ratio := 0.0
		if res.Firings > 0 {
			ratio = float64(res.Aborts) / float64(res.Firings)
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d/%d", indep, n*(n-1)/2),
			fmt.Sprintf("%.2f", g.ConcurrencyPotential()),
			fmt.Sprintf("%d", res.Firings),
			fmt.Sprintf("%d", res.Aborts),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	return t
}
