package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses an integer table cell.
func cellInt(t *testing.T, row []string, col int) int64 {
	t.Helper()
	v, err := strconv.ParseInt(strings.TrimSuffix(row[col], "+"), 10, 64)
	if err != nil {
		t.Fatalf("cell %q not an int: %v", row[col], err)
	}
	return v
}

func cellFloat(t *testing.T, row []string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", row[col], err)
	}
	return v
}

func TestFiguresRender(t *testing.T) {
	f1 := Fig1()
	if len(f1.Rows) < 5 || !strings.Contains(f1.String(), "two-input node") {
		t.Fatalf("Fig1:\n%s", f1)
	}
	f2 := Fig2()
	if len(f2.Rows) != 4 {
		t.Fatalf("Fig2 rows = %d", len(f2.Rows))
	}
	// The goal deletion retracts both instantiations.
	last := f2.Rows[len(f2.Rows)-1]
	if !strings.Contains(last[2], "PlusOX") || !strings.Contains(last[2], "TimesOX") {
		t.Fatalf("Fig2 final row: %v", last)
	}
	f3 := Fig3()
	if !strings.Contains(f3.String(), "P[PlusOX]") || !strings.Contains(f3.String(), "P[TimesOX]") {
		t.Fatalf("Fig3:\n%s", f3)
	}
	// Shared Goal alpha chain: exactly 3 alpha memories for 4 CEs.
	chains := 0
	for _, row := range f3.Rows {
		if strings.Contains(row[0], "one-input chain") {
			chains++
		}
	}
	if chains != 3 {
		t.Fatalf("Fig3 alpha chains = %d, want 3 (Goal shared)", chains)
	}
}

func TestE1Shape(t *testing.T) {
	tab := E1PropagationDepth([]int{2, 8, 16}, 20)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Rete activations per probe grow with chain length…
	a2 := cellInt(t, tab.Rows[0], 2)
	a16 := cellInt(t, tab.Rows[2], 2)
	if a16 <= a2 {
		t.Fatalf("rete activations should grow with n: n=2→%d, n=16→%d", a2, a16)
	}
	// Core's COND search grows only with the stored patterns (≈ one per
	// contributing class on this chain), staying within a linear bound.
	c16 := cellInt(t, tab.Rows[2], 4)
	if c16 > 2*16+4 {
		t.Fatalf("core COND checks exceed the linear pattern bound: n=16→%d", c16)
	}
	// Core maintenance per probe stays constant: matching patterns
	// propagate only to variable-sharing condition elements (the chain's
	// single neighbour), and maintenance follows the conflict-set update
	// rather than preceding it.
	m2 := cellInt(t, tab.Rows[0], 5)
	m16 := cellInt(t, tab.Rows[2], 5)
	if m16 != m2 {
		t.Fatalf("maintenance ops should stay flat: n=2→%d, n=16→%d", m2, m16)
	}
}

func TestE2AllMatchersProduceSameInstantiations(t *testing.T) {
	tab := E2MatchTime([]int{10}, 200)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	inst := cellInt(t, tab.Rows[0], 7)
	for _, row := range tab.Rows[1:] {
		if got := cellInt(t, row, 7); got != inst {
			t.Fatalf("instantiation counts disagree: %v", tab.Rows)
		}
	}
	// requery recomputes joins; core must compute strictly fewer.
	var joinsRequery, joinsCore int64
	for _, row := range tab.Rows {
		switch row[2] {
		case "requery":
			joinsRequery = cellInt(t, row, 4)
		case "core":
			joinsCore = cellInt(t, row, 4)
		}
	}
	if joinsCore >= joinsRequery {
		t.Fatalf("core joins (%d) should undercut requery joins (%d)", joinsCore, joinsRequery)
	}
}

func TestE3Shape(t *testing.T) {
	tab := E3Space([]int{10}, 400)
	var requeryStored, reteStored, coreStored int64 = -1, -1, -1
	for _, row := range tab.Rows {
		switch row[2] {
		case "requery":
			requeryStored = cellInt(t, row, 3)
		case "rete":
			reteStored = cellInt(t, row, 3)
		case "core":
			coreStored = cellInt(t, row, 3)
		}
	}
	if requeryStored != 0 {
		t.Fatalf("requery stores %d items, want 0", requeryStored)
	}
	if reteStored == 0 || coreStored == 0 {
		t.Fatalf("rete (%d) and core (%d) must store intermediate state", reteStored, coreStored)
	}
}

func TestE4FalseDropsGrowWithOverlap(t *testing.T) {
	tab := E4FalseDrops([]float64{0, 0.9}, 200)
	var markerLow, markerHigh, coreHigh int64 = -1, -1, -1
	for _, row := range tab.Rows {
		fd := cellInt(t, row, 3)
		switch {
		case row[1] == "marker" && row[0] == "0.00":
			markerLow = fd
		case row[1] == "marker" && row[0] == "0.90":
			markerHigh = fd
		case row[1] == "core" && row[0] == "0.90":
			coreHigh = fd
		}
	}
	if markerHigh <= markerLow {
		t.Fatalf("marker false drops should grow with overlap: %d → %d", markerLow, markerHigh)
	}
	if coreHigh >= markerHigh {
		t.Fatalf("core false drops (%d) should undercut marker (%d)", coreHigh, markerHigh)
	}
	_ = cellFloat
}

func TestE5ParallelEquivalence(t *testing.T) {
	tab := E5ParallelPropagation(40)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Identical maintenance work and pattern counts regardless of mode.
	if tab.Rows[0][3] != tab.Rows[1][3] || tab.Rows[0][4] != tab.Rows[1][4] {
		t.Fatalf("work differs between modes: %v", tab.Rows)
	}
	// With simulated I/O, parallel propagation must beat serial.
	serialMs := cellFloat(t, tab.Rows[0], 1)
	parallelMs := cellFloat(t, tab.Rows[1], 1)
	if parallelMs >= serialMs {
		t.Fatalf("parallel (%.2fms) should beat serial (%.2fms) under simulated I/O", parallelMs, serialMs)
	}
}

func TestE6AllWorkloadsSerializable(t *testing.T) {
	tab := E6Serializability(3)
	for _, row := range tab.Rows {
		if row[4] != "yes" {
			t.Fatalf("serializability violated: %v", row)
		}
	}
}

func TestE7Shape(t *testing.T) {
	tab := E7ConcurrentThroughput(4, 16, []int{1, 4})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if got := cellInt(t, row, 4); got != 16 {
			t.Fatalf("all tasks must fire exactly once: %v", row)
		}
	}
}

func TestE8ScheduleCounts(t *testing.T) {
	tab := E8ScheduleCount()
	check := map[string][2]int64{
		"2 independent": {2, 1},  // 2! schedules, 1 state
		"3 independent": {6, 1},  // 3! schedules, 1 state
		"4 independent": {24, 1}, // 4! schedules, 1 state
		"2 conflicting": {2, 2},  // each schedule its own state
		"3 conflicting": {3, 3},
	}
	for _, row := range tab.Rows {
		want, ok := check[row[0]]
		if !ok {
			continue
		}
		if cellInt(t, row, 2) != want[0] || cellInt(t, row, 3) != want[1] {
			t.Fatalf("schedule counts for %q: %v, want %v", row[0], row, want)
		}
	}
}

func TestE9MatchersAgree(t *testing.T) {
	tab := E9Negation(150)
	if strings.Contains(tab.Note, "DISAGREE") {
		t.Fatalf("negation churn disagreement:\n%s", tab)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestE10IncrementalCheaper(t *testing.T) {
	tab := E10ViewMaintenance(150)
	inc := cellInt(t, tab.Rows[0], 2)
	re := cellInt(t, tab.Rows[1], 2)
	if inc >= re {
		t.Fatalf("incremental scans (%d) should undercut recomputation (%d)", inc, re)
	}
	// Both strategies agree on the final view size.
	if tab.Rows[0][3] != tab.Rows[1][3] {
		t.Fatalf("final view sizes differ: %v", tab.Rows)
	}
}

func TestE11TreeFindsSameCandidates(t *testing.T) {
	tab := E11RuleQuery(200, 100)
	if tab.Rows[0][2] != tab.Rows[1][2] {
		t.Fatalf("R-tree and scan disagree on candidates: %v", tab.Rows)
	}
}

func TestE12SharedNetworkWins(t *testing.T) {
	tab := E12SharedNetwork(4, 3, 300)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if strings.Contains(tab.Note, "WARNING") {
		t.Fatalf("instantiation counts diverged:\n%s", tab)
	}
	plainAct := cellInt(t, tab.Rows[0], 2)
	sharedAct := cellInt(t, tab.Rows[1], 2)
	if sharedAct >= plainAct {
		t.Fatalf("sharing should cut activations: %d vs %d", plainAct, sharedAct)
	}
	plainTok := cellInt(t, tab.Rows[0], 3)
	sharedTok := cellInt(t, tab.Rows[1], 3)
	if sharedTok >= plainTok {
		t.Fatalf("sharing should cut tokens: %d vs %d", plainTok, sharedTok)
	}
}

func TestE13PotentialShape(t *testing.T) {
	tab := E13ConcurrencyPotential(32)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var indepPot, skewPot float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "8 independent consumers":
			indepPot = cellFloat(t, row, 3)
		case "8 skewed consumers":
			skewPot = cellFloat(t, row, 3)
		}
	}
	if indepPot != 1.0 {
		t.Fatalf("independent potential = %v, want 1.0", indepPot)
	}
	if skewPot != 0.0 {
		t.Fatalf("skewed potential = %v, want 0.0", skewPot)
	}
}

func TestTableString(t *testing.T) {
	tab := Table{
		ID: "X", Title: "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Note:    "n",
	}
	out := tab.String()
	if !strings.Contains(out, "== X: demo ==") || !strings.Contains(out, "note: n") {
		t.Fatalf("table render:\n%s", out)
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness")
	}
	tables := All(0.1)
	if len(tables) != 16 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s is empty", tab.ID)
		}
	}
}
