// Package metrics collects the operation counters the experiment harness
// reports: tuples scanned and stored, node activations, joins recomputed,
// lock waits, transaction aborts, and simulated I/O.
//
// Counters are safe for concurrent increment, matching the paper's claim
// that matching-pattern propagation can proceed in parallel across COND
// relations.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter identifies one tracked quantity.
type Counter string

// The counters used across the matchers and executors.
const (
	// Storage-engine level.
	TuplesInserted   Counter = "tuples_inserted"
	TuplesDeleted    Counter = "tuples_deleted"
	TuplesScanned    Counter = "tuples_scanned"
	IndexLookups     Counter = "index_lookups"      // hash-index equality probes
	IndexRangeProbes Counter = "index_range_probes" // ordered-index range probes
	InternHits       Counter = "intern_hits"        // string payloads deduplicated at insert
	BatchInserts     Counter = "batch_inserts"      // bulk InsertBatch calls
	PagesRead        Counter = "pages_read"         // simulated I/O
	PagesWritten     Counter = "pages_written"

	// Match-network level.
	NodeActivations  Counter = "node_activations"
	TokensStored     Counter = "tokens_stored"
	TokensDeleted    Counter = "tokens_deleted"
	JoinsComputed    Counter = "joins_computed"
	PatternsStored   Counter = "patterns_stored"
	PatternsDeleted  Counter = "patterns_deleted"
	PatternSearches  Counter = "pattern_searches"
	CondTuplesStored Counter = "cond_tuples_stored"
	FalseDrops       Counter = "false_drops"
	CandidateChecks  Counter = "candidate_checks"

	// Planner level (internal/joiner cost-based planning).
	PlansBuilt        Counter = "plans_built"        // plans compiled (first build + rebuilds)
	PlanCacheHits     Counter = "plan_cache_hits"    // executions served by a cached plan
	PlanInvalidations Counter = "plan_invalidations" // plans discarded on stats drift

	// Conflict-set / execution level.
	Instantiations  Counter = "instantiations"
	Retractions     Counter = "retractions"
	RuleFirings     Counter = "rule_firings"
	LockWaits       Counter = "lock_waits"
	LockAcquired    Counter = "locks_acquired"
	TxnCommits      Counter = "txn_commits"
	TxnAborts       Counter = "txn_aborts"
	Deadlocks       Counter = "deadlocks"
	SerialOps       Counter = "serial_ops" // non-interleaved operation slots
	MaintenanceOps  Counter = "maintenance_ops"
	ParallelBatches Counter = "parallel_batches"

	// Batch-pipeline level (engine.ApplyDelta).
	BatchDeltas       Counter = "batch_deltas"       // deltas applied set-at-a-time
	BatchTuples       Counter = "batch_tuples"       // tuples carried by those deltas
	BatchPropagations Counter = "batch_propagations" // per-(class,direction) maintenance passes

	// Shard-scheduler level (engine parallel match maintenance).
	ShardCount      Counter = "shards"           // configured shard space (gauge via Max)
	ShardMaintains  Counter = "shard_maintains"  // per-shard maintenance tasks executed
	ShardSteals     Counter = "shard_steals"     // tasks taken from another worker's queue
	CrossShardTxns  Counter = "cross_shard_txns" // deltas whose tuples spanned >1 shard
	ShardRebalances Counter = "shard_rebalance"  // oversized shard tasks split per class

	// Durability level (internal/wal).
	TxnRetries     Counter = "txn_retries"     // deadlock victims retried with backoff
	WALAppends     Counter = "wal_appends"     // committed units (txns + batches) logged
	WALRecords     Counter = "wal_records"     // individual records written
	WALBytes       Counter = "wal_bytes"       // bytes appended to the log
	WALSyncs       Counter = "wal_syncs"       // fsyncs issued by the sync policy
	WALCheckpoints Counter = "wal_checkpoints" // checkpoint compactions completed
	RecoveryTxns   Counter = "recovery_txns"   // committed units replayed at open
	RecoveryOps    Counter = "recovery_ops"    // WM operations replayed at open
	RecoveryTuples Counter = "recovery_tuples" // checkpoint tuples restored at open
	RecoveryNanos  Counter = "recovery_ns"     // wall time spent in recovery replay

	// Server level (internal/server front end + WAL group commit).
	ServerAdmitted     Counter = "server_admitted"      // requests admitted past admission control
	ServerRejected     Counter = "server_rejected"      // requests shed with 429 (queue full)
	ServerDrained      Counter = "server_drained"       // in-flight requests finished during drain
	ServerQueueClients Counter = "server_queue_clients" // high-water distinct clients waiting in the fair queue
	WALGroupCommits    Counter = "wal_group_commits"    // group fsyncs, each covering ≥1 waiting commit
	WALGroupWaiters    Counter = "wal_group_waiters"    // commits whose durability rode a group fsync
	ReadOnlyMode       Counter = "read_only"            // 1 after a WAL failure flipped the system read-only

	// Replication level (internal/replica log shipping + failover).
	ReplicaTxns       Counter = "replica_txns_applied"  // committed units applied from the feed
	ReplicaOps        Counter = "replica_ops_applied"   // WM operations those units carried
	ReplicaBytes      Counter = "replica_bytes"         // raw WAL bytes mirrored into the local log
	ReplicaSnapshots  Counter = "replica_snapshots"     // bootstrap snapshots restored
	ReplicaEpochs     Counter = "replica_epoch_follows" // primary checkpoints mirrored locally
	ReplicaReconnects Counter = "replica_reconnects"    // feed connections (re)established
	ReplicaLagBytes   Counter = "replica_lag_bytes"     // gauge: bytes behind the primary at last heartbeat
	FeedsServed       Counter = "feeds_served"          // replication feed connections served (primary side)
	FeedFrames        Counter = "feed_frames"           // frames shipped to replicas (primary side)
	Promotions        Counter = "promotions"            // replica→primary promotions completed
	FencedWrites      Counter = "fenced_writes"         // writes rejected by stale-epoch fencing

	// Integrity level (internal/audit + executor fault containment).
	AuditRuns         Counter = "audit_runs"          // audit passes (full or sampled)
	AuditRulesChecked Counter = "audit_rules_checked" // rules examined across audits
	AuditDivergences  Counter = "audit_divergences"   // divergences detected
	AuditRepairs      Counter = "audit_repairs"       // divergences repaired
	MatcherRebuilds   Counter = "matcher_rebuilds"    // rules (or matchers) rebuilt from WM
	PanicsContained   Counter = "panics_contained"    // rule/maintenance panics absorbed
	TxnTimeouts       Counter = "txn_timeouts"        // transactions aborted by the watchdog
)

// Set is a concurrent counter bag. The zero Set is ready to use.
type Set struct {
	mu sync.RWMutex
	m  map[Counter]*atomic.Int64
}

// counter returns (creating on demand) the cell for c.
func (s *Set) counter(c Counter) *atomic.Int64 {
	s.mu.RLock()
	cell := s.m[c]
	s.mu.RUnlock()
	if cell != nil {
		return cell
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[Counter]*atomic.Int64)
	}
	if cell = s.m[c]; cell == nil {
		cell = new(atomic.Int64)
		s.m[c] = cell
	}
	return cell
}

// Add increments counter c by n.
func (s *Set) Add(c Counter, n int64) {
	if s == nil {
		return
	}
	s.counter(c).Add(n)
}

// Inc increments counter c by one.
func (s *Set) Inc(c Counter) { s.Add(c, 1) }

// Get returns the current value of counter c.
func (s *Set) Get(c Counter) int64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	cell := s.m[c]
	s.mu.RUnlock()
	if cell == nil {
		return 0
	}
	return cell.Load()
}

// Store sets counter c to exactly n — gauge semantics for quantities
// that move both ways (replication lag, queue depths).
func (s *Set) Store(c Counter, n int64) {
	if s == nil {
		return
	}
	s.counter(c).Store(n)
}

// Max raises counter c to at least n.
func (s *Set) Max(c Counter, n int64) {
	if s == nil {
		return
	}
	cell := s.counter(c)
	for {
		cur := cell.Load()
		if cur >= n || cell.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Reset zeroes every counter.
func (s *Set) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cell := range s.m {
		cell.Store(0)
	}
}

// Snapshot is an immutable copy of a Set's counters.
type Snapshot map[Counter]int64

// Snapshot copies the current counter values.
func (s *Set) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(Snapshot, len(s.m))
	for c, cell := range s.m {
		out[c] = cell.Load()
	}
	return out
}

// Get returns the value of c in the snapshot (zero when absent).
func (sn Snapshot) Get(c Counter) int64 { return sn[c] }

// Diff returns sn - prev per counter, keeping only nonzero deltas.
func (sn Snapshot) Diff(prev Snapshot) Snapshot {
	out := make(Snapshot)
	for c, v := range sn {
		if d := v - prev[c]; d != 0 {
			out[c] = d
		}
	}
	for c, v := range prev {
		if _, seen := sn[c]; !seen && v != 0 {
			out[c] = -v
		}
	}
	return out
}

// String renders the snapshot with counters in sorted order.
func (sn Snapshot) String() string {
	names := make([]string, 0, len(sn))
	for c := range sn {
		names = append(names, string(c))
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, sn[Counter(n)])
	}
	return b.String()
}
