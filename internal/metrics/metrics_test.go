package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestAddGetInc(t *testing.T) {
	var s Set
	if got := s.Get(TuplesScanned); got != 0 {
		t.Fatalf("fresh counter = %d", got)
	}
	s.Inc(TuplesScanned)
	s.Add(TuplesScanned, 4)
	if got := s.Get(TuplesScanned); got != 5 {
		t.Fatalf("after Inc+Add(4) = %d, want 5", got)
	}
}

func TestNilSetIsSafe(t *testing.T) {
	var s *Set
	s.Inc(TuplesScanned)
	s.Add(JoinsComputed, 10)
	s.Max(SerialOps, 3)
	s.Reset()
	if got := s.Get(TuplesScanned); got != 0 {
		t.Fatalf("nil set Get = %d", got)
	}
	if sn := s.Snapshot(); len(sn) != 0 {
		t.Fatalf("nil set snapshot = %v", sn)
	}
}

func TestMax(t *testing.T) {
	var s Set
	s.Max(SerialOps, 5)
	s.Max(SerialOps, 3)
	if got := s.Get(SerialOps); got != 5 {
		t.Fatalf("Max kept %d, want 5", got)
	}
	s.Max(SerialOps, 9)
	if got := s.Get(SerialOps); got != 9 {
		t.Fatalf("Max kept %d, want 9", got)
	}
}

func TestReset(t *testing.T) {
	var s Set
	s.Add(LockWaits, 7)
	s.Reset()
	if got := s.Get(LockWaits); got != 0 {
		t.Fatalf("after reset = %d", got)
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	var s Set
	s.Add(TuplesScanned, 10)
	before := s.Snapshot()
	s.Add(TuplesScanned, 5)
	s.Add(JoinsComputed, 2)
	after := s.Snapshot()
	d := after.Diff(before)
	if d[TuplesScanned] != 5 || d[JoinsComputed] != 2 {
		t.Fatalf("diff = %v", d)
	}
	if len(d) != 2 {
		t.Fatalf("diff has extra entries: %v", d)
	}
	// Diff against a snapshot with a counter absent from sn.
	d2 := Snapshot{}.Diff(Snapshot{LockWaits: 3})
	if d2[LockWaits] != -3 {
		t.Fatalf("reverse diff = %v", d2)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	var s Set
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				s.Inc(NodeActivations)
			}
		}()
	}
	wg.Wait()
	if got := s.Get(NodeActivations); got != workers*per {
		t.Fatalf("concurrent total = %d, want %d", got, workers*per)
	}
}

func TestSnapshotString(t *testing.T) {
	var s Set
	s.Add(TuplesScanned, 1)
	s.Add(JoinsComputed, 2)
	out := s.Snapshot().String()
	if !strings.Contains(out, "tuples_scanned=1") || !strings.Contains(out, "joins_computed=2") {
		t.Fatalf("snapshot string = %q", out)
	}
	// Sorted order: joins before tuples.
	if strings.Index(out, "joins") > strings.Index(out, "tuples") {
		t.Fatalf("snapshot not sorted: %q", out)
	}
}
