// Package view maintains materialized views on top of the matching
// machinery, realizing the paper's observation that "the problem of
// maintaining a set of condition-action rules is the same as the problem
// of maintaining materialized views and triggers" (§2.3, §6).
//
// A view is defined as a production with an empty RHS: its LHS is the
// view qualification (Buneman & Clemons' monitored condition), and the
// view's columns are the qualification's variables. Instantiations
// entering or leaving the conflict set are exactly the add and delete
// triggers of [BUNE79]; the matching-pattern matcher makes the
// maintenance incremental.
package view

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

// row is one materialized view row: the projected variable values and
// the number of qualification instantiations deriving it.
type row struct {
	values []string
	count  int
}

// View is one materialized view.
type View struct {
	Name    string
	Columns []string // variable names, sorted

	mu   sync.Mutex
	rows map[string]*row
}

// Len returns the number of distinct rows.
func (v *View) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.rows)
}

// Rows renders the view contents sorted, one "col=val" list per row, with
// the derivation count.
func (v *View) Rows() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.rows))
	for _, r := range v.rows {
		out = append(out, fmt.Sprintf("%s ×%d", strings.Join(r.values, " "), r.count))
	}
	sort.Strings(out)
	return out
}

// Contains reports whether the view currently derives a row with the
// given rendered values (in column order, "col=value" with symbols and
// strings unquoted).
func (v *View) Contains(rendered ...string) bool {
	want := strings.Join(rendered, " ")
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, r := range v.rows {
		if strings.Join(r.values, " ") == want {
			return true
		}
	}
	return false
}

// displayValue renders a value for view rows: textual values unquoted.
func displayValue(v value.V) string {
	if v.Kind() == value.Str || v.Kind() == value.Sym {
		return v.AsString()
	}
	return v.String()
}

// apply processes one add/delete trigger.
func (v *View) apply(added bool, b rules.Bindings) {
	vals := make([]string, len(v.Columns))
	keys := make([]string, len(v.Columns))
	for i, c := range v.Columns {
		vals[i] = c + "=" + displayValue(b[c])
		keys[i] = c + "=" + b[c].Key().String()
	}
	key := strings.Join(keys, " ")
	v.mu.Lock()
	defer v.mu.Unlock()
	if added {
		r := v.rows[key]
		if r == nil {
			r = &row{values: vals}
			v.rows[key] = r
		}
		r.count++
		return
	}
	if r := v.rows[key]; r != nil {
		r.count--
		if r.count <= 0 {
			delete(v.rows, key)
		}
	}
}

// Manager maintains a set of views over a shared WM catalog.
type Manager struct {
	set     *rules.Set
	db      *relation.DB
	matcher match.Matcher
	views   map[string]*View
}

// NewManager compiles a source whose productions (all with empty RHS)
// define the views, and attaches incremental maintenance over db. The db
// must already contain a relation per class declared in src.
func NewManager(src string, db *relation.DB, stats *metrics.Set) (*Manager, error) {
	set, _, err := rules.CompileSource(src)
	if err != nil {
		return nil, err
	}
	for _, r := range set.Rules {
		if len(r.Actions) != 0 {
			return nil, fmt.Errorf("view %s: view definitions must have an empty RHS", r.Name)
		}
	}
	mgr := &Manager{set: set, db: db, views: make(map[string]*View)}
	for _, r := range set.Rules {
		cols := map[string]bool{}
		for _, ce := range r.CEs {
			if ce.Negated {
				continue
			}
			for _, v := range ce.Vars() {
				cols[v] = true
			}
		}
		names := make([]string, 0, len(cols))
		for c := range cols {
			names = append(names, c)
		}
		sort.Strings(names)
		mgr.views[r.Name] = &View{Name: r.Name, Columns: names, rows: make(map[string]*row)}
	}
	cs := conflict.NewSet(stats)
	cs.SetObserver(func(added bool, in *conflict.Instantiation) {
		if v := mgr.views[in.Rule.Name]; v != nil {
			v.apply(added, in.Bindings)
		}
	})
	mgr.matcher = core.New(set, db, cs, stats)
	return mgr, nil
}

// View returns the named view.
func (m *Manager) View(name string) (*View, bool) {
	v, ok := m.views[name]
	return v, ok
}

// Names lists the defined views, sorted.
func (m *Manager) Names() []string {
	out := make([]string, 0, len(m.views))
	for n := range m.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert propagates a WM insertion into the view maintenance machinery.
// The tuple must already be stored in the db relation.
func (m *Manager) Insert(class string, id relation.TupleID, t relation.Tuple) error {
	if _, tracked := m.set.Classes[class]; !tracked {
		return nil
	}
	return m.matcher.Insert(class, id, t)
}

// Delete propagates a WM deletion (already applied to the db relation).
func (m *Manager) Delete(class string, id relation.TupleID, t relation.Tuple) error {
	if _, tracked := m.set.Classes[class]; !tracked {
		return nil
	}
	return m.matcher.Delete(class, id, t)
}
