package view

import (
	"strings"
	"testing"

	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

const viewSrc = `
(literalize Emp name salary dno)
(literalize Dept dno dname)

; employees of the Toy department, with their salaries
(p ToyStaff
    (Emp ^name <n> ^salary <s> ^dno <d>)
    (Dept ^dno <d> ^dname Toy)
  -->)

; departments with no employees at all
(p EmptyDept
    (Dept ^dno <d> ^dname <m>)
    - (Emp ^dno <d>)
  -->)
`

type fixture struct {
	mgr *Manager
	db  *relation.DB
}

func setup(t *testing.T) *fixture {
	t.Helper()
	set, _, err := rules.CompileSource(viewSrc)
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.Set{}
	db := relation.NewDB(st)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(viewSrc, db, st)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{mgr: mgr, db: db}
}

func (f *fixture) insert(t *testing.T, class string, vals ...value.V) relation.TupleID {
	t.Helper()
	rel := f.db.MustGet(class)
	id, err := rel.Insert(relation.Tuple(vals))
	if err != nil {
		t.Fatal(err)
	}
	tup, _ := rel.Get(id)
	if err := f.mgr.Insert(class, id, tup); err != nil {
		t.Fatal(err)
	}
	return id
}

func (f *fixture) remove(t *testing.T, class string, id relation.TupleID) {
	t.Helper()
	tup, err := f.db.MustGet(class).Delete(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Delete(class, id, tup); err != nil {
		t.Fatal(err)
	}
}

func TestJoinViewMaintenance(t *testing.T) {
	f := setup(t)
	v, ok := f.mgr.View("ToyStaff")
	if !ok {
		t.Fatal("ToyStaff view missing")
	}
	if got := v.Columns; len(got) != 3 || got[0] != "d" || got[1] != "n" || got[2] != "s" {
		t.Fatalf("columns = %v", got)
	}
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(500), value.OfInt(7))
	if v.Len() != 0 {
		t.Fatalf("no dept yet: %v", v.Rows())
	}
	d := f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	if v.Len() != 1 {
		t.Fatalf("Ann should appear: %v", v.Rows())
	}
	if !strings.Contains(v.Rows()[0], "n=Ann") {
		t.Fatalf("row content: %v", v.Rows())
	}
	f.insert(t, "Emp", value.OfSym("Bob"), value.OfInt(900), value.OfInt(7))
	if v.Len() != 2 {
		t.Fatalf("Bob should appear: %v", v.Rows())
	}
	// Delete the department: the view empties (delete triggers).
	f.remove(t, "Dept", d)
	if v.Len() != 0 {
		t.Fatalf("view should empty: %v", v.Rows())
	}
}

func TestNegationView(t *testing.T) {
	f := setup(t)
	v, _ := f.mgr.View("EmptyDept")
	f.insert(t, "Dept", value.OfInt(9), value.OfSym("Shoe"))
	if v.Len() != 1 {
		t.Fatalf("Shoe is empty: %v", v.Rows())
	}
	e := f.insert(t, "Emp", value.OfSym("Cat"), value.OfInt(100), value.OfInt(9))
	if v.Len() != 0 {
		t.Fatalf("Shoe now staffed: %v", v.Rows())
	}
	f.remove(t, "Emp", e)
	if v.Len() != 1 {
		t.Fatalf("Shoe empty again: %v", v.Rows())
	}
}

func TestDuplicateDerivationCounts(t *testing.T) {
	// Two Toy departments with the same dno? Different dnos, same
	// employee row only if all projected columns match; use two identical
	// Dept tuples to create two derivations of the same row.
	f := setup(t)
	v, _ := f.mgr.View("ToyStaff")
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(500), value.OfInt(7))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	d2 := f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	if v.Len() != 1 {
		t.Fatalf("rows = %v", v.Rows())
	}
	if !strings.Contains(v.Rows()[0], "×2") {
		t.Fatalf("derivation count should be 2: %v", v.Rows())
	}
	// Removing one duplicate keeps the row.
	f.remove(t, "Dept", d2)
	if v.Len() != 1 || !strings.Contains(v.Rows()[0], "×1") {
		t.Fatalf("after one removal: %v", v.Rows())
	}
}

func TestManagerValidation(t *testing.T) {
	db := relation.NewDB(nil)
	if _, err := NewManager(`(literalize A x) (p V (A ^x <v>) --> (halt))`, db, nil); err == nil {
		t.Error("non-empty RHS should be rejected")
	}
	if _, err := NewManager(`(p V (Ghost ^x 1) -->)`, db, nil); err == nil {
		t.Error("bad source should be rejected")
	}
}

func TestUntrackedClassIgnored(t *testing.T) {
	f := setup(t)
	if err := f.mgr.Insert("Ghost", 1, relation.Tuple{value.OfInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Delete("Ghost", 1, relation.Tuple{value.OfInt(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestNamesAndContains(t *testing.T) {
	f := setup(t)
	names := f.mgr.Names()
	if len(names) != 2 || names[0] != "EmptyDept" || names[1] != "ToyStaff" {
		t.Fatalf("Names = %v", names)
	}
	f.insert(t, "Dept", value.OfInt(9), value.OfSym("Shoe"))
	v, _ := f.mgr.View("EmptyDept")
	if !v.Contains("d=9", "m=Shoe") {
		t.Fatalf("Contains failed: %v", v.Rows())
	}
	if v.Contains("d=8", "m=Shoe") {
		t.Fatal("Contains false positive")
	}
	if _, ok := f.mgr.View("Nope"); ok {
		t.Fatal("unknown view")
	}
}
