// Package faultfs is an in-memory fsx.FS with fault injection: it can
// fail a write outright, perform a short (torn) write, or "crash" —
// freeze the filesystem at an arbitrary operation boundary so a test can
// reboot from the surviving bytes and drive recovery. The write-ahead
// log writes one record per Write call, so counting writes gives tests a
// crash point at every record boundary.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"prodsys/internal/fsx"
)

// ErrInjected marks a write failed by fault injection.
var ErrInjected = errors.New("faultfs: injected write failure")

// ErrCrashed marks an operation attempted after the filesystem crashed.
var ErrCrashed = errors.New("faultfs: filesystem has crashed")

// FS is an in-memory filesystem with programmable faults. The zero
// value is not usable; create with New.
type FS struct {
	mu      sync.Mutex
	files   map[string][]byte
	writes  int // completed Write calls across all files
	crashed bool

	// failAt, when > 0, makes the Nth Write call (1-based, counted
	// across all files) fail. shortBy controls how many bytes of that
	// write still reach the file before the failure — a torn write.
	failAt  int
	shortBy int
	// crashOnFail escalates the injected failure to a full crash.
	crashOnFail bool
}

// New creates an empty fault-free filesystem.
func New() *FS { return &FS{files: make(map[string][]byte)} }

// FromSnapshot creates a filesystem pre-populated with the given files —
// the "reboot" after a crash.
func FromSnapshot(files map[string][]byte) *FS {
	f := New()
	for name, data := range files {
		f.files[name] = append([]byte(nil), data...)
	}
	return f
}

// FailWrite arranges for the n-th Write call from now (1-based, counted
// across all files) to fail after writing the first keep bytes. With
// crash=true the filesystem also crashes at that point: every later
// operation returns ErrCrashed.
func (f *FS) FailWrite(n, keep int, crash bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = f.writes + n
	f.shortBy = keep
	f.crashOnFail = crash
}

// Writes returns the number of completed Write calls so far.
func (f *FS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Crashed reports whether the filesystem has crashed.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Snapshot copies the current file contents — the bytes that survive
// the crash.
func (f *FS) Snapshot() map[string][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]byte, len(f.files))
	for name, data := range f.files {
		out[name] = append([]byte(nil), data...)
	}
	return out
}

// file is one open handle.
type file struct {
	fs   *FS
	name string
}

// Write appends to the file, honoring any injected fault.
func (h *file) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	h.fs.writes++
	if h.fs.failAt > 0 && h.fs.writes == h.fs.failAt {
		keep := h.fs.shortBy
		if keep > len(p) {
			keep = len(p)
		}
		h.fs.files[h.name] = append(h.fs.files[h.name], p[:keep]...)
		if h.fs.crashOnFail {
			h.fs.crashed = true
			return keep, ErrCrashed
		}
		return keep, ErrInjected
	}
	h.fs.files[h.name] = append(h.fs.files[h.name], p...)
	return len(p), nil
}

// Sync is a no-op in memory (every write is immediately "stable").
func (h *file) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	return nil
}

// Close implements fsx.File.
func (h *file) Close() error { return nil }

// Create implements fsx.FS.
func (f *FS) Create(name string) (fsx.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	f.files[name] = nil
	return &file{fs: f, name: name}, nil
}

// OpenAppend implements fsx.FS.
func (f *FS) OpenAppend(name string) (fsx.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	if _, ok := f.files[name]; !ok {
		f.files[name] = nil
	}
	return &file{fs: f, name: name}, nil
}

// ReadFile implements fsx.FS.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	data, ok := f.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), data...), nil
}

// Rename implements fsx.FS.
func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	data, ok := f.files[oldname]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: %w", oldname, fs.ErrNotExist)
	}
	f.files[newname] = data
	delete(f.files, oldname)
	return nil
}

// Remove implements fsx.FS.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	delete(f.files, name)
	return nil
}
