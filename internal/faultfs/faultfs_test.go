package faultfs

import (
	"errors"
	"io"
	"os"
	"testing"

	"prodsys/internal/fsx"
)

func TestBasicFileOps(t *testing.T) {
	fs := New()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("one"))
	f.Close()
	g, _ := fs.OpenAppend("a")
	g.Write([]byte("two"))
	g.Close()
	data, err := fs.ReadFile("a")
	if err != nil || string(data) != "onetwo" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if _, err := fs.ReadFile("missing"); !os.IsNotExist(err) {
		t.Fatalf("missing file error: %v", err)
	}
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("a"); !os.IsNotExist(err) {
		t.Fatal("old name still readable after rename")
	}
	if fs.Writes() != 2 {
		t.Fatalf("writes = %d, want 2", fs.Writes())
	}
}

func TestInjectedShortWrite(t *testing.T) {
	fs := New()
	f, _ := fs.Create("a")
	fs.FailWrite(1, 2, false)
	n, err := f.Write([]byte("hello"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	// Not crashed: later writes succeed, torn bytes persist.
	if _, err := f.Write([]byte("!")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("a")
	if string(data) != "he!" {
		t.Fatalf("contents %q", data)
	}
}

func TestCrashFreezesEverything(t *testing.T) {
	fs := New()
	f, _ := fs.Create("a")
	f.Write([]byte("durable"))
	fs.FailWrite(1, 3, true)
	if _, err := f.Write([]byte("lost")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write error: %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("not crashed")
	}
	for _, op := range []func() error{
		func() error { _, err := fs.Create("x"); return err },
		func() error { _, err := fs.OpenAppend("a"); return err },
		func() error { _, err := fs.ReadFile("a"); return err },
		func() error { return fs.Rename("a", "b") },
		func() error { return fs.Remove("a") },
		f.Sync,
	} {
		if err := op(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash op error: %v", err)
		}
	}
	// The snapshot is the surviving disk: pre-crash bytes plus the kept
	// prefix of the torn write.
	snap := fs.Snapshot()
	if string(snap["a"]) != "durablelos" {
		t.Fatalf("surviving bytes %q", snap["a"])
	}
	// Reboot: a fresh FS from the snapshot works again.
	fs2 := FromSnapshot(snap)
	if data, err := fs2.ReadFile("a"); err != nil || string(data) != "durablelos" {
		t.Fatalf("reboot read: %q %v", data, err)
	}
}

func TestWriteAtomicThroughFaults(t *testing.T) {
	fs := New()
	// Baseline success.
	if err := fsx.WriteAtomic(fs, "cfg", func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if data, _ := fs.ReadFile("cfg"); string(data) != "v1" {
		t.Fatalf("atomic write contents %q", data)
	}
	// A failed write leaves the previous version and no temp file.
	fs.FailWrite(1, 0, false)
	err := fsx.WriteAtomic(fs, "cfg", func(w io.Writer) error {
		_, err := w.Write([]byte("v2"))
		return err
	})
	if err == nil {
		t.Fatal("atomic write with injected failure succeeded")
	}
	if data, _ := fs.ReadFile("cfg"); string(data) != "v1" {
		t.Fatalf("previous version lost: %q", data)
	}
	if _, err := fs.ReadFile("cfg.tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}
