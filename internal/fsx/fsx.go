// Package fsx is the small filesystem seam the durability layer writes
// through. The write-ahead log and the checkpointer never touch the os
// package directly; they go through an FS so tests can substitute the
// fault-injecting implementation in internal/faultfs and exercise every
// failure mode — failed writes, short writes, crashes between record
// boundaries — without a real disk.
//
// The package also provides WriteAtomic, the temp-file + fsync + rename
// idiom every durable file in this repository is written with: a crash
// at any point leaves either the previous complete file or the new
// complete file, never a torn mixture.
package fsx

import (
	"io"
	"os"
	"path/filepath"
)

// File is a writable file handle.
type File interface {
	io.Writer
	// Sync forces buffered writes to stable storage.
	Sync() error
	Close() error
}

// FS is the filesystem surface the durability layer needs.
type FS interface {
	// Create opens the named file for writing, truncating it if it
	// exists.
	Create(name string) (File, error)
	// OpenAppend opens the named file for appending, creating it if
	// absent.
	OpenAppend(name string) (File, error)
	// ReadFile returns the named file's contents; the error satisfies
	// os.IsNotExist when the file is absent.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
}

// OS is the real filesystem.
type OS struct{}

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS. After the rename the containing directory is
// fsynced (best effort) so the new directory entry itself is durable.
func (OS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	syncDir(filepath.Dir(newname))
	return nil
}

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// syncDir fsyncs a directory so renames within it survive a crash.
// Errors are ignored: some filesystems refuse to sync directories, and
// the rename itself already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// WriteAtomic writes a file through the temp + fsync + rename protocol:
// write produces the contents into a temporary sibling, the temp file is
// fsynced and closed, and only then renamed over path. A crash at any
// point leaves either the old complete file or the new complete file.
func WriteAtomic(fs FS, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return nil
}
