package wal

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"prodsys/internal/faultfs"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/value"
)

const testPath = "wm.wal"

func openMem(t *testing.T, fs *faultfs.FS, opts Options) (*Log, *Recovered) {
	t.Helper()
	opts.FS = fs
	l, rec, err := Open(testPath, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func sampleOps() []Op {
	return []Op{
		{Class: "Emp", ID: 1, Tuple: relation.Tuple{value.OfSym("Ann"), value.OfInt(100)}},
		{Class: "Emp", ID: 2, Tuple: relation.Tuple{value.OfString("x\ty\n"), value.OfFloat(2.5)}},
		{Retract: true, Class: "Emp", ID: 1},
		{Class: "Dept", ID: 7, Tuple: relation.Tuple{value.V{}}},
	}
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Retract != b[i].Retract || a[i].Class != b[i].Class || a[i].ID != b[i].ID {
			return false
		}
		if len(a[i].Tuple) != len(b[i].Tuple) {
			return false
		}
		for j := range a[i].Tuple {
			if EncodeOpValue(a[i].Tuple[j]) != EncodeOpValue(b[i].Tuple[j]) {
				return false
			}
		}
	}
	return true
}

// EncodeOpValue mirrors the log's value encoding for comparisons.
func EncodeOpValue(v value.V) string { return relation.EncodeValue(v) }

func TestRoundTrip(t *testing.T) {
	fs := faultfs.New()
	l, rec := openMem(t, fs, Options{})
	if rec.Existed {
		t.Fatal("fresh log reports Existed")
	}
	ops := sampleOps()
	if err := l.AppendTxn("R|1|2", ops); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTxn("S|9", nil); err != nil { // zero-op firing: key only
		t.Fatal(err)
	}
	if err := l.AppendBatch(ops[:2]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := openMem(t, fs, Options{})
	defer l2.Close()
	if !rec2.Existed || rec2.TornTail {
		t.Fatalf("recovered: existed=%v torn=%v", rec2.Existed, rec2.TornTail)
	}
	if len(rec2.Txns) != 3 {
		t.Fatalf("recovered %d units, want 3", len(rec2.Txns))
	}
	if rec2.Txns[0].Key != "R|1|2" || rec2.Txns[0].Batch || !opsEqual(rec2.Txns[0].Ops, ops) {
		t.Fatalf("unit 0 mismatch: %+v", rec2.Txns[0])
	}
	if rec2.Txns[1].Key != "S|9" || len(rec2.Txns[1].Ops) != 0 {
		t.Fatalf("unit 1 mismatch: %+v", rec2.Txns[1])
	}
	if !rec2.Txns[2].Batch || !opsEqual(rec2.Txns[2].Ops, ops[:2]) {
		t.Fatalf("unit 2 mismatch: %+v", rec2.Txns[2])
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		stats := &metrics.Set{}
		l, _ := openMem(t, faultfs.New(), Options{Policy: SyncAlways, Stats: stats})
		defer l.Close()
		for i := 0; i < 3; i++ {
			if err := l.AppendTxn("k", nil); err != nil {
				t.Fatal(err)
			}
		}
		if got := stats.Get(metrics.WALSyncs); got != 3 {
			t.Fatalf("always: %d syncs, want 3", got)
		}
	})
	t.Run("never", func(t *testing.T) {
		stats := &metrics.Set{}
		l, _ := openMem(t, faultfs.New(), Options{Policy: SyncNever, Stats: stats})
		for i := 0; i < 3; i++ {
			if err := l.AppendTxn("k", nil); err != nil {
				t.Fatal(err)
			}
		}
		if got := stats.Get(metrics.WALSyncs); got != 0 {
			t.Fatalf("never: %d syncs before close, want 0", got)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if got := stats.Get(metrics.WALSyncs); got != 1 {
			t.Fatalf("never: %d syncs after close, want 1", got)
		}
	})
	t.Run("interval", func(t *testing.T) {
		stats := &metrics.Set{}
		l, _ := openMem(t, faultfs.New(), Options{Policy: SyncInterval, Interval: time.Hour, Stats: stats})
		defer l.Close()
		for i := 0; i < 3; i++ {
			if err := l.AppendTxn("k", nil); err != nil {
				t.Fatal(err)
			}
		}
		if got := stats.Get(metrics.WALSyncs); got != 0 {
			t.Fatalf("interval(1h): %d syncs, want 0", got)
		}
		l.lastSync = time.Now().Add(-2 * time.Hour)
		if err := l.AppendTxn("k", nil); err != nil {
			t.Fatal(err)
		}
		if got := stats.Get(metrics.WALSyncs); got != 1 {
			t.Fatalf("interval elapsed: %d syncs, want 1", got)
		}
	})
}

func TestTornTailTruncated(t *testing.T) {
	fs := faultfs.New()
	l, _ := openMem(t, fs, Options{})
	if err := l.AppendTxn("A", sampleOps()); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTxn("B", sampleOps()[:1]); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Cut the file mid-way through the last unit's commit record.
	snap := fs.Snapshot()
	data := snap[testPath]
	snap[testPath] = data[:len(data)-3]

	l2, rec := openMem(t, faultfs.FromSnapshot(snap), Options{})
	if !rec.TornTail {
		t.Fatal("torn tail not detected")
	}
	if len(rec.Txns) != 1 || rec.Txns[0].Key != "A" {
		t.Fatalf("recovered %+v, want just unit A", rec.Txns)
	}
	// The log was normalized: appending works and a third open is clean.
	if err := l2.AppendTxn("C", nil); err != nil {
		t.Fatal(err)
	}
	fs3 := faultfs.FromSnapshot(mustSnapshot(l2))
	l2.Close()
	_, rec3 := openMem(t, fs3, Options{})
	if rec3.TornTail || len(rec3.Txns) != 2 || rec3.Txns[1].Key != "C" {
		t.Fatalf("after normalize: torn=%v txns=%+v", rec3.TornTail, rec3.Txns)
	}
}

// mustSnapshot reaches through the log's FS; tests only.
func mustSnapshot(l *Log) map[string][]byte {
	return l.fs.(*faultfs.FS).Snapshot()
}

func TestCorruptMiddleRecordTruncates(t *testing.T) {
	fs := faultfs.New()
	l, _ := openMem(t, fs, Options{})
	l.AppendTxn("A", nil)
	l.AppendTxn("B", nil)
	l.Close()

	snap := fs.Snapshot()
	data := snap[testPath]
	_, _, bounds, _ := ScanLog(data)
	// Flip a payload byte inside the second unit's first record.
	data[bounds[3]+9] ^= 0xff
	_, rec := openMem(t, faultfs.FromSnapshot(snap), Options{})
	if !rec.TornTail || len(rec.Txns) != 1 || rec.Txns[0].Key != "A" {
		t.Fatalf("corrupt record: torn=%v txns=%+v", rec.TornTail, rec.Txns)
	}
}

func TestAppendFailureIsSticky(t *testing.T) {
	fs := faultfs.New()
	l, _ := openMem(t, fs, Options{})
	fs.FailWrite(1, 2, false) // torn write, no crash
	if err := l.AppendTxn("A", nil); err == nil {
		t.Fatal("append with injected failure succeeded")
	}
	err := l.AppendTxn("B", nil)
	if err == nil || !strings.Contains(err.Error(), "append") {
		t.Fatalf("sticky error not returned: %v", err)
	}
	// The torn bytes on disk are truncated at next open.
	_, rec := openMem(t, faultfs.FromSnapshot(fs.Snapshot()), Options{})
	if len(rec.Txns) != 0 || !rec.TornTail {
		t.Fatalf("after torn append: txns=%+v torn=%v", rec.Txns, rec.TornTail)
	}
}

func TestClosedLogRefusesAppends(t *testing.T) {
	l, _ := openMem(t, faultfs.New(), Options{})
	l.Close()
	if err := l.AppendTxn("A", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Checkpoint(func(io.Writer) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func dumpConst(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

func TestCheckpointCompaction(t *testing.T) {
	fs := faultfs.New()
	stats := &metrics.Set{}
	l, _ := openMem(t, fs, Options{Stats: stats})
	l.AppendTxn("A", sampleOps())
	l.AppendTxn("B", nil)
	if err := l.Checkpoint(dumpConst("#relation Emp name\n1\ty:a\n")); err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != 2 {
		t.Fatalf("epoch after checkpoint = %d, want 2", l.Epoch())
	}
	l.AppendTxn("C", nil)
	l.Close()
	if stats.Get(metrics.WALCheckpoints) != 1 {
		t.Fatal("checkpoint counter not bumped")
	}

	_, rec := openMem(t, faultfs.FromSnapshot(fs.Snapshot()), Options{})
	if !rec.Existed || string(rec.Checkpoint) != "#relation Emp name\n1\ty:a\n" {
		t.Fatalf("checkpoint not recovered: %q", rec.Checkpoint)
	}
	if len(rec.Txns) != 1 || rec.Txns[0].Key != "C" {
		t.Fatalf("log tail after checkpoint: %+v", rec.Txns)
	}
}

func TestCheckpointDue(t *testing.T) {
	l, _ := openMem(t, faultfs.New(), Options{CheckpointEvery: 2})
	defer l.Close()
	l.AppendTxn("A", nil)
	if l.CheckpointDue() {
		t.Fatal("due after 1 of 2")
	}
	l.AppendTxn("B", nil)
	if !l.CheckpointDue() {
		t.Fatal("not due after 2 of 2")
	}
	if err := l.Checkpoint(dumpConst("")); err != nil {
		t.Fatal(err)
	}
	if l.CheckpointDue() {
		t.Fatal("still due after checkpoint")
	}
}

// TestCheckpointCrashWindows drives a crash at every write boundary of
// the checkpoint protocol and asserts each surviving state recovers to
// either the pre-checkpoint state (old log intact) or the
// post-checkpoint state (snapshot + empty log) — never a mixture.
func TestCheckpointCrashWindows(t *testing.T) {
	// The checkpoint issues: (1) ckpt header line, (2) dump content,
	// (3) fresh log header. Crash at each.
	for crashAt := 1; crashAt <= 3; crashAt++ {
		t.Run(fmt.Sprintf("write%d", crashAt), func(t *testing.T) {
			fs := faultfs.New()
			l, _ := openMem(t, fs, Options{})
			l.AppendTxn("A", nil)
			l.AppendTxn("B", nil)
			fs.FailWrite(crashAt, 0, true)
			if err := l.Checkpoint(dumpConst("SNAPSHOT\n")); err == nil {
				t.Fatal("checkpoint survived an injected crash")
			}
			_, rec := openMem(t, faultfs.FromSnapshot(fs.Snapshot()), Options{})
			switch {
			case crashAt <= 2:
				// Before the ckpt rename: old world intact.
				if rec.Checkpoint != nil || len(rec.Txns) != 2 {
					t.Fatalf("pre-rename crash: ckpt=%q txns=%+v", rec.Checkpoint, rec.Txns)
				}
			default:
				// After the rename, before the log reset: the stale log's
				// units are inside the snapshot; they must not replay again.
				if string(rec.Checkpoint) != "SNAPSHOT\n" || len(rec.Txns) != 0 {
					t.Fatalf("post-rename crash: ckpt=%q txns=%+v", rec.Checkpoint, rec.Txns)
				}
			}
		})
	}
}

func TestScanLogPrefixes(t *testing.T) {
	fs := faultfs.New()
	l, _ := openMem(t, fs, Options{})
	l.AppendTxn("A", sampleOps())
	l.AppendBatch(sampleOps())
	l.AppendTxn("B", nil)
	l.Close()
	data := fs.Snapshot()[testPath]
	_, full, bounds, torn := ScanLog(data)
	if torn || len(full) != 3 {
		t.Fatalf("full scan: torn=%v units=%d", torn, len(full))
	}
	// Committed-unit count must be monotone over record-boundary prefixes,
	// and every byte-level prefix must parse without panicking.
	prev := 0
	for _, b := range bounds {
		_, units, _, _ := ScanLog(data[:b])
		if len(units) < prev {
			t.Fatalf("units decreased at boundary %d", b)
		}
		prev = len(units)
	}
	for n := 0; n <= len(data); n++ {
		ScanLog(data[:n])
	}
}

func TestTxnIDsContinueAcrossReopen(t *testing.T) {
	fs := faultfs.New()
	l, _ := openMem(t, fs, Options{})
	l.AppendTxn("A", nil)
	l.AppendTxn("B", nil)
	l.Close()
	l2, _ := openMem(t, fs, Options{})
	defer l2.Close()
	if l2.nextTxn != 2 {
		t.Fatalf("nextTxn after reopen = %d, want 2", l2.nextTxn)
	}
	if err := l2.AppendTxn("C", nil); err != nil {
		t.Fatal(err)
	}
	_, units, _, _ := ScanLog(fs.Snapshot()[testPath])
	if len(units) != 3 {
		t.Fatalf("units after reopen append = %d", len(units))
	}
}

func TestBadHeaderIsReset(t *testing.T) {
	fs := faultfs.New()
	fs.Create(testPath) // empty file: header torn
	l, rec := openMem(t, fs, Options{})
	defer l.Close()
	if !rec.Existed || !rec.TornTail || len(rec.Txns) != 0 {
		t.Fatalf("empty file: existed=%v torn=%v", rec.Existed, rec.TornTail)
	}
	if err := l.AppendTxn("A", nil); err != nil {
		t.Fatal(err)
	}
}
