package wal

import (
	"errors"
	"sync"
	"testing"

	"prodsys/internal/faultfs"
	"prodsys/internal/metrics"
)

// TestGroupCommitOneSyncCoversMany is the deterministic coalescing
// case: N units appended under SyncGroup are all made durable by a
// single WaitDurable on the last sequence — one fsync, one group
// commit, no per-unit syncs.
func TestGroupCommitOneSyncCoversMany(t *testing.T) {
	fs := faultfs.New()
	stats := &metrics.Set{}
	l, _ := openMem(t, fs, Options{Policy: SyncGroup, Stats: stats})
	const n = 10
	for i := 0; i < n; i++ {
		if err := l.AppendBatch(sampleOps()); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.LastSeq(); got != n {
		t.Fatalf("LastSeq = %d, want %d", got, n)
	}
	if got := stats.Get(metrics.WALSyncs); got != 0 {
		t.Fatalf("appends alone issued %d syncs", got)
	}
	if err := l.WaitDurable(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if got := stats.Get(metrics.WALSyncs); got != 1 {
		t.Fatalf("WALSyncs = %d, want 1", got)
	}
	if got := stats.Get(metrics.WALGroupCommits); got != 1 {
		t.Fatalf("WALGroupCommits = %d, want 1", got)
	}
	// Waiting again for an already-durable seq is free: no new sync.
	if err := l.WaitDurable(3); err != nil {
		t.Fatal(err)
	}
	if got := stats.Get(metrics.WALSyncs); got != 1 {
		t.Fatalf("re-wait issued a sync: %d", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything acknowledged must be recoverable.
	_, rec := openMem(t, fs, Options{Policy: SyncGroup, Stats: stats})
	if len(rec.Txns) != n {
		t.Fatalf("recovered %d units, want %d", len(rec.Txns), n)
	}
}

// TestGroupCommitConcurrentWaiters: many goroutines committing
// concurrently all come back durable, and the log never syncs more
// often than it appends. Appends serialize under a mutex — the
// engine's maintenance lock plays that role in production; WaitDurable
// is the concurrent part (early lock release).
func TestGroupCommitConcurrentWaiters(t *testing.T) {
	fs := faultfs.New()
	stats := &metrics.Set{}
	l, _ := openMem(t, fs, Options{Policy: SyncGroup, Stats: stats})
	const clients, each = 8, 20
	var appendMu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				appendMu.Lock()
				err := l.AppendBatch(sampleOps())
				seq := l.LastSeq()
				appendMu.Unlock()
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := l.WaitDurable(seq); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	appends := stats.Get(metrics.WALAppends)
	syncs := stats.Get(metrics.WALSyncs)
	if appends != clients*each {
		t.Fatalf("appends = %d, want %d", appends, clients*each)
	}
	if syncs > appends {
		t.Fatalf("syncs %d > appends %d", syncs, appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openMem(t, fs, Options{Policy: SyncGroup, Stats: stats})
	if len(rec.Txns) != clients*each {
		t.Fatalf("recovered %d units, want %d", len(rec.Txns), clients*each)
	}
}

// TestGroupCommitSyncFailureSticks: a failed group fsync reports the
// error to every waiter, current and future — the log is done
// acknowledging once the disk lies.
func TestGroupCommitSyncFailureSticks(t *testing.T) {
	fs := faultfs.New()
	l, _ := openMem(t, fs, Options{Policy: SyncGroup, Stats: &metrics.Set{}})
	// Unit 1 appends cleanly but is not yet synced (group mode).
	if err := l.AppendBatch(sampleOps()); err != nil {
		t.Fatal(err)
	}
	// Crash the disk on unit 2's flush: its append fails and the log
	// position stays at unit 1 — which now can never reach stable
	// storage.
	fs.FailWrite(1, 0, true)
	if err := l.AppendBatch(sampleOps()); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("append on crashing disk: %v", err)
	}
	if got := l.LastSeq(); got != 1 {
		t.Fatalf("failed append advanced LastSeq to %d", got)
	}
	if err := l.WaitDurable(1); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("group sync on crashed disk: %v", err)
	}
	// The failure is sticky for later waiters too.
	if err := l.WaitDurable(1); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("second wait after failed sync: %v", err)
	}
}

// TestStickyGroupErrorRacesCheckpointAndClose drives concurrent
// committers into an injected write failure while a maintenance
// goroutine races a Checkpoint (even rounds) or Close (odd rounds)
// against the blocked waiters. Required outcome, every schedule: no
// deadlock, no panic, at least one caller surfaces the injected error,
// the error is sticky for all later operations, and whatever bytes
// survive on disk reboot cleanly.
func TestStickyGroupErrorRacesCheckpointAndClose(t *testing.T) {
	for round := 0; round < 24; round++ {
		fs := faultfs.New()
		l, _ := openMem(t, fs, Options{Policy: SyncGroup, Stats: &metrics.Set{}})
		var mu sync.Mutex // serializes appends/maintenance, as engine maintMu does

		// A durable base so the failure lands mid-stream, not at genesis.
		for j := 0; j < 2; j++ {
			if err := l.AppendBatch(sampleOps()); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.WaitDurable(l.LastSeq()); err != nil {
			t.Fatal(err)
		}

		fs.FailWrite(1+round%4, 0, false) // tear an upcoming write

		const committers = 4
		var wg sync.WaitGroup
		errs := make([]error, committers+1)
		for c := 0; c < committers; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				mu.Lock()
				err := l.AppendBatch(sampleOps())
				seq := l.LastSeq()
				mu.Unlock()
				if err == nil {
					err = l.WaitDurable(seq)
				}
				errs[c] = err
			}(c)
		}
		closing := round%2 == 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			if closing {
				errs[committers] = l.Close()
			} else {
				errs[committers] = l.Checkpoint(dumpConst("SNAP\n"))
			}
		}()
		wg.Wait()
		if !closing {
			errs = append(errs, l.Close())
		}

		saw := false
		for _, err := range errs {
			saw = saw || err != nil
		}
		if !saw {
			t.Fatalf("round %d: injected write failure never surfaced", round)
		}
		// Sticky after the dust settles: the closed, failed log refuses
		// further work.
		if err := l.AppendBatch(sampleOps()); err == nil {
			t.Fatalf("round %d: append accepted after failure+close", round)
		}
		// The surviving image reboots; a torn tail is legal, corruption
		// of the committed prefix is not.
		l2, rec := openMem(t, faultfs.FromSnapshot(fs.Snapshot()), Options{})
		if len(rec.Txns) > 2+committers {
			t.Fatalf("round %d: recovered %d units, appended at most %d", round, len(rec.Txns), 2+committers)
		}
		l2.Close()
	}
}
