package wal

import (
	"bytes"
	"errors"
	"testing"

	"prodsys/internal/faultfs"
)

// buildLog returns the raw file bytes of a log holding the given unit
// keys (one AppendTxn per key, sampleOps each).
func buildLog(t *testing.T, keys ...string) []byte {
	t.Helper()
	fs := faultfs.New()
	l, _ := openMem(t, fs, Options{})
	for _, k := range keys {
		if err := l.AppendTxn(k, sampleOps()); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	return fs.Snapshot()[testPath]
}

func scanKeys(txns []Txn) []string {
	keys := make([]string, len(txns))
	for i, txn := range txns {
		keys[i] = txn.Key
	}
	return keys
}

func TestStreamScannerChunked(t *testing.T) {
	data := buildLog(t, "A", "B", "C")
	_, want, _, _ := ScanLog(data)
	records := data[headerLen:]
	for _, chunk := range []int{1, 3, 7, len(records)} {
		var sc StreamScanner
		var got []Txn
		for pos := 0; pos < len(records); pos += chunk {
			end := pos + chunk
			if end > len(records) {
				end = len(records)
			}
			txns, err := sc.Feed(records[pos:end])
			if err != nil {
				t.Fatalf("chunk=%d: Feed: %v", chunk, err)
			}
			got = append(got, txns...)
		}
		if sc.Pending() {
			t.Fatalf("chunk=%d: scanner still pending after full input", chunk)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: %d units, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key || !opsEqual(got[i].Ops, want[i].Ops) {
				t.Fatalf("chunk=%d: unit %d mismatch", chunk, i)
			}
		}
	}
}

func TestStreamScannerPendingAndReset(t *testing.T) {
	data := buildLog(t, "A")
	records := data[headerLen:]
	var sc StreamScanner
	// Feed everything but the last few bytes: the unit's commit record
	// is incomplete, so nothing completes and the scanner holds state.
	txns, err := sc.Feed(records[:len(records)-3])
	if err != nil || len(txns) != 0 {
		t.Fatalf("partial feed: txns=%d err=%v", len(txns), err)
	}
	if !sc.Pending() {
		t.Fatal("scanner not pending mid-unit")
	}
	sc.Reset()
	if sc.Pending() {
		t.Fatal("scanner pending after Reset")
	}
	// After a reset the scanner accepts a fresh record stream.
	txns, err = sc.Feed(records)
	if err != nil || len(txns) != 1 || txns[0].Key != "A" {
		t.Fatalf("feed after reset: txns=%+v err=%v", txns, err)
	}
}

func TestStreamScannerCorrupt(t *testing.T) {
	data := buildLog(t, "A")
	records := append([]byte(nil), data[headerLen:]...)
	records[9] ^= 0xff // payload byte: CRC mismatch
	var sc StreamScanner
	if _, err := sc.Feed(records); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt feed: %v, want ErrCorrupt", err)
	}
}

func TestAppendRawMirrors(t *testing.T) {
	src := buildLog(t, "A", "B")
	_, want, _, _ := ScanLog(src)

	fs := faultfs.New()
	l, _ := openMem(t, fs, Options{})
	if err := l.AppendRaw(src[headerLen:], len(want)); err != nil {
		t.Fatal(err)
	}
	// The mirror is byte-identical to the source log.
	if !bytes.Equal(fs.Snapshot()[testPath], src) {
		t.Fatal("mirrored log differs from source bytes")
	}
	epoch, size := l.Position()
	if epoch != 1 || size != int64(len(src)) {
		t.Fatalf("position after raw append = %d:%d, want 1:%d", epoch, size, len(src))
	}
	// Transaction IDs continue past the mirrored records, so a promoted
	// mirror does not mint colliding IDs.
	if err := l.AppendTxn("C", nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec := openMem(t, faultfs.FromSnapshot(fs.Snapshot()), Options{})
	if rec.TornTail || len(rec.Txns) != 3 || rec.Txns[2].Key != "C" {
		t.Fatalf("mirror reopen: torn=%v keys=%v", rec.TornTail, scanKeys(rec.Txns))
	}
}

func TestTruncateTailToUnitBoundary(t *testing.T) {
	whole := buildLog(t, "A", "B")
	end := LastUnitBoundary(whole)
	if end != int64(len(whole)) {
		t.Fatalf("clean log boundary %d, want %d", end, len(whole))
	}
	extra := buildLog(t, "A", "B", "C")

	fs := faultfs.New()
	l, _ := openMem(t, fs, Options{})
	// Mirror units A and B plus a torn fragment of C's records.
	if err := l.AppendRaw(extra[headerLen:end+5], 2); err != nil {
		t.Fatal(err)
	}
	n, err := l.TruncateTail()
	if err != nil || n != 5 {
		t.Fatalf("TruncateTail = %d, %v; want 5 discarded", n, err)
	}
	if epoch, size := l.Position(); epoch != 1 || size != end {
		t.Fatalf("position after truncate = %d:%d, want 1:%d", epoch, size, end)
	}
	// Idempotent: a log already ending on a boundary discards nothing.
	if n, err := l.TruncateTail(); err != nil || n != 0 {
		t.Fatalf("second TruncateTail = %d, %v", n, err)
	}
	// The truncated log stays appendable and recovers clean.
	if err := l.AppendTxn("D", nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec := openMem(t, faultfs.FromSnapshot(fs.Snapshot()), Options{})
	if rec.TornTail {
		t.Fatal("torn tail after truncate")
	}
	if got := scanKeys(rec.Txns); len(got) != 3 || got[2] != "D" {
		t.Fatalf("after truncate: keys=%v", got)
	}
}

func TestAdoptCheckpoint(t *testing.T) {
	fs := faultfs.New()
	l, _ := openMem(t, fs, Options{})
	l.AppendTxn("old", nil)
	if err := l.AdoptCheckpoint(7, []byte("#relation Emp name\n1\ty:a\n")); err != nil {
		t.Fatal(err)
	}
	if epoch, size := l.Position(); epoch != 7 || size != int64(headerLen) {
		t.Fatalf("position after adopt = %d:%d", epoch, size)
	}
	// PrevBoundary records where the retired epoch ended — the cursor an
	// exactly-caught-up replica presents for an epoch-follow.
	if pe, _ := l.PrevBoundary(); pe != 1 {
		t.Fatalf("prev boundary epoch = %d, want 1", pe)
	}
	if err := l.AppendTxn("new", nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec := openMem(t, faultfs.FromSnapshot(fs.Snapshot()), Options{})
	if string(rec.Checkpoint) != "#relation Emp name\n1\ty:a\n" {
		t.Fatalf("adopted checkpoint not recovered: %q", rec.Checkpoint)
	}
	if got := scanKeys(rec.Txns); len(got) != 1 || got[0] != "new" {
		t.Fatalf("units after adopt: %v (unit before the adopt must be gone)", got)
	}
}

func TestCheckpointAsValidatesEpoch(t *testing.T) {
	l, _ := openMem(t, faultfs.New(), Options{})
	defer l.Close()
	if err := l.CheckpointAs(1, dumpConst("")); err == nil {
		t.Fatal("CheckpointAs accepted a non-advancing epoch")
	}
	if err := l.CheckpointAs(5, dumpConst("SNAP\n")); err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", l.Epoch())
	}
}

func TestValidPrefixVsUnitBoundary(t *testing.T) {
	data := buildLog(t, "A", "B")
	_, _, bounds, _ := ScanLog(data)
	if ValidPrefix(data) != int64(len(data)) {
		t.Fatalf("ValidPrefix(whole) = %d, want %d", ValidPrefix(data), len(data))
	}
	// Cut mid-record: the valid prefix retreats to the last complete
	// record, the unit boundary to the last complete committed unit —
	// distinct cuts whenever a trailing unit is partially present.
	cut := data[:bounds[len(bounds)-1]-2]
	if got, want := ValidPrefix(cut), bounds[len(bounds)-2]; got != want {
		t.Fatalf("ValidPrefix(torn) = %d, want %d", got, want)
	}
	unitEnd := LastUnitBoundary(cut)
	if unitEnd >= ValidPrefix(cut) && unitEnd != int64(headerLen) {
		// B's commit record was cut, so the unit boundary is A's end,
		// strictly before the record-level prefix.
		if unitEnd >= bounds[len(bounds)-2] {
			t.Fatalf("LastUnitBoundary(torn) = %d, not before %d", unitEnd, bounds[len(bounds)-2])
		}
	}
	if ValidPrefix([]byte("garbage")) != -1 || LastUnitBoundary([]byte("garbage")) != -1 {
		t.Fatal("bad header not rejected")
	}
}

func TestLogEpoch(t *testing.T) {
	data := buildLog(t, "A")
	if e, ok := LogEpoch(data); !ok || e != 1 {
		t.Fatalf("LogEpoch = %d, %v", e, ok)
	}
	if _, ok := LogEpoch([]byte("nope")); ok {
		t.Fatal("LogEpoch accepted garbage")
	}
}
