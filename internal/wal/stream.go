package wal

// This file is the incremental counterpart of ScanLog: a replication
// feed delivers record bytes in arbitrary chunks — a begin record in
// one chunk, its ops and commit in later ones — and the replica must
// apply committed units as their commits arrive while holding earlier
// records of still-open units pending. StreamScanner carries the
// decoder state across chunks.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// StreamScanner folds framed record bytes, fed in arbitrary chunks,
// into committed units. The zero value is ready to use; Reset it after
// an epoch change or snapshot bootstrap.
type StreamScanner struct {
	buf     []byte
	pending map[uint64]*Txn
	order   []uint64
}

// Reset drops any buffered partial record and open units — called when
// the stream restarts at a snapshot or a new epoch.
func (s *StreamScanner) Reset() {
	s.buf = nil
	s.pending = nil
	s.order = nil
}

// Pending reports buffered bytes not yet part of a committed unit: a
// partial record plus any records of still-open units.
func (s *StreamScanner) Pending() bool {
	return len(s.buf) > 0 || len(s.pending) > 0
}

// Feed appends chunk to the scanner and returns every unit whose commit
// record completed inside it, in commit order. Feed only consumes whole,
// checksum-valid records; a partial record tail stays buffered for the
// next chunk. A checksum or structure failure is a real stream
// corruption (the feed ships only validated bytes), returned as
// ErrCorrupt — the caller should drop the connection and re-bootstrap.
func (s *StreamScanner) Feed(chunk []byte) ([]Txn, error) {
	s.buf = append(s.buf, chunk...)
	if s.pending == nil {
		s.pending = make(map[uint64]*Txn)
	}
	var done []Txn
	pos := 0
	for {
		if len(s.buf)-pos < 8 {
			break
		}
		n := binary.BigEndian.Uint32(s.buf[pos:])
		if n > maxRecord {
			return done, fmt.Errorf("%w: stream record length %d", ErrCorrupt, n)
		}
		if len(s.buf)-pos-8 < int(n) {
			break
		}
		payload := s.buf[pos+8 : pos+8+int(n)]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(s.buf[pos+4:]) {
			return done, fmt.Errorf("%w: stream record checksum", ErrCorrupt)
		}
		if !applyRecord(payload, s.pending, &s.order, &done) {
			return done, fmt.Errorf("%w: stream record structure", ErrCorrupt)
		}
		pos += 8 + int(n)
	}
	s.buf = append(s.buf[:0], s.buf[pos:]...)
	return done, nil
}
