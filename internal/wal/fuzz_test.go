package wal

import (
	"bytes"
	"testing"

	"prodsys/internal/faultfs"
)

// fuzzSeedLog builds a small valid log to seed the fuzzer with
// realistic record framing.
func fuzzSeedLog() []byte {
	fs := faultfs.New()
	l, _, err := Open("seed.wal", Options{FS: fs})
	if err != nil {
		panic(err)
	}
	l.AppendTxn("R|1|2", sampleOps())
	l.AppendBatch(sampleOps()[:2])
	l.AppendTxn("S|9", nil)
	l.Close()
	return fs.Snapshot()["seed.wal"]
}

// FuzzScanLog asserts the record decoder never panics on arbitrary
// bytes and maintains its structural invariants: boundaries start at
// the header, increase strictly, never pass the input length, and the
// committed-unit count is monotone over record-boundary prefixes.
func FuzzScanLog(f *testing.F) {
	seed := fuzzSeedLog()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                           // torn tail
	f.Add([]byte(Magic))                                // header only, epoch missing
	f.Add(append(bytes.Repeat([]byte{0}, 16), 1, 2, 3)) // wrong magic
	mut := append([]byte(nil), seed...)
	mut[20] ^= 0xff // corrupt a record
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, txns, bounds, torn := ScanLog(data)
		if len(bounds) == 0 {
			if len(txns) != 0 {
				t.Fatal("units without a valid header")
			}
			return
		}
		if bounds[0] != int64(headerLen) {
			t.Fatalf("first boundary %d, want %d", bounds[0], headerLen)
		}
		prev := int64(0)
		for _, b := range bounds {
			if b <= prev && prev != 0 || b > int64(len(data)) {
				t.Fatalf("boundary %d out of order or past input %d", b, len(data))
			}
			prev = b
		}
		if !torn && bounds[len(bounds)-1] != int64(len(data)) {
			t.Fatal("clean scan did not consume the whole input")
		}
		// Unit count is monotone over boundary prefixes.
		prevUnits := 0
		for _, b := range bounds {
			_, units, _, _ := ScanLog(data[:b])
			if len(units) < prevUnits {
				t.Fatalf("unit count decreased at boundary %d", b)
			}
			prevUnits = len(units)
		}
	})
}
