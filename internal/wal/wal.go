// Package wal is the durability subsystem: an append-only, checksummed,
// length-prefixed write-ahead log of committed working-memory changes,
// plus checkpoint compaction against the dump format of
// internal/relation.
//
// The paper's §3.2 premise is that working memory "can reside on
// secondary storage and be persistent", and §5 defers each rule
// firing's commit point until the maintenance process completes. This
// package makes that commit point durable: the engine appends one
// logical unit per committed transaction — begin / assert / retract /
// commit records for rule firings, a single batch record for a
// set-oriented ApplyDelta — exactly at the deferred commit point, before
// locks release. On open, the log's committed prefix (checkpoint plus
// log tail) is replayed through matcher maintenance, so a crash at any
// byte of the file recovers working memory and the conflict set to the
// state after some prefix of committed transactions — never a torn or
// partially applied one.
//
// On-disk layout, given log path P:
//
//	P        — the log: 16-byte header (8-byte magic, 8-byte big-endian
//	           epoch), then records. Each record is a 4-byte big-endian
//	           payload length, a 4-byte IEEE CRC32 of the payload, and
//	           the payload. Payloads begin with a kind byte.
//	P.ckpt   — the checkpoint: one "#pswal-checkpoint <epoch>" line,
//	           then a relation.DB dump. Written atomically
//	           (temp + fsync + rename); the log is re-created empty with
//	           the checkpoint's epoch afterwards, so a crash between the
//	           two steps is detected by the epoch mismatch and the stale
//	           log is ignored.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"prodsys/internal/fsx"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/trace"
)

// Magic identifies a log file; the trailing digits version the format.
const Magic = "PSWAL01\n"

// headerLen is the log header size: magic plus the 8-byte epoch.
const headerLen = len(Magic) + 8

// maxRecord bounds a record payload; larger length prefixes mark
// corruption (and keep a fuzzer from allocating gigabytes).
const maxRecord = 1 << 26

// ErrCorrupt marks a structurally invalid log or checkpoint; recovery
// treats a corrupt tail as a crash point and truncates it, so ErrCorrupt
// only surfaces for damage recovery cannot scope (a bad header).
var ErrCorrupt = errors.New("wal: corrupt")

// ErrClosed marks an append or sync on a closed log.
var ErrClosed = errors.New("wal: closed")

// SyncPolicy selects when the log fsyncs.
type SyncPolicy string

// The available sync policies.
const (
	// SyncAlways fsyncs after every committed unit: nothing
	// acknowledged is ever lost, at one fsync per transaction.
	SyncAlways SyncPolicy = "always"
	// SyncInterval fsyncs at most once per Options.Interval; a crash
	// loses at most the last interval's commits.
	SyncInterval SyncPolicy = "interval"
	// SyncNever leaves flushing to the OS (and Close); fastest, weakest.
	SyncNever SyncPolicy = "never"
	// SyncGroup coalesces fsyncs across concurrently committing
	// clients: appends return without syncing, and each committer calls
	// WaitDurable after releasing the append lock. The first waiter
	// becomes the group leader and issues one fsync covering every unit
	// appended so far; the others ride it. Same guarantee as SyncAlways
	// (no acknowledged commit is ever lost) at a fraction of the fsyncs
	// under concurrency.
	SyncGroup SyncPolicy = "group"
)

// Record kinds.
const (
	recBegin   = 1 // uvarint txn, string key (instantiation key, may be empty)
	recAssert  = 2 // uvarint txn, string class, uvarint id, tuple
	recRetract = 3 // uvarint txn, string class, uvarint id
	recCommit  = 4 // uvarint txn
	recBatch   = 5 // uvarint txn, uvarint nops, ops (op: byte retract, string class, uvarint id, tuple if assert)
)

// Op is one working-memory change carried by the log: an assertion with
// its assigned tuple ID and value, or a retraction by ID.
type Op struct {
	Retract bool
	Class   string
	ID      relation.TupleID
	Tuple   relation.Tuple // nil for retractions
}

// Txn is one committed unit read back from the log: a rule-firing
// transaction (Key = instantiation key, possibly empty for non-firing
// units) or a set-oriented batch.
type Txn struct {
	Key   string
	Batch bool
	Ops   []Op
}

// Options configures a Log.
type Options struct {
	// Policy selects the sync policy; default SyncAlways.
	Policy SyncPolicy
	// Interval is the SyncInterval period; default 100ms.
	Interval time.Duration
	// CheckpointEvery makes CheckpointDue report true after that many
	// committed units since the last checkpoint; 0 disables automatic
	// checkpoints.
	CheckpointEvery int
	// Stats receives wal_* counters; may be nil.
	Stats *metrics.Set
	// Tracer receives wal_append / wal_sync / checkpoint events; may be
	// nil.
	Tracer *trace.Tracer
	// FS substitutes the filesystem (fault injection); nil means the
	// real one.
	FS fsx.FS
}

// Recovered describes the durable state found at Open.
type Recovered struct {
	// Existed reports whether any prior state (log or checkpoint) was
	// found. When false the system is fresh and should load its initial
	// facts (logging them).
	Existed bool
	// Checkpoint holds the checkpoint's dump-format snapshot (without
	// the wal header line), nil when no checkpoint exists.
	Checkpoint []byte
	// Txns are the committed units of the log tail, in commit order.
	Txns []Txn
	// TornTail reports that the log ended in a torn or corrupt record,
	// which recovery truncated — the expected shape of a crash mid-write.
	TornTail bool
	// Epoch is the live log epoch after open.
	Epoch uint64
}

// Log is an open write-ahead log. Methods are not safe for concurrent
// use with each other; the engine serializes appends under its
// maintenance lock, and an internal check guards stray concurrent use.
type Log struct {
	fs       fsx.FS
	path     string
	opts     Options
	f        fsx.File
	epoch    uint64
	nextTxn  uint64
	sinceCkp int       // committed units since the last checkpoint
	lastSync time.Time // SyncInterval bookkeeping
	dirty    bool      // unsynced bytes outstanding
	err      error     // sticky append failure

	// Group-commit coalescer state, guarded by gcMu — a separate lock
	// from the append path (which the engine serializes under its
	// maintenance mutex) so committers can queue behind one fsync while
	// the next unit is being appended. gcBusy marks a leader fsync (or a
	// checkpoint/close, which swap the file handle) in flight.
	gcMu      sync.Mutex
	gcCond    *sync.Cond
	appendSeq uint64 // units appended, monotonic across the log's life
	syncedSeq uint64 // highest appendSeq covered by a completed fsync
	gcBusy    bool
	gcErr     error // sticky group-side failure (fsync error)

	// Shipping position, guarded by gcMu so the replication feed can
	// read it without the append lock: the live epoch and the log's byte
	// size (header included). prevEpoch/prevSize remember the final
	// position of the epoch the last checkpoint retired — a replica
	// sitting exactly there was fully caught up and can follow the
	// epoch bump without a snapshot.
	posEpoch  uint64
	posSize   int64
	prevEpoch uint64
	prevSize  int64
}

// ckptPath derives the checkpoint path from the log path.
func ckptPath(path string) string { return path + ".ckpt" }

// CheckpointPath returns the checkpoint file path used for a log at
// path.
func CheckpointPath(path string) string { return ckptPath(path) }

// Open opens (creating if necessary) the log at path and returns the
// recovered durable state. A torn tail — the signature of a crash mid
// write — is truncated: the log is atomically rewritten to its valid
// prefix before new appends.
func Open(path string, opts Options) (*Log, *Recovered, error) {
	if opts.Policy == "" {
		opts.Policy = SyncAlways
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	fs := opts.FS
	if fs == nil {
		fs = fsx.OS{}
	}
	l := &Log{fs: fs, path: path, opts: opts, lastSync: time.Now()}
	l.gcCond = sync.NewCond(&l.gcMu)
	rec := &Recovered{}

	ckptEpoch, ckptData, ckptExists, err := readCheckpoint(fs, ckptPath(path))
	if err != nil {
		return nil, nil, err
	}
	logData, logErr := fs.ReadFile(path)
	logExists := logErr == nil
	if logErr != nil && !os.IsNotExist(logErr) {
		return nil, nil, logErr
	}
	rec.Existed = logExists || ckptExists

	epoch := uint64(1)
	if ckptExists {
		epoch = ckptEpoch
		rec.Checkpoint = ckptData
	}
	rewrite := true // write a fresh header (and valid prefix) before appending
	var validTail []byte
	size := int64(headerLen)
	if logExists {
		logEpoch, txns, bounds, torn := ScanLog(logData)
		switch {
		case ckptExists && logEpoch != ckptEpoch:
			// Crash between checkpoint rename and log reset: the log
			// predates the checkpoint and its records are already in the
			// snapshot. Ignore it and start a fresh log at the
			// checkpoint's epoch.
			rec.TornTail = rec.TornTail || torn
		case len(bounds) == 0:
			// Header itself torn or corrupt; nothing recoverable here.
			rec.TornTail = true
		default:
			epoch = logEpoch
			rec.Txns = txns
			rec.TornTail = torn
			validTail = logData[headerLen:bounds[len(bounds)-1]]
			size = bounds[len(bounds)-1]
			// Seed the txn counter past every id seen in the tail so new
			// units never collide with logged ones.
			l.nextTxn = maxTxnID(logData[:bounds[len(bounds)-1]])
			if !torn {
				rewrite = false
			}
		}
	}
	l.epoch = epoch
	l.posEpoch = epoch
	l.posSize = size
	rec.Epoch = epoch

	if rewrite {
		if err := l.resetFile(epoch, validTail); err != nil {
			return nil, nil, err
		}
	}
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, nil, err
	}
	l.f = f
	return l, rec, nil
}

// resetFile atomically replaces the log file with header + tail.
func (l *Log) resetFile(epoch uint64, tail []byte) error {
	return fsx.WriteAtomic(l.fs, l.path, func(w io.Writer) error {
		if err := writeHeader(w, epoch); err != nil {
			return err
		}
		if len(tail) > 0 {
			if _, err := w.Write(tail); err != nil {
				return err
			}
		}
		return nil
	})
}

// writeHeader emits the magic and epoch.
func writeHeader(w io.Writer, epoch uint64) error {
	var hdr [16]byte
	copy(hdr[:], Magic)
	binary.BigEndian.PutUint64(hdr[8:], epoch)
	_, err := w.Write(hdr[:])
	return err
}

// readCheckpoint loads and splits the checkpoint file.
func readCheckpoint(fs fsx.FS, path string) (epoch uint64, dump []byte, exists bool, err error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	nl := strings.IndexByte(string(data), '\n')
	if nl < 0 || !strings.HasPrefix(string(data[:nl]), "#pswal-checkpoint ") {
		return 0, nil, false, fmt.Errorf("%w: checkpoint header missing in %s", ErrCorrupt, path)
	}
	e, perr := strconv.ParseUint(strings.TrimPrefix(string(data[:nl]), "#pswal-checkpoint "), 10, 64)
	if perr != nil {
		return 0, nil, false, fmt.Errorf("%w: bad checkpoint epoch in %s", ErrCorrupt, path)
	}
	return e, data[nl+1:], true, nil
}

// AppendTxn logs one committed rule-firing transaction as begin / op /
// commit records. The engine calls this at the paper's deferred commit
// point: after the maintenance process completes, before locks release.
// key is the fired instantiation's key (restored as refraction state at
// recovery); it may be empty for non-firing units.
func (l *Log) AppendTxn(key string, ops []Op) error {
	txn := l.nextTxn + 1
	recs := make([][]byte, 0, len(ops)+2)
	recs = append(recs, encodeBegin(txn, key))
	for _, op := range ops {
		recs = append(recs, encodeOp(txn, op))
	}
	recs = append(recs, encodeCommit(txn))
	if err := l.appendUnit(recs); err != nil {
		return err
	}
	l.nextTxn = txn
	return nil
}

// AppendBatch logs one set-oriented batch (engine.ApplyDelta) as a
// single record: the whole batch is atomic by construction — a torn
// write loses it entirely, never applies it partially.
func (l *Log) AppendBatch(ops []Op) error {
	txn := l.nextTxn + 1
	if err := l.appendUnit([][]byte{encodeBatch(txn, ops)}); err != nil {
		return err
	}
	l.nextTxn = txn
	return nil
}

// appendUnit writes one committed unit's records — each framed,
// checksummed record as its own write — then applies the sync policy.
func (l *Log) appendUnit(recs [][]byte) error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return ErrClosed
	}
	tr := l.opts.Tracer
	t0 := tr.Now()
	var bytes int64
	for _, payload := range recs {
		n, err := l.writeRecord(payload)
		bytes += n
		if err != nil {
			l.err = fmt.Errorf("wal: append: %w", err)
			return l.err
		}
	}
	l.dirty = true
	l.sinceCkp++
	l.opts.Stats.Inc(metrics.WALAppends)
	l.opts.Stats.Add(metrics.WALRecords, int64(len(recs)))
	l.opts.Stats.Add(metrics.WALBytes, bytes)
	if tr.Enabled() {
		tr.Emit(trace.Event{
			Kind: trace.KindWALAppend, At: t0, Dur: tr.Now() - t0,
			CE: -1, Count: int64(len(recs)),
		})
	}
	l.gcMu.Lock()
	l.appendSeq++
	l.posSize += bytes
	l.gcMu.Unlock()
	switch l.opts.Policy {
	case SyncAlways:
		return l.Sync()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			return l.Sync()
		}
	case SyncGroup:
		// No inline sync: the committer calls WaitDurable after releasing
		// the append lock, and a group leader fsyncs for everyone queued.
	}
	return nil
}

// Position returns the live epoch and the log's byte size (header
// included) — the (epoch, offset) coordinate replication ships from and
// resumes at. Safe for concurrent use with appends.
func (l *Log) Position() (epoch uint64, size int64) {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	return l.posEpoch, l.posSize
}

// setPosition publishes a new shipping coordinate after a file swap
// (checkpoint, adopt, truncate).
func (l *Log) setPosition(epoch uint64, size int64) {
	l.gcMu.Lock()
	l.posEpoch = epoch
	l.posSize = size
	l.gcMu.Unlock()
}

// PrevBoundary returns the final (epoch, size) of the log retired by
// the most recent checkpoint — the coordinate a fully caught-up
// replica sat at when the epoch bumped. Zero values before any
// checkpoint this process lifetime.
func (l *Log) PrevBoundary() (epoch uint64, size int64) {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	return l.prevEpoch, l.prevSize
}

// Path returns the log file path (the checkpoint lives at Path+".ckpt").
func (l *Log) Path() string { return l.path }

// FileSystem returns the filesystem the log writes through.
func (l *Log) FileSystem() fsx.FS { return l.fs }

// LastSeq returns the sequence number of the most recently appended
// unit — the handle a committer passes to WaitDurable under the group
// sync policy. Read it right after the append, while still holding
// whatever lock serializes appends.
func (l *Log) LastSeq() uint64 {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	return l.appendSeq
}

// WaitDurable blocks until the unit identified by seq (from LastSeq) is
// on stable storage. Under every policy except SyncGroup it is a no-op:
// SyncAlways already synced inline, and the interval/never policies do
// not promise per-commit durability. Under SyncGroup the first waiter
// becomes the leader and issues one fsync covering every unit appended
// so far; concurrent waiters ride that fsync. Safe for concurrent use.
func (l *Log) WaitDurable(seq uint64) error {
	if l.opts.Policy != SyncGroup || seq == 0 {
		return nil
	}
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	for {
		if l.gcErr != nil && l.syncedSeq < seq {
			return l.gcErr
		}
		if l.syncedSeq >= seq {
			l.opts.Stats.Inc(metrics.WALGroupWaiters)
			return nil
		}
		if l.gcBusy {
			l.gcCond.Wait()
			continue
		}
		// Become the group leader: fsync everything appended so far.
		l.gcBusy = true
		target := l.appendSeq
		f := l.f
		l.gcMu.Unlock()
		tr := l.opts.Tracer
		t0 := tr.Now()
		var serr error
		if f == nil {
			serr = ErrClosed
		} else {
			serr = f.Sync()
		}
		l.gcMu.Lock()
		l.gcBusy = false
		if serr != nil {
			l.gcErr = fmt.Errorf("wal: group sync: %w", serr)
			l.gcCond.Broadcast()
			return l.gcErr
		}
		if target > l.syncedSeq {
			l.syncedSeq = target
		}
		l.opts.Stats.Inc(metrics.WALGroupCommits)
		l.opts.Stats.Inc(metrics.WALSyncs)
		if tr.Enabled() {
			tr.Emit(trace.Event{Kind: trace.KindWALSync, At: t0, Dur: tr.Now() - t0, CE: -1, Count: int64(target)})
		}
		l.gcCond.Broadcast()
	}
}

// gcAcquire claims the group-commit slot exclusively, waiting out any
// in-flight leader fsync. Checkpoint and Close take it before swapping
// or closing the file handle, so a leader never syncs a stale handle.
func (l *Log) gcAcquire() {
	l.gcMu.Lock()
	for l.gcBusy {
		l.gcCond.Wait()
	}
	l.gcBusy = true
	l.gcMu.Unlock()
}

// gcRelease releases the exclusive slot, publishes durability up to
// durableTo (0 leaves syncedSeq untouched), records err as the sticky
// group failure, and wakes every waiter.
func (l *Log) gcRelease(durableTo uint64, err error) {
	l.gcMu.Lock()
	l.gcBusy = false
	if err != nil && l.gcErr == nil {
		l.gcErr = err
	}
	if durableTo > l.syncedSeq {
		l.syncedSeq = durableTo
	}
	l.gcCond.Broadcast()
	l.gcMu.Unlock()
}

// writeRecord frames and writes one payload, returning the bytes
// written.
func (l *Log) writeRecord(payload []byte) (int64, error) {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	rec := append(hdr[:], payload...)
	n, err := l.f.Write(rec)
	return int64(n), err
}

// Sync forces the log to stable storage.
func (l *Log) Sync() error {
	if l.err != nil {
		return l.err
	}
	if !l.dirty {
		return nil
	}
	tr := l.opts.Tracer
	t0 := tr.Now()
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync: %w", err)
		return l.err
	}
	l.dirty = false
	l.lastSync = time.Now()
	l.opts.Stats.Inc(metrics.WALSyncs)
	if tr.Enabled() {
		tr.Emit(trace.Event{Kind: trace.KindWALSync, At: t0, Dur: tr.Now() - t0, CE: -1})
	}
	return nil
}

// CheckpointDue reports whether enough units have committed since the
// last checkpoint to trigger automatic compaction.
func (l *Log) CheckpointDue() bool {
	return l.opts.CheckpointEvery > 0 && l.sinceCkp >= l.opts.CheckpointEvery
}

// Checkpoint compacts the log: dump writes the current working memory
// (the caller must hold whatever lock makes that snapshot consistent),
// which lands in the checkpoint file via temp + fsync + rename, and the
// log is then re-created empty under a bumped epoch. A crash before the
// checkpoint rename keeps the old checkpoint + full log; a crash between
// rename and log reset is detected at open by the epoch mismatch and the
// stale log is ignored.
func (l *Log) Checkpoint(dump func(io.Writer) error) error {
	return l.CheckpointAs(l.epoch+1, dump)
}

// CheckpointAs is Checkpoint with an explicit target epoch. Replication
// uses it on the replica side to mirror the primary's epoch bumps: when
// the feed announces a new epoch, the replica snapshots its own working
// memory under that epoch, keeping local recovery self-contained while
// staying position-compatible with the primary's log. The target must
// be greater than the live epoch.
func (l *Log) CheckpointAs(epoch uint64, dump func(io.Writer) error) error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return ErrClosed
	}
	if epoch <= l.epoch {
		return fmt.Errorf("wal: checkpoint epoch %d not past live epoch %d", epoch, l.epoch)
	}
	// Exclude group-commit leaders while the file handle is swapped; the
	// checkpoint itself makes everything appended so far durable, so
	// waiters queued behind it are satisfied on release.
	l.gcAcquire()
	err := l.checkpointLocked(epoch, dump)
	l.gcRelease(l.LastSeq(), err)
	return err
}

// checkpointLocked is the body of Checkpoint; the caller holds the
// group-commit slot (and serializes appends).
func (l *Log) checkpointLocked(newEpoch uint64, dump func(io.Writer) error) error {
	tr := l.opts.Tracer
	t0 := tr.Now()
	// The log must be durable up to the snapshot before the snapshot can
	// replace it.
	if err := l.Sync(); err != nil {
		return err
	}
	err := fsx.WriteAtomic(l.fs, ckptPath(l.path), func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, "#pswal-checkpoint %d\n", newEpoch); err != nil {
			return err
		}
		return dump(w)
	})
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := l.swapFreshLog(newEpoch); err != nil {
		return err
	}
	l.opts.Stats.Inc(metrics.WALCheckpoints)
	if tr.Enabled() {
		tr.Emit(trace.Event{Kind: trace.KindCheckpoint, At: t0, Dur: tr.Now() - t0, CE: -1, ID: newEpoch})
	}
	return nil
}

// swapFreshLog replaces the log file with an empty one under epoch and
// reopens the append handle; the caller holds the group-commit slot.
func (l *Log) swapFreshLog(epoch uint64) error {
	if err := l.resetFile(epoch, nil); err != nil {
		return fmt.Errorf("wal: log reset: %w", err)
	}
	if err := l.f.Close(); err != nil {
		l.err = err
		return err
	}
	f, err := l.fs.OpenAppend(l.path)
	if err != nil {
		l.err = err
		return err
	}
	l.f = f
	l.epoch = epoch
	l.sinceCkp = 0
	l.dirty = false
	l.gcMu.Lock()
	l.prevEpoch, l.prevSize = l.posEpoch, l.posSize
	l.posEpoch, l.posSize = epoch, int64(headerLen)
	l.gcMu.Unlock()
	return nil
}

// AppendRaw appends pre-framed record bytes verbatim — the replica's
// mirroring path: shipped bytes land in the local log unre-encoded, so
// the replica's (epoch, offset) coordinates stay byte-compatible with
// the primary's and a promoted replica can serve the feed itself. units
// counts the committed units completed within raw (for checkpoint
// accounting); the sync policy applies as for regular appends.
func (l *Log) AppendRaw(raw []byte, units int) error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return ErrClosed
	}
	if len(raw) == 0 {
		return nil
	}
	n, err := l.f.Write(raw)
	if err != nil {
		l.err = fmt.Errorf("wal: append raw: %w", err)
		return l.err
	}
	l.dirty = true
	l.sinceCkp += units
	if id := maxTxnIDRecords(raw); id > l.nextTxn {
		l.nextTxn = id
	}
	l.opts.Stats.Add(metrics.WALAppends, int64(units))
	l.opts.Stats.Add(metrics.WALBytes, int64(n))
	l.gcMu.Lock()
	l.appendSeq += uint64(units)
	l.posSize += int64(n)
	l.gcMu.Unlock()
	switch l.opts.Policy {
	case SyncAlways:
		return l.Sync()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			return l.Sync()
		}
	}
	return nil
}

// AdoptCheckpoint installs a snapshot shipped by a replication feed:
// the dump lands in the local checkpoint file under the primary's
// epoch, and the log restarts empty at that epoch. The caller is
// responsible for making working memory agree with the dump.
func (l *Log) AdoptCheckpoint(epoch uint64, dump []byte) error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return ErrClosed
	}
	l.gcAcquire()
	err := l.adoptLocked(epoch, dump)
	l.gcRelease(l.LastSeq(), err)
	return err
}

func (l *Log) adoptLocked(epoch uint64, dump []byte) error {
	err := fsx.WriteAtomic(l.fs, ckptPath(l.path), func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, "#pswal-checkpoint %d\n", epoch); err != nil {
			return err
		}
		_, err := w.Write(dump)
		return err
	})
	if err != nil {
		return fmt.Errorf("wal: adopt checkpoint: %w", err)
	}
	if err := l.swapFreshLog(epoch); err != nil {
		return err
	}
	l.nextTxn = 0
	l.opts.Stats.Inc(metrics.WALCheckpoints)
	return nil
}

// TruncateTail rewrites the log to end exactly at the last complete
// committed-unit boundary — the promotion step that discards any
// shipped records of a unit whose commit never arrived before the
// primary died. It returns the bytes discarded (0 when the log already
// ends on a unit boundary).
func (l *Log) TruncateTail() (int64, error) {
	if l.err != nil {
		return 0, l.err
	}
	if l.f == nil {
		return 0, ErrClosed
	}
	l.gcAcquire()
	n, err := l.truncateTailLocked()
	l.gcRelease(l.LastSeq(), err)
	return n, err
}

func (l *Log) truncateTailLocked() (int64, error) {
	if err := l.Sync(); err != nil {
		return 0, err
	}
	data, err := l.fs.ReadFile(l.path)
	if err != nil {
		return 0, err
	}
	end := LastUnitBoundary(data)
	if end < 0 {
		return 0, fmt.Errorf("%w: bad header at truncate", ErrCorrupt)
	}
	discarded := int64(len(data)) - end
	if discarded == 0 {
		return 0, nil
	}
	if err := l.resetFile(l.epoch, data[headerLen:end]); err != nil {
		return 0, fmt.Errorf("wal: truncate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		l.err = err
		return 0, err
	}
	f, err := l.fs.OpenAppend(l.path)
	if err != nil {
		l.err = err
		return 0, err
	}
	l.f = f
	l.dirty = false
	l.nextTxn = maxTxnID(data[:end])
	l.setPosition(l.epoch, end)
	return discarded, nil
}

// Epoch returns the live log epoch.
func (l *Log) Epoch() uint64 { return l.epoch }

// Close syncs and closes the log. It waits out any in-flight group
// fsync first; a committer still blocked in WaitDurable when Close's
// final sync lands is released satisfied (its unit is durable).
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	l.gcAcquire()
	serr := l.Sync()
	cerr := l.f.Close()
	l.f = nil
	if serr == nil {
		l.gcRelease(l.LastSeq(), nil)
	} else {
		l.gcRelease(0, serr)
	}
	if serr != nil && !errors.Is(serr, l.err) {
		return serr
	}
	if l.err != nil && serr == nil {
		return cerr
	}
	return cerr
}

// ---- encoding ----

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendTuple(b []byte, t relation.Tuple) []byte {
	b = binary.AppendUvarint(b, uint64(len(t)))
	for _, v := range t {
		b = appendString(b, relation.EncodeValue(v))
	}
	return b
}

func encodeBegin(txn uint64, key string) []byte {
	b := []byte{recBegin}
	b = binary.AppendUvarint(b, txn)
	return appendString(b, key)
}

func encodeCommit(txn uint64) []byte {
	b := []byte{recCommit}
	return binary.AppendUvarint(b, txn)
}

func encodeOp(txn uint64, op Op) []byte {
	if op.Retract {
		b := []byte{recRetract}
		b = binary.AppendUvarint(b, txn)
		b = appendString(b, op.Class)
		return binary.AppendUvarint(b, uint64(op.ID))
	}
	b := []byte{recAssert}
	b = binary.AppendUvarint(b, txn)
	b = appendString(b, op.Class)
	b = binary.AppendUvarint(b, uint64(op.ID))
	return appendTuple(b, op.Tuple)
}

func encodeBatch(txn uint64, ops []Op) []byte {
	b := []byte{recBatch}
	b = binary.AppendUvarint(b, txn)
	b = binary.AppendUvarint(b, uint64(len(ops)))
	for _, op := range ops {
		if op.Retract {
			b = append(b, 1)
			b = appendString(b, op.Class)
			b = binary.AppendUvarint(b, uint64(op.ID))
			continue
		}
		b = append(b, 0)
		b = appendString(b, op.Class)
		b = binary.AppendUvarint(b, uint64(op.ID))
		b = appendTuple(b, op.Tuple)
	}
	return b
}

// ---- decoding ----

// byteReader walks a payload.
type byteReader struct {
	b   []byte
	pos int
	bad bool
}

func (r *byteReader) u8() byte {
	if r.pos >= len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *byteReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.pos += n
	return v
}

func (r *byteReader) str() string {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.b)-r.pos) {
		r.bad = true
		return ""
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *byteReader) tuple() relation.Tuple {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.b)-r.pos) { // each value costs ≥1 byte
		r.bad = true
		return nil
	}
	t := make(relation.Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := relation.DecodeValue(r.str())
		if r.bad || err != nil {
			r.bad = true
			return nil
		}
		t = append(t, v)
	}
	return t
}

func (r *byteReader) done() bool { return !r.bad && r.pos == len(r.b) }

// decodeOpBody parses class/id/tuple following a kind+txn prefix.
func decodeOpBody(r *byteReader, retract bool) Op {
	op := Op{Retract: retract}
	op.Class = r.str()
	op.ID = relation.TupleID(r.uvarint())
	if !retract {
		op.Tuple = r.tuple()
	}
	return op
}

// ScanLog parses raw log bytes. It returns the log epoch, the committed
// units in commit order, the record boundaries (byte offsets usable as
// crash points: boundaries[0] is the end of the header, each later entry
// the end of one valid record), and whether the log ends in a torn or
// corrupt record. A file too short or mismatched in magic yields no
// boundaries and torn=true.
func ScanLog(data []byte) (epoch uint64, txns []Txn, boundaries []int64, torn bool) {
	if len(data) < headerLen || string(data[:len(Magic)]) != Magic {
		return 0, nil, nil, true
	}
	epoch = binary.BigEndian.Uint64(data[len(Magic):headerLen])
	boundaries = append(boundaries, int64(headerLen))
	pos := headerLen
	pending := map[uint64]*Txn{}
	order := []uint64{}
	for {
		if pos == len(data) {
			return epoch, txns, boundaries, false
		}
		if len(data)-pos < 8 {
			return epoch, txns, boundaries, true
		}
		n := binary.BigEndian.Uint32(data[pos:])
		sum := binary.BigEndian.Uint32(data[pos+4:])
		if n > maxRecord || len(data)-pos-8 < int(n) {
			return epoch, txns, boundaries, true
		}
		payload := data[pos+8 : pos+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return epoch, txns, boundaries, true
		}
		if !applyRecord(payload, pending, &order, &txns) {
			return epoch, txns, boundaries, true
		}
		pos += 8 + int(n)
		boundaries = append(boundaries, int64(pos))
	}
}

// applyRecord folds one valid-checksum payload into the decoder state,
// reporting structural validity.
func applyRecord(payload []byte, pending map[uint64]*Txn, order *[]uint64, txns *[]Txn) bool {
	if len(payload) == 0 {
		return false
	}
	r := &byteReader{b: payload[1:]}
	switch payload[0] {
	case recBegin:
		txn := r.uvarint()
		key := r.str()
		if !r.done() {
			return false
		}
		if _, dup := pending[txn]; !dup {
			pending[txn] = &Txn{Key: key}
			*order = append(*order, txn)
		}
	case recAssert, recRetract:
		txn := r.uvarint()
		op := decodeOpBody(r, payload[0] == recRetract)
		if !r.done() {
			return false
		}
		if p := pending[txn]; p != nil {
			p.Ops = append(p.Ops, op)
		}
	case recCommit:
		txn := r.uvarint()
		if !r.done() {
			return false
		}
		if p := pending[txn]; p != nil {
			*txns = append(*txns, *p)
			delete(pending, txn)
		}
	case recBatch:
		txn := r.uvarint()
		n := r.uvarint()
		if r.bad || n > uint64(len(r.b)) {
			return false
		}
		t := Txn{Batch: true, Ops: make([]Op, 0, n)}
		for i := uint64(0); i < n; i++ {
			retract := r.u8() == 1
			t.Ops = append(t.Ops, decodeOpBody(r, retract))
		}
		if !r.done() {
			return false
		}
		_ = txn
		*txns = append(*txns, t)
	default:
		return false
	}
	return true
}

// maxTxnID scans valid records for the highest transaction id, so a
// reopened log continues numbering without collisions.
func maxTxnID(data []byte) uint64 {
	if len(data) < headerLen {
		return 0
	}
	return maxTxnIDRecords(data[headerLen:])
}

// maxTxnIDRecords is maxTxnID over headerless record bytes (a shipped
// chunk).
func maxTxnIDRecords(data []byte) uint64 {
	var maxID uint64
	pos := 0
	for len(data)-pos >= 8 {
		n := binary.BigEndian.Uint32(data[pos:])
		if n > maxRecord || len(data)-pos-8 < int(n) {
			break
		}
		payload := data[pos+8 : pos+8+int(n)]
		if len(payload) > 0 {
			r := &byteReader{b: payload[1:]}
			if id := r.uvarint(); !r.bad && id > maxID {
				maxID = id
			}
		}
		pos += 8 + int(n)
	}
	return maxID
}

// LastUnitBoundary returns the byte offset just past the last record
// that completes a committed unit (a commit or batch record) in a full
// log image — the offset promotion truncates to. A log with a valid
// header but no complete unit yields the header length; a bad header
// yields -1.
func LastUnitBoundary(data []byte) int64 {
	if len(data) < headerLen || string(data[:len(Magic)]) != Magic {
		return -1
	}
	end := int64(headerLen)
	pos := headerLen
	for len(data)-pos >= 8 {
		n := binary.BigEndian.Uint32(data[pos:])
		if n > maxRecord || len(data)-pos-8 < int(n) {
			break
		}
		payload := data[pos+8 : pos+8+int(n)]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[pos+4:]) {
			break
		}
		pos += 8 + int(n)
		if len(payload) > 0 && (payload[0] == recCommit || payload[0] == recBatch) {
			end = int64(pos)
		}
	}
	return end
}

// HeaderLen is the log header size in bytes — where record framing
// starts in a raw log image. Exported (as an int64, matching log
// offsets) for the replication feed, whose byte offsets are positions
// in that image.
const HeaderLen = int64(headerLen)

// ValidPrefix returns the offset just past the last complete,
// checksum-valid record in a raw log image — the shippable prefix: a
// torn or still-being-written tail record is excluded, but records of
// a not-yet-committed unit are included (the stream scanner on the
// other end holds them pending). A bad header yields -1.
func ValidPrefix(data []byte) int64 {
	if len(data) < headerLen || string(data[:len(Magic)]) != Magic {
		return -1
	}
	pos := headerLen
	for len(data)-pos >= 8 {
		n := binary.BigEndian.Uint32(data[pos:])
		if n > maxRecord || len(data)-pos-8 < int(n) {
			break
		}
		if crc32.ChecksumIEEE(data[pos+8:pos+8+int(n)]) != binary.BigEndian.Uint32(data[pos+4:]) {
			break
		}
		pos += 8 + int(n)
	}
	return int64(pos)
}

// LogEpoch reads the epoch stamped in a raw log image's header, or
// false on a short or foreign image.
func LogEpoch(data []byte) (uint64, bool) {
	if len(data) < headerLen || string(data[:len(Magic)]) != Magic {
		return 0, false
	}
	return binary.BigEndian.Uint64(data[len(Magic):headerLen]), true
}

// ReadCheckpoint reads a checkpoint file: its epoch header and dump
// bytes. exists is false (with a nil error) when no checkpoint file is
// present. Exported for the replication feed's bootstrap path.
func ReadCheckpoint(fs fsx.FS, path string) (epoch uint64, dump []byte, exists bool, err error) {
	return readCheckpoint(fs, path)
}
