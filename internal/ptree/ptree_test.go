package ptree

import (
	"fmt"
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

func TestIntervalBasics(t *testing.T) {
	full := FullInterval()
	if !full.contains(value.OfInt(5)) || !full.contains(value.OfSym("x")) || !full.contains(value.V{}) {
		t.Error("full interval contains everything")
	}
	iv := NewInterval(value.OfInt(10), value.OfInt(20))
	if !iv.contains(value.OfInt(10)) || !iv.contains(value.OfInt(20)) || iv.contains(value.OfInt(21)) {
		t.Error("closed interval bounds")
	}
	if iv.contains(value.V{}) {
		t.Error("bounded interval excludes nil")
	}
	pt := PointInterval(value.OfSym("Toy"))
	if !pt.contains(value.OfSym("Toy")) || pt.contains(value.OfSym("Shoe")) {
		t.Error("point interval")
	}
	// Numerics and textual values occupy disjoint coordinate ranges.
	if iv.contains(value.OfSym("15")) {
		t.Error("textual value inside numeric interval")
	}
}

func TestIntervalOverlapUnion(t *testing.T) {
	a := NewInterval(value.OfInt(0), value.OfInt(10))
	b := NewInterval(value.OfInt(5), value.OfInt(15))
	c := NewInterval(value.OfInt(20), value.OfInt(30))
	if !a.overlaps(b) || a.overlaps(c) {
		t.Error("overlap logic")
	}
	u := a.union(c)
	if !u.contains(value.OfInt(15)) {
		t.Error("union should span the gap")
	}
	if !FullInterval().overlaps(c) {
		t.Error("full overlaps everything")
	}
	if got := a.String(); got != "[0,10]" {
		t.Errorf("String = %q", got)
	}
	if got := FullInterval().String(); got != "[-inf,+inf]" {
		t.Errorf("String = %q", got)
	}
}

func TestRectOps(t *testing.T) {
	r := Rect{NewInterval(value.OfInt(0), value.OfInt(10)), PointInterval(value.OfSym("Toy"))}
	if !r.ContainsPoint([]value.V{value.OfInt(5), value.OfSym("Toy")}) {
		t.Error("point inside")
	}
	if r.ContainsPoint([]value.V{value.OfInt(5), value.OfSym("Shoe")}) {
		t.Error("point outside dim 2")
	}
	q := Rect{NewInterval(value.OfInt(8), value.OfInt(12)), FullInterval()}
	if !r.Overlaps(q) {
		t.Error("rect overlap")
	}
	if r.String() == "" {
		t.Error("rect string")
	}
}

func TestTreeInsertSearchPoint(t *testing.T) {
	tree := NewTree(1)
	for i := 0; i < 100; i++ {
		lo, hi := int64(i*10), int64(i*10+5)
		tree.Insert(&Item{Rect: Rect{NewInterval(value.OfInt(lo), value.OfInt(hi))}, Data: i})
	}
	if tree.Len() != 100 {
		t.Fatalf("Len = %d", tree.Len())
	}
	var hits []int
	tree.SearchPoint([]value.V{value.OfInt(42)}, func(it *Item) bool {
		hits = append(hits, it.Data.(int))
		return true
	})
	if len(hits) != 1 || hits[0] != 4 {
		t.Fatalf("point 42 hits = %v, want [4]", hits)
	}
	// Gap points hit nothing.
	hits = nil
	tree.SearchPoint([]value.V{value.OfInt(47)}, func(it *Item) bool {
		hits = append(hits, it.Data.(int))
		return true
	})
	if len(hits) != 0 {
		t.Fatalf("gap point hits = %v", hits)
	}
}

func TestTreeSearchPruning(t *testing.T) {
	// With many disjoint rectangles, a point search must visit far fewer
	// nodes than items.
	tree := NewTree(1)
	const n = 1000
	for i := 0; i < n; i++ {
		lo := int64(i * 10)
		tree.Insert(&Item{Rect: Rect{NewInterval(value.OfInt(lo), value.OfInt(lo+5))}, Data: i})
	}
	visited := tree.SearchPoint([]value.V{value.OfInt(5000)}, func(*Item) bool { return true })
	if visited >= n/2 {
		t.Fatalf("search visited %d nodes out of %d items — no pruning", visited, n)
	}
}

func TestTreeSearchRect(t *testing.T) {
	tree := NewTree(1)
	for i := 0; i < 50; i++ {
		lo := int64(i * 10)
		tree.Insert(&Item{Rect: Rect{NewInterval(value.OfInt(lo), value.OfInt(lo+5))}, Data: i})
	}
	var hits int
	tree.SearchRect(Rect{NewInterval(value.OfInt(100), value.OfInt(200))}, func(*Item) bool {
		hits++
		return true
	})
	// Items 10..20 overlap [100,200].
	if hits != 11 {
		t.Fatalf("rect query hits = %d, want 11", hits)
	}
	// Early stop.
	count := 0
	tree.SearchRect(Rect{FullInterval()}, func(*Item) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop count = %d", count)
	}
}

const src = `
(literalize Emp name age salary dno)
(literalize Dept dno dname)
(p Old    (Emp ^age > 55) --> (halt))
(p Young  (Emp ^age < 30) --> (halt))
(p Banded (Emp ^age > 40 ^age < 50 ^salary > 1000) --> (halt))
(p Toy    (Emp ^dno <d>) (Dept ^dno <d> ^dname Toy) --> (remove 1))
(p NoDept (Emp ^dno <d>) - (Dept ^dno <d>) --> (halt))
`

func buildSet(t *testing.T) *rules.Set {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestRectForCE(t *testing.T) {
	set := buildSet(t)
	banded, _ := set.RuleByName("Banded")
	r := RectForCE(banded.CEs[0])
	// age dimension: [40, 50] (closed relaxation of the strict bounds).
	if !r.ContainsPoint([]value.V{value.V{}, value.OfInt(45), value.OfInt(2000), value.V{}}) {
		t.Errorf("45/2000 should be admitted: %v", r)
	}
	if r.ContainsPoint([]value.V{value.V{}, value.OfInt(60), value.OfInt(2000), value.V{}}) {
		t.Errorf("60 should be excluded: %v", r)
	}
	if r.ContainsPoint([]value.V{value.V{}, value.OfInt(45), value.OfInt(500), value.V{}}) {
		t.Errorf("salary 500 should be excluded: %v", r)
	}
}

func TestCandidatesFor(t *testing.T) {
	set := buildSet(t)
	ix := NewIndex(set, nil)
	old := relation.Tuple{value.OfSym("Pat"), value.OfInt(60), value.OfInt(900), value.OfInt(1)}
	cands := ix.CandidatesFor("Emp", old)
	names := map[string]bool{}
	for _, ce := range cands {
		names[ce.Rule.Name] = true
	}
	if !names["Old"] || names["Young"] || names["Banded"] {
		t.Fatalf("candidates = %v", names)
	}
	// Unrestricted conditions (Toy, NoDept Emp CEs) always qualify.
	if !names["Toy"] || !names["NoDept"] {
		t.Fatalf("unrestricted CEs missing: %v", names)
	}
	if got := ix.CandidatesFor("Ghost", old); got != nil {
		t.Fatalf("unknown class candidates = %v", got)
	}
}

func TestRulesInRangePaperQuery(t *testing.T) {
	set := buildSet(t)
	var st metrics.Set
	ix := NewIndex(set, &st)
	// "Give me all the rules that apply on employees older than 55."
	got := ix.RulesInRange("Emp", "age", value.OfInt(55), value.V{})
	names := map[string]bool{}
	for _, r := range got {
		names[r.Name] = true
	}
	// Old overlaps (55,∞); Young [<30] does not; Banded [40,50] does not;
	// Toy/NoDept are unrestricted on age so overlap everything.
	if !names["Old"] || names["Young"] || names["Banded"] {
		t.Fatalf("rules = %v", names)
	}
	if !names["Toy"] || !names["NoDept"] {
		t.Fatalf("unrestricted rules missing: %v", names)
	}
	if st.Get(metrics.IndexLookups) == 0 {
		t.Error("index visits not counted")
	}
	// Bounded query.
	got = ix.RulesInRange("Emp", "age", value.OfInt(41), value.OfInt(49))
	names = map[string]bool{}
	for _, r := range got {
		names[r.Name] = true
	}
	if !names["Banded"] || names["Old"] || names["Young"] {
		t.Fatalf("banded query = %v", names)
	}
	// Bad class/attr.
	if ix.RulesInRange("Ghost", "age", value.V{}, value.V{}) != nil {
		t.Error("unknown class")
	}
	if ix.RulesInRange("Emp", "ghost", value.V{}, value.V{}) != nil {
		t.Error("unknown attr")
	}
}

func TestMatcherBehavesLikeRequery(t *testing.T) {
	set := buildSet(t)
	st := &metrics.Set{}
	db := relation.NewDB(st)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet(st)
	m := NewMatcher(set, db, cs, st)
	if m.Name() != "ptree" || m.ConflictSet() != cs || m.Index() == nil {
		t.Fatal("accessors")
	}
	empRel := db.MustGet("Emp")
	id, _ := empRel.Insert(relation.Tuple{value.OfSym("Ann"), value.OfInt(28), value.OfInt(500), value.OfInt(7)})
	tup, _ := empRel.Get(id)
	m.Insert("Emp", id, tup)
	// Young fires, NoDept fires.
	keys := cs.Keys()
	if len(keys) != 2 {
		t.Fatalf("conflict set = %v", keys)
	}
	deptRel := db.MustGet("Dept")
	did, _ := deptRel.Insert(relation.Tuple{value.OfInt(7), value.OfSym("Toy")})
	dtup, _ := deptRel.Get(did)
	m.Insert("Dept", did, dtup)
	// Toy fires; NoDept retracted.
	keys = cs.Keys()
	want := map[string]bool{"Young|1": true, fmt.Sprintf("Toy|%d|%d", id, did): true}
	if len(keys) != 2 || !want[keys[0]] || !want[keys[1]] {
		t.Fatalf("conflict set = %v", keys)
	}
	// Delete the dept: NoDept re-derives.
	deptRel.Delete(did)
	m.Delete("Dept", did, dtup)
	keys = cs.Keys()
	if len(keys) != 2 {
		t.Fatalf("after dept delete = %v", keys)
	}
}

func TestTreeDimsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dims mismatch should panic")
		}
	}()
	NewTree(2).Insert(&Item{Rect: FullRect(1)})
}
