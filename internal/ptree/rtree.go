// Package ptree implements Predicate Indexing [STON86a, §2.3 of the
// paper]: rule conditions become rectangles in attribute space, stored in
// an R-tree-style index. An inserted tuple is a point; searching the tree
// yields every condition whose variable-free restrictions admit the point
// — without touching base data. The same index answers rulebase queries
// such as "give me all the rules that apply on employees older than 55"
// (§4.2.3), which marker-style schemes cannot support.
package ptree

import (
	"fmt"
	"strings"

	"prodsys/internal/value"
)

// bound is one end of an interval; inf marks an unbounded side.
type bound struct {
	v   value.V
	inf bool
}

// cmpCoord orders coordinate values: numerics before textual, each
// category internally ordered. Only called on non-infinite bounds.
func cmpCoord(a, b value.V) int {
	catA, catB := coordCat(a), coordCat(b)
	if catA != catB {
		if catA < catB {
			return -1
		}
		return 1
	}
	if cmp, ok := value.Compare(a, b); ok {
		return cmp
	}
	return 0
}

func coordCat(v value.V) int {
	if v.IsNumeric() {
		return 0
	}
	return 1
}

// Interval is a closed interval over one attribute; either side may be
// unbounded. Open endpoints from strict comparisons are widened to closed
// ones — the index may return false positives, which callers filter with
// an exact condition check.
type Interval struct {
	lo, hi bound
}

// FullInterval is unbounded on both sides.
func FullInterval() Interval {
	return Interval{lo: bound{inf: true}, hi: bound{inf: true}}
}

// NewInterval builds [lo, hi]; a nil value means unbounded on that side.
func NewInterval(lo, hi value.V) Interval {
	iv := FullInterval()
	if !lo.IsNil() {
		iv.lo = bound{v: lo}
	}
	if !hi.IsNil() {
		iv.hi = bound{v: hi}
	}
	return iv
}

// PointInterval is the degenerate interval [v, v].
func PointInterval(v value.V) Interval { return NewInterval(v, v) }

// contains reports whether the interval admits v.
func (iv Interval) contains(v value.V) bool {
	if v.IsNil() {
		return iv.lo.inf && iv.hi.inf
	}
	if !iv.lo.inf && cmpCoord(v, iv.lo.v) < 0 {
		return false
	}
	if !iv.hi.inf && cmpCoord(v, iv.hi.v) > 0 {
		return false
	}
	return true
}

// overlaps reports whether two intervals intersect.
func (iv Interval) overlaps(o Interval) bool {
	if !iv.hi.inf && !o.lo.inf && cmpCoord(iv.hi.v, o.lo.v) < 0 {
		return false
	}
	if !o.hi.inf && !iv.lo.inf && cmpCoord(o.hi.v, iv.lo.v) < 0 {
		return false
	}
	return true
}

// union extends the interval to cover o.
func (iv Interval) union(o Interval) Interval {
	out := iv
	if o.lo.inf || (!out.lo.inf && cmpCoord(o.lo.v, out.lo.v) < 0) {
		out.lo = o.lo
	}
	if o.hi.inf || (!out.hi.inf && cmpCoord(o.hi.v, out.hi.v) > 0) {
		out.hi = o.hi
	}
	return out
}

// span estimates the interval's extent for the least-enlargement
// heuristic; unbounded sides count as a large constant.
func (iv Interval) span() float64 {
	const wide = 1e9
	if iv.lo.inf || iv.hi.inf {
		return wide
	}
	if iv.lo.v.IsNumeric() && iv.hi.v.IsNumeric() {
		lo, hi := numOf(iv.lo.v), numOf(iv.hi.v)
		return hi - lo
	}
	if value.Equal(iv.lo.v, iv.hi.v) {
		return 0
	}
	return 1 // textual non-point interval
}

func numOf(v value.V) float64 {
	if v.Kind() == value.Int {
		return float64(v.AsInt())
	}
	return v.AsFloat()
}

// String renders the interval.
func (iv Interval) String() string {
	lo, hi := "-inf", "+inf"
	if !iv.lo.inf {
		lo = iv.lo.v.String()
	}
	if !iv.hi.inf {
		hi = iv.hi.v.String()
	}
	return "[" + lo + "," + hi + "]"
}

// Rect is a hyper-rectangle: one interval per attribute position.
type Rect []Interval

// FullRect is unbounded in every dimension.
func FullRect(dims int) Rect {
	r := make(Rect, dims)
	for i := range r {
		r[i] = FullInterval()
	}
	return r
}

// ContainsPoint reports whether the rectangle admits the point (one
// coordinate per dimension).
func (r Rect) ContainsPoint(pt []value.V) bool {
	for i, iv := range r {
		if !iv.contains(pt[i]) {
			return false
		}
	}
	return true
}

// Overlaps reports whether two rectangles intersect.
func (r Rect) Overlaps(o Rect) bool {
	for i := range r {
		if !r[i].overlaps(o[i]) {
			return false
		}
	}
	return true
}

// union returns the bounding rectangle of r and o.
func (r Rect) union(o Rect) Rect {
	out := make(Rect, len(r))
	for i := range r {
		out[i] = r[i].union(o[i])
	}
	return out
}

// enlargement estimates how much r must grow to cover o.
func (r Rect) enlargement(o Rect) float64 {
	grown := r.union(o)
	var d float64
	for i := range r {
		d += grown[i].span() - r[i].span()
	}
	return d
}

// String renders the rectangle.
func (r Rect) String() string {
	parts := make([]string, len(r))
	for i, iv := range r {
		parts[i] = iv.String()
	}
	return strings.Join(parts, "×")
}

// Item is an indexed payload: a condition rectangle with its owner.
type Item struct {
	Rect Rect
	Data any
}

// maxEntries is the R-tree node fan-out.
const maxEntries = 8

type node struct {
	leaf     bool
	rect     Rect
	children []*node // internal nodes
	items    []*Item // leaf nodes
}

func (n *node) recomputeRect(dims int) {
	var r Rect
	first := true
	if n.leaf {
		for _, it := range n.items {
			if first {
				r = append(Rect(nil), it.Rect...)
				first = false
				continue
			}
			r = r.union(it.Rect)
		}
	} else {
		for _, c := range n.children {
			if first {
				r = append(Rect(nil), c.rect...)
				first = false
				continue
			}
			r = r.union(c.rect)
		}
	}
	if first {
		r = FullRect(dims)
	}
	n.rect = r
}

// Tree is an R-tree over condition rectangles of one class.
type Tree struct {
	dims int
	root *node
	size int
}

// NewTree builds an empty tree over the given dimensionality (the class
// arity).
func NewTree(dims int) *Tree {
	return &Tree{dims: dims, root: &node{leaf: true}}
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.size }

// Insert adds an item.
func (t *Tree) Insert(it *Item) {
	if len(it.Rect) != t.dims {
		panic(fmt.Sprintf("ptree: rect has %d dims, tree has %d", len(it.Rect), t.dims))
	}
	t.size++
	split := t.insert(t.root, it)
	if split != nil {
		// Root split: grow the tree.
		newRoot := &node{leaf: false, children: []*node{t.root, split}}
		newRoot.recomputeRect(t.dims)
		t.root = newRoot
	}
}

// insert places the item under n, returning a new sibling if n split.
func (t *Tree) insert(n *node, it *Item) *node {
	if n.leaf {
		n.items = append(n.items, it)
		n.recomputeRect(t.dims)
		if len(n.items) > maxEntries {
			return t.splitLeaf(n)
		}
		return nil
	}
	// Choose the child needing least enlargement.
	best := 0
	bestD := n.children[0].rect.enlargement(it.Rect)
	for i := 1; i < len(n.children); i++ {
		if d := n.children[i].rect.enlargement(it.Rect); d < bestD {
			best, bestD = i, d
		}
	}
	split := t.insert(n.children[best], it)
	if split != nil {
		n.children = append(n.children, split)
	}
	n.recomputeRect(t.dims)
	if len(n.children) > maxEntries {
		return t.splitInternal(n)
	}
	return nil
}

// splitLeaf divides an overfull leaf in two (simple even split after a
// seed pick — linear-split flavour).
func (t *Tree) splitLeaf(n *node) *node {
	half := len(n.items) / 2
	sib := &node{leaf: true, items: append([]*Item(nil), n.items[half:]...)}
	n.items = n.items[:half]
	n.recomputeRect(t.dims)
	sib.recomputeRect(t.dims)
	return sib
}

func (t *Tree) splitInternal(n *node) *node {
	half := len(n.children) / 2
	sib := &node{leaf: false, children: append([]*node(nil), n.children[half:]...)}
	n.children = n.children[:half]
	n.recomputeRect(t.dims)
	sib.recomputeRect(t.dims)
	return sib
}

// SearchPoint visits every item whose rectangle contains the point.
// visited counts the nodes inspected (the index cost).
func (t *Tree) SearchPoint(pt []value.V, fn func(*Item) bool) (visited int) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		visited++
		if !n.rect.ContainsPoint(pt) {
			return true
		}
		if n.leaf {
			for _, it := range n.items {
				if it.Rect.ContainsPoint(pt) {
					if !fn(it) {
						return false
					}
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
	return visited
}

// SearchRect visits every item whose rectangle overlaps the query
// rectangle — the rulebase-query primitive.
func (t *Tree) SearchRect(q Rect, fn func(*Item) bool) (visited int) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		visited++
		if !n.rect.Overlaps(q) {
			return true
		}
		if n.leaf {
			for _, it := range n.items {
				if it.Rect.Overlaps(q) {
					if !fn(it) {
						return false
					}
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
	return visited
}
