package ptree

import (
	"fmt"
	"math/rand"
	"sort"

	"prodsys/internal/audit"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
)

// This file implements the integrity-audit hooks for the predicate-tree
// matcher. Its only derived state beyond the conflict set is the
// condition R-tree index, whose ground truth is the rule set itself:
// every condition element must be present in its class's tree, and no
// foreign entries may appear. (Rectangles are recomputed from the CE on
// insert, so presence is the whole invariant.)

// AuditDerived implements audit.DerivedAuditor.
func (m *Matcher) AuditDerived(_ *relation.DB, only map[string]bool, emit func(audit.Divergence)) {
	classes := make([]string, 0, len(m.index.trees))
	for c := range m.index.trees {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		tree := m.index.trees[class]
		schema, ok := m.set.Classes[class]
		if !ok {
			continue
		}
		present := map[*rules.CE]bool{}
		tree.SearchRect(FullRect(schema.Arity()), func(it *Item) bool {
			if ce, ok := it.Data.(*rules.CE); ok {
				present[ce] = true
			}
			return true
		})
		expected := map[*rules.CE]bool{}
		for _, ce := range m.set.ByClass[class] {
			expected[ce] = true
			if only != nil && !only[ce.Rule.Name] {
				continue
			}
			if !present[ce] {
				emit(audit.Divergence{Class: audit.DivIndexMissing, Rule: ce.Rule.Name, CE: ce.Index,
					Key:      fmt.Sprintf("%s/%s#%d", class, ce.Rule.Name, ce.Index),
					Expected: "condition element indexed", Actual: "absent from condition R-tree"})
			}
		}
		var extras []*rules.CE
		for ce := range present {
			if !expected[ce] {
				extras = append(extras, ce)
			}
		}
		sort.Slice(extras, func(i, j int) bool {
			if extras[i].Rule.Name != extras[j].Rule.Name {
				return extras[i].Rule.Name < extras[j].Rule.Name
			}
			return extras[i].Index < extras[j].Index
		})
		for _, ce := range extras {
			if only != nil && !only[ce.Rule.Name] {
				continue
			}
			emit(audit.Divergence{Class: audit.DivIndexPhantom, Rule: ce.Rule.Name, CE: ce.Index,
				Key:      fmt.Sprintf("%s/%s#%d", class, ce.Rule.Name, ce.Index),
				Expected: "absent", Actual: "foreign entry in condition R-tree"})
		}
	}
}

// RebuildRules implements audit.DerivedRebuilder: the index is static
// per rule set, so the rebuild reindexes everything regardless of only.
func (m *Matcher) RebuildRules(_ *relation.DB, _ map[string]bool) error {
	m.index = NewIndex(m.set, m.stats)
	m.stats.Inc(metrics.MatcherRebuilds)
	return nil
}

// CorruptDerived implements audit.Corrupter: the index is rebuilt with
// one randomly chosen condition element left out — the derived-index
// analogue of a lost COND tuple.
func (m *Matcher) CorruptDerived(rng *rand.Rand) string {
	classes := make([]string, 0, len(m.set.ByClass))
	for c := range m.set.ByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var all []*rules.CE
	for _, class := range classes {
		all = append(all, m.set.ByClass[class]...)
	}
	if len(all) == 0 {
		return ""
	}
	drop := all[rng.Intn(len(all))]
	ix := &Index{set: m.set, trees: make(map[string]*Tree), stats: m.stats}
	for class, schema := range m.set.Classes {
		ix.trees[class] = NewTree(schema.Arity())
	}
	for class, ces := range m.set.ByClass {
		for _, ce := range ces {
			if ce == drop {
				continue
			}
			ix.trees[class].Insert(&Item{Rect: RectForCE(ce), Data: ce})
		}
	}
	m.index = ix
	return fmt.Sprintf("ptree: dropped %s CE %d on %s from the condition index", drop.Rule.Name, drop.Index, drop.Class)
}
