package ptree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prodsys/internal/value"
)

// TestTreeMatchesLinearScanProperty: for random interval sets and random
// probe points, the R-tree must return exactly the items a linear scan
// finds.
func TestTreeMatchesLinearScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(200)
		tree := NewTree(2)
		type stored struct {
			rect Rect
			id   int
		}
		items := make([]stored, n)
		for i := 0; i < n; i++ {
			lo1 := int64(r.Intn(1000))
			hi1 := lo1 + int64(r.Intn(100))
			lo2 := int64(r.Intn(1000))
			hi2 := lo2 + int64(r.Intn(100))
			rect := Rect{
				NewInterval(value.OfInt(lo1), value.OfInt(hi1)),
				NewInterval(value.OfInt(lo2), value.OfInt(hi2)),
			}
			if r.Intn(10) == 0 {
				rect[r.Intn(2)] = FullInterval() // some unbounded dims
			}
			items[i] = stored{rect: rect, id: i}
			tree.Insert(&Item{Rect: rect, Data: i})
		}
		for probe := 0; probe < 30; probe++ {
			pt := []value.V{
				value.OfInt(int64(r.Intn(1100))),
				value.OfInt(int64(r.Intn(1100))),
			}
			want := map[int]bool{}
			for _, it := range items {
				if it.rect.ContainsPoint(pt) {
					want[it.id] = true
				}
			}
			got := map[int]bool{}
			tree.SearchPoint(pt, func(it *Item) bool {
				got[it.Data.(int)] = true
				return true
			})
			if len(got) != len(want) {
				return false
			}
			for id := range want {
				if !got[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRectQueryMatchesScanProperty does the same for rectangle overlap
// queries.
func TestRectQueryMatchesScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(100)
		tree := NewTree(1)
		rects := make([]Rect, n)
		for i := 0; i < n; i++ {
			lo := int64(r.Intn(1000))
			rects[i] = Rect{NewInterval(value.OfInt(lo), value.OfInt(lo+int64(r.Intn(50))))}
			tree.Insert(&Item{Rect: rects[i], Data: i})
		}
		for probe := 0; probe < 20; probe++ {
			lo := int64(r.Intn(1000))
			q := Rect{NewInterval(value.OfInt(lo), value.OfInt(lo+int64(r.Intn(200))))}
			want := 0
			for _, rect := range rects {
				if rect.Overlaps(q) {
					want++
				}
			}
			got := 0
			tree.SearchRect(q, func(*Item) bool {
				got++
				return true
			})
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestIntervalAlgebraProperties checks union/overlap laws on random
// intervals.
func TestIntervalAlgebraProperties(t *testing.T) {
	mk := func(a, b int64) Interval {
		if a > b {
			a, b = b, a
		}
		return NewInterval(value.OfInt(a), value.OfInt(b))
	}
	f := func(a1, b1, a2, b2, p int64) bool {
		i1, i2 := mk(a1%1000, b1%1000), mk(a2%1000, b2%1000)
		// Symmetry.
		if i1.overlaps(i2) != i2.overlaps(i1) {
			return false
		}
		u := i1.union(i2)
		pt := value.OfInt(p % 1000)
		// Union contains everything either side contains.
		if (i1.contains(pt) || i2.contains(pt)) && !u.contains(pt) {
			return false
		}
		// Every interval overlaps itself and its union.
		return i1.overlaps(i1) && u.overlaps(i1) && u.overlaps(i2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
