package ptree

import "prodsys/internal/relation"

// The predicate index is built once from the (static) rule set and only
// probed afterwards — R-tree searches are read-only and safe for
// concurrent workers. There is no per-tuple derived state to maintain,
// so sharded processing runs entirely in the detection phase: every
// probe-seeded join and negated re-derivation evaluates against final
// WM state, so per-shard sub-batches commute.

// ShardMaintain implements match.Shardable phase 1: a no-op — the
// condition R-tree depends only on the rule set, not on WM contents.
func (m *Matcher) ShardMaintain(d *relation.Delta) error { return nil }

// ShardDetect implements match.Shardable phase 2: the tuple-at-a-time
// path over one shard's sub-delta, deletions first.
func (m *Matcher) ShardDetect(d *relation.Delta) error {
	classes := d.Classes()
	for _, class := range classes {
		for _, e := range d.Deletes(class) {
			if err := m.Delete(class, e.ID, e.Tuple); err != nil {
				return err
			}
		}
	}
	for _, class := range classes {
		for _, e := range d.Inserts(class) {
			if err := m.Insert(class, e.ID, e.Tuple); err != nil {
				return err
			}
		}
	}
	return nil
}
