package ptree

import (
	"sort"

	"prodsys/internal/conflict"
	"prodsys/internal/joiner"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
	"prodsys/internal/value"
)

// RectForCE derives the condition rectangle of a condition element from
// its variable-free restrictions. Attributes without constant
// restrictions (including all variable tests) stay unbounded; strict
// comparisons widen to closed bounds; inequality restrictions are dropped
// — all are false-positive-only relaxations.
func RectForCE(ce *rules.CE) Rect {
	r := FullRect(ce.Schema.Arity())
	for _, c := range ce.Consts {
		switch c.Op {
		case value.OpEq:
			r[c.Pos] = intersectPoint(r[c.Pos], c.Val)
		case value.OpLt, value.OpLe:
			r[c.Pos] = r[c.Pos].clampHi(c.Val)
		case value.OpGt, value.OpGe:
			r[c.Pos] = r[c.Pos].clampLo(c.Val)
		}
	}
	return r
}

// intersectPoint narrows an interval to a single point.
func intersectPoint(iv Interval, v value.V) Interval {
	pt := PointInterval(v)
	if !iv.overlaps(pt) {
		return pt // contradictory restrictions; keep the point
	}
	return pt
}

// clampHi lowers the upper bound to at most v.
func (iv Interval) clampHi(v value.V) Interval {
	if iv.hi.inf || cmpCoord(v, iv.hi.v) < 0 {
		iv.hi = bound{v: v}
	}
	return iv
}

// clampLo raises the lower bound to at least v.
func (iv Interval) clampLo(v value.V) Interval {
	if iv.lo.inf || cmpCoord(v, iv.lo.v) > 0 {
		iv.lo = bound{v: v}
	}
	return iv
}

// Index holds one condition R-tree per working-memory class.
type Index struct {
	set   *rules.Set
	trees map[string]*Tree
	stats *metrics.Set
}

// NewIndex indexes every condition element of the rule set.
func NewIndex(set *rules.Set, stats *metrics.Set) *Index {
	ix := &Index{set: set, trees: make(map[string]*Tree), stats: stats}
	for class, schema := range set.Classes {
		ix.trees[class] = NewTree(schema.Arity())
	}
	for class, ces := range set.ByClass {
		for _, ce := range ces {
			ix.trees[class].Insert(&Item{Rect: RectForCE(ce), Data: ce})
		}
	}
	return ix
}

// CandidatesFor returns the condition elements whose rectangles admit the
// tuple, alpha-verified, in deterministic order.
func (ix *Index) CandidatesFor(class string, t relation.Tuple) []*rules.CE {
	tree := ix.trees[class]
	if tree == nil {
		return nil
	}
	var out []*rules.CE
	visited := tree.SearchPoint(t, func(it *Item) bool {
		ce := it.Data.(*rules.CE)
		// The rectangle is a relaxation; re-check exactly.
		if ce.MatchAlpha(t) {
			out = append(out, ce)
		}
		return true
	})
	ix.stats.Add(metrics.IndexLookups, int64(visited))
	sortCEs(out)
	return out
}

// RulesInRange answers a rulebase query: the rules having a condition on
// class whose restriction on attr intersects [lo, hi] (nil = unbounded).
// Example from §4.2.3: "give me all the rules that apply on employees
// older than 55" is RulesInRange("Emp", "age", 55, nil).
func (ix *Index) RulesInRange(class, attr string, lo, hi value.V) []*rules.Rule {
	schema, ok := ix.set.Classes[class]
	if !ok {
		return nil
	}
	pos, ok := schema.Pos(attr)
	if !ok {
		return nil
	}
	q := FullRect(schema.Arity())
	q[pos] = NewInterval(lo, hi)
	seen := map[*rules.Rule]struct{}{}
	var out []*rules.Rule
	visited := ix.trees[class].SearchRect(q, func(it *Item) bool {
		r := it.Data.(*rules.CE).Rule
		if _, dup := seen[r]; !dup {
			seen[r] = struct{}{}
			out = append(out, r)
		}
		return true
	})
	ix.stats.Add(metrics.IndexLookups, int64(visited))
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

func sortCEs(ces []*rules.CE) {
	sort.Slice(ces, func(i, j int) bool {
		if ces[i].Rule.Index != ces[j].Rule.Index {
			return ces[i].Rule.Index < ces[j].Rule.Index
		}
		return ces[i].Index < ces[j].Index
	})
}

// Matcher is the Predicate Indexing matcher: the simplified algorithm
// with the COND search replaced by an R-tree probe — sublinear in the
// number of conditions instead of a full COND scan.
type Matcher struct {
	set   *rules.Set
	db    *relation.DB
	cs    *conflict.Set
	stats *metrics.Set
	index *Index
	tr    *trace.Tracer
	pl    *joiner.Planner
}

// SetTracer implements match.Traceable: R-tree probes and seeded join
// evaluations are emitted as trace events.
func (m *Matcher) SetTracer(tr *trace.Tracer) { m.tr = tr }

// SetPlanner implements match.Planned: seeded verification joins and
// negated re-derivations run under the planner's cost-based join order.
func (m *Matcher) SetPlanner(p *joiner.Planner) { m.pl = p }

// NewMatcher builds the matcher. stats may be nil.
func NewMatcher(set *rules.Set, db *relation.DB, cs *conflict.Set, stats *metrics.Set) *Matcher {
	return &Matcher{set: set, db: db, cs: cs, stats: stats, index: NewIndex(set, stats)}
}

// Index exposes the condition index (for rulebase queries).
func (m *Matcher) Index() *Index { return m.index }

// Name implements match.Matcher.
func (m *Matcher) Name() string { return "ptree" }

// ConflictSet implements match.Matcher.
func (m *Matcher) ConflictSet() *conflict.Set { return m.cs }

// Insert implements match.Matcher.
func (m *Matcher) Insert(class string, id relation.TupleID, t relation.Tuple) error {
	t0 := m.tr.Now()
	cands := m.index.CandidatesFor(class, t)
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{
			Kind: trace.KindCondScan, At: t0, Dur: m.tr.Now() - t0,
			CE: -1, Class: class, ID: uint64(id), Count: int64(len(cands)),
		})
	}
	for _, ce := range cands {
		m.stats.Inc(metrics.PatternSearches)
		if ce.Negated {
			ceCopy := ce
			m.cs.RemoveWhere(func(in *conflict.Instantiation) bool {
				if in.Rule != ceCopy.Rule {
					return false
				}
				_, blocked := ceCopy.MatchWith(t, in.Bindings)
				return blocked
			})
			continue
		}
		tJoin := m.tr.Now()
		var found int64
		fixed := map[int]joiner.Fixed{ce.Index: {ID: id, Tuple: t}}
		m.pl.Enumerate(m.db, ce.Rule, fixed, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
			found++
			m.cs.Add(&conflict.Instantiation{Rule: ce.Rule, TupleIDs: ids, Tuples: tuples, Bindings: b})
		})
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindJoinEval, At: tJoin, Dur: m.tr.Now() - tJoin,
				Rule: ce.Rule.Name, CE: ce.Index, Class: class, ID: uint64(id), Count: found,
			})
		}
	}
	return nil
}

// Delete implements match.Matcher.
func (m *Matcher) Delete(class string, id relation.TupleID, t relation.Tuple) error {
	m.cs.RemoveByTuple(class, id)
	t0 := m.tr.Now()
	cands := m.index.CandidatesFor(class, t)
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{
			Kind: trace.KindCondScan, At: t0, Dur: m.tr.Now() - t0,
			CE: -1, Class: class, ID: uint64(id), Count: int64(len(cands)),
		})
	}
	seen := map[*rules.Rule]bool{}
	for _, ce := range cands {
		if !ce.Negated || seen[ce.Rule] {
			continue
		}
		seen[ce.Rule] = true
		tJoin := m.tr.Now()
		var found int64
		m.pl.Enumerate(m.db, ce.Rule, nil, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
			found++
			m.cs.Add(&conflict.Instantiation{Rule: ce.Rule, TupleIDs: ids, Tuples: tuples, Bindings: b})
		})
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindJoinEval, At: tJoin, Dur: m.tr.Now() - tJoin,
				Rule: ce.Rule.Name, CE: ce.Index, Class: class, ID: uint64(id), Count: found,
			})
		}
	}
	return nil
}
