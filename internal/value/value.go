// Package value implements the typed scalar values that populate working
// memory tuples and condition-element restrictions.
//
// OPS5 working-memory elements carry symbols, numbers and strings in their
// attribute fields; the DBMS implementation of the paper stores the same
// values in relation columns and in COND-relation matching patterns. A
// value is immutable once constructed.
package value

import (
	"fmt"
	"strconv"
)

// Kind discriminates the dynamic type of a V.
type Kind uint8

// The value kinds. Nil is the zero value and marks an absent/unset field;
// it never compares equal to anything, including itself, except through
// SameAs.
const (
	Nil Kind = iota
	Int
	Float
	Str
	Sym
)

// String returns the kind name for diagnostics.
func (k Kind) String() string {
	switch k {
	case Nil:
		return "nil"
	case Int:
		return "int"
	case Float:
		return "float"
	case Str:
		return "string"
	case Sym:
		return "symbol"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// V is a single typed value. The zero V is the nil value. V is comparable
// and may be used as a map key, but map-key identity distinguishes Int(3)
// from Float(3); use Key to normalize before hashing when OPS5 numeric
// equality semantics are required.
type V struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// OfInt returns an integer value.
func OfInt(i int64) V { return V{kind: Int, i: i} }

// OfFloat returns a floating-point value.
func OfFloat(f float64) V { return V{kind: Float, f: f} }

// OfString returns a string value.
func OfString(s string) V { return V{kind: Str, s: s} }

// OfSym returns a symbol value. Symbols compare equal to strings with the
// same spelling, mirroring OPS5's treatment of quoted and bare atoms.
func OfSym(s string) V { return V{kind: Sym, s: s} }

// Kind reports the value's dynamic type.
func (v V) Kind() Kind { return v.kind }

// IsNil reports whether v is the nil (absent) value.
func (v V) IsNil() bool { return v.kind == Nil }

// AsInt returns the integer payload; valid only when Kind() == Int.
func (v V) AsInt() int64 { return v.i }

// AsFloat returns the float payload; valid only when Kind() == Float.
func (v V) AsFloat() float64 { return v.f }

// AsString returns the string payload of a Str or Sym value.
func (v V) AsString() string { return v.s }

// IsNumeric reports whether v is an Int or Float.
func (v V) IsNumeric() bool { return v.kind == Int || v.kind == Float }

// isTextual reports whether v is a Str or Sym.
func (v V) isTextual() bool { return v.kind == Str || v.kind == Sym }

// num returns the value as a float64 for cross-type numeric comparison.
func (v V) num() float64 {
	if v.kind == Int {
		return float64(v.i)
	}
	return v.f
}

// Key returns a canonical form of v suitable for hash-map keys under OPS5
// equality: floats holding an exactly-representable integer collapse to
// Int, and symbols collapse to Str. Two values v, w with Equal(v, w) have
// v.Key() == w.Key().
func (v V) Key() V {
	switch v.kind {
	case Float:
		if i := int64(v.f); float64(i) == v.f {
			return V{kind: Int, i: i}
		}
		return v
	case Sym:
		return V{kind: Str, s: v.s}
	default:
		return v
	}
}

// SameAs reports structural identity (same kind and payload), which is
// stricter than Equal.
func (v V) SameAs(w V) bool { return v == w }

// Equal reports OPS5 equality: numerics compare numerically across
// Int/Float, and Str/Sym compare by spelling. Nil is equal to nothing.
func Equal(v, w V) bool {
	switch {
	case v.kind == Nil || w.kind == Nil:
		return false
	case v.IsNumeric() && w.IsNumeric():
		if v.kind == Int && w.kind == Int {
			return v.i == w.i
		}
		return v.num() == w.num()
	case v.isTextual() && w.isTextual():
		return v.s == w.s
	default:
		return false
	}
}

// Less reports whether v orders before w. Only like-category values are
// ordered; comparing a number with a string yields ok == false.
func Less(v, w V) (less, ok bool) {
	switch {
	case v.IsNumeric() && w.IsNumeric():
		if v.kind == Int && w.kind == Int {
			return v.i < w.i, true
		}
		return v.num() < w.num(), true
	case v.isTextual() && w.isTextual():
		return v.s < w.s, true
	default:
		return false, false
	}
}

// Compare returns -1, 0, or +1 when v and w are comparable, with ok
// reporting comparability.
func Compare(v, w V) (cmp int, ok bool) {
	if Equal(v, w) {
		return 0, true
	}
	less, ok := Less(v, w)
	if !ok {
		return 0, false
	}
	if less {
		return -1, true
	}
	return 1, true
}

// Op is a comparison operator appearing in a condition-element restriction.
type Op uint8

// The comparison operators of the OPS5 subset.
const (
	OpEq Op = iota // =
	OpNe           // <>
	OpLt           // <
	OpLe           // <=
	OpGt           // >
	OpGe           // >=
)

// String returns the OPS5 spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Negate returns the complementary operator (= ↔ <>, < ↔ >=, …).
func (o Op) Negate() Op {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return o
}

// Flip returns the operator with its operands exchanged (a < b ⇒ b > a).
func (o Op) Flip() Op {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return o
	}
}

// Apply evaluates "v o w". Incomparable operands satisfy only OpNe.
func (o Op) Apply(v, w V) bool {
	switch o {
	case OpEq:
		return Equal(v, w)
	case OpNe:
		return !Equal(v, w)
	}
	cmp, ok := Compare(v, w)
	if !ok {
		return false
	}
	switch o {
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// ParseOp parses an operator spelling; ok is false for unknown spellings.
func ParseOp(s string) (Op, bool) {
	switch s {
	case "=":
		return OpEq, true
	case "<>", "!=":
		return OpNe, true
	case "<":
		return OpLt, true
	case "<=":
		return OpLe, true
	case ">":
		return OpGt, true
	case ">=":
		return OpGe, true
	default:
		return OpEq, false
	}
}

// String renders the value in OPS5-ish literal syntax.
func (v V) String() string {
	switch v.kind {
	case Nil:
		return "nil"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Str:
		return strconv.Quote(v.s)
	case Sym:
		return v.s
	default:
		return "?"
	}
}
