package value

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Nil: "nil", Int: "int", Float: "float", Str: "string", Sym: "symbol",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := OfInt(42); v.Kind() != Int || v.AsInt() != 42 {
		t.Errorf("OfInt: %v", v)
	}
	if v := OfFloat(2.5); v.Kind() != Float || v.AsFloat() != 2.5 {
		t.Errorf("OfFloat: %v", v)
	}
	if v := OfString("abc"); v.Kind() != Str || v.AsString() != "abc" {
		t.Errorf("OfString: %v", v)
	}
	if v := OfSym("Emp"); v.Kind() != Sym || v.AsString() != "Emp" {
		t.Errorf("OfSym: %v", v)
	}
	var zero V
	if !zero.IsNil() || zero.Kind() != Nil {
		t.Errorf("zero value should be nil: %v", zero)
	}
}

func TestEqual(t *testing.T) {
	tests := []struct {
		a, b V
		want bool
	}{
		{OfInt(3), OfInt(3), true},
		{OfInt(3), OfInt(4), false},
		{OfInt(3), OfFloat(3.0), true},
		{OfFloat(3.5), OfFloat(3.5), true},
		{OfFloat(3.5), OfInt(3), false},
		{OfString("x"), OfString("x"), true},
		{OfString("x"), OfSym("x"), true},
		{OfSym("x"), OfSym("y"), false},
		{OfInt(3), OfString("3"), false},
		{V{}, V{}, false},
		{V{}, OfInt(0), false},
	}
	for _, tc := range tests {
		if got := Equal(tc.a, tc.b); got != tc.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLessAndCompare(t *testing.T) {
	tests := []struct {
		a, b     V
		less, ok bool
	}{
		{OfInt(1), OfInt(2), true, true},
		{OfInt(2), OfInt(1), false, true},
		{OfInt(1), OfFloat(1.5), true, true},
		{OfFloat(0.5), OfInt(1), true, true},
		{OfString("a"), OfString("b"), true, true},
		{OfSym("a"), OfString("b"), true, true},
		{OfInt(1), OfString("a"), false, false},
		{V{}, OfInt(1), false, false},
	}
	for _, tc := range tests {
		less, ok := Less(tc.a, tc.b)
		if less != tc.less || ok != tc.ok {
			t.Errorf("Less(%v, %v) = %v,%v want %v,%v", tc.a, tc.b, less, ok, tc.less, tc.ok)
		}
	}
	if cmp, ok := Compare(OfInt(5), OfInt(5)); !ok || cmp != 0 {
		t.Errorf("Compare equal = %d,%v", cmp, ok)
	}
	if cmp, ok := Compare(OfInt(4), OfInt(5)); !ok || cmp != -1 {
		t.Errorf("Compare less = %d,%v", cmp, ok)
	}
	if cmp, ok := Compare(OfInt(6), OfInt(5)); !ok || cmp != 1 {
		t.Errorf("Compare greater = %d,%v", cmp, ok)
	}
	if _, ok := Compare(OfInt(6), OfSym("a")); ok {
		t.Error("Compare across categories should not be ok")
	}
}

func TestKeyNormalization(t *testing.T) {
	if OfFloat(3.0).Key() != OfInt(3).Key() {
		t.Error("Float(3).Key should equal Int(3).Key")
	}
	if OfFloat(3.5).Key() == OfInt(3).Key() {
		t.Error("Float(3.5).Key must differ from Int(3).Key")
	}
	if OfSym("x").Key() != OfString("x").Key() {
		t.Error("Sym/Str keys should collapse")
	}
	// Property: Equal(v, w) implies v.Key() == w.Key().
	for _, i := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		a, b := OfInt(i), OfFloat(float64(i))
		if Equal(a, b) && a.Key() != b.Key() {
			t.Errorf("Equal(%v,%v) but keys differ", a, b)
		}
	}
}

func TestOpApply(t *testing.T) {
	tests := []struct {
		op   Op
		a, b V
		want bool
	}{
		{OpEq, OfInt(1), OfInt(1), true},
		{OpEq, OfInt(1), OfInt(2), false},
		{OpNe, OfInt(1), OfInt(2), true},
		{OpNe, OfInt(1), OfSym("a"), true},
		{OpLt, OfInt(1), OfInt(2), true},
		{OpLe, OfInt(2), OfInt(2), true},
		{OpGt, OfInt(3), OfInt(2), true},
		{OpGe, OfInt(2), OfInt(2), true},
		{OpLt, OfInt(1), OfSym("a"), false},
		{OpGe, OfSym("b"), OfSym("a"), true},
	}
	for _, tc := range tests {
		if got := tc.op.Apply(tc.a, tc.b); got != tc.want {
			t.Errorf("%v.Apply(%v, %v) = %v, want %v", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestOpNegateFlipParse(t *testing.T) {
	for _, o := range []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if o.Negate().Negate() != o {
			t.Errorf("%v.Negate().Negate() != %v", o, o)
		}
		if o.Flip().Flip() != o {
			t.Errorf("%v.Flip().Flip() != %v", o, o)
		}
		op, ok := ParseOp(o.String())
		if !ok || op != o {
			t.Errorf("ParseOp(%q) = %v,%v", o.String(), op, ok)
		}
	}
	if _, ok := ParseOp("~"); ok {
		t.Error("ParseOp should reject unknown spellings")
	}
	if op, ok := ParseOp("!="); !ok || op != OpNe {
		t.Error("ParseOp(!=) should map to <>")
	}
	if got := Op(77).String(); got != "Op(77)" {
		t.Errorf("unknown op = %q", got)
	}
}

func TestOpSemanticsProperties(t *testing.T) {
	// For random integer pairs, Negate inverts Apply and Flip swaps operands.
	f := func(a, b int64) bool {
		va, vb := OfInt(a), OfInt(b)
		for _, o := range []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
			if o.Apply(va, vb) == o.Negate().Apply(va, vb) {
				return false
			}
			if o.Apply(va, vb) != o.Flip().Apply(vb, va) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualityProperties(t *testing.T) {
	// Equal is symmetric and consistent with Compare==0 on numerics.
	f := func(a, b int64) bool {
		va, vb := OfInt(a), OfInt(b)
		if Equal(va, vb) != Equal(vb, va) {
			return false
		}
		cmp, ok := Compare(va, vb)
		if !ok {
			return false
		}
		return (cmp == 0) == Equal(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		v    V
		want string
	}{
		{OfInt(7), "7"},
		{OfFloat(2.5), "2.5"},
		{OfString("hi"), `"hi"`},
		{OfSym("Toy"), "Toy"},
		{V{}, "nil"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.v.Kind(), got, tc.want)
		}
	}
}

func TestSameAs(t *testing.T) {
	if !OfInt(3).SameAs(OfInt(3)) {
		t.Error("identical ints should be SameAs")
	}
	if OfInt(3).SameAs(OfFloat(3)) {
		t.Error("Int(3) is not structurally same as Float(3)")
	}
}
