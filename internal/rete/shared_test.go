package rete

import (
	"fmt"
	"reflect"
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

// prefixSharingSrc: three rules sharing their first two condition
// elements, diverging on the third.
const prefixSharingSrc = `
(literalize Goal type object)
(literalize Expression name arg1 op arg2)
(literalize Ctx mode)

(p PlusOX
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op + ^arg2 <X>)
  -->
    (modify 2 ^op nil ^arg1 nil))

(p PlusOXLogged
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op + ^arg2 <X>)
    (Ctx ^mode verbose)
  -->
    (modify 2 ^op nil ^arg1 nil))

(p PlusOXStrict
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op + ^arg2 <X>)
    (Ctx ^mode strict)
  -->
    (remove 2))
`

func buildBoth(t *testing.T, src string) (plain, shared *Network, plainStats, sharedStats *metrics.Set) {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	plainStats, sharedStats = &metrics.Set{}, &metrics.Set{}
	plain = New(set, conflict.NewSet(nil), plainStats)
	// Compile a second, independent set for the shared network so rule
	// pointers differ but semantics match.
	set2, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	shared = NewShared(set2, conflict.NewSet(nil), sharedStats)
	return plain, shared, plainStats, sharedStats
}

func feedBoth(a, b *Network, class string, id relation.TupleID, t relation.Tuple) {
	a.Insert(class, id, t)
	b.Insert(class, id, t)
}

func TestSharedNetworkNameAndEquivalence(t *testing.T) {
	plain, shared, _, _ := buildBoth(t, prefixSharingSrc)
	if plain.Name() != "rete" || shared.Name() != "rete-shared" {
		t.Fatalf("names: %q %q", plain.Name(), shared.Name())
	}
	feedBoth(plain, shared, "Goal", 1, relation.Tuple{value.OfSym("Simplify"), value.OfSym("e1")})
	feedBoth(plain, shared, "Expression", 1, relation.Tuple{value.OfSym("e1"), value.OfInt(0), value.OfSym("+"), value.OfInt(7)})
	feedBoth(plain, shared, "Ctx", 1, relation.Tuple{value.OfSym("verbose")})
	if !reflect.DeepEqual(plain.cs.Keys(), shared.cs.Keys()) {
		t.Fatalf("conflict sets differ:\nplain:  %v\nshared: %v", plain.cs.Keys(), shared.cs.Keys())
	}
	if plain.cs.Len() != 2 { // PlusOX and PlusOXLogged
		t.Fatalf("conflict set = %v", plain.cs.Keys())
	}
	// Deletion equivalence.
	plain.Delete("Expression", 1, nil)
	shared.Delete("Expression", 1, nil)
	if plain.cs.Len() != 0 || shared.cs.Len() != 0 {
		t.Fatalf("retraction: plain=%v shared=%v", plain.cs.Keys(), shared.cs.Keys())
	}
}

func TestSharedNetworkSavesActivations(t *testing.T) {
	plain, shared, ps, ss := buildBoth(t, prefixSharingSrc)
	for i := 1; i <= 20; i++ {
		g := relation.Tuple{value.OfSym("Simplify"), value.OfSym(fmt.Sprintf("e%d", i))}
		x := relation.Tuple{value.OfSym(fmt.Sprintf("e%d", i)), value.OfInt(0), value.OfSym("+"), value.OfInt(int64(i))}
		feedBoth(plain, shared, "Goal", relation.TupleID(i), g)
		feedBoth(plain, shared, "Expression", relation.TupleID(i), x)
	}
	pa := ps.Get(metrics.NodeActivations)
	sa := ss.Get(metrics.NodeActivations)
	if sa >= pa {
		t.Fatalf("sharing should reduce activations: plain=%d shared=%d", pa, sa)
	}
	pt := plain.TokenCount()
	st := shared.TokenCount()
	if st >= pt {
		t.Fatalf("sharing should reduce stored tokens: plain=%d shared=%d", pt, st)
	}
}

func TestSharedNetworkDivergentSuffixIndependent(t *testing.T) {
	_, shared, _, _ := buildBoth(t, prefixSharingSrc)
	shared.Insert("Goal", 1, relation.Tuple{value.OfSym("Simplify"), value.OfSym("e1")})
	shared.Insert("Expression", 1, relation.Tuple{value.OfSym("e1"), value.OfInt(0), value.OfSym("+"), value.OfInt(7)})
	shared.Insert("Ctx", 1, relation.Tuple{value.OfSym("strict")})
	keys := shared.cs.Keys()
	want := []string{"PlusOXStrict|1|1|1", "PlusOX|1|1"} // Keys() sorts lexically
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
}

func TestSharedNetworkWithNegationPrefix(t *testing.T) {
	src := `
(literalize A x)
(literalize B x)
(literalize C x)
(p R1 (A ^x <v>) - (B ^x <v>) --> (halt))
(p R2 (A ^x <v>) - (B ^x <v>) (C ^x <v>) --> (halt))
`
	plain, shared, _, _ := buildBoth(t, src)
	feedBoth(plain, shared, "A", 1, relation.Tuple{value.OfInt(5)})
	feedBoth(plain, shared, "C", 1, relation.Tuple{value.OfInt(5)})
	if !reflect.DeepEqual(plain.cs.Keys(), shared.cs.Keys()) {
		t.Fatalf("plain %v vs shared %v", plain.cs.Keys(), shared.cs.Keys())
	}
	// Blocker retracts both rules in both networks.
	feedBoth(plain, shared, "B", 1, relation.Tuple{value.OfInt(5)})
	if plain.cs.Len() != 0 || shared.cs.Len() != 0 {
		t.Fatalf("blocker: plain %v vs shared %v", plain.cs.Keys(), shared.cs.Keys())
	}
	feedBoth(plain, shared, "B", 2, relation.Tuple{value.OfInt(9)})
	plain.Delete("B", 1, nil)
	shared.Delete("B", 1, nil)
	if !reflect.DeepEqual(plain.cs.Keys(), shared.cs.Keys()) {
		t.Fatalf("unblock: plain %v vs shared %v", plain.cs.Keys(), shared.cs.Keys())
	}
}

func TestSharedChainCacheSize(t *testing.T) {
	set, _, err := rules.CompileSource(prefixSharingSrc)
	if err != nil {
		t.Fatal(err)
	}
	shared := NewShared(set, conflict.NewSet(nil), nil)
	// Distinct prefixes: [Goal], [Goal,Expr], [Goal,Expr,Ctx=verbose],
	// [Goal,Expr,Ctx=strict] = 4.
	if got := len(shared.chains); got != 4 {
		t.Fatalf("cached chain steps = %d, want 4", got)
	}
	plain := New(set, conflict.NewSet(nil), nil)
	if len(plain.chains) != 0 {
		t.Fatal("plain network must not cache chains")
	}
}
