package rete

import (
	"strings"
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/rules"
)

func TestDescribeStructure(t *testing.T) {
	set, _, err := rules.CompileSource(`
(literalize Goal type object)
(literalize Expression name arg1 op arg2)
(p PlusOX
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op + ^arg2 <X>)
  -->
    (modify 2 ^op nil ^arg1 nil))
(p TimesOX
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op * ^arg2 <X>)
  -->
    (modify 2 ^op nil ^arg1 nil))`)
	if err != nil {
		t.Fatal(err)
	}
	net := New(set, conflict.NewSet(nil), nil)
	out := net.Describe()
	for _, want := range []string{
		"root",
		"class Goal",
		"class Expression",
		"P[PlusOX]",
		"P[TimesOX]",
		"two-input node",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	if net.Depth() != 2 {
		t.Errorf("Depth = %d", net.Depth())
	}
}

func TestDescribeNegativeNode(t *testing.T) {
	set, _, err := rules.CompileSource(`
(literalize A x)
(literalize B x)
(p R (A ^x <v>) - (B ^x <v>) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	net := New(set, conflict.NewSet(nil), nil)
	if !strings.Contains(net.Describe(), "negative node") {
		t.Errorf("Describe missing negative node:\n%s", net.Describe())
	}
}

func TestRuleOfTraversal(t *testing.T) {
	// ruleOf must find the production name through chains with beta
	// memories, negative nodes and trailing joins.
	set, _, err := rules.CompileSource(`
(literalize A x)
(literalize B x)
(literalize C x)
(p deep (A ^x <v>) - (B ^x <v>) (C ^x <v>) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	net := New(set, conflict.NewSet(nil), nil)
	out := net.Describe()
	if !strings.Contains(out, "of deep") {
		t.Errorf("join node not attributed to rule deep:\n%s", out)
	}
}
