// Package rete implements the classic main-memory Rete match algorithm
// (Forgy 1982) used by OPS5 — the paper's AI-way baseline (§2.2, §3.1).
//
// Rule LHSs compile into a discrimination network: one-input (alpha)
// chains check variable-free restrictions and feed alpha memories;
// two-input (beta) join nodes pair tokens from the left with working
// memory elements from the right, storing partial matches at every level.
// Negated condition elements become negative nodes carrying join-result
// counts. Tokens reaching the bottom of the network add instantiations to
// the conflict set.
//
// The implementation follows Doorenbos' formulation with tree-based token
// removal. Alpha memories are shared between condition elements with the
// same class and variable-free tests (the sharing visible in Figure 3 of
// the paper); beta chains are per rule.
package rete

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"prodsys/internal/conflict"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
	"prodsys/internal/value"
)

// WME is a working memory element flowing through the network.
type WME struct {
	Class string
	ID    relation.TupleID
	Tuple relation.Tuple

	amems  []*alphaMemory
	tokens []*token // tokens whose own wme is this element
	negJRs []*negJoinResult
}

func (w *WME) String() string {
	return fmt.Sprintf("%s:%d%s", w.Class, w.ID, w.Tuple)
}

// token is a partial match: a chain of one entry per condition element
// processed so far. wme is nil for negated condition elements and for the
// dummy top token.
type token struct {
	parent   *token
	wme      *WME
	owner    tokenOwner
	level    int // CE index this token completes; -1 for the dummy token
	children []*token
	// joinResults is non-empty only while owned by a negative node: the
	// working memory elements currently blocking this token.
	joinResults []*negJoinResult
}

// negJoinResult links a blocked negative-node token with the WME blocking
// it.
type negJoinResult struct {
	owner *token
	wme   *WME
}

// tokenOwner is any node that stores tokens (beta memory, negative node,
// production node).
type tokenOwner interface {
	removeToken(t *token)
}

// tokenSink receives a token that has satisfied everything up to and
// including the owner node's condition element.
type tokenSink interface {
	tokenAdded(t *token)
}

// tokenStore is a node storing tokens a join can iterate (beta memory
// or negative node); allTokens additionally exposes blocked tokens to
// the integrity auditor.
type tokenStore interface {
	eachToken(func(*token))
	allTokens() []*token
}

// joinTest compares an attribute of the candidate WME with an attribute
// of an earlier condition element's WME inside the token.
type joinTest struct {
	wmePos   int
	tokLevel int
	tokPos   int
	op       value.Op
}

// intraTest compares two attributes of the same WME (a variable used
// twice within one condition element).
type intraTest struct {
	p1, p2 int
	op     value.Op
}

// alphaMemory stores the WMEs passing one variable-free test chain.
type alphaMemory struct {
	signature  string
	class      string
	consts     []relation.Restriction
	disj       []rules.DisjTest
	intra      []intraTest
	items      map[*WME]struct{}
	successors []amemSuccessor // kept sorted by descending CE index
}

// amemSuccessor is a node right-activated by alpha memory changes.
type amemSuccessor interface {
	rightActivate(w *WME)
	rightRetract(w *WME)
	ceIndex() int
	// ownerRules attributes the node to the rules whose compilation
	// reached it: one rule normally, several under beta-prefix sharing
	// (traced join work is split evenly between them).
	ownerRules() []*rules.Rule
	addOwner(r *rules.Rule)
}

// matches reports whether the WME passes this alpha memory's tests.
func (am *alphaMemory) matches(w *WME) bool {
	if w.Class != am.class || !relation.SatisfiesAll(w.Tuple, am.consts) {
		return false
	}
	for _, d := range am.disj {
		if !d.Satisfies(w.Tuple) {
			return false
		}
	}
	for _, it := range am.intra {
		if !it.op.Apply(w.Tuple[it.p1], w.Tuple[it.p2]) {
			return false
		}
	}
	return true
}

// betaMemory stores tokens and feeds child join nodes.
type betaMemory struct {
	items    map[*token]struct{}
	children []tokenSink
	net      *Network
}

func newBetaMemory(net *Network) *betaMemory {
	return &betaMemory{items: make(map[*token]struct{}), net: net}
}

func (bm *betaMemory) leftActivate(parent *token, w *WME, level int) {
	t := bm.net.newToken(parent, w, bm, level)
	bm.items[t] = struct{}{}
	for _, c := range bm.children {
		c.tokenAdded(t)
	}
}

func (bm *betaMemory) removeToken(t *token) { delete(bm.items, t) }

// allTokens returns every stored token (for the integrity auditor; at a
// negative node this includes blocked tokens, which eachToken hides).
func (bm *betaMemory) allTokens() []*token {
	out := make([]*token, 0, len(bm.items))
	for t := range bm.items {
		out = append(out, t)
	}
	return out
}

// joinNode pairs parent-store tokens with alpha memory WMEs.
type joinNode struct {
	net    *Network
	parent interface {
		eachToken(func(*token))
	}
	amem  *alphaMemory
	tests []joinTest
	child interface {
		leftActivate(parent *token, w *WME, level int)
	}
	ce     int           // condition element index
	owners []*rules.Rule // compiling rules, for trace attribution
}

func (j *joinNode) ceIndex() int              { return j.ce }
func (j *joinNode) ownerRules() []*rules.Rule { return j.owners }
func (j *joinNode) addOwner(r *rules.Rule)    { j.owners = append(j.owners, r) }

func (j *joinNode) performTests(t *token, w *WME) bool {
	j.net.stats.Inc(metrics.NodeActivations)
	for _, jt := range j.tests {
		tw := t.wmeAtLevel(jt.tokLevel)
		if tw == nil || !jt.op.Apply(w.Tuple[jt.wmePos], tw.Tuple[jt.tokPos]) {
			return false
		}
	}
	return true
}

// tokenAdded is the left activation: a new token appeared in the parent
// store.
func (j *joinNode) tokenAdded(t *token) {
	for w := range j.amem.items {
		if j.performTests(t, w) {
			j.child.leftActivate(t, w, j.ce)
		}
	}
}

// rightActivate handles a WME newly added to the alpha memory.
func (j *joinNode) rightActivate(w *WME) {
	j.parent.eachToken(func(t *token) {
		if j.performTests(t, w) {
			j.child.leftActivate(t, w, j.ce)
		}
	})
}

// rightRetract: token removal is driven from the WME's token list, so a
// positive join has nothing to do here.
func (j *joinNode) rightRetract(*WME) {}

// eachToken lets join nodes iterate a beta memory.
func (bm *betaMemory) eachToken(f func(*token)) {
	for t := range bm.items {
		f(t)
	}
}

// negativeNode implements a negated condition element: it stores tokens
// (acting as a beta memory) and blocks any token with at least one
// matching WME in its alpha memory.
type negativeNode struct {
	net      *Network
	amem     *alphaMemory
	tests    []joinTest
	items    map[*token]struct{}
	children []tokenSink
	ce       int
	owners   []*rules.Rule // compiling rules, for trace attribution
}

func newNegativeNode(net *Network, amem *alphaMemory, tests []joinTest, ce int, r *rules.Rule) *negativeNode {
	return &negativeNode{net: net, amem: amem, tests: tests, items: make(map[*token]struct{}), ce: ce, owners: []*rules.Rule{r}}
}

func (n *negativeNode) ceIndex() int              { return n.ce }
func (n *negativeNode) ownerRules() []*rules.Rule { return n.owners }
func (n *negativeNode) addOwner(r *rules.Rule)    { n.owners = append(n.owners, r) }

func (n *negativeNode) performTests(t *token, w *WME) bool {
	n.net.stats.Inc(metrics.NodeActivations)
	for _, jt := range n.tests {
		tw := t.wmeAtLevel(jt.tokLevel)
		if tw == nil || !jt.op.Apply(w.Tuple[jt.wmePos], tw.Tuple[jt.tokPos]) {
			return false
		}
	}
	return true
}

// leftActivate receives a new partial match from above.
func (n *negativeNode) leftActivate(parent *token, w *WME, _ int) {
	t := n.net.newToken(parent, w, n, n.ce)
	n.items[t] = struct{}{}
	for cand := range n.amem.items {
		if n.performTests(t, cand) {
			jr := &negJoinResult{owner: t, wme: cand}
			t.joinResults = append(t.joinResults, jr)
			cand.negJRs = append(cand.negJRs, jr)
		}
	}
	if len(t.joinResults) == 0 {
		for _, c := range n.children {
			c.tokenAdded(t)
		}
	}
}

// tokenAdded adapts a preceding negative node (or other token store)
// feeding this one directly (consecutive negated condition elements).
func (n *negativeNode) tokenAdded(t *token) { n.leftActivate(t, nil, n.ce) }

// rightActivate: a WME entered the alpha memory; newly blocked tokens
// lose their descendants.
func (n *negativeNode) rightActivate(w *WME) {
	for t := range n.items {
		if n.performTests(t, w) {
			if len(t.joinResults) == 0 {
				n.net.deleteDescendants(t)
			}
			jr := &negJoinResult{owner: t, wme: w}
			t.joinResults = append(t.joinResults, jr)
			w.negJRs = append(w.negJRs, jr)
		}
	}
}

// rightRetract: join results are unlinked by the network during WME
// removal; tokens that become unblocked re-fire there.
func (n *negativeNode) rightRetract(*WME) {}

func (n *negativeNode) removeToken(t *token) { delete(n.items, t) }

func (n *negativeNode) eachToken(f func(*token)) {
	for t := range n.items {
		if len(t.joinResults) == 0 {
			f(t)
		}
	}
}

func (n *negativeNode) allTokens() []*token {
	out := make([]*token, 0, len(n.items))
	for t := range n.items {
		out = append(out, t)
	}
	return out
}

// pnode is a production node: complete matches become conflict-set
// instantiations.
type pnode struct {
	net   *Network
	rule  *rules.Rule
	items map[*token]struct{}
}

func newPNode(net *Network, r *rules.Rule) *pnode {
	return &pnode{net: net, rule: r, items: make(map[*token]struct{})}
}

func (p *pnode) leftActivate(parent *token, w *WME, level int) {
	t := p.net.newToken(parent, w, p, level)
	p.items[t] = struct{}{}
	p.net.addInstantiation(p.rule, t)
}

func (p *pnode) tokenAdded(t *token) { p.leftActivate(t, nil, t.level) }

func (p *pnode) removeToken(t *token) {
	delete(p.items, t)
	p.net.removeInstantiation(p.rule, t)
}

func (p *pnode) allTokens() []*token {
	out := make([]*token, 0, len(p.items))
	for t := range p.items {
		out = append(out, t)
	}
	return out
}

// wmeAtLevel walks the token chain to the entry for the given condition
// element index.
func (t *token) wmeAtLevel(level int) *WME {
	for cur := t; cur != nil; cur = cur.parent {
		if cur.level == level {
			return cur.wme
		}
	}
	return nil
}

type wmeKey struct {
	class string
	id    relation.TupleID
}

// Network is the compiled Rete network for a rule set.
type Network struct {
	set   *rules.Set
	cs    *conflict.Set
	stats *metrics.Set
	tr    *trace.Tracer

	alphaByClass map[string][]*alphaMemory
	alphaBySig   map[string]*alphaMemory
	dummyTop     *token
	top          *betaMemory
	wmes         map[wmeKey]*WME
	pnodes       []*pnode
	ruleChains   []*ruleChain

	// share enables beta-prefix sharing across rules (the multiple-query
	// optimization of §6: common subchains compiled once); chains caches
	// the store reached after each distinct condition-element prefix.
	share  bool
	chains map[string]*chainStep
}

// chainStep records the token store reached after compiling one prefix of
// condition elements, so another rule with the same prefix can reuse it.
type chainStep struct {
	store  tokenStore
	attach func(tokenSink)
	node   amemSuccessor // the step's join/negative node, for owner attribution
}

// ruleChain records, per rule, the token store reached after each
// condition element plus the production node — the derived state the
// integrity auditor recomputes from WM and diffs. Under beta-prefix
// sharing the stores may be shared with other rules' chains.
type ruleChain struct {
	rule   *rules.Rule
	stores []tokenStore // aligned with rule.CEs
	pn     *pnode
}

// New compiles the rule set into a Rete network maintaining cs.
// stats may be nil.
func New(set *rules.Set, cs *conflict.Set, stats *metrics.Set) *Network {
	return compileNetwork(set, cs, stats, false)
}

// NewShared compiles the rule set with beta-prefix sharing: rules with a
// common prefix of condition elements (same classes, variable-free tests
// and join tests) share the two-input nodes and memories of that prefix.
// This is the multiple-query optimization the paper names as future work
// (§3.2/§6: "it would be advantageous to build a global compiled plan
// that avoids multiple relation accesses", citing [SELL86, SELL88]).
func NewShared(set *rules.Set, cs *conflict.Set, stats *metrics.Set) *Network {
	return compileNetwork(set, cs, stats, true)
}

func compileNetwork(set *rules.Set, cs *conflict.Set, stats *metrics.Set, share bool) *Network {
	net := &Network{
		set:          set,
		cs:           cs,
		stats:        stats,
		alphaByClass: make(map[string][]*alphaMemory),
		alphaBySig:   make(map[string]*alphaMemory),
		wmes:         make(map[wmeKey]*WME),
		share:        share,
		chains:       make(map[string]*chainStep),
	}
	net.dummyTop = &token{level: -1}
	net.top = newBetaMemory(net)
	net.top.items[net.dummyTop] = struct{}{}
	for _, r := range set.Rules {
		net.compileRule(r)
	}
	return net
}

// SetTracer implements match.Traceable: alpha-chain checks and
// join-node right activations are emitted as trace events.
func (net *Network) SetTracer(tr *trace.Tracer) { net.tr = tr }

// Name implements match.Matcher.
func (net *Network) Name() string {
	if net.share {
		return "rete-shared"
	}
	return "rete"
}

// ConflictSet implements match.Matcher.
func (net *Network) ConflictSet() *conflict.Set { return net.cs }

// newToken allocates a token and links it under its parent.
func (net *Network) newToken(parent *token, w *WME, owner tokenOwner, level int) *token {
	t := &token{parent: parent, wme: w, owner: owner, level: level}
	if parent != nil {
		parent.children = append(parent.children, t)
	}
	if w != nil {
		w.tokens = append(w.tokens, t)
	}
	net.stats.Inc(metrics.TokensStored)
	return t
}

// alphaSignature canonically names a CE's variable-free test chain.
func alphaSignature(class string, consts []relation.Restriction, disj []rules.DisjTest, intra []intraTest) string {
	parts := make([]string, 0, len(consts)+len(disj)+len(intra))
	for _, c := range consts {
		parts = append(parts, fmt.Sprintf("c%d%s%s", c.Pos, c.Op, c.Val.Key()))
	}
	for _, d := range disj {
		vals := make([]string, len(d.Vals))
		for i, v := range d.Vals {
			vals[i] = v.Key().String()
		}
		sort.Strings(vals)
		parts = append(parts, fmt.Sprintf("d%d∈{%s}", d.Pos, strings.Join(vals, ",")))
	}
	for _, it := range intra {
		parts = append(parts, fmt.Sprintf("i%d%s%d", it.p1, it.op, it.p2))
	}
	sort.Strings(parts)
	return class + "§" + strings.Join(parts, "|")
}

// buildAlpha returns (sharing when possible) the alpha memory for a CE.
func (net *Network) buildAlpha(ce *rules.CE, intra []intraTest) *alphaMemory {
	sig := alphaSignature(ce.Class, ce.Consts, ce.Disj, intra)
	if am, ok := net.alphaBySig[sig]; ok {
		return am
	}
	am := &alphaMemory{
		signature: sig,
		class:     ce.Class,
		consts:    append([]relation.Restriction(nil), ce.Consts...),
		disj:      append([]rules.DisjTest(nil), ce.Disj...),
		intra:     intra,
		items:     make(map[*WME]struct{}),
	}
	net.alphaBySig[sig] = am
	net.alphaByClass[ce.Class] = append(net.alphaByClass[ce.Class], am)
	return am
}

// addSuccessor registers a join-like node on an alpha memory, keeping
// successors sorted by descending CE index so that right activations of
// deeper nodes precede shallower ones (avoiding duplicate matches when a
// single WME feeds several levels of one rule).
func (am *alphaMemory) addSuccessor(s amemSuccessor) {
	am.successors = append(am.successors, s)
	sort.SliceStable(am.successors, func(i, j int) bool {
		return am.successors[i].ceIndex() > am.successors[j].ceIndex()
	})
}

// compileRule builds (or, with sharing, reuses) the beta chain for one
// rule and hangs the rule's production node off its end.
func (net *Network) compileRule(r *rules.Rule) {
	// binder maps each variable to its binding CE level and position.
	type binder struct{ level, pos int }
	binders := map[string]binder{}

	// current token store feeding the next join, and the adapter to
	// attach a child. Attaching a sink replays the store's current tokens
	// so that nodes wired after tokens exist (the dummy top token, or
	// tokens created while compiling a chain of negated condition
	// elements) see them.
	var curStore tokenStore
	var attach func(child tokenSink)

	top := net.top
	curStore = top
	attach = func(c tokenSink) {
		top.children = append(top.children, c)
		c.tokenAdded(net.dummyTop)
	}

	// chainStores records the store reached after each CE for the
	// integrity auditor.
	chainStores := make([]tokenStore, 0, len(r.CEs))

	prefixSig := "⊤"
	for i, ce := range r.CEs {
		// Split this CE's variable tests into intra-CE tests (variable
		// bound within the same CE) and join tests against earlier CEs.
		var intra []intraTest
		var jtests []joinTest
		local := map[string]int{}
		for _, vt := range ce.VarTests {
			if b, ok := binders[vt.Var]; ok {
				jtests = append(jtests, joinTest{wmePos: vt.Pos, tokLevel: b.level, tokPos: b.pos, op: vt.Op})
				continue
			}
			if p, ok := local[vt.Var]; ok {
				intra = append(intra, intraTest{p1: vt.Pos, p2: p, op: vt.Op})
				continue
			}
			// Binding occurrence within this CE.
			local[vt.Var] = vt.Pos
		}
		am := net.buildAlpha(ce, intra)

		// The prefix signature names everything that determines this
		// step's behaviour: the alpha chain, the join tests (positional,
		// so variable spelling does not matter), and negation.
		prefixSig = fmt.Sprintf("%s→%s%v¬%v", prefixSig, am.signature, jtests, ce.Negated)
		if net.share {
			if cached, ok := net.chains[prefixSig]; ok {
				cached.node.addOwner(r)
				curStore = cached.store
				attach = cached.attach
				chainStores = append(chainStores, curStore)
				for v, p := range local {
					binders[v] = binder{level: i, pos: p}
				}
				continue
			}
		}

		if ce.Negated {
			neg := newNegativeNode(net, am, jtests, i, r)
			// Wire: the previous store's join... a negated CE needs no
			// separate join node; the negative node consumes tokens from
			// the previous node directly.
			attach(neg)
			am.addSuccessor(neg)
			curStore = neg
			attach = func(c tokenSink) {
				neg.children = append(neg.children, c)
				neg.eachToken(c.tokenAdded)
			}
			if net.share {
				net.chains[prefixSig] = &chainStep{store: curStore, attach: attach, node: neg}
			}
			chainStores = append(chainStores, curStore)
			continue
		}

		// Positive CE: join node between current store and the alpha
		// memory, feeding a fresh beta memory.
		j := &joinNode{net: net, parent: curStore, amem: am, tests: jtests, ce: i, owners: []*rules.Rule{r}}
		attach(j)
		am.addSuccessor(j)
		bm := newBetaMemory(net)
		j.child = bm
		curStore = bm
		attach = func(c tokenSink) {
			bm.children = append(bm.children, c)
			bm.eachToken(c.tokenAdded)
		}
		if net.share {
			net.chains[prefixSig] = &chainStep{store: curStore, attach: attach, node: j}
		}
		chainStores = append(chainStores, curStore)
		// Record binders for variables first bound here.
		for v, p := range local {
			binders[v] = binder{level: i, pos: p}
		}
	}
	// The production node hangs off the chain's final store.
	pn := newPNode(net, r)
	attach(pn)
	net.pnodes = append(net.pnodes, pn)
	net.ruleChains = append(net.ruleChains, &ruleChain{rule: r, stores: chainStores, pn: pn})
}

// Insert implements match.Matcher: the WME enters through the root and
// flows down the discrimination network.
func (net *Network) Insert(class string, id relation.TupleID, t relation.Tuple) error {
	key := wmeKey{class, id}
	if _, dup := net.wmes[key]; dup {
		return fmt.Errorf("rete: duplicate insert of %s:%d", class, id)
	}
	w := &WME{Class: class, ID: id, Tuple: t.Clone()}
	net.wmes[key] = w
	if !net.tr.Enabled() {
		for _, am := range net.alphaByClass[class] {
			net.stats.Inc(metrics.NodeActivations) // one-input node check
			if !am.matches(w) {
				continue
			}
			am.items[w] = struct{}{}
			w.amems = append(w.amems, am)
			for _, s := range am.successors {
				s.rightActivate(w)
			}
		}
		return nil
	}
	// Traced path: alpha-test time is accumulated across the class's
	// memories into one cond_scan (alpha chains are shared between rules,
	// so the scan is not attributable to a single rule); each successor
	// right activation is a join evaluation attributed to its owner.
	tStart := net.tr.Now()
	var checked int64
	var scanDur time.Duration
	for _, am := range net.alphaByClass[class] {
		net.stats.Inc(metrics.NodeActivations) // one-input node check
		t0 := net.tr.Now()
		pass := am.matches(w)
		scanDur += net.tr.Now() - t0
		checked++
		if !pass {
			continue
		}
		am.items[w] = struct{}{}
		w.amems = append(w.amems, am)
		for _, s := range am.successors {
			tj := net.tr.Now()
			s.rightActivate(w)
			net.emitJoinEval(s, tj, net.tr.Now()-tj, class, uint64(id), 1)
		}
	}
	net.tr.Emit(trace.Event{
		Kind: trace.KindCondScan, At: tStart, Dur: scanDur,
		CE: -1, Class: class, ID: uint64(id), Count: checked,
	})
	return nil
}

// emitJoinEval attributes one right activation's duration to the
// node's owner rules, split evenly — under beta-prefix sharing the
// join work is genuinely shared between them.
func (net *Network) emitJoinEval(s amemSuccessor, at, dur time.Duration, class string, id uint64, count int64) {
	owners := s.ownerRules()
	if len(owners) == 0 {
		return
	}
	share := dur / time.Duration(len(owners))
	for _, r := range owners {
		net.tr.Emit(trace.Event{
			Kind: trace.KindJoinEval, At: at, Dur: share,
			Rule: r.Name, CE: s.ceIndex(), Class: class, ID: id, Count: count,
		})
	}
}

// Delete implements match.Matcher: tree-based removal of every partial
// match involving the WME, plus unblocking of negative-node tokens.
func (net *Network) Delete(class string, id relation.TupleID, _ relation.Tuple) error {
	key := wmeKey{class, id}
	w, ok := net.wmes[key]
	if !ok {
		return fmt.Errorf("rete: delete of unknown WME %s:%d", class, id)
	}
	delete(net.wmes, key)
	for _, am := range w.amems {
		delete(am.items, w)
	}
	for len(w.tokens) > 0 {
		net.deleteTokenTree(w.tokens[len(w.tokens)-1])
	}
	// Unblock negative tokens that depended on this WME.
	jrs := w.negJRs
	w.negJRs = nil
	for _, jr := range jrs {
		t := jr.owner
		t.joinResults = removeJR(t.joinResults, jr)
		if len(t.joinResults) == 0 {
			if neg, ok := t.owner.(*negativeNode); ok {
				for _, c := range neg.children {
					c.tokenAdded(t)
				}
			}
		}
	}
	return nil
}

func removeJR(list []*negJoinResult, jr *negJoinResult) []*negJoinResult {
	for i, x := range list {
		if x == jr {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// deleteDescendants removes the children of t (used when a negative node
// token becomes blocked: the token itself stays).
func (net *Network) deleteDescendants(t *token) {
	for len(t.children) > 0 {
		net.deleteTokenTree(t.children[len(t.children)-1])
	}
}

// deleteTokenTree removes a token and everything derived from it.
func (net *Network) deleteTokenTree(t *token) {
	net.deleteDescendants(t)
	t.owner.removeToken(t)
	net.stats.Inc(metrics.TokensDeleted)
	if t.parent != nil {
		t.parent.children = removeTok(t.parent.children, t)
	}
	if t.wme != nil {
		t.wme.tokens = removeTok(t.wme.tokens, t)
	}
	for _, jr := range t.joinResults {
		jr.wme.negJRs = removeJR(jr.wme.negJRs, jr)
	}
	t.joinResults = nil
}

func removeTok(list []*token, t *token) []*token {
	for i, x := range list {
		if x == t {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// addInstantiation converts a complete token into a conflict-set entry.
func (net *Network) addInstantiation(r *rules.Rule, t *token) {
	ids := make([]relation.TupleID, len(r.CEs))
	tuples := make([]relation.Tuple, len(r.CEs))
	for cur := t; cur != nil; cur = cur.parent {
		if cur.level >= 0 && cur.wme != nil {
			ids[cur.level] = cur.wme.ID
			tuples[cur.level] = cur.wme.Tuple
		}
	}
	b := rules.Bindings{}
	for i, ce := range r.CEs {
		if tuples[i] == nil {
			continue
		}
		nb, ok := ce.MatchWith(tuples[i], b)
		if !ok {
			// The network guarantees consistency; a failure here would be
			// a compiler bug, so fail loudly in tests via a zero binding.
			continue
		}
		b = nb
	}
	net.cs.Add(&conflict.Instantiation{Rule: r, TupleIDs: ids, Tuples: tuples, Bindings: b})
}

// removeInstantiation retracts the conflict-set entry for a dying token.
func (net *Network) removeInstantiation(r *rules.Rule, t *token) {
	ids := make([]relation.TupleID, len(r.CEs))
	for cur := t; cur != nil; cur = cur.parent {
		if cur.level >= 0 && cur.wme != nil {
			ids[cur.level] = cur.wme.ID
		}
	}
	in := &conflict.Instantiation{Rule: r, TupleIDs: ids}
	net.cs.Remove(in.Key())
}

// TokenCount reports the number of stored tokens across beta memories,
// negative nodes and production nodes — the redundant storage the paper
// attributes to the Rete network (§2.2).
func (net *Network) TokenCount() int {
	n := 0
	seen := map[*betaMemory]bool{}
	var walk func(s tokenSink)
	walk = func(s tokenSink) {
		switch x := s.(type) {
		case *joinNode:
			switch c := x.child.(type) {
			case *betaMemory:
				if !seen[c] {
					seen[c] = true
					n += len(c.items)
					for _, ch := range c.children {
						walk(ch)
					}
				}
			case *negativeNode:
				n += len(c.items)
				for _, ch := range c.children {
					walk(ch)
				}
			case *pnode:
				n += len(c.items)
			}
		case *negativeNode:
			n += len(x.items)
			for _, ch := range x.children {
				walk(ch)
			}
		case *pnode:
			n += len(x.items)
		}
	}
	for _, ams := range net.alphaByClass {
		for _, am := range ams {
			n += len(am.items)
			for _, s := range am.successors {
				if ts, ok := s.(tokenSink); ok {
					walk(ts)
				}
			}
		}
	}
	return n
}
