package rete

import (
	"fmt"
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

func build(t *testing.T, src string) (*Network, *conflict.Set, *metrics.Set) {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	stats := &metrics.Set{}
	cs := conflict.NewSet(stats)
	return New(set, cs, stats), cs, stats
}

const payrollSrc = `
(literalize Emp name age salary dno manager)
(literalize Dept dno dname floor manager)

(p R1
    (Emp ^name Mike ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
  -->
    (remove 1))

(p R2
    (Emp ^dno <D>)
    (Dept ^dno <D> ^dname Toy ^floor 1)
  -->
    (remove 1))
`

func emp(name string, age, salary, dno int64, mgr string) relation.Tuple {
	return relation.Tuple{
		value.OfSym(name), value.OfInt(age), value.OfInt(salary),
		value.OfInt(dno), value.OfSym(mgr),
	}
}

func dept(dno int64, dname string, floor int64, mgr string) relation.Tuple {
	return relation.Tuple{value.OfInt(dno), value.OfSym(dname), value.OfInt(floor), value.OfSym(mgr)}
}

func TestPaperExample3R1(t *testing.T) {
	net, cs, _ := build(t, payrollSrc)
	// Mike earns 1000, his manager Sam earns 900 → R1 applies.
	net.Insert("Emp", 1, emp("Mike", 30, 1000, 1, "Sam"))
	if cs.Len() != 0 {
		t.Fatalf("premature instantiation: %v", cs.Keys())
	}
	net.Insert("Emp", 2, emp("Sam", 50, 900, 1, "Pat"))
	keys := cs.Keys()
	if len(keys) != 1 || keys[0] != "R1|1|2" {
		t.Fatalf("conflict set = %v", keys)
	}
	in := cs.Items()[0]
	if !value.Equal(in.Bindings["S"], value.OfInt(1000)) ||
		!value.Equal(in.Bindings["S1"], value.OfInt(900)) ||
		!value.Equal(in.Bindings["M"], value.OfSym("Sam")) {
		t.Fatalf("bindings = %v", in.Bindings)
	}
}

func TestPaperExample3R1RightThenLeft(t *testing.T) {
	// Order reversed: the token queues at the two-input node waiting for
	// a future arrival (paper §3.1).
	net, cs, _ := build(t, payrollSrc)
	net.Insert("Emp", 1, emp("Sam", 50, 900, 1, "Pat"))
	if cs.Len() != 0 {
		t.Fatalf("premature: %v", cs.Keys())
	}
	net.Insert("Emp", 2, emp("Mike", 30, 1000, 1, "Sam"))
	if keys := cs.Keys(); len(keys) != 1 || keys[0] != "R1|2|1" {
		t.Fatalf("conflict set = %v", keys)
	}
}

func TestPaperExample3R1NoMatch(t *testing.T) {
	net, cs, _ := build(t, payrollSrc)
	net.Insert("Emp", 1, emp("Mike", 30, 1000, 1, "Sam"))
	net.Insert("Emp", 2, emp("Sam", 50, 1500, 1, "Pat")) // Sam earns more
	if cs.Len() != 0 {
		t.Fatalf("R1 should not fire: %v", cs.Keys())
	}
}

func TestPaperExample3R2(t *testing.T) {
	net, cs, _ := build(t, payrollSrc)
	net.Insert("Emp", 1, emp("Ann", 25, 500, 7, "Sam"))
	net.Insert("Dept", 1, dept(7, "Toy", 1, "Sam"))
	if keys := cs.Keys(); len(keys) != 1 || keys[0] != "R2|1|1" {
		t.Fatalf("conflict set = %v", keys)
	}
	// A Shoe department on floor 1 does not trigger R2.
	net.Insert("Dept", 2, dept(7, "Shoe", 1, "Sam"))
	if cs.Len() != 1 {
		t.Fatalf("Shoe dept should not add: %v", cs.Keys())
	}
	// Another employee in dept 7 adds a second instantiation.
	net.Insert("Emp", 2, emp("Bob", 30, 600, 7, "Sam"))
	if cs.Len() != 2 {
		t.Fatalf("conflict set = %v", cs.Keys())
	}
}

func TestDeleteRetracts(t *testing.T) {
	net, cs, _ := build(t, payrollSrc)
	net.Insert("Emp", 1, emp("Ann", 25, 500, 7, "x"))
	net.Insert("Dept", 2, dept(7, "Toy", 1, "x"))
	if cs.Len() != 1 {
		t.Fatalf("setup failed: %v", cs.Keys())
	}
	if err := net.Delete("Dept", 2, nil); err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 0 {
		t.Fatalf("retraction failed: %v", cs.Keys())
	}
	// Reinsert: fires again (new tuple id → new instantiation).
	net.Insert("Dept", 3, dept(7, "Toy", 1, "x"))
	if keys := cs.Keys(); len(keys) != 1 || keys[0] != "R2|1|3" {
		t.Fatalf("re-fire failed: %v", keys)
	}
}

func TestDeleteLeftSideRetracts(t *testing.T) {
	net, cs, _ := build(t, payrollSrc)
	net.Insert("Emp", 1, emp("Ann", 25, 500, 7, "x"))
	net.Insert("Dept", 2, dept(7, "Toy", 1, "x"))
	net.Delete("Emp", 1, nil)
	if cs.Len() != 0 {
		t.Fatalf("left-side retraction failed: %v", cs.Keys())
	}
}

func TestInsertDeleteErrors(t *testing.T) {
	net, _, _ := build(t, payrollSrc)
	net.Insert("Emp", 1, emp("A", 1, 1, 1, "x"))
	if err := net.Insert("Emp", 1, emp("B", 2, 2, 2, "y")); err == nil {
		t.Error("duplicate insert should error")
	}
	if err := net.Delete("Emp", 99, nil); err == nil {
		t.Error("unknown delete should error")
	}
	// Unknown classes flow through the root and are discarded.
	if err := net.Insert("Ghost", 5, relation.Tuple{value.OfInt(1)}); err != nil {
		t.Errorf("unknown class insert should be a no-op: %v", err)
	}
}

const threeWaySrc = `
(literalize A a1 a2 a3)
(literalize B b1 b2 b3)
(literalize C c1 c2 c3)
(p Rule-1
    (A ^a1 <x> ^a2 a ^a3 <z>)
    (B ^b1 <x> ^b2 <y> ^b3 b)
    (C ^c1 c ^c2 <y> ^c3 <z>)
  -->
    (halt))
`

func abc(v1, v2, v3 value.V) relation.Tuple { return relation.Tuple{v1, v2, v3} }

func TestPaperExample5ThreeWayJoin(t *testing.T) {
	// The insertion sequence of Example 5: B(4,5,b), C(c,7,8), A(4,a,8),
	// B(4,7,b). Only after the last insert does Rule-1 enter the conflict
	// set.
	net, cs, _ := build(t, threeWaySrc)
	net.Insert("B", 1, abc(value.OfInt(4), value.OfInt(5), value.OfSym("b")))
	net.Insert("C", 2, abc(value.OfSym("c"), value.OfInt(7), value.OfInt(8)))
	net.Insert("A", 3, abc(value.OfInt(4), value.OfSym("a"), value.OfInt(8)))
	if cs.Len() != 0 {
		t.Fatalf("premature fire: %v", cs.Keys())
	}
	net.Insert("B", 4, abc(value.OfInt(4), value.OfInt(7), value.OfSym("b")))
	keys := cs.Keys()
	if len(keys) != 1 || keys[0] != "Rule-1|3|4|2" {
		t.Fatalf("conflict set = %v", keys)
	}
	b := cs.Items()[0].Bindings
	if !value.Equal(b["x"], value.OfInt(4)) || !value.Equal(b["y"], value.OfInt(7)) || !value.Equal(b["z"], value.OfInt(8)) {
		t.Fatalf("bindings = %v", b)
	}
}

func TestThreeWayJoinAllOrders(t *testing.T) {
	// The final conflict set must be order-independent.
	type ins struct {
		class string
		id    relation.TupleID
		tup   relation.Tuple
	}
	base := []ins{
		{"A", 1, abc(value.OfInt(4), value.OfSym("a"), value.OfInt(8))},
		{"B", 2, abc(value.OfInt(4), value.OfInt(7), value.OfSym("b"))},
		{"C", 3, abc(value.OfSym("c"), value.OfInt(7), value.OfInt(8))},
	}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		net, cs, _ := build(t, threeWaySrc)
		for _, i := range perm {
			net.Insert(base[i].class, base[i].id, base[i].tup)
		}
		if keys := cs.Keys(); len(keys) != 1 || keys[0] != "Rule-1|1|2|3" {
			t.Fatalf("perm %v: conflict set = %v", perm, keys)
		}
	}
}

func TestSameClassSelfJoinNoDuplicates(t *testing.T) {
	// One WME matching two condition elements of the same rule must
	// produce exactly one instantiation pairing it with itself.
	net, cs, _ := build(t, `
(literalize A x y)
(p Self (A ^x <v>) (A ^y <v>) --> (halt))`)
	net.Insert("A", 1, relation.Tuple{value.OfInt(3), value.OfInt(3)})
	if keys := cs.Keys(); len(keys) != 1 || keys[0] != "Self|1|1" {
		t.Fatalf("conflict set = %v", keys)
	}
	// A second WME (5,3) matches CE1 with v=5 (pairs with nothing) and
	// CE2 with v=3 (pairs with WME 1).
	net.Insert("A", 2, relation.Tuple{value.OfInt(5), value.OfInt(3)})
	want := map[string]bool{"Self|1|1": true, "Self|1|2": true}
	keys := cs.Keys()
	if len(keys) != 2 || !want[keys[0]] || !want[keys[1]] {
		t.Fatalf("conflict set = %v", keys)
	}
}

func TestIntraCEVariableRepetition(t *testing.T) {
	net, cs, _ := build(t, `
(literalize A x y)
(p Eq (A ^x <v> ^y <v>) --> (halt))`)
	net.Insert("A", 1, relation.Tuple{value.OfInt(3), value.OfInt(4)})
	if cs.Len() != 0 {
		t.Fatalf("x≠y should not match: %v", cs.Keys())
	}
	net.Insert("A", 2, relation.Tuple{value.OfInt(7), value.OfInt(7)})
	if keys := cs.Keys(); len(keys) != 1 || keys[0] != "Eq|2" {
		t.Fatalf("conflict set = %v", keys)
	}
}

func TestNegationBasic(t *testing.T) {
	net, cs, _ := build(t, `
(literalize Emp name dno)
(literalize Dept dno)
(p Orphan (Emp ^name <n> ^dno <d>) - (Dept ^dno <d>) --> (halt))`)
	net.Insert("Emp", 1, relation.Tuple{value.OfSym("Ann"), value.OfInt(7)})
	if keys := cs.Keys(); len(keys) != 1 || keys[0] != "Orphan|1|0" {
		t.Fatalf("negation should fire with no Dept: %v", keys)
	}
	// Insert the blocker: retract.
	net.Insert("Dept", 2, relation.Tuple{value.OfInt(7)})
	if cs.Len() != 0 {
		t.Fatalf("blocker should retract: %v", cs.Keys())
	}
	// A non-matching Dept does not block.
	net.Insert("Dept", 3, relation.Tuple{value.OfInt(9)})
	if cs.Len() != 0 {
		t.Fatalf("still blocked: %v", cs.Keys())
	}
	// Remove the blocker: fires again.
	net.Delete("Dept", 2, nil)
	if keys := cs.Keys(); len(keys) != 1 || keys[0] != "Orphan|1|0" {
		t.Fatalf("unblocking should re-fire: %v", keys)
	}
	// Deleting the employee retracts.
	net.Delete("Emp", 1, nil)
	if cs.Len() != 0 {
		t.Fatalf("emp deletion should retract: %v", cs.Keys())
	}
}

func TestNegationBlockerFirst(t *testing.T) {
	net, cs, _ := build(t, `
(literalize Emp name dno)
(literalize Dept dno)
(p Orphan (Emp ^name <n> ^dno <d>) - (Dept ^dno <d>) --> (halt))`)
	net.Insert("Dept", 1, relation.Tuple{value.OfInt(7)})
	net.Insert("Emp", 2, relation.Tuple{value.OfSym("Ann"), value.OfInt(7)})
	if cs.Len() != 0 {
		t.Fatalf("pre-existing blocker: %v", cs.Keys())
	}
	net.Delete("Dept", 1, nil)
	if cs.Len() != 1 {
		t.Fatalf("unblock failed: %v", cs.Keys())
	}
}

func TestNegationMultipleBlockers(t *testing.T) {
	net, cs, _ := build(t, `
(literalize Emp dno)
(literalize Dept dno)
(p Orphan (Emp ^dno <d>) - (Dept ^dno <d>) --> (halt))`)
	net.Insert("Emp", 1, relation.Tuple{value.OfInt(7)})
	net.Insert("Dept", 2, relation.Tuple{value.OfInt(7)})
	net.Insert("Dept", 3, relation.Tuple{value.OfInt(7)})
	if cs.Len() != 0 {
		t.Fatal("blocked")
	}
	net.Delete("Dept", 2, nil)
	if cs.Len() != 0 {
		t.Fatalf("one blocker remains: %v", cs.Keys())
	}
	net.Delete("Dept", 3, nil)
	if cs.Len() != 1 {
		t.Fatalf("all blockers gone: %v", cs.Keys())
	}
}

func TestNegatedFirstCE(t *testing.T) {
	net, cs, _ := build(t, `
(literalize Halted flag)
(literalize Task name)
(p Start - (Halted ^flag 1) (Task ^name <n>) --> (halt))`)
	net.Insert("Task", 1, relation.Tuple{value.OfSym("t1")})
	if keys := cs.Keys(); len(keys) != 1 || keys[0] != "Start|0|1" {
		t.Fatalf("negated-first should fire: %v", keys)
	}
	net.Insert("Halted", 2, relation.Tuple{value.OfInt(1)})
	if cs.Len() != 0 {
		t.Fatalf("halted flag should block: %v", cs.Keys())
	}
	net.Delete("Halted", 2, nil)
	if cs.Len() != 1 {
		t.Fatalf("unhalt should re-fire: %v", cs.Keys())
	}
}

func TestTrailingNegatedCE(t *testing.T) {
	net, cs, _ := build(t, `
(literalize A x)
(literalize B x)
(p NoB (A ^x <v>) - (B ^x <v>) --> (halt))`)
	net.Insert("A", 1, relation.Tuple{value.OfInt(5)})
	if cs.Len() != 1 {
		t.Fatalf("trailing negation: %v", cs.Keys())
	}
}

func TestDoubleNegation(t *testing.T) {
	net, cs, _ := build(t, `
(literalize A x)
(literalize B x)
(literalize C x)
(p R (A ^x <v>) - (B ^x <v>) - (C ^x <v>) --> (halt))`)
	net.Insert("A", 1, relation.Tuple{value.OfInt(5)})
	if cs.Len() != 1 {
		t.Fatalf("both absent: %v", cs.Keys())
	}
	net.Insert("B", 2, relation.Tuple{value.OfInt(5)})
	if cs.Len() != 0 {
		t.Fatal("B blocks")
	}
	net.Insert("C", 3, relation.Tuple{value.OfInt(5)})
	net.Delete("B", 2, nil)
	if cs.Len() != 0 {
		t.Fatalf("C still blocks: %v", cs.Keys())
	}
	net.Delete("C", 3, nil)
	if cs.Len() != 1 {
		t.Fatalf("both gone: %v", cs.Keys())
	}
}

func TestAlphaMemorySharing(t *testing.T) {
	// PlusOX and TimesOX share the Goal alpha path (paper Figure 3).
	set, _, err := rules.CompileSource(`
(literalize Goal type object)
(literalize Expression name arg1 op arg2)
(p PlusOX
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op + ^arg2 <X>)
  -->
    (modify 2 ^op nil ^arg1 nil))
(p TimesOX
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op * ^arg2 <X>)
  -->
    (modify 2 ^op nil ^arg1 nil))`)
	if err != nil {
		t.Fatal(err)
	}
	net := New(set, conflict.NewSet(nil), nil)
	// Goal alpha memory shared: 3 distinct signatures total (1 Goal + 2
	// Expression).
	if got := len(net.alphaBySig); got != 3 {
		t.Fatalf("alpha memories = %d, want 3 (Goal shared)", got)
	}
	cs := net.cs
	net.Insert("Goal", 1, relation.Tuple{value.OfSym("Simplify"), value.OfSym("e1")})
	net.Insert("Expression", 2, relation.Tuple{value.OfSym("e1"), value.OfInt(0), value.OfSym("+"), value.OfInt(9)})
	if keys := cs.Keys(); len(keys) != 1 || keys[0] != "PlusOX|1|2" {
		t.Fatalf("conflict set = %v", keys)
	}
	net.Insert("Expression", 3, relation.Tuple{value.OfSym("e1"), value.OfInt(0), value.OfSym("*"), value.OfInt(9)})
	if cs.Len() != 2 {
		t.Fatalf("TimesOX should also fire: %v", cs.Keys())
	}
}

func TestTokenCountGrowsAndShrinks(t *testing.T) {
	net, _, stats := build(t, payrollSrc)
	if net.TokenCount() != 0 {
		t.Fatalf("initial TokenCount = %d", net.TokenCount())
	}
	net.Insert("Emp", 1, emp("Mike", 30, 1000, 1, "Sam"))
	net.Insert("Emp", 2, emp("Sam", 50, 900, 1, "Pat"))
	grown := net.TokenCount()
	if grown == 0 {
		t.Fatal("TokenCount should grow")
	}
	net.Delete("Emp", 1, nil)
	net.Delete("Emp", 2, nil)
	if got := net.TokenCount(); got != 0 {
		t.Fatalf("TokenCount after deletes = %d", got)
	}
	if stats.Get(metrics.TokensDeleted) == 0 {
		t.Error("TokensDeleted not counted")
	}
}

func TestNodeActivationsCounted(t *testing.T) {
	net, _, stats := build(t, payrollSrc)
	net.Insert("Emp", 1, emp("Mike", 30, 1000, 1, "Sam"))
	if stats.Get(metrics.NodeActivations) == 0 {
		t.Error("NodeActivations not counted")
	}
}

func TestComparisonJoinOperators(t *testing.T) {
	// Join with > instead of = (non-equi join through the network).
	net, cs, _ := build(t, `
(literalize A x)
(literalize B y)
(p Gt (A ^x <v>) (B ^y > <v>) --> (halt))`)
	net.Insert("A", 1, relation.Tuple{value.OfInt(5)})
	net.Insert("B", 2, relation.Tuple{value.OfInt(3)})
	if cs.Len() != 0 {
		t.Fatal("3 > 5 should not match")
	}
	net.Insert("B", 3, relation.Tuple{value.OfInt(9)})
	if keys := cs.Keys(); len(keys) != 1 || keys[0] != "Gt|1|3" {
		t.Fatalf("conflict set = %v", keys)
	}
}

func TestManyInstantiationsCrossProduct(t *testing.T) {
	net, cs, _ := build(t, `
(literalize A x)
(literalize B x)
(p Cross (A ^x <v>) (B ^x <v>) --> (halt))`)
	for i := 1; i <= 3; i++ {
		net.Insert("A", relation.TupleID(i), relation.Tuple{value.OfInt(1)})
	}
	for i := 4; i <= 6; i++ {
		net.Insert("B", relation.TupleID(i), relation.Tuple{value.OfInt(1)})
	}
	if cs.Len() != 9 {
		t.Fatalf("cross product size = %d, want 9", cs.Len())
	}
	net.Delete("A", 1, nil)
	if cs.Len() != 6 {
		t.Fatalf("after delete = %d, want 6", cs.Len())
	}
}

func TestDeepChainPropagation(t *testing.T) {
	// A chain C1 ∧ C2 ∧ ... ∧ Cn as in Figure 1.
	const n = 8
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("(literalize K%d v w)\n", i)
	}
	src += "(p Chain\n"
	src += "    (K0 ^v <x0> ^w <x1>)\n"
	for i := 1; i < n; i++ {
		src += fmt.Sprintf("    (K%d ^v <x%d> ^w <x%d>)\n", i, i, i+1)
	}
	src += "  --> (halt))"
	net, cs, _ := build(t, src)
	for i := 0; i < n; i++ {
		net.Insert(fmt.Sprintf("K%d", i), relation.TupleID(i+1),
			relation.Tuple{value.OfInt(int64(i)), value.OfInt(int64(i + 1))})
	}
	if cs.Len() != 1 {
		t.Fatalf("chain should complete: %v", cs.Keys())
	}
	// Break the middle link.
	net.Delete("K4", 5, nil)
	if cs.Len() != 0 {
		t.Fatalf("broken chain should retract: %v", cs.Keys())
	}
}

func TestNameAndConflictSetAccessors(t *testing.T) {
	net, cs, _ := build(t, payrollSrc)
	if net.Name() != "rete" {
		t.Errorf("Name = %q", net.Name())
	}
	if net.ConflictSet() != cs {
		t.Error("ConflictSet accessor mismatch")
	}
}
