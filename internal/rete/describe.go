package rete

import (
	"fmt"
	"sort"
	"strings"
)

// Describe renders the compiled discrimination network as indented text,
// reproducing the structure of the paper's Figures 1 and 3: the root,
// the one-input (alpha) chains per class, and each rule's chain of
// two-input join nodes down to its production node. Shared alpha memories
// are listed once with every successor.
func (net *Network) Describe() string {
	var b strings.Builder
	b.WriteString("root\n")
	classes := make([]string, 0, len(net.alphaByClass))
	for c := range net.alphaByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Fprintf(&b, "├─ class %s\n", class)
		ams := net.alphaByClass[class]
		for _, am := range ams {
			cond := strings.TrimPrefix(am.signature, class+"§")
			if cond == "" {
				cond = "(no one-input tests)"
			}
			fmt.Fprintf(&b, "│  ├─ one-input chain %s → alpha memory [%d WMEs]\n", cond, len(am.items))
			for _, s := range am.successors {
				switch n := s.(type) {
				case *joinNode:
					fmt.Fprintf(&b, "│  │   └─ two-input node (CE %d of %s, %d join tests)\n",
						n.ce+1, ruleOf(n), len(n.tests))
				case *negativeNode:
					fmt.Fprintf(&b, "│  │   └─ negative node (CE %d, %d join tests)\n",
						n.ce+1, len(n.tests))
				}
			}
		}
	}
	b.WriteString("production nodes:\n")
	for _, pn := range net.pnodes {
		fmt.Fprintf(&b, "└─ P[%s] (%d condition elements, %d live instantiations)\n",
			pn.rule.Name, len(pn.rule.CEs), len(pn.items))
	}
	return b.String()
}

// ruleOf names the rule a join node belongs to by following its chain to
// the production node.
func ruleOf(j *joinNode) string {
	switch c := j.child.(type) {
	case *pnode:
		return c.rule.Name
	case *betaMemory:
		for _, ch := range c.children {
			switch n := ch.(type) {
			case *joinNode:
				return ruleOf(n)
			case *negativeNode:
				return ruleOfNeg(n)
			case *pnode:
				return n.rule.Name
			}
		}
	case *negativeNode:
		return ruleOfNeg(c)
	}
	return "?"
}

func ruleOfNeg(n *negativeNode) string {
	for _, ch := range n.children {
		switch c := ch.(type) {
		case *joinNode:
			return ruleOf(c)
		case *pnode:
			return c.rule.Name
		case *negativeNode:
			return ruleOfNeg(c)
		}
	}
	return "?"
}

// Depth returns the length of the longest join chain in the network —
// the propagation depth the paper's Figure 1 visualizes and E1 measures.
func (net *Network) Depth() int {
	max := 0
	for _, pn := range net.pnodes {
		if n := len(pn.rule.CEs); n > max {
			max = n
		}
	}
	return max
}
