package rete

import (
	"fmt"
	"time"

	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/trace"
)

// This file is the Rete network's set-oriented path: a batch of
// same-class WMEs is pushed through each alpha memory once, and each
// join-like successor is right-activated with the whole batch — one pass
// over the parent token store per batch instead of one per WME. The
// successor ordering invariant (deeper condition elements first) applies
// to the batch exactly as it does to a single WME, so no duplicate
// partial matches arise: tokens created while draining the batch at level
// k pair with batch WMEs only through the tokenAdded cascade, never
// through a right activation that already ran.

// batchSuccessor is an alpha-memory successor with a native batch right
// activation.
type batchSuccessor interface {
	rightActivateBatch(ws []*WME)
}

// rightActivateBatch pairs every parent token with every batch WME in a
// single sweep of the parent store.
func (j *joinNode) rightActivateBatch(ws []*WME) {
	j.parent.eachToken(func(t *token) {
		for _, w := range ws {
			if j.performTests(t, w) {
				j.child.leftActivate(t, w, j.ce)
			}
		}
	})
}

// rightActivateBatch blocks stored tokens against the whole batch in one
// sweep: a token's descendants are deleted at most once however many
// batch WMEs block it.
func (n *negativeNode) rightActivateBatch(ws []*WME) {
	for t := range n.items {
		for _, w := range ws {
			if !n.performTests(t, w) {
				continue
			}
			if len(t.joinResults) == 0 {
				n.net.deleteDescendants(t)
			}
			jr := &negJoinResult{owner: t, wme: w}
			t.joinResults = append(t.joinResults, jr)
			w.negJRs = append(w.negJRs, jr)
		}
	}
}

// InsertBatch implements match.BatchMatcher: the batch enters the
// network as a token set, amortizing the alpha checks and the beta-memory
// sweeps over every WME in the batch.
func (net *Network) InsertBatch(class string, entries []relation.DeltaEntry) error {
	wmes := make([]*WME, 0, len(entries))
	for _, e := range entries {
		key := wmeKey{class, e.ID}
		if _, dup := net.wmes[key]; dup {
			return fmt.Errorf("rete: duplicate insert of %s:%d", class, e.ID)
		}
		w := &WME{Class: class, ID: e.ID, Tuple: e.Tuple.Clone()}
		net.wmes[key] = w
		wmes = append(wmes, w)
	}
	traced := net.tr.Enabled()
	tStart := net.tr.Now()
	var checked int64
	var scanDur time.Duration
	batch := make([]*WME, 0, len(wmes))
	for _, am := range net.alphaByClass[class] {
		batch = batch[:0]
		t0 := net.tr.Now()
		for _, w := range wmes {
			net.stats.Inc(metrics.NodeActivations) // one-input node check
			checked++
			if !am.matches(w) {
				continue
			}
			am.items[w] = struct{}{}
			w.amems = append(w.amems, am)
			batch = append(batch, w)
		}
		scanDur += net.tr.Now() - t0
		if len(batch) == 0 {
			continue
		}
		for _, s := range am.successors {
			tj := net.tr.Now()
			if bs, ok := s.(batchSuccessor); ok {
				bs.rightActivateBatch(batch)
			} else {
				for _, w := range batch {
					s.rightActivate(w)
				}
			}
			if traced {
				net.emitJoinEval(s, tj, net.tr.Now()-tj, class, 0, int64(len(batch)))
			}
		}
	}
	if traced {
		net.tr.Emit(trace.Event{
			Kind: trace.KindCondScan, At: tStart, Dur: scanDur,
			CE: -1, Class: class, Count: checked,
		})
	}
	return nil
}

// DeleteBatch implements match.BatchMatcher. All batch WMEs leave their
// alpha memories before any token tree is torn down, so the unblocking
// cascades at negative nodes never materialize transient tokens paired
// with a WME that is also dying in this batch.
func (net *Network) DeleteBatch(class string, entries []relation.DeltaEntry) error {
	wmes := make([]*WME, 0, len(entries))
	for _, e := range entries {
		key := wmeKey{class, e.ID}
		w, ok := net.wmes[key]
		if !ok {
			return fmt.Errorf("rete: delete of unknown WME %s:%d", class, e.ID)
		}
		delete(net.wmes, key)
		for _, am := range w.amems {
			delete(am.items, w)
		}
		wmes = append(wmes, w)
	}
	for _, w := range wmes {
		for len(w.tokens) > 0 {
			net.deleteTokenTree(w.tokens[len(w.tokens)-1])
		}
	}
	// Unblock negative tokens whose last blocker died with this batch.
	for _, w := range wmes {
		jrs := w.negJRs
		w.negJRs = nil
		for _, jr := range jrs {
			t := jr.owner
			t.joinResults = removeJR(t.joinResults, jr)
			if len(t.joinResults) == 0 {
				if neg, ok := t.owner.(*negativeNode); ok {
					for _, c := range neg.children {
						c.tokenAdded(t)
					}
				}
			}
		}
	}
	return nil
}
