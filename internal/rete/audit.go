package rete

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"prodsys/internal/audit"
	"prodsys/internal/joiner"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
)

// This file implements the integrity-audit hooks over the Rete network:
// every alpha memory, beta memory, negative node, and production node is
// diffed against the partial matches recomputed from the base WM
// relations by joining each rule's condition-element prefixes.

// tokenSignature renders the positive WM IDs of a token's chain as
// "level:id|…", ascending by level — the canonical name of the partial
// match the token represents.
func tokenSignature(t *token) string {
	type lv struct {
		level int
		id    relation.TupleID
	}
	var parts []lv
	for cur := t; cur != nil; cur = cur.parent {
		if cur.level >= 0 && cur.wme != nil {
			parts = append(parts, lv{cur.level, cur.wme.ID})
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].level < parts[j].level })
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d:%d", p.level, p.id)
	}
	return b.String()
}

// idsSignature is tokenSignature's counterpart for a join result: the
// IDs at the positive condition-element levels of the (possibly
// truncated) CE list.
func idsSignature(ces []*rules.CE, ids []relation.TupleID) string {
	var b strings.Builder
	first := true
	for i, ce := range ces {
		if ce.Negated {
			continue
		}
		if !first {
			b.WriteByte('|')
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", i, ids[i])
	}
	return b.String()
}

// AuditDerived implements audit.DerivedAuditor. Alpha memories are
// shared across rules, so they are audited only in full mode
// (only == nil); beta chains are audited per selected rule.
func (net *Network) AuditDerived(db *relation.DB, only map[string]bool, emit func(audit.Divergence)) {
	if only == nil {
		net.auditAlpha(db, emit)
	}
	for _, ch := range net.ruleChains {
		if only != nil && !only[ch.rule.Name] {
			continue
		}
		net.auditChain(db, ch, emit)
	}
}

// auditAlpha diffs every alpha memory (and the WME table itself)
// against the WM tuples passing its variable-free tests. Divergences
// carry no rule name — alpha memories are shared — which forces a full
// rebuild on repair.
func (net *Network) auditAlpha(db *relation.DB, emit func(audit.Divergence)) {
	sigs := make([]string, 0, len(net.alphaBySig))
	for s := range net.alphaBySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		am := net.alphaBySig[sig]
		actual := make(map[relation.TupleID]bool, len(am.items))
		for w := range am.items {
			actual[w.ID] = true
		}
		if rel, ok := db.Get(am.class); ok {
			var missing []relation.TupleID
			rel.Scan(func(id relation.TupleID, t relation.Tuple) bool {
				w := &WME{Class: am.class, ID: id, Tuple: t}
				if am.matches(w) {
					if !actual[id] {
						missing = append(missing, id)
					}
					delete(actual, id)
				}
				return true
			})
			for _, id := range missing {
				emit(audit.Divergence{Class: audit.DivAlphaMissing, CE: -1,
					Key:      fmt.Sprintf("%s id=%d", sig, id),
					Expected: "WME in alpha memory", Actual: "absent"})
			}
		}
		phantoms := make([]relation.TupleID, 0, len(actual))
		for id := range actual {
			phantoms = append(phantoms, id)
		}
		sort.Slice(phantoms, func(i, j int) bool { return phantoms[i] < phantoms[j] })
		for _, id := range phantoms {
			emit(audit.Divergence{Class: audit.DivAlphaPhantom, CE: -1,
				Key:      fmt.Sprintf("%s id=%d", sig, id),
				Expected: "absent", Actual: "WME in alpha memory"})
		}
	}
}

// auditChain diffs one rule's token stores — level by level — against
// the prefix joins recomputed from WM, then the production node against
// the full join.
func (net *Network) auditChain(db *relation.DB, ch *ruleChain, emit func(audit.Divergence)) {
	r := ch.rule
	for i := range r.CEs {
		prefix := *r
		prefix.CEs = r.CEs[:i+1]
		expected := map[string]int{}
		joiner.Enumerate(db, &prefix, nil, nil, net.stats, func(ids []relation.TupleID, _ []relation.Tuple, _ rules.Bindings) {
			expected[idsSignature(prefix.CEs, ids)]++
		})
		st := ch.stores[i]
		var toks []*token
		if neg, ok := st.(*negativeNode); ok {
			// Blocked tokens are legitimate internal state; only the
			// unblocked ones correspond to prefix matches.
			for _, t := range neg.allTokens() {
				if len(t.joinResults) == 0 {
					toks = append(toks, t)
				}
			}
		} else {
			toks = st.allTokens()
		}
		actual := map[string]int{}
		for _, t := range toks {
			actual[tokenSignature(t)]++
		}
		where := "beta memory"
		if _, ok := st.(*negativeNode); ok {
			where = "negative node"
		}
		diffSignatures(r, i, where, expected, actual, emit)
	}

	expected := map[string]int{}
	joiner.Enumerate(db, r, nil, nil, net.stats, func(ids []relation.TupleID, _ []relation.Tuple, _ rules.Bindings) {
		expected[idsSignature(r.CEs, ids)]++
	})
	actual := map[string]int{}
	for _, t := range ch.pn.allTokens() {
		actual[tokenSignature(t)]++
	}
	diffSignatures(r, -1, "production node", expected, actual, emit)
}

// diffSignatures emits token-missing/token-phantom divergences for the
// count differences between the recomputed and stored partial matches.
func diffSignatures(r *rules.Rule, ce int, where string, expected, actual map[string]int, emit func(audit.Divergence)) {
	keySet := map[string]bool{}
	for k := range expected {
		keySet[k] = true
	}
	for k := range actual {
		keySet[k] = true
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e, a := expected[k], actual[k]
		if e == a {
			continue
		}
		label := k
		if label == "" {
			label = "ε" // a match with no positive levels
		}
		if a < e {
			emit(audit.Divergence{Class: audit.DivTokenMissing, Rule: r.Name, CE: ce, Key: label,
				Expected: fmt.Sprintf("%d token(s) in %s", e, where),
				Actual:   fmt.Sprintf("%d", a)})
		} else {
			emit(audit.Divergence{Class: audit.DivTokenPhantom, Rule: r.Name, CE: ce, Key: label,
				Expected: fmt.Sprintf("%d token(s) in %s", e, where),
				Actual:   fmt.Sprintf("%d", a)})
		}
	}
}

// RebuildRules implements audit.DerivedRebuilder. Alpha and beta
// sharing make per-rule surgery unsafe, so the network is always
// recompiled in full — only is ignored — and every WM tuple re-inserted
// in ascending ID order. The conflict set is reconciled by the auditor
// afterwards (re-insertion re-adds live instantiations; Add dedups).
func (net *Network) RebuildRules(db *relation.DB, _ map[string]bool) error {
	fresh := compileNetwork(net.set, net.cs, net.stats, net.share)
	fresh.tr = net.tr
	for _, name := range db.Names() {
		rel, err := db.Lookup(name)
		if err != nil {
			return err
		}
		var ierr error
		rel.Scan(func(id relation.TupleID, t relation.Tuple) bool {
			if e := fresh.Insert(name, id, t); e != nil {
				ierr = e
				return false
			}
			return true
		})
		if ierr != nil {
			return ierr
		}
	}
	*net = *fresh
	net.stats.Inc(metrics.MatcherRebuilds)
	return nil
}

// CorruptDerived implements audit.Corrupter: one beta-memory token is
// dropped without the tree-based cleanup, leaving the memory silently
// inconsistent with its neighbours — the classic lost-token fault.
func (net *Network) CorruptDerived(rng *rand.Rand) string {
	type cand struct {
		bm    *betaMemory
		t     *token
		rule  string
		level int
		sig   string
	}
	var cands []cand
	seen := map[*token]bool{}
	for _, ch := range net.ruleChains {
		for i, st := range ch.stores {
			bm, ok := st.(*betaMemory)
			if !ok {
				continue
			}
			toks := bm.allTokens()
			sort.Slice(toks, func(a, b int) bool { return tokenSignature(toks[a]) < tokenSignature(toks[b]) })
			for _, t := range toks {
				if t.level < 0 || seen[t] { // never corrupt the dummy top token
					continue
				}
				seen[t] = true
				cands = append(cands, cand{bm: bm, t: t, rule: ch.rule.Name, level: i, sig: tokenSignature(t)})
			}
		}
	}
	if len(cands) == 0 {
		return ""
	}
	c := cands[rng.Intn(len(cands))]
	delete(c.bm.items, c.t)
	return fmt.Sprintf("rete: dropped beta token %s of %s at level %d", c.sig, c.rule, c.level)
}
