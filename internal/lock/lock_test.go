package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prodsys/internal/metrics"
	"prodsys/internal/relation"
)

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager(nil)
	tgt := TupleTarget("Emp", 1)
	if err := m.Acquire(1, tgt, Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, tgt, Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("second shared lock blocked")
	}
}

func TestExclusiveBlocksAndReleaseWakes(t *testing.T) {
	m := NewManager(nil)
	tgt := TupleTarget("Emp", 1)
	m.Acquire(1, tgt, Exclusive)
	var acquired atomic.Bool
	done := make(chan error, 1)
	go func() {
		err := m.Acquire(2, tgt, Shared)
		acquired.Store(true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("shared lock should wait for exclusive holder")
	}
	m.Release(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken")
	}
}

func TestReacquireIsIdempotent(t *testing.T) {
	m := NewManager(nil)
	tgt := TupleTarget("Emp", 1)
	m.Acquire(1, tgt, Exclusive)
	if err := m.Acquire(1, tgt, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, tgt, Shared); err != nil {
		t.Fatal(err) // weaker mode already covered
	}
	if got := len(m.Held(1)); got != 1 {
		t.Fatalf("held = %d targets", got)
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := NewManager(nil)
	tgt := TupleTarget("Emp", 1)
	m.Acquire(1, tgt, Shared)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(1, tgt, Exclusive) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("sole-holder upgrade blocked")
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := NewManager(nil)
	tgt := TupleTarget("Emp", 1)
	m.Acquire(1, tgt, Shared)
	m.Acquire(2, tgt, Shared)
	var upgraded atomic.Bool
	done := make(chan error, 1)
	go func() {
		err := m.Acquire(1, tgt, Exclusive)
		upgraded.Store(true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if upgraded.Load() {
		t.Fatal("upgrade should wait for other reader")
	}
	m.Release(2)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("upgrade not granted after release")
	}
}

func TestDeadlockDetectionAbortsYoungest(t *testing.T) {
	var stats metrics.Set
	m := NewManager(&stats)
	a := TupleTarget("Emp", 1)
	b := TupleTarget("Emp", 2)
	m.Acquire(1, a, Exclusive)
	m.Acquire(2, b, Exclusive)
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(1, b, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- m.Acquire(2, a, Exclusive) }()
	// Txn 2 (youngest) must be aborted; txn 1 then proceeds.
	var abortSeen, grantSeen bool
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrAborted) {
				abortSeen = true
			} else if err == nil {
				grantSeen = true
			} else {
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock not resolved")
		}
	}
	if !abortSeen || !grantSeen {
		t.Fatalf("abortSeen=%v grantSeen=%v", abortSeen, grantSeen)
	}
	if stats.Get(metrics.Deadlocks) == 0 {
		t.Error("deadlock not counted")
	}
}

func TestAbortedTxnCannotAcquire(t *testing.T) {
	m := NewManager(nil)
	m.Abort(5)
	if err := m.Acquire(5, TupleTarget("R", 1), Shared); !errors.Is(err, ErrAborted) {
		t.Fatalf("aborted txn acquired: %v", err)
	}
	// Release clears the aborted flag (txn id may be reused after
	// rollback completes).
	m.Release(5)
	if err := m.Acquire(5, TupleTarget("R", 1), Shared); err != nil {
		t.Fatal(err)
	}
}

func TestRelationAndTupleTargetsIndependent(t *testing.T) {
	m := NewManager(nil)
	m.Acquire(1, RelationTarget("Emp"), Shared)
	if err := m.Acquire(2, TupleTarget("Emp", 3), Exclusive); err != nil {
		t.Fatal(err) // different targets; hierarchy is caller policy
	}
	if !m.HoldsAll(1, []Target{RelationTarget("Emp")}) {
		t.Error("HoldsAll failed")
	}
	if m.HoldsAll(1, []Target{TupleTarget("Emp", 3)}) {
		t.Error("HoldsAll should fail for unheld target")
	}
}

func TestTargetString(t *testing.T) {
	if RelationTarget("Emp").String() != "Emp/*" {
		t.Error("relation target string")
	}
	if TupleTarget("Emp", 7).String() != "Emp/7" {
		t.Error("tuple target string")
	}
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Error("mode strings")
	}
}

func TestFIFOFairness(t *testing.T) {
	// A queued X request is not starved by later S requests.
	m := NewManager(nil)
	tgt := TupleTarget("R", 1)
	m.Acquire(1, tgt, Shared)
	xDone := make(chan error, 1)
	go func() { xDone <- m.Acquire(2, tgt, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	sDone := make(chan error, 1)
	go func() { sDone <- m.Acquire(3, tgt, Shared) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-sDone:
		t.Fatal("later shared request jumped the queue")
	default:
	}
	m.Release(1)
	if err := <-xDone; err != nil {
		t.Fatal(err)
	}
	m.Release(2)
	if err := <-sDone; err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStress(t *testing.T) {
	var stats metrics.Set
	m := NewManager(&stats)
	const txns = 16
	var wg sync.WaitGroup
	var commits atomic.Int64
	for i := 1; i <= txns; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			targets := []Target{
				TupleTarget("R", relation.TupleID(1+int(id)%3)),
				TupleTarget("R", relation.TupleID(1+int(id)%5)),
			}
			for attempt := 0; attempt < 10; attempt++ {
				ok := true
				for _, tgt := range targets {
					if err := m.Acquire(id, tgt, Exclusive); err != nil {
						ok = false
						break
					}
				}
				m.Release(id)
				if ok {
					commits.Add(1)
					return
				}
			}
		}(TxnID(i))
	}
	wg.Wait()
	if commits.Load() != txns {
		t.Fatalf("commits = %d, want %d", commits.Load(), txns)
	}
}
