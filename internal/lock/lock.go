// Package lock implements the two-phase locking substrate assumed by the
// paper's concurrent execution strategy (§5.2): shared and exclusive
// locks at tuple and relation granularity, lock upgrade, and deadlock
// detection over the waits-for graph with victim abort.
//
// The paper requires read locks on the WM tuples a firing production
// retrieves, write locks on the tuples it deletes or updates, and — for
// productions negatively dependent on a relation — a read lock on the
// entire relation, held until the maintenance process completes.
package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/trace"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// String names the mode.
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// Target identifies a lockable resource: a whole relation (ID == 0,
// Whole == true) or one tuple.
type Target struct {
	Relation string
	ID       relation.TupleID
	Whole    bool
}

// TupleTarget builds a tuple-granularity target.
func TupleTarget(rel string, id relation.TupleID) Target {
	return Target{Relation: rel, ID: id}
}

// RelationTarget builds a relation-granularity target.
func RelationTarget(rel string) Target {
	return Target{Relation: rel, Whole: true}
}

// String renders the target.
func (t Target) String() string {
	if t.Whole {
		return t.Relation + "/*"
	}
	return fmt.Sprintf("%s/%d", t.Relation, t.ID)
}

// TxnID identifies a transaction.
type TxnID uint64

// ErrAborted is returned to a deadlock victim; the transaction must roll
// back and release its locks.
var ErrAborted = errors.New("lock: transaction aborted as deadlock victim")

// ErrTimeout is returned to a transaction whose lock request outlived
// the watchdog deadline; the request is withdrawn from the queue and
// the transaction should release its locks and may retry.
var ErrTimeout = errors.New("lock: acquisition timed out")

// request is a queued lock request.
type request struct {
	txn   TxnID
	mode  Mode
	ready chan error
}

// entry is the lock state of one target.
type entry struct {
	holders map[TxnID]Mode
	queue   []*request
}

// Manager is the lock manager.
type Manager struct {
	mu      sync.Mutex
	entries map[Target]*entry
	// waitsFor edges: waiting txn → set of holders blocking it.
	waitsFor map[TxnID]map[TxnID]struct{}
	held     map[TxnID]map[Target]Mode
	aborted  map[TxnID]bool
	stats    *metrics.Set
	tr       *trace.Tracer
}

// SetTracer wires the execution tracer; LockWait events are emitted
// for every queued request (Dur = queue-to-grant wait) and Deadlock
// events when the waits-for graph finds a cycle.
func (m *Manager) SetTracer(tr *trace.Tracer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tr = tr
}

// NewManager creates an empty lock manager. stats may be nil.
func NewManager(stats *metrics.Set) *Manager {
	return &Manager{
		entries:  make(map[Target]*entry),
		waitsFor: make(map[TxnID]map[TxnID]struct{}),
		held:     make(map[TxnID]map[Target]Mode),
		aborted:  make(map[TxnID]bool),
		stats:    stats,
	}
}

// compatible reports whether a request by txn in mode can be granted given
// current holders. Relation/tuple hierarchy conflicts are resolved by the
// caller requesting both granularities; the manager treats targets
// independently.
func (e *entry) compatible(txn TxnID, mode Mode) bool {
	for holder, hm := range e.holders {
		if holder == txn {
			continue // upgrade handled separately
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// Acquire blocks until txn holds the target in the given mode (or a
// stronger one), or returns ErrAborted if the transaction was chosen as a
// deadlock victim while waiting.
func (m *Manager) Acquire(txn TxnID, tgt Target, mode Mode) error {
	return m.AcquireTimeout(txn, tgt, mode, 0)
}

// AcquireTimeout is Acquire bounded by a watchdog: a request still
// queued when the timeout elapses is withdrawn and fails with
// ErrTimeout (a grant or deadlock abort that races ahead of the
// deadline wins). A timeout <= 0 waits indefinitely.
func (m *Manager) AcquireTimeout(txn TxnID, tgt Target, mode Mode, timeout time.Duration) error {
	req, tr, err := m.enqueue(txn, tgt, mode)
	if req == nil {
		return err
	}
	var t0 time.Duration
	if tr.Enabled() {
		t0 = tr.Now()
	}
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		select {
		case err = <-req.ready:
		case <-timer.C:
			err = m.withdraw(txn, tgt, req)
		}
		timer.Stop()
	} else {
		err = <-req.ready
	}
	if tr.Enabled() {
		extra := tgt.String()
		if err != nil {
			extra += " aborted"
		}
		tr.Emit(trace.Event{
			Kind: trace.KindLockWait, At: t0, Dur: tr.Now() - t0,
			CE: -1, Class: tgt.Relation, ID: uint64(txn), Extra: extra,
		})
	}
	return err
}

// enqueue runs the synchronous grant paths and, failing those, queues a
// request. A nil request means the call completed synchronously with
// the returned error (possibly nil = granted).
func (m *Manager) enqueue(txn TxnID, tgt Target, mode Mode) (*request, *trace.Tracer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aborted[txn] {
		return nil, m.tr, ErrAborted
	}
	e := m.entries[tgt]
	if e == nil {
		e = &entry{holders: make(map[TxnID]Mode)}
		m.entries[tgt] = e
	}
	if cur, holds := e.holders[txn]; holds {
		if cur == Exclusive || mode == Shared {
			return nil, m.tr, nil // already strong enough
		}
		// Upgrade S→X: wait until sole holder.
	}
	if e.compatible(txn, mode) && len(e.queue) == 0 {
		m.grant(txn, tgt, e, mode)
		return nil, m.tr, nil
	}
	// Also grant an upgrade immediately when txn is the only holder, even
	// if others are queued (they cannot be granted anyway while we hold S).
	if _, holds := e.holders[txn]; holds && len(e.holders) == 1 && mode == Exclusive {
		m.grant(txn, tgt, e, mode)
		return nil, m.tr, nil
	}
	req := &request{txn: txn, mode: mode, ready: make(chan error, 1)}
	e.queue = append(e.queue, req)
	m.addWaitEdges(txn, e)
	m.stats.Inc(metrics.LockWaits)
	if victim := m.detectDeadlock(txn); victim != 0 {
		m.abortLocked(victim)
	}
	return req, m.tr, nil
}

// withdraw removes a timed-out request from its queue. If a grant or
// abort landed just before the deadline the request is no longer
// queued; that result wins (it is already buffered in req.ready,
// because grants and aborts complete inside the same critical section
// that dequeues the request).
func (m *Manager) withdraw(txn TxnID, tgt Target, req *request) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[tgt]
	found := false
	if e != nil {
		kept := e.queue[:0]
		for _, r := range e.queue {
			if r == req {
				found = true
				continue
			}
			kept = append(kept, r)
		}
		e.queue = kept
	}
	if !found {
		return <-req.ready
	}
	// Recompute txn's wait edges now that it no longer queues here.
	delete(m.waitsFor, txn)
	for _, e2 := range m.entries {
		for _, q := range e2.queue {
			if q.txn == txn {
				m.addWaitEdges(txn, e2)
			}
		}
	}
	// Removing the request may unblock the queue behind it.
	if e != nil {
		m.wakeLocked(tgt, e)
	}
	m.stats.Inc(metrics.TxnTimeouts)
	return ErrTimeout
}

// grant records the lock, never downgrading an exclusive hold.
func (m *Manager) grant(txn TxnID, tgt Target, e *entry, mode Mode) {
	if cur, ok := e.holders[txn]; ok && cur == Exclusive {
		mode = Exclusive
	}
	e.holders[txn] = mode
	if m.held[txn] == nil {
		m.held[txn] = make(map[Target]Mode)
	}
	m.held[txn][tgt] = mode
	m.stats.Inc(metrics.LockAcquired)
}

// addWaitEdges records who txn is waiting on for deadlock detection.
func (m *Manager) addWaitEdges(txn TxnID, e *entry) {
	set := m.waitsFor[txn]
	if set == nil {
		set = make(map[TxnID]struct{})
		m.waitsFor[txn] = set
	}
	for holder := range e.holders {
		if holder != txn {
			set[holder] = struct{}{}
		}
	}
	// Also wait on queued requests ahead of us that conflict; a simple
	// conservative approximation: wait on all earlier queued txns.
	for _, r := range e.queue {
		if r.txn != txn {
			set[r.txn] = struct{}{}
		}
	}
}

// detectDeadlock looks for a cycle reachable from txn and returns the
// victim to abort (the youngest = highest TxnID on the cycle), or 0.
func (m *Manager) detectDeadlock(txn TxnID) TxnID {
	// DFS from txn over waitsFor.
	var stack []TxnID
	onStack := map[TxnID]bool{}
	visited := map[TxnID]bool{}
	var cycle []TxnID
	var dfs func(t TxnID) bool
	dfs = func(t TxnID) bool {
		visited[t] = true
		onStack[t] = true
		stack = append(stack, t)
		for next := range m.waitsFor[t] {
			if onStack[next] {
				// Cycle found: collect members.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == next {
						break
					}
				}
				return true
			}
			if !visited[next] && dfs(next) {
				return true
			}
		}
		stack = stack[:len(stack)-1]
		onStack[t] = false
		return false
	}
	if !dfs(txn) {
		return 0
	}
	m.stats.Inc(metrics.Deadlocks)
	victim := cycle[0]
	for _, t := range cycle {
		if t > victim {
			victim = t
		}
	}
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{
			Kind: trace.KindDeadlock, At: m.tr.Now(),
			CE: -1, ID: uint64(victim), Count: int64(len(cycle)),
		})
	}
	return victim
}

// abortLocked marks a transaction aborted, fails its queued requests and
// releases its locks. Caller holds m.mu.
func (m *Manager) abortLocked(txn TxnID) {
	m.aborted[txn] = true
	for _, e := range m.entries {
		kept := e.queue[:0]
		for _, r := range e.queue {
			if r.txn == txn {
				r.ready <- ErrAborted
				continue
			}
			kept = append(kept, r)
		}
		e.queue = kept
	}
	m.releaseAllLocked(txn)
}

// Abort marks the transaction as a deadlock/consistency victim and
// releases everything it holds.
func (m *Manager) Abort(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.abortLocked(txn)
	m.stats.Inc(metrics.TxnAborts)
}

// Release drops every lock held by txn (the commit point of strict 2PL)
// and wakes compatible waiters.
func (m *Manager) Release(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseAllLocked(txn)
	delete(m.aborted, txn)
}

// releaseAllLocked drops txn's locks and re-evaluates wait queues.
// Caller holds m.mu.
func (m *Manager) releaseAllLocked(txn TxnID) {
	delete(m.waitsFor, txn)
	for other := range m.waitsFor {
		delete(m.waitsFor[other], txn)
	}
	targets := m.held[txn]
	delete(m.held, txn)
	for tgt := range targets {
		e := m.entries[tgt]
		if e == nil {
			continue
		}
		delete(e.holders, txn)
		m.wakeLocked(tgt, e)
	}
}

// wakeLocked grants queued requests that are now compatible, in FIFO
// order (stopping at the first incompatible one to avoid starvation).
func (m *Manager) wakeLocked(tgt Target, e *entry) {
	for len(e.queue) > 0 {
		r := e.queue[0]
		upgrade := false
		if _, holds := e.holders[r.txn]; holds && len(e.holders) == 1 && r.mode == Exclusive {
			upgrade = true
		}
		if !upgrade && !e.compatible(r.txn, r.mode) {
			return
		}
		e.queue = e.queue[1:]
		m.grant(r.txn, tgt, e, r.mode)
		// The granted txn may stop waiting on others for this target.
		if set := m.waitsFor[r.txn]; set != nil {
			// Recompute conservatively: clear and re-add for targets it
			// still queues on.
			delete(m.waitsFor, r.txn)
			for t2, e2 := range m.entries {
				for _, q := range e2.queue {
					if q.txn == r.txn {
						m.addWaitEdges(r.txn, e2)
						_ = t2
					}
				}
			}
		}
		r.ready <- nil
	}
}

// Held returns the targets txn currently holds, sorted for determinism.
func (m *Manager) Held(txn TxnID) []Target {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Target, 0, len(m.held[txn]))
	for tgt := range m.held[txn] {
		out = append(out, tgt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// HoldsAll reports whether txn holds every given target (any mode).
func (m *Manager) HoldsAll(txn TxnID, tgts []Target) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, tgt := range tgts {
		if _, ok := m.held[txn][tgt]; !ok {
			return false
		}
	}
	return true
}
