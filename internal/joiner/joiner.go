// Package joiner evaluates a rule's LHS as a join query over the working
// memory relations — the set-oriented evaluation the paper contrasts with
// token-at-a-time Rete propagation (§4.1). It is shared by the simplified
// re-evaluation matcher, the matching-pattern matcher's verification step,
// and the engine's set-at-a-time tuple selection (§5.1).
package joiner

import (
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
)

// Fixed pins a condition element to one specific tuple (the newly
// inserted WM element seeding an incremental evaluation).
type Fixed struct {
	ID    relation.TupleID
	Tuple relation.Tuple
}

// Emit receives one complete instantiation: tuple IDs and tuples aligned
// with the rule's condition elements (zero/nil at negated positions) and
// the full variable bindings.
type Emit func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings)

// Enumerate backtracks over the rule's condition elements in LHS order,
// selecting candidate tuples from the WM relations in db, honouring
// pinned condition elements and seed bindings. Negated condition elements
// are NOT EXISTS checks under the bindings accumulated so far. Each
// complete combination is emitted once.
func Enumerate(db *relation.DB, r *rules.Rule, fixed map[int]Fixed, seed rules.Bindings, stats *metrics.Set, emit Emit) {
	n := len(r.CEs)
	ids := make([]relation.TupleID, n)
	tuples := make([]relation.Tuple, n)
	if seed == nil {
		seed = rules.Bindings{}
	}
	var rec func(i int, b rules.Bindings)
	rec = func(i int, b rules.Bindings) {
		if i == n {
			emit(append([]relation.TupleID(nil), ids...),
				append([]relation.Tuple(nil), tuples...), b.Clone())
			return
		}
		ce := r.CEs[i]
		if f, pinned := fixed[i]; pinned {
			nb, ok := ce.MatchWith(f.Tuple, b)
			if !ok {
				return
			}
			ids[i], tuples[i] = f.ID, f.Tuple
			rec(i+1, nb)
			ids[i], tuples[i] = 0, nil
			return
		}
		rel, ok := db.Get(ce.Class)
		if !ok {
			if ce.Negated {
				rec(i+1, b) // empty class: negation trivially satisfied
			}
			return
		}
		if ce.Negated {
			// NOT EXISTS: any tuple completing the negated condition under
			// the current bindings blocks this branch.
			if existsMatch(rel, ce, b, stats) {
				return
			}
			rec(i+1, b)
			return
		}
		rs, _ := ce.Restrictions(b)
		stats.Inc(metrics.JoinsComputed)
		for _, cid := range rel.Select(rs) {
			ct, live := rel.Get(cid)
			if !live {
				continue
			}
			stats.Inc(metrics.CandidateChecks)
			nb, ok := ce.MatchWith(ct, b)
			if !ok {
				continue
			}
			ids[i], tuples[i] = cid, ct
			rec(i+1, nb)
			ids[i], tuples[i] = 0, nil
		}
	}
	rec(0, seed)
}

// existsMatch reports whether any live tuple of rel satisfies the
// (negated) condition element under bindings b.
func existsMatch(rel *relation.Relation, ce *rules.CE, b rules.Bindings, stats *metrics.Set) bool {
	rs, _ := ce.Restrictions(b)
	stats.Inc(metrics.JoinsComputed)
	for _, cid := range rel.Select(rs) {
		ct, live := rel.Get(cid)
		if !live {
			continue
		}
		stats.Inc(metrics.CandidateChecks)
		if _, ok := ce.MatchWith(ct, b); ok {
			return true
		}
	}
	return false
}

// Exists re-exports the NOT EXISTS primitive for the concurrent executor,
// which must re-verify negative dependencies under a relation-level read
// lock before acting (§5.2, "a better solution would require that the
// DBMS support the NOT EXISTS operator").
func Exists(db *relation.DB, ce *rules.CE, b rules.Bindings, stats *metrics.Set) bool {
	rel, ok := db.Get(ce.Class)
	if !ok {
		return false
	}
	return existsMatch(rel, ce, b, stats)
}
