package joiner

import (
	"sync"

	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
)

// driftCheckEvery is how many executions a cached plan serves between
// cardinality drift checks.
const driftCheckEvery = 32

// Planner compiles and caches cost-based join orders for rule LHS
// evaluation. A nil *Planner is valid and means "fixed order": every
// call falls through to the source-order Enumerate, which is also the
// oracle the crosscheck tests compare against. Planner is safe for
// concurrent use.
type Planner struct {
	db    *relation.DB
	stats *metrics.Set

	mu    sync.RWMutex
	plans map[planKey]*Plan
}

type planKey struct {
	rule   *rules.Rule
	pinned int
}

// NewPlanner creates a planner estimating cardinalities from db's
// relation statistics and counting its activity in stats (both may be
// shared with the matchers).
func NewPlanner(db *relation.DB, stats *metrics.Set) *Planner {
	return &Planner{db: db, stats: stats, plans: make(map[planKey]*Plan)}
}

// Enumerate is the planned drop-in for the package-level Enumerate:
// same contract, but the join order comes from a cached cost-based
// plan keyed on (rule, pinned condition element). Evaluations the
// planner cannot specialize — a nil receiver, multiple pinned
// elements, or a pinned negated element — fall back to source order.
func (p *Planner) Enumerate(db *relation.DB, r *rules.Rule, fixed map[int]Fixed, seed rules.Bindings, stats *metrics.Set, emit Emit) {
	if p == nil || len(fixed) > 1 {
		Enumerate(db, r, fixed, seed, stats, emit)
		return
	}
	pinned := -1
	for i := range fixed {
		pinned = i
	}
	if pinned >= 0 && r.CEs[pinned].Negated {
		Enumerate(db, r, fixed, seed, stats, emit)
		return
	}
	plan := p.planFor(r, pinned)
	p.execute(plan, r, fixed, seed, stats, emit)
}

// Plan returns the cached plan for (r, pinned), building (and caching)
// it on demand. pinned is the LHS index of the delta condition
// element, or -1 for the full derivation plan.
func (p *Planner) Plan(r *rules.Rule, pinned int) *Plan {
	return p.planFor(r, pinned)
}

// Plans returns every cached plan for rule r (one per delta class seen
// so far, plus the full derivation plan if requested before),
// full-derivation first. The slice is a snapshot; the plans are live.
func (p *Planner) Plans(r *rules.Rule) []*Plan {
	if p == nil {
		return nil
	}
	p.mu.RLock()
	var out []*Plan
	for k, plan := range p.plans {
		if k.rule == r {
			out = append(out, plan)
		}
	}
	p.mu.RUnlock()
	sortPlans(out)
	return out
}

// planFor serves (r, pinned) from the cache, rebuilding when the
// periodic drift check finds relation cardinalities far from the
// build-time statistics.
func (p *Planner) planFor(r *rules.Rule, pinned int) *Plan {
	key := planKey{rule: r, pinned: pinned}
	p.mu.RLock()
	plan := p.plans[key]
	p.mu.RUnlock()
	if plan != nil {
		if n := plan.execs.Add(1); n%driftCheckEvery != 0 || !p.drifted(plan) {
			p.stats.Inc(metrics.PlanCacheHits)
			return plan
		}
		p.stats.Inc(metrics.PlanInvalidations)
	}

	p.mu.Lock()
	if cur := p.plans[key]; cur != nil && cur != plan {
		// Another goroutine rebuilt while we waited.
		p.mu.Unlock()
		cur.execs.Add(1)
		p.stats.Inc(metrics.PlanCacheHits)
		return cur
	}
	fresh := buildPlan(p.db, r, pinned)
	p.plans[key] = fresh
	p.mu.Unlock()
	p.stats.Inc(metrics.PlansBuilt)
	fresh.execs.Add(1)
	return fresh
}

// drifted reports whether any positive step's relation cardinality has
// moved far enough from the build-time figure that the join order
// deserves re-costing. The slack (2x + 16) keeps small relations from
// thrashing the cache.
func (p *Planner) drifted(plan *Plan) bool {
	for _, s := range plan.Steps {
		if s.Pinned {
			continue
		}
		rel, ok := p.db.Get(s.Class)
		if !ok {
			continue
		}
		cur, base := rel.Len(), s.BaseRows
		if cur > 2*base+16 || base > 2*cur+16 {
			return true
		}
	}
	return false
}

// execute runs the plan's join order with the streaming clause-by-
// clause backtracking of Enumerate. Exactly one access path is charged
// per condition-element evaluation (the bugfix the Explain actual-vs-
// estimated reconciliation depends on), and each step accumulates its
// actual evaluation and row counts.
func (p *Planner) execute(plan *Plan, r *rules.Rule, fixed map[int]Fixed, seed rules.Bindings, stats *metrics.Set, emit Emit) {
	n := len(r.CEs)
	ids := make([]relation.TupleID, n)
	tuples := make([]relation.Tuple, n)
	if seed == nil {
		seed = rules.Bindings{}
	}
	var rec func(si int, b rules.Bindings)
	rec = func(si int, b rules.Bindings) {
		if si == len(plan.Steps) {
			emit(append([]relation.TupleID(nil), ids...),
				append([]relation.Tuple(nil), tuples...), b.Clone())
			return
		}
		step := plan.Steps[si]
		ce := r.CEs[step.CE]
		if step.Pinned {
			f := fixed[step.CE]
			step.evals.Add(1)
			nb, ok := ce.MatchWith(f.Tuple, b)
			if !ok {
				return
			}
			step.rows.Add(1)
			ids[step.CE], tuples[step.CE] = f.ID, f.Tuple
			rec(si+1, nb)
			ids[step.CE], tuples[step.CE] = 0, nil
			return
		}
		rel, ok := p.db.Get(ce.Class)
		if !ok {
			if ce.Negated {
				rec(si+1, b) // empty class: negation trivially satisfied
			}
			return
		}
		step.evals.Add(1)
		stats.Inc(metrics.JoinsComputed)
		if ce.Negated {
			blocked := false
			p.candidates(rel, step, b, func(id relation.TupleID, t relation.Tuple) bool {
				stats.Inc(metrics.CandidateChecks)
				if _, ok := ce.MatchWith(t, b); ok {
					blocked = true
					return false
				}
				return true
			})
			if blocked {
				step.rows.Add(1)
				return
			}
			rec(si+1, b)
			return
		}
		p.candidates(rel, step, b, func(id relation.TupleID, t relation.Tuple) bool {
			stats.Inc(metrics.CandidateChecks)
			nb, ok := ce.MatchWith(t, b)
			if !ok {
				return true
			}
			step.rows.Add(1)
			ids[step.CE], tuples[step.CE] = id, t
			rec(si+1, nb)
			ids[step.CE], tuples[step.CE] = 0, nil
			return true
		})
	}
	rec(0, seed)
}

// candidates streams the step's candidate tuples through fn (stop on
// false) using the plan's access path. MatchWith re-checks the full
// condition element on every candidate, so any superset of the true
// matches is sound — the access path is purely an optimization. A
// probe whose key variable is unexpectedly unbound degrades to a scan.
func (p *Planner) candidates(rel *relation.Relation, step *PlanStep, b rules.Bindings, fn func(relation.TupleID, relation.Tuple) bool) {
	switch step.AccessPath {
	case AccessIndexEq, AccessIndexRange:
		key := step.probeVal
		if step.probeVar != "" {
			v, bound := b[step.probeVar]
			if !bound {
				break
			}
			key = v
		}
		if step.AccessPath == AccessIndexEq {
			for _, id := range rel.SelectEq(step.probePos, key) {
				t, live := rel.Get(id)
				if live && !fn(id, t) {
					return
				}
			}
			return
		}
		if bounds, ok := relation.RangeFor(step.probeOp, key); ok {
			for _, id := range rel.SelectRange(step.probePos, bounds) {
				t, live := rel.Get(id)
				if live && !fn(id, t) {
					return
				}
			}
			return
		}
	}
	rel.Scan(func(id relation.TupleID, t relation.Tuple) bool {
		ct := t.Clone() // Scan lends its tuples; emitted tuples are retained
		return fn(id, ct)
	})
}
