package joiner

import (
	"testing"

	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

const src = `
(literalize Emp name salary dno)
(literalize Dept dno dname)
(p Toy (Emp ^name <n> ^dno <d>) (Dept ^dno <d> ^dname Toy) --> (remove 1))
(p Lonely (Emp ^name <n> ^dno <d>) - (Dept ^dno <d>) --> (halt))
`

type fixture struct {
	set *rules.Set
	db  *relation.DB
	st  *metrics.Set
}

func setup(t *testing.T) *fixture {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.Set{}
	db := relation.NewDB(st)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	return &fixture{set: set, db: db, st: st}
}

func (f *fixture) insert(t *testing.T, class string, vals ...value.V) relation.TupleID {
	t.Helper()
	id, err := f.db.MustGet(class).Insert(relation.Tuple(vals))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func collect(f *fixture, ruleName string, fixed map[int]Fixed, seed rules.Bindings) []string {
	r, _ := f.set.RuleByName(ruleName)
	var out []string
	Enumerate(f.db, r, fixed, seed, f.st, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
		key := ruleName
		for _, id := range ids {
			key += "|" + itoa(int(id))
		}
		out = append(out, key)
	})
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	s := ""
	for v > 0 {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	return s
}

func TestEnumerateFull(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	f.insert(t, "Emp", value.OfSym("Bob"), value.OfInt(200), value.OfInt(7))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	got := collect(f, "Toy", nil, nil)
	if len(got) != 2 || got[0] != "Toy|1|1" || got[1] != "Toy|2|1" {
		t.Fatalf("Enumerate = %v", got)
	}
}

func TestEnumerateFixed(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	bob := f.insert(t, "Emp", value.OfSym("Bob"), value.OfInt(200), value.OfInt(7))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	bobTup, _ := f.db.MustGet("Emp").Get(bob)
	got := collect(f, "Toy", map[int]Fixed{0: {ID: bob, Tuple: bobTup}}, nil)
	if len(got) != 1 || got[0] != "Toy|2|1" {
		t.Fatalf("fixed Enumerate = %v", got)
	}
	// A pinned tuple failing its own condition yields nothing.
	badTup := relation.Tuple{value.V{}, value.OfInt(1), value.OfInt(7)}
	got = collect(f, "Toy", map[int]Fixed{0: {ID: 99, Tuple: badTup}}, nil)
	if len(got) != 0 {
		t.Fatalf("nil-name pinned tuple should not match: %v", got)
	}
}

func TestEnumerateNegation(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	got := collect(f, "Lonely", nil, nil)
	if len(got) != 1 || got[0] != "Lonely|1|0" {
		t.Fatalf("no-dept should satisfy negation: %v", got)
	}
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Shoe"))
	got = collect(f, "Lonely", nil, nil)
	if len(got) != 0 {
		t.Fatalf("dept 7 blocks Lonely: %v", got)
	}
	// Another employee in a dept with no relation row still qualifies.
	f.insert(t, "Emp", value.OfSym("Cat"), value.OfInt(1), value.OfInt(9))
	got = collect(f, "Lonely", nil, nil)
	if len(got) != 1 || got[0] != "Lonely|2|0" {
		t.Fatalf("Cat should be lonely: %v", got)
	}
}

func TestEnumerateSeedBindings(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	f.insert(t, "Emp", value.OfSym("Bob"), value.OfInt(200), value.OfInt(8))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	f.insert(t, "Dept", value.OfInt(8), value.OfSym("Toy"))
	got := collect(f, "Toy", nil, rules.Bindings{"d": value.OfInt(8)})
	if len(got) != 1 || got[0] != "Toy|2|2" {
		t.Fatalf("seeded Enumerate = %v", got)
	}
}

func TestEnumerateMissingClassRelation(t *testing.T) {
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	db := relation.NewDB(nil) // empty catalog: no relations at all
	r, _ := set.RuleByName("Toy")
	count := 0
	Enumerate(db, r, nil, nil, nil, func([]relation.TupleID, []relation.Tuple, rules.Bindings) { count++ })
	if count != 0 {
		t.Fatal("missing positive relation should yield nothing")
	}
	// Negated class missing ⇒ trivially satisfied.
	lonely, _ := set.RuleByName("Lonely")
	empOnly := relation.NewDB(nil)
	empOnly.Create("Emp", "name", "salary", "dno")
	empOnly.MustGet("Emp").Insert(relation.Tuple{value.OfSym("A"), value.OfInt(1), value.OfInt(2)})
	count = 0
	Enumerate(empOnly, lonely, nil, nil, nil, func([]relation.TupleID, []relation.Tuple, rules.Bindings) { count++ })
	if count != 1 {
		t.Fatalf("missing negated relation should satisfy NOT EXISTS, got %d", count)
	}
}

func TestExists(t *testing.T) {
	f := setup(t)
	lonely, _ := f.set.RuleByName("Lonely")
	negCE := lonely.CEs[1]
	if Exists(f.db, negCE, rules.Bindings{"d": value.OfInt(7)}, f.st) {
		t.Fatal("no dept yet")
	}
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	if !Exists(f.db, negCE, rules.Bindings{"d": value.OfInt(7)}, f.st) {
		t.Fatal("dept 7 exists")
	}
	if Exists(f.db, negCE, rules.Bindings{"d": value.OfInt(9)}, f.st) {
		t.Fatal("dept 9 does not exist")
	}
	// Missing relation.
	empty := relation.NewDB(nil)
	if Exists(empty, negCE, nil, nil) {
		t.Fatal("missing relation cannot contain a match")
	}
}

func TestEnumerateEmitCopies(t *testing.T) {
	// Emitted slices must not alias the recursion's scratch buffers.
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	f.insert(t, "Emp", value.OfSym("Bob"), value.OfInt(200), value.OfInt(7))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	r, _ := f.set.RuleByName("Toy")
	var allIDs [][]relation.TupleID
	Enumerate(f.db, r, nil, nil, f.st, func(ids []relation.TupleID, _ []relation.Tuple, _ rules.Bindings) {
		allIDs = append(allIDs, ids)
	})
	if len(allIDs) != 2 || allIDs[0][0] == allIDs[1][0] {
		t.Fatalf("emitted ids alias or wrong: %v", allIDs)
	}
}

func TestJoinStepsCounted(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	before := f.st.Get(metrics.JoinsComputed)
	collect(f, "Toy", nil, nil)
	if f.st.Get(metrics.JoinsComputed) == before {
		t.Fatal("join steps not counted")
	}
}
