package joiner

import (
	"sort"
	"strings"
	"testing"

	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

// collectPlanned is collect routed through a planner.
func collectPlanned(f *fixture, p *Planner, ruleName string, fixed map[int]Fixed, seed rules.Bindings) []string {
	r, _ := f.set.RuleByName(ruleName)
	var out []string
	p.Enumerate(f.db, r, fixed, seed, f.st, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
		key := ruleName
		for _, id := range ids {
			key += "|" + itoa(int(id))
		}
		out = append(out, key)
	})
	return out
}

// sortedEq compares two instantiation-key sets ignoring emission order
// (the planner may reorder enumeration; the produced set must not
// change).
func sortedEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestPlannedMatchesFixedOrder(t *testing.T) {
	f := setup(t)
	p := NewPlanner(f.db, f.st)
	ann := f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	f.insert(t, "Emp", value.OfSym("Bob"), value.OfInt(200), value.OfInt(7))
	f.insert(t, "Emp", value.OfSym("Cat"), value.OfInt(50), value.OfInt(9))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	f.insert(t, "Dept", value.OfInt(9), value.OfSym("Shoe"))

	for _, rule := range []string{"Toy", "Lonely"} {
		if got, want := collectPlanned(f, p, rule, nil, nil), collect(f, rule, nil, nil); !sortedEq(got, want) {
			t.Errorf("%s full: planned %v, fixed %v", rule, got, want)
		}
	}
	annTup, _ := f.db.MustGet("Emp").Get(ann)
	fixed := map[int]Fixed{0: {ID: ann, Tuple: annTup}}
	if got, want := collectPlanned(f, p, "Toy", fixed, nil), collect(f, "Toy", fixed, nil); !sortedEq(got, want) {
		t.Errorf("Toy pinned: planned %v, fixed %v", got, want)
	}
}

// TestNilPlannerFallsBack checks the nil receiver is the fixed-order
// evaluation, emission order included.
func TestNilPlannerFallsBack(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	var p *Planner
	got := collectPlanned(f, p, "Toy", nil, nil)
	want := collect(f, "Toy", nil, nil)
	if len(got) != len(want) {
		t.Fatalf("nil planner: %v vs %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("nil planner order diverges: %v vs %v", got, want)
		}
	}
}

// TestPinnedRespectsNonEqBindingOrder pins a condition element whose
// non-equality test reads a variable another condition element binds:
// the plan must evaluate the binder first or the pinned MatchWith
// fails closed and derivations are silently lost.
func TestPinnedRespectsNonEqBindingOrder(t *testing.T) {
	src := `
(literalize Emp name salary manager)
(p overpaid
    (Emp ^name <N> ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
  -->
    (remove 1))
`
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.Set{}
	db := relation.NewDB(st)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	emp := db.MustGet("Emp")
	mike := relation.Tuple{value.OfSym("Mike"), value.OfInt(1000), value.OfSym("Sam")}
	sam := relation.Tuple{value.OfSym("Sam"), value.OfInt(900), value.OfSym("Pat")}
	if _, err := emp.Insert(mike); err != nil {
		t.Fatal(err)
	}
	samID, err := emp.Insert(sam)
	if err != nil {
		t.Fatal(err)
	}

	r := set.Rules[0]
	p := NewPlanner(db, st)
	// Pin CE1 (the manager's row): its salary test reads <S>, bound by CE0.
	n := 0
	p.Enumerate(db, r, map[int]Fixed{1: {ID: samID, Tuple: sam}}, nil, st, func([]relation.TupleID, []relation.Tuple, rules.Bindings) {
		n++
	})
	if n != 1 {
		t.Fatalf("pinned CE1 derivations = %d, want 1\nplan:\n%s", n, p.Plan(r, 1))
	}
	plan := p.Plan(r, 1)
	if plan.Steps[0].Pinned {
		t.Fatalf("pinned CE1 must not run first (its <S> test is unbound):\n%s", plan)
	}
}

// TestNegatedAfterEarlierPositives checks a negated condition element
// never runs before a positive one with a smaller LHS index, which
// would turn its equality tests into local bindings and wrongly widen
// the NOT EXISTS.
func TestNegatedAfterEarlierPositives(t *testing.T) {
	f := setup(t)
	p := NewPlanner(f.db, f.st)
	r, _ := f.set.RuleByName("Lonely")
	for _, pinned := range []int{-1, 0} {
		plan := p.Plan(r, pinned)
		posAt, negAt := -1, -1
		for i, s := range plan.Steps {
			if s.Negated {
				negAt = i
			} else {
				posAt = i
			}
		}
		if negAt < posAt {
			t.Errorf("pinned=%d: negated CE scheduled before positive CE0:\n%s", pinned, plan)
		}
	}
}

func TestPlanCacheHitsAndDriftInvalidation(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	p := NewPlanner(f.db, f.st)
	for i := 0; i < 10; i++ {
		collectPlanned(f, p, "Toy", nil, nil)
	}
	if got := f.st.Get(metrics.PlansBuilt); got != 1 {
		t.Fatalf("plans_built = %d, want 1", got)
	}
	if got := f.st.Get(metrics.PlanCacheHits); got != 9 {
		t.Fatalf("plan_cache_hits = %d, want 9", got)
	}

	// Grow Emp far past the drift slack; the next checked execution
	// must rebuild the plan.
	for i := 0; i < 300; i++ {
		f.insert(t, "Emp", value.OfSym("X"), value.OfInt(int64(i)), value.OfInt(7))
	}
	for i := 0; i < 2*driftCheckEvery; i++ {
		collectPlanned(f, p, "Toy", nil, nil)
	}
	if got := f.st.Get(metrics.PlanInvalidations); got == 0 {
		t.Fatal("no plan invalidation despite 300x cardinality growth")
	}
	if got := f.st.Get(metrics.PlansBuilt); got < 2 {
		t.Fatalf("plans_built = %d, want a rebuild after drift", got)
	}
	r, _ := f.set.RuleByName("Toy")
	plan := p.Plan(r, -1)
	if s := plan.Step(0); s == nil || s.BaseRows < 300 {
		t.Fatalf("rebuilt plan still carries stale base cardinality:\n%s", plan)
	}
}

// setupSharded is setup over a sharded catalog: every relation is
// partitioned n ways before BuildDB creates it.
func setupSharded(t *testing.T, n int) *fixture {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.Set{}
	db := relation.NewDB(st)
	if err := db.SetDefaultShards(n); err != nil {
		t.Fatal(err)
	}
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	return &fixture{set: set, db: db, st: st}
}

// TestDriftSeesAggregateShardCardinality pins the sharded-catalog drift
// contract: Len()/Stats() on a partitioned relation report the aggregate
// across shards. A per-partition figure would make a stable 200-row
// relation look like a 4x collapse from its build-time statistics
// (200 > 2*50+16), invalidating the plan on every checked execution;
// and conversely could hide genuine aggregate growth.
func TestDriftSeesAggregateShardCardinality(t *testing.T) {
	f := setupSharded(t, 4)
	for i := 0; i < 200; i++ {
		f.insert(t, "Emp", value.OfSym("E"+itoa(i)), value.OfInt(int64(i)), value.OfInt(7))
	}
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	p := NewPlanner(f.db, f.st)

	collectPlanned(f, p, "Toy", nil, nil)
	r, _ := f.set.RuleByName("Toy")
	if s := p.Plan(r, -1).Step(0); s == nil || s.BaseRows != 200 {
		t.Fatalf("build-time Emp cardinality = %v, want the 200-row aggregate:\n%s", s, p.Plan(r, -1))
	}

	// Stable cardinality: many checked executions, zero invalidations.
	for i := 0; i < 4*driftCheckEvery; i++ {
		collectPlanned(f, p, "Toy", nil, nil)
	}
	if got := f.st.Get(metrics.PlanInvalidations); got != 0 {
		t.Fatalf("plan_invalidations = %d on stable sharded cardinality, want 0", got)
	}
	if got := f.st.Get(metrics.PlansBuilt); got != 1 {
		t.Fatalf("plans_built = %d on stable sharded cardinality, want 1", got)
	}

	// Genuine aggregate growth (spread across all shards by the hash of
	// the name attribute) must still trip the drift check.
	for i := 0; i < 500; i++ {
		f.insert(t, "Emp", value.OfSym("G"+itoa(i)), value.OfInt(int64(i)), value.OfInt(7))
	}
	for i := 0; i < 2*driftCheckEvery; i++ {
		collectPlanned(f, p, "Toy", nil, nil)
	}
	if got := f.st.Get(metrics.PlanInvalidations); got == 0 {
		t.Fatal("no plan invalidation despite aggregate growth across shards")
	}
	if s := p.Plan(r, -1).Step(0); s == nil || s.BaseRows < 700 {
		t.Fatalf("rebuilt plan base cardinality not aggregated across shards:\n%s", p.Plan(r, -1))
	}
}

// TestSingleAccessPathPerEvaluation checks the satellite-6 accounting
// contract on the planned executor: an index-probed condition element
// evaluation charges the probe and nothing else, never probe + scan.
func TestSingleAccessPathPerEvaluation(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	for i := 0; i < 20; i++ {
		f.insert(t, "Dept", value.OfInt(int64(i)), value.OfSym("Shoe"))
	}
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))

	p := NewPlanner(f.db, f.st)
	collectPlanned(f, p, "Toy", nil, nil) // warm: plan build reads stats only
	before := f.st.Snapshot()
	collectPlanned(f, p, "Toy", nil, nil)
	d := f.st.Snapshot().Diff(before)

	r, _ := f.set.RuleByName("Toy")
	plan := p.Plan(r, -1)
	dept := plan.Step(1)
	if dept == nil || dept.AccessPath != AccessIndexEq {
		t.Fatalf("Dept step should join via the dno hash index:\n%s", plan)
	}
	// One Emp access (scan or probe) + one Dept index probe; the
	// Dept evaluation must not also count a scan of Dept's 21 tuples.
	if lk := d[metrics.IndexLookups]; lk == 0 {
		t.Fatalf("no index lookups charged: %v", d)
	}
	if sc := d[metrics.TuplesScanned]; sc > 1 { // the single Emp tuple
		t.Fatalf("tuples_scanned = %d: an index-probed evaluation also charged a scan (%v)", sc, d)
	}
}

func TestPlanStringRendersEstimatesAndActuals(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	p := NewPlanner(f.db, f.st)
	collectPlanned(f, p, "Toy", nil, nil)
	out := p.Plan(f.set.Rules[0], -1).String()
	for _, want := range []string{"plan Toy", "est=", "actual=", "CE1", "CE2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Plan.String missing %q:\n%s", want, out)
		}
	}
}
