package joiner

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

// Access names the access path a plan step uses to fetch candidate
// tuples for its condition element.
type Access string

const (
	// AccessPinned means the step checks exactly the delta tuple that
	// seeded this evaluation — no relation access at all.
	AccessPinned Access = "pinned"
	// AccessIndexEq probes the hash index with an equality key (a
	// constant or a variable bound by an earlier step).
	AccessIndexEq Access = "index-eq"
	// AccessIndexRange probes the ordered index with a range derived
	// from an inequality restriction.
	AccessIndexRange Access = "index-range"
	// AccessScan reads every live tuple of the relation.
	AccessScan Access = "scan"
)

// PlanStep is one condition element's slot in a compiled join order.
// Estimated figures are fixed at build time from relation statistics;
// actual figures accumulate as the plan executes.
type PlanStep struct {
	// Join is the step's position in the chosen join order (0-based).
	Join int
	// CE is the condition element's LHS index (0-based source order).
	CE int
	// Class is the condition element's WM class.
	Class string
	// Negated marks a NOT EXISTS step.
	Negated bool
	// Pinned marks the delta-seeded step of an incremental evaluation.
	Pinned bool
	// AccessPath is the access path chosen at build time.
	AccessPath Access
	// Attr is the probed attribute name ("" for pinned and scan steps).
	Attr string
	// BaseRows is the relation cardinality observed at build time.
	BaseRows int
	// EstRows is the estimated number of tuples this step emits per
	// evaluation of the step (i.e. per binding reaching it).
	EstRows float64

	// probe describes how to compute the index key at run time.
	probePos int
	probeOp  value.Op
	probeVar string  // bound variable supplying the key ("" = constant)
	probeVal value.V // constant key when probeVar == ""

	evals atomic.Int64 // times the step was evaluated
	rows  atomic.Int64 // tuples that satisfied the full CE test
}

// Evals returns how many times the step has been evaluated.
func (s *PlanStep) Evals() int64 { return s.evals.Load() }

// Rows returns how many tuples have satisfied the step across all
// evaluations.
func (s *PlanStep) Rows() int64 { return s.rows.Load() }

// ActualRows returns the measured average tuples emitted per
// evaluation — the figure Explain reconciles against EstRows.
func (s *PlanStep) ActualRows() float64 {
	e := s.evals.Load()
	if e == 0 {
		return 0
	}
	return float64(s.rows.Load()) / float64(e)
}

// Plan is a compiled join order for one rule, possibly specialized to a
// delta class (the pinned condition element of an incremental
// evaluation). Steps are in execution order; estimated cardinalities
// are from build-time statistics, actuals from execution.
type Plan struct {
	// Rule is the planned rule's name.
	Rule string
	// Pinned is the LHS index of the delta-seeded condition element, or
	// -1 for a full derivation plan.
	Pinned int
	// DeltaClass is the pinned condition element's class ("" when
	// Pinned is -1) — the plan-cache key alongside the rule.
	DeltaClass string
	// Steps is the chosen join order.
	Steps []*PlanStep

	execs atomic.Int64 // executions, for periodic drift checks
}

// Execs returns how many times the plan has been executed.
func (p *Plan) Execs() int64 { return p.execs.Load() }

// Step returns the step evaluating the condition element with LHS
// index ce, or nil.
func (p *Plan) Step(ce int) *PlanStep {
	for _, s := range p.Steps {
		if s.CE == ce {
			return s
		}
	}
	return nil
}

// String renders the plan as an explain table: one line per step with
// the access path and estimated vs actual cardinality.
func (p *Plan) String() string {
	var b strings.Builder
	delta := "full derivation"
	if p.Pinned >= 0 {
		delta = fmt.Sprintf("delta CE%d %s", p.Pinned+1, p.DeltaClass)
	}
	fmt.Fprintf(&b, "plan %s (%s, %d executions)\n", p.Rule, delta, p.Execs())
	for _, s := range p.Steps {
		access := string(s.AccessPath)
		if s.Attr != "" {
			access += "(" + s.Attr + ")"
		}
		neg := ""
		if s.Negated {
			neg = " not-exists"
		}
		fmt.Fprintf(&b, "  %d. CE%d %-12s %-20s%s est=%.2f actual=%.2f (rows %d / evals %d, base %d)\n",
			s.Join+1, s.CE+1, s.Class, access, neg,
			s.EstRows, s.ActualRows(), s.Rows(), s.Evals(), s.BaseRows)
	}
	return b.String()
}

// eqSelectivity estimates the fraction of a relation matched by an
// equality restriction on pos: 1/distinct when the ordered statistics
// know the column, a fixed guess otherwise.
func eqSelectivity(st relation.StoreStats, pos int) float64 {
	for _, ix := range st.Indexes {
		if ix.Pos == pos {
			if ix.Distinct > 0 {
				return 1 / float64(ix.Distinct)
			}
			return 1
		}
	}
	return selEqUnindexed
}

// Default selectivity guesses for predicates the statistics cannot
// size, in the tradition of System R.
const (
	selEqUnindexed = 0.1
	selRange       = 1.0 / 3.0
	selNe          = 0.9
)

// opSelectivity estimates the fraction matched by op on pos.
func opSelectivity(st relation.StoreStats, pos int, op value.Op) float64 {
	switch op {
	case value.OpEq:
		return eqSelectivity(st, pos)
	case value.OpNe:
		return selNe
	default:
		return selRange
	}
}

// attrName resolves the attribute name at pos from the statistics
// (which carry schema names for indexed columns) or the schema.
func attrName(ce *rules.CE, pos int) string {
	if ce.Schema != nil && pos >= 0 && pos < ce.Schema.Arity() {
		return ce.Schema.Attrs()[pos]
	}
	return fmt.Sprintf("#%d", pos)
}

// buildStep sizes one candidate condition element under the variables
// bound so far: it picks the cheapest available access path (mirroring
// the Select/JoinProbe cascade the executor uses) and estimates the
// rows the step emits.
func buildStep(rel *relation.Relation, ce *rules.CE, bound map[string]bool) *PlanStep {
	st := rel.Stats()
	n := float64(st.Tuples)
	step := &PlanStep{
		CE:       ce.Index,
		Class:    ce.Class,
		Negated:  ce.Negated,
		BaseRows: st.Tuples,
	}

	// Collect every predicate a bound-variable or constant restriction
	// contributes, tracking the best indexed equality and range probes.
	type pred struct {
		pos int
		op  value.Op
		vr  string  // "" for constants
		val value.V // constant value when vr == ""
	}
	var preds []pred
	for _, c := range ce.Consts {
		preds = append(preds, pred{pos: c.Pos, op: c.Op, val: c.Val})
	}
	sel := 1.0
	for _, d := range ce.Disj {
		s := float64(len(d.Vals)) * eqSelectivity(st, d.Pos)
		if s < 1 {
			sel *= s
		}
	}
	for _, vt := range ce.VarTests {
		if bound[vt.Var] {
			preds = append(preds, pred{pos: vt.Pos, op: vt.Op, vr: vt.Var})
		}
		// An unbound equality test binds the variable: selectivity 1.
	}

	bestEq, bestEqDistinct := -1, 0
	bestRange := -1
	for i, p := range preds {
		sel *= opSelectivity(st, p.pos, p.op)
		if !rel.HasIndex(p.pos) {
			continue
		}
		switch {
		case p.op == value.OpEq:
			d := 1
			for _, ix := range st.Indexes {
				if ix.Pos == p.pos {
					d = ix.Distinct
				}
			}
			if bestEq < 0 || d > bestEqDistinct {
				bestEq, bestEqDistinct = i, d
			}
		case p.op != value.OpNe:
			if bestRange < 0 {
				bestRange = i
			}
		}
	}
	if sel > 1 {
		sel = 1
	}
	step.EstRows = n * sel

	switch {
	case bestEq >= 0:
		p := preds[bestEq]
		step.AccessPath = AccessIndexEq
		step.Attr = attrName(ce, p.pos)
		step.probePos, step.probeOp, step.probeVar, step.probeVal = p.pos, p.op, p.vr, p.val
	case bestRange >= 0:
		p := preds[bestRange]
		step.AccessPath = AccessIndexRange
		step.Attr = attrName(ce, p.pos)
		step.probePos, step.probeOp, step.probeVar, step.probeVal = p.pos, p.op, p.vr, p.val
	default:
		step.AccessPath = AccessScan
	}
	return step
}

// probeCost estimates the candidate tuples the step's access path
// fetches per evaluation (the work MatchWith must filter).
func probeCost(step *PlanStep) float64 {
	n := float64(step.BaseRows)
	switch step.AccessPath {
	case AccessIndexEq:
		// One hash bucket; approximate with the emitted rows.
		if step.EstRows > 1 {
			return step.EstRows
		}
		return 1
	case AccessIndexRange:
		return n * selRange
	default:
		return n
	}
}

// buildPlan compiles a join order for rule r seeded at the pinned
// condition element (-1 for a full derivation). Ordering is greedy by
// estimated output rows with probe cost and LHS position as
// tie-breaks, under two safety constraints that preserve LHS
// semantics:
//
//   - a positive condition element is schedulable only when every
//     variable of its non-equality tests (not preceded by a same-CE
//     binding occurrence) is already bound — MatchWith fails closed on
//     a non-equality test against an unbound variable;
//   - a negated condition element at LHS index i runs only after every
//     positive condition element with a smaller index, so its NOT
//     EXISTS check sees exactly the bindings it would in source order.
func buildPlan(db *relation.DB, r *rules.Rule, pinned int) *Plan {
	p := &Plan{Rule: r.Name, Pinned: pinned}
	if pinned >= 0 {
		p.DeltaClass = r.CEs[pinned].Class
	}
	bound := map[string]bool{}
	scheduled := make([]bool, len(r.CEs))

	add := func(step *PlanStep, ce *rules.CE) {
		step.Join = len(p.Steps)
		p.Steps = append(p.Steps, step)
		scheduled[ce.Index] = true
		if !ce.Negated || ce.Index == pinned {
			for _, v := range ce.ExtractableVars() {
				bound[v] = true
			}
		}
	}

	// schedulable reports whether ce may run under the current bound
	// set without changing semantics.
	schedulable := func(ce *rules.CE) bool {
		if ce.Negated {
			for _, other := range r.CEs {
				if !other.Negated && other.Index < ce.Index && !scheduled[other.Index] {
					return false
				}
			}
			return true
		}
		local := map[string]bool{}
		for _, vt := range ce.VarTests {
			if vt.Op == value.OpEq {
				local[vt.Var] = true
				continue
			}
			if !local[vt.Var] && !bound[vt.Var] {
				return false
			}
		}
		return true
	}

	for len(p.Steps) < len(r.CEs) {
		// The pinned condition element costs nothing (one MatchWith
		// against the delta tuple), so it runs as early as its own
		// non-equality tests allow — usually first.
		if pinned >= 0 && !scheduled[pinned] && schedulable(r.CEs[pinned]) {
			ce := r.CEs[pinned]
			add(&PlanStep{
				CE: ce.Index, Class: ce.Class, Negated: ce.Negated,
				Pinned: true, AccessPath: AccessPinned, EstRows: 1, BaseRows: 1,
			}, ce)
			continue
		}
		var best *PlanStep
		var bestCE *rules.CE
		for _, ce := range r.CEs {
			if scheduled[ce.Index] || ce.Index == pinned || !schedulable(ce) {
				continue
			}
			rel, ok := db.Get(ce.Class)
			var cand *PlanStep
			if ok {
				cand = buildStep(rel, ce, bound)
			} else {
				cand = &PlanStep{CE: ce.Index, Class: ce.Class, Negated: ce.Negated, AccessPath: AccessScan}
			}
			if best == nil || less(cand, best) {
				best, bestCE = cand, ce
			}
		}
		if best == nil {
			// Defensive: compilation guarantees source order is always
			// schedulable, so this cannot trigger; fall back to the
			// first unscheduled condition element to stay total.
			for _, ce := range r.CEs {
				if !scheduled[ce.Index] && ce.Index != pinned {
					rel, ok := db.Get(ce.Class)
					if ok {
						best = buildStep(rel, ce, bound)
					} else {
						best = &PlanStep{CE: ce.Index, Class: ce.Class, Negated: ce.Negated, AccessPath: AccessScan}
					}
					bestCE = ce
					break
				}
			}
			if best == nil {
				// Only the pinned element remains: schedule it even if
				// its non-equality tests stay unsatisfiable (MatchWith
				// then fails closed, exactly as source order would).
				ce := r.CEs[pinned]
				add(&PlanStep{
					CE: ce.Index, Class: ce.Class, Negated: ce.Negated,
					Pinned: true, AccessPath: AccessPinned, EstRows: 1, BaseRows: 1,
				}, ce)
				continue
			}
		}
		add(best, bestCE)
	}
	return p
}

// less orders candidate steps: fewer estimated output rows first, then
// cheaper probes, then LHS order for determinism.
func less(a, b *PlanStep) bool {
	if a.EstRows != b.EstRows {
		return a.EstRows < b.EstRows
	}
	ca, cb := probeCost(a), probeCost(b)
	if ca != cb {
		return ca < cb
	}
	return a.CE < b.CE
}

// sortPlans orders plans for rendering: full derivation first, then by
// pinned condition element.
func sortPlans(ps []*Plan) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Pinned < ps[j].Pinned })
}
