package quel

import (
	"fmt"
	"sort"
	"strings"

	"prodsys/internal/engine"
	"prodsys/internal/relation"
	"prodsys/internal/value"
)

// Result reports what one statement did.
type Result struct {
	Columns  []string   // retrieve
	Rows     [][]string // retrieve
	Affected int        // append/delete/replace: tuples changed
	Fired    int        // trigger firings caused by the statement
}

// Interp executes QUEL DML against an engine's working memory. Every
// data change goes through the engine so ALWAYS triggers (compiled into
// productions at load time) fire immediately afterwards, giving the
// run-indefinitely illusion of §2.3.
type Interp struct {
	eng *engine.Engine
	tr  *Translator
}

// NewInterp builds an interpreter. The translator carries the range
// declarations and class catalog.
func NewInterp(eng *engine.Engine, tr *Translator) *Interp {
	return &Interp{eng: eng, tr: tr}
}

// Exec parses and executes one statement. ALWAYS-tagged and create
// statements are rejected here: they are definition-time constructs
// handled by the loader.
func (in *Interp) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return in.ExecStmt(st)
}

// ExecStmt executes one parsed statement.
func (in *Interp) ExecStmt(st *Stmt) (*Result, error) {
	if st.Always {
		return nil, fmt.Errorf("quel: ALWAYS commands must be declared before loading (they compile into rules)")
	}
	switch st.Kind {
	case StmtCreate:
		return nil, fmt.Errorf("quel: create is a definition-time statement")
	case StmtRange:
		if err := in.tr.DeclareRange(st.Var, st.Class); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case StmtRetrieve:
		return in.retrieve(st)
	case StmtAppend:
		return in.append(st)
	case StmtDelete:
		return in.delete(st)
	case StmtReplace:
		return in.replace(st)
	default:
		return nil, fmt.Errorf("quel: unsupported statement")
	}
}

// binding is one assignment of tuples to the statement's range variables.
type binding map[string]struct {
	id relation.TupleID
	t  relation.Tuple
}

// rangeVarsOf collects the distinct range variables a statement touches,
// target first, in deterministic order.
func (in *Interp) rangeVarsOf(st *Stmt) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(v string) error {
		if v == "" || seen[v] {
			return nil
		}
		if _, err := in.tr.classOf(v); err != nil {
			return err
		}
		seen[v] = true
		out = append(out, v)
		return nil
	}
	if st.Var != "" && st.Kind != StmtRange {
		if err := add(st.Var); err != nil {
			return nil, err
		}
	}
	for _, t := range st.Targets {
		if err := add(t.Var); err != nil {
			return nil, err
		}
	}
	for _, a := range st.Assigns {
		if a.Expr.IsRef() {
			if err := add(a.Expr.Var); err != nil {
				return nil, err
			}
		}
	}
	for _, q := range st.Quals {
		if q.Left.IsRef() {
			if err := add(q.Left.Var); err != nil {
				return nil, err
			}
		}
		if q.Right.IsRef() {
			if err := add(q.Right.Var); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// resolve evaluates an operand under a binding.
func resolve(o Operand, b binding, tr *Translator) (value.V, error) {
	if !o.IsRef() {
		return o.Const, nil
	}
	ent, ok := b[o.Var]
	if !ok {
		return value.V{}, fmt.Errorf("quel: variable %q not bound", o.Var)
	}
	cls, _ := tr.classOf(o.Var)
	pos := attrIndex(tr.Classes[cls], o.Attr)
	if pos < 0 {
		return value.V{}, fmt.Errorf("quel: relation %s has no attribute %s", cls, o.Attr)
	}
	return ent.t[pos], nil
}

func attrIndex(attrs []string, attr string) int {
	for i, a := range attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// enumerate nested-loops over the statement's range variables, invoking
// fn for every combination satisfying the qualification.
func (in *Interp) enumerate(st *Stmt, fn func(b binding) error) error {
	vars, err := in.rangeVarsOf(st)
	if err != nil {
		return err
	}
	// Validate qualification attributes up front.
	for _, q := range st.Quals {
		for _, o := range []Operand{q.Left, q.Right} {
			if !o.IsRef() {
				continue
			}
			cls, _ := in.tr.classOf(o.Var)
			if attrIndex(in.tr.Classes[cls], o.Attr) < 0 {
				return fmt.Errorf("quel: relation %s has no attribute %s", cls, o.Attr)
			}
		}
	}
	b := binding{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			for _, q := range st.Quals {
				l, err := resolve(q.Left, b, in.tr)
				if err != nil {
					return err
				}
				r, err := resolve(q.Right, b, in.tr)
				if err != nil {
					return err
				}
				if !q.Op.Apply(l, r) {
					return nil
				}
			}
			return fn(b)
		}
		v := vars[i]
		cls, _ := in.tr.classOf(v)
		rel, ok := in.eng.DB().Get(cls)
		if !ok {
			return fmt.Errorf("quel: relation %s not in catalog", cls)
		}
		var ids []relation.TupleID
		var tuples []relation.Tuple
		rel.Scan(func(id relation.TupleID, t relation.Tuple) bool {
			ids = append(ids, id)
			tuples = append(tuples, t.Clone())
			return true
		})
		for j := range ids {
			b[v] = struct {
				id relation.TupleID
				t  relation.Tuple
			}{ids[j], tuples[j]}
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(b, v)
		return nil
	}
	return rec(0)
}

// runTriggers drains the conflict set after a data change.
func (in *Interp) runTriggers(res *Result) error {
	r, err := in.eng.RunSerial()
	res.Fired += r.Firings
	return err
}

func (in *Interp) retrieve(st *Stmt) (*Result, error) {
	res := &Result{}
	for _, t := range st.Targets {
		cls, err := in.tr.classOf(t.Var)
		if err != nil {
			return nil, err
		}
		if attrIndex(in.tr.Classes[cls], t.Attr) < 0 {
			return nil, fmt.Errorf("quel: relation %s has no attribute %s", cls, t.Attr)
		}
		res.Columns = append(res.Columns, t.String())
	}
	err := in.enumerate(st, func(b binding) error {
		row := make([]string, len(st.Targets))
		for i, t := range st.Targets {
			v, err := resolve(t, b, in.tr)
			if err != nil {
				return err
			}
			row[i] = renderValue(v)
		}
		res.Rows = append(res.Rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return strings.Join(res.Rows[i], "\x00") < strings.Join(res.Rows[j], "\x00")
	})
	return res, nil
}

func renderValue(v value.V) string {
	if v.Kind() == value.Str || v.Kind() == value.Sym {
		return v.AsString()
	}
	return v.String()
}

func (in *Interp) append(st *Stmt) (*Result, error) {
	attrs, ok := in.tr.Classes[st.Class]
	if !ok {
		return nil, fmt.Errorf("quel: append to unknown relation %s", st.Class)
	}
	t := make(relation.Tuple, len(attrs))
	for _, as := range st.Assigns {
		pos := attrIndex(attrs, as.Attr)
		if pos < 0 {
			return nil, fmt.Errorf("quel: relation %s has no attribute %s", st.Class, as.Attr)
		}
		if as.Expr.IsRef() {
			return nil, fmt.Errorf("quel: append values must be constants")
		}
		t[pos] = as.Expr.Const
	}
	res := &Result{}
	if _, err := in.eng.Assert(st.Class, t); err != nil {
		return nil, err
	}
	res.Affected = 1
	return res, in.runTriggers(res)
}

func (in *Interp) delete(st *Stmt) (*Result, error) {
	cls, err := in.tr.classOf(st.Var)
	if err != nil {
		return nil, err
	}
	// Collect distinct target ids first (the scan must not race the
	// deletions).
	ids := map[relation.TupleID]bool{}
	err = in.enumerate(st, func(b binding) error {
		ids[b[st.Var].id] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	ordered := make([]relation.TupleID, 0, len(ids))
	for id := range ids {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, id := range ordered {
		if err := in.eng.Retract(cls, id); err != nil {
			return nil, err
		}
		res.Affected++
	}
	return res, in.runTriggers(res)
}

func (in *Interp) replace(st *Stmt) (*Result, error) {
	cls, err := in.tr.classOf(st.Var)
	if err != nil {
		return nil, err
	}
	attrs := in.tr.Classes[cls]
	// Compute each target's replacement tuple; the first qualifying
	// combination wins when several assign the same target.
	type change struct {
		id relation.TupleID
		t  relation.Tuple
	}
	var changes []change
	seen := map[relation.TupleID]bool{}
	err = in.enumerate(st, func(b binding) error {
		ent := b[st.Var]
		if seen[ent.id] {
			return nil
		}
		seen[ent.id] = true
		nt := ent.t.Clone()
		for _, as := range st.Assigns {
			pos := attrIndex(attrs, as.Attr)
			if pos < 0 {
				return fmt.Errorf("quel: relation %s has no attribute %s", cls, as.Attr)
			}
			v, err := resolve(as.Expr, b, in.tr)
			if err != nil {
				return err
			}
			nt[pos] = v
		}
		changes = append(changes, change{ent.id, nt})
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, ch := range changes {
		// A replace is a delete followed by an insert (§3.1).
		if err := in.eng.Retract(cls, ch.id); err != nil {
			return nil, err
		}
		if _, err := in.eng.Assert(cls, ch.t); err != nil {
			return nil, err
		}
		res.Affected++
	}
	return res, in.runTriggers(res)
}
