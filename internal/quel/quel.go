// Package quel implements the QUEL subset of §2.3: range declarations,
// retrieve/append/delete/replace statements over the working-memory
// relations, and — the paper's motivating case — commands tagged ALWAYS,
// which "conceptually appear to run indefinitely" and are translated into
// productions so the match machinery maintains them as triggers.
//
// The paper's example becomes executable as written:
//
//	range of E is Emp
//	replace ALWAYS Emp (salary = E.salary)
//	    where Emp.name = "Mike" and E.name = "Sam"
//
// translates to the production
//
//	(p quel-always-1
//	    (Emp ^name "Sam" ^salary <q0>)
//	    (Emp ^name "Mike" ^salary <> <q0>)
//	  -->
//	    (modify 2 ^salary <q0>))
//
// whose not-equal guard both detects violations and guarantees
// quiescence once the trigger's invariant holds.
package quel

import (
	"fmt"
	"strconv"
	"strings"

	"prodsys/internal/value"
)

// StmtKind classifies statements.
type StmtKind uint8

// The statement kinds.
const (
	StmtCreate StmtKind = iota
	StmtRange
	StmtRetrieve
	StmtAppend
	StmtDelete
	StmtReplace
)

// String names the kind.
func (k StmtKind) String() string {
	switch k {
	case StmtCreate:
		return "create"
	case StmtRange:
		return "range"
	case StmtRetrieve:
		return "retrieve"
	case StmtAppend:
		return "append"
	case StmtDelete:
		return "delete"
	case StmtReplace:
		return "replace"
	default:
		return fmt.Sprintf("StmtKind(%d)", uint8(k))
	}
}

// Operand is a qualification operand: a var.attr reference or a constant.
type Operand struct {
	Var   string // non-empty for attribute references
	Attr  string
	Const value.V
}

// IsRef reports whether the operand is a var.attr reference.
func (o Operand) IsRef() bool { return o.Var != "" }

// String renders the operand.
func (o Operand) String() string {
	if o.IsRef() {
		return o.Var + "." + o.Attr
	}
	return o.Const.String()
}

// Cond is one qualification conjunct: Left Op Right.
type Cond struct {
	Left  Operand
	Op    value.Op
	Right Operand
}

// Assign sets one attribute in append/replace.
type Assign struct {
	Attr string
	Expr Operand
}

// Stmt is one parsed QUEL statement.
type Stmt struct {
	Kind    StmtKind
	Always  bool      // replace/delete/append ALWAYS
	Class   string    // create/append: relation name; range: relation
	Var     string    // range: variable; delete/replace: target variable
	Attrs   []string  // create: attribute names
	Targets []Operand // retrieve: target list (refs only)
	Assigns []Assign  // append/replace
	Quals   []Cond    // where clause, conjunctive
	Src     string    // original text, for diagnostics
}

// ---------------------------------------------------------------------
// Lexing

type token struct {
	kind string // "ident", "num", "str", "punct", "eof"
	text string
	num  value.V
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: "eof"}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(' || c == ')' || c == ',' || c == '.':
		l.pos++
		return token{kind: "punct", text: string(c)}, nil
	case c == '=':
		l.pos++
		return token{kind: "punct", text: "="}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: "punct", text: "!="}, nil
		}
		return token{}, fmt.Errorf("quel: stray '!'")
	case c == '<':
		if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '=' || l.src[l.pos+1] == '>') {
			t := l.src[l.pos : l.pos+2]
			l.pos += 2
			return token{kind: "punct", text: t}, nil
		}
		l.pos++
		return token{kind: "punct", text: "<"}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: "punct", text: ">="}, nil
		}
		l.pos++
		return token{kind: "punct", text: ">"}, nil
	case c == '"' || c == '\'':
		quote := c
		end := l.pos + 1
		for end < len(l.src) && l.src[end] != quote {
			end++
		}
		if end >= len(l.src) {
			return token{}, fmt.Errorf("quel: unterminated string")
		}
		text := l.src[l.pos+1 : end]
		l.pos = end + 1
		return token{kind: "str", text: text}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			// A '.' followed by a non-digit is a field separator, not a
			// decimal point.
			if l.src[l.pos] == '.' && (l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9') {
				break
			}
			l.pos++
		}
		text := l.src[start:l.pos]
		if strings.Contains(text, ".") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return token{}, fmt.Errorf("quel: bad number %q", text)
			}
			return token{kind: "num", num: value.OfFloat(f)}, nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return token{}, fmt.Errorf("quel: bad number %q", text)
		}
		return token{kind: "num", num: value.OfInt(i)}, nil
	default:
		start := l.pos
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start {
			return token{}, fmt.Errorf("quel: unexpected character %q", c)
		}
		return token{kind: "ident", text: l.src[start:l.pos]}, nil
	}
}

func isIdentChar(c byte) bool {
	return c == '_' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// ---------------------------------------------------------------------
// Parsing

type parser struct {
	toks []token
	pos  int
	src  string
}

func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		if t.kind == "eof" {
			return out, nil
		}
		out = append(out, t)
	}
}

func (p *parser) cur() token {
	if p.pos >= len(p.toks) {
		return token{kind: "eof"}
	}
	return p.toks[p.pos]
}

func (p *parser) advance() token {
	t := p.cur()
	p.pos++
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("quel: %s (in %q)", fmt.Sprintf(format, args...), p.src)
}

func (p *parser) expectIdent(words ...string) (string, error) {
	t := p.advance()
	if t.kind != "ident" {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	if len(words) == 0 {
		return t.text, nil
	}
	for _, w := range words {
		if strings.EqualFold(t.text, w) {
			return w, nil
		}
	}
	return "", p.errf("expected %v, found %q", words, t.text)
}

func (p *parser) expectPunct(text string) error {
	t := p.advance()
	if t.kind != "punct" || t.text != text {
		return p.errf("expected %q, found %q", text, t.text)
	}
	return nil
}

// Parse parses one QUEL statement.
func Parse(src string) (*Stmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, fmt.Errorf("%v (in %q)", err, src)
	}
	p := &parser{toks: toks, src: strings.TrimSpace(src)}
	head := p.advance()
	if head.kind != "ident" {
		return nil, p.errf("expected a statement keyword")
	}
	st := &Stmt{Src: p.src}
	switch strings.ToLower(head.text) {
	case "create":
		return p.parseCreate(st)
	case "range":
		return p.parseRange(st)
	case "retrieve":
		return p.parseRetrieve(st)
	case "append":
		return p.parseAppend(st)
	case "delete":
		return p.parseDelete(st)
	case "replace":
		return p.parseReplace(st)
	default:
		return nil, p.errf("unknown statement %q", head.text)
	}
}

func (p *parser) parseCreate(st *Stmt) (*Stmt, error) {
	st.Kind = StmtCreate
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Class = name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Attrs = append(st.Attrs, attr)
		t := p.advance()
		if t.kind == "punct" && t.text == ")" {
			return st, p.expectEOF()
		}
		if t.kind != "punct" || t.text != "," {
			return nil, p.errf("expected ',' or ')' in create")
		}
	}
}

func (p *parser) parseRange(st *Stmt) (*Stmt, error) {
	st.Kind = StmtRange
	if _, err := p.expectIdent("of"); err != nil {
		return nil, err
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectIdent("is"); err != nil {
		return nil, err
	}
	cls, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Var, st.Class = v, cls
	return st, p.expectEOF()
}

func (p *parser) parseRetrieve(st *Stmt) (*Stmt, error) {
	st.Kind = StmtRetrieve
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		op, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if !op.IsRef() {
			return nil, p.errf("retrieve targets must be var.attr references")
		}
		st.Targets = append(st.Targets, op)
		t := p.advance()
		if t.kind == "punct" && t.text == ")" {
			break
		}
		if t.kind != "punct" || t.text != "," {
			return nil, p.errf("expected ',' or ')' in target list")
		}
	}
	return st, p.parseWhere(st)
}

func (p *parser) parseAppend(st *Stmt) (*Stmt, error) {
	st.Kind = StmtAppend
	if t := p.cur(); t.kind == "ident" && strings.EqualFold(t.text, "always") {
		p.advance()
		st.Always = true
	}
	if t := p.cur(); t.kind == "ident" && strings.EqualFold(t.text, "to") {
		p.advance()
	}
	cls, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Class = cls
	if err := p.parseAssigns(st); err != nil {
		return nil, err
	}
	return st, p.parseWhere(st)
}

func (p *parser) parseDelete(st *Stmt) (*Stmt, error) {
	st.Kind = StmtDelete
	if t := p.cur(); t.kind == "ident" && strings.EqualFold(t.text, "always") {
		p.advance()
		st.Always = true
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Var = v
	return st, p.parseWhere(st)
}

func (p *parser) parseReplace(st *Stmt) (*Stmt, error) {
	st.Kind = StmtReplace
	if t := p.cur(); t.kind == "ident" && strings.EqualFold(t.text, "always") {
		p.advance()
		st.Always = true
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Var = v
	if err := p.parseAssigns(st); err != nil {
		return nil, err
	}
	return st, p.parseWhere(st)
}

func (p *parser) parseAssigns(st *Stmt) error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	for {
		attr, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("="); err != nil {
			return err
		}
		expr, err := p.parseOperand()
		if err != nil {
			return err
		}
		st.Assigns = append(st.Assigns, Assign{Attr: attr, Expr: expr})
		t := p.advance()
		if t.kind == "punct" && t.text == ")" {
			return nil
		}
		if t.kind != "punct" || t.text != "," {
			return p.errf("expected ',' or ')' in assignment list")
		}
	}
}

func (p *parser) parseWhere(st *Stmt) error {
	t := p.cur()
	if t.kind == "eof" {
		return nil
	}
	if t.kind != "ident" || !strings.EqualFold(t.text, "where") {
		return p.errf("expected 'where' or end of statement, found %q", t.text)
	}
	p.advance()
	for {
		left, err := p.parseOperand()
		if err != nil {
			return err
		}
		opTok := p.advance()
		if opTok.kind != "punct" {
			return p.errf("expected comparison operator, found %q", opTok.text)
		}
		op, ok := value.ParseOp(opTok.text)
		if !ok {
			return p.errf("unknown operator %q", opTok.text)
		}
		right, err := p.parseOperand()
		if err != nil {
			return err
		}
		st.Quals = append(st.Quals, Cond{Left: left, Op: op, Right: right})
		t = p.cur()
		if t.kind == "eof" {
			return nil
		}
		if t.kind == "ident" && strings.EqualFold(t.text, "and") {
			p.advance()
			continue
		}
		return p.errf("expected 'and' or end of statement, found %q", t.text)
	}
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.advance()
	switch t.kind {
	case "num":
		return Operand{Const: t.num}, nil
	case "str":
		return Operand{Const: value.OfSym(t.text)}, nil
	case "ident":
		if p.cur().kind == "punct" && p.cur().text == "." {
			p.advance()
			attr, err := p.expectIdent()
			if err != nil {
				return Operand{}, err
			}
			return Operand{Var: t.text, Attr: attr}, nil
		}
		return Operand{Const: value.OfSym(t.text)}, nil
	default:
		return Operand{}, p.errf("expected an operand, found %q", t.text)
	}
}

func (p *parser) expectEOF() error {
	if p.cur().kind != "eof" {
		return p.errf("trailing input after statement")
	}
	return nil
}

// SplitStatements splits a QUEL script into statements: each statement
// starts at a line whose first word is a statement keyword; continuation
// lines (e.g. a where clause) attach to the preceding statement. Lines
// starting with '#' or '--' are comments.
func SplitStatements(script string) []string {
	keywords := map[string]bool{
		"create": true, "range": true, "retrieve": true,
		"append": true, "delete": true, "replace": true,
	}
	var out []string
	var cur strings.Builder
	flush := func() {
		if s := strings.TrimSpace(cur.String()); s != "" {
			out = append(out, s)
		}
		cur.Reset()
	}
	for _, line := range strings.Split(script, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || strings.HasPrefix(trimmed, "--") {
			continue
		}
		first := strings.ToLower(strings.FieldsFunc(trimmed, func(r rune) bool {
			return r == ' ' || r == '\t' || r == '('
		})[0])
		if keywords[first] {
			flush()
		}
		cur.WriteString(line)
		cur.WriteByte('\n')
	}
	flush()
	return out
}
