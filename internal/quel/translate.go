package quel

import (
	"fmt"
	"strings"

	"prodsys/internal/value"
)

// Translator turns ALWAYS-tagged QUEL commands into OPS5 productions, the
// §2.3 trigger mechanism: "Triggers are formed by tagging any QUEL
// command with the keyword ALWAYS. Such tagged commands conceptually
// appear to run indefinitely."
type Translator struct {
	// Ranges maps declared range variables to their relations.
	Ranges map[string]string
	// Classes maps class name → attribute list, for attribute checking.
	Classes map[string][]string
	n       int
}

// NewTranslator builds a translator over the class catalog.
func NewTranslator(classes map[string][]string) *Translator {
	return &Translator{Ranges: map[string]string{}, Classes: classes}
}

// DeclareRange records a range statement.
func (tr *Translator) DeclareRange(v, class string) error {
	if _, ok := tr.Classes[class]; !ok {
		return fmt.Errorf("quel: range over unknown relation %s", class)
	}
	tr.Ranges[v] = class
	return nil
}

// classOf resolves a variable: a declared range variable, or a class name
// used as its own implicit range variable (the paper writes
// "replace ALWAYS EMP (...)" with EMP both relation and variable).
func (tr *Translator) classOf(v string) (string, error) {
	if cls, ok := tr.Ranges[v]; ok {
		return cls, nil
	}
	if _, ok := tr.Classes[v]; ok {
		return v, nil
	}
	return "", fmt.Errorf("quel: unknown range variable %q", v)
}

func (tr *Translator) attrPos(class, attr string) error {
	for _, a := range tr.Classes[class] {
		if a == attr {
			return nil
		}
	}
	return fmt.Errorf("quel: relation %s has no attribute %s", class, attr)
}

// ceDraft accumulates the rendered attribute tests of one condition
// element during translation.
type ceDraft struct {
	qvar  string // range variable
	class string
	tests []string
}

// builder assembles the production.
type builder struct {
	tr *Translator
	// ces in order; the target variable's CE is appended last.
	ces    []*ceDraft
	byVar  map[string]*ceDraft
	bindOf map[string]string // "var.attr" → OPS5 variable name
	nvar   int
	// target is the variable whose CE is emitted last (remove/modify
	// targets); bindings prefer the other side of a condition so that
	// binder condition elements precede their uses.
	target string
}

func (tr *Translator) newBuilder(target string) *builder {
	return &builder{tr: tr, byVar: map[string]*ceDraft{}, bindOf: map[string]string{}, target: target}
}

// ceFor returns (creating on demand) the draft CE of a range variable.
func (b *builder) ceFor(v string) (*ceDraft, error) {
	if ce, ok := b.byVar[v]; ok {
		return ce, nil
	}
	cls, err := b.tr.classOf(v)
	if err != nil {
		return nil, err
	}
	ce := &ceDraft{qvar: v, class: cls}
	b.byVar[v] = ce
	b.ces = append(b.ces, ce)
	return ce, nil
}

// bind ensures var.attr is equality-bound to an OPS5 variable and returns
// the variable name.
func (b *builder) bind(v, attr string) (string, error) {
	key := v + "." + attr
	if name, ok := b.bindOf[key]; ok {
		return name, nil
	}
	ce, err := b.ceFor(v)
	if err != nil {
		return "", err
	}
	if err := b.tr.attrPos(ce.class, attr); err != nil {
		return "", err
	}
	name := fmt.Sprintf("q%d", b.nvar)
	b.nvar++
	b.bindOf[key] = name
	ce.tests = append(ce.tests, fmt.Sprintf("^%s <%s>", attr, name))
	return name, nil
}

// addQual renders one qualification conjunct into the draft CEs.
func (b *builder) addQual(c Cond) error {
	switch {
	case c.Left.IsRef() && !c.Right.IsRef():
		ce, err := b.ceFor(c.Left.Var)
		if err != nil {
			return err
		}
		if err := b.tr.attrPos(ce.class, c.Left.Attr); err != nil {
			return err
		}
		ce.tests = append(ce.tests, renderTest(c.Left.Attr, c.Op, c.Right.Const.String()))
		return nil
	case !c.Left.IsRef() && c.Right.IsRef():
		return b.addQual(Cond{Left: c.Right, Op: c.Op.Flip(), Right: c.Left})
	case c.Left.IsRef() && c.Right.IsRef():
		// Bind the left side, test on the right side with the flipped
		// operator (right.attr flip(op) leftVar ⟺ left.attr op right.attr).
		// The target's CE is emitted last, so when the left side is the
		// target the condition is mirrored to bind on the other variable.
		if c.Left.Var == b.target && c.Right.Var != b.target {
			return b.addQual(Cond{Left: c.Right, Op: c.Op.Flip(), Right: c.Left})
		}
		name, err := b.bind(c.Left.Var, c.Left.Attr)
		if err != nil {
			return err
		}
		ce, err := b.ceFor(c.Right.Var)
		if err != nil {
			return err
		}
		if err := b.tr.attrPos(ce.class, c.Right.Attr); err != nil {
			return err
		}
		ce.tests = append(ce.tests, renderTest(c.Right.Attr, c.Op.Flip(), "<"+name+">"))
		return nil
	default:
		return fmt.Errorf("quel: qualification compares two constants")
	}
}

func renderTest(attr string, op value.Op, rhs string) string {
	if op == value.OpEq {
		return fmt.Sprintf("^%s %s", attr, rhs)
	}
	return fmt.Sprintf("^%s %s %s", attr, op, rhs)
}

// render emits the production source.
func (b *builder) render(name string, targetTests []string, target *ceDraft, actions []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "(p %s\n", name)
	emit := func(ce *ceDraft, extra []string) {
		sb.WriteString("    (")
		sb.WriteString(ce.class)
		for _, t := range ce.tests {
			sb.WriteByte(' ')
			sb.WriteString(t)
		}
		for _, t := range extra {
			sb.WriteByte(' ')
			sb.WriteString(t)
		}
		sb.WriteString(")\n")
	}
	for _, ce := range b.ces {
		if ce == target {
			continue // target goes last so its guard variables are bound
		}
		emit(ce, nil)
	}
	if target != nil {
		emit(target, targetTests)
	}
	sb.WriteString("  -->\n")
	for _, a := range actions {
		sb.WriteString("    ")
		sb.WriteString(a)
		sb.WriteByte('\n')
	}
	sb.WriteString(")\n")
	return sb.String()
}

// targetIndex returns the 1-based CEN of the target (always last).
func (b *builder) targetIndex() int { return len(b.ces) }

// TranslateAlways renders the productions implementing one ALWAYS
// command. A replace with several assignments yields one production per
// assignment (each needs its own inequality guard for quiescence).
func (tr *Translator) TranslateAlways(st *Stmt) ([]string, error) {
	if !st.Always {
		return nil, fmt.Errorf("quel: statement is not tagged ALWAYS")
	}
	switch st.Kind {
	case StmtReplace:
		return tr.translateReplaceAlways(st)
	case StmtDelete:
		return tr.translateDeleteAlways(st)
	case StmtAppend:
		return tr.translateAppendAlways(st)
	default:
		return nil, fmt.Errorf("quel: %s cannot be tagged ALWAYS", st.Kind)
	}
}

func (tr *Translator) translateReplaceAlways(st *Stmt) ([]string, error) {
	var out []string
	for _, as := range st.Assigns {
		b := tr.newBuilder(st.Var)
		// Evaluate the assignment source first so its binder CE precedes
		// the target.
		var rhs string // OPS5 term for the new value
		if as.Expr.IsRef() {
			name, err := b.bind(as.Expr.Var, as.Expr.Attr)
			if err != nil {
				return nil, err
			}
			rhs = "<" + name + ">"
		} else {
			rhs = as.Expr.Const.String()
		}
		for _, q := range st.Quals {
			if err := b.addQual(q); err != nil {
				return nil, err
			}
		}
		target, err := b.ceFor(st.Var)
		if err != nil {
			return nil, err
		}
		if err := tr.attrPos(target.class, as.Attr); err != nil {
			return nil, err
		}
		tr.n++
		name := fmt.Sprintf("quel-always-%d", tr.n)
		// Guard: fire only while the attribute differs from the source.
		guard := []string{fmt.Sprintf("^%s <> %s", as.Attr, rhs)}
		action := fmt.Sprintf("(modify %d ^%s %s)", b.targetIndex(), as.Attr, rhs)
		out = append(out, b.render(name, guard, target, []string{action}))
	}
	return out, nil
}

func (tr *Translator) translateDeleteAlways(st *Stmt) ([]string, error) {
	b := tr.newBuilder(st.Var)
	for _, q := range st.Quals {
		if err := b.addQual(q); err != nil {
			return nil, err
		}
	}
	target, err := b.ceFor(st.Var)
	if err != nil {
		return nil, err
	}
	_ = target
	tr.n++
	name := fmt.Sprintf("quel-always-%d", tr.n)
	action := fmt.Sprintf("(remove %d)", b.targetIndex())
	return []string{b.render(name, nil, target, []string{action})}, nil
}

func (tr *Translator) translateAppendAlways(st *Stmt) ([]string, error) {
	if _, ok := tr.Classes[st.Class]; !ok {
		return nil, fmt.Errorf("quel: append to unknown relation %s", st.Class)
	}
	b := tr.newBuilder("")
	// Resolve assignment sources (binding range variables as needed).
	terms := make([]string, len(st.Assigns))
	for i, as := range st.Assigns {
		if err := tr.attrPos(st.Class, as.Attr); err != nil {
			return nil, err
		}
		if as.Expr.IsRef() {
			name, err := b.bind(as.Expr.Var, as.Expr.Attr)
			if err != nil {
				return nil, err
			}
			terms[i] = "<" + name + ">"
		} else {
			terms[i] = as.Expr.Const.String()
		}
	}
	for _, q := range st.Quals {
		if err := b.addQual(q); err != nil {
			return nil, err
		}
	}
	if len(b.ces) == 0 {
		return nil, fmt.Errorf("quel: append ALWAYS needs at least one range variable in its qualification")
	}
	tr.n++
	name := fmt.Sprintf("quel-always-%d", tr.n)
	// Quiescence guard: NOT EXISTS an identical tuple.
	var neg strings.Builder
	neg.WriteString("- (")
	neg.WriteString(st.Class)
	for i, as := range st.Assigns {
		fmt.Fprintf(&neg, " ^%s %s", as.Attr, terms[i])
	}
	neg.WriteString(")")
	var mk strings.Builder
	mk.WriteString("(make ")
	mk.WriteString(st.Class)
	for i, as := range st.Assigns {
		fmt.Fprintf(&mk, " ^%s %s", as.Attr, terms[i])
	}
	mk.WriteString(")")

	// Render manually: positive CEs, then the negated guard, then action.
	var sb strings.Builder
	fmt.Fprintf(&sb, "(p %s\n", name)
	for _, ce := range b.ces {
		sb.WriteString("    (")
		sb.WriteString(ce.class)
		for _, t := range ce.tests {
			sb.WriteByte(' ')
			sb.WriteString(t)
		}
		sb.WriteString(")\n")
	}
	sb.WriteString("    ")
	sb.WriteString(neg.String())
	sb.WriteString("\n  -->\n    ")
	sb.WriteString(mk.String())
	sb.WriteString("\n)\n")
	return []string{sb.String()}, nil
}
