package quel

import (
	"reflect"
	"strings"
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/engine"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

func TestParseRange(t *testing.T) {
	st, err := Parse("range of E is Emp")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtRange || st.Var != "E" || st.Class != "Emp" {
		t.Fatalf("parsed %+v", st)
	}
}

func TestParseRetrieve(t *testing.T) {
	st, err := Parse(`retrieve (E.name, E.salary) where E.salary > 1000 and E.dno = D.dno`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtRetrieve || len(st.Targets) != 2 || len(st.Quals) != 2 {
		t.Fatalf("parsed %+v", st)
	}
	if st.Targets[0].Var != "E" || st.Targets[0].Attr != "name" {
		t.Fatalf("target 0: %+v", st.Targets[0])
	}
	q := st.Quals[0]
	if !q.Left.IsRef() || q.Op != value.OpGt || !value.Equal(q.Right.Const, value.OfInt(1000)) {
		t.Fatalf("qual 0: %+v", q)
	}
	if !st.Quals[1].Right.IsRef() {
		t.Fatalf("qual 1: %+v", st.Quals[1])
	}
}

func TestParseAppendDeleteReplace(t *testing.T) {
	st, err := Parse(`append to Emp (name = "Zoe", salary = 1200, dno = 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtAppend || st.Class != "Emp" || len(st.Assigns) != 3 {
		t.Fatalf("append: %+v", st)
	}
	if st.Assigns[0].Expr.Const.AsString() != "Zoe" {
		t.Fatalf("assign 0: %+v", st.Assigns[0])
	}

	st, err = Parse(`delete E where E.salary < 100`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtDelete || st.Var != "E" || len(st.Quals) != 1 {
		t.Fatalf("delete: %+v", st)
	}

	st, err = Parse(`replace E (salary = 999) where E.name = "Sam"`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtReplace || st.Always || st.Var != "E" {
		t.Fatalf("replace: %+v", st)
	}

	st, err = Parse(`replace ALWAYS Emp (salary = E.salary) where Emp.name = "Mike" and E.name = "Sam"`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Always || st.Var != "Emp" || !st.Assigns[0].Expr.IsRef() {
		t.Fatalf("always replace: %+v", st)
	}
}

func TestParseCreate(t *testing.T) {
	st, err := Parse("create Emp (name, age, salary, dno)")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtCreate || st.Class != "Emp" || len(st.Attrs) != 4 {
		t.Fatalf("create: %+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"42",
		"frobnicate x",
		"range E is Emp",
		"range of E Emp",
		"retrieve E.name",
		"retrieve (42)",
		"retrieve (E.name) whence E.x = 1",
		"retrieve (E.name) where E.x = 1 or E.y = 2",
		"retrieve (E.name) where 1 = 2 garbage",
		"append to Emp name = 1",
		"append to Emp (name 1)",
		"delete",
		"replace E (x = ) where E.y = 1",
		`retrieve (E.name) where E.x ~ 1`,
		`retrieve (E.name) where "unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSplitStatements(t *testing.T) {
	script := `
# a comment
create Emp (name, salary)
range of E is Emp
-- another comment
replace ALWAYS Emp (salary = E.salary)
    where Emp.name = "Mike" and E.name = "Sam"
append to Emp (name = "Mike", salary = 1)
`
	got := SplitStatements(script)
	if len(got) != 4 {
		t.Fatalf("statements = %d: %q", len(got), got)
	}
	if !strings.Contains(got[2], "where") {
		t.Fatalf("continuation line lost: %q", got[2])
	}
}

// fixture builds an engine with Emp/Dept plus the translated ALWAYS rules.
type fixture struct {
	eng *engine.Engine
	in  *Interp
	tr  *Translator
}

func setup(t *testing.T, alwaysStmts []string) *fixture {
	t.Helper()
	classes := map[string][]string{
		"Emp":  {"name", "salary", "dno"},
		"Dept": {"dno", "dname"},
	}
	tr := NewTranslator(classes)
	tr.DeclareRange("E", "Emp")
	tr.DeclareRange("D", "Dept")
	var src strings.Builder
	src.WriteString("(literalize Emp name salary dno)\n(literalize Dept dno dname)\n")
	for _, a := range alwaysStmts {
		st, err := Parse(a)
		if err != nil {
			t.Fatal(err)
		}
		prods, err := tr.TranslateAlways(st)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range prods {
			src.WriteString(p)
		}
	}
	set, prog, err := rules.CompileSource(src.String())
	if err != nil {
		t.Fatalf("translated rules do not compile: %v\n%s", err, src.String())
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	m := core.New(set, db, conflict.NewSet(stats), stats)
	eng := engine.New(set, db, m, stats, engine.Config{})
	if err := eng.LoadFacts(prog); err != nil {
		t.Fatal(err)
	}
	return &fixture{eng: eng, in: NewInterp(eng, tr), tr: tr}
}

func (f *fixture) mustExec(t *testing.T, stmt string) *Result {
	t.Helper()
	r, err := f.in.Exec(stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return r
}

func TestDMLRoundTrip(t *testing.T) {
	f := setup(t, nil)
	f.mustExec(t, `append to Emp (name = "Ann", salary = 500, dno = 1)`)
	f.mustExec(t, `append to Emp (name = "Bob", salary = 900, dno = 2)`)
	f.mustExec(t, `append to Dept (dno = 1, dname = "Toy")`)

	r := f.mustExec(t, `retrieve (E.name, E.salary)`)
	want := [][]string{{"Ann", "500"}, {"Bob", "900"}}
	if !reflect.DeepEqual(r.Rows, want) {
		t.Fatalf("retrieve = %v", r.Rows)
	}
	// Join through the qualification.
	r = f.mustExec(t, `retrieve (E.name, D.dname) where E.dno = D.dno`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "Ann" || r.Rows[0][1] != "Toy" {
		t.Fatalf("join retrieve = %v", r.Rows)
	}
	// Replace.
	r = f.mustExec(t, `replace E (salary = 1000) where E.name = "Ann"`)
	if r.Affected != 1 {
		t.Fatalf("replace affected = %d", r.Affected)
	}
	r = f.mustExec(t, `retrieve (E.salary) where E.name = "Ann"`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "1000" {
		t.Fatalf("after replace = %v", r.Rows)
	}
	// Delete.
	r = f.mustExec(t, `delete E where E.salary >= 1000`)
	if r.Affected != 1 {
		t.Fatalf("delete affected = %d", r.Affected)
	}
	r = f.mustExec(t, `retrieve (E.name)`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "Bob" {
		t.Fatalf("after delete = %v", r.Rows)
	}
}

// TestPaperALWAYSTrigger reproduces §2.3's example verbatim: Mike's
// salary always equals Sam's.
func TestPaperALWAYSTrigger(t *testing.T) {
	f := setup(t, []string{
		`replace ALWAYS Emp (salary = E.salary) where Emp.name = "Mike" and E.name = "Sam"`,
	})
	f.mustExec(t, `append to Emp (name = "Sam", salary = 900, dno = 1)`)
	r := f.mustExec(t, `append to Emp (name = "Mike", salary = 500, dno = 1)`)
	if r.Fired == 0 {
		t.Fatal("trigger should fire when Mike enters underpaid")
	}
	rows := f.mustExec(t, `retrieve (E.salary) where E.name = "Mike"`).Rows
	if len(rows) != 1 || rows[0][0] != "900" {
		t.Fatalf("Mike's salary = %v, want 900", rows)
	}
	// The paper's own update: "replace EMP (salary = 1000) where
	// EMP.name = 'Sam'" — the trigger must propagate to Mike.
	r = f.mustExec(t, `replace E (salary = 1000) where E.name = "Sam"`)
	if r.Fired == 0 {
		t.Fatal("trigger should re-fire after Sam's raise")
	}
	rows = f.mustExec(t, `retrieve (E.salary) where E.name = "Mike"`).Rows
	if len(rows) != 1 || rows[0][0] != "1000" {
		t.Fatalf("Mike's salary after Sam's raise = %v, want 1000", rows)
	}
}

func TestDeleteAlwaysTrigger(t *testing.T) {
	f := setup(t, []string{
		`delete ALWAYS E where E.salary < 0`,
	})
	f.mustExec(t, `append to Emp (name = "Ok", salary = 10, dno = 1)`)
	r := f.mustExec(t, `append to Emp (name = "Bad", salary = -5, dno = 1)`)
	if r.Fired == 0 {
		t.Fatal("delete trigger should fire")
	}
	rows := f.mustExec(t, `retrieve (E.name)`).Rows
	if len(rows) != 1 || rows[0][0] != "Ok" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAppendAlwaysTrigger(t *testing.T) {
	// Every Toy-department employee gets a default Dept row created once.
	f := setup(t, []string{
		`append ALWAYS Dept (dno = E.dno, dname = "auto") where E.salary > 100`,
	})
	f.mustExec(t, `append to Emp (name = "Ann", salary = 500, dno = 7)`)
	rows := f.mustExec(t, `retrieve (D.dno, D.dname)`).Rows
	if len(rows) != 1 || rows[0][0] != "7" || rows[0][1] != "auto" {
		t.Fatalf("auto dept = %v", rows)
	}
	// Quiescence: a second identical employee does not duplicate the row.
	f.mustExec(t, `append to Emp (name = "Bob", salary = 600, dno = 7)`)
	rows = f.mustExec(t, `retrieve (D.dno)`).Rows
	if len(rows) != 1 {
		t.Fatalf("dept duplicated: %v", rows)
	}
}

func TestTranslateReplaceAlwaysShape(t *testing.T) {
	tr := NewTranslator(map[string][]string{"Emp": {"name", "salary", "dno"}})
	tr.DeclareRange("E", "Emp")
	st, err := Parse(`replace ALWAYS Emp (salary = E.salary) where Emp.name = "Mike" and E.name = "Sam"`)
	if err != nil {
		t.Fatal(err)
	}
	prods, err := tr.TranslateAlways(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(prods) != 1 {
		t.Fatalf("productions = %d", len(prods))
	}
	src := prods[0]
	for _, want := range []string{"^name Sam", "^salary <q0>", "^name Mike", "^salary <> <q0>", "(modify 2 ^salary <q0>)"} {
		if !strings.Contains(src, want) {
			t.Fatalf("translation missing %q:\n%s", want, src)
		}
	}
	// And it must compile.
	full := "(literalize Emp name salary dno)\n" + src
	if _, _, err := rules.CompileSource(full); err != nil {
		t.Fatalf("translated production does not compile: %v\n%s", err, src)
	}
}

func TestTranslateErrors(t *testing.T) {
	tr := NewTranslator(map[string][]string{"Emp": {"name", "salary"}})
	cases := []string{
		`replace ALWAYS Ghost (salary = 1)`,
		`replace ALWAYS Emp (ghost = 1)`,
		`replace ALWAYS Emp (salary = X.salary)`,
		`delete ALWAYS X where X.salary < 0`,
		`append ALWAYS Emp (salary = 1)`, // no range variable in qual
		`append ALWAYS Ghost (x = 1) where Emp.salary > 0`,
	}
	for _, src := range cases {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := tr.TranslateAlways(st); err == nil {
			t.Errorf("TranslateAlways(%q) should fail", src)
		}
	}
	notAlways, _ := Parse(`replace Emp (salary = 1)`)
	if _, err := tr.TranslateAlways(notAlways); err == nil {
		t.Error("non-ALWAYS statement should be rejected")
	}
	alwaysRetrieve := &Stmt{Kind: StmtRetrieve, Always: true}
	if _, err := tr.TranslateAlways(alwaysRetrieve); err == nil {
		t.Error("retrieve ALWAYS should be rejected")
	}
}

func TestInterpRejectsDefinitionStatements(t *testing.T) {
	f := setup(t, nil)
	if _, err := f.in.Exec(`create X (a)`); err == nil {
		t.Error("create at runtime should fail")
	}
	if _, err := f.in.Exec(`replace ALWAYS Emp (salary = 1)`); err == nil {
		t.Error("ALWAYS at runtime should fail")
	}
	if _, err := f.in.Exec(`retrieve (Z.name)`); err == nil {
		t.Error("unknown range variable should fail")
	}
	if _, err := f.in.Exec(`retrieve (E.ghost)`); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := f.in.Exec(`append to Emp (name = E.name)`); err == nil {
		t.Error("non-constant append should fail")
	}
	// A constant-only qualification is legal (it is just always true or
	// always false); no rows, no error.
	if _, err := f.in.Exec(`retrieve (E.name) where 1 = 2`); err != nil {
		t.Errorf("constant qualification: %v", err)
	}
}

func TestRuntimeRangeDeclaration(t *testing.T) {
	f := setup(t, nil)
	f.mustExec(t, `append to Emp (name = "Ann", salary = 1, dno = 1)`)
	f.mustExec(t, `range of Worker is Emp`)
	rows := f.mustExec(t, `retrieve (Worker.name)`).Rows
	if len(rows) != 1 || rows[0][0] != "Ann" {
		t.Fatalf("rows = %v", rows)
	}
}
