// Package core implements the paper's contribution: the matching-pattern
// algorithm of §4.2.
//
// Each working-memory class has a COND relation whose tuples are the
// condition elements defined on that class plus matching patterns —
// partially instantiated copies created as related classes contribute
// bindings through shared variables. A pattern carries, per Related
// Condition Element (RCE), the set of working-memory tuples supporting it
// (the paper's Mark bits, generalized to counters for correct deletion —
// §4.2.2; we keep the supporting tuple IDs so deletion is exact, the
// counter being the set's cardinality).
//
// Detection is a single search of one COND relation: a newly inserted
// tuple is matched against the class's patterns, and the rule becomes a
// firing candidate when the union of marks across the patterns it matches
// covers every related condition element that shares variables with this
// one. No hierarchical propagation precedes the conflict-set update
// (§4.2.3: "the conflict set is updated first, and then the maintenance
// process follows"). Maintenance then propagates the new bindings into
// the COND relations of the related classes, optionally in parallel (the
// algorithm is "fully parallelizable").
//
// Where the paper's Example 5 also builds multiply-marked patterns by
// unifying existing patterns with each new contribution ((4,7,b) with
// marks 11), this implementation stores only singly-sourced patterns
// (the 10/01 rows) and takes the mark union at detection time. The
// multiply-marked rows are precisely the redundancy §4.2.3 says "must be
// compacted"; left unchecked they grow with the product of partial join
// results. The compaction trades a few more false drops — which the paper
// tolerates (§2.3) and which the verification join filters — for linear
// COND-relation growth.
//
// Negated condition elements are enforced at verification time (the NOT
// EXISTS check of §5.2) rather than through inverted marks.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"prodsys/internal/conflict"
	"prodsys/internal/joiner"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
)

// idSet is a set of supporting tuple IDs.
type idSet map[relation.TupleID]struct{}

// ceKey identifies a condition element within the rule set.
type ceKey struct {
	rule *rules.Rule
	ce   int
}

// pattern is one COND-relation tuple: the attribute restrictions of a
// condition element, partially instantiated by bind, supported per
// contributing condition element.
type pattern struct {
	ce   *rules.CE
	bind rules.Bindings
	// support maps a contributing CE index (an RCE) to the IDs of the
	// working-memory tuples of that condition element's class whose
	// projections created this pattern.
	support  map[int]idSet
	original bool
	key      string
}

// patternKey canonically names a pattern.
func patternKey(ce *rules.CE, bind rules.Bindings) string {
	return fmt.Sprintf("%s|%d|%s", ce.Rule.Name, ce.CEN(), bind.Key())
}

// store is one partition of a COND relation.
type store struct {
	mu    sync.Mutex
	byCE  map[ceKey][]*pattern
	byKey map[string]*pattern
}

func newStore() *store {
	return &store{byCE: make(map[ceKey][]*pattern), byKey: make(map[string]*pattern)}
}

// snapshotInto appends a copy of the pattern list for one condition
// element to dst.
func (s *store) snapshotInto(k ceKey, dst []*pattern) []*pattern {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append(dst, s.byCE[k]...)
}

// classStore is the COND relation of one class, partitioned by the
// shard of the contributing WM tuple: subs[i] holds the matching
// patterns projected from shard-i tuples, so per-shard maintenance
// (phase 1 of match.Shardable) touches exactly one partition per worker
// and workers never contend on a COND store lock. orig holds the
// original COND tuples seeded at construction; they never gain support
// (propagation always projects a non-empty binding) and are immutable
// after New. Detection takes the union across orig and every partition
// — the same mark union §4.2.3 already takes across singly-sourced
// patterns, so a pattern key split across shards (each side carrying
// the support its own shard contributed) detects identically to the
// unsharded single pattern.
type classStore struct {
	orig *store
	subs []*store
}

func newClassStore(shards int) *classStore {
	cs := &classStore{orig: newStore(), subs: make([]*store, shards)}
	for i := range cs.subs {
		cs.subs[i] = newStore()
	}
	return cs
}

// snapshot copies the pattern lists for one condition element across
// the originals and every shard partition.
func (cs *classStore) snapshot(k ceKey) []*pattern {
	pats := cs.orig.snapshotInto(k, nil)
	for _, sub := range cs.subs {
		pats = sub.snapshotInto(k, pats)
	}
	return pats
}

// all visits every partition including the originals.
func (cs *classStore) all(fn func(*store)) {
	fn(cs.orig)
	for _, sub := range cs.subs {
		fn(sub)
	}
}

// wmeKey identifies a working-memory tuple.
type wmeKey struct {
	class string
	id    relation.TupleID
}

// patSlot locates one support entry of a pattern, together with the
// COND partition holding it (the shard partition the supporting tuple
// contributed to), so withdrawal locks exactly that partition.
type patSlot struct {
	p     *pattern
	ceIdx int
	st    *store
}

// Matcher is the matching-pattern matcher.
type Matcher struct {
	set      *rules.Set
	db       *relation.DB
	cs       *conflict.Set
	stats    *metrics.Set
	stores   map[string]*classStore
	nShards  int
	parallel bool
	ioDelay  time.Duration
	tr       *trace.Tracer
	pl       *joiner.Planner

	// contributors[ce] lists the indices of the other positive condition
	// elements of ce's rule that can deliver a matching pattern to ce's
	// COND relation (they equality-bind a variable ce references); the
	// fire check requires a mark from each. targets[ce] is the inverse:
	// the condition elements ce's own insertions must propagate to.
	contributors map[*rules.CE][]int
	targets      map[*rules.CE][]int

	// refMu guards byTuple, the reverse index from a WM tuple to the
	// pattern support slots it feeds.
	refMu   sync.Mutex
	byTuple map[wmeKey][]patSlot
}

// Option configures the matcher.
type Option func(*Matcher)

// WithParallelPropagation propagates matching patterns to the COND
// relations of related classes concurrently, one goroutine per target
// class (§4.2.3: "propagation of changes can be performed in parallel to
// all the COND relations").
func WithParallelPropagation() Option {
	return func(m *Matcher) { m.parallel = true }
}

// WithSimulatedIO injects a per-propagation-target delay, modelling COND
// relations on secondary storage (the paper's setting: "assuming
// secondary storage is used to store the WM elements", §3.2). The delay
// makes the benefit of parallel propagation measurable on hardware where
// the in-memory pattern update is otherwise instantaneous.
func WithSimulatedIO(d time.Duration) Option {
	return func(m *Matcher) { m.ioDelay = d }
}

// New builds the matcher over the engine's WM catalog, seeding every
// positive condition element's original COND tuple. stats may be nil.
func New(set *rules.Set, db *relation.DB, cs *conflict.Set, stats *metrics.Set, opts ...Option) *Matcher {
	m := &Matcher{
		set:          set,
		db:           db,
		cs:           cs,
		stats:        stats,
		stores:       make(map[string]*classStore),
		nShards:      1,
		contributors: make(map[*rules.CE][]int),
		targets:      make(map[*rules.CE][]int),
		byTuple:      make(map[wmeKey][]patSlot),
	}
	for _, o := range opts {
		o(m)
	}
	if db != nil {
		if n := db.ShardSpace(); n > 1 {
			m.nShards = n
		}
	}
	for name := range set.Classes {
		m.stores[name] = newClassStore(m.nShards)
	}
	for _, r := range set.Rules {
		for _, ce := range r.CEs {
			if ce.Negated {
				continue
			}
			p := &pattern{
				ce:       ce,
				bind:     rules.Bindings{},
				support:  make(map[int]idSet),
				original: true,
			}
			p.key = patternKey(ce, p.bind)
			st := m.stores[ce.Class].orig
			k := ceKey{rule: r, ce: ce.Index}
			st.byCE[k] = append(st.byCE[k], p)
			st.byKey[p.key] = p
			m.stats.Inc(metrics.CondTuplesStored)
			m.contributors[ce] = positiveSharers(r, ce.Index)
		}
	}
	// targets is the inverse of contributors: i propagates to j exactly
	// when i contributes to j.
	for _, r := range set.Rules {
		for _, ce := range r.CEs {
			if ce.Negated {
				continue
			}
			for _, j := range m.contributors[ce] {
				src := r.CEs[j]
				m.targets[src] = append(m.targets[src], ce.Index)
			}
		}
	}
	return m
}

// positiveSharers returns the indices of the positive condition elements
// of r (other than i) that can contribute a matching pattern to CE i:
// they must be able to extract (equality-bind) at least one variable that
// CE i references. A condition element that only constrains a variable
// through an inequality can never deliver a mark, so requiring one would
// suppress legitimate firings.
func positiveSharers(r *rules.Rule, i int) []int {
	iVars := map[string]bool{}
	for _, v := range r.CEs[i].Vars() {
		iVars[v] = true
	}
	var out []int
	for j, other := range r.CEs {
		if j == i || other.Negated {
			continue
		}
		for _, v := range other.ExtractableVars() {
			if iVars[v] {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// SetTracer implements match.Traceable: condition scans, verification
// joins and pattern propagations are emitted as trace events.
func (m *Matcher) SetTracer(tr *trace.Tracer) { m.tr = tr }

// SetPlanner implements match.Planned: verification joins and negated
// re-derivations run under the planner's cost-based join order.
func (m *Matcher) SetPlanner(p *joiner.Planner) { m.pl = p }

// Name implements match.Matcher.
func (m *Matcher) Name() string {
	if m.parallel {
		return "core-parallel"
	}
	return "core"
}

// ConflictSet implements match.Matcher.
func (m *Matcher) ConflictSet() *conflict.Set { return m.cs }

// shardOf maps a WM tuple to the derived-state partition its
// contributions land on — the shard of the tuple in its own class, so
// COND partitions align with storage partitions and per-shard
// maintenance is contention-free.
func (m *Matcher) shardOf(class string, t relation.Tuple) int {
	if m.nShards <= 1 {
		return 0
	}
	return m.db.ShardOf(class, t)
}

// Insert implements match.Matcher. The WM relation already contains the
// tuple.
func (m *Matcher) Insert(class string, id relation.TupleID, t relation.Tuple) error {
	st := m.stores[class]
	shard := m.shardOf(class, t)
	for _, ce := range m.set.ByClass[class] {
		m.stats.Inc(metrics.PatternSearches)
		if ce.Negated {
			m.retractBlocked(ce, t)
			continue
		}
		k := ceKey{rule: ce.Rule, ce: ce.Index}
		// The single search of COND-class: which patterns does t match,
		// and what is the union of their marks?
		var matchedAny bool
		var checked int64
		t0 := m.tr.Now()
		marks := map[int]bool{}
		for _, p := range st.snapshot(k) {
			checked++
			if _, ok := ce.MatchPattern(t, p.bind); !ok {
				continue
			}
			matchedAny = true
			for y, ids := range p.support {
				if len(ids) > 0 {
					marks[y] = true
				}
			}
		}
		m.stats.Add(metrics.CandidateChecks, checked)
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindCondScan, At: t0, Dur: m.tr.Now() - t0,
				Rule: ce.Rule.Name, CE: ce.Index, Class: class, ID: uint64(id), Count: checked,
			})
		}
		if !matchedAny {
			continue
		}
		// Conflict set first (§4.2.3): the rule is applicable when every
		// variable-sharing RCE has contributed a compatible pattern.
		fire := true
		for _, j := range m.contributors[ce] {
			if !marks[j] {
				fire = false
				break
			}
		}
		if fire {
			m.verifyAndEmit(ce, id, t)
		}
		// Maintenance second: propagate this tuple's bindings. The full
		// variable assignment is extracted pattern-style so that variables
		// bound by OTHER condition elements (non-binding equality
		// occurrences here) still project their values.
		if tb, ok := ce.MatchPattern(t, nil); ok {
			m.propagate(ce, id, tb, shard)
		}
	}
	return nil
}

// verifyAndEmit runs the selection-driven join seeded by the new tuple
// and adds every real instantiation; a candidate with no completions is a
// false drop (§2.3: "the penalty to be paid is just in processing time").
func (m *Matcher) verifyAndEmit(ce *rules.CE, id relation.TupleID, t relation.Tuple) {
	var found int64
	t0 := m.tr.Now()
	fixed := map[int]joiner.Fixed{ce.Index: {ID: id, Tuple: t}}
	// Seed the join with the pinned tuple's own bindings: every emitted
	// instantiation must carry them (the pinned condition element has to
	// match t), and handing them to the evaluator up front lets condition
	// elements scheduled before the pinned one probe their join indexes
	// instead of scanning — the case where the new tuple pins a later CE
	// and a fixed-order evaluation would otherwise open with an unbound
	// scan of the first CE's class.
	seed, ok := ce.MatchPattern(t, nil)
	if !ok {
		seed = nil
	}
	m.pl.Enumerate(m.db, ce.Rule, fixed, seed, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
		found++
		m.cs.Add(&conflict.Instantiation{Rule: ce.Rule, TupleIDs: ids, Tuples: tuples, Bindings: b})
	})
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{
			Kind: trace.KindJoinEval, At: t0, Dur: m.tr.Now() - t0,
			Rule: ce.Rule.Name, CE: ce.Index, Class: ce.Class, ID: uint64(id), Count: found,
		})
	}
	if found == 0 {
		m.stats.Inc(metrics.FalseDrops)
	}
}

// retractBlocked removes instantiations whose negated condition element
// the new tuple now satisfies.
func (m *Matcher) retractBlocked(ce *rules.CE, t relation.Tuple) {
	m.cs.RemoveWhere(func(in *conflict.Instantiation) bool {
		if in.Rule != ce.Rule {
			return false
		}
		_, blocked := ce.MatchWith(t, in.Bindings)
		return blocked
	})
}

// propagate performs the maintenance process: project the new tuple's
// bindings onto every variable-sharing related condition element and
// insert (or reinforce) the resulting matching pattern in that COND
// relation (on the contributing tuple's shard partition), optionally in
// parallel.
func (m *Matcher) propagate(ce *rules.CE, id relation.TupleID, tb rules.Bindings, shard int) {
	targets := m.targets[ce]
	if len(targets) == 0 {
		return
	}
	if m.parallel && len(targets) > 1 {
		m.stats.Inc(metrics.ParallelBatches)
		forwardPanics(len(targets), func(i int) {
			m.propagateTo(ce, id, tb, targets[i], shard)
		})
		return
	}
	for _, j := range targets {
		m.propagateTo(ce, id, tb, j, shard)
	}
}

// forwardPanics runs fn(i) for each i in [0, n) concurrently and, after
// every goroutine finishes, re-raises the first captured panic in the
// caller. A panic inside parallel maintenance thereby surfaces
// synchronously where the executor's fault containment can catch it,
// instead of killing the process from an unrecoverable goroutine.
func forwardPanics(n int, fn func(i int)) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var pv any
	var panicked bool
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if !panicked {
						panicked, pv = true, r
					}
					mu.Unlock()
				}
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
	if panicked {
		panic(pv)
	}
}

// propagateTo inserts the tuple's projected matching pattern into the
// COND relation of one related condition element, on the contributing
// tuple's shard partition.
func (m *Matcher) propagateTo(ce *rules.CE, id relation.TupleID, tb rules.Bindings, j, shard int) {
	m.stats.Inc(metrics.MaintenanceOps)
	t0 := m.tr.Now()
	if m.ioDelay > 0 {
		time.Sleep(m.ioDelay) // simulated COND-relation page write
	}
	target := ce.Rule.CEs[j]
	proj := rules.Bindings{}
	for _, v := range target.Vars() {
		if val, ok := tb[v]; ok {
			proj[v] = val
		}
	}
	if len(proj) == 0 {
		return
	}
	m.upsert(m.stores[target.Class].subs[shard], ceKey{rule: ce.Rule, ce: j}, target, proj, ce.Index, id)
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{
			Kind: trace.KindPatternPropagate, At: t0, Dur: m.tr.Now() - t0,
			Rule: ce.Rule.Name, CE: j, Class: target.Class, ID: uint64(id), Count: 1,
		})
	}
}

// upsert creates or reinforces the matching pattern (target, bind),
// recording the new tuple as a supporter of the source condition element.
func (m *Matcher) upsert(tst *store, k ceKey, target *rules.CE, bind rules.Bindings, srcIdx int, id relation.TupleID) {
	key := patternKey(target, bind)
	tst.mu.Lock()
	p, exists := tst.byKey[key]
	if !exists {
		p = &pattern{
			ce:      target,
			bind:    bind,
			support: make(map[int]idSet),
			key:     key,
		}
		tst.byKey[key] = p
		tst.byCE[k] = append(tst.byCE[k], p)
		m.stats.Inc(metrics.PatternsStored)
		m.stats.Inc(metrics.CondTuplesStored)
	}
	set := p.support[srcIdx]
	if set == nil {
		set = make(idSet)
		p.support[srcIdx] = set
	}
	_, dup := set[id]
	if !dup {
		set[id] = struct{}{}
	}
	tst.mu.Unlock()
	if !dup {
		m.link(wmeKey{class: target.Rule.CEs[srcIdx].Class, id: id}, p, srcIdx, tst)
	}
}

// link records that the WM tuple supports pattern p at slot ceIdx in
// COND partition st.
func (m *Matcher) link(wk wmeKey, p *pattern, ceIdx int, st *store) {
	m.refMu.Lock()
	m.byTuple[wk] = append(m.byTuple[wk], patSlot{p: p, ceIdx: ceIdx, st: st})
	m.refMu.Unlock()
}

// Delete implements match.Matcher. The WM relation no longer contains the
// tuple. Every pattern support slot fed by the tuple is withdrawn (the
// counter decrement of §4.2.2); patterns with no remaining supporters
// die. Instantiations built on the tuple are retracted, and rules
// negatively dependent on the class are re-derived.
func (m *Matcher) Delete(class string, id relation.TupleID, _ relation.Tuple) error {
	wk := wmeKey{class: class, id: id}
	m.refMu.Lock()
	slots := m.byTuple[wk]
	delete(m.byTuple, wk)
	m.refMu.Unlock()

	for _, slot := range slots {
		p := slot.p
		st := slot.st
		st.mu.Lock()
		if set := p.support[slot.ceIdx]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(p.support, slot.ceIdx)
			}
		}
		if !p.original && len(p.support) == 0 {
			delete(st.byKey, p.key)
			k := ceKey{rule: p.ce.Rule, ce: p.ce.Index}
			list := st.byCE[k]
			for i, q := range list {
				if q == p {
					st.byCE[k] = append(list[:i], list[i+1:]...)
					break
				}
			}
			m.stats.Inc(metrics.PatternsDeleted)
		}
		st.mu.Unlock()
	}

	m.cs.RemoveByTuple(class, id)

	// Deletion may unblock negatively dependent rules.
	seen := map[*rules.Rule]bool{}
	for _, ce := range m.set.ByClass[class] {
		if !ce.Negated || seen[ce.Rule] {
			continue
		}
		seen[ce.Rule] = true
		var found int64
		t0 := m.tr.Now()
		m.pl.Enumerate(m.db, ce.Rule, nil, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
			found++
			m.cs.Add(&conflict.Instantiation{Rule: ce.Rule, TupleIDs: ids, Tuples: tuples, Bindings: b})
		})
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindJoinEval, At: t0, Dur: m.tr.Now() - t0,
				Rule: ce.Rule.Name, CE: ce.Index, Class: class, ID: uint64(id), Count: found,
			})
		}
	}
	return nil
}

// PatternCount reports the number of distinct stored matching patterns
// (original COND tuples excluded) — the space cost of §4.2.3. A pattern
// key split across shard partitions (each holding the support its own
// shard contributed) counts once, so the figure is comparable across
// shard configurations.
func (m *Matcher) PatternCount() int {
	keys := make(map[string]bool)
	for _, cst := range m.stores {
		cst.all(func(st *store) {
			st.mu.Lock()
			for k, p := range st.byKey {
				if !p.original {
					keys[k] = true
				}
			}
			st.mu.Unlock()
		})
	}
	return len(keys)
}

// mergedPattern is one COND tuple as rendered to observers: the support
// union of every shard partition holding the same pattern key.
type mergedPattern struct {
	ce       *rules.CE
	bind     rules.Bindings
	support  map[int]idSet
	original bool
}

// mergeByKey unions a class's patterns across the originals and every
// shard partition, keyed by pattern key. Support ID sets are disjoint
// across partitions (a tuple contributes only to its own shard), so the
// union reproduces exactly the single-store state of an unsharded run.
func (cst *classStore) mergeByKey() map[string]*mergedPattern {
	merged := make(map[string]*mergedPattern)
	cst.all(func(st *store) {
		st.mu.Lock()
		for k, p := range st.byKey {
			mp := merged[k]
			if mp == nil {
				mp = &mergedPattern{ce: p.ce, bind: p.bind, support: make(map[int]idSet), original: p.original}
				merged[k] = mp
			}
			mp.original = mp.original || p.original
			for idx, ids := range p.support {
				set := mp.support[idx]
				if set == nil {
					set = make(idSet, len(ids))
					mp.support[idx] = set
				}
				for id := range ids {
					set[id] = struct{}{}
				}
			}
		}
		st.mu.Unlock()
	})
	return merged
}

// DumpCond renders one class's COND relation, mirroring the tables of
// Example 5 in the paper; used by the psbench figure commands and tests.
// Shard partitions are merged, so the rendering is identical across
// shard configurations.
func (m *Matcher) DumpCond(class string) []string {
	cst := m.stores[class]
	if cst == nil {
		return nil
	}
	var out []string
	for _, p := range cst.mergeByKey() {
		marks := make([]string, 0, len(p.support))
		for ceIdx, ids := range p.support {
			marks = append(marks, fmt.Sprintf("%s:%d×%d", p.ce.Rule.CEs[ceIdx].Class, ceIdx+1, len(ids)))
		}
		sort.Strings(marks)
		tag := ""
		if p.original {
			tag = " (original)"
		}
		out = append(out, fmt.Sprintf("%s CEN=%d {%s} marks=%v%s",
			p.ce.Rule.Name, p.ce.CEN(), p.bind.Key(), marks, tag))
	}
	sort.Strings(out)
	return out
}
