package core

import (
	"strings"
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

const threeWaySrc = `
(literalize A a1 a2 a3)
(literalize B b1 b2 b3)
(literalize C c1 c2 c3)
(p Rule-1
    (A ^a1 <x> ^a2 a ^a3 <z>)
    (B ^b1 <x> ^b2 <y> ^b3 b)
    (C ^c1 c ^c2 <y> ^c3 <z>)
  -->
    (halt))
`

type fixture struct {
	m  *Matcher
	db *relation.DB
	cs *conflict.Set
	st *metrics.Set
}

func setup(t *testing.T, src string, opts ...Option) *fixture {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.Set{}
	db := relation.NewDB(st)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet(st)
	return &fixture{m: New(set, db, cs, st, opts...), db: db, cs: cs, st: st}
}

func (f *fixture) insert(t *testing.T, class string, vals ...value.V) relation.TupleID {
	t.Helper()
	rel := f.db.MustGet(class)
	id, err := rel.Insert(relation.Tuple(vals))
	if err != nil {
		t.Fatal(err)
	}
	tup, _ := rel.Get(id)
	if err := f.m.Insert(class, id, tup); err != nil {
		t.Fatal(err)
	}
	return id
}

func (f *fixture) remove(t *testing.T, class string, id relation.TupleID) {
	t.Helper()
	tup, err := f.db.MustGet(class).Delete(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.m.Delete(class, id, tup); err != nil {
		t.Fatal(err)
	}
}

// TestExample5PatternAccumulation replays the exact insertion sequence of
// Example 5 and checks the COND relations accumulate matching patterns as
// the paper's tables show.
func TestExample5PatternAccumulation(t *testing.T) {
	f := setup(t, threeWaySrc)
	// Originals only: one COND tuple per positive CE.
	if got := f.st.Get(metrics.CondTuplesStored); got != 3 {
		t.Fatalf("original COND tuples = %d, want 3", got)
	}
	if f.m.PatternCount() != 0 {
		t.Fatalf("no matching patterns yet, got %d", f.m.PatternCount())
	}

	f.insert(t, "B", value.OfInt(4), value.OfInt(5), value.OfSym("b"))
	// B(4,5,b) specializes COND-A with x=4 and COND-C with y=5.
	condA := strings.Join(f.m.DumpCond("A"), "\n")
	if !strings.Contains(condA, "x=4") {
		t.Fatalf("COND-A should hold pattern x=4 after B(4,5,b):\n%s", condA)
	}

	f.insert(t, "C", value.OfSym("c"), value.OfInt(7), value.OfInt(8))
	// C(c,7,8) adds z=8 to COND-A (paper row "(x,a,8) 01").
	condA = strings.Join(f.m.DumpCond("A"), "\n")
	if !strings.Contains(condA, "z=8") {
		t.Fatalf("COND-A should hold pattern z=8 after C(c,7,8):\n%s", condA)
	}
	// COND-B gains y=7 from C (paper row "(x,7,b) 01").
	condB := strings.Join(f.m.DumpCond("B"), "\n")
	if !strings.Contains(condB, "y=7") {
		t.Fatalf("COND-B should hold pattern y=7 after C(c,7,8):\n%s", condB)
	}

	f.insert(t, "A", value.OfInt(4), value.OfSym("a"), value.OfInt(8))
	if f.cs.Len() != 0 {
		t.Fatalf("nothing should fire yet: %v", f.cs.Keys())
	}
	// COND-B now holds A's contribution x=4 alongside C's y=7 (the paper
	// additionally merges them into the doubly-marked row "(4,7,b) 11";
	// this implementation keeps the singly-sourced rows and unions their
	// marks at detection time — see the package comment).
	condB = strings.Join(f.m.DumpCond("B"), "\n")
	if !strings.Contains(condB, "x=4") || !strings.Contains(condB, "y=7") {
		t.Fatalf("COND-B should hold x=4 and y=7 patterns:\n%s", condB)
	}

	f.insert(t, "B", value.OfInt(4), value.OfInt(7), value.OfSym("b"))
	keys := f.cs.Keys()
	if len(keys) != 1 || keys[0] != "Rule-1|1|2|1" {
		t.Fatalf("conflict set = %v", keys)
	}
}

func TestDetectionIsSingleRelationSearch(t *testing.T) {
	// The final insert must not recompute a join to *detect* the firing:
	// detection happens against COND-B alone, then one verification join
	// materializes the tuples.
	f := setup(t, threeWaySrc)
	f.insert(t, "B", value.OfInt(4), value.OfInt(5), value.OfSym("b"))
	f.insert(t, "C", value.OfSym("c"), value.OfInt(7), value.OfInt(8))
	f.insert(t, "A", value.OfInt(4), value.OfSym("a"), value.OfInt(8))
	joinsBefore := f.st.Get(metrics.JoinsComputed)
	f.insert(t, "B", value.OfInt(4), value.OfInt(7), value.OfSym("b"))
	joins := f.st.Get(metrics.JoinsComputed) - joinsBefore
	// One Enumerate call: at most one join step per condition element.
	if joins > 3 {
		t.Fatalf("verification should be a single bounded join, got %d join steps", joins)
	}
	// The compacted single-source patterns allow one false drop earlier
	// in the sequence (at A(4,a,8), whose B and C marks are individually
	// compatible but jointly not); the final insert itself is exact.
	if fd := f.st.Get(metrics.FalseDrops); fd > 1 {
		t.Fatalf("false drops = %d, want ≤ 1", fd)
	}
}

func TestDeletionWithdrawsSupport(t *testing.T) {
	f := setup(t, threeWaySrc)
	b1 := f.insert(t, "B", value.OfInt(4), value.OfInt(7), value.OfSym("b"))
	f.insert(t, "C", value.OfSym("c"), value.OfInt(7), value.OfInt(8))
	grown := f.m.PatternCount()
	if grown == 0 {
		t.Fatal("patterns should accumulate")
	}
	f.remove(t, "B", b1)
	f.remove(t, "C", 1)
	if got := f.m.PatternCount(); got != 0 {
		t.Fatalf("patterns after removing all support = %d:\nA: %v\nB: %v\nC: %v",
			got, f.m.DumpCond("A"), f.m.DumpCond("B"), f.m.DumpCond("C"))
	}
}

func TestSharedSupporterSurvivesPartialDelete(t *testing.T) {
	// Two B tuples share the pattern x=4 in COND-A; deleting one leaves
	// the pattern supported (the paper's counter argument, §4.2.2).
	f := setup(t, threeWaySrc)
	b1 := f.insert(t, "B", value.OfInt(4), value.OfInt(5), value.OfSym("b"))
	f.insert(t, "B", value.OfInt(4), value.OfInt(6), value.OfSym("b"))
	f.remove(t, "B", b1)
	condA := strings.Join(f.m.DumpCond("A"), "\n")
	if !strings.Contains(condA, "x=4") {
		t.Fatalf("pattern x=4 should survive one deletion:\n%s", condA)
	}
}

func TestFalseDropCounted(t *testing.T) {
	// Construct a false drop: two C tuples contribute y=7 patterns with
	// different z; the combined pattern in COND-B can carry supporters
	// whose full combination does not join.
	f := setup(t, threeWaySrc)
	f.insert(t, "C", value.OfSym("c"), value.OfInt(7), value.OfInt(8))
	f.insert(t, "C", value.OfSym("c"), value.OfInt(7), value.OfInt(9))
	f.insert(t, "A", value.OfInt(4), value.OfSym("a"), value.OfInt(8))
	// Delete the z=8 C tuple: COND-B patterns may still look fully marked
	// through the z=9 supporter.
	f.remove(t, "C", 1)
	f.insert(t, "B", value.OfInt(4), value.OfInt(7), value.OfSym("b"))
	// Whatever the pattern state, the conflict set must be exact:
	if f.cs.Len() != 0 {
		t.Fatalf("verification must reject: %v", f.cs.Keys())
	}
}

func TestSingleCERuleFiresImmediately(t *testing.T) {
	f := setup(t, `
(literalize A x)
(p Solo (A ^x > 5) --> (halt))`)
	f.insert(t, "A", value.OfInt(3))
	if f.cs.Len() != 0 {
		t.Fatal("3 should not fire")
	}
	f.insert(t, "A", value.OfInt(9))
	if keys := f.cs.Keys(); len(keys) != 1 || keys[0] != "Solo|2" {
		t.Fatalf("conflict set = %v", keys)
	}
}

func TestNegationRetractAndUnblock(t *testing.T) {
	f := setup(t, `
(literalize Emp dno)
(literalize Dept dno)
(p Orphan (Emp ^dno <d>) - (Dept ^dno <d>) --> (halt))`)
	f.insert(t, "Emp", value.OfInt(7))
	if f.cs.Len() != 1 {
		t.Fatalf("orphan should fire: %v", f.cs.Keys())
	}
	d := f.insert(t, "Dept", value.OfInt(7))
	if f.cs.Len() != 0 {
		t.Fatalf("blocker should retract: %v", f.cs.Keys())
	}
	f.remove(t, "Dept", d)
	if f.cs.Len() != 1 {
		t.Fatalf("unblock should re-derive: %v", f.cs.Keys())
	}
}

func TestParallelPropagationEquivalence(t *testing.T) {
	serial := setup(t, threeWaySrc)
	par := setup(t, threeWaySrc, WithParallelPropagation())
	if par.m.Name() != "core-parallel" || serial.m.Name() != "core" {
		t.Fatalf("names: %q %q", serial.m.Name(), par.m.Name())
	}
	seq := [][]value.V{
		{value.OfInt(4), value.OfInt(5), value.OfSym("b")},
		{value.OfInt(4), value.OfInt(7), value.OfSym("b")},
	}
	classes := []string{"B", "B"}
	for i := range seq {
		serial.insert(t, classes[i], seq[i]...)
		par.insert(t, classes[i], seq[i]...)
	}
	serial.insert(t, "C", value.OfSym("c"), value.OfInt(7), value.OfInt(8))
	par.insert(t, "C", value.OfSym("c"), value.OfInt(7), value.OfInt(8))
	serial.insert(t, "A", value.OfInt(4), value.OfSym("a"), value.OfInt(8))
	par.insert(t, "A", value.OfInt(4), value.OfSym("a"), value.OfInt(8))
	sk, pk := serial.cs.Keys(), par.cs.Keys()
	if len(sk) != len(pk) {
		t.Fatalf("serial %v vs parallel %v", sk, pk)
	}
	for i := range sk {
		if sk[i] != pk[i] {
			t.Fatalf("serial %v vs parallel %v", sk, pk)
		}
	}
	if par.st.Get(metrics.ParallelBatches) == 0 {
		t.Error("parallel batches should be counted")
	}
}

func TestSpaceAccountingCounters(t *testing.T) {
	f := setup(t, threeWaySrc)
	f.insert(t, "B", value.OfInt(4), value.OfInt(5), value.OfSym("b"))
	if f.st.Get(metrics.PatternsStored) == 0 {
		t.Error("PatternsStored should move")
	}
	f.remove(t, "B", 1)
	if f.st.Get(metrics.PatternsDeleted) == 0 {
		t.Error("PatternsDeleted should move")
	}
}

func TestDumpCondUnknownClass(t *testing.T) {
	f := setup(t, threeWaySrc)
	if got := f.m.DumpCond("Nope"); got != nil {
		t.Fatalf("unknown class dump = %v", got)
	}
}

func TestAccessors(t *testing.T) {
	f := setup(t, threeWaySrc)
	if f.m.ConflictSet() != f.cs {
		t.Error("ConflictSet accessor")
	}
}
