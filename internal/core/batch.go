package core

import (
	"time"

	"prodsys/internal/conflict"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
)

// This file is the matching-pattern algorithm's set-oriented path: one
// batch of same-class WM changes is maintained with one COND-relation
// scan per (class, condition element) pair, propagation grouped so every
// target COND relation is locked (and, under simulated I/O, written) once
// per batch, and — for deletions — one re-derivation per negatively
// dependent rule per batch. This is the set-at-a-time processing the
// paper claims as the DBMS advantage (§4.2, §5.1), applied to the
// maintenance process itself.

// contribution is one projected matching pattern awaiting upsert into a
// target condition element's COND relation.
type contribution struct {
	srcIdx int
	id     relation.TupleID
	bind   rules.Bindings
}

// InsertBatch implements match.BatchMatcher. Unlike the tuple-at-a-time
// path — which updates the conflict set before maintaining the COND
// relations (§4.2.3) — the batch path runs the whole batch's maintenance
// first and detects afterwards, so a tuple whose marks are completed by
// another member of the same batch is still detected. Detection over the
// post-batch COND state sees a superset of the marks any sequential
// ordering would, and the verification join filters the extra candidates
// exactly as it filters false drops.
func (m *Matcher) InsertBatch(class string, entries []relation.DeltaEntry) error {
	st := m.stores[class]
	ces := m.set.ByClass[class]

	// Negated condition elements: one conflict-set sweep per CE per batch
	// retracts every instantiation some batch tuple now blocks.
	for _, ce := range ces {
		if !ce.Negated {
			continue
		}
		m.stats.Inc(metrics.PatternSearches)
		ceCopy := ce
		m.cs.RemoveWhere(func(in *conflict.Instantiation) bool {
			if in.Rule != ceCopy.Rule {
				return false
			}
			for _, e := range entries {
				if _, blocked := ceCopy.MatchWith(e.Tuple, in.Bindings); blocked {
					return true
				}
			}
			return false
		})
	}

	// Maintenance: project every batch tuple's bindings onto its related
	// condition elements, grouping the contributions per target CE so each
	// target COND relation is touched once per batch.
	grouped := make(map[ceKey][]contribution)
	var order []ceKey
	for _, ce := range ces {
		if ce.Negated {
			continue
		}
		targets := m.targets[ce]
		if len(targets) == 0 {
			continue
		}
		for _, e := range entries {
			tb, ok := ce.MatchPattern(e.Tuple, nil)
			if !ok {
				continue
			}
			for _, j := range targets {
				target := ce.Rule.CEs[j]
				proj := rules.Bindings{}
				for _, v := range target.Vars() {
					if val, ok := tb[v]; ok {
						proj[v] = val
					}
				}
				if len(proj) == 0 {
					continue
				}
				k := ceKey{rule: ce.Rule, ce: j}
				if _, seen := grouped[k]; !seen {
					order = append(order, k)
				}
				grouped[k] = append(grouped[k], contribution{srcIdx: ce.Index, id: e.ID, bind: proj})
			}
		}
	}
	if m.parallel && len(order) > 1 {
		m.stats.Inc(metrics.ParallelBatches)
		forwardPanics(len(order), func(i int) {
			m.upsertMany(order[i], grouped[order[i]])
		})
	} else {
		for _, k := range order {
			m.upsertMany(k, grouped[k])
		}
	}

	// Detection: one COND-relation scan per condition element for the
	// whole batch; the conflict set is fed incrementally as candidates
	// survive verification.
	for _, ce := range ces {
		if ce.Negated {
			continue
		}
		m.stats.Inc(metrics.PatternSearches)
		k := ceKey{rule: ce.Rule, ce: ce.Index}
		pats := st.snapshot(k)
		var checked int64
		var fires []relation.DeltaEntry
		t0 := m.tr.Now()
		for _, e := range entries {
			var matchedAny bool
			marks := map[int]bool{}
			for _, p := range pats {
				m.stats.Inc(metrics.CandidateChecks)
				checked++
				if _, ok := ce.MatchPattern(e.Tuple, p.bind); !ok {
					continue
				}
				matchedAny = true
				for y, ids := range p.support {
					if len(ids) > 0 {
						marks[y] = true
					}
				}
			}
			if !matchedAny {
				continue
			}
			fire := true
			for _, j := range m.contributors[ce] {
				if !marks[j] {
					fire = false
					break
				}
			}
			if fire {
				fires = append(fires, e)
			}
		}
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindCondScan, At: t0, Dur: m.tr.Now() - t0,
				Rule: ce.Rule.Name, CE: ce.Index, Class: class, Count: checked,
			})
		}
		for _, e := range fires {
			m.verifyAndEmit(ce, e.ID, e.Tuple)
		}
	}
	return nil
}

// upsertMany applies a batch of contributions to one target condition
// element's COND relation under a single store lock (and, when simulated
// I/O is configured, a single page write), then records the new support
// links under a single reverse-index lock.
func (m *Matcher) upsertMany(k ceKey, contribs []contribution) {
	target := k.rule.CEs[k.ce]
	tst := m.stores[target.Class]
	m.stats.Add(metrics.MaintenanceOps, int64(len(contribs)))
	t0 := m.tr.Now()
	if m.tr.Enabled() {
		defer func() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindPatternPropagate, At: t0, Dur: m.tr.Now() - t0,
				Rule: k.rule.Name, CE: k.ce, Class: target.Class, Count: int64(len(contribs)),
			})
		}()
	}
	if m.ioDelay > 0 {
		time.Sleep(m.ioDelay) // one simulated COND-relation page write per batch
	}
	type newLink struct {
		wk     wmeKey
		p      *pattern
		srcIdx int
	}
	var links []newLink
	tst.mu.Lock()
	for _, c := range contribs {
		key := patternKey(target, c.bind)
		p, exists := tst.byKey[key]
		if !exists {
			p = &pattern{
				ce:      target,
				bind:    c.bind,
				support: make(map[int]idSet),
				key:     key,
			}
			tst.byKey[key] = p
			tst.byCE[k] = append(tst.byCE[k], p)
			m.stats.Inc(metrics.PatternsStored)
			m.stats.Inc(metrics.CondTuplesStored)
		}
		set := p.support[c.srcIdx]
		if set == nil {
			set = make(idSet)
			p.support[c.srcIdx] = set
		}
		if _, dup := set[c.id]; !dup {
			set[c.id] = struct{}{}
			links = append(links, newLink{wk: wmeKey{class: k.rule.CEs[c.srcIdx].Class, id: c.id}, p: p, srcIdx: c.srcIdx})
		}
	}
	tst.mu.Unlock()
	if len(links) == 0 {
		return
	}
	m.refMu.Lock()
	for _, l := range links {
		m.byTuple[l.wk] = append(m.byTuple[l.wk], patSlot{p: l.p, ceIdx: l.srcIdx})
	}
	m.refMu.Unlock()
}

// DeleteBatch implements match.BatchMatcher: every batch tuple's support
// withdrawals are grouped per COND relation, instantiations are retracted
// per tuple, and rules negatively dependent on the class are re-derived
// once for the whole batch instead of once per deleted tuple.
func (m *Matcher) DeleteBatch(class string, entries []relation.DeltaEntry) error {
	// Collect every support slot fed by a batch tuple under one
	// reverse-index lock.
	type slotRef struct {
		slot patSlot
		id   relation.TupleID
	}
	var slots []slotRef
	m.refMu.Lock()
	for _, e := range entries {
		wk := wmeKey{class: class, id: e.ID}
		for _, s := range m.byTuple[wk] {
			slots = append(slots, slotRef{slot: s, id: e.ID})
		}
		delete(m.byTuple, wk)
	}
	m.refMu.Unlock()

	// Withdraw support grouped per COND relation: one lock acquisition per
	// touched store per batch.
	byStore := make(map[*store][]slotRef)
	var storeOrder []*store
	for _, sr := range slots {
		st := m.stores[sr.slot.p.ce.Class]
		if _, seen := byStore[st]; !seen {
			storeOrder = append(storeOrder, st)
		}
		byStore[st] = append(byStore[st], sr)
	}
	for _, st := range storeOrder {
		st.mu.Lock()
		for _, sr := range byStore[st] {
			p := sr.slot.p
			if set := p.support[sr.slot.ceIdx]; set != nil {
				delete(set, sr.id)
				if len(set) == 0 {
					delete(p.support, sr.slot.ceIdx)
				}
			}
			if !p.original && len(p.support) == 0 {
				if _, live := st.byKey[p.key]; live {
					delete(st.byKey, p.key)
					k := ceKey{rule: p.ce.Rule, ce: p.ce.Index}
					list := st.byCE[k]
					for i, q := range list {
						if q == p {
							st.byCE[k] = append(list[:i], list[i+1:]...)
							break
						}
					}
					m.stats.Inc(metrics.PatternsDeleted)
				}
			}
		}
		st.mu.Unlock()
	}

	for _, e := range entries {
		m.cs.RemoveByTuple(class, e.ID)
	}

	// One re-derivation per negatively dependent rule per batch.
	seen := map[*rules.Rule]bool{}
	for _, ce := range m.set.ByClass[class] {
		if !ce.Negated || seen[ce.Rule] {
			continue
		}
		seen[ce.Rule] = true
		var found int64
		t0 := m.tr.Now()
		m.pl.Enumerate(m.db, ce.Rule, nil, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
			found++
			m.cs.Add(&conflict.Instantiation{Rule: ce.Rule, TupleIDs: ids, Tuples: tuples, Bindings: b})
		})
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindJoinEval, At: t0, Dur: m.tr.Now() - t0,
				Rule: ce.Rule.Name, CE: ce.Index, Class: class, Count: found,
			})
		}
	}
	return nil
}
