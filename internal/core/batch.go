package core

import (
	"time"

	"prodsys/internal/conflict"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
	"prodsys/internal/value"
)

// This file is the matching-pattern algorithm's set-oriented path: one
// batch of same-class WM changes is maintained with one COND-relation
// scan per (class, condition element) pair, propagation grouped so every
// target COND partition is locked (and, under simulated I/O, written)
// once per batch, and — for deletions — one re-derivation per negatively
// dependent rule per batch. This is the set-at-a-time processing the
// paper claims as the DBMS advantage (§4.2, §5.1), applied to the
// maintenance process itself.
//
// The path is split into a maintenance half (support withdrawal +
// pattern propagation, mutating COND state only) and a detection half
// (conflict-set updates only). The classic BatchMatcher entry points
// run both halves back to back; the match.Shardable entry points
// (ShardMaintain/ShardDetect) expose them separately so the engine's
// parallel scheduler can run all shards' maintenance to a barrier
// before any shard detects — the ordering that makes concurrent
// per-shard processing equivalent to the serial path.

// contribution is one projected matching pattern awaiting upsert into a
// target condition element's COND relation.
type contribution struct {
	srcIdx int
	id     relation.TupleID
	bind   rules.Bindings
}

// groupKey batches contributions per (target CE, contributing shard):
// one group maps to exactly one COND partition, so concurrent shard
// workers never contend on a partition lock.
type groupKey struct {
	k     ceKey
	shard int
}

// InsertBatch implements match.BatchMatcher. Unlike the tuple-at-a-time
// path — which updates the conflict set before maintaining the COND
// relations (§4.2.3) — the batch path runs the whole batch's maintenance
// first and detects afterwards, so a tuple whose marks are completed by
// another member of the same batch is still detected. Detection over the
// post-batch COND state sees a superset of the marks any sequential
// ordering would, and the verification join filters the extra candidates
// exactly as it filters false drops.
func (m *Matcher) InsertBatch(class string, entries []relation.DeltaEntry) error {
	m.sweepNegated(class, entries)
	m.maintainInserts(class, entries)
	m.detectInserts(class, entries)
	return nil
}

// sweepNegated retracts, once per negated condition element per batch,
// every instantiation some batch tuple now blocks.
func (m *Matcher) sweepNegated(class string, entries []relation.DeltaEntry) {
	for _, ce := range m.set.ByClass[class] {
		if !ce.Negated {
			continue
		}
		m.stats.Inc(metrics.PatternSearches)
		ceCopy := ce
		m.cs.RemoveWhere(func(in *conflict.Instantiation) bool {
			if in.Rule != ceCopy.Rule {
				return false
			}
			for _, e := range entries {
				if _, blocked := ceCopy.MatchWith(e.Tuple, in.Bindings); blocked {
					return true
				}
			}
			return false
		})
	}
}

// maintainInserts is the maintenance half of an insert batch: project
// every batch tuple's bindings onto its related condition elements,
// grouping the contributions per (target CE, shard) so each target COND
// partition is touched once per batch.
func (m *Matcher) maintainInserts(class string, entries []relation.DeltaEntry) {
	grouped := make(map[groupKey][]contribution)
	var order []groupKey
	for _, ce := range m.set.ByClass[class] {
		if ce.Negated {
			continue
		}
		targets := m.targets[ce]
		if len(targets) == 0 {
			continue
		}
		for _, e := range entries {
			tb, ok := ce.MatchPattern(e.Tuple, nil)
			if !ok {
				continue
			}
			shard := m.shardOf(class, e.Tuple)
			for _, j := range targets {
				target := ce.Rule.CEs[j]
				proj := rules.Bindings{}
				for _, v := range target.Vars() {
					if val, ok := tb[v]; ok {
						proj[v] = val
					}
				}
				if len(proj) == 0 {
					continue
				}
				gk := groupKey{k: ceKey{rule: ce.Rule, ce: j}, shard: shard}
				if _, seen := grouped[gk]; !seen {
					order = append(order, gk)
				}
				grouped[gk] = append(grouped[gk], contribution{srcIdx: ce.Index, id: e.ID, bind: proj})
			}
		}
	}
	if m.parallel && len(order) > 1 {
		m.stats.Inc(metrics.ParallelBatches)
		forwardPanics(len(order), func(i int) {
			m.upsertMany(order[i], grouped[order[i]])
		})
	} else {
		for _, gk := range order {
			m.upsertMany(gk, grouped[gk])
		}
	}
}

// condHashJoinMin is the COND snapshot size below which detectInserts
// keeps the plain nested-loop scan: building the hash buckets costs one
// pass over the snapshot, which only pays off once the per-entry scan it
// replaces is larger than that.
const condHashJoinMin = 16

// detectInserts is the detection half of an insert batch: one
// COND-relation pass per condition element for the whole batch (across
// every shard partition); the conflict set is fed incrementally as
// candidates survive verification. The batch is hash-joined against the
// snapshot on the condition element's first equality variable: a pattern
// binding that variable can only match tuples carrying the OPS5-equal
// value at the variable's attribute, so each entry probes one bucket
// plus the patterns leaving the variable unbound, instead of scanning
// the whole snapshot — which matters doubly under the sharded two-phase
// schedule, where detection always sees the complete post-batch COND
// state rather than the thinner mid-batch snapshots of the interleaved
// serial path.
func (m *Matcher) detectInserts(class string, entries []relation.DeltaEntry) {
	st := m.stores[class]
	for _, ce := range m.set.ByClass[class] {
		if ce.Negated {
			continue
		}
		m.stats.Inc(metrics.PatternSearches)
		k := ceKey{rule: ce.Rule, ce: ce.Index}
		pats := st.snapshot(k)
		// The probe variable is the equality variable bound by the most
		// patterns — patterns projected from a joining condition element
		// bind the join variables, not this element's locally-bound ones,
		// so the choice has to follow the data, not the source order.
		probePos, probeVar := -1, ""
		if len(pats) >= condHashJoinMin {
			bestCount := 0
			seen := map[string]bool{}
			for _, vt := range ce.VarTests {
				if vt.Op != value.OpEq || seen[vt.Var] {
					continue
				}
				seen[vt.Var] = true
				n := 0
				for _, p := range pats {
					if _, ok := p.bind[vt.Var]; ok {
						n++
					}
				}
				if n > bestCount {
					probePos, probeVar, bestCount = vt.Pos, vt.Var, n
				}
			}
		}
		var buckets map[value.V][]*pattern
		var residual []*pattern
		if probePos >= 0 {
			buckets = make(map[value.V][]*pattern)
			for _, p := range pats {
				if bv, ok := p.bind[probeVar]; ok {
					buckets[bv.Key()] = append(buckets[bv.Key()], p)
				} else {
					residual = append(residual, p)
				}
			}
		}
		var checked int64
		var fires []relation.DeltaEntry
		t0 := m.tr.Now()
		for _, e := range entries {
			var matchedAny bool
			marks := map[int]bool{}
			scan := func(list []*pattern) {
				for _, p := range list {
					checked++
					if _, ok := ce.MatchPattern(e.Tuple, p.bind); !ok {
						continue
					}
					matchedAny = true
					for y, ids := range p.support {
						if len(ids) > 0 {
							marks[y] = true
						}
					}
				}
			}
			if buckets != nil {
				if probePos < len(e.Tuple) {
					scan(buckets[e.Tuple[probePos].Key()])
				}
				scan(residual)
			} else {
				scan(pats)
			}
			if !matchedAny {
				continue
			}
			fire := true
			for _, j := range m.contributors[ce] {
				if !marks[j] {
					fire = false
					break
				}
			}
			if fire {
				fires = append(fires, e)
			}
		}
		m.stats.Add(metrics.CandidateChecks, checked)
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindCondScan, At: t0, Dur: m.tr.Now() - t0,
				Rule: ce.Rule.Name, CE: ce.Index, Class: class, Count: checked,
			})
		}
		for _, e := range fires {
			m.verifyAndEmit(ce, e.ID, e.Tuple)
		}
	}
}

// upsertMany applies a batch of contributions to one COND partition
// under a single store lock (and, when simulated I/O is configured, a
// single page write), then records the new support links under a single
// reverse-index lock.
func (m *Matcher) upsertMany(gk groupKey, contribs []contribution) {
	k := gk.k
	target := k.rule.CEs[k.ce]
	tst := m.stores[target.Class].subs[gk.shard]
	m.stats.Add(metrics.MaintenanceOps, int64(len(contribs)))
	t0 := m.tr.Now()
	if m.tr.Enabled() {
		defer func() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindPatternPropagate, At: t0, Dur: m.tr.Now() - t0,
				Rule: k.rule.Name, CE: k.ce, Class: target.Class, Count: int64(len(contribs)),
			})
		}()
	}
	if m.ioDelay > 0 {
		time.Sleep(m.ioDelay) // one simulated COND-relation page write per batch
	}
	type newLink struct {
		wk     wmeKey
		p      *pattern
		srcIdx int
	}
	var links []newLink
	tst.mu.Lock()
	for _, c := range contribs {
		key := patternKey(target, c.bind)
		p, exists := tst.byKey[key]
		if !exists {
			p = &pattern{
				ce:      target,
				bind:    c.bind,
				support: make(map[int]idSet),
				key:     key,
			}
			tst.byKey[key] = p
			tst.byCE[k] = append(tst.byCE[k], p)
			m.stats.Inc(metrics.PatternsStored)
			m.stats.Inc(metrics.CondTuplesStored)
		}
		set := p.support[c.srcIdx]
		if set == nil {
			set = make(idSet)
			p.support[c.srcIdx] = set
		}
		if _, dup := set[c.id]; !dup {
			set[c.id] = struct{}{}
			links = append(links, newLink{wk: wmeKey{class: k.rule.CEs[c.srcIdx].Class, id: c.id}, p: p, srcIdx: c.srcIdx})
		}
	}
	tst.mu.Unlock()
	if len(links) == 0 {
		return
	}
	m.refMu.Lock()
	for _, l := range links {
		m.byTuple[l.wk] = append(m.byTuple[l.wk], patSlot{p: l.p, ceIdx: l.srcIdx, st: tst})
	}
	m.refMu.Unlock()
}

// DeleteBatch implements match.BatchMatcher: every batch tuple's support
// withdrawals are grouped per COND partition, instantiations are
// retracted per tuple, and rules negatively dependent on the class are
// re-derived once for the whole batch instead of once per deleted tuple.
func (m *Matcher) DeleteBatch(class string, entries []relation.DeltaEntry) error {
	m.withdrawDeletes(class, entries)
	m.detectDeletes(class, entries)
	return nil
}

// withdrawDeletes is the maintenance half of a delete batch: the
// support slots fed by the batch tuples are withdrawn (the counter
// decrement of §4.2.2), grouped per COND partition — one lock
// acquisition per touched partition per batch. Because a tuple's
// contributions live only on its own shard's partitions, a per-shard
// sub-batch touches no other shard's COND state.
func (m *Matcher) withdrawDeletes(class string, entries []relation.DeltaEntry) {
	type slotRef struct {
		slot patSlot
		id   relation.TupleID
	}
	var slots []slotRef
	m.refMu.Lock()
	for _, e := range entries {
		wk := wmeKey{class: class, id: e.ID}
		for _, s := range m.byTuple[wk] {
			slots = append(slots, slotRef{slot: s, id: e.ID})
		}
		delete(m.byTuple, wk)
	}
	m.refMu.Unlock()

	byStore := make(map[*store][]slotRef)
	var storeOrder []*store
	for _, sr := range slots {
		st := sr.slot.st
		if _, seen := byStore[st]; !seen {
			storeOrder = append(storeOrder, st)
		}
		byStore[st] = append(byStore[st], sr)
	}
	for _, st := range storeOrder {
		st.mu.Lock()
		for _, sr := range byStore[st] {
			p := sr.slot.p
			if set := p.support[sr.slot.ceIdx]; set != nil {
				delete(set, sr.id)
				if len(set) == 0 {
					delete(p.support, sr.slot.ceIdx)
				}
			}
			if !p.original && len(p.support) == 0 {
				if _, live := st.byKey[p.key]; live {
					delete(st.byKey, p.key)
					k := ceKey{rule: p.ce.Rule, ce: p.ce.Index}
					list := st.byCE[k]
					for i, q := range list {
						if q == p {
							st.byCE[k] = append(list[:i], list[i+1:]...)
							break
						}
					}
					m.stats.Inc(metrics.PatternsDeleted)
				}
			}
		}
		st.mu.Unlock()
	}
}

// detectDeletes is the detection half of a delete batch: retract the
// instantiations built on the deleted tuples and re-derive negatively
// dependent rules — once per rule per batch — against final WM state.
func (m *Matcher) detectDeletes(class string, entries []relation.DeltaEntry) {
	for _, e := range entries {
		m.cs.RemoveByTuple(class, e.ID)
	}

	seen := map[*rules.Rule]bool{}
	for _, ce := range m.set.ByClass[class] {
		if !ce.Negated || seen[ce.Rule] {
			continue
		}
		seen[ce.Rule] = true
		var found int64
		t0 := m.tr.Now()
		m.pl.Enumerate(m.db, ce.Rule, nil, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
			found++
			m.cs.Add(&conflict.Instantiation{Rule: ce.Rule, TupleIDs: ids, Tuples: tuples, Bindings: b})
		})
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindJoinEval, At: t0, Dur: m.tr.Now() - t0,
				Rule: ce.Rule.Name, CE: ce.Index, Class: class, Count: found,
			})
		}
	}
}

// ShardMaintain implements match.Shardable phase 1 for one shard's
// sub-delta: COND-state maintenance only. Every touched partition
// belongs to this sub-delta's shard, so concurrent workers are
// contention-free on COND locks (the reverse index is the one shared
// structure, taken once per class per direction).
func (m *Matcher) ShardMaintain(d *relation.Delta) error {
	classes := d.Classes()
	for _, class := range classes {
		if e := d.Deletes(class); len(e) > 0 {
			m.withdrawDeletes(class, e)
		}
	}
	for _, class := range classes {
		if e := d.Inserts(class); len(e) > 0 {
			m.maintainInserts(class, e)
		}
	}
	return nil
}

// ShardDetect implements match.Shardable phase 2 for one shard's
// sub-delta: conflict-set updates against the complete post-batch COND
// state (all shards' maintenance has run — the engine's barrier).
func (m *Matcher) ShardDetect(d *relation.Delta) error {
	classes := d.Classes()
	for _, class := range classes {
		if e := d.Deletes(class); len(e) > 0 {
			m.detectDeletes(class, e)
		}
	}
	for _, class := range classes {
		if e := d.Inserts(class); len(e) > 0 {
			m.sweepNegated(class, e)
			m.detectInserts(class, e)
		}
	}
	return nil
}
