package core

import (
	"fmt"
	"math/rand"
	"sort"

	"prodsys/internal/audit"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
)

// This file implements the integrity-audit hooks over the COND
// relations: the ground truth of every matching pattern and its Mark
// counters (§4.2.2) is recomputed by replaying the maintenance
// projection over the base WM relations and diffed against the stores.

// expEntry is the recomputed ground truth of one matching pattern.
type expEntry struct {
	ce  *rules.CE
	sup map[int]idSet
}

// expectedSupport replays the maintenance projection from WM: for every
// positive source condition element, each matching WM tuple projects its
// bindings onto the source's targets, reproducing exactly the patterns
// and support sets the incremental path should have accumulated.
func (m *Matcher) expectedSupport(db *relation.DB, only map[string]bool) map[string]*expEntry {
	exp := make(map[string]*expEntry)
	for _, r := range m.set.Rules {
		if only != nil && !only[r.Name] {
			continue
		}
		for _, src := range r.CEs {
			if src.Negated {
				continue
			}
			targets := m.targets[src]
			if len(targets) == 0 {
				continue
			}
			rel, ok := db.Get(src.Class)
			if !ok {
				continue
			}
			srcIdx := src.Index
			rel.Scan(func(id relation.TupleID, t relation.Tuple) bool {
				tb, ok := src.MatchPattern(t, nil)
				if !ok {
					return true
				}
				for _, j := range targets {
					target := r.CEs[j]
					proj := rules.Bindings{}
					for _, v := range target.Vars() {
						if val, ok := tb[v]; ok {
							proj[v] = val
						}
					}
					if len(proj) == 0 {
						continue
					}
					key := patternKey(target, proj)
					e := exp[key]
					if e == nil {
						e = &expEntry{ce: target, sup: make(map[int]idSet)}
						exp[key] = e
					}
					set := e.sup[srcIdx]
					if set == nil {
						set = make(idSet)
						e.sup[srcIdx] = set
					}
					set[id] = struct{}{}
				}
				return true
			})
		}
	}
	return exp
}

// AuditDerived implements audit.DerivedAuditor: the stores' matching
// patterns and per-RCE support sets are diffed against the ground truth
// recomputed from WM.
func (m *Matcher) AuditDerived(db *relation.DB, only map[string]bool, emit func(audit.Divergence)) {
	exp := m.expectedSupport(db, only)
	classes := make([]string, 0, len(m.stores))
	for c := range m.stores {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		// Shard partitions hold disjoint slices of each pattern's support;
		// the ground truth is per merged pattern, so audit the union.
		merged := m.stores[class].mergeByKey()
		keys := make([]string, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			p := merged[key]
			rname := p.ce.Rule.Name
			if only != nil && !only[rname] {
				continue
			}
			e := exp[key]
			delete(exp, key)
			if e == nil {
				if p.original {
					// Original COND tuples carry no support by construction.
					if len(p.support) > 0 {
						emit(audit.Divergence{Class: audit.DivMarkCounter, Rule: rname, CE: p.ce.Index, Key: key,
							Expected: "no support on original COND tuple",
							Actual:   fmt.Sprintf("%d support slot(s)", len(p.support))})
					}
					continue
				}
				emit(audit.Divergence{Class: audit.DivPatternPhantom, Rule: rname, CE: p.ce.Index, Key: key,
					Expected: "pattern absent", Actual: supportString(p.support)})
				continue
			}
			idxSet := map[int]bool{}
			for i := range p.support {
				idxSet[i] = true
			}
			for i := range e.sup {
				idxSet[i] = true
			}
			idxs := make([]int, 0, len(idxSet))
			for i := range idxSet {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			for _, idx := range idxs {
				got, want := p.support[idx], e.sup[idx]
				if !sameIDSet(got, want) {
					emit(audit.Divergence{Class: audit.DivMarkCounter, Rule: rname, CE: p.ce.Index,
						Key:      fmt.Sprintf("%s#%d", key, idx),
						Expected: idsString(want), Actual: idsString(got)})
				}
			}
		}
	}
	// Whatever ground truth remains was never materialized.
	left := make([]string, 0, len(exp))
	for k := range exp {
		left = append(left, k)
	}
	sort.Strings(left)
	for _, key := range left {
		e := exp[key]
		emit(audit.Divergence{Class: audit.DivPatternMissing, Rule: e.ce.Rule.Name, CE: e.ce.Index, Key: key,
			Expected: supportString(e.sup), Actual: "pattern absent"})
	}
}

// RebuildRules implements audit.DerivedRebuilder: the selected rules'
// derived patterns are dropped (originals keep their COND tuples but
// shed support) and re-derived by replaying the maintenance projection
// over the WM relations. only == nil rebuilds every rule.
func (m *Matcher) RebuildRules(db *relation.DB, only map[string]bool) error {
	sel := func(r *rules.Rule) bool { return only == nil || only[r.Name] }
	for _, cst := range m.stores {
		cst.all(func(st *store) {
			st.mu.Lock()
			for key, p := range st.byKey {
				if !sel(p.ce.Rule) {
					continue
				}
				if p.original {
					p.support = make(map[int]idSet)
					continue
				}
				delete(st.byKey, key)
			}
			for k, list := range st.byCE {
				if !sel(k.rule) {
					continue
				}
				kept := list[:0]
				for _, p := range list {
					if p.original {
						kept = append(kept, p)
					}
				}
				st.byCE[k] = kept
			}
			st.mu.Unlock()
		})
	}
	m.refMu.Lock()
	for wk, slots := range m.byTuple {
		kept := slots[:0]
		for _, s := range slots {
			if !sel(s.p.ce.Rule) {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			delete(m.byTuple, wk)
		} else {
			m.byTuple[wk] = kept
		}
	}
	m.refMu.Unlock()

	for _, r := range m.set.Rules {
		if !sel(r) {
			continue
		}
		for _, src := range r.CEs {
			if src.Negated || len(m.targets[src]) == 0 {
				continue
			}
			rel, ok := db.Get(src.Class)
			if !ok {
				continue
			}
			src := src
			rel.Scan(func(id relation.TupleID, t relation.Tuple) bool {
				if tb, ok := src.MatchPattern(t, nil); ok {
					m.propagate(src, id, tb, m.shardOf(src.Class, t))
				}
				return true
			})
		}
	}
	m.stats.Inc(metrics.MatcherRebuilds)
	return nil
}

// CorruptDerived implements audit.Corrupter: one derived pattern's Mark
// counter is damaged, either by dropping a real supporting tuple ID or
// by adding a phantom one.
func (m *Matcher) CorruptDerived(rng *rand.Rand) string {
	classes := make([]string, 0, len(m.stores))
	for c := range m.stores {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	type cand struct {
		st  *store
		key string
	}
	var cands []cand
	for _, class := range classes {
		m.stores[class].all(func(st *store) {
			st.mu.Lock()
			keys := make([]string, 0, len(st.byKey))
			for k, p := range st.byKey {
				if !p.original && len(p.support) > 0 {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			st.mu.Unlock()
			for _, k := range keys {
				cands = append(cands, cand{st: st, key: k})
			}
		})
	}
	if len(cands) == 0 {
		return ""
	}
	c := cands[rng.Intn(len(cands))]
	c.st.mu.Lock()
	defer c.st.mu.Unlock()
	p := c.st.byKey[c.key]
	if p == nil || len(p.support) == 0 {
		return ""
	}
	idxs := make([]int, 0, len(p.support))
	for i := range p.support {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	idx := idxs[rng.Intn(len(idxs))]
	set := p.support[idx]
	if rng.Intn(2) == 0 && len(set) > 0 {
		ids := make([]relation.TupleID, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		id := ids[rng.Intn(len(ids))]
		delete(set, id)
		return fmt.Sprintf("core: dropped support %s#%d id=%d", c.key, idx, id)
	}
	bogus := relation.TupleID(1<<40) + relation.TupleID(rng.Intn(1<<16))
	set[bogus] = struct{}{}
	return fmt.Sprintf("core: added phantom support %s#%d id=%d", c.key, idx, bogus)
}

func sameIDSet(a, b idSet) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if _, ok := b[id]; !ok {
			return false
		}
	}
	return true
}

func idsString(s idSet) string {
	if len(s) == 0 {
		return "no supporters"
	}
	ids := make([]relation.TupleID, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return fmt.Sprintf("supporters %v", ids)
}

func supportString(sup map[int]idSet) string {
	if len(sup) == 0 {
		return "no support"
	}
	idxs := make([]int, 0, len(sup))
	for i := range sup {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	parts := make([]string, 0, len(idxs))
	for _, i := range idxs {
		parts = append(parts, fmt.Sprintf("#%d×%d", i, len(sup[i])))
	}
	return fmt.Sprintf("support %v", parts)
}
