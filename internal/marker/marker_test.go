package marker

import (
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

const src = `
(literalize Emp name salary dno)
(literalize Dept dno dname)
(p Toy (Emp ^dno <d>) (Dept ^dno <d> ^dname Toy) --> (remove 1))
(p Rich (Emp ^salary > 1000) --> (halt))
`

type fixture struct {
	m  *Matcher
	db *relation.DB
	cs *conflict.Set
	st *metrics.Set
}

func setup(t *testing.T) *fixture {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.Set{}
	db := relation.NewDB(st)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet(st)
	return &fixture{m: New(set, db, cs, st), db: db, cs: cs, st: st}
}

func (f *fixture) insert(t *testing.T, class string, vals ...value.V) relation.TupleID {
	t.Helper()
	rel := f.db.MustGet(class)
	id, err := rel.Insert(relation.Tuple(vals))
	if err != nil {
		t.Fatal(err)
	}
	tup, _ := rel.Get(id)
	if err := f.m.Insert(class, id, tup); err != nil {
		t.Fatal(err)
	}
	return id
}

func (f *fixture) remove(t *testing.T, class string, id relation.TupleID) {
	t.Helper()
	tup, err := f.db.MustGet(class).Delete(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.m.Delete(class, id, tup); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalWakeAndFire(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(500), value.OfInt(7))
	if f.cs.Len() != 0 {
		t.Fatalf("nothing should fire: %v", f.cs.Keys())
	}
	f.insert(t, "Emp", value.OfSym("Bob"), value.OfInt(2000), value.OfInt(7))
	keys := f.cs.Keys()
	if len(keys) != 1 || keys[0] != "Rich|2" {
		t.Fatalf("Rich should fire for Bob: %v", keys)
	}
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	if f.cs.Len() != 3 {
		t.Fatalf("Toy fires for Ann and Bob: %v", f.cs.Keys())
	}
}

func TestFalseDropsCounted(t *testing.T) {
	f := setup(t)
	// An Emp insert wakes Toy (no constant restriction on Emp ⇒ whole
	// relation marked), which finds nothing: a false drop.
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(500), value.OfInt(7))
	if f.st.Get(metrics.FalseDrops) == 0 {
		t.Error("expected false drops from unrestricted interval marks")
	}
}

func TestIntervalFiltersInserts(t *testing.T) {
	f := setup(t)
	before := f.st.Get(metrics.CandidateChecks)
	// Salary 500 falls outside Rich's (1000, +inf) interval: Rich not
	// woken by the salary dimension... but Toy's unrestricted interval
	// still wakes Toy. Count wakes per rule by checking Dept: a Dept
	// insert with dname ≠ Toy must not wake Toy's Dept condition mark?
	// Dept CE has dname = Toy point restriction:
	f.insert(t, "Dept", value.OfInt(9), value.OfSym("Shoe"))
	wakes := f.st.Get(metrics.CandidateChecks) - before
	if wakes != 0 {
		t.Fatalf("Shoe dept should wake nothing, woke %d", wakes)
	}
}

func TestDeleteRetractsViaMarks(t *testing.T) {
	f := setup(t)
	e := f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(500), value.OfInt(7))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	if f.cs.Len() != 1 {
		t.Fatalf("setup: %v", f.cs.Keys())
	}
	if f.m.MarkCount() == 0 {
		t.Error("instantiation should mark its tuples")
	}
	f.remove(t, "Emp", e)
	if f.cs.Len() != 0 {
		t.Fatalf("deletion should retract: %v", f.cs.Keys())
	}
}

func TestDeleteOtherSideRetracts(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(500), value.OfInt(7))
	d := f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	f.remove(t, "Dept", d)
	if f.cs.Len() != 0 {
		t.Fatalf("dept deletion should retract Toy: %v", f.cs.Keys())
	}
}

func TestNameAndAccessors(t *testing.T) {
	f := setup(t)
	if f.m.Name() != "marker" {
		t.Errorf("Name = %q", f.m.Name())
	}
	if f.m.ConflictSet() != f.cs {
		t.Error("ConflictSet accessor")
	}
}

func TestIntervalContains(t *testing.T) {
	iv := interval{pos: 0, lo: value.OfInt(10), hi: value.OfInt(20)}
	if !iv.contains(value.OfInt(15)) || iv.contains(value.OfInt(5)) || iv.contains(value.OfInt(25)) {
		t.Error("bounded interval")
	}
	open := interval{pos: 0, lo: value.OfInt(10)}
	if !open.contains(value.OfInt(1<<40)) || open.contains(value.OfInt(3)) {
		t.Error("half-open interval")
	}
	if open.contains(value.V{}) {
		t.Error("nil never contained")
	}
}

func TestNegationWakeAndUnblock(t *testing.T) {
	// Exercises wakeInsert's negated branch and wakeDelete's re-derivation.
	set, _, err := rules.CompileSource(`
(literalize Emp dno)
(literalize Dept dno)
(p Orphan (Emp ^dno <d>) - (Dept ^dno <d>) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.Set{}
	db := relation.NewDB(st)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet(st)
	m := New(set, db, cs, st)

	ins := func(class string, vals ...value.V) relation.TupleID {
		id, _ := db.MustGet(class).Insert(relation.Tuple(vals))
		tup, _ := db.MustGet(class).Get(id)
		m.Insert(class, id, tup)
		return id
	}
	del := func(class string, id relation.TupleID) {
		tup, _ := db.MustGet(class).Delete(id)
		m.Delete(class, id, tup)
	}

	ins("Emp", value.OfInt(7))
	if cs.Len() != 1 {
		t.Fatalf("orphan should fire: %v", cs.Keys())
	}
	// Blocker insert retracts through the negated branch of wakeInsert.
	d := ins("Dept", value.OfInt(7))
	if cs.Len() != 0 {
		t.Fatalf("blocker should retract: %v", cs.Keys())
	}
	// Blocker delete re-derives through wakeDelete.
	del("Dept", d)
	if cs.Len() != 1 {
		t.Fatalf("unblock should re-fire: %v", cs.Keys())
	}
	// With no employees left, a dept deletion wakes Orphan fruitlessly —
	// a false drop in wakeDelete.
	d2 := ins("Dept", value.OfInt(9))
	for _, k := range cs.Keys() {
		cs.Remove(k)
	}
	empIDs := db.MustGet("Emp").Select(nil)
	for _, id := range empIDs {
		del("Emp", id)
	}
	before := st.Get(metrics.FalseDrops)
	del("Dept", d2)
	if st.Get(metrics.FalseDrops) == before {
		t.Error("fruitless delete wake should count a false drop")
	}
}

func TestIntervalForBounds(t *testing.T) {
	set, _, err := rules.CompileSource(`
(literalize R x y)
(p band (R ^x > 10 ^x < 20) --> (halt))
(p ceil (R ^y <= 5) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	band, _ := set.RuleByName("band")
	iv := intervalFor(band.CEs[0])
	if iv.pos != 0 || !iv.contains(value.OfInt(15)) || iv.contains(value.OfInt(25)) {
		t.Fatalf("band interval: %+v", iv)
	}
	ceil, _ := set.RuleByName("ceil")
	iv = intervalFor(ceil.CEs[0])
	if iv.pos != 1 || !iv.contains(value.OfInt(3)) || iv.contains(value.OfInt(9)) {
		t.Fatalf("ceil interval: %+v", iv)
	}
}
