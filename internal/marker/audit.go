package marker

import (
	"fmt"
	"math/rand"

	"prodsys/internal/audit"
	"prodsys/internal/conflict"
	"prodsys/internal/joiner"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
)

// This file implements the integrity-audit hooks for Basic Locking.
// The invariant audited is one-sided: every tuple supporting a live
// instantiation must still carry that rule's marker, or a future WM
// update touching it would be silently dropped. Stale markers on tuples
// that no longer support a match are by design (the algorithm tolerates
// false drops), so no phantom class is reported.

// AuditDerived implements audit.DerivedAuditor: for each selected rule,
// the full LHS join is recomputed from WM and each supporting tuple's
// marker checked.
func (m *Matcher) AuditDerived(db *relation.DB, only map[string]bool, emit func(audit.Divergence)) {
	for _, r := range m.set.Rules {
		if only != nil && !only[r.Name] {
			continue
		}
		r := r
		joiner.Enumerate(db, r, nil, nil, m.stats, func(ids []relation.TupleID, _ []relation.Tuple, _ rules.Bindings) {
			in := conflict.Instantiation{Rule: r, TupleIDs: ids}
			if m.cs.HasFired(in.Key()) {
				return
			}
			for i, ce := range r.CEs {
				if ce.Negated {
					continue
				}
				key := tupleKey{class: ce.Class, id: ids[i]}
				m.mu.Lock()
				_, marked := m.marks[key][r]
				m.mu.Unlock()
				if !marked {
					emit(audit.Divergence{Class: audit.DivMarkMissing, Rule: r.Name, CE: i,
						Key:      fmt.Sprintf("%s:%d", ce.Class, ids[i]),
						Expected: "tuple marked with rule", Actual: "no marker"})
				}
			}
		})
	}
}

// RebuildRules implements audit.DerivedRebuilder: the selected rules'
// markers are re-derived by re-running their LHS joins and re-marking
// every supporting tuple. Existing markers are left in place (stale
// ones are harmless).
func (m *Matcher) RebuildRules(db *relation.DB, only map[string]bool) error {
	for _, r := range m.set.Rules {
		if only != nil && !only[r.Name] {
			continue
		}
		r := r
		joiner.Enumerate(db, r, nil, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
			in := &conflict.Instantiation{Rule: r, TupleIDs: ids, Tuples: tuples, Bindings: b}
			m.markInstantiation(in)
		})
	}
	m.stats.Inc(metrics.MatcherRebuilds)
	return nil
}

// CorruptDerived implements audit.Corrupter: one marker required by a
// live instantiation is removed, simulating a lost mark bit.
func (m *Matcher) CorruptDerived(rng *rand.Rand) string {
	type cand struct {
		in    *conflict.Instantiation
		ceIdx int
	}
	var cands []cand
	for _, in := range m.cs.SelectAll() {
		for i, ce := range in.Rule.CEs {
			if ce.Negated {
				continue
			}
			m.mu.Lock()
			_, marked := m.marks[tupleKey{class: ce.Class, id: in.TupleIDs[i]}][in.Rule]
			m.mu.Unlock()
			if marked {
				cands = append(cands, cand{in: in, ceIdx: i})
			}
		}
	}
	if len(cands) == 0 {
		return ""
	}
	c := cands[rng.Intn(len(cands))]
	ce := c.in.Rule.CEs[c.ceIdx]
	key := tupleKey{class: ce.Class, id: c.in.TupleIDs[c.ceIdx]}
	m.mu.Lock()
	delete(m.marks[key], c.in.Rule)
	if len(m.marks[key]) == 0 {
		delete(m.marks, key)
	}
	m.mu.Unlock()
	return fmt.Sprintf("marker: unmarked %s:%d for rule %s", ce.Class, key.id, c.in.Rule.Name)
}
