package marker

import "prodsys/internal/relation"

// Basic Locking's derived state is the marker map, but a deletion must
// read the deleted tuple's markers to know which rules to wake BEFORE
// discarding them — marker upkeep and detection cannot be phase-split.
// Everything therefore runs in the detection phase: the marker map is
// mutex-guarded, each tuple's marker entry is touched only by its own
// deletion (tuples live on exactly one shard), and every wake-time
// re-evaluation runs against final WM state, so per-shard sub-batches
// commute.

// ShardMaintain implements match.Shardable phase 1: a no-op — marker
// bookkeeping is inseparable from wake-up detection (see above).
func (m *Matcher) ShardMaintain(d *relation.Delta) error { return nil }

// ShardDetect implements match.Shardable phase 2: the tuple-at-a-time
// path over one shard's sub-delta, deletions first.
func (m *Matcher) ShardDetect(d *relation.Delta) error {
	classes := d.Classes()
	for _, class := range classes {
		for _, e := range d.Deletes(class) {
			if err := m.Delete(class, e.ID, e.Tuple); err != nil {
				return err
			}
		}
	}
	for _, class := range classes {
		for _, e := range d.Inserts(class) {
			if err := m.Insert(class, e.ID, e.Tuple); err != nil {
				return err
			}
		}
	}
	return nil
}
