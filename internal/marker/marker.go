// Package marker implements the Basic Locking rule-indexing scheme of
// Stonebraker, Sellis and Hanson [STON86a], described in §2.3 of the
// paper and used by POSTGRES: every tuple read while evaluating a rule's
// condition is marked with the rule's identifier, and index intervals are
// marked to catch future insertions (the phantom problem). An update to a
// marked tuple — or an insertion falling into a marked interval — wakes
// the marked rules, which must then re-check their conditions.
//
// The scheme stores only rule identifiers with the data (cheap space) but
// wakes rules that turn out not to be affected: the false drops the paper
// contrasts with its matching-pattern approach (§3.2, "POSTGRES will of
// course check the conditions of the rules before the corresponding
// actions are performed, but that will incur unnecessarily high
// computation cost").
package marker

import (
	"sort"
	"sync"

	"prodsys/internal/conflict"
	"prodsys/internal/joiner"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
	"prodsys/internal/value"
)

// interval is a marked key range on one attribute of one class: rules
// interested in tuples whose attribute falls inside [lo, hi].
type interval struct {
	pos    int
	lo, hi value.V // nil bound = unbounded
	rule   *rules.Rule
	ce     *rules.CE
}

// contains reports whether v falls inside the interval.
func (iv interval) contains(v value.V) bool {
	if v.IsNil() {
		return false
	}
	if !iv.lo.IsNil() && !value.OpLe.Apply(iv.lo, v) {
		return false
	}
	if !iv.hi.IsNil() && !value.OpLe.Apply(v, iv.hi) {
		return false
	}
	return true
}

// tupleKey identifies a marked tuple.
type tupleKey struct {
	class string
	id    relation.TupleID
}

// Matcher is the Basic Locking matcher.
type Matcher struct {
	set   *rules.Set
	db    *relation.DB
	cs    *conflict.Set
	stats *metrics.Set
	tr    *trace.Tracer
	pl    *joiner.Planner

	mu sync.Mutex
	// marks: rule identifiers set on individual data tuples.
	marks map[tupleKey]map[*rules.Rule]struct{}
	// intervals: per class, the marked index key ranges derived from the
	// condition elements' restrictions at setup time.
	intervals map[string][]interval
}

// New builds the matcher and sets the index-interval marks implied by the
// rule set: for each condition element, the key range its constant
// restrictions admit on each restricted attribute; condition elements
// with no constant restriction mark the whole relation (the paper's
// "in the absence of indices ... marking all tuples" case).
func New(set *rules.Set, db *relation.DB, cs *conflict.Set, stats *metrics.Set) *Matcher {
	m := &Matcher{
		set:       set,
		db:        db,
		cs:        cs,
		stats:     stats,
		marks:     make(map[tupleKey]map[*rules.Rule]struct{}),
		intervals: make(map[string][]interval),
	}
	for _, r := range set.Rules {
		for _, ce := range r.CEs {
			m.intervals[ce.Class] = append(m.intervals[ce.Class], intervalFor(ce))
		}
	}
	return m
}

// intervalFor derives the marked key range of a condition element from
// its constant restrictions: the tightest single-attribute interval.
func intervalFor(ce *rules.CE) interval {
	iv := interval{pos: -1, rule: ce.Rule, ce: ce}
	for _, c := range ce.Consts {
		switch c.Op {
		case value.OpEq:
			return interval{pos: c.Pos, lo: c.Val, hi: c.Val, rule: ce.Rule, ce: ce}
		case value.OpGe, value.OpGt:
			if iv.pos == -1 || iv.pos == c.Pos {
				iv.pos, iv.lo = c.Pos, c.Val
			}
		case value.OpLe, value.OpLt:
			if iv.pos == -1 || iv.pos == c.Pos {
				iv.pos, iv.hi = c.Pos, c.Val
			}
		}
	}
	return iv
}

// SetTracer implements match.Traceable: marker/interval lookups and
// wake-time re-evaluations are emitted as trace events.
func (m *Matcher) SetTracer(tr *trace.Tracer) { m.tr = tr }

// SetPlanner implements match.Planned: wake-time re-evaluations run
// under the planner's cost-based join order.
func (m *Matcher) SetPlanner(p *joiner.Planner) { m.pl = p }

// Name implements match.Matcher.
func (m *Matcher) Name() string { return "marker" }

// ConflictSet implements match.Matcher.
func (m *Matcher) ConflictSet() *conflict.Set { return m.cs }

// wakeInsert re-evaluates one woken rule against the inserted tuple:
// every condition element of the rule on the tuple's class is tried as
// the seed of an incremental evaluation (the re-check POSTGRES performs
// before acting). A wake that derives nothing is a false drop — the
// index-interval mark was too coarse.
func (m *Matcher) wakeInsert(r *rules.Rule, class string, id relation.TupleID, t relation.Tuple) {
	m.stats.Inc(metrics.CandidateChecks)
	t0 := m.tr.Now()
	var derived int64
	found := false
	for _, ce := range r.CEs {
		if ce.Class != class {
			continue
		}
		if ce.Negated {
			// The insertion may invalidate instantiations negatively
			// dependent on this class.
			ceCopy := ce
			m.cs.RemoveWhere(func(in *conflict.Instantiation) bool {
				if in.Rule != r {
					return false
				}
				_, blocked := ceCopy.MatchWith(t, in.Bindings)
				return blocked
			})
			continue
		}
		fixed := map[int]joiner.Fixed{ce.Index: {ID: id, Tuple: t}}
		m.pl.Enumerate(m.db, r, fixed, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
			found = true
			derived++
			in := &conflict.Instantiation{Rule: r, TupleIDs: ids, Tuples: tuples, Bindings: b}
			m.markInstantiation(in)
			m.cs.Add(in)
		})
	}
	if m.tr.Enabled() {
		extra := ""
		if !found {
			extra = "false drop"
		}
		m.tr.Emit(trace.Event{
			Kind: trace.KindJoinEval, At: t0, Dur: m.tr.Now() - t0,
			Rule: r.Name, CE: -1, Class: class, ID: uint64(id), Count: derived, Extra: extra,
		})
	}
	if !found {
		m.stats.Inc(metrics.FalseDrops)
	}
}

// wakeDelete re-derives one woken rule from scratch after a deletion
// (deletions can unblock negated conditions, so an incremental seed is
// not available).
func (m *Matcher) wakeDelete(r *rules.Rule) {
	m.stats.Inc(metrics.CandidateChecks)
	t0 := m.tr.Now()
	var derived int64
	found := false
	m.pl.Enumerate(m.db, r, nil, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
		found = true
		derived++
		in := &conflict.Instantiation{Rule: r, TupleIDs: ids, Tuples: tuples, Bindings: b}
		m.markInstantiation(in)
		m.cs.Add(in)
	})
	if m.tr.Enabled() {
		extra := ""
		if !found {
			extra = "false drop"
		}
		m.tr.Emit(trace.Event{
			Kind: trace.KindJoinEval, At: t0, Dur: m.tr.Now() - t0,
			Rule: r.Name, CE: -1, Count: derived, Extra: extra,
		})
	}
	if !found {
		m.stats.Inc(metrics.FalseDrops)
	}
}

// markInstantiation sets rule markers on the tuples the evaluation read.
func (m *Matcher) markInstantiation(in *conflict.Instantiation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, ce := range in.Rule.CEs {
		if ce.Negated {
			continue
		}
		key := tupleKey{class: ce.Class, id: in.TupleIDs[i]}
		set := m.marks[key]
		if set == nil {
			set = make(map[*rules.Rule]struct{})
			m.marks[key] = set
		}
		set[in.Rule] = struct{}{}
	}
}

// rulesToWake collects the rules whose markers or intervals a tuple hits.
func (m *Matcher) rulesToWake(class string, id relation.TupleID, t relation.Tuple, isInsert bool) []*rules.Rule {
	m.mu.Lock()
	defer m.mu.Unlock()
	woken := map[*rules.Rule]struct{}{}
	if !isInsert {
		for r := range m.marks[tupleKey{class: class, id: id}] {
			woken[r] = struct{}{}
		}
	}
	// Insertions are caught by the index-interval marks.
	for _, iv := range m.intervals[class] {
		m.stats.Inc(metrics.IndexLookups)
		if iv.pos == -1 || iv.contains(t[iv.pos]) {
			woken[iv.rule] = struct{}{}
		}
	}
	out := make([]*rules.Rule, 0, len(woken))
	for r := range woken {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Insert implements match.Matcher.
func (m *Matcher) Insert(class string, id relation.TupleID, t relation.Tuple) error {
	t0 := m.tr.Now()
	woken := m.rulesToWake(class, id, t, true)
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{
			Kind: trace.KindCondScan, At: t0, Dur: m.tr.Now() - t0,
			CE: -1, Class: class, ID: uint64(id), Count: int64(len(woken)),
		})
	}
	for _, r := range woken {
		m.wakeInsert(r, class, id, t)
	}
	return nil
}

// Delete implements match.Matcher. Positive-side retraction is exact via
// the tuple markers; rules negatively dependent on the class must be
// re-derived, since the deletion may have unblocked them.
func (m *Matcher) Delete(class string, id relation.TupleID, t relation.Tuple) error {
	t0 := m.tr.Now()
	woken := m.rulesToWake(class, id, t, false)
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{
			Kind: trace.KindCondScan, At: t0, Dur: m.tr.Now() - t0,
			CE: -1, Class: class, ID: uint64(id), Count: int64(len(woken)),
		})
	}
	m.mu.Lock()
	delete(m.marks, tupleKey{class: class, id: id})
	m.mu.Unlock()
	m.cs.RemoveByTuple(class, id)
	for _, r := range woken {
		negOnClass := false
		for _, ce := range r.CEs {
			if ce.Negated && ce.Class == class {
				negOnClass = true
				break
			}
		}
		if negOnClass {
			m.wakeDelete(r)
		}
	}
	return nil
}

// MarkCount reports the number of (tuple, rule) marker pairs — the space
// cost of the scheme, to compare against pattern/token storage.
func (m *Matcher) MarkCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, set := range m.marks {
		n += len(set)
	}
	return n
}
