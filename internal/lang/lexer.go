// Package lang implements the OPS5-subset rule language used by the
// paper's examples: literalize declarations, productions with
// condition elements, variables, predicate groups, negated conditions,
// and the make/remove/modify/write/bind/halt RHS actions.
//
// The surface syntax follows Forgy's OPS5:
//
//	(literalize Emp name age salary dno)
//	(p R1
//	    (Emp ^name Mike ^salary <S>)
//	    (Emp ^name Sam ^salary {<S1> < <S>})
//	  -->
//	    (remove 1))
//
// Comments run from ';' to end of line.
package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokArrow  // -->
	TokCaret  // ^attr   (Text holds the attribute name)
	TokVar    // <x>     (Text holds x)
	TokSym    // bare symbol (Text holds spelling)
	TokInt    // integer literal
	TokFloat  // float literal
	TokString // quoted string or 'quoted symbol'
	TokOp     // comparison operator = <> < <= > >=
	TokLDisj  // <<
	TokRDisj  // >>
)

// String names the token kind for diagnostics.
func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokLParen:
		return "("
	case TokRParen:
		return ")"
	case TokLBrace:
		return "{"
	case TokRBrace:
		return "}"
	case TokArrow:
		return "-->"
	case TokCaret:
		return "^attr"
	case TokVar:
		return "variable"
	case TokSym:
		return "symbol"
	case TokInt:
		return "integer"
	case TokFloat:
		return "float"
	case TokString:
		return "string"
	case TokOp:
		return "operator"
	case TokLDisj:
		return "<<"
	case TokRDisj:
		return ">>"
	default:
		return fmt.Sprintf("TokKind(%d)", uint8(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int64
	Flt  float64
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokSym, TokOp:
		return fmt.Sprintf("%q", t.Text)
	case TokVar:
		return fmt.Sprintf("<%s>", t.Text)
	case TokCaret:
		return fmt.Sprintf("^%s", t.Text)
	case TokInt:
		return strconv.FormatInt(t.Int, 10)
	case TokFloat:
		return strconv.FormatFloat(t.Flt, 'g', -1, 64)
	case TokString:
		return strconv.Quote(t.Text)
	default:
		return t.Kind.String()
	}
}

// Lexer tokenizes OPS5-subset source text.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// LexError is a lexical error with position information.
type LexError struct {
	Line, Col int
	Msg       string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errf(format string, args ...any) error {
	return &LexError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ';':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		default:
			return
		}
	}
}

// isSymChar reports whether c may appear inside a bare symbol.
func isSymChar(c byte) bool {
	if c == 0 {
		return false
	}
	switch c {
	case '(', ')', '{', '}', '^', '<', '>', '=', ';', '"', '\'', ' ', '\t', '\r', '\n':
		return false
	}
	return true
}

// isNameChar reports whether c may appear inside a variable or attribute
// name.
func isNameChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		(c >= '0' && c <= '9') ||
		unicode.IsLetter(rune(c))
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peek()
	switch c {
	case '(':
		l.advance()
		tok.Kind = TokLParen
		return tok, nil
	case ')':
		l.advance()
		tok.Kind = TokRParen
		return tok, nil
	case '{':
		l.advance()
		tok.Kind = TokLBrace
		return tok, nil
	case '}':
		l.advance()
		tok.Kind = TokRBrace
		return tok, nil
	case '^':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && isNameChar(l.peek()) {
			l.advance()
		}
		if l.pos == start {
			return tok, l.errf("'^' must be followed by an attribute name")
		}
		tok.Kind = TokCaret
		tok.Text = l.src[start:l.pos]
		return tok, nil
	case '"', '\'':
		quote := c
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return tok, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == quote {
				break
			}
			if ch == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"', '\'':
					b.WriteByte(esc)
				default:
					return tok, l.errf("unknown escape \\%c", esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		tok.Kind = TokString
		tok.Text = b.String()
		return tok, nil
	case '<':
		return l.lexAngle(tok)
	case '>':
		l.advance()
		tok.Kind = TokOp
		switch l.peek() {
		case '=':
			l.advance()
			tok.Text = ">="
		case '>':
			l.advance()
			tok.Kind = TokRDisj
		default:
			tok.Text = ">"
		}
		return tok, nil
	case '=':
		l.advance()
		tok.Kind = TokOp
		tok.Text = "="
		return tok, nil
	}
	// Arrow, number, or bare symbol.
	if strings.HasPrefix(l.src[l.pos:], "-->") {
		l.advance()
		l.advance()
		l.advance()
		tok.Kind = TokArrow
		return tok, nil
	}
	if c == '-' || c == '+' || (c >= '0' && c <= '9') {
		if t, ok, err := l.lexNumber(tok); err != nil || ok {
			return t, err
		}
	}
	start := l.pos
	for l.pos < len(l.src) && isSymChar(l.peek()) {
		l.advance()
	}
	if l.pos == start {
		return tok, l.errf("unexpected character %q", c)
	}
	tok.Kind = TokSym
	tok.Text = l.src[start:l.pos]
	return tok, nil
}

// lexAngle disambiguates '<': variable <x>, operators <>, <=, <.
func (l *Lexer) lexAngle(tok Token) (Token, error) {
	l.advance() // consume '<'
	switch l.peek() {
	case '>':
		l.advance()
		tok.Kind = TokOp
		tok.Text = "<>"
		return tok, nil
	case '=':
		l.advance()
		tok.Kind = TokOp
		tok.Text = "<="
		return tok, nil
	case '<':
		l.advance()
		tok.Kind = TokLDisj
		return tok, nil
	}
	if isNameChar(l.peek()) {
		start := l.pos
		for l.pos < len(l.src) && isNameChar(l.peek()) {
			l.advance()
		}
		if l.peek() != '>' {
			return tok, l.errf("unterminated variable (missing '>')")
		}
		name := l.src[start:l.pos]
		l.advance() // consume '>'
		tok.Kind = TokVar
		tok.Text = name
		return tok, nil
	}
	tok.Kind = TokOp
	tok.Text = "<"
	return tok, nil
}

// lexNumber tries to lex an integer or float literal. ok is false when the
// text starting at the current position is not a number (e.g. "-foo" or a
// bare "-"), in which case no input is consumed.
func (l *Lexer) lexNumber(tok Token) (Token, bool, error) {
	save := *l
	start := l.pos
	if c := l.peek(); c == '-' || c == '+' {
		l.advance()
	}
	digits := 0
	for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
		l.advance()
		digits++
	}
	if digits == 0 {
		*l = save
		return tok, false, nil
	}
	isFloat := false
	if l.peek() == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9' {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		save2 := *l
		l.advance()
		if c := l.peek(); c == '-' || c == '+' {
			l.advance()
		}
		expDigits := 0
		for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
			expDigits++
		}
		if expDigits == 0 {
			*l = save2
		} else {
			isFloat = true
		}
	}
	// A number must end at a delimiter; "12abc" is a symbol.
	if isSymChar(l.peek()) {
		*l = save
		return tok, false, nil
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return tok, true, l.errf("bad float literal %q: %v", text, err)
		}
		tok.Kind = TokFloat
		tok.Flt = f
		return tok, true, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return tok, true, l.errf("bad integer literal %q: %v", text, err)
	}
	tok.Kind = TokInt
	tok.Int = i
	return tok, true, nil
}

// LexAll tokenizes the whole input, excluding the trailing EOF token.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return out, err
		}
		if t.Kind == TokEOF {
			return out, nil
		}
		out = append(out, t)
	}
}
