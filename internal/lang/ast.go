package lang

import (
	"fmt"
	"strings"

	"prodsys/internal/value"
)

// TermKind classifies a term appearing in a condition element test, a
// fact field, or an action argument.
type TermKind uint8

// Term kinds.
const (
	TermConst TermKind = iota // literal value
	TermVar                   // <x>
)

// Term is a constant or a variable reference.
type Term struct {
	Kind TermKind
	Val  value.V // valid when Kind == TermConst
	Var  string  // valid when Kind == TermVar
}

// ConstTerm wraps a value as a constant term.
func ConstTerm(v value.V) Term { return Term{Kind: TermConst, Val: v} }

// VarTerm builds a variable term.
func VarTerm(name string) Term { return Term{Kind: TermVar, Var: name} }

// String renders the term in source syntax.
func (t Term) String() string {
	if t.Kind == TermVar {
		return "<" + t.Var + ">"
	}
	return t.Val.String()
}

// TestAtom is one predicate within an attribute test: "op term", or a
// value disjunction << v1 v2 ... >> (OPS5: the attribute must equal one
// of the listed constants). The default operator is equality, which for
// an unbound variable means binding.
type TestAtom struct {
	Op   value.Op
	Term Term
	// Disj, when non-empty, makes this atom a one-of test; Op and Term
	// are ignored.
	Disj []value.V
}

// String renders the atom in source syntax.
func (a TestAtom) String() string {
	if len(a.Disj) > 0 {
		parts := make([]string, len(a.Disj))
		for i, v := range a.Disj {
			parts[i] = v.String()
		}
		return "<< " + strings.Join(parts, " ") + " >>"
	}
	if a.Op == value.OpEq {
		return a.Term.String()
	}
	return a.Op.String() + " " + a.Term.String()
}

// AttrTest constrains one attribute of a condition element. Multiple
// atoms (from a { ... } group) are a conjunction.
type AttrTest struct {
	Attr  string
	Atoms []TestAtom
}

// String renders the test in source syntax.
func (at AttrTest) String() string {
	parts := make([]string, len(at.Atoms))
	for i, a := range at.Atoms {
		parts[i] = a.String()
	}
	if len(at.Atoms) == 1 {
		return "^" + at.Attr + " " + parts[0]
	}
	return "^" + at.Attr + " {" + strings.Join(parts, " ") + "}"
}

// CondElem is one condition element of a production LHS: a class name,
// an optional negation, and attribute tests.
type CondElem struct {
	Class   string
	Negated bool
	Tests   []AttrTest
	Line    int
}

// String renders the condition element in source syntax.
func (ce *CondElem) String() string {
	var b strings.Builder
	if ce.Negated {
		b.WriteString("- ")
	}
	b.WriteByte('(')
	b.WriteString(ce.Class)
	for _, t := range ce.Tests {
		b.WriteByte(' ')
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ActionKind classifies RHS actions.
type ActionKind uint8

// The action kinds of the OPS5 subset.
const (
	ActMake   ActionKind = iota // (make Class ^attr term ...)
	ActRemove                   // (remove n)
	ActModify                   // (modify n ^attr term ...)
	ActWrite                    // (write term ...)
	ActBind                     // (bind <x> term)
	ActHalt                     // (halt)
	ActCall                     // (call name term ...)
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActMake:
		return "make"
	case ActRemove:
		return "remove"
	case ActModify:
		return "modify"
	case ActWrite:
		return "write"
	case ActBind:
		return "bind"
	case ActHalt:
		return "halt"
	case ActCall:
		return "call"
	default:
		return fmt.Sprintf("ActionKind(%d)", uint8(k))
	}
}

// FieldAssign sets one attribute in a make or modify action.
type FieldAssign struct {
	Attr string
	Term Term
}

// Action is one RHS action.
type Action struct {
	Kind    ActionKind
	Class   string        // make
	CE      int           // remove, modify: 1-based condition element number
	Assigns []FieldAssign // make, modify
	Args    []Term        // write
	Var     string        // bind
	Term    Term          // bind
	Func    string        // call: registered function name
	Line    int
}

// String renders the action in source syntax.
func (a *Action) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(a.Kind.String())
	switch a.Kind {
	case ActMake:
		b.WriteByte(' ')
		b.WriteString(a.Class)
		for _, as := range a.Assigns {
			fmt.Fprintf(&b, " ^%s %s", as.Attr, as.Term)
		}
	case ActRemove:
		fmt.Fprintf(&b, " %d", a.CE)
	case ActModify:
		fmt.Fprintf(&b, " %d", a.CE)
		for _, as := range a.Assigns {
			fmt.Fprintf(&b, " ^%s %s", as.Attr, as.Term)
		}
	case ActWrite:
		for _, arg := range a.Args {
			b.WriteByte(' ')
			b.WriteString(arg.String())
		}
	case ActBind:
		fmt.Fprintf(&b, " <%s> %s", a.Var, a.Term)
	case ActCall:
		b.WriteByte(' ')
		b.WriteString(a.Func)
		for _, arg := range a.Args {
			b.WriteByte(' ')
			b.WriteString(arg.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Production is a parsed rule: name, LHS condition elements, RHS actions.
type Production struct {
	Name string
	LHS  []*CondElem
	RHS  []*Action
	Line int
}

// String renders the production in source syntax.
func (p *Production) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(p %s", p.Name)
	for _, ce := range p.LHS {
		b.WriteString("\n    ")
		b.WriteString(ce.String())
	}
	b.WriteString("\n  -->")
	for _, a := range p.RHS {
		b.WriteString("\n    ")
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Literalize declares a working-memory class and its attributes.
type Literalize struct {
	Class string
	Attrs []string
	Line  int
}

// String renders the declaration in source syntax.
func (l *Literalize) String() string {
	return "(literalize " + l.Class + " " + strings.Join(l.Attrs, " ") + ")"
}

// Fact is an initial working-memory element: either positional values or
// ^attr assignments (unset attributes default to nil).
type Fact struct {
	Class      string
	Positional []Term        // non-empty for positional form; constants only
	Assigns    []FieldAssign // non-empty for attribute form
	Line       int
}

// Program is a parsed source file.
type Program struct {
	Literalizes []*Literalize
	Productions []*Production
	Facts       []*Fact
}
