package lang

import (
	"fmt"

	"prodsys/internal/value"
)

// ParseError is a syntax error with position information.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parser builds a Program from a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses OPS5-subset source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token {
	if p.pos >= len(p.toks) {
		if len(p.toks) == 0 {
			return Token{Kind: TokEOF, Line: 1, Col: 1}
		}
		last := p.toks[len(p.toks)-1]
		return Token{Kind: TokEOF, Line: last.Line, Col: last.Col + 1}
	}
	return p.toks[p.pos]
}

func (p *Parser) next() Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *Parser) errf(t Token, format string, args ...any) error {
	return &ParseError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.next()
	if t.Kind != k {
		return t, p.errf(t, "expected %s, found %s", k, t)
	}
	return t, nil
}

func (p *Parser) expectSym() (Token, error) {
	t := p.next()
	if t.Kind != TokSym {
		return t, p.errf(t, "expected a symbol, found %s", t)
	}
	return t, nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for {
		t := p.cur()
		if t.Kind == TokEOF {
			return prog, nil
		}
		if t.Kind != TokLParen {
			return nil, p.errf(t, "expected '(' at top level, found %s", t)
		}
		open := p.next()
		head := p.cur()
		if head.Kind != TokSym {
			return nil, p.errf(head, "expected a form name after '(', found %s", head)
		}
		switch head.Text {
		case "literalize":
			p.next()
			lit, err := p.parseLiteralize(open)
			if err != nil {
				return nil, err
			}
			prog.Literalizes = append(prog.Literalizes, lit)
		case "p":
			p.next()
			prod, err := p.parseProduction(open)
			if err != nil {
				return nil, err
			}
			prog.Productions = append(prog.Productions, prod)
		default:
			fact, err := p.parseFact(open)
			if err != nil {
				return nil, err
			}
			prog.Facts = append(prog.Facts, fact)
		}
	}
}

func (p *Parser) parseLiteralize(open Token) (*Literalize, error) {
	name, err := p.expectSym()
	if err != nil {
		return nil, err
	}
	lit := &Literalize{Class: name.Text, Line: open.Line}
	for {
		t := p.next()
		switch t.Kind {
		case TokRParen:
			if len(lit.Attrs) == 0 {
				return nil, p.errf(t, "literalize %s declares no attributes", lit.Class)
			}
			return lit, nil
		case TokSym:
			lit.Attrs = append(lit.Attrs, t.Text)
		default:
			return nil, p.errf(t, "expected attribute name or ')' in literalize, found %s", t)
		}
	}
}

func (p *Parser) parseProduction(open Token) (*Production, error) {
	name, err := p.expectSym()
	if err != nil {
		return nil, err
	}
	prod := &Production{Name: name.Text, Line: open.Line}
	// LHS: condition elements until the arrow.
	for {
		t := p.cur()
		switch {
		case t.Kind == TokArrow:
			p.next()
			goto rhs
		case t.Kind == TokSym && t.Text == "-":
			p.next()
			lp, err := p.expect(TokLParen)
			if err != nil {
				return nil, err
			}
			ce, err := p.parseCondElem(lp, true)
			if err != nil {
				return nil, err
			}
			prod.LHS = append(prod.LHS, ce)
		case t.Kind == TokLParen:
			p.next()
			ce, err := p.parseCondElem(t, false)
			if err != nil {
				return nil, err
			}
			prod.LHS = append(prod.LHS, ce)
		default:
			return nil, p.errf(t, "expected a condition element or '-->' in production %s, found %s", prod.Name, t)
		}
	}
rhs:
	for {
		t := p.cur()
		switch t.Kind {
		case TokRParen:
			p.next()
			if len(prod.LHS) == 0 {
				return nil, p.errf(open, "production %s has no condition elements", prod.Name)
			}
			return prod, nil
		case TokLParen:
			p.next()
			act, err := p.parseAction(t)
			if err != nil {
				return nil, err
			}
			prod.RHS = append(prod.RHS, act)
		default:
			return nil, p.errf(t, "expected an action or ')' in production %s, found %s", prod.Name, t)
		}
	}
}

func (p *Parser) parseCondElem(open Token, negated bool) (*CondElem, error) {
	cls, err := p.expectSym()
	if err != nil {
		return nil, err
	}
	ce := &CondElem{Class: cls.Text, Negated: negated, Line: open.Line}
	for {
		t := p.next()
		switch t.Kind {
		case TokRParen:
			return ce, nil
		case TokCaret:
			test, err := p.parseAttrTest(t)
			if err != nil {
				return nil, err
			}
			ce.Tests = append(ce.Tests, *test)
		default:
			return nil, p.errf(t, "expected ^attr or ')' in condition element on %s, found %s", ce.Class, t)
		}
	}
}

// parseAttrTest parses "^attr valspec" where valspec is a single
// [op] term or a brace group {[op] term ...}.
func (p *Parser) parseAttrTest(caret Token) (*AttrTest, error) {
	test := &AttrTest{Attr: caret.Text}
	t := p.cur()
	if t.Kind == TokLBrace {
		p.next()
		for {
			t = p.cur()
			if t.Kind == TokRBrace {
				p.next()
				if len(test.Atoms) == 0 {
					return nil, p.errf(t, "empty predicate group on ^%s", test.Attr)
				}
				return test, nil
			}
			atom, err := p.parseTestAtom()
			if err != nil {
				return nil, err
			}
			test.Atoms = append(test.Atoms, *atom)
		}
	}
	atom, err := p.parseTestAtom()
	if err != nil {
		return nil, err
	}
	test.Atoms = append(test.Atoms, *atom)
	return test, nil
}

// parseTestAtom parses "[op] term" or a disjunction "<< const ... >>".
func (p *Parser) parseTestAtom() (*TestAtom, error) {
	if t := p.cur(); t.Kind == TokLDisj {
		p.next()
		atom := &TestAtom{}
		for {
			tt := p.cur()
			if tt.Kind == TokRDisj {
				p.next()
				if len(atom.Disj) == 0 {
					return nil, p.errf(tt, "empty value disjunction")
				}
				return atom, nil
			}
			term, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if term.Kind == TermVar {
				return nil, p.errf(tt, "value disjunctions may contain only constants")
			}
			atom.Disj = append(atom.Disj, term.Val)
		}
	}
	op := value.OpEq
	if t := p.cur(); t.Kind == TokOp {
		p.next()
		parsed, ok := value.ParseOp(t.Text)
		if !ok {
			return nil, p.errf(t, "unknown operator %q", t.Text)
		}
		op = parsed
	}
	term, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &TestAtom{Op: op, Term: term}, nil
}

// parseTerm parses a constant or variable.
func (p *Parser) parseTerm() (Term, error) {
	t := p.next()
	switch t.Kind {
	case TokVar:
		return VarTerm(t.Text), nil
	case TokInt:
		return ConstTerm(value.OfInt(t.Int)), nil
	case TokFloat:
		return ConstTerm(value.OfFloat(t.Flt)), nil
	case TokString:
		return ConstTerm(value.OfString(t.Text)), nil
	case TokSym:
		return ConstTerm(value.OfSym(t.Text)), nil
	default:
		return Term{}, p.errf(t, "expected a constant or variable, found %s", t)
	}
}

func (p *Parser) parseAction(open Token) (*Action, error) {
	head, err := p.expectSym()
	if err != nil {
		return nil, err
	}
	act := &Action{Line: open.Line}
	switch head.Text {
	case "make":
		act.Kind = ActMake
		cls, err := p.expectSym()
		if err != nil {
			return nil, err
		}
		act.Class = cls.Text
		if act.Assigns, err = p.parseAssigns(); err != nil {
			return nil, err
		}
		return act, nil
	case "remove":
		act.Kind = ActRemove
		n, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		act.CE = int(n.Int)
		_, err = p.expect(TokRParen)
		return act, err
	case "modify":
		act.Kind = ActModify
		n, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		act.CE = int(n.Int)
		if act.Assigns, err = p.parseAssigns(); err != nil {
			return nil, err
		}
		if len(act.Assigns) == 0 {
			return nil, p.errf(open, "modify needs at least one ^attr assignment")
		}
		return act, nil
	case "write":
		act.Kind = ActWrite
		for {
			if p.cur().Kind == TokRParen {
				p.next()
				return act, nil
			}
			term, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			act.Args = append(act.Args, term)
		}
	case "bind":
		act.Kind = ActBind
		v, err := p.expect(TokVar)
		if err != nil {
			return nil, err
		}
		act.Var = v.Text
		if act.Term, err = p.parseTerm(); err != nil {
			return nil, err
		}
		_, err = p.expect(TokRParen)
		return act, err
	case "halt":
		act.Kind = ActHalt
		_, err = p.expect(TokRParen)
		return act, err
	case "call":
		act.Kind = ActCall
		fn, err := p.expectSym()
		if err != nil {
			return nil, err
		}
		act.Func = fn.Text
		for {
			if p.cur().Kind == TokRParen {
				p.next()
				return act, nil
			}
			term, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			act.Args = append(act.Args, term)
		}
	default:
		return nil, p.errf(head, "unknown action %q", head.Text)
	}
}

// parseAssigns parses "^attr term" pairs up to the closing paren.
func (p *Parser) parseAssigns() ([]FieldAssign, error) {
	var out []FieldAssign
	for {
		t := p.next()
		switch t.Kind {
		case TokRParen:
			return out, nil
		case TokCaret:
			term, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			out = append(out, FieldAssign{Attr: t.Text, Term: term})
		default:
			return nil, p.errf(t, "expected ^attr or ')', found %s", t)
		}
	}
}

// parseFact parses a fact form: (Class v1 v2 ...) positionally or
// (Class ^attr v ...) by attribute. The class-name token has already been
// peeked but not consumed.
func (p *Parser) parseFact(open Token) (*Fact, error) {
	cls := p.next() // the symbol that failed to be a keyword
	fact := &Fact{Class: cls.Text, Line: open.Line}
	if p.cur().Kind == TokCaret {
		for {
			t := p.next()
			switch t.Kind {
			case TokRParen:
				return fact, nil
			case TokCaret:
				term, err := p.parseTerm()
				if err != nil {
					return nil, err
				}
				if term.Kind == TermVar {
					return nil, p.errf(t, "facts may not contain variables")
				}
				fact.Assigns = append(fact.Assigns, FieldAssign{Attr: t.Text, Term: term})
			default:
				return nil, p.errf(t, "expected ^attr or ')' in fact, found %s", t)
			}
		}
	}
	for {
		if p.cur().Kind == TokRParen {
			p.next()
			if len(fact.Positional) == 0 {
				return nil, p.errf(open, "fact for class %s has no values", fact.Class)
			}
			return fact, nil
		}
		term, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if term.Kind == TermVar {
			return nil, p.errf(open, "facts may not contain variables")
		}
		fact.Positional = append(fact.Positional, term)
	}
}
