package lang

import (
	"testing"

	"prodsys/internal/value"
)

func TestLexDisjunctionTokens(t *testing.T) {
	toks, err := LexAll(`<< red green >> >= >> <<`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokLDisj, TokSym, TokSym, TokRDisj, TokOp, TokRDisj, TokLDisj}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, toks[i].Kind, k, toks)
		}
	}
	if TokLDisj.String() != "<<" || TokRDisj.String() != ">>" {
		t.Error("token kind names")
	}
}

func TestParseDisjunction(t *testing.T) {
	prog, err := Parse(`
(literalize Light color)
(p stop (Light ^color << red amber >>) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	atom := prog.Productions[0].LHS[0].Tests[0].Atoms[0]
	if len(atom.Disj) != 2 || !value.Equal(atom.Disj[0], value.OfSym("red")) {
		t.Fatalf("disjunction = %+v", atom)
	}
	// String round trip.
	re, err := Parse(prog.Productions[0].String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	back := re.Productions[0].LHS[0].Tests[0].Atoms[0]
	if len(back.Disj) != 2 {
		t.Fatalf("round trip lost disjunction: %+v", back)
	}
}

func TestParseDisjunctionInBraceGroup(t *testing.T) {
	prog, err := Parse(`
(literalize A x)
(p r (A ^x {<v> << 1 2 3 >>}) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	atoms := prog.Productions[0].LHS[0].Tests[0].Atoms
	if len(atoms) != 2 || len(atoms[1].Disj) != 3 {
		t.Fatalf("atoms = %+v", atoms)
	}
}

func TestParseDisjunctionErrors(t *testing.T) {
	if _, err := Parse(`(p r (A ^x << >>) --> (halt))`); err == nil {
		t.Error("empty disjunction should fail")
	}
	if _, err := Parse(`(p r (A ^x << <v> >>) --> (halt))`); err == nil {
		t.Error("variable in disjunction should fail")
	}
	if _, err := Parse(`(p r (A ^x << 1 2) --> (halt))`); err == nil {
		t.Error("unterminated disjunction should fail")
	}
}
