package lang

import (
	"strings"
	"testing"

	"prodsys/internal/value"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := LexAll(`(p R1 ^name Mike ^salary <S>) --> { } <> <= >= < > =`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokLParen, TokSym, TokSym, TokCaret, TokSym, TokCaret, TokVar, TokRParen,
		TokArrow, TokLBrace, TokRBrace,
		TokOp, TokOp, TokOp, TokOp, TokOp, TokOp,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[3].Text != "name" || toks[6].Text != "S" {
		t.Errorf("caret/var text: %q %q", toks[3].Text, toks[6].Text)
	}
	ops := []string{"<>", "<=", ">=", "<", ">", "="}
	for i, want := range ops {
		if toks[11+i].Text != want {
			t.Errorf("op %d = %q, want %q", i, toks[11+i].Text, want)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := LexAll(`42 -7 +3 2.5 -0.25 1e3 1.5e-2 12abc -`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt || toks[0].Int != 42 {
		t.Errorf("42: %v", toks[0])
	}
	if toks[1].Kind != TokInt || toks[1].Int != -7 {
		t.Errorf("-7: %v", toks[1])
	}
	if toks[2].Kind != TokInt || toks[2].Int != 3 {
		t.Errorf("+3: %v", toks[2])
	}
	if toks[3].Kind != TokFloat || toks[3].Flt != 2.5 {
		t.Errorf("2.5: %v", toks[3])
	}
	if toks[4].Kind != TokFloat || toks[4].Flt != -0.25 {
		t.Errorf("-0.25: %v", toks[4])
	}
	if toks[5].Kind != TokFloat || toks[5].Flt != 1000 {
		t.Errorf("1e3: %v", toks[5])
	}
	if toks[6].Kind != TokFloat || toks[6].Flt != 0.015 {
		t.Errorf("1.5e-2: %v", toks[6])
	}
	if toks[7].Kind != TokSym || toks[7].Text != "12abc" {
		t.Errorf("12abc should be a symbol: %v", toks[7])
	}
	if toks[8].Kind != TokSym || toks[8].Text != "-" {
		t.Errorf("bare '-' should be a symbol: %v", toks[8])
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := LexAll(`"hello world" 'Toy' "a\nb\t\\\""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "hello world" {
		t.Errorf("string 0: %v", toks[0])
	}
	if toks[1].Kind != TokString || toks[1].Text != "Toy" {
		t.Errorf("string 1: %v", toks[1])
	}
	if toks[2].Text != "a\nb\t\\\"" {
		t.Errorf("escapes: %q", toks[2].Text)
	}
	if _, err := LexAll(`"unterminated`); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := LexAll(`"bad \q escape"`); err == nil {
		t.Error("unknown escape should fail")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("a ; this is a comment\nb")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comment handling: %v", toks)
	}
	if toks[1].Line != 2 {
		t.Errorf("line tracking: token b on line %d", toks[1].Line)
	}
}

func TestLexVariableErrors(t *testing.T) {
	if _, err := LexAll(`<unterminated`); err == nil {
		t.Error("unterminated variable should fail")
	}
	if _, err := LexAll(`^`); err == nil {
		t.Error("caret without name should fail")
	}
}

func TestLexArrowVsMinus(t *testing.T) {
	toks, err := LexAll(`--> - -5 -x`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokArrow, TokSym, TokInt, TokSym}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
	if toks[3].Text != "-x" {
		t.Errorf("-x lexed as %q", toks[3].Text)
	}
}

func TestLexAngleForms(t *testing.T) {
	toks, err := LexAll(`<x> <long-name_2> < 5`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokVar || toks[0].Text != "x" {
		t.Errorf("<x>: %v", toks[0])
	}
	if toks[1].Kind != TokVar || toks[1].Text != "long-name_2" {
		t.Errorf("<long-name_2>: %v", toks[1])
	}
	if toks[2].Kind != TokOp || toks[2].Text != "<" {
		t.Errorf("bare <: %v", toks[2])
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := LexAll(`foo <x> ^a 5 2.5 "s" = (`)
	strs := []string{`"foo"`, "<x>", "^a", "5", "2.5", `"s"`, `"="`, "("}
	for i, want := range strs {
		if got := toks[i].String(); got != want {
			t.Errorf("token %d String = %q, want %q", i, got, want)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("(p\n  R1)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("token 0 at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[2].Line != 2 || toks[2].Col != 3 {
		t.Errorf("R1 at %d:%d, want 2:3", toks[2].Line, toks[2].Col)
	}
}

func TestLexErrorMessage(t *testing.T) {
	_, err := LexAll("\n  \"oops")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should cite line 2: %v", err)
	}
}

func TestLexPaperExample(t *testing.T) {
	// Rule R1 from Example 3 of the paper.
	src := `
; delete Mike if he makes more than his manager
(p R1
    (Emp ^name Mike ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
  -->
    (remove 1))`
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var vars, carets int
	for _, tok := range toks {
		switch tok.Kind {
		case TokVar:
			vars++
		case TokCaret:
			carets++
		}
	}
	if vars != 5 {
		t.Errorf("found %d variables, want 5", vars)
	}
	if carets != 5 {
		t.Errorf("found %d attribute tests, want 5", carets)
	}
}

func TestOpRoundTrip(t *testing.T) {
	for _, spelling := range []string{"=", "<>", "<", "<=", ">", ">="} {
		toks, err := LexAll(spelling + " 1")
		if err != nil || toks[0].Kind != TokOp {
			t.Fatalf("op %q: %v %v", spelling, toks, err)
		}
		if _, ok := value.ParseOp(toks[0].Text); !ok {
			t.Errorf("op %q does not parse", toks[0].Text)
		}
	}
}
