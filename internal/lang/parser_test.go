package lang

import (
	"strings"
	"testing"

	"prodsys/internal/value"
)

const paperExample3 = `
(literalize Emp name age salary dno manager)
(literalize Dept dno dname floor manager)

; delete Mike if he makes more than his manager
(p R1
    (Emp ^name Mike ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
  -->
    (remove 1))

; delete all employees working on the first floor in the Toy department
(p R2
    (Emp ^dno <D>)
    (Dept ^dno <D> ^dname Toy ^floor 1)
  -->
    (remove 1))
`

func TestParsePaperExample3(t *testing.T) {
	prog, err := Parse(paperExample3)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Literalizes) != 2 {
		t.Fatalf("literalizes = %d", len(prog.Literalizes))
	}
	emp := prog.Literalizes[0]
	if emp.Class != "Emp" || len(emp.Attrs) != 5 || emp.Attrs[2] != "salary" {
		t.Fatalf("Emp literalize: %+v", emp)
	}
	if len(prog.Productions) != 2 {
		t.Fatalf("productions = %d", len(prog.Productions))
	}
	r1 := prog.Productions[0]
	if r1.Name != "R1" || len(r1.LHS) != 2 || len(r1.RHS) != 1 {
		t.Fatalf("R1 shape: %+v", r1)
	}
	ce2 := r1.LHS[1]
	if ce2.Class != "Emp" || len(ce2.Tests) != 2 {
		t.Fatalf("R1 CE2: %+v", ce2)
	}
	sal := ce2.Tests[1]
	if sal.Attr != "salary" || len(sal.Atoms) != 2 {
		t.Fatalf("salary test: %+v", sal)
	}
	if sal.Atoms[0].Op != value.OpEq || sal.Atoms[0].Term.Var != "S1" {
		t.Errorf("first atom should bind <S1>: %+v", sal.Atoms[0])
	}
	if sal.Atoms[1].Op != value.OpLt || sal.Atoms[1].Term.Var != "S" {
		t.Errorf("second atom should be < <S>: %+v", sal.Atoms[1])
	}
	if r1.RHS[0].Kind != ActRemove || r1.RHS[0].CE != 1 {
		t.Errorf("R1 action: %+v", r1.RHS[0])
	}
	r2 := prog.Productions[1]
	floor := r2.LHS[1].Tests[2]
	if floor.Attr != "floor" || floor.Atoms[0].Term.Val.AsInt() != 1 {
		t.Errorf("floor test: %+v", floor)
	}
}

func TestParsePaperExample2(t *testing.T) {
	// The PlusOX rule from Example 2 (Forgy's algebra simplification).
	src := `
(literalize Goal type object)
(literalize Expression name arg1 op arg2)
(p PlusOX
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op + ^arg2 <X>)
  -->
    (modify 2 ^op nil ^arg1 nil))`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Productions[0]
	if p.Name != "PlusOX" {
		t.Fatalf("name = %q", p.Name)
	}
	expr := p.LHS[1]
	if expr.Tests[2].Atoms[0].Term.Val.AsString() != "+" {
		t.Errorf("op test: %+v", expr.Tests[2])
	}
	mod := p.RHS[0]
	if mod.Kind != ActModify || mod.CE != 2 || len(mod.Assigns) != 2 {
		t.Fatalf("modify: %+v", mod)
	}
	if mod.Assigns[0].Attr != "op" || mod.Assigns[0].Term.Val.AsString() != "nil" {
		t.Errorf("modify assign: %+v", mod.Assigns[0])
	}
}

func TestParseNegatedCondition(t *testing.T) {
	src := `
(p NoManager
    (Emp ^name <N> ^dno <D>)
    - (Dept ^dno <D>)
  -->
    (write <N>))`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Productions[0]
	if len(p.LHS) != 2 {
		t.Fatalf("LHS size = %d", len(p.LHS))
	}
	if p.LHS[0].Negated {
		t.Error("CE1 should not be negated")
	}
	if !p.LHS[1].Negated {
		t.Error("CE2 should be negated")
	}
	if p.RHS[0].Kind != ActWrite || p.RHS[0].Args[0].Var != "N" {
		t.Errorf("write action: %+v", p.RHS[0])
	}
}

func TestParseAllActions(t *testing.T) {
	src := `
(p AllActs
    (A ^x <X>)
  -->
    (make B ^y <X> ^z 5)
    (remove 1)
    (modify 1 ^x 9)
    (write done <X> "text")
    (bind <Y> 42)
    (halt))`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	acts := prog.Productions[0].RHS
	if len(acts) != 6 {
		t.Fatalf("actions = %d", len(acts))
	}
	wantKinds := []ActionKind{ActMake, ActRemove, ActModify, ActWrite, ActBind, ActHalt}
	for i, k := range wantKinds {
		if acts[i].Kind != k {
			t.Errorf("action %d = %v, want %v", i, acts[i].Kind, k)
		}
	}
	mk := acts[0]
	if mk.Class != "B" || len(mk.Assigns) != 2 || mk.Assigns[1].Term.Val.AsInt() != 5 {
		t.Errorf("make: %+v", mk)
	}
	bd := acts[4]
	if bd.Var != "Y" || bd.Term.Val.AsInt() != 42 {
		t.Errorf("bind: %+v", bd)
	}
}

func TestParseFacts(t *testing.T) {
	src := `
(Emp Mike 30 1000 1)
(Emp ^name Sam ^salary 900)
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 2 {
		t.Fatalf("facts = %d", len(prog.Facts))
	}
	f1 := prog.Facts[0]
	if f1.Class != "Emp" || len(f1.Positional) != 4 {
		t.Fatalf("positional fact: %+v", f1)
	}
	if f1.Positional[1].Val.AsInt() != 30 {
		t.Errorf("positional value: %+v", f1.Positional[1])
	}
	f2 := prog.Facts[1]
	if len(f2.Assigns) != 2 || f2.Assigns[0].Attr != "name" {
		t.Fatalf("attr fact: %+v", f2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"top-level junk", `foo`},
		{"missing form name", `(42)`},
		{"literalize no attrs", `(literalize Emp)`},
		{"literalize bad attr", `(literalize Emp ^x)`},
		{"production no CEs", `(p R1 --> (halt))`},
		{"unterminated production", `(p R1 (A ^x 1) --> (halt)`},
		{"CE bad content", `(p R1 (A 5) --> (halt))`},
		{"unknown action", `(p R1 (A ^x 1) --> (frobnicate))`},
		{"remove non-number", `(p R1 (A ^x 1) --> (remove x))`},
		{"modify no assigns", `(p R1 (A ^x 1) --> (modify 1))`},
		{"bind missing var", `(p R1 (A ^x 1) --> (bind 5 5))`},
		{"halt with args", `(p R1 (A ^x 1) --> (halt 5))`},
		{"empty predicate group", `(p R1 (A ^x {}) --> (halt))`},
		{"fact with variable", `(Emp <x>)`},
		{"attr fact with variable", `(Emp ^name <x>)`},
		{"empty fact", `(Emp)`},
		{"arrow missing", `(p R1 (A ^x 1) (halt))`},
		{"dash without CE", `(p R1 - 5 --> (halt))`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("Parse(%q) should fail", tc.src)
			}
		})
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("(p R1\n  (A ^x 1)\n  (halt))")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3: %v", pe.Line, err)
	}
}

func TestASTStringRoundTrip(t *testing.T) {
	prog, err := Parse(paperExample3)
	if err != nil {
		t.Fatal(err)
	}
	// Rendering each production and re-parsing yields the same structure.
	for _, p := range prog.Productions {
		src := p.String()
		re, err := Parse(src)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", src, err)
		}
		if len(re.Productions) != 1 {
			t.Fatalf("round trip lost production: %q", src)
		}
		q := re.Productions[0]
		if q.Name != p.Name || len(q.LHS) != len(p.LHS) || len(q.RHS) != len(p.RHS) {
			t.Fatalf("round trip changed shape:\n%s\nvs\n%s", p, q)
		}
		for i := range p.LHS {
			if q.LHS[i].String() != p.LHS[i].String() {
				t.Errorf("CE %d: %q vs %q", i, p.LHS[i], q.LHS[i])
			}
		}
		for i := range p.RHS {
			if q.RHS[i].String() != p.RHS[i].String() {
				t.Errorf("action %d: %q vs %q", i, p.RHS[i], q.RHS[i])
			}
		}
	}
	for _, l := range prog.Literalizes {
		re, err := Parse(l.String())
		if err != nil || len(re.Literalizes) != 1 {
			t.Fatalf("literalize round trip: %v", err)
		}
	}
}

func TestNegatedCEString(t *testing.T) {
	prog, err := Parse(`(p R (A ^x 1) - (B ^y <x>) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Productions[0].LHS[1].String()
	if !strings.HasPrefix(s, "- (B") {
		t.Errorf("negated CE string = %q", s)
	}
	// Round-trip through production String.
	re, err := Parse(prog.Productions[0].String())
	if err != nil {
		t.Fatal(err)
	}
	if !re.Productions[0].LHS[1].Negated {
		t.Error("negation lost in round trip")
	}
}

func TestActionKindString(t *testing.T) {
	kinds := map[ActionKind]string{
		ActMake: "make", ActRemove: "remove", ActModify: "modify",
		ActWrite: "write", ActBind: "bind", ActHalt: "halt",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%v != %q", got, want)
		}
	}
}

func TestTermString(t *testing.T) {
	if got := VarTerm("x").String(); got != "<x>" {
		t.Errorf("VarTerm String = %q", got)
	}
	if got := ConstTerm(value.OfInt(5)).String(); got != "5" {
		t.Errorf("ConstTerm String = %q", got)
	}
}

func TestParseEmptySource(t *testing.T) {
	prog, err := Parse("  ; only a comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Literalizes)+len(prog.Productions)+len(prog.Facts) != 0 {
		t.Error("empty source should produce empty program")
	}
}
