package server

import (
	"sync"

	"prodsys/internal/metrics"
)

// fairQueue is the admission semaphore with per-client fairness: up to
// capacity requests execute at once; excess arrivals wait in per-client
// FIFO queues granted round-robin across clients, so one hot client
// saturating the queue cannot starve everyone else — its requests wait
// behind one slot per turn of the ring while other clients' requests
// interleave. The total number of waiters is bounded by maxWait;
// arrivals beyond it are shed.
type fairQueue struct {
	mu       sync.Mutex
	capacity int
	maxWait  int
	inUse    int
	waiting  int
	queues   map[string][]*fqWaiter
	ring     []string // clients with waiters, granted head-first then rotated
}

// fqWaiter is one queued request. granted/abandoned are guarded by the
// queue mutex; ready closes at grant time.
type fqWaiter struct {
	client    string
	ready     chan struct{}
	granted   bool
	abandoned bool
}

func newFairQueue(capacity, maxWait int) *fairQueue {
	return &fairQueue{
		capacity: capacity,
		maxWait:  maxWait,
		queues:   make(map[string][]*fqWaiter),
	}
}

// enqueue claims a slot for client. A nil waiter with a nil error means
// the slot was granted immediately; a non-nil waiter means the caller
// must wait on waiter.ready (and abandon it if it gives up). A full
// wait queue returns ErrOverloaded. stats records the high-water count
// of distinct clients queued together.
func (q *fairQueue) enqueue(client string, stats *metrics.Set) (*fqWaiter, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inUse < q.capacity && q.waiting == 0 {
		q.inUse++
		return nil, nil
	}
	if q.waiting >= q.maxWait {
		return nil, ErrOverloaded
	}
	w := &fqWaiter{client: client, ready: make(chan struct{})}
	if _, exists := q.queues[client]; !exists {
		q.ring = append(q.ring, client)
	}
	q.queues[client] = append(q.queues[client], w)
	q.waiting++
	stats.Max(metrics.ServerQueueClients, int64(len(q.queues)))
	return w, nil
}

// abandon withdraws a waiter that gave up (context cancelled, drain).
// It reports true when the withdrawal won — the waiter never got a
// slot; false means a grant raced it, and the caller now owns a slot
// it must release.
func (q *fairQueue) abandon(w *fqWaiter) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if w.granted {
		return false
	}
	w.abandoned = true
	q.waiting--
	return true
}

// release returns a slot: the next waiter in the round-robin ring
// inherits it, otherwise the slot goes idle.
func (q *fairQueue) release() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.grantLocked() {
		return
	}
	q.inUse--
}

// grantLocked hands the caller's slot to the head waiter of the ring's
// first client, then rotates that client to the back — round-robin
// admission. Abandoned waiters are discarded in passing. Reports
// whether a waiter took the slot.
func (q *fairQueue) grantLocked() bool {
	for len(q.ring) > 0 {
		client := q.ring[0]
		queue := q.queues[client]
		for len(queue) > 0 && queue[0].abandoned {
			queue = queue[1:]
		}
		if len(queue) == 0 {
			delete(q.queues, client)
			q.ring = q.ring[1:]
			continue
		}
		w := queue[0]
		queue = queue[1:]
		w.granted = true
		close(w.ready)
		q.waiting--
		if len(queue) == 0 {
			delete(q.queues, client)
			q.ring = q.ring[1:]
		} else {
			q.queues[client] = queue
			q.ring = append(q.ring[1:], client)
		}
		return true
	}
	return false
}

// depth reports (in-use slots, waiters) for tests and observability.
func (q *fairQueue) depth() (inUse, waiting int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inUse, q.waiting
}
