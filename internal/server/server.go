// Package server is the network front end of the production system: an
// HTTP/JSON surface over the transactional API (Batch, Run, Quel,
// Metrics, Plans, Audit) with robustness as the design center —
// admission control with bounded queueing and typed overload shedding,
// per-request deadlines propagated as contexts into the engine, WAL
// group commit underneath (wal.SyncGroup), read-only degradation on
// disk failure, and graceful drain on shutdown.
//
// The paper's §5 scheduler assumes a long-lived system serving many
// concurrent transactions; this package supplies the missing operating
// mode: many clients, bounded resource use, and defined behavior under
// overload, disk failure, and shutdown.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"prodsys"
	"prodsys/internal/metrics"
)

// ErrOverloaded marks a request shed by admission control: the
// in-flight limit and the wait queue are both full. Mapped to HTTP 429
// with a Retry-After header. Test with errors.Is.
var ErrOverloaded = errors.New("server: overloaded")

// ErrDraining marks a request refused because the server is draining:
// admissions stopped, in-flight work finishing. Mapped to HTTP 503.
// Test with errors.Is.
var ErrDraining = errors.New("server: draining")

// Config tunes a Server.
type Config struct {
	// MaxInFlight bounds concurrently executing requests (the admission
	// semaphore); 0 means 32.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; an
	// arrival finding the queue full is shed with ErrOverloaded (429).
	// 0 means 4 × MaxInFlight.
	MaxQueue int
	// RequestTimeout is the per-request deadline propagated as a
	// context into the engine; 0 means 10s.
	RequestTimeout time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight requests
	// before checkpointing and closing anyway; 0 means 10s.
	DrainTimeout time.Duration
	// StopReplication, when set on a replica, stops the feed client
	// (blocking until no apply is in flight) before /v1/promote runs the
	// promotion sequence. psserve wires this to its replica.Client.
	StopReplication func()
	// FeedPoll and FeedHeartbeat tune the /v1/wal replication feed; zero
	// means the replica package defaults (50ms / 500ms).
	FeedPoll      time.Duration
	FeedHeartbeat time.Duration
}

func (c *Config) fill() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
}

// Server wraps a loaded System with admission control and the HTTP
// surface. Build with New, mount Handler, stop with Drain.
type Server struct {
	sys   *prodsys.System
	cfg   Config
	stats *metrics.Set
	mux   *http.ServeMux

	// Admission control: fq is the per-client fair queue (execution
	// slots plus a bounded, round-robin wait queue). drainCh closes when
	// draining flips, so queued waiters fail fast instead of outliving
	// the drain.
	fq       *fairQueue
	draining atomic.Bool
	drainCh  chan struct{}

	// admitMu makes the draining-check-then-Add sequence atomic against
	// Drain's Wait, closing the classic Add-after-Wait race.
	admitMu sync.Mutex
	wg      sync.WaitGroup

	// runMu serializes Run/RunConcurrent: the recognize-act executors
	// are one-at-a-time machines; batches and queries stay concurrent.
	runMu sync.Mutex

	startedAt time.Time
	drainedAt atomic.Int64 // unix nanos when Drain finished, 0 while serving
}

// New builds a Server over a loaded system. The system should have been
// opened with WALSyncGroup for commit coalescing across clients, but
// every sync mode works.
func New(sys *prodsys.System, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		sys:       sys,
		cfg:       cfg,
		stats:     sys.CounterSet(),
		fq:        newFairQueue(cfg.MaxInFlight, cfg.MaxQueue),
		drainCh:   make(chan struct{}),
		startedAt: time.Now(),
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// System exposes the wrapped system (for harnesses and tests).
func (s *Server) System() *prodsys.System { return s.sys }

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// acquire admits one request from the named client: it claims a fair
// wait-queue position (round-robin across clients, so one hot client
// cannot starve the rest), then an execution slot, honoring ctx and
// drain. The returned release must be called exactly once when the
// request finishes.
func (s *Server) acquire(ctx context.Context, client string) (release func(), err error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	w, err := s.fq.enqueue(client, s.stats)
	if err != nil {
		s.stats.Inc(metrics.ServerRejected)
		return nil, err
	}
	if w != nil {
		select {
		case <-w.ready:
		case <-ctx.Done():
			if !s.fq.abandon(w) {
				// Granted while we were giving up: we own a slot, return it.
				s.fq.release()
			}
			s.stats.Inc(metrics.ServerRejected)
			return nil, fmt.Errorf("%w: queue wait: %w", ErrOverloaded, ctx.Err())
		case <-s.drainCh:
			if !s.fq.abandon(w) {
				s.fq.release()
			}
			return nil, ErrDraining
		}
	}
	s.admitMu.Lock()
	if s.draining.Load() {
		s.admitMu.Unlock()
		s.fq.release()
		return nil, ErrDraining
	}
	s.wg.Add(1)
	s.admitMu.Unlock()
	s.stats.Inc(metrics.ServerAdmitted)
	return func() {
		s.fq.release()
		if s.draining.Load() {
			s.stats.Inc(metrics.ServerDrained)
		}
		s.wg.Done()
	}, nil
}

// Drain performs the graceful shutdown sequence: stop admitting (new
// requests get 503, queued waiters are released refused), wait for
// in-flight transactions under the drain deadline, checkpoint the WAL,
// and close the system. Idempotent; concurrent callers all block until
// the first drain completes. Returns the system Close error, if any.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		// Another drain is (or was) in flight: wait for in-flight work
		// and fall through to the idempotent Close.
		s.wg.Wait()
		return s.sys.Close()
	}
	close(s.drainCh)
	// Pair with acquire's admitMu section: any request that saw
	// draining=false has finished its wg.Add once we pass this lock, so
	// Wait below can never race an Add.
	s.admitMu.Lock()
	s.admitMu.Unlock() //nolint:staticcheck // empty critical section is the barrier

	deadline := s.cfg.DrainTimeout
	if d, ok := ctx.Deadline(); ok {
		if rem := time.Until(d); rem < deadline {
			deadline = rem
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(deadline):
		// In-flight stragglers outlived the deadline; close anyway —
		// their commits either landed in the WAL already or will fail
		// with ErrClosed, never half-apply.
	case <-ctx.Done():
	}
	// Checkpoint compacts the log for the fastest possible next-boot
	// recovery; skipped when degraded (the log may be unwritable) and on
	// replicas (a local checkpoint would bump the epoch and break the
	// byte-for-byte mirror of the primary's log).
	if !s.sys.ReadOnly() && !s.sys.IsReplica() {
		_ = s.sys.Checkpoint()
	}
	err := s.sys.Close()
	s.drainedAt.Store(time.Now().UnixNano())
	return err
}
