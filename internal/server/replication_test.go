package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prodsys"
	"prodsys/internal/faultfs"
	"prodsys/internal/metrics"
)

func granted(w *fqWaiter) bool {
	select {
	case <-w.ready:
		return true
	default:
		return false
	}
}

// TestFairQueueRoundRobin checks the admission queue's fairness
// contract: with one hot client holding three queued requests and two
// other clients one each, grants rotate across clients — the hot
// client gets one slot per turn of the ring, not a burst.
func TestFairQueueRoundRobin(t *testing.T) {
	stats := &metrics.Set{}
	fq := newFairQueue(1, 10)
	if w, err := fq.enqueue("A", stats); w != nil || err != nil {
		t.Fatalf("first arrival not granted immediately: %v %v", w, err)
	}
	a1, _ := fq.enqueue("A", stats)
	a2, _ := fq.enqueue("A", stats)
	a3, _ := fq.enqueue("A", stats)
	b1, _ := fq.enqueue("B", stats)
	c1, _ := fq.enqueue("C", stats)
	for i, w := range []*fqWaiter{a1, a2, a3, b1, c1} {
		if w == nil {
			t.Fatalf("waiter %d granted with the slot busy", i)
		}
	}
	if got := stats.Get(metrics.ServerQueueClients); got != 3 {
		t.Fatalf("server_queue_clients high-water = %d, want 3", got)
	}

	// Round-robin grant order: A B C A A, not A A A B C.
	want := []struct {
		name string
		w    *fqWaiter
	}{{"a1", a1}, {"b1", b1}, {"c1", c1}, {"a2", a2}, {"a3", a3}}
	for step, next := range want {
		fq.release()
		for _, other := range want[step+1:] {
			if granted(other.w) {
				t.Fatalf("step %d: %s granted before %s", step, other.name, next.name)
			}
		}
		if !granted(next.w) {
			t.Fatalf("step %d: %s not granted", step, next.name)
		}
	}
	fq.release()
	if inUse, waiting := fq.depth(); inUse != 0 || waiting != 0 {
		t.Fatalf("queue not drained: inUse=%d waiting=%d", inUse, waiting)
	}
}

func TestFairQueueShedsAndAbandons(t *testing.T) {
	stats := &metrics.Set{}
	fq := newFairQueue(1, 2)
	fq.enqueue("A", stats)
	w1, _ := fq.enqueue("A", stats)
	w2, _ := fq.enqueue("B", stats)
	if _, err := fq.enqueue("C", stats); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full wait queue: %v, want ErrOverloaded", err)
	}
	// w1 gives up; the next release must skip it and grant w2.
	if !fq.abandon(w1) {
		t.Fatal("abandon of an ungranted waiter reported a racing grant")
	}
	fq.release()
	if granted(w1) || !granted(w2) {
		t.Fatalf("abandoned waiter granted (w1=%v) or live waiter skipped (w2=%v)", granted(w1), granted(w2))
	}
	// Abandoning after the grant reports false: the caller owns the slot.
	if fq.abandon(w2) {
		t.Fatal("abandon after grant did not report the race")
	}
}

// TestRetryAfterJittered checks the 429/503 backoff headers: the
// standard coarse header plus the jittered millisecond hint psload
// honors, with the jitter inside the documented ±50% band.
func TestRetryAfterJittered(t *testing.T) {
	base := 2 * time.Second
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		retryAfter(rec, base)
		msHdr := rec.Header().Get("Retry-After-Ms")
		if msHdr == "" || rec.Header().Get("Retry-After") == "" {
			t.Fatal("backoff headers missing")
		}
		var ms int64
		fmt.Sscanf(msHdr, "%d", &ms)
		if ms < 1000 || ms > 3000 {
			t.Fatalf("Retry-After-Ms %d outside [1000,3000]", ms)
		}
	}
}

func TestOverloadResponseCarriesRetryAfter(t *testing.T) {
	srv, ts := newServer(t, Config{MaxInFlight: 1, MaxQueue: 1}, prodsys.Options{})
	release, err := srv.acquire(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Fill the single queue position with a second client, then shed a
	// third over HTTP and check the backoff headers ride along.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan struct{})
	go func() {
		defer close(queued)
		if rel, err := srv.acquire(ctx, "waiter"); err == nil {
			rel()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for waitingOf(srv) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	defer func() { cancel(); <-queued }()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"ops":[{"op":"assert","class":"Item","values":[1,1]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("Retry-After-Ms") == "" {
		t.Fatal("429 without Retry-After/Retry-After-Ms headers")
	}
}

// TestReplicaModeAndPromotion drives the server-side replica life
// cycle: writes refused 503 naming the primary, /v1/replication
// reporting the role, then /v1/promote flipping the node writable with
// a bumped epoch, and a second promote refused 409.
func TestReplicaModeAndPromotion(t *testing.T) {
	_, ts := newServer(t, Config{}, prodsys.Options{
		WALPath: "wm.wal", WALFS: faultfs.New(), ReplicaOf: "http://primary.example:8372",
	})

	code, body, _ := postJSON(t, ts.URL+"/v1/batch", `{"ops":[{"op":"assert","class":"Item","values":[1,1]}]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("write on replica: status %d, want 503", code)
	}
	if body["replica"] != true || body["primary"] != "http://primary.example:8372" {
		t.Fatalf("replica error body missing redirect info: %v", body)
	}

	if code, body := getJSON(t, ts.URL+"/v1/replication"); code != http.StatusOK ||
		body["role"] != "replica" || body["primary"] != "http://primary.example:8372" {
		t.Fatalf("replication state: %d %v", code, body)
	}

	code, body, _ = postJSON(t, ts.URL+"/v1/promote", `{}`)
	if code != http.StatusOK || body["promoted"] != true {
		t.Fatalf("promote: %d %v", code, body)
	}
	if body["epoch"].(float64) != 2 {
		t.Fatalf("promoted epoch = %v, want 2", body["epoch"])
	}
	if code, body := getJSON(t, ts.URL+"/v1/replication"); code != http.StatusOK || body["role"] != "primary" {
		t.Fatalf("post-promotion state: %d %v", code, body)
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/batch", `{"ops":[{"op":"assert","class":"Item","values":[1,1]}]}`); code != http.StatusOK {
		t.Fatalf("write after promotion: status %d", code)
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/promote", `{}`); code != http.StatusConflict {
		t.Fatalf("second promote: status %d, want 409", code)
	}
}

// TestEpochFencing checks the split-brain guard: a mutating request
// tagged with a different epoch than the node's live log is rejected
// 409 stale_epoch, counted, and never applied; the matching tag passes.
func TestEpochFencing(t *testing.T) {
	_, ts := newServer(t, Config{}, prodsys.Options{WALPath: "wm.wal", WALFS: faultfs.New()})

	send := func(epoch string) (int, map[string]any) {
		req, err := http.NewRequest("POST", ts.URL+"/v1/batch",
			strings.NewReader(`{"ops":[{"op":"assert","class":"Item","values":[1,1]}]}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Prodsys-Epoch", epoch)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	if code, body := send("999"); code != http.StatusConflict || body["stale_epoch"] != true {
		t.Fatalf("stale tag: %d %v", code, body)
	}
	if code, body := getJSON(t, ts.URL+"/v1/replication"); code != http.StatusOK || body["fenced_writes"].(float64) != 1 {
		t.Fatalf("fenced_writes not counted: %v", body)
	}
	if code, body := send("1"); code != http.StatusOK {
		t.Fatalf("matching tag rejected: %d %v", code, body)
	}
	if code, body := send("nonsense"); code != http.StatusBadRequest {
		t.Fatalf("malformed tag: %d %v", code, body)
	}
	// The fenced request never reached working memory: exactly one
	// tuple (from the matching-tag request) exists.
	if code, body := getJSON(t, ts.URL+"/v1/wm?class=Item"); code != http.StatusOK || body["count"].(float64) != 1 {
		t.Fatalf("wm after fencing: %d %v", code, body)
	}
}
