package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"prodsys"
	"prodsys/internal/faultfs"
)

const testSrc = `
(literalize Item id qty)
(literalize Hit id)
(p hot (Item ^id <i> ^qty > 9) --> (make Hit ^id <i>) (remove 1))
`

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func load(t *testing.T, opts prodsys.Options) *prodsys.System {
	t.Helper()
	opts.Out = discard{}
	sys, err := prodsys.Load(testSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func newServer(t *testing.T, cfg Config, opts prodsys.Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(load(t, opts), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.System().Close() })
	return srv, ts
}

// waitingOf reads the fair queue's waiter count.
func waitingOf(srv *Server) int {
	_, waiting := srv.fq.depth()
	return waiting
}

func postJSON(t *testing.T, url, body string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out, resp.Header
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

// TestEndpointsRoundTrip drives every endpoint once: batch assert,
// run to quiescence, WM and QUEL reads, plans, audit, metrics, health.
func TestEndpointsRoundTrip(t *testing.T) {
	_, ts := newServer(t, Config{}, prodsys.Options{})

	code, out, _ := postJSON(t, ts.URL+"/v1/batch",
		`{"ops":[{"op":"assert","class":"Item","values":[1,5]},{"op":"assert","class":"Item","values":[2,12]}]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %v", code, out)
	}
	if ids := out["ids"].([]any); len(ids) != 2 {
		t.Fatalf("batch ids: %v", out)
	}

	code, out, _ = postJSON(t, ts.URL+"/v1/run", `{}`)
	if code != http.StatusOK || out["firings"].(float64) != 1 {
		t.Fatalf("run: %d %v", code, out)
	}

	code, out = getJSON(t, ts.URL+"/v1/wm?class=Hit")
	if code != http.StatusOK || out["count"].(float64) != 1 {
		t.Fatalf("wm Hit: %d %v", code, out)
	}
	code, out = getJSON(t, ts.URL+"/v1/wm")
	if code != http.StatusOK || out["classes"].(map[string]any)["Item"].(float64) != 1 {
		t.Fatalf("wm summary: %d %v", code, out)
	}

	if code, out, _ = postJSON(t, ts.URL+"/v1/quel", `{"stmt":"range of i is Item"}`); code != http.StatusOK {
		t.Fatalf("quel range: %d %v", code, out)
	}
	code, out, _ = postJSON(t, ts.URL+"/v1/quel", `{"stmt":"retrieve (i.id, i.qty)"}`)
	if code != http.StatusOK || len(out["rows"].([]any)) != 1 {
		t.Fatalf("quel: %d %v", code, out)
	}

	code, out = getJSON(t, ts.URL+"/v1/plans?rule=hot")
	if code != http.StatusOK || len(out["plans"].([]any)) == 0 {
		t.Fatalf("plans: %d %v", code, out)
	}
	if code, out = getJSON(t, ts.URL+"/v1/plans"); code != http.StatusOK || len(out["rules"].([]any)) != 1 {
		t.Fatalf("plans list: %d %v", code, out)
	}

	code, out, _ = postJSON(t, ts.URL+"/v1/audit", `{}`)
	if code != http.StatusOK || out["clean"] != true {
		t.Fatalf("audit: %d %v", code, out)
	}

	code, out = getJSON(t, ts.URL+"/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if sv := out["Server"].(map[string]any); sv["Admitted"].(float64) < 3 {
		t.Fatalf("metrics admitted: %v", sv)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fscan(resp.Body, &sb); err == nil && resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz: %d", resp.StatusCode)
	}

	if code, out = getJSON(t, ts.URL+"/healthz"); code != http.StatusOK || out["status"] != "serving" {
		t.Fatalf("healthz: %d %v", code, out)
	}
	if code, _ = getJSON(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
}

// TestBadRequests checks caller-mistake mapping: unknown op, unknown
// class (404), malformed JSON, empty quel.
func TestBadRequests(t *testing.T) {
	_, ts := newServer(t, Config{}, prodsys.Options{})
	if code, _, _ := postJSON(t, ts.URL+"/v1/batch", `{"ops":[{"op":"upsert","class":"Item"}]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown op: %d", code)
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/batch", `{"ops":[{"op":"assert","class":"Nope","values":[1]}]}`); code != http.StatusNotFound {
		t.Fatalf("unknown class: %d", code)
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/batch", `{"ops":`); code != http.StatusBadRequest {
		t.Fatalf("bad json: %d", code)
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/quel", `{}`); code != http.StatusBadRequest {
		t.Fatalf("empty quel: %d", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/plans?rule=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown rule: %d", code)
	}
}

// TestOverloadSheds fills every execution slot and the whole wait
// queue, then sends one more request: it must be shed with 429 and a
// Retry-After header, and the rejection must land in the counters.
func TestOverloadSheds(t *testing.T) {
	srv, ts := newServer(t, Config{MaxInFlight: 1, MaxQueue: 1}, prodsys.Options{})

	// Occupy the single slot and the single queue position directly.
	release, err := srv.acquire(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		r, err := srv.acquire(context.Background(), "test")
		if err == nil {
			r()
		}
		close(acquired)
	}()
	// Wait until the goroutine is counted in the queue (it blocks on
	// the slot channel inside acquire).
	deadline := time.Now().Add(5 * time.Second)
	for waitingOf(srv) < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if waitingOf(srv) < 1 {
		t.Fatal("queued acquire never registered")
	}

	code, out, hdr := postJSON(t, ts.URL+"/v1/batch", `{"ops":[{"op":"assert","class":"Item","values":[1,1]}]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d %v", code, out)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	release()
	<-acquired
	if got := srv.System().Metrics().Server.Rejected; got < 1 {
		t.Fatalf("server_rejected = %d, want >= 1", got)
	}
}

// TestAcquireHonorsContext: a queued waiter whose context expires is
// shed as overloaded rather than waiting forever.
func TestAcquireHonorsContext(t *testing.T) {
	srv, _ := newServer(t, Config{MaxInFlight: 1, MaxQueue: 4}, prodsys.Options{})
	release, err := srv.acquire(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := srv.acquire(ctx, "test"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired queue wait: %v", err)
	}
}

// TestDrain: in-flight work finishes, new work is refused with 503,
// the system ends closed with writes failing ErrClosed, and Drain is
// idempotent.
func TestDrain(t *testing.T) {
	srv, ts := newServer(t, Config{MaxInFlight: 2, DrainTimeout: 5 * time.Second}, prodsys.Options{})

	// Hold an in-flight admission so Drain must wait for it.
	release, err := srv.acquire(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()

	// Admissions must stop as soon as draining flips.
	deadline := time.Now().Add(time.Second)
	for !srv.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	code, out, _ := postJSON(t, ts.URL+"/v1/batch", `{"ops":[{"op":"assert","class":"Item","values":[7,1]}]}`)
	if code != http.StatusServiceUnavailable || out["draining"] != true {
		t.Fatalf("during drain: %d %v", code, out)
	}

	select {
	case err := <-drained:
		t.Fatalf("drain finished with an admission still held: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not finish after release")
	}

	if _, err := srv.System().Assert("Item", 8, 1); !errors.Is(err, prodsys.ErrClosed) {
		t.Fatalf("write after drain: %v", err)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if got := srv.System().Metrics().Server.Drained; got < 1 {
		t.Fatalf("server_drained = %d, want >= 1", got)
	}
	if code, _ = getJSON(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d", code)
	}
}

// TestDrainPreservesCommits: transactions acknowledged before SIGTERM
// survive — drain checkpoints and closes, and a reopen of the same WAL
// recovers every committed tuple.
func TestDrainPreservesCommits(t *testing.T) {
	fs := faultfs.New()
	opts := prodsys.Options{WALFS: fs, WALPath: "wm.wal", WALSync: prodsys.WALSyncGroup}
	srv, ts := newServer(t, Config{}, opts)

	for i := 1; i <= 8; i++ {
		code, out, _ := postJSON(t, ts.URL+"/v1/batch",
			fmt.Sprintf(`{"ops":[{"op":"assert","class":"Item","values":[%d,1]}]}`, i))
		if code != http.StatusOK {
			t.Fatalf("batch %d: %d %v", i, code, out)
		}
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	re := load(t, opts)
	defer re.Close()
	if got := len(re.WMClass("Item")); got != 8 {
		t.Fatalf("recovered %d Items, want 8 (recovery: %+v)", got, re.Recovery())
	}
	rep, err := re.Audit(prodsys.AuditOptions{})
	if err != nil || !rep.Clean() {
		t.Fatalf("post-recovery audit: clean=%v err=%v", rep != nil && rep.Clean(), err)
	}
}

// TestReadOnlyDegradation: a dead disk flips the system read-only;
// writes 503 with read_only, queries and audits keep serving, healthz
// stays 200 while readyz goes 503.
func TestReadOnlyDegradation(t *testing.T) {
	fs := faultfs.New()
	srv, ts := newServer(t, Config{}, prodsys.Options{WALFS: fs, WALPath: "wm.wal", WALSync: prodsys.WALSyncGroup})

	code, out, _ := postJSON(t, ts.URL+"/v1/batch", `{"ops":[{"op":"assert","class":"Item","values":[1,5]}]}`)
	if code != http.StatusOK {
		t.Fatalf("pre-fault batch: %d %v", code, out)
	}

	fs.FailWrite(1, 0, true) // next write call crashes the disk for good

	code, out, _ = postJSON(t, ts.URL+"/v1/batch", `{"ops":[{"op":"assert","class":"Item","values":[2,5]}]}`)
	if code != http.StatusServiceUnavailable || out["read_only"] != true {
		t.Fatalf("post-fault batch: %d %v", code, out)
	}
	if !srv.System().ReadOnly() {
		t.Fatal("system not read-only after WAL failure")
	}

	// Query service must survive degradation.
	if code, out, _ = postJSON(t, ts.URL+"/v1/quel", `{"stmt":"range of i is Item"}`); code != http.StatusOK {
		t.Fatalf("quel range while read-only: %d %v", code, out)
	}
	code, out, _ = postJSON(t, ts.URL+"/v1/quel", `{"stmt":"retrieve (i.id)"}`)
	if code != http.StatusOK || len(out["rows"].([]any)) != 1 {
		t.Fatalf("quel while read-only: %d %v", code, out)
	}
	if code, out, _ = postJSON(t, ts.URL+"/v1/audit", `{}`); code != http.StatusOK || out["clean"] != true {
		t.Fatalf("audit while read-only: %d %v", code, out)
	}
	code, hb := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || hb["status"] != "read_only" || hb["cause"] == "" {
		t.Fatalf("healthz while read-only: %d %v", code, hb)
	}
	if code, _ = getJSON(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while read-only: %d", code)
	}
	if got := srv.System().Metrics().Server.ReadOnly; got != 1 {
		t.Fatalf("read_only counter = %d, want 1", got)
	}
	// Drain still works degraded: it skips the checkpoint and closes.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain while read-only: %v", err)
	}
}

// TestConcurrentMixedLoad hammers the server from many goroutines with
// batches, queries, and runs under group commit — a miniature of the
// psload harness that the race detector can chew on.
func TestConcurrentMixedLoad(t *testing.T) {
	fs := faultfs.New()
	srv, ts := newServer(t, Config{MaxInFlight: 8, MaxQueue: 64},
		prodsys.Options{WALFS: fs, WALPath: "wm.wal", WALSync: prodsys.WALSyncGroup})

	if code, out, _ := postJSON(t, ts.URL+"/v1/quel", `{"stmt":"range of i is Item"}`); code != http.StatusOK {
		t.Fatalf("quel range: %d %v", code, out)
	}

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := c*100 + i
				code, out, _ := postJSON(t, ts.URL+"/v1/batch",
					fmt.Sprintf(`{"ops":[{"op":"assert","class":"Item","values":[%d,%d]}]}`, id, i))
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("batch: %d %v", code, out)
					return
				}
				if i%5 == 0 {
					postJSON(t, ts.URL+"/v1/quel", `{"stmt":"retrieve (i.id)"}`)
					getJSON(t, ts.URL+"/v1/wm")
				}
			}
		}(c)
	}
	wg.Wait()

	sn := srv.System().Metrics()
	if sn.Server.GroupCommits == 0 {
		t.Fatalf("no group commits under concurrent load: %+v", sn.Server)
	}
	if sn.Server.GroupCommits+sn.Server.GroupWaiters < sn.Durability.WALAppends {
		t.Logf("group stats: commits=%d waiters=%d appends=%d",
			sn.Server.GroupCommits, sn.Server.GroupWaiters, sn.Durability.WALAppends)
	}
	if code, out, _ := postJSON(t, ts.URL+"/v1/audit", `{}`); code != http.StatusOK || out["clean"] != true {
		t.Fatalf("audit after load: %d %v", code, out)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
