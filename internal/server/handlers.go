package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"prodsys"
	"prodsys/internal/metrics"
	"prodsys/internal/replica"
)

// routes mounts every endpoint. Mutating endpoints (batch, run, quel,
// audit, promote) pass through admission control; cheap snapshot reads
// (wm, plans, metrics, health) bypass it so observability survives
// overload, and the replication feed bypasses it because it is a
// long-lived stream, not a unit of work.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/batch", s.admitted(s.handleBatch))
	s.mux.HandleFunc("POST /v1/run", s.admitted(s.handleRun))
	s.mux.HandleFunc("POST /v1/quel", s.admitted(s.handleQuel))
	s.mux.HandleFunc("POST /v1/audit", s.admitted(s.handleAudit))
	s.mux.HandleFunc("POST /v1/promote", s.admitted(s.handlePromote))
	s.mux.HandleFunc("GET /v1/wal", s.handleWALFeed)
	s.mux.HandleFunc("GET /v1/replication", s.handleReplication)
	s.mux.HandleFunc("GET /v1/conflicts", s.handleConflicts)
	s.mux.HandleFunc("GET /v1/wm", s.handleWM)
	s.mux.HandleFunc("GET /v1/plans", s.handlePlans)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/recovery", s.handleRecovery)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsText)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error      string `json:"error"`
	ReadOnly   bool   `json:"read_only,omitempty"`
	Draining   bool   `json:"draining,omitempty"`
	Replica    bool   `json:"replica,omitempty"`
	Primary    string `json:"primary,omitempty"`
	StaleEpoch bool   `json:"stale_epoch,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// retryAfter emits jittered Retry-After headers: the coarse standard
// header in whole seconds plus Retry-After-Ms with ±50% jitter, so a
// fleet of shed clients does not come back in one synchronized
// stampede.
func retryAfter(w http.ResponseWriter, base time.Duration) {
	ms := base.Milliseconds()
	jittered := ms/2 + rand.Int63n(ms+1)
	w.Header().Set("Retry-After", strconv.FormatInt((jittered+999)/1000, 10))
	w.Header().Set("Retry-After-Ms", strconv.FormatInt(jittered, 10))
}

// writeErr maps an error to its HTTP status per the shedding contract:
// overload → 429 + jittered Retry-After, drain/read-only/closed → 503,
// replica mode → 503 naming the primary, deadline → 504, caller
// mistakes → 400/404, everything else → 500.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	body := errorBody{Error: err.Error()}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
		retryAfter(w, time.Second)
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
		retryAfter(w, 5*time.Second)
		body.Draining = true
	case errors.Is(err, prodsys.ErrReplica):
		status = http.StatusServiceUnavailable
		body.Replica = true
		body.Primary = s.sys.ReplicaOf()
	case errors.Is(err, prodsys.ErrReadOnly):
		status = http.StatusServiceUnavailable
		body.ReadOnly = true
	case errors.Is(err, prodsys.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, prodsys.ErrNotReplica), errors.Is(err, prodsys.ErrPromotionGate):
		status = http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	case errors.Is(err, prodsys.ErrUnknownClass), errors.Is(err, prodsys.ErrUnknownRule):
		status = http.StatusNotFound
	case errors.Is(err, prodsys.ErrArity), errors.Is(err, prodsys.ErrNoPlanner):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, body)
}

// clientID identifies the caller for fair queueing: the X-Client-ID
// header when present, else the remote address host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// checkFence enforces stale-epoch fencing on mutating requests: a
// request tagged with X-Prodsys-Epoch is rejected with 409 unless the
// tag matches the live WAL epoch. A resurrected old primary whose
// clients moved to a promoted replica carries the new epoch in its
// requests and so fences every write against the stale node.
func (s *Server) checkFence(w http.ResponseWriter, r *http.Request) bool {
	tag := r.Header.Get("X-Prodsys-Epoch")
	if tag == "" {
		return true
	}
	want, err := strconv.ParseUint(tag, 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad X-Prodsys-Epoch %q", tag)})
		return false
	}
	epoch, _, ok := s.sys.WALPosition()
	if !ok || epoch != want {
		s.stats.Inc(metrics.FencedWrites)
		writeJSON(w, http.StatusConflict, errorBody{
			Error:      fmt.Sprintf("stale epoch: request fenced at %d, log at %d", want, epoch),
			StaleEpoch: true,
			Epoch:      epoch,
		})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// admitted wraps a handler with epoch fencing, admission control, and
// the per-request deadline: acquire a slot (or shed), run under a
// context the engine honors mid-transaction, release.
func (s *Server) admitted(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.checkFence(w, r) {
			return
		}
		release, err := s.acquire(r.Context(), clientID(r))
		if err != nil {
			s.writeErr(w, err)
			return
		}
		defer release()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// batchOp is one operation of a /v1/batch request.
type batchOp struct {
	Op     string `json:"op"` // "assert" | "retract"
	Class  string `json:"class"`
	Values []any  `json:"values,omitempty"` // assert: attribute values in schema order
	ID     uint64 `json:"id,omitempty"`     // retract: tuple ID
}

type batchRequest struct {
	Ops []batchOp `json:"ops"`
}

type batchResponse struct {
	// IDs are the tuple IDs minted for the batch's assertions, in
	// request order.
	IDs []uint64 `json:"ids"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if len(req.Ops) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch"})
		return
	}
	b := s.sys.Batch()
	for i, op := range req.Ops {
		switch op.Op {
		case "assert":
			b.Assert(op.Class, decodedValues(op.Values)...)
		case "retract":
			b.Retract(op.Class, op.ID)
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("ops[%d]: unknown op %q (want assert or retract)", i, op.Op),
			})
			return
		}
	}
	ids, err := b.CommitContext(r.Context())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if ids == nil {
		ids = []uint64{}
	}
	writeJSON(w, http.StatusOK, batchResponse{IDs: ids})
}

type runRequest struct {
	// Concurrent selects the parallel-firing executor (§5 of the
	// paper); default is the serial recognize-act loop.
	Concurrent bool `json:"concurrent,omitempty"`
}

type runResponse struct {
	Firings int  `json:"firings"`
	Cycles  int  `json:"cycles"`
	Halted  bool `json:"halted"`
	Aborts  int  `json:"aborts,omitempty"`
	Panics  int  `json:"panics,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := decodeJSON(r, &req); err != nil && !errors.Is(err, errEmptyBody) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// One recognize-act loop at a time: concurrent /v1/run calls
	// serialize here rather than interleaving two executors.
	s.runMu.Lock()
	defer s.runMu.Unlock()
	var res prodsys.Result
	var err error
	if req.Concurrent {
		res, err = s.sys.RunConcurrentContext(r.Context())
	} else {
		res, err = s.sys.RunContext(r.Context())
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		Firings: res.Firings, Cycles: res.Cycles, Halted: res.Halted,
		Aborts: res.Aborts, Panics: res.Panics,
	})
}

type quelRequest struct {
	Stmt string `json:"stmt"`
}

type quelResponse struct {
	Columns  []string   `json:"columns,omitempty"`
	Rows     [][]string `json:"rows,omitempty"`
	Affected int        `json:"affected"`
	Fired    int        `json:"fired"`
}

func (s *Server) handleQuel(w http.ResponseWriter, r *http.Request) {
	var req quelRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if req.Stmt == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty stmt"})
		return
	}
	// QUEL data changes run triggers to quiescence — an executor run —
	// and the interpreter keeps session state (range declarations), so
	// statements serialize with /v1/run rather than interleaving.
	s.runMu.Lock()
	res, err := s.sys.Quel(req.Stmt)
	s.runMu.Unlock()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, quelResponse{
		Columns: res.Columns, Rows: res.Rows, Affected: res.Affected, Fired: res.Fired,
	})
}

type auditRequest struct {
	MaxRules int  `json:"max_rules,omitempty"`
	Repair   bool `json:"repair,omitempty"`
}

type auditResponse struct {
	Matcher      string   `json:"matcher"`
	RulesChecked int      `json:"rules_checked"`
	Sampled      bool     `json:"sampled"`
	Clean        bool     `json:"clean"`
	Divergences  []string `json:"divergences,omitempty"`
	Repaired     int      `json:"repaired"`
	Rebuilt      bool     `json:"rebuilt"`
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	var req auditRequest
	if err := decodeJSON(r, &req); err != nil && !errors.Is(err, errEmptyBody) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	rep, err := s.sys.Audit(prodsys.AuditOptions{MaxRules: req.MaxRules, Repair: req.Repair})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	resp := auditResponse{
		Matcher: rep.Matcher, RulesChecked: rep.RulesChecked, Sampled: rep.Sampled,
		Clean: rep.Clean(), Repaired: rep.Repaired, Rebuilt: rep.Rebuilt,
	}
	for _, d := range rep.Divergences {
		resp.Divergences = append(resp.Divergences, d.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

type wmResponse struct {
	Classes map[string]int `json:"classes,omitempty"`
	Class   string         `json:"class,omitempty"`
	Tuples  []string       `json:"tuples,omitempty"`
	Count   int            `json:"count"`
}

func (s *Server) handleWM(w http.ResponseWriter, r *http.Request) {
	class := r.URL.Query().Get("class")
	if class == "" {
		resp := wmResponse{Classes: map[string]int{}}
		for _, c := range s.sys.Classes() {
			n := len(s.sys.WMClass(c))
			resp.Classes[c] = n
			resp.Count += n
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	tuples := s.sys.WMClass(class)
	writeJSON(w, http.StatusOK, wmResponse{Class: class, Tuples: tuples, Count: len(tuples)})
}

type planResponse struct {
	Rule  string   `json:"rule"`
	Plans []string `json:"plans"`
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	rule := r.URL.Query().Get("rule")
	if rule == "" {
		writeJSON(w, http.StatusOK, struct {
			Rules []string `json:"rules"`
		}{Rules: s.sys.RuleNames()})
		return
	}
	plans, err := s.sys.Plans(rule)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	resp := planResponse{Rule: rule}
	for _, p := range plans {
		resp.Plans = append(resp.Plans, p.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.Metrics())
}

func (s *Server) handleMetricsText(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.sys.Metrics().String())
}

type recoveryResponse struct {
	Recovered  bool  `json:"recovered"`
	Checkpoint bool  `json:"checkpoint"`
	Tuples     int   `json:"tuples"`
	Txns       int   `json:"txns"`
	Ops        int   `json:"ops"`
	TornTail   bool  `json:"torn_tail"`
	ElapsedNS  int64 `json:"elapsed_ns"`
}

func (s *Server) handleRecovery(w http.ResponseWriter, r *http.Request) {
	rec := s.sys.Recovery()
	writeJSON(w, http.StatusOK, recoveryResponse{
		Recovered: rec.Recovered, Checkpoint: rec.Checkpoint, Tuples: rec.Tuples,
		Txns: rec.Txns, Ops: rec.Ops, TornTail: rec.TornTail,
		ElapsedNS: rec.Elapsed.Nanoseconds(),
	})
}

// handleWALFeed streams the WAL to a replica (internal/replica
// protocol). Long-lived; ends on client disconnect or drain.
func (s *Server) handleWALFeed(w http.ResponseWriter, r *http.Request) {
	replica.ServeFeed(w, r, replica.FeedConfig{
		Log:       s.sys.WALLog(),
		Stats:     s.stats,
		Poll:      s.cfg.FeedPoll,
		Heartbeat: s.cfg.FeedHeartbeat,
		Done:      s.drainCh,
	})
}

type promoteResponse struct {
	Promoted     bool     `json:"promoted"`
	Epoch        uint64   `json:"epoch"`
	Matcher      string   `json:"matcher,omitempty"`
	RulesChecked int      `json:"rules_checked"`
	Divergences  []string `json:"divergences,omitempty"`
}

// handlePromote turns a replica into a primary: stop the feed client,
// truncate the mirrored log to its last complete committed unit, pass
// the full-audit promotion gate, bump the epoch (the fencing token),
// open writes. A failed gate leaves the node a replica and returns 409
// with the divergences.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !s.sys.IsReplica() {
		s.writeErr(w, prodsys.ErrNotReplica)
		return
	}
	if s.cfg.StopReplication != nil {
		s.cfg.StopReplication()
	}
	rep, err := s.sys.Promote()
	resp := promoteResponse{Promoted: err == nil}
	if epoch, _, ok := s.sys.WALPosition(); ok {
		resp.Epoch = epoch
	}
	if rep != nil {
		resp.Matcher = rep.Matcher
		resp.RulesChecked = rep.RulesChecked
		for _, d := range rep.Divergences {
			resp.Divergences = append(resp.Divergences, d.String())
		}
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, prodsys.ErrPromotionGate) || errors.Is(err, prodsys.ErrNotReplica) {
			status = http.StatusConflict
		}
		writeJSON(w, status, struct {
			promoteResponse
			Error string `json:"error"`
		}{resp, err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type replicationResponse struct {
	Role         string `json:"role"` // "primary" | "replica"
	Primary      string `json:"primary,omitempty"`
	Epoch        uint64 `json:"epoch"`
	Offset       int64  `json:"offset"`
	LagBytes     int64  `json:"lag_bytes"`
	TxnsApplied  int64  `json:"txns_applied"`
	Snapshots    int64  `json:"snapshots"`
	FeedsServed  int64  `json:"feeds_served"`
	Promotions   int64  `json:"promotions"`
	FencedWrites int64  `json:"fenced_writes"`
}

// handleReplication reports the node's replication state: role, feed
// cursor, and lag (meaningful on a replica).
func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	epoch, off, _ := s.sys.WALPosition()
	rs := s.sys.Metrics().Replication
	resp := replicationResponse{
		Role: "primary", Epoch: epoch, Offset: off,
		LagBytes: rs.LagBytes, TxnsApplied: rs.TxnsApplied, Snapshots: rs.Snapshots,
		FeedsServed: rs.FeedsServed, Promotions: rs.Promotions, FencedWrites: rs.FencedWrites,
	}
	if s.sys.IsReplica() {
		resp.Role = "replica"
		resp.Primary = s.sys.ReplicaOf()
	}
	writeJSON(w, http.StatusOK, resp)
}

type conflictsResponse struct {
	Keys  []string `json:"keys"`
	Count int      `json:"count"`
}

// handleConflicts returns the conflict set's instantiation keys in
// sorted order — the byte-comparable fingerprint the failover drill
// checks between a promoted replica and its re-synced peer.
func (s *Server) handleConflicts(w http.ResponseWriter, r *http.Request) {
	keys := s.sys.ConflictKeys()
	if keys == nil {
		keys = []string{}
	}
	sort.Strings(keys)
	writeJSON(w, http.StatusOK, conflictsResponse{Keys: keys, Count: len(keys)})
}

type healthResponse struct {
	Status   string `json:"status"` // "serving" | "read_only" | "draining"
	ReadOnly bool   `json:"read_only"`
	Draining bool   `json:"draining"`
	Cause    string `json:"cause,omitempty"`
	UptimeNS int64  `json:"uptime_ns"`
}

// handleHealthz is liveness: 200 as long as the process serves
// queries — including read-only degraded mode, where the whole point
// is that query service stays up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "serving", UptimeNS: time.Since(s.startedAt).Nanoseconds()}
	if s.sys.ReadOnly() {
		resp.Status = "read_only"
		resp.ReadOnly = true
		if c := s.sys.ReadOnlyCause(); c != nil {
			resp.Cause = c.Error()
		}
	}
	if s.draining.Load() {
		resp.Status = "draining"
		resp.Draining = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz is readiness: 503 once the system can no longer accept
// writes (read-only or draining), so load balancers steer traffic away
// while healthz keeps the process alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || s.sys.ReadOnly() {
		s.handleHealthzStatus(w, http.StatusServiceUnavailable)
		return
	}
	s.handleHealthzStatus(w, http.StatusOK)
}

func (s *Server) handleHealthzStatus(w http.ResponseWriter, status int) {
	resp := healthResponse{Status: "serving", UptimeNS: time.Since(s.startedAt).Nanoseconds()}
	if s.sys.ReadOnly() {
		resp.Status = "read_only"
		resp.ReadOnly = true
	}
	if s.draining.Load() {
		resp.Status = "draining"
		resp.Draining = true
	}
	writeJSON(w, status, resp)
}

// errEmptyBody distinguishes "no body" (fine for request types whose
// zero value is a valid request) from malformed JSON.
var errEmptyBody = errors.New("server: empty request body")

// decodeJSON decodes a request body with UseNumber so integer values
// survive as int64 rather than drifting through float64.
func decodeJSON(r *http.Request, v any) error {
	if r.Body == nil {
		return errEmptyBody
	}
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return errEmptyBody
		}
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

// decodedValues converts JSON-decoded values into the types toValue
// accepts: json.Number becomes int64 when integral, float64 otherwise;
// strings pass through as symbols.
func decodedValues(in []any) []any {
	out := make([]any, len(in))
	for i, v := range in {
		switch x := v.(type) {
		case json.Number:
			if n, err := strconv.ParseInt(string(x), 10, 64); err == nil {
				out[i] = n
			} else if f, err := x.Float64(); err == nil {
				out[i] = f
			} else {
				out[i] = string(x)
			}
		default:
			out[i] = v
		}
	}
	return out
}
