// Package trace is the execution tracing and per-rule profiling layer.
//
// A Tracer is created once per system and handed to the engine, the
// matchers, the lock manager and the conflict set at load time. While
// disabled (the default) every entry point is a nil-safe no-op with a
// lock-free fast path — a single atomic load, no clock read, and no
// allocation — so instrumented hot paths cost nothing in production.
//
// When enabled, emit points record typed Events into a fixed-capacity
// ring buffer (oldest events are overwritten on overflow) while
// per-rule and per-condition-element aggregates are maintained
// incrementally at emit time, so Profile and Explain stay exact even
// after the ring has wrapped.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies the type of a trace event.
type Kind uint8

const (
	KindNone Kind = iota
	// Storage layer.
	KindTupleInsert // a tuple entered working memory (Dur covers match maintenance)
	KindTupleDelete // a tuple left working memory (Dur covers match maintenance)
	// Match layer.
	KindCondScan         // a condition-element scan / alpha test pass (Count = patterns or candidates checked)
	KindPatternPropagate // matching patterns propagated to a COND relation (Count = patterns carried)
	KindJoinEval         // a join / token evaluation for one CE (Count = instantiations produced)
	// Conflict set.
	KindActivation   // an instantiation entered the conflict set
	KindDeactivation // an instantiation left the conflict set
	// Execution layer.
	KindRuleFire    // a selected instantiation's RHS executed (Extra = instantiation key)
	KindLockWait    // a lock request queued, then was granted or aborted (Dur = wait)
	KindLockAcquire // a transaction's whole lock plan was acquired (Count = requests)
	KindDeadlock    // the waits-for graph found a cycle; ID names the victim txn
	KindTxnCommit   // a rule-firing transaction committed
	KindTxnAbort    // a rule-firing transaction aborted (Extra = reason)
	// Batch layer.
	KindBatchApply    // a set-oriented delta was applied (Count = operations)
	KindShardMaintain // one shard's sub-delta ran a scheduler phase (ID = shard, Count = tuples, Extra = phase/worker)
	// Durability layer.
	KindWALAppend      // a committed unit was appended to the write-ahead log (Count = records)
	KindWALSync        // the log was fsynced (Dur = sync time)
	KindCheckpoint     // a checkpoint compaction ran (Count = tuples snapshotted)
	KindRecoveryReplay // recovery replayed the checkpoint + log tail (Count = units replayed)
	// Integrity layer.
	KindAuditRun        // an integrity audit pass completed (Count = divergences found)
	KindAuditDivergence // one divergence between derived state and ground truth (Extra = detail)
	KindRepair          // derived state was rebuilt after a divergence (Extra = scope)
	KindPanicContained  // a panicking firing or maintenance step was absorbed (Extra = value)
	KindReadOnly        // a WAL failure flipped the system read-only (Extra = cause)
	// Replication layer.
	KindReplicaApply // a shipped committed unit was applied on a replica (Count = ops, ID = epoch)
	KindReplicaLag   // a feed heartbeat measured replication lag (Count = lag bytes, ID = epoch)

	kindCount
)

var kindNames = [kindCount]string{
	KindNone:             "none",
	KindTupleInsert:      "tuple_insert",
	KindTupleDelete:      "tuple_delete",
	KindCondScan:         "cond_scan",
	KindPatternPropagate: "pattern_propagate",
	KindJoinEval:         "join_eval",
	KindActivation:       "activation",
	KindDeactivation:     "deactivation",
	KindRuleFire:         "rule_fire",
	KindLockWait:         "lock_wait",
	KindLockAcquire:      "lock_acquire",
	KindDeadlock:         "deadlock",
	KindTxnCommit:        "txn_commit",
	KindTxnAbort:         "txn_abort",
	KindBatchApply:       "batch_apply",
	KindShardMaintain:    "shard_maintain",
	KindWALAppend:        "wal_append",
	KindWALSync:          "wal_sync",
	KindCheckpoint:       "checkpoint",
	KindRecoveryReplay:   "recovery_replay",
	KindAuditRun:         "audit_run",
	KindAuditDivergence:  "audit_divergence",
	KindRepair:           "repair",
	KindPanicContained:   "panic_contained",
	KindReadOnly:         "read_only",
	KindReplicaApply:     "replica_apply",
	KindReplicaLag:       "replica_lag",
}

// String returns the stable snake_case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Kinds enumerates every event kind name in declaration order.
func Kinds() []string {
	out := make([]string, 0, kindCount-1)
	for k := Kind(1); k < kindCount; k++ {
		out = append(out, k.String())
	}
	return out
}

// Event is one structured trace record. Times are monotonic offsets
// from the tracer's start. CE is meaningful only for match-layer
// events; emitters use -1 when an event is rule-level only.
type Event struct {
	Seq   uint64        `json:"seq"`
	Kind  Kind          `json:"kind"`
	At    time.Duration `json:"at_ns"`
	Dur   time.Duration `json:"dur_ns,omitempty"`
	Rule  string        `json:"rule,omitempty"`
	CE    int           `json:"ce,omitempty"`
	Class string        `json:"class,omitempty"`
	ID    uint64        `json:"id,omitempty"`
	Count int64         `json:"count,omitempty"`
	Extra string        `json:"extra,omitempty"`
}

// Options configures a tracing run.
type Options struct {
	// Capacity bounds the event ring buffer. Zero means the default
	// (65536). On overflow the oldest events are dropped; profile
	// aggregates are maintained at emit time and are unaffected.
	Capacity int
}

// DefaultCapacity is the ring-buffer size used when Options.Capacity
// is zero.
const DefaultCapacity = 1 << 16

// CEInfo describes one condition element of a rule, for Explain.
type CEInfo struct {
	Class   string
	Negated bool
}

// RuleInfo describes a rule's condition elements, for Explain.
type RuleInfo struct {
	Name string
	CEs  []CEInfo
}

// Tracer records structured execution events. The zero value and the
// nil pointer are both valid, permanently disabled tracers.
type Tracer struct {
	on    atomic.Bool
	epoch atomic.Pointer[time.Time] // carries a monotonic reading

	mu       sync.Mutex
	buf      []Event // ring storage, len == capacity
	next     uint64  // total events accepted since Start
	kinds    [kindCount]int64
	rules    map[string]*ruleAgg
	last     map[string]Event // rule -> most recent RuleFire
	info     map[string]RuleInfo
	started  bool
	planText func(rule string) string // Explain's join-plan renderer
}

// New returns a disabled tracer ready to be wired through a system.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether events are currently being recorded. It is
// the lock-free fast path: safe on a nil receiver, a single atomic
// load otherwise.
func (t *Tracer) Enabled() bool {
	return t != nil && t.on.Load()
}

// Now returns the monotonic offset since Start, or 0 when disabled —
// so `t0 := tr.Now()` in a hot path never reads the clock unless a
// trace is active.
func (t *Tracer) Now() time.Duration {
	if !t.Enabled() {
		return 0
	}
	epoch := t.epoch.Load()
	if epoch == nil {
		return 0
	}
	return time.Since(*epoch)
}

// Start (re)starts recording: the ring, the aggregates and the clock
// epoch are reset. Rule metadata from SetRules is retained.
func (t *Tracer) Start(opts Options) {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	now := time.Now()
	t.epoch.Store(&now)
	t.mu.Lock()
	t.buf = make([]Event, capacity)
	t.next = 0
	t.kinds = [kindCount]int64{}
	t.rules = make(map[string]*ruleAgg)
	t.last = make(map[string]Event)
	t.started = true
	t.mu.Unlock()
	t.on.Store(true)
}

// Stop pauses recording; recorded events and aggregates remain
// readable. Start resumes with a fresh buffer.
func (t *Tracer) Stop() {
	if t == nil {
		return
	}
	t.on.Store(false)
}

// SetRules installs rule metadata used by Explain to name the classes
// behind each supporting tuple. Safe to call before Start.
func (t *Tracer) SetRules(rs []RuleInfo) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.info = make(map[string]RuleInfo, len(rs))
	for _, r := range rs {
		t.info[r.Name] = r
	}
}

// Emit records one event. When the tracer is disabled (or nil) this
// returns immediately without locking or allocating.
func (t *Tracer) Emit(ev Event) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	ev.Seq = t.next
	t.next++
	if n := len(t.buf); n > 0 {
		t.buf[ev.Seq%uint64(n)] = ev
	}
	if int(ev.Kind) < len(t.kinds) {
		t.kinds[ev.Kind]++
	}
	t.aggregate(ev)
	t.mu.Unlock()
}

// Events returns the retained events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	if n == 0 || t.next == 0 {
		return nil
	}
	if t.next <= n {
		out := make([]Event, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	oldest := t.next % n
	out := make([]Event, 0, n)
	out = append(out, t.buf[oldest:]...)
	out = append(out, t.buf[:oldest]...)
	return out
}

// Len returns the number of events currently retained in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := uint64(len(t.buf)); t.next > n {
		return int(n)
	}
	return int(t.next)
}

// Total returns the number of events accepted since Start, including
// any that have since been overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped returns how many events were overwritten by ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := uint64(len(t.buf)); t.next > n {
		return t.next - n
	}
	return 0
}

// KindCount returns how many events of kind k were accepted since
// Start (aggregated at emit time, immune to ring overflow).
func (t *Tracer) KindCount(k Kind) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(k) < len(t.kinds) {
		return t.kinds[k]
	}
	return 0
}
