package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ruleAgg accumulates per-rule costs at emit time, so profiles stay
// exact even after the event ring has wrapped.
type ruleAgg struct {
	matchTime     time.Duration
	matchOps      int64
	propTime      time.Duration
	propagations  int64
	activations   int64
	deactivations int64
	firings       int64
	fireTime      time.Duration
	lockTime      time.Duration
	lockAcquires  int64
	commits       int64
	aborts        int64
	ces           []ceAgg
}

type ceAgg struct {
	scans        int64
	scanTime     time.Duration
	joins        int64
	joinTime     time.Duration
	propagations int64
}

func (t *Tracer) ruleAggFor(name string) *ruleAgg {
	a := t.rules[name]
	if a == nil {
		a = &ruleAgg{}
		t.rules[name] = a
	}
	return a
}

func (a *ruleAgg) ceFor(i int) *ceAgg {
	for len(a.ces) <= i {
		a.ces = append(a.ces, ceAgg{})
	}
	return &a.ces[i]
}

// aggregate folds one event into the per-rule tables. Called under
// t.mu from Emit.
func (t *Tracer) aggregate(ev Event) {
	if ev.Rule == "" {
		return
	}
	a := t.ruleAggFor(ev.Rule)
	switch ev.Kind {
	case KindCondScan:
		a.matchTime += ev.Dur
		n := ev.Count
		if n <= 0 {
			n = 1
		}
		a.matchOps += n
		if ev.CE >= 0 {
			ce := a.ceFor(ev.CE)
			ce.scans += n
			ce.scanTime += ev.Dur
		}
	case KindJoinEval:
		a.matchTime += ev.Dur
		a.matchOps++
		if ev.CE >= 0 {
			ce := a.ceFor(ev.CE)
			ce.joins++
			ce.joinTime += ev.Dur
		}
	case KindPatternPropagate:
		a.propTime += ev.Dur
		n := ev.Count
		if n <= 0 {
			n = 1
		}
		a.propagations += n
		if ev.CE >= 0 {
			a.ceFor(ev.CE).propagations += n
		}
	case KindActivation:
		a.activations++
	case KindDeactivation:
		a.deactivations++
	case KindRuleFire:
		a.firings++
		a.fireTime += ev.Dur
		t.last[ev.Rule] = ev
	case KindLockWait, KindLockAcquire:
		a.lockTime += ev.Dur
		a.lockAcquires++
	case KindTxnCommit:
		a.commits++
	case KindTxnAbort:
		a.aborts++
	}
}

// CEProfile is the aggregated match cost of one condition element.
type CEProfile struct {
	Index        int
	Class        string
	Negated      bool
	Scans        int64         // patterns / candidates checked
	ScanTime     time.Duration // time in condition scans
	Joins        int64         // join evaluations
	JoinTime     time.Duration // time in join evaluations
	Propagations int64         // matching patterns propagated through this CE
}

// RuleProfile is the aggregated cost of one rule across a trace.
type RuleProfile struct {
	Name          string
	MatchTime     time.Duration // condition scans + join evaluations
	MatchOps      int64
	PropTime      time.Duration
	Propagations  int64
	Activations   int64
	Deactivations int64
	Firings       int64
	FireTime      time.Duration // RHS execution time
	LockTime      time.Duration // lock-plan acquisition time (concurrent runs)
	Commits       int64
	Aborts        int64
	CEs           []CEProfile
}

// Profile is a point-in-time per-rule cost table plus trace-wide
// event-kind totals.
type Profile struct {
	Total   uint64           // events accepted since Start
	Dropped uint64           // events lost to ring overflow
	Kinds   map[string]int64 // per-kind accepted counts
	Rules   []RuleProfile    // sorted by rule name
}

// Profile snapshots the per-rule aggregates.
func (t *Tracer) Profile() Profile {
	p := Profile{Kinds: map[string]int64{}}
	if t == nil {
		return p
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p.Total = t.next
	if n := uint64(len(t.buf)); t.next > n {
		p.Dropped = t.next - n
	}
	for k := Kind(1); k < kindCount; k++ {
		if t.kinds[k] != 0 {
			p.Kinds[k.String()] = t.kinds[k]
		}
	}
	p.Rules = make([]RuleProfile, 0, len(t.rules))
	for name, a := range t.rules {
		rp := RuleProfile{
			Name:          name,
			MatchTime:     a.matchTime,
			MatchOps:      a.matchOps,
			PropTime:      a.propTime,
			Propagations:  a.propagations,
			Activations:   a.activations,
			Deactivations: a.deactivations,
			Firings:       a.firings,
			FireTime:      a.fireTime,
			LockTime:      a.lockTime,
			Commits:       a.commits,
			Aborts:        a.aborts,
		}
		info, hasInfo := t.info[name]
		rp.CEs = make([]CEProfile, len(a.ces))
		for i, ce := range a.ces {
			cp := CEProfile{
				Index:        i,
				Scans:        ce.scans,
				ScanTime:     ce.scanTime,
				Joins:        ce.joins,
				JoinTime:     ce.joinTime,
				Propagations: ce.propagations,
			}
			if hasInfo && i < len(info.CEs) {
				cp.Class = info.CEs[i].Class
				cp.Negated = info.CEs[i].Negated
			}
			rp.CEs[i] = cp
		}
		p.Rules = append(p.Rules, rp)
	}
	sort.Slice(p.Rules, func(i, j int) bool { return p.Rules[i].Name < p.Rules[j].Name })
	return p
}

// Rule returns the profile row for one rule.
func (p Profile) Rule(name string) (RuleProfile, bool) {
	for _, r := range p.Rules {
		if r.Name == name {
			return r, true
		}
	}
	return RuleProfile{}, false
}

// String renders the profile as an aligned per-rule table.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %8s %12s %8s %6s %12s %10s %7s\n",
		"rule", "match", "m-ops", "propagate", "acts", "fires", "fire-time", "lock", "aborts")
	for _, r := range p.Rules {
		fmt.Fprintf(&b, "%-28s %12s %8d %12s %8d %6d %12s %10s %7d\n",
			r.Name, fmtDur(r.MatchTime), r.MatchOps, fmtDur(r.PropTime),
			r.Activations, r.Firings, fmtDur(r.FireTime), fmtDur(r.LockTime), r.Aborts)
	}
	fmt.Fprintf(&b, "events: %d accepted, %d dropped\n", p.Total, p.Dropped)
	if len(p.Kinds) > 0 {
		keys := make([]string, 0, len(p.Kinds))
		for k := range p.Kinds {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-20s %d\n", k, p.Kinds[k])
		}
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "0"
	}
	return d.Round(time.Microsecond).String()
}

// ExplainCE names one supporting condition element of a fired
// instantiation.
type ExplainCE struct {
	Index   int
	Class   string
	Negated bool
	TupleID uint64 // 0 for negated CEs (supported by absence)
}

// Explanation describes the most recent firing of a rule: which
// condition elements matched and which working-memory tuples
// supported the instantiation.
type Explanation struct {
	Rule    string
	Key     string // instantiation key (rule|id|id|...)
	At      time.Duration
	Dur     time.Duration
	Firings int64 // total firings of the rule so far
	CEs     []ExplainCE
	// Plan is the rendered join plan(s) for the rule — access path,
	// join position, and estimated vs actual cardinality per condition
	// element. Empty when no plan renderer is installed (planner
	// disabled) or the rule has no plans.
	Plan string
}

// String renders a human-readable explanation.
func (e Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s fired at %s (firing %d, rhs %s)\n", e.Rule, e.At.Round(time.Microsecond), e.Firings, fmtDur(e.Dur))
	for _, ce := range e.CEs {
		neg := ""
		if ce.Negated {
			neg = "absence of "
		}
		class := ce.Class
		if class == "" {
			class = "?"
		}
		if ce.Negated {
			fmt.Fprintf(&b, "  CE%d: %s%s matched (no blocking tuple)\n", ce.Index+1, neg, class)
		} else {
			fmt.Fprintf(&b, "  CE%d: %s supported by tuple %d\n", ce.Index+1, class, ce.TupleID)
		}
	}
	if e.Plan != "" {
		for _, line := range strings.Split(strings.TrimRight(e.Plan, "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}

// Explain reconstructs the most recent firing of the named rule from
// the trace: the supporting tuple IDs come from the instantiation key
// carried on the RuleFire event, and the class of each condition
// element from the rule metadata installed via SetRules.
func (t *Tracer) Explain(rule string) (Explanation, error) {
	ex, err := t.explain(rule)
	if err != nil {
		return ex, err
	}
	// Render the join plan outside t.mu: the renderer consults the
	// planner, which has its own locking.
	t.mu.Lock()
	render := t.planText
	t.mu.Unlock()
	if render != nil {
		ex.Plan = render(rule)
	}
	return ex, nil
}

// SetPlanText installs the join-plan renderer Explain appends to each
// explanation — a callback because the planner lives above this
// package in the import graph.
func (t *Tracer) SetPlanText(render func(rule string) string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.planText = render
	t.mu.Unlock()
}

// explain builds the plan-free part of an Explanation under t.mu.
func (t *Tracer) explain(rule string) (Explanation, error) {
	if t == nil {
		return Explanation{}, fmt.Errorf("trace: tracer is nil")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev, ok := t.last[rule]
	if !ok {
		return Explanation{}, fmt.Errorf("trace: no recorded firing for rule %q", rule)
	}
	ex := Explanation{Rule: rule, Key: ev.Extra, At: ev.At, Dur: ev.Dur}
	if a := t.rules[rule]; a != nil {
		ex.Firings = a.firings
	}
	info, hasInfo := t.info[rule]
	parts := strings.Split(ev.Extra, "|")
	// parts[0] is the rule name; the rest are supporting tuple IDs,
	// one per condition element (0 for negated CEs).
	ids := parts
	if len(parts) > 0 && parts[0] == rule {
		ids = parts[1:]
	}
	n := len(ids)
	if hasInfo && len(info.CEs) > n {
		n = len(info.CEs)
	}
	for i := 0; i < n; i++ {
		ce := ExplainCE{Index: i}
		if hasInfo && i < len(info.CEs) {
			ce.Class = info.CEs[i].Class
			ce.Negated = info.CEs[i].Negated
		}
		if i < len(ids) {
			if id, err := strconv.ParseUint(ids[i], 10, 64); err == nil {
				ce.TupleID = id
			}
		}
		ex.CEs = append(ex.CEs, ce)
	}
	return ex, nil
}
