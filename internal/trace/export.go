package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"time"
)

// WriteJSONL writes events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL exports the currently retained events as JSONL.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Events())
}

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto). Timestamps are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Unit        string        `json:"displayTimeUnit"`
}

// kindLane maps each event kind to a Chrome-trace (category, tid)
// lane so the layers render as separate tracks.
func kindLane(k Kind) (string, int) {
	switch k {
	case KindTupleInsert, KindTupleDelete:
		return "storage", 1
	case KindCondScan, KindPatternPropagate, KindJoinEval:
		return "match", 2
	case KindActivation, KindDeactivation:
		return "conflict", 3
	case KindRuleFire, KindTxnCommit, KindTxnAbort:
		return "execute", 4
	case KindLockWait, KindLockAcquire, KindDeadlock:
		return "lock", 5
	case KindBatchApply:
		return "batch", 6
	}
	return "other", 7
}

// WriteChromeTrace writes events in the Chrome trace_event JSON format
// (load in chrome://tracing or https://ui.perfetto.dev). Events with a
// duration become complete ("X") slices; instantaneous ones become
// instant ("i") marks.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), Unit: "ns"}
	for _, ev := range events {
		cat, tid := kindLane(ev.Kind)
		name := ev.Kind.String()
		if ev.Rule != "" {
			name += " " + ev.Rule
		} else if ev.Class != "" {
			name += " " + ev.Class
		}
		ce := chromeEvent{
			Name: name,
			Cat:  cat,
			TS:   float64(ev.At) / float64(time.Microsecond),
			PID:  1,
			TID:  tid,
			Args: map[string]any{"seq": ev.Seq},
		}
		if ev.Rule != "" {
			ce.Args["rule"] = ev.Rule
		}
		if cat == "match" && ev.CE >= 0 {
			ce.Args["ce"] = ev.CE
		}
		if ev.Class != "" {
			ce.Args["class"] = ev.Class
		}
		if ev.ID != 0 {
			ce.Args["id"] = ev.ID
		}
		if ev.Count != 0 {
			ce.Args["count"] = ev.Count
		}
		if ev.Extra != "" {
			ce.Args["extra"] = ev.Extra
		}
		if ev.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = float64(ev.Dur) / float64(time.Microsecond)
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTrace exports the currently retained events in Chrome
// trace_event format.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Events())
}
