package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRingOverflow(t *testing.T) {
	tr := New()
	tr.Start(Options{Capacity: 8})
	for i := 0; i < 20; i++ {
		tr.Emit(Event{Kind: KindRuleFire, Rule: "r", Count: int64(i)})
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(12 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d (oldest-first order)", i, ev.Seq, wantSeq)
		}
	}
	if got := tr.Total(); got != 20 {
		t.Fatalf("Total = %d, want 20", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	// Aggregates must survive the overflow.
	p := tr.Profile()
	if p.Total != 20 || p.Dropped != 12 {
		t.Fatalf("Profile totals = %d/%d, want 20/12", p.Total, p.Dropped)
	}
	rp, ok := p.Rule("r")
	if !ok || rp.Firings != 20 {
		t.Fatalf("rule r firings = %d (ok=%v), want 20: overflow must not lose aggregates", rp.Firings, ok)
	}
	if got := tr.KindCount(KindRuleFire); got != 20 {
		t.Fatalf("KindCount(rule_fire) = %d, want 20", got)
	}
}

func TestDisabledFastPathDoesNotAllocate(t *testing.T) {
	var nilTr *Tracer
	fresh := New()
	stopped := New()
	stopped.Start(Options{Capacity: 16})
	stopped.Stop()
	for name, tr := range map[string]*Tracer{"nil": nilTr, "fresh": fresh, "stopped": stopped} {
		allocs := testing.AllocsPerRun(200, func() {
			t0 := tr.Now()
			tr.Emit(Event{Kind: KindJoinEval, At: t0, Dur: tr.Now() - t0, Rule: "r", CE: 1, Class: "c", Count: 3})
			if tr.Enabled() {
				t.Fatal("tracer should be disabled")
			}
		})
		if allocs != 0 {
			t.Fatalf("%s disabled tracer allocated %.1f per op, want 0", name, allocs)
		}
	}
	if nilTr.Now() != 0 || fresh.Now() != 0 {
		t.Fatal("disabled Now() must return 0 without reading the clock")
	}
}

func TestProfileAggregation(t *testing.T) {
	tr := New()
	tr.SetRules([]RuleInfo{{Name: "r1", CEs: []CEInfo{{Class: "Emp"}, {Class: "Dept", Negated: true}}}})
	tr.Start(Options{Capacity: 64})
	tr.Emit(Event{Kind: KindCondScan, Rule: "r1", CE: 0, Class: "Emp", Count: 5, Dur: 10 * time.Microsecond})
	tr.Emit(Event{Kind: KindJoinEval, Rule: "r1", CE: 1, Class: "Dept", Count: 2, Dur: 20 * time.Microsecond})
	tr.Emit(Event{Kind: KindPatternPropagate, Rule: "r1", CE: 1, Class: "Dept", Count: 3, Dur: 5 * time.Microsecond})
	tr.Emit(Event{Kind: KindActivation, Rule: "r1"})
	tr.Emit(Event{Kind: KindRuleFire, Rule: "r1", Dur: 7 * time.Microsecond, Extra: "r1|4|0"})
	tr.Emit(Event{Kind: KindDeactivation, Rule: "r1"})
	tr.Emit(Event{Kind: KindLockAcquire, Rule: "r1", Dur: 3 * time.Microsecond})
	tr.Emit(Event{Kind: KindTxnCommit, Rule: "r1"})
	tr.Emit(Event{Kind: KindTxnAbort, Rule: "r1", Extra: "deadlock"})
	// Rule-less events must not create profile rows.
	tr.Emit(Event{Kind: KindLockWait, ID: 9, Dur: time.Microsecond})

	p := tr.Profile()
	if len(p.Rules) != 1 {
		t.Fatalf("profile has %d rules, want 1", len(p.Rules))
	}
	r, _ := p.Rule("r1")
	if r.MatchTime != 30*time.Microsecond {
		t.Errorf("MatchTime = %v, want 30µs", r.MatchTime)
	}
	if r.MatchOps != 6 { // 5 scanned patterns + 1 join eval
		t.Errorf("MatchOps = %d, want 6", r.MatchOps)
	}
	if r.PropTime != 5*time.Microsecond || r.Propagations != 3 {
		t.Errorf("prop = %v/%d, want 5µs/3", r.PropTime, r.Propagations)
	}
	if r.Activations != 1 || r.Deactivations != 1 {
		t.Errorf("acts = %d/%d, want 1/1", r.Activations, r.Deactivations)
	}
	if r.Firings != 1 || r.FireTime != 7*time.Microsecond {
		t.Errorf("firings = %d/%v, want 1/7µs", r.Firings, r.FireTime)
	}
	if r.LockTime != 3*time.Microsecond {
		t.Errorf("LockTime = %v, want 3µs", r.LockTime)
	}
	if r.Commits != 1 || r.Aborts != 1 {
		t.Errorf("commits/aborts = %d/%d, want 1/1", r.Commits, r.Aborts)
	}
	if len(r.CEs) != 2 {
		t.Fatalf("rule has %d CE rows, want 2", len(r.CEs))
	}
	if r.CEs[0].Class != "Emp" || r.CEs[0].Scans != 5 || r.CEs[0].ScanTime != 10*time.Microsecond {
		t.Errorf("CE0 = %+v, want Emp/5 scans/10µs", r.CEs[0])
	}
	if r.CEs[1].Class != "Dept" || !r.CEs[1].Negated || r.CEs[1].Joins != 1 || r.CEs[1].Propagations != 3 {
		t.Errorf("CE1 = %+v, want Dept negated 1 join 3 props", r.CEs[1])
	}
	if p.Kinds["rule_fire"] != 1 || p.Kinds["lock_wait"] != 1 {
		t.Errorf("kind counts = %v", p.Kinds)
	}
	if !strings.Contains(p.String(), "r1") {
		t.Error("Profile.String() must mention the rule")
	}
}

func TestExplain(t *testing.T) {
	tr := New()
	tr.SetRules([]RuleInfo{{Name: "r1", CEs: []CEInfo{{Class: "Emp"}, {Class: "Dept", Negated: true}}}})
	tr.Start(Options{})
	if _, err := tr.Explain("r1"); err == nil {
		t.Fatal("Explain before any firing must error")
	}
	tr.Emit(Event{Kind: KindRuleFire, Rule: "r1", At: time.Millisecond, Dur: 2 * time.Microsecond, Extra: "r1|42|0"})
	ex, err := tr.Explain("r1")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Rule != "r1" || ex.Key != "r1|42|0" || ex.Firings != 1 {
		t.Fatalf("explanation = %+v", ex)
	}
	if len(ex.CEs) != 2 {
		t.Fatalf("explanation has %d CEs, want 2", len(ex.CEs))
	}
	if ex.CEs[0].Class != "Emp" || ex.CEs[0].TupleID != 42 || ex.CEs[0].Negated {
		t.Errorf("CE0 = %+v, want Emp tuple 42", ex.CEs[0])
	}
	if ex.CEs[1].Class != "Dept" || !ex.CEs[1].Negated || ex.CEs[1].TupleID != 0 {
		t.Errorf("CE1 = %+v, want negated Dept", ex.CEs[1])
	}
	s := ex.String()
	if !strings.Contains(s, "Emp") || !strings.Contains(s, "42") || !strings.Contains(s, "Dept") {
		t.Errorf("Explanation.String() = %q", s)
	}
	if _, err := tr.Explain("ghost"); err == nil {
		t.Error("Explain of unknown rule must error")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New()
	tr.Start(Options{Capacity: 16})
	tr.Emit(Event{Kind: KindTupleInsert, Class: "Emp", ID: 1, Dur: time.Microsecond})
	tr.Emit(Event{Kind: KindRuleFire, Rule: "r1", Extra: "r1|1"})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if _, ok := m["kind"].(string); !ok {
			t.Fatalf("line %d has no string kind: %v", lines, m)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := New()
	tr.Start(Options{Capacity: 16})
	tr.Emit(Event{Kind: KindCondScan, Rule: "r1", CE: 0, Class: "Emp", Count: 4, At: time.Millisecond, Dur: 3 * time.Microsecond})
	tr.Emit(Event{Kind: KindDeadlock, ID: 7})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("chrome trace has %d events, want 2", len(out.TraceEvents))
	}
	first := out.TraceEvents[0]
	if first["ph"] != "X" {
		t.Errorf("timed event phase = %v, want X", first["ph"])
	}
	if first["ts"].(float64) != 1000 { // 1ms in µs
		t.Errorf("ts = %v, want 1000", first["ts"])
	}
	if out.TraceEvents[1]["ph"] != "i" {
		t.Errorf("instant event phase = %v, want i", out.TraceEvents[1]["ph"])
	}
}

func TestStartResetsAndStopRetains(t *testing.T) {
	tr := New()
	tr.Start(Options{Capacity: 8})
	tr.Emit(Event{Kind: KindRuleFire, Rule: "a"})
	tr.Stop()
	if tr.Enabled() {
		t.Fatal("Stop must disable")
	}
	tr.Emit(Event{Kind: KindRuleFire, Rule: "a"}) // dropped: disabled
	if tr.Total() != 1 {
		t.Fatalf("Total after Stop = %d, want 1", tr.Total())
	}
	if len(tr.Events()) != 1 {
		t.Fatal("events must remain readable after Stop")
	}
	tr.Start(Options{Capacity: 8})
	if tr.Total() != 0 || len(tr.Events()) != 0 {
		t.Fatal("Start must reset the buffer and counters")
	}
	if len(tr.Profile().Rules) != 0 {
		t.Fatal("Start must reset aggregates")
	}
}

func TestKindNames(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range Kinds() {
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("bad or duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if !seen["rule_fire"] || !seen["txn_abort"] || !seen["batch_apply"] {
		t.Fatalf("missing expected kind names: %v", seen)
	}
	b, err := KindRuleFire.MarshalJSON()
	if err != nil || string(b) != `"rule_fire"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
}
