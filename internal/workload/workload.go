// Package workload generates the synthetic rule programs and update
// streams driving the experiment harness: the payroll database of the
// paper's Example 3, the C1∧…∧Cn chain of Figure 1, the algebra
// simplification rules of Example 2, overlapping-condition rule sets for
// the false-drop experiment, and independent/skewed task pools for the
// concurrency experiments.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"prodsys/internal/relation"
	"prodsys/internal/value"
)

// Op is one working-memory change: an insertion carrying a tuple, or a
// deletion of a previously inserted live tuple (resolved by the driver).
type Op struct {
	Delete bool
	Class  string
	Tuple  relation.Tuple // insertions only
}

// PayrollRules builds a rule set of n two-way-join rules over Emp/Dept,
// in the shape of Example 3: rule i matches employees of a salary band in
// departments on a given floor. Action "remove" consumes the employee;
// action "halt"-free match-only variants keep the conflict set growing.
func PayrollRules(n int, consuming bool) string {
	var b strings.Builder
	b.WriteString("(literalize Emp name age salary dno)\n")
	b.WriteString("(literalize Dept dno dname floor)\n")
	for i := 0; i < n; i++ {
		lo := (i % 20) * 500
		floor := i%5 + 1
		action := "(make Dept ^dno -1 ^dname log ^floor 0)"
		if consuming {
			action = "(remove 1)"
		}
		fmt.Fprintf(&b, `(p pay-%d
    (Emp ^salary > %d ^dno <d>)
    (Dept ^dno <d> ^floor %d)
  -->
    %s)
`, i, lo, floor, action)
	}
	return b.String()
}

// PayrollOps generates a deterministic stream of n operations over the
// payroll classes: inserts of employees and departments with deleteFrac
// of operations deleting a live tuple.
func PayrollOps(seed int64, n int, deleteFrac float64) []Op {
	r := rand.New(rand.NewSource(seed))
	live := 0
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		if live > 0 && r.Float64() < deleteFrac {
			cls := "Emp"
			if r.Intn(4) == 0 {
				cls = "Dept"
			}
			ops = append(ops, Op{Delete: true, Class: cls})
			live--
			continue
		}
		if r.Intn(4) == 0 {
			ops = append(ops, Op{Class: "Dept", Tuple: relation.Tuple{
				value.OfInt(int64(r.Intn(50))),
				value.OfSym(fmt.Sprintf("dept%d", r.Intn(10))),
				value.OfInt(int64(r.Intn(5) + 1)),
			}})
		} else {
			ops = append(ops, Op{Class: "Emp", Tuple: relation.Tuple{
				value.OfSym(fmt.Sprintf("e%d", i)),
				value.OfInt(int64(20 + r.Intn(45))),
				value.OfInt(int64(r.Intn(10000))),
				value.OfInt(int64(r.Intn(50))),
			}})
		}
		live++
	}
	return ops
}

// ChainRules builds the Figure 1 workload: one rule whose LHS is a chain
// C0 ∧ C1 ∧ … ∧ Cn-1, adjacent condition elements joined on a shared
// variable.
func ChainRules(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "(literalize K%d v w)\n", i)
	}
	b.WriteString("(p chain\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    (K%d ^v <x%d> ^w <x%d>)\n", i, i, i+1)
	}
	b.WriteString("  -->\n    (make K0 ^v -1 ^w -1))\n")
	return b.String()
}

// ChainLink builds the tuple of class Ki completing one link of the
// chain for the given chain instance c: (c+i, c+i+1).
func ChainLink(c, i int) (string, relation.Tuple) {
	return fmt.Sprintf("K%d", i), relation.Tuple{
		value.OfInt(int64(c*1000 + i)),
		value.OfInt(int64(c*1000 + i + 1)),
	}
}

// SimplifyRules is the PlusOX/TimesOX program of Example 2.
func SimplifyRules() string {
	return `
(literalize Goal type object)
(literalize Expression name arg1 op arg2)
(p PlusOX
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op + ^arg2 <X>)
  -->
    (modify 2 ^op nil ^arg1 nil))
(p TimesOX
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op * ^arg2 <X>)
  -->
    (modify 2 ^op nil ^arg1 nil))
`
}

// SimplifyFacts generates n goal/expression pairs, frac of them
// simplifiable (arg1 = 0).
func SimplifyFacts(seed int64, n int, frac float64) []Op {
	r := rand.New(rand.NewSource(seed))
	ops := make([]Op, 0, 2*n)
	for i := 0; i < n; i++ {
		name := value.OfSym(fmt.Sprintf("expr%d", i))
		ops = append(ops, Op{Class: "Goal", Tuple: relation.Tuple{value.OfSym("Simplify"), name}})
		arg1 := value.OfInt(int64(r.Intn(9) + 1))
		if r.Float64() < frac {
			arg1 = value.OfInt(0)
		}
		op := "+"
		if r.Intn(2) == 0 {
			op = "*"
		}
		ops = append(ops, Op{Class: "Expression", Tuple: relation.Tuple{
			name, arg1, value.OfSym(op), value.OfInt(int64(r.Intn(100))),
		}})
	}
	return ops
}

// OverlapRules builds n two-way-join rules whose salary intervals overlap
// pairwise by roughly the given factor in [0,1): with overlap 0 the
// intervals partition the salary domain; as overlap grows every interval
// covers more of its neighbours, so a single insertion hits the read set
// of more rules — the sharing that drives Basic Locking false drops
// (§2.3). Each rule i joins the employee's department against a specific
// department name; only half of those departments ever exist, so a woken
// rule often has no completing join — a false drop.
func OverlapRules(n int, overlap float64) string {
	var b strings.Builder
	b.WriteString("(literalize Emp name salary dno)\n")
	b.WriteString("(literalize Dept dno dname)\n")
	const domain = 10000
	width := float64(domain) / float64(n)
	span := width * (1 + overlap*float64(n-1))
	for i := 0; i < n; i++ {
		lo := int(float64(i) * width)
		hi := lo + int(span)
		if hi > domain {
			hi = domain
		}
		fmt.Fprintf(&b, `(p band-%d
    (Emp ^salary > %d ^salary < %d ^dno <d>)
    (Dept ^dno <d> ^dname dept%d)
  -->
    (remove 1))
`, i, lo, hi, i%10)
	}
	return b.String()
}

// OverlapOps generates employee inserts with salaries uniform over the
// domain, plus a fixed set of departments inserted first. Only the
// departments named dept0..dept4 exist, so rules joining dept5..dept9
// can never complete.
func OverlapOps(seed int64, n int) []Op {
	r := rand.New(rand.NewSource(seed))
	ops := make([]Op, 0, n+5)
	for d := 0; d < 5; d++ {
		ops = append(ops, Op{Class: "Dept", Tuple: relation.Tuple{
			value.OfInt(int64(d)), value.OfSym(fmt.Sprintf("dept%d", d)),
		}})
	}
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Class: "Emp", Tuple: relation.Tuple{
			value.OfSym(fmt.Sprintf("e%d", i)),
			value.OfInt(int64(r.Intn(10000))),
			value.OfInt(int64(r.Intn(5))),
		}})
	}
	return ops
}

// TaskRules builds the concurrency workload of E7: k task classes, one
// consuming rule per class. With skewed=true all rules consume from a
// single class, collapsing available parallelism (the paper's worst case:
// "this will reduce to the time taken for a serial execution").
func TaskRules(k int, skewed bool) string {
	var b strings.Builder
	b.WriteString("(literalize Done id)\n")
	classes := k
	if skewed {
		classes = 1
	}
	for i := 0; i < classes; i++ {
		fmt.Fprintf(&b, "(literalize T%d id)\n", i)
	}
	for i := 0; i < k; i++ {
		cls := i
		if skewed {
			cls = 0
		}
		fmt.Fprintf(&b, "(p consume-%d (T%d ^id <x>) --> (remove 1) (make Done ^id <x>))\n", i, cls)
	}
	return b.String()
}

// TaskFacts generates m tasks spread across the k task classes (one class
// when skewed).
func TaskFacts(k int, skewed bool, m int) []Op {
	classes := k
	if skewed {
		classes = 1
	}
	ops := make([]Op, 0, m)
	for i := 0; i < m; i++ {
		ops = append(ops, Op{
			Class: fmt.Sprintf("T%d", i%classes),
			Tuple: relation.Tuple{value.OfInt(int64(i))},
		})
	}
	return ops
}

// StarRules builds a hub-and-satellite rule: one Hub condition element
// sharing a distinct variable with each of k satellite classes. Every Hub
// insertion must propagate its bindings to k COND relations — the widest
// fan-out for the parallel-propagation experiment (§4.2.3).
func StarRules(k int) string {
	var b strings.Builder
	b.WriteString("(literalize Hub")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, " a%d", i)
	}
	b.WriteString(")\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "(literalize S%d x)\n", i)
	}
	b.WriteString("(p star\n    (Hub")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, " ^a%d <v%d>", i, i)
	}
	b.WriteString(")\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "    (S%d ^x <v%d>)\n", i, i)
	}
	b.WriteString("  -->\n    (remove 1))\n")
	return b.String()
}

// StarHub builds the nth hub tuple for a k-satellite star.
func StarHub(k, n int) relation.Tuple {
	t := make(relation.Tuple, k)
	for i := range t {
		t[i] = value.OfInt(int64(n*100 + i))
	}
	return t
}

// ManufacturingRules is a small forward-chaining job-shop program: orders
// advance through cut, drill and polish stations; a station can reject an
// order lacking its prerequisite.
func ManufacturingRules() string {
	return `
(literalize Order id stage)
(literalize Station name free)
(literalize Log id stage)

(p start-cut
    (Order ^id <o> ^stage new)
    (Station ^name cutter ^free yes)
  -->
    (modify 1 ^stage cut)
    (make Log ^id <o> ^stage cut))

(p cut-to-drill
    (Order ^id <o> ^stage cut)
    (Station ^name drill ^free yes)
  -->
    (modify 1 ^stage drilled)
    (make Log ^id <o> ^stage drilled))

(p drill-to-polish
    (Order ^id <o> ^stage drilled)
    (Station ^name polisher ^free yes)
  -->
    (modify 1 ^stage done)
    (make Log ^id <o> ^stage done))
`
}

// ManufacturingFacts generates n orders plus the three stations.
func ManufacturingFacts(n int) []Op {
	ops := []Op{
		{Class: "Station", Tuple: relation.Tuple{value.OfSym("cutter"), value.OfSym("yes")}},
		{Class: "Station", Tuple: relation.Tuple{value.OfSym("drill"), value.OfSym("yes")}},
		{Class: "Station", Tuple: relation.Tuple{value.OfSym("polisher"), value.OfSym("yes")}},
	}
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Class: "Order", Tuple: relation.Tuple{
			value.OfInt(int64(i)), value.OfSym("new"),
		}})
	}
	return ops
}
