package workload

import (
	"reflect"
	"testing"

	"prodsys/internal/rules"
)

func mustCompile(t *testing.T, src string) *rules.Set {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatalf("workload source does not compile: %v\n%s", err, src)
	}
	return set
}

func TestPayrollRulesCompile(t *testing.T) {
	for _, consuming := range []bool{true, false} {
		set := mustCompile(t, PayrollRules(25, consuming))
		if len(set.Rules) != 25 {
			t.Fatalf("rules = %d", len(set.Rules))
		}
	}
}

func TestPayrollOpsDeterministic(t *testing.T) {
	a := PayrollOps(7, 200, 0.2)
	b := PayrollOps(7, 200, 0.2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give same stream")
	}
	if len(a) != 200 {
		t.Fatalf("ops = %d", len(a))
	}
	var deletes int
	for _, op := range a {
		if op.Delete {
			deletes++
			if op.Tuple != nil {
				t.Fatal("delete op carries a tuple")
			}
		} else if op.Tuple == nil {
			t.Fatal("insert op lacks tuple")
		}
	}
	if deletes == 0 {
		t.Fatal("stream should include deletes")
	}
}

func TestChainRulesCompileAndLink(t *testing.T) {
	for _, n := range []int{2, 4, 16} {
		set := mustCompile(t, ChainRules(n))
		r := set.Rules[0]
		if len(r.CEs) != n {
			t.Fatalf("chain(%d) has %d CEs", n, len(r.CEs))
		}
	}
	cls, tup := ChainLink(3, 2)
	if cls != "K2" || tup[0].AsInt() != 3002 || tup[1].AsInt() != 3003 {
		t.Fatalf("ChainLink = %s %v", cls, tup)
	}
}

func TestSimplifyWorkload(t *testing.T) {
	mustCompile(t, SimplifyRules())
	ops := SimplifyFacts(3, 50, 0.5)
	if len(ops) != 100 {
		t.Fatalf("ops = %d", len(ops))
	}
	var simplifiable int
	for _, op := range ops {
		if op.Class == "Expression" && op.Tuple[1].AsInt() == 0 {
			simplifiable++
		}
	}
	if simplifiable < 10 || simplifiable > 40 {
		t.Fatalf("simplifiable fraction off: %d/50", simplifiable)
	}
}

func TestOverlapRules(t *testing.T) {
	tight := mustCompile(t, OverlapRules(10, 0))
	wide := mustCompile(t, OverlapRules(10, 0.9))
	if len(tight.Rules) != 10 || len(wide.Rules) != 10 {
		t.Fatal("rule counts")
	}
	ops := OverlapOps(1, 100)
	if len(ops) != 105 {
		t.Fatalf("ops = %d", len(ops))
	}
	if ops[0].Class != "Dept" {
		t.Fatal("departments must come first")
	}
}

func TestTaskWorkload(t *testing.T) {
	spread := mustCompile(t, TaskRules(4, false))
	if len(spread.Classes) != 5 { // 4 task classes + Done
		t.Fatalf("classes = %d", len(spread.Classes))
	}
	skewed := mustCompile(t, TaskRules(4, true))
	if len(skewed.Classes) != 2 { // T0 + Done
		t.Fatalf("skewed classes = %d", len(skewed.Classes))
	}
	facts := TaskFacts(4, false, 12)
	seen := map[string]int{}
	for _, op := range facts {
		seen[op.Class]++
	}
	if len(seen) != 4 || seen["T0"] != 3 {
		t.Fatalf("fact spread = %v", seen)
	}
	skFacts := TaskFacts(4, true, 12)
	for _, op := range skFacts {
		if op.Class != "T0" {
			t.Fatal("skewed facts must target T0")
		}
	}
}

func TestManufacturingWorkload(t *testing.T) {
	mustCompile(t, ManufacturingRules())
	facts := ManufacturingFacts(5)
	if len(facts) != 8 {
		t.Fatalf("facts = %d", len(facts))
	}
}
