package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"prodsys"
	"prodsys/internal/metrics"
	"prodsys/internal/trace"
	"prodsys/internal/wal"
)

// Client tails a primary's feed and applies it to a replica System:
// snapshots bootstrap, record runs are mirrored into the local log and
// their committed units applied, resets mirror primary checkpoints,
// heartbeats update the lag gauge. Reconnects with jittered backoff;
// any stream inconsistency is handled by dropping the connection — the
// resumed cursor (the local log position) makes the feed re-bootstrap
// when needed.
type Client struct {
	Sys     *prodsys.System
	Primary string // primary base URL, e.g. "http://host:7480"
	// HTTP overrides the transport; nil means a default client with no
	// overall timeout (the feed is a long-lived stream).
	HTTP *http.Client
	// Logf receives connection-lifecycle messages. May be nil.
	Logf func(format string, args ...any)

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// NewClient builds a feed client for sys against the primary base URL.
func NewClient(sys *prodsys.System, primary string) *Client {
	ctx, cancel := context.WithCancel(context.Background())
	return &Client{Sys: sys, Primary: primary, ctx: ctx, cancel: cancel, done: make(chan struct{})}
}

// Start runs the tail loop in a goroutine; Stop ends it.
func (c *Client) Start() {
	go c.run()
}

// Stop ends the tail loop and waits for it to exit — after Stop
// returns, no apply is in flight and promotion is safe. Idempotent.
func (c *Client) Stop() {
	c.once.Do(c.cancel)
	<-c.done
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Client) run() {
	defer close(c.done)
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{}
	}
	stats := c.Sys.CounterSet()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := 100 * time.Millisecond
	for c.ctx.Err() == nil {
		err := c.tailOnce(httpc, stats)
		if c.ctx.Err() != nil {
			return
		}
		if err != nil && !errors.Is(err, io.EOF) {
			c.logf("replica: feed from %s: %v", c.Primary, err)
		}
		// Jittered backoff before reconnecting; reset to the floor after
		// a connection that made progress is handled in tailOnce.
		sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		select {
		case <-c.ctx.Done():
			return
		case <-time.After(sleep):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// tailOnce runs one feed connection until it breaks.
func (c *Client) tailOnce(httpc *http.Client, stats *metrics.Set) error {
	epoch, off, ok := c.Sys.WALPosition()
	if !ok {
		return errors.New("replica: no local WAL to mirror into")
	}
	url := c.Primary + "/v1/wal?from=" + FormatFrom(epoch, off)
	req, err := http.NewRequestWithContext(c.ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("replica: feed status %s", resp.Status)
	}
	stats.Inc(metrics.ReplicaReconnects)
	var sc wal.StreamScanner
	fr := &frameReader{r: resp.Body}
	for {
		f, err := fr.next()
		if err != nil {
			return err
		}
		if err := c.dispatch(f, &sc, stats); err != nil {
			return err
		}
	}
}

// dispatch applies one frame. Any error tears the connection down; the
// next connection's cursor comes from the local log, so a desync
// resolves into a snapshot bootstrap.
func (c *Client) dispatch(f Frame, sc *wal.StreamScanner, stats *metrics.Set) error {
	switch f.Kind {
	case FrameSnapshot:
		sc.Reset()
		n, err := c.Sys.ReplicaBootstrap(f.Epoch, f.Data)
		if err != nil {
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
		c.logf("replica: bootstrapped %d tuples at epoch %d from %s", n, f.Epoch, c.Primary)
	case FrameReset:
		if sc.Pending() {
			return errors.New("replica: epoch reset with a unit in flight")
		}
		if err := c.Sys.ReplicaAdvanceEpoch(f.Epoch); err != nil {
			return fmt.Errorf("replica: epoch follow: %w", err)
		}
	case FrameRecords:
		if lEpoch, _, _ := c.Sys.WALPosition(); lEpoch != f.Epoch {
			return fmt.Errorf("replica: records for epoch %d at local epoch %d", f.Epoch, lEpoch)
		}
		txns, err := sc.Feed(f.Data)
		if err != nil {
			return err
		}
		if err := c.Sys.ReplicaApply(f.Epoch, f.Data, txns); err != nil {
			return fmt.Errorf("replica: apply: %w", err)
		}
		c.updateLag(f, stats)
	case FrameHeartbeat:
		c.updateLag(f, stats)
	}
	return nil
}

// updateLag stores the lag gauge from a frame's primary position and
// emits the replica_lag trace point.
func (c *Client) updateLag(f Frame, stats *metrics.Set) {
	lEpoch, lSize, ok := c.Sys.WALPosition()
	if !ok || lEpoch != f.Epoch {
		return
	}
	lag := f.End - lSize
	if lag < 0 {
		lag = 0
	}
	stats.Store(metrics.ReplicaLagBytes, lag)
	if tr := c.Sys.Tracer(); tr.Enabled() {
		tr.Emit(trace.Event{Kind: trace.KindReplicaLag, At: tr.Now(), CE: -1, ID: f.Epoch, Count: lag})
	}
}
