package replica

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"prodsys/internal/metrics"
	"prodsys/internal/wal"
)

// FeedConfig wires a primary's feed handler.
type FeedConfig struct {
	// Log is the primary's live write-ahead log. The feed reads the log
	// and checkpoint files through the log's filesystem — never its
	// handles — so shipping needs no append-path locks.
	Log *wal.Log
	// Stats lands feeds_served / feed_frames. May be nil.
	Stats *metrics.Set
	// Poll is how often the feed re-reads the log while idle; default
	// 50ms.
	Poll time.Duration
	// Heartbeat is how often an idle feed ships its position so the
	// replica can measure lag; default 500ms.
	Heartbeat time.Duration
	// Done, when closed, ends every feed (server drain). May be nil.
	Done <-chan struct{}
}

// ParseFrom parses a feed cursor "epoch,offset" (the from query
// parameter). An empty value is the zero cursor, which never matches a
// live log and so forces a bootstrap.
func ParseFrom(s string) (epoch uint64, offset int64, err error) {
	if s == "" {
		return 0, 0, nil
	}
	e, o, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("replica: bad from cursor %q", s)
	}
	epoch, err = strconv.ParseUint(e, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("replica: bad from epoch %q", s)
	}
	offset, err = strconv.ParseInt(o, 10, 64)
	if err != nil || offset < 0 {
		return 0, 0, fmt.Errorf("replica: bad from offset %q", s)
	}
	return epoch, offset, nil
}

// FormatFrom renders a feed cursor for the from query parameter.
func FormatFrom(epoch uint64, offset int64) string {
	return fmt.Sprintf("%d,%d", epoch, offset)
}

// ServeFeed streams the log to one replica until the client goes away,
// the server drains, or the log file turns unreadable. The protocol
// per iteration, against a fresh read of the log file (atomic-rename
// file swaps make each read self-consistent):
//
//   - Cursor inside the live epoch: ship the records between the
//     cursor and the valid prefix (torn tails excluded), or a
//     heartbeat when idle.
//   - Cursor exactly at the final position of the epoch the last
//     checkpoint retired: the replica is identical to the checkpoint —
//     ship a reset announcing the new epoch, no snapshot needed.
//   - Anything else: ship the checkpoint snapshot, retrying while the
//     checkpoint and log disagree mid-swap.
func ServeFeed(w http.ResponseWriter, r *http.Request, cfg FeedConfig) {
	if cfg.Log == nil {
		http.Error(w, "no WAL attached", http.StatusServiceUnavailable)
		return
	}
	cEpoch, cOff, err := ParseFrom(r.URL.Query().Get("from"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	heartbeat := cfg.Heartbeat
	if heartbeat <= 0 {
		heartbeat = 500 * time.Millisecond
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	cfg.Stats.Inc(metrics.FeedsServed)

	fs := cfg.Log.FileSystem()
	path := cfg.Log.Path()
	send := func(f Frame) bool {
		if _, err := w.Write(EncodeFrame(f)); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		cfg.Stats.Inc(metrics.FeedFrames)
		return true
	}
	lastBeat := time.Now()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-cfg.Done:
			return
		default:
		}
		progressed := false
		data, rerr := fs.ReadFile(path)
		if rerr == nil {
			if lEpoch, ok := wal.LogEpoch(data); ok {
				valid := wal.ValidPrefix(data)
				switch {
				case cEpoch == lEpoch && cOff >= wal.HeaderLen && cOff <= valid:
					if cOff < valid {
						if !send(Frame{Kind: FrameRecords, Epoch: lEpoch, End: valid, Data: data[cOff:valid]}) {
							return
						}
						cOff = valid
						progressed = true
					} else if time.Since(lastBeat) >= heartbeat {
						if !send(Frame{Kind: FrameHeartbeat, Epoch: lEpoch, End: valid}) {
							return
						}
						lastBeat = time.Now()
					}
				default:
					if pe, ps := cfg.Log.PrevBoundary(); cEpoch == pe && cOff == ps && lEpoch != cEpoch {
						if !send(Frame{Kind: FrameReset, Epoch: lEpoch, End: wal.HeaderLen}) {
							return
						}
						cEpoch, cOff = lEpoch, wal.HeaderLen
						progressed = true
						break
					}
					ce, dump, exists, cerr := wal.ReadCheckpoint(fs, wal.CheckpointPath(path))
					// A missing or epoch-mismatched checkpoint means the
					// log is mid-swap (or the cursor is garbage against a
					// genesis log); wait for a consistent pair.
					if cerr == nil && exists && ce == lEpoch {
						if !send(Frame{Kind: FrameSnapshot, Epoch: ce, End: wal.HeaderLen, Data: dump}) {
							return
						}
						cEpoch, cOff = ce, wal.HeaderLen
						progressed = true
					}
				}
			}
		}
		if progressed {
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-cfg.Done:
			return
		case <-time.After(poll):
		}
	}
}
