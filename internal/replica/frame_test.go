package replica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func sampleFrames() []Frame {
	return []Frame{
		{Kind: FrameSnapshot, Epoch: 1, End: 16, Data: []byte("#relation Emp name\n1\ty:a\n")},
		{Kind: FrameReset, Epoch: 9, End: 16},
		{Kind: FrameRecords, Epoch: 3, End: 1 << 40, Data: []byte{0, 0, 0, 1, 0, 0, 0, 0, 0xff}},
		{Kind: FrameHeartbeat, Epoch: 1<<64 - 1, End: 1 << 62},
		{Kind: FrameRecords, Epoch: 2, End: 24, Data: nil},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for i, f := range sampleFrames() {
		enc := EncodeFrame(f)
		got, n, err := DecodeFrame(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("frame %d: n=%d err=%v", i, n, err)
		}
		if got.Kind != f.Kind || got.Epoch != f.Epoch || got.End != f.End || !bytes.Equal(got.Data, f.Data) {
			t.Fatalf("frame %d: round trip %+v != %+v", i, got, f)
		}
		// Trailing bytes of the next frame are left unconsumed.
		got2, n2, err := DecodeFrame(append(enc, enc...))
		if err != nil || n2 != len(enc) || got2.Kind != f.Kind {
			t.Fatalf("frame %d: concatenated decode n=%d err=%v", i, n2, err)
		}
	}
}

func TestFrameIncomplete(t *testing.T) {
	enc := EncodeFrame(Frame{Kind: FrameSnapshot, Epoch: 2, End: 100, Data: []byte("dump")})
	for n := 0; n < len(enc); n++ {
		if _, used, err := DecodeFrame(enc[:n]); err != nil || used != 0 {
			t.Fatalf("prefix %d: used=%d err=%v (incomplete must mean read-more)", n, used, err)
		}
	}
}

func TestFrameRejects(t *testing.T) {
	base := EncodeFrame(Frame{Kind: FrameRecords, Epoch: 1, End: 20, Data: []byte("abcd")})

	corrupt := append([]byte(nil), base...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, _, err := DecodeFrame(corrupt); !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupt payload: %v", err)
	}

	huge := append([]byte(nil), base...)
	binary.BigEndian.PutUint32(huge, maxFrame+1)
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized length: %v", err)
	}

	zero := append([]byte(nil), base...)
	binary.BigEndian.PutUint32(zero, 0)
	if _, _, err := DecodeFrame(zero); !errors.Is(err, ErrFrame) {
		t.Fatalf("zero length: %v", err)
	}

	// A valid checksum over an unknown kind still fails.
	bad := EncodeFrame(Frame{Kind: 99, Epoch: 1, End: 1})
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrame) {
		t.Fatalf("unknown kind: %v", err)
	}

	// Reset and heartbeat frames must not carry data.
	if _, _, err := DecodeFrame(EncodeFrame(Frame{Kind: FrameHeartbeat, Epoch: 1, End: 1, Data: []byte("x")})); !errors.Is(err, ErrFrame) {
		t.Fatalf("heartbeat with data: %v", err)
	}
	if _, _, err := DecodeFrame(EncodeFrame(Frame{Kind: FrameReset, Epoch: 1, End: 1, Data: []byte("x")})); !errors.Is(err, ErrFrame) {
		t.Fatalf("reset with data: %v", err)
	}
}

func TestFrameReaderStream(t *testing.T) {
	frames := sampleFrames()
	var wire []byte
	for _, f := range frames {
		wire = append(wire, EncodeFrame(f)...)
	}
	fr := &frameReader{r: &iotest{data: wire, chunk: 5}}
	for i, want := range frames {
		got, err := fr.next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Epoch != want.Epoch || got.End != want.End || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("frame %d mismatch: %+v", i, got)
		}
	}
	if _, err := fr.next(); !errors.Is(err, io.EOF) {
		t.Fatalf("stream end: %v", err)
	}
}

// iotest dribbles data out a few bytes per Read, exercising the
// reader's reassembly of frames split across reads.
type iotest struct {
	data  []byte
	chunk int
}

func (r *iotest) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := min(r.chunk, len(r.data), len(p))
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// FuzzReplicaFrame asserts the feed-frame decoder never panics on
// arbitrary bytes and keeps its contract: n == 0 only with a nil error
// (read more) or a typed ErrFrame; a successful decode consumes a
// bounded prefix and re-encodes to a frame that decodes identically.
func FuzzReplicaFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(EncodeFrame(fr))
	}
	enc := EncodeFrame(Frame{Kind: FrameSnapshot, Epoch: 7, End: 123, Data: []byte("dump")})
	f.Add(enc[:len(enc)-2]) // incomplete
	mut := append([]byte(nil), enc...)
	mut[9] ^= 0xff
	f.Add(mut) // corrupt payload
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 42})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if n == 0 {
			return // incomplete: read more
		}
		if n < 9 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Decoded frames re-encode to something that decodes back to the
		// same frame (encoding may differ when the input used non-minimal
		// varints, but the semantics must be stable).
		again, n2, err := DecodeFrame(EncodeFrame(fr))
		if err != nil || n2 == 0 {
			t.Fatalf("re-decode: n=%d err=%v", n2, err)
		}
		if again.Kind != fr.Kind || again.Epoch != fr.Epoch || again.End != fr.End || !bytes.Equal(again.Data, fr.Data) {
			t.Fatalf("re-decode mismatch: %+v != %+v", again, fr)
		}
		switch fr.Kind {
		case FrameReset, FrameHeartbeat:
			if len(fr.Data) != 0 {
				t.Fatal("control frame decoded with data")
			}
		}
	})
}
