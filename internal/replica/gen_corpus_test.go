package replica

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenCorpus regenerates the checked-in fuzz seed corpus when
// PRODSYS_GEN_CORPUS=1; normally it just verifies the files parse.
func TestGenCorpus(t *testing.T) {
	if os.Getenv("PRODSYS_GEN_CORPUS") != "1" {
		t.Skip("set PRODSYS_GEN_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReplicaFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := map[string][]byte{
		"snapshot":  EncodeFrame(Frame{Kind: FrameSnapshot, Epoch: 1, End: 16, Data: []byte("#relation Emp name\n1\ty:a\n")}),
		"reset":     EncodeFrame(Frame{Kind: FrameReset, Epoch: 9, End: 16}),
		"records":   EncodeFrame(Frame{Kind: FrameRecords, Epoch: 3, End: 4096, Data: []byte{0, 0, 0, 1, 0, 0, 0, 0, 0xff}}),
		"heartbeat": EncodeFrame(Frame{Kind: FrameHeartbeat, Epoch: 2, End: 1 << 20}),
	}
	trunc := seeds["snapshot"]
	seeds["truncated"] = trunc[:len(trunc)-2]
	corrupt := append([]byte(nil), seeds["records"]...)
	corrupt[9] ^= 0xff
	seeds["corrupt"] = corrupt
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
