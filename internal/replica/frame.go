// Package replica implements primary→replica WAL log shipping over the
// HTTP front end: the primary's Feed streams its log as framed chunks
// (snapshot bootstrap, raw record runs, epoch resets, heartbeats); a
// replica's Client tails the feed, mirrors the record bytes into its
// own log byte-for-byte, and applies committed units through matcher
// maintenance exactly like recovery replay. See docs/REPLICATION.md.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// FrameKind identifies the type of a feed frame.
type FrameKind byte

// The frame kinds of the feed protocol.
const (
	// FrameSnapshot carries a checkpoint dump: the replica replaces its
	// whole working memory and adopts Epoch. Data is the dump.
	FrameSnapshot FrameKind = 1
	// FrameReset announces a primary checkpoint to a fully caught-up
	// replica: state is already identical, so the replica checkpoints
	// its own WM under Epoch and the stream restarts at the new log's
	// origin. No data.
	FrameReset FrameKind = 2
	// FrameRecords carries a run of raw, checksummed WAL record bytes
	// from the Epoch log; End is the primary log offset just past them.
	FrameRecords FrameKind = 3
	// FrameHeartbeat carries the primary's live position (Epoch, End)
	// with no records — the replica's lag measure. No data.
	FrameHeartbeat FrameKind = 4
)

// Frame is one feed protocol unit.
type Frame struct {
	Kind  FrameKind
	Epoch uint64 // primary log epoch the frame speaks for
	End   int64  // primary log offset: past Data for records, live size for heartbeats
	Data  []byte // dump bytes (snapshot) or raw record bytes (records)
}

// maxFrame bounds a decoded frame's payload; snapshots carry a whole
// working-memory dump, so the bound is generous.
const maxFrame = 1 << 28

// ErrFrame marks a corrupt or malformed feed frame; the client drops
// the connection and re-syncs.
var ErrFrame = errors.New("replica: bad feed frame")

// EncodeFrame renders f with the same outer framing as WAL records —
// [4-byte length][4-byte CRC32-IEEE][payload] — so one checksum scheme
// covers the log and the wire.
func EncodeFrame(f Frame) []byte {
	payload := make([]byte, 1, 1+2*binary.MaxVarintLen64+len(f.Data))
	payload[0] = byte(f.Kind)
	var tmp [binary.MaxVarintLen64]byte
	payload = append(payload, tmp[:binary.PutUvarint(tmp[:], f.Epoch)]...)
	payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(f.End))]...)
	payload = append(payload, f.Data...)
	out := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// DecodeFrame decodes the first frame in buf. n is the bytes consumed;
// n == 0 with a nil error means buf holds no complete frame yet (read
// more). A malformed or checksum-failing frame returns ErrFrame.
func DecodeFrame(buf []byte) (f Frame, n int, err error) {
	if len(buf) < 8 {
		return Frame{}, 0, nil
	}
	ln := binary.BigEndian.Uint32(buf)
	if ln < 1 || ln > maxFrame {
		return Frame{}, 0, fmt.Errorf("%w: length %d", ErrFrame, ln)
	}
	if len(buf)-8 < int(ln) {
		return Frame{}, 0, nil
	}
	payload := buf[8 : 8+int(ln)]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(buf[4:]) {
		return Frame{}, 0, fmt.Errorf("%w: checksum", ErrFrame)
	}
	f.Kind = FrameKind(payload[0])
	switch f.Kind {
	case FrameSnapshot, FrameReset, FrameRecords, FrameHeartbeat:
	default:
		return Frame{}, 0, fmt.Errorf("%w: kind %d", ErrFrame, payload[0])
	}
	rest := payload[1:]
	epoch, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return Frame{}, 0, fmt.Errorf("%w: epoch varint", ErrFrame)
	}
	rest = rest[sz:]
	end, sz := binary.Uvarint(rest)
	if sz <= 0 || end > 1<<62 {
		return Frame{}, 0, fmt.Errorf("%w: end varint", ErrFrame)
	}
	rest = rest[sz:]
	f.Epoch = epoch
	f.End = int64(end)
	switch f.Kind {
	case FrameReset, FrameHeartbeat:
		if len(rest) != 0 {
			return Frame{}, 0, fmt.Errorf("%w: unexpected data on kind %d", ErrFrame, f.Kind)
		}
	default:
		f.Data = append([]byte(nil), rest...)
	}
	return f, 8 + int(ln), nil
}

// frameReader pulls whole frames off a streaming feed body.
type frameReader struct {
	r   io.Reader
	buf []byte
}

// next blocks until one complete frame is read (or the stream ends).
func (fr *frameReader) next() (Frame, error) {
	for {
		if f, n, err := DecodeFrame(fr.buf); err != nil {
			return Frame{}, err
		} else if n > 0 {
			fr.buf = append(fr.buf[:0], fr.buf[n:]...)
			return f, nil
		}
		var chunk [32 * 1024]byte
		n, err := fr.r.Read(chunk[:])
		if n > 0 {
			fr.buf = append(fr.buf, chunk[:n]...)
			continue
		}
		if err == nil {
			err = io.ErrNoProgress
		}
		return Frame{}, err
	}
}
