// Package audit implements online integrity auditing for the matchers:
// the ground truth of every derived structure — conflict-set
// instantiations, COND-relation Mark counters, Rete beta memories, rule
// markers, condition indexes — is recomputed from the base WM relations
// (reusing the simplified algorithm's joins, §4.1) and diffed against the
// matcher's incrementally maintained state. Divergences are reported as
// typed records and, on request, repaired by rebuilding the affected
// rules' derived state from working memory.
//
// The auditor runs online between firings: the engine exposes its
// maintenance lock, so an audit sees a quiescent, transaction-consistent
// snapshot. A full audit checks every rule; the sampled mode checks a
// budgeted, rotating window of rules per run, amortizing the cost of
// continuous auditing across many runs.
package audit

import (
	"fmt"
	"math/rand"
	"sort"

	"prodsys/internal/conflict"
	"prodsys/internal/joiner"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
)

// Divergence classes: which derived structure disagrees with the ground
// truth recomputed from working memory.
const (
	// DivConflictMissing: a satisfied, unfired instantiation is absent
	// from the conflict set.
	DivConflictMissing = "conflict-missing"
	// DivConflictPhantom: the conflict set holds an instantiation the WM
	// no longer supports.
	DivConflictPhantom = "conflict-phantom"
	// DivMarkCounter: a matching pattern's per-RCE support (the Mark
	// counter of §4.2.2) disagrees with the supporting tuples in WM.
	DivMarkCounter = "mark-counter"
	// DivPatternMissing: a matching pattern the WM implies is absent from
	// its COND relation.
	DivPatternMissing = "pattern-missing"
	// DivPatternPhantom: a COND relation holds a matching pattern with no
	// supporting WM tuples.
	DivPatternPhantom = "pattern-phantom"
	// DivTokenMissing: a partial match implied by the WM is absent from a
	// Rete beta memory, negative node, or production node.
	DivTokenMissing = "token-missing"
	// DivTokenPhantom: a Rete token store holds a partial match the WM no
	// longer supports.
	DivTokenPhantom = "token-phantom"
	// DivAlphaMissing / DivAlphaPhantom: a Rete alpha memory disagrees
	// with the WM tuples passing its variable-free tests.
	DivAlphaMissing = "alpha-missing"
	DivAlphaPhantom = "alpha-phantom"
	// DivMarkMissing: a Basic Locking tuple marker required by a live
	// instantiation is gone (a future update would be silently dropped).
	DivMarkMissing = "marker-missing"
	// DivIndexMissing / DivIndexPhantom: the predicate index disagrees
	// with the rule set's condition elements.
	DivIndexMissing = "index-missing"
	DivIndexPhantom = "index-phantom"
)

// Divergence is one disagreement between a matcher's derived state and
// the ground truth recomputed from the base WM relations.
type Divergence struct {
	// Class is one of the Div* constants.
	Class string
	// Rule names the affected rule; empty when the divergence is not
	// attributable to one rule (shared alpha memories), which forces a
	// full rebuild on repair.
	Rule string
	// CE is the condition element index, -1 when rule- or set-level.
	CE int
	// Key identifies the diverging entry (instantiation key, pattern key,
	// token signature, tuple reference).
	Key string
	// Expected and Actual describe both sides of the disagreement.
	Expected string
	Actual   string
}

// String renders the divergence for traces and error output.
func (d Divergence) String() string {
	where := d.Rule
	if where == "" {
		where = "-"
	}
	return fmt.Sprintf("%s %s %s: expected %s, actual %s", d.Class, where, d.Key, d.Expected, d.Actual)
}

// Report is the outcome of one audit run.
type Report struct {
	// Matcher names the audited matching algorithm.
	Matcher string
	// RulesChecked counts the rules whose derived state was verified.
	RulesChecked int
	// Sampled reports whether this run checked a budgeted window of rules
	// rather than all of them.
	Sampled bool
	// Divergences lists every disagreement found, deterministically
	// ordered.
	Divergences []Divergence
	// Repaired counts divergences addressed by the repair pass.
	Repaired int
	// Rebuilt reports whether the repair rebuilt matcher derived state.
	Rebuilt bool
}

// Clean reports whether the audit found no divergence.
func (r *Report) Clean() bool { return len(r.Divergences) == 0 }

// DerivedAuditor is implemented by matchers with derived state beyond
// the conflict set. AuditDerived recomputes that state's ground truth
// from the WM relations in db and emits one Divergence per
// disagreement. only, when non-nil, restricts the audit to the named
// rules (the sampled mode); nil means audit everything.
type DerivedAuditor interface {
	AuditDerived(db *relation.DB, only map[string]bool, emit func(Divergence))
}

// DerivedRebuilder is implemented by matchers that can rebuild their
// derived state from the WM relations. only, when non-nil, limits the
// rebuild to the named rules' state; nil demands a full rebuild.
// Matchers whose internal sharing makes per-rule surgery unsafe may
// always rebuild fully.
type DerivedRebuilder interface {
	RebuildRules(db *relation.DB, only map[string]bool) error
}

// Corrupter is implemented by matchers that can deliberately corrupt
// their own derived state — the fault-injection hook the detection
// tests drive. It returns a description of the corruption, or "" when
// there is nothing to corrupt.
type Corrupter interface {
	CorruptDerived(rng *rand.Rand) string
}

// Options tunes one audit run.
type Options struct {
	// MaxRules, when positive and smaller than the rule count, switches
	// to sampled mode: each run checks at most this many rules, rotating
	// through the rule set across runs.
	MaxRules int
	// Repair rebuilds the affected derived state when divergences are
	// found, so an immediate re-audit comes back clean.
	Repair bool
}

// Auditor recomputes matcher ground truth from working memory. It keeps
// the rotating cursor of the sampled mode, so reuse one Auditor across
// runs. Not safe for concurrent use; run it under the engine's
// maintenance lock.
type Auditor struct {
	set    *rules.Set
	db     *relation.DB
	m      match.Matcher
	stats  *metrics.Set
	tr     *trace.Tracer
	cursor int
}

// New builds an auditor over the matcher's rule set and WM catalog.
// stats may be nil.
func New(set *rules.Set, db *relation.DB, m match.Matcher, stats *metrics.Set) *Auditor {
	return &Auditor{set: set, db: db, m: m, stats: stats}
}

// SetTracer wires the execution tracer; audit runs, divergences, and
// repairs are emitted as events. A nil tracer disables emission.
func (a *Auditor) SetTracer(tr *trace.Tracer) { a.tr = tr }

// Gate runs a full, repair-free audit as a go/no-go check — the
// promotion gate of WAL log-shipping failover: a replica may only turn
// primary if its derived state matches ground truth exactly. The
// report is returned either way; the error is non-nil when the gate
// fails, naming the divergence count and the first instance.
func (a *Auditor) Gate() (*Report, error) {
	rep, err := a.Run(Options{})
	if err != nil {
		return rep, fmt.Errorf("audit gate: %w", err)
	}
	if !rep.Clean() {
		return rep, fmt.Errorf("audit gate: %d divergences, first: %s",
			len(rep.Divergences), rep.Divergences[0].String())
	}
	return rep, nil
}

// Run performs one audit: conflict-set ground truth for the selected
// rules, then the matcher's own derived state via DerivedAuditor. With
// opts.Repair, divergent rules' derived state is rebuilt from WM and
// the conflict set reconciled. The returned report is always non-nil;
// the error reports a failed rebuild.
func (a *Auditor) Run(opts Options) (*Report, error) {
	all := a.set.Rules
	selected := all
	rep := &Report{Matcher: a.m.Name()}
	var only map[string]bool
	if opts.MaxRules > 0 && opts.MaxRules < len(all) {
		rep.Sampled = true
		selected = make([]*rules.Rule, 0, opts.MaxRules)
		only = make(map[string]bool, opts.MaxRules)
		for i := 0; i < opts.MaxRules; i++ {
			r := all[(a.cursor+i)%len(all)]
			if only[r.Name] {
				continue
			}
			only[r.Name] = true
			selected = append(selected, r)
		}
		a.cursor = (a.cursor + opts.MaxRules) % len(all)
	}
	rep.RulesChecked = len(selected)
	emit := func(d Divergence) { rep.Divergences = append(rep.Divergences, d) }

	t0 := a.tr.Now()
	a.auditConflictSet(selected, emit)
	if da, ok := a.m.(DerivedAuditor); ok {
		da.AuditDerived(a.db, only, emit)
	}
	sort.Slice(rep.Divergences, func(i, j int) bool {
		di, dj := rep.Divergences[i], rep.Divergences[j]
		if di.Class != dj.Class {
			return di.Class < dj.Class
		}
		if di.Rule != dj.Rule {
			return di.Rule < dj.Rule
		}
		return di.Key < dj.Key
	})

	a.stats.Inc(metrics.AuditRuns)
	a.stats.Add(metrics.AuditRulesChecked, int64(len(selected)))
	a.stats.Add(metrics.AuditDivergences, int64(len(rep.Divergences)))
	if a.tr.Enabled() {
		a.tr.Emit(trace.Event{
			Kind: trace.KindAuditRun, At: t0, Dur: a.tr.Now() - t0,
			CE: -1, Count: int64(len(rep.Divergences)), Extra: rep.Matcher,
		})
		for _, d := range rep.Divergences {
			a.tr.Emit(trace.Event{
				Kind: trace.KindAuditDivergence, At: a.tr.Now(),
				Rule: d.Rule, CE: d.CE, Extra: d.String(),
			})
		}
	}

	if !opts.Repair || rep.Clean() {
		return rep, nil
	}
	if err := a.repair(rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// auditConflictSet diffs the conflict set's unfired instantiations
// against the full LHS joins of the selected rules, honoring refraction
// (fired keys are expected to be absent).
func (a *Auditor) auditConflictSet(selected []*rules.Rule, emit func(Divergence)) {
	cs := a.m.ConflictSet()
	sel := make(map[string]bool, len(selected))
	for _, r := range selected {
		sel[r.Name] = true
	}
	actual := map[string]map[string]bool{}
	for _, in := range cs.SelectAll() {
		if !sel[in.Rule.Name] {
			continue
		}
		set := actual[in.Rule.Name]
		if set == nil {
			set = map[string]bool{}
			actual[in.Rule.Name] = set
		}
		set[in.Key()] = true
	}
	for _, r := range selected {
		expected := map[string]bool{}
		joiner.Enumerate(a.db, r, nil, nil, a.stats, func(ids []relation.TupleID, _ []relation.Tuple, _ rules.Bindings) {
			in := conflict.Instantiation{Rule: r, TupleIDs: ids}
			if key := in.Key(); !cs.HasFired(key) {
				expected[key] = true
			}
		})
		act := actual[r.Name]
		for k := range expected {
			if !act[k] {
				emit(Divergence{Class: DivConflictMissing, Rule: r.Name, CE: -1, Key: k,
					Expected: "instantiation in conflict set", Actual: "absent"})
			}
		}
		for k := range act {
			if !expected[k] {
				emit(Divergence{Class: DivConflictPhantom, Rule: r.Name, CE: -1, Key: k,
					Expected: "absent", Actual: "instantiation in conflict set"})
			}
		}
	}
}

// repair rebuilds the divergent rules' derived state from WM (falling
// back to a full matcher rebuild when a divergence is not attributable
// to one rule) and reconciles the conflict set against the ground
// truth, so an immediate re-audit is clean.
func (a *Auditor) repair(rep *Report) error {
	affected := map[string]bool{}
	ruleLevel := true
	for _, d := range rep.Divergences {
		if d.Rule == "" {
			ruleLevel = false
			continue
		}
		affected[d.Rule] = true
	}
	t0 := a.tr.Now()
	if rb, ok := a.m.(DerivedRebuilder); ok {
		sel := affected
		if !ruleLevel {
			sel = nil // unattributable divergence: rebuild everything
		}
		if err := rb.RebuildRules(a.db, sel); err != nil {
			return fmt.Errorf("audit: rebuild: %w", err)
		}
		rep.Rebuilt = true
	}

	// Reconcile the conflict set: phantoms out, missing instantiations in.
	cs := a.m.ConflictSet()
	var recon map[string]bool
	if ruleLevel {
		recon = affected
	}
	for _, r := range a.set.Rules {
		if recon != nil && !recon[r.Name] {
			continue
		}
		expected := map[string]*conflict.Instantiation{}
		joiner.Enumerate(a.db, r, nil, nil, a.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
			in := &conflict.Instantiation{Rule: r, TupleIDs: ids, Tuples: tuples, Bindings: b}
			if !cs.HasFired(in.Key()) {
				expected[in.Key()] = in
			}
		})
		name := r.Name
		cs.RemoveWhere(func(in *conflict.Instantiation) bool {
			return in.Rule.Name == name && expected[in.Key()] == nil
		})
		keys := make([]string, 0, len(expected))
		for k := range expected {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic Seq assignment for the additions
		for _, k := range keys {
			cs.Add(expected[k])
		}
	}

	rep.Repaired = len(rep.Divergences)
	a.stats.Add(metrics.AuditRepairs, int64(rep.Repaired))
	if a.tr.Enabled() {
		a.tr.Emit(trace.Event{
			Kind: trace.KindRepair, At: t0, Dur: a.tr.Now() - t0,
			CE: -1, Count: int64(rep.Repaired), Extra: rep.Matcher,
		})
	}
	return nil
}
