package audit

import (
	"fmt"
	"math/rand"
	"sync"

	"prodsys/internal/conflict"
	"prodsys/internal/match"
	"prodsys/internal/relation"
	"prodsys/internal/trace"
)

// FaultInjector wraps a matcher and corrupts its derived state — Mark
// counters, beta tokens, markers, index entries, or conflict-set
// instantiations — either on demand (Corrupt) or every EveryN forwarded
// maintenance calls, simulating the silent state damage the auditor
// exists to catch. It passes through the audit interfaces of the inner
// matcher, so an Auditor over the wrapper audits the real state.
type FaultInjector struct {
	inner  match.Matcher
	everyN int

	mu       sync.Mutex
	rng      *rand.Rand
	calls    int
	injected []string
}

// NewFaultInjector wraps inner. seed makes the corruption sequence
// reproducible; everyN <= 0 disables automatic injection (Corrupt still
// works on demand).
func NewFaultInjector(inner match.Matcher, seed int64, everyN int) *FaultInjector {
	return &FaultInjector{inner: inner, everyN: everyN, rng: rand.New(rand.NewSource(seed))}
}

// Name identifies the wrapped algorithm.
func (f *FaultInjector) Name() string { return f.inner.Name() }

// ConflictSet exposes the wrapped matcher's conflict set.
func (f *FaultInjector) ConflictSet() *conflict.Set { return f.inner.ConflictSet() }

// SetTracer forwards the tracer to the wrapped matcher.
func (f *FaultInjector) SetTracer(tr *trace.Tracer) { match.AttachTracer(f.inner, tr) }

// Insert forwards the insertion, then maybe injects a fault.
func (f *FaultInjector) Insert(class string, id relation.TupleID, t relation.Tuple) error {
	err := f.inner.Insert(class, id, t)
	f.tick()
	return err
}

// Delete forwards the deletion, then maybe injects a fault.
func (f *FaultInjector) Delete(class string, id relation.TupleID, t relation.Tuple) error {
	err := f.inner.Delete(class, id, t)
	f.tick()
	return err
}

// InsertBatch forwards through the inner matcher's native batch path
// when it has one; the whole batch counts as one maintenance call.
func (f *FaultInjector) InsertBatch(class string, entries []relation.DeltaEntry) error {
	err := match.InsertBatch(f.inner, class, entries)
	f.tick()
	return err
}

// DeleteBatch mirrors InsertBatch for removals.
func (f *FaultInjector) DeleteBatch(class string, entries []relation.DeltaEntry) error {
	err := match.DeleteBatch(f.inner, class, entries)
	f.tick()
	return err
}

// AuditDerived forwards to the wrapped matcher's auditor hook.
func (f *FaultInjector) AuditDerived(db *relation.DB, only map[string]bool, emit func(Divergence)) {
	if da, ok := f.inner.(DerivedAuditor); ok {
		da.AuditDerived(db, only, emit)
	}
}

// RebuildRules forwards to the wrapped matcher's rebuild hook.
func (f *FaultInjector) RebuildRules(db *relation.DB, only map[string]bool) error {
	if rb, ok := f.inner.(DerivedRebuilder); ok {
		return rb.RebuildRules(db, only)
	}
	return nil
}

// CorruptDerived corrupts the wrapped matcher's state with the caller's
// rng (the Corrupter contract); the injector's own schedule uses Corrupt.
func (f *FaultInjector) CorruptDerived(rng *rand.Rand) string {
	return f.corruptWith(rng)
}

// Corrupt damages the wrapped matcher's derived state now, using the
// injector's seeded rng, and returns a description of what was broken
// ("" when there was nothing to corrupt). Matchers whose only derived
// state is the conflict set get a conflict-set corruption.
func (f *FaultInjector) Corrupt() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.corruptLocked()
}

// Injected returns descriptions of every corruption injected so far.
func (f *FaultInjector) Injected() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.injected))
	copy(out, f.injected)
	return out
}

func (f *FaultInjector) tick() {
	if f.everyN <= 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls%f.everyN == 0 {
		f.corruptLocked()
	}
}

// corruptLocked requires f.mu.
func (f *FaultInjector) corruptLocked() string {
	desc := f.corruptWith(f.rng)
	if desc != "" {
		f.injected = append(f.injected, desc)
	}
	return desc
}

func (f *FaultInjector) corruptWith(rng *rand.Rand) string {
	if c, ok := f.inner.(Corrupter); ok {
		if desc := c.CorruptDerived(rng); desc != "" {
			return desc
		}
	}
	return CorruptConflictSet(f.inner.ConflictSet(), rng)
}

// CorruptConflictSet drops one random unfired instantiation from the
// conflict set — the corruption mode for matchers whose only derived
// state is the conflict set itself. Returns "" when the set is empty.
func CorruptConflictSet(cs *conflict.Set, rng *rand.Rand) string {
	items := cs.SelectAll()
	if len(items) == 0 {
		return ""
	}
	in := items[rng.Intn(len(items))]
	cs.Remove(in.Key())
	return fmt.Sprintf("conflict: dropped instantiation %s", in.Key())
}
