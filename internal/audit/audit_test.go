package audit_test

import (
	"strings"
	"testing"

	"prodsys/internal/audit"
	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rete"
	"prodsys/internal/rules"
	"prodsys/internal/workload"
)

// buildMatcher compiles the payroll rule set and returns the stack the
// auditor needs, with the matcher chosen by the constructor.
func buildMatcher(t *testing.T, mk func(set *rules.Set, db *relation.DB, cs *conflict.Set, stats *metrics.Set) match.Matcher) (*rules.Set, *relation.DB, match.Matcher, *metrics.Set) {
	t.Helper()
	set, _, err := rules.CompileSource(workload.PayrollRules(6, false))
	if err != nil {
		t.Fatal(err)
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	return set, db, mk(set, db, conflict.NewSet(stats), stats), stats
}

// runWorkload streams ops through the relations and the (wrapped)
// matcher's maintenance, resolving deletes against live tuples.
func runWorkload(t *testing.T, db *relation.DB, m match.Matcher, ops []workload.Op) {
	t.Helper()
	live := map[string][]relation.TupleID{}
	for _, op := range ops {
		rel := db.MustGet(op.Class)
		if op.Delete {
			ids := live[op.Class]
			if len(ids) == 0 {
				continue
			}
			id := ids[len(ids)-1]
			live[op.Class] = ids[:len(ids)-1]
			tup, err := rel.Delete(id)
			if err != nil {
				t.Fatalf("delete %s %d: %v", op.Class, id, err)
			}
			if err := m.Delete(op.Class, id, tup); err != nil {
				t.Fatalf("matcher delete: %v", err)
			}
			continue
		}
		id, err := rel.Insert(op.Tuple)
		if err != nil {
			t.Fatalf("insert %s: %v", op.Class, err)
		}
		stored, _ := rel.Get(id)
		if err := m.Insert(op.Class, id, stored); err != nil {
			t.Fatalf("matcher insert: %v", err)
		}
		live[op.Class] = append(live[op.Class], id)
	}
}

// TestFaultInjectorMidWorkload drives the injection wrapper over the
// matchers the issue singles out — COND Mark counters (core) and Rete
// beta tokens — corrupting every 40th maintenance call mid-workload,
// then requires the auditor to detect live damage and repair it so a
// re-audit is clean.
func TestFaultInjectorMidWorkload(t *testing.T) {
	cases := []struct {
		name string
		mk   func(set *rules.Set, db *relation.DB, cs *conflict.Set, stats *metrics.Set) match.Matcher
	}{
		{"core", func(set *rules.Set, db *relation.DB, cs *conflict.Set, stats *metrics.Set) match.Matcher {
			return core.New(set, db, cs, stats)
		}},
		{"rete", func(set *rules.Set, db *relation.DB, cs *conflict.Set, stats *metrics.Set) match.Matcher {
			return rete.New(set, cs, stats)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set, db, inner, stats := buildMatcher(t, tc.mk)
			fi := audit.NewFaultInjector(inner, 17, 40)
			runWorkload(t, db, fi, workload.PayrollOps(23, 300, 0.25))
			if len(fi.Injected()) == 0 {
				t.Fatal("workload injected no corruption")
			}
			// Later maintenance can coincidentally overwrite earlier
			// damage; one final on-demand corruption guarantees live
			// damage for the detection assertion.
			if desc := fi.Corrupt(); desc == "" {
				t.Fatal("final corruption found nothing to corrupt")
			}

			aud := audit.New(set, db, fi, stats)
			rep, err := aud.Run(audit.Options{Repair: true})
			if err != nil {
				t.Fatalf("audit: %v", err)
			}
			if rep.Clean() {
				t.Fatalf("audit missed injected corruption: %v", fi.Injected())
			}
			if rep.Repaired == 0 {
				t.Fatal("audit repaired nothing")
			}
			again, err := aud.Run(audit.Options{})
			if err != nil {
				t.Fatalf("re-audit: %v", err)
			}
			if !again.Clean() {
				var lines []string
				for _, d := range again.Divergences {
					lines = append(lines, d.String())
				}
				t.Fatalf("re-audit after repair still divergent:\n%s", strings.Join(lines, "\n"))
			}
			if stats.Get(metrics.AuditDivergences) == 0 || stats.Get(metrics.AuditRepairs) == 0 {
				t.Fatal("integrity counters not incremented")
			}
		})
	}
}

// TestSampledCursorRotates: with MaxRules 2 over 6 rules, three
// successive runs cover the whole set (the cursor wraps), and every run
// reports the sampled flag with the window size.
func TestSampledCursorRotates(t *testing.T) {
	set, db, m, stats := buildMatcher(t, func(set *rules.Set, db *relation.DB, cs *conflict.Set, stats *metrics.Set) match.Matcher {
		return core.New(set, db, cs, stats)
	})
	runWorkload(t, db, m, workload.PayrollOps(5, 120, 0.2))
	aud := audit.New(set, db, m, stats)
	for run := 0; run < 3; run++ {
		rep, err := aud.Run(audit.Options{MaxRules: 2})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !rep.Sampled || rep.RulesChecked != 2 {
			t.Fatalf("run %d: sampled=%v rules=%d", run, rep.Sampled, rep.RulesChecked)
		}
	}
	if got := stats.Get(metrics.AuditRulesChecked); got != 6 {
		t.Fatalf("audit_rules_checked = %d, want 6 after a full rotation", got)
	}
}
