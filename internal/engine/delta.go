package engine

import (
	"context"
	"fmt"
	"sort"

	"prodsys/internal/lock"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/trace"
	"prodsys/internal/wal"
)

// DeltaOp is one operation of a batch submitted to ApplyDelta: an
// assertion carrying a tuple, or a retraction carrying a tuple ID.
type DeltaOp struct {
	// Retract selects between the two operation kinds.
	Retract bool
	// Class names the WM class the operation targets.
	Class string
	// Tuple is the assertion payload (ignored for retractions).
	Tuple relation.Tuple
	// ID is the retraction target (ignored for assertions).
	ID relation.TupleID
}

// ApplyDelta applies a batch of WM changes set-at-a-time: relation-level
// write locks are acquired once per touched class for the whole batch,
// every WM mutation executes in op order, and match maintenance runs once
// per (class, direction) group through the matchers' batch paths —
// deletions before insertions — feeding the conflict set incrementally.
// The returned IDs are aligned with ops (zero at retraction positions).
//
// A tuple asserted and retracted within the same batch nets out: it never
// reaches the matcher. If a mutation fails mid-batch, the changes already
// applied are still propagated to the matcher (keeping WM and match state
// consistent) and the error is returned.
//
// When a WM observer is attached (materialized views), the batch degrades
// to sequential per-op application under the batch's class locks, because
// incremental view maintenance needs each change joined against the WM
// state preceding it.
func (e *Engine) ApplyDelta(ops []DeltaOp) ([]relation.TupleID, error) {
	return e.ApplyDeltaContext(context.Background(), ops)
}

// ApplyDeltaContext is ApplyDelta honoring ctx: cancellation is
// observed before any lock is acquired; once the batch holds its class
// locks it applies atomically to completion.
func (e *Engine) ApplyDeltaContext(ctx context.Context, ops []DeltaOp) ([]relation.TupleID, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if err := e.checkWritable(); err != nil {
		return nil, err
	}
	// Validate classes before mutating anything.
	classes := map[string]bool{}
	for _, op := range ops {
		if _, ok := e.db.Get(op.Class); !ok {
			return nil, fmt.Errorf("engine: %w %s", ErrUnknownClass, op.Class)
		}
		classes[op.Class] = true
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	tBatch := e.tr.Now()
	// One relation-level lock acquisition per class per batch (§5.2's
	// granularity, amortized), in a deterministic global order.
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	txn := lock.TxnID(e.nextTxn.Add(1))
	for _, c := range names {
		if err := e.locks.Acquire(txn, lock.RelationTarget(c), lock.Exclusive); err != nil {
			e.locks.Release(txn)
			return nil, err
		}
	}
	released := false
	release := func() {
		if !released {
			released = true
			e.locks.Release(txn)
		}
	}
	defer release()
	if e.tr.Enabled() {
		defer func() {
			e.tr.Emit(trace.Event{
				Kind: trace.KindBatchApply, At: tBatch, Dur: e.tr.Now() - tBatch,
				CE: -1, ID: uint64(txn), Count: int64(len(ops)),
			})
		}()
	}

	// With a WAL attached the applied operations are collected and logged
	// as one atomic batch record at the commit point — still under
	// maintMu, before the lock release. When a mid-batch error leaves an
	// applied prefix, that prefix is real (it was propagated to the
	// matcher), so it is logged too. A panicked batch is the exception:
	// its ops are rolled back and nothing reaches the log. The append
	// failing with nothing landed rolls the batch back the same way
	// (commitUnitLocked), keeping memory and log in agreement.
	var durLog *wal.Log
	var durSeq uint64
	ids, err := func() ([]relation.TupleID, error) {
		e.maintMu.Lock()
		defer e.maintMu.Unlock()
		e.stats.Inc(metrics.SerialOps)
		e.stats.Inc(metrics.BatchDeltas)
		e.stats.Add(metrics.BatchTuples, int64(len(ops)))

		var walOps []wal.Op
		rec := &opRecorder{}
		ids, err := func() (ids []relation.TupleID, err error) {
			defer func() {
				if r := recover(); r != nil {
					e.rollbackLocked(rec)
					walOps = nil
					ids, err = nil, e.containPanic("batch", r)
				}
			}()
			return e.applyDeltaLocked(ops, &walOps, rec)
		}()
		if e.wal == nil || len(walOps) == 0 {
			return ids, err
		}
		l, seq, lerr := e.commitUnitLocked("", true, walOps, rec)
		if lerr != nil {
			if err == nil {
				err = lerr
			}
			return ids, err
		}
		durLog, durSeq = l, seq
		return ids, err
	}()
	// Early lock release: the batch's position in the log is fixed, so
	// the class locks drop before the (possibly group-coalesced) fsync
	// wait — concurrent same-class committers can append while this one
	// waits for the leader's sync.
	release()
	if derr := e.waitDurable(durLog, durSeq); derr != nil && err == nil {
		err = derr
	}
	return ids, err
}

// applyDeltaLocked is the mutation body of ApplyDeltaContext: maintMu
// and the batch's class locks are held, walOps collects the redo record
// for the commit point, rec collects undo ops for panic containment.
func (e *Engine) applyDeltaLocked(ops []DeltaOp, walOps *[]wal.Op, rec *opRecorder) ([]relation.TupleID, error) {
	ids := make([]relation.TupleID, len(ops))
	if e.wmObserver != nil {
		// Sequential fallback: views must see one change at a time.
		// assertLocked/retractLocked record undo (and redo) into rec as
		// soon as the storage op lands, so a maintenance panic mid-op
		// still rolls back; the batch redo record is taken from rec at
		// the end rather than re-collected here.
		var seqErr error
		for i, op := range ops {
			if op.Retract {
				if _, err := e.retractLocked(op.Class, op.ID, rec); err != nil {
					seqErr = err
					break
				}
				continue
			}
			id, err := e.assertLocked(op.Class, op.Tuple, rec)
			if err != nil {
				seqErr = err
				break
			}
			ids[i] = id
		}
		if e.wal != nil {
			*walOps = append(*walOps, rec.ops...)
		}
		return ids, seqErr
	}

	// Set-oriented path: mutate the WM relations first, then run the
	// batch maintenance over the net delta. Maximal runs of consecutive
	// same-class assertions go through the storage backend's bulk
	// InsertBatch — one lock acquisition and one growth decision per
	// run — which is where the columnar backend earns its keep.
	delta := relation.NewDelta()
	type born struct {
		class string
		id    relation.TupleID
	}
	inserted := map[born]bool{} // tuples born in this batch
	var opErr error
	for i := 0; i < len(ops); i++ {
		op := ops[i]
		rel, err := e.db.Lookup(op.Class)
		if err != nil {
			opErr = fmt.Errorf("engine: %w", err)
			break
		}
		if op.Retract {
			t, err := rel.Delete(op.ID)
			if err != nil {
				opErr = err
				break
			}
			e.stats.Inc(metrics.Counter("updates_" + op.Class))
			rec.undo = append(rec.undo, undoOp{class: op.Class, id: op.ID, tuple: t})
			if e.wal != nil {
				*walOps = append(*walOps, wal.Op{Retract: true, Class: op.Class, ID: op.ID})
			}
			if inserted[born{op.Class, op.ID}] && delta.CancelInsert(op.Class, op.ID) {
				continue // net zero: born and died within this batch
			}
			delta.AddDelete(op.Class, op.ID, t)
			continue
		}
		// Extend the run of assertions targeting the same class.
		j := i + 1
		for j < len(ops) && !ops[j].Retract && ops[j].Class == op.Class {
			j++
		}
		entries := make([]relation.DeltaEntry, j-i)
		for k := i; k < j; k++ {
			entries[k-i] = relation.DeltaEntry{Tuple: ops[k].Tuple}
		}
		if err := rel.InsertBatch(entries); err != nil {
			opErr = err
			break
		}
		for k, ent := range entries {
			ids[i+k] = ent.ID
			e.stats.Inc(metrics.Counter("updates_" + op.Class))
			rec.undo = append(rec.undo, undoOp{retract: true, class: op.Class, id: ent.ID})
			if e.wal != nil {
				*walOps = append(*walOps, wal.Op{Class: op.Class, ID: ent.ID, Tuple: ent.Tuple})
			}
			inserted[born{op.Class, ent.ID}] = true
			delta.AddInsert(op.Class, ent.ID, ent.Tuple)
		}
		i = j - 1
	}

	for _, class := range delta.Classes() {
		if len(delta.Deletes(class)) > 0 {
			e.stats.Inc(metrics.BatchPropagations)
		}
		if len(delta.Inserts(class)) > 0 {
			e.stats.Inc(metrics.BatchPropagations)
		}
	}
	if err := e.maintainDelta(delta); err != nil {
		return ids, err
	}
	return ids, opErr
}
