package engine

import (
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/lock"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

// panicOnClass wraps a matcher and panics on the first Insert targeting
// the named class — a fault injected into the maintenance process.
type panicOnClass struct {
	match.Matcher
	class string
	fired atomic.Bool
}

func (p *panicOnClass) Insert(class string, id relation.TupleID, t relation.Tuple) error {
	if class == p.class && p.fired.CompareAndSwap(false, true) {
		panic("injected maintenance panic")
	}
	return p.Matcher.Insert(class, id, t)
}

const panicSrc = `
(literalize A v)
(literalize B v)

(p mk
    (A ^v <x>)
  -->
    (make B ^v <x>)
    (remove 1))

(A 1)
(A 2)
`

// panicHarness builds an engine whose matcher panics on the first
// maintenance insert into class B.
func panicHarness(t *testing.T, cfg Config) (*Engine, *metrics.Set) {
	t.Helper()
	set, prog, err := rules.CompileSource(panicSrc)
	if err != nil {
		t.Fatal(err)
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet(stats)
	m := &panicOnClass{Matcher: core.New(set, db, cs, stats), class: "B"}
	e := New(set, db, m, stats, cfg)
	if err := e.LoadFacts(prog); err != nil {
		t.Fatal(err)
	}
	return e, stats
}

// countTuples scans one class.
func countTuples(t *testing.T, e *Engine, class string) int {
	t.Helper()
	rel, ok := e.DB().Get(class)
	if !ok {
		t.Fatalf("class %s missing", class)
	}
	n := 0
	rel.Scan(func(relation.TupleID, relation.Tuple) bool { n++; return true })
	return n
}

func TestSerialPanicContained(t *testing.T) {
	e, stats := panicHarness(t, Config{})
	res, err := e.RunSerial()
	if err != nil {
		t.Fatalf("serial run failed: %v", err)
	}
	if res.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", res.Panics)
	}
	if res.Firings != 1 {
		t.Fatalf("Firings = %d, want 1 (the non-panicking instantiation)", res.Firings)
	}
	// The panicked firing rolled back: its A tuple survives, its B make
	// was undone; the quarantined instantiation never refires.
	if got := countTuples(t, e, "A"); got != 1 {
		t.Fatalf("A count = %d, want 1 (panicked firing rolled back)", got)
	}
	if got := countTuples(t, e, "B"); got != 1 {
		t.Fatalf("B count = %d, want 1 (only the clean firing committed)", got)
	}
	if got := stats.Get(metrics.PanicsContained); got != 1 {
		t.Fatalf("panics_contained = %d, want 1", got)
	}
	// The engine keeps serving: maintenance mutex free, locks released.
	if _, err := e.ApplyDelta([]DeltaOp{{Class: "A", Tuple: relation.Tuple{value.OfInt(9)}}}); err != nil {
		t.Fatalf("post-panic batch failed: %v", err)
	}
}

func TestConcurrentPanicContained(t *testing.T) {
	e, stats := panicHarness(t, Config{Workers: 4})
	res, err := e.RunConcurrent()
	if err != nil {
		t.Fatalf("concurrent run failed: %v", err)
	}
	if res.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", res.Panics)
	}
	if got := countTuples(t, e, "B"); got != 1 {
		t.Fatalf("B count = %d, want 1", got)
	}
	if got := stats.Get(metrics.PanicsContained); got != 1 {
		t.Fatalf("panics_contained = %d, want 1", got)
	}
	// No transaction lock leaked: a fresh transaction gets every target
	// immediately.
	txn := lock.TxnID(1 << 30)
	if err := e.Locks().AcquireTimeout(txn, lock.RelationTarget("A"), lock.Exclusive, 50*time.Millisecond); err != nil {
		t.Fatalf("lock on A still held after panic: %v", err)
	}
	e.Locks().Release(txn)
	if _, err := e.ApplyDelta([]DeltaOp{{Class: "A", Tuple: relation.Tuple{value.OfInt(9)}}}); err != nil {
		t.Fatalf("post-panic batch failed: %v", err)
	}
}

func TestBatchPanicContained(t *testing.T) {
	e, stats := panicHarness(t, Config{})
	// The batch's maintenance panics on the first B insert: the whole
	// batch rolls back and the error classifies as a contained panic.
	_, err := e.ApplyDelta([]DeltaOp{
		{Class: "B", Tuple: relation.Tuple{value.OfInt(7)}},
		{Class: "B", Tuple: relation.Tuple{value.OfInt(8)}},
	})
	if !errors.Is(err, ErrRulePanic) {
		t.Fatalf("batch error = %v, want ErrRulePanic", err)
	}
	if got := countTuples(t, e, "B"); got != 0 {
		t.Fatalf("B count = %d, want 0 (panicked batch rolled back)", got)
	}
	if got := stats.Get(metrics.PanicsContained); got != 1 {
		t.Fatalf("panics_contained = %d, want 1", got)
	}
	// The fault was one-shot; the retried batch commits.
	ids, err := e.ApplyDelta([]DeltaOp{{Class: "B", Tuple: relation.Tuple{value.OfInt(7)}}})
	if err != nil || len(ids) != 1 {
		t.Fatalf("retried batch: ids=%v err=%v", ids, err)
	}
	if got := countTuples(t, e, "B"); got != 1 {
		t.Fatalf("B count = %d, want 1 after retry", got)
	}
}

const watchdogSrc = `
(literalize Item v)

(p slow
    (Item ^v 1)
  -->
    (call nap)
    (remove 1))

(p fast
    (Item ^v 1)
  -->
    (remove 1))

(Item 1)
`

func TestTxnTimeoutWatchdog(t *testing.T) {
	set, prog, err := rules.CompileSource(watchdogSrc)
	if err != nil {
		t.Fatal(err)
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet(stats)
	m := core.New(set, db, cs, stats)
	e := New(set, db, m, stats, Config{Workers: 2, TxnTimeout: 10 * time.Millisecond, Out: io.Discard})
	e.RegisterFunc("nap", func([]value.V) error {
		time.Sleep(80 * time.Millisecond)
		return nil
	})
	if err := e.LoadFacts(prog); err != nil {
		t.Fatal(err)
	}
	// Both instantiations want an exclusive lock on the same tuple. One
	// sleeps 80ms while holding it; the other's waits exceed the 10ms
	// budget, so the watchdog aborts and retries it instead of letting
	// it block unboundedly.
	res, err := e.RunConcurrent()
	if err != nil {
		t.Fatalf("concurrent run failed: %v", err)
	}
	if res.Firings < 1 {
		t.Fatalf("Firings = %d, want >= 1", res.Firings)
	}
	if got := stats.Get(metrics.TxnTimeouts); got < 1 {
		t.Fatalf("txn_timeouts = %d, want >= 1", got)
	}
	if res.Aborts < 1 {
		t.Fatalf("Aborts = %d, want >= 1 (watchdog abort counted)", res.Aborts)
	}
}
