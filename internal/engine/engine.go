// Package engine drives production-system execution: the recognize-act
// cycle of §2.1 (Match, Select, Act) with two executors.
//
// The serial executor reproduces OPS5: one instantiation is selected per
// cycle under a conflict-resolution strategy and its RHS actions run to
// completion before the next Match.
//
// The concurrent executor implements the paper's proposal (§5.2): every
// instantiation in the conflict set becomes a transaction; transactions
// run on a pool of workers under strict two-phase locking over the WM
// relations, with read locks on matched tuples, write locks on updated
// tuples, relation-level read locks for negative dependence, and the
// commit point deferred until the maintenance process (conflict-set
// propagation) triggered by the transaction's updates completes.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prodsys/internal/conflict"
	"prodsys/internal/joiner"
	"prodsys/internal/lang"
	"prodsys/internal/lock"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
	"prodsys/internal/value"
	"prodsys/internal/wal"
)

// ErrStale marks a transaction whose supporting tuples vanished between
// selection and lock acquisition.
var ErrStale = errors.New("engine: instantiation stale")

// ErrBlocked marks a transaction whose negated condition re-verification
// (NOT EXISTS under a relation read lock) failed.
var ErrBlocked = errors.New("engine: negated condition no longer satisfied")

// ErrUnknownClass marks an operation naming a WM class absent from the
// catalog; test with errors.Is.
var ErrUnknownClass = errors.New("unknown class")

// ErrRulePanic marks a firing or maintenance unit that panicked and was
// contained: its WM effects were rolled back, its locks released, and
// the WAL never saw a commit. Test with errors.Is.
var ErrRulePanic = errors.New("engine: panic contained")

// ErrReadOnly marks a write rejected because a WAL failure (full disk,
// I/O error) flipped the engine into read-only degraded mode: queries
// keep serving from the in-memory relations, writes fail fast instead
// of diverging from the log. Test with errors.Is.
var ErrReadOnly = errors.New("engine: read-only mode")

// ErrClosed marks a write attempted after Shutdown. Test with errors.Is.
var ErrClosed = errors.New("engine: closed")

// Config tunes an Engine.
type Config struct {
	// Strategy selects among conflict-set instantiations in the serial
	// executor. Defaults to conflict.FIFO.
	Strategy conflict.Strategy
	// MaxFirings caps rule firings as a runaway guard. 0 means 10000.
	MaxFirings int
	// Workers sizes the concurrent executor's pool. 0 means 4.
	Workers int
	// Out receives write-action output. nil discards it.
	Out io.Writer
	// CommitEarly releases a transaction's locks before the maintenance
	// process finishes — the protocol violation the paper warns against.
	// Only for the failure-injection experiments; breaks serializability.
	CommitEarly bool
	// SetAtATime makes the serial executor fire, in one cycle, every
	// eligible instantiation of the selected rule — the set-oriented
	// execution of §5.1 ("a selected production will execute
	// simultaneously against all combinations of these sets of tuples").
	// Instantiations invalidated by earlier members of the batch are
	// skipped.
	SetAtATime bool
	// Tracer receives structured execution events from the engine, the
	// lock manager and (via the loader) the matcher and conflict set.
	// nil or disabled tracers cost a single predictable branch per emit
	// point.
	Tracer *trace.Tracer
	// TxnTimeout, when positive, bounds each firing transaction's lock
	// acquisition: a transaction still waiting past the deadline is
	// withdrawn from the lock queues, aborted, and retried with backoff —
	// the watchdog that keeps one wedged transaction from stalling the
	// scheduler. Zero disables the watchdog.
	TxnTimeout time.Duration
	// Seed seeds the engine's private RNG — the deadlock-victim retry
	// jitter — so retry schedules are reproducible run-to-run under a
	// fixed seed instead of drawing from the process-global source.
	Seed int64
	// ShardWorkers sizes the parallel match scheduler's worker pool when
	// the catalog is sharded and the matcher implements match.Shardable.
	// 0 means min(shard space, max(2, NumCPU)); negative (or a shard
	// space of 1) disables parallel maintenance entirely.
	ShardWorkers int
}

// Result summarizes a run.
type Result struct {
	Firings int
	Cycles  int
	Halted  bool
	Aborts  int
	Panics  int // firings whose panic was contained and rolled back
}

// Engine couples a WM catalog, a matcher and an executor.
type Engine struct {
	set     *rules.Set
	db      *relation.DB
	matcher match.Matcher
	cs      *conflict.Set
	stats   *metrics.Set
	locks   *lock.Manager
	cfg     Config
	tr      *trace.Tracer

	// maintMu serializes WM+matcher maintenance: the matchers are
	// sequential structures, exactly the paper's observation that update
	// propagation is the non-interleavable portion of execution. Its
	// critical sections are counted in metrics.SerialOps.
	maintMu sync.Mutex
	halted  atomic.Bool
	nextTxn atomic.Uint64

	// readOnly flips (once, permanently) when a WAL failure leaves
	// durability unpromisable; closed flips at Shutdown. Both gate the
	// write entry points via checkWritable; reads are never gated.
	readOnly atomic.Bool
	roCause  atomic.Value // error: the failure that flipped readOnly
	closed   atomic.Bool

	// replica gates writes while the engine follows a primary's WAL
	// feed: local mutation comes only through the replication apply
	// path, never the public write entry points. Unlike readOnly it is
	// reversible — promotion flips it off.
	replica atomic.Bool

	// rng drives the deadlock-victim retry jitter, seeded from
	// Config.Seed so retry schedules are reproducible per engine.
	rngMu sync.Mutex
	rng   *rand.Rand

	// negClasses are the classes some rule is negatively dependent on;
	// inserts into them take a relation-level write lock (§5.2).
	negClasses map[string]bool

	// funcs holds the Go callbacks reachable from call actions.
	funcs map[string]CallFunc

	// wmObserver, when set, is invoked after every WM change has been
	// propagated to the matcher — the hook materialized views and external
	// triggers attach to.
	wmObserver func(inserted bool, class string, id relation.TupleID, t relation.Tuple)

	// wal, when attached, receives one committed unit at each commit
	// point: after the maintenance process completes, before locks
	// release (§5.2's deferred commit, made durable). Appends happen
	// under maintMu, so log order equals maintenance order.
	wal *wal.Log
}

// CallFunc is a Go procedure reachable from a rule's (call name args...)
// action — OPS5's escape hatch "for calling general procedures" (§3.1).
// The arguments are the action's terms resolved under the firing
// instantiation's bindings.
type CallFunc func(args []value.V) error

// RegisterFunc makes fn callable from rule RHS call actions under the
// given name. Registration must happen before running.
func (e *Engine) RegisterFunc(name string, fn CallFunc) {
	if e.funcs == nil {
		e.funcs = make(map[string]CallFunc)
	}
	e.funcs[name] = fn
}

// SetWMObserver registers a callback invoked after each WM change
// (insert: inserted=true; delete: inserted=false) under the maintenance
// lock. The callback must not re-enter the engine.
func (e *Engine) SetWMObserver(fn func(inserted bool, class string, id relation.TupleID, t relation.Tuple)) {
	e.wmObserver = fn
}

// New builds an engine. The db must contain a relation per class
// (rules.BuildDB). stats may be nil.
func New(set *rules.Set, db *relation.DB, matcher match.Matcher, stats *metrics.Set, cfg Config) *Engine {
	if cfg.Strategy == nil {
		cfg.Strategy = conflict.FIFO{}
	}
	if cfg.MaxFirings == 0 {
		cfg.MaxFirings = 10000
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	neg := map[string]bool{}
	for _, r := range set.Rules {
		for _, ce := range r.CEs {
			if ce.Negated {
				neg[ce.Class] = true
			}
		}
	}
	locks := lock.NewManager(stats)
	locks.SetTracer(cfg.Tracer)
	return &Engine{
		set:        set,
		db:         db,
		matcher:    matcher,
		cs:         matcher.ConflictSet(),
		stats:      stats,
		locks:      locks,
		cfg:        cfg,
		tr:         cfg.Tracer,
		negClasses: neg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
	}
}

// DB exposes the working-memory catalog.
func (e *Engine) DB() *relation.DB { return e.db }

// Matcher exposes the matcher.
func (e *Engine) Matcher() match.Matcher { return e.matcher }

// ConflictSet exposes the conflict set.
func (e *Engine) ConflictSet() *conflict.Set { return e.cs }

// Locks exposes the lock manager (for tests and experiments).
func (e *Engine) Locks() *lock.Manager { return e.locks }

// WithMaintenanceLock runs fn while holding the maintenance mutex, so
// fn sees a quiescent, transaction-consistent WM and matcher state with
// no firing or batch mid-maintenance. The integrity auditor runs its
// online audits under it, between firings.
func (e *Engine) WithMaintenanceLock(fn func()) {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	fn()
}

// SetWAL attaches an open write-ahead log: every unit committed from
// here on — rule-firing transactions, batches, direct Assert/Retract —
// is appended at its commit point. Attach after recovery replay, so
// replayed units are not logged a second time.
func (e *Engine) SetWAL(l *wal.Log) { e.wal = l }

// WAL returns the attached write-ahead log, nil when durability is off.
func (e *Engine) WAL() *wal.Log { return e.wal }

// opRecorder accumulates the WM operations of one unit: the redo ops
// the commit hook appends to the write-ahead log as one atomic record
// group, and the undo ops that reverse the unit if it panics before
// commit.
type opRecorder struct {
	ops  []wal.Op
	undo []undoOp
}

// undoOp reverses one applied WM operation.
type undoOp struct {
	retract bool   // true: the original op asserted; undo by retracting
	class   string //
	id      relation.TupleID
	tuple   relation.Tuple // the deleted tuple, for re-insertion
}

// recorder returns a fresh recorder. Every firing records its ops: the
// redo side feeds the WAL commit hook (ignored when no WAL is
// attached), the undo side makes the firing reversible when its RHS or
// maintenance panics.
func (e *Engine) recorder() *opRecorder {
	return &opRecorder{}
}

// rollbackLocked reverse-applies the recorded undo ops, newest first,
// best-effort: each step runs storage and matcher maintenance and
// ignores errors — after a contained panic the matcher may have seen
// only part of the unit, so some reversals have nothing to reverse
// there. The integrity auditor is the backstop for any residue. Caller
// holds maintMu.
func (e *Engine) rollbackLocked(rec *opRecorder) {
	if rec == nil {
		return
	}
	for i := len(rec.undo) - 1; i >= 0; i-- {
		u := rec.undo[i]
		func() {
			defer func() { _ = recover() }()
			if u.retract {
				_, _ = e.retractLocked(u.class, u.id, nil)
			} else {
				_ = e.replayAssertLocked(u.class, u.id, u.tuple)
			}
		}()
	}
	rec.undo = nil
	rec.ops = nil
}

// rollback is rollbackLocked taking maintMu itself.
func (e *Engine) rollback(rec *opRecorder) {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.rollbackLocked(rec)
}

// containPanic converts a recovered panic value into an ErrRulePanic,
// counting and tracing the containment.
func (e *Engine) containPanic(scope string, r any) error {
	e.stats.Inc(metrics.PanicsContained)
	if e.tr.Enabled() {
		e.tr.Emit(trace.Event{
			Kind: trace.KindPanicContained, At: e.tr.Now(),
			CE: -1, Extra: fmt.Sprintf("%s: %v", scope, r),
		})
	}
	return fmt.Errorf("%w: %s: %v", ErrRulePanic, scope, r)
}

// safeApplyActions is applyActions with fault containment: a panic in
// the RHS interpreter, a called Go function, or matcher maintenance is
// recovered, the unit's recorded WM effects are rolled back (through
// storage, matcher, and observer), and the panic surfaces as an
// ErrRulePanic. When lockedMu is true the caller holds maintMu and the
// rollback runs under it; otherwise the rollback takes maintMu itself
// (the per-op closures of applyActions release it before unwinding).
func (e *Engine) safeApplyActions(in *conflict.Instantiation, lockedMu bool, rec *opRecorder) (halted bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			halted = false
			err = e.containPanic("rule "+in.Rule.Name, r)
			if lockedMu {
				e.rollbackLocked(rec)
			} else {
				e.rollback(rec)
			}
		}
	}()
	return e.applyActions(in, lockedMu, rec)
}

// ReadOnly reports whether a WAL failure has flipped the engine into
// read-only degraded mode (queries served, writes rejected).
func (e *Engine) ReadOnly() bool { return e.readOnly.Load() }

// ReadOnlyCause returns the failure that flipped the engine read-only,
// nil while writable.
func (e *Engine) ReadOnlyCause() error {
	if err, ok := e.roCause.Load().(error); ok {
		return err
	}
	return nil
}

// enterReadOnly flips the engine read-only (idempotently) and returns
// cause wrapped in ErrReadOnly. Degradation is one-way: once the log
// cannot be trusted, only a restart (with recovery) resumes writes.
func (e *Engine) enterReadOnly(cause error) error {
	if e.readOnly.CompareAndSwap(false, true) {
		e.roCause.Store(cause)
		e.stats.Max(metrics.ReadOnlyMode, 1)
		if e.tr.Enabled() {
			e.tr.Emit(trace.Event{
				Kind: trace.KindReadOnly, At: e.tr.Now(),
				CE: -1, Extra: cause.Error(),
			})
		}
	}
	return fmt.Errorf("%w: %w", ErrReadOnly, cause)
}

// checkWritable gates the write entry points: a closed engine rejects
// with ErrClosed, a degraded one with ErrReadOnly (carrying the cause).
func (e *Engine) checkWritable() error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.readOnly.Load() {
		if cause := e.ReadOnlyCause(); cause != nil {
			return fmt.Errorf("%w: %w", ErrReadOnly, cause)
		}
		return ErrReadOnly
	}
	if e.replica.Load() {
		return ErrReplica
	}
	return nil
}

// Shutdown marks the engine closed (writes start failing with
// ErrClosed), detaches the WAL under the maintenance lock — so no
// commit point can race the handle — and closes it. Idempotent and safe
// for concurrent callers; later calls return nil.
func (e *Engine) Shutdown() error {
	e.closed.Store(true)
	e.maintMu.Lock()
	l := e.wal
	e.wal = nil
	e.maintMu.Unlock()
	if l == nil {
		return nil
	}
	return l.Close()
}

// commitUnitLocked appends one committed unit at the §5.2 commit point
// and runs a due checkpoint compaction; maintMu must be held. Failure
// handling is the graceful-degradation policy:
//
//   - Append failure with no records landed (LastSeq unchanged): the
//     unit never reached the log, so its WM effects are rolled back via
//     rec and the engine flips read-only — memory keeps agreeing with
//     the log.
//   - Append failure after records landed (the inline sync of
//     SyncAlways/SyncInterval), or a checkpoint failure: the unit IS in
//     the log, so memory is kept and only the degradation flag flips.
//
// On success it returns the log handle and the unit's sequence for the
// caller's post-unlock waitDurable (both zero when no WAL is attached).
func (e *Engine) commitUnitLocked(key string, batch bool, ops []wal.Op, rec *opRecorder) (*wal.Log, uint64, error) {
	l := e.wal
	if l == nil {
		return nil, 0, nil
	}
	before := l.LastSeq()
	var aerr error
	if batch {
		aerr = l.AppendBatch(ops)
	} else {
		aerr = l.AppendTxn(key, ops)
	}
	if aerr != nil {
		if l.LastSeq() == before {
			e.rollbackLocked(rec)
			if errors.Is(aerr, wal.ErrClosed) && e.closed.Load() {
				return nil, 0, fmt.Errorf("%w: %w", ErrClosed, aerr)
			}
			return nil, 0, e.enterReadOnly(aerr)
		}
		return nil, 0, e.enterReadOnly(aerr)
	}
	seq := l.LastSeq()
	if l.CheckpointDue() {
		if cerr := l.Checkpoint(e.db.Dump); cerr != nil {
			// The unit is already committed in the log; the failed
			// compaction only takes future writes down.
			return nil, 0, e.enterReadOnly(cerr)
		}
	}
	return l, seq, nil
}

// waitDurable blocks until the unit at seq is on stable storage — the
// group-commit rendezvous under wal.SyncGroup, a no-op otherwise. It
// must be called after maintMu is released, so concurrent committers
// can pile onto one leader fsync. A group-sync failure degrades the
// engine read-only: the unit is applied and logged, but durability can
// no longer be promised for anyone after it.
func (e *Engine) waitDurable(l *wal.Log, seq uint64) error {
	if l == nil || seq == 0 {
		return nil
	}
	if err := l.WaitDurable(seq); err != nil {
		return e.enterReadOnly(err)
	}
	return nil
}

// Checkpoint forces a WAL checkpoint compaction under the maintenance
// lock. A no-op without an attached WAL.
func (e *Engine) Checkpoint() error {
	if e.wal == nil {
		return nil
	}
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	return e.wal.Checkpoint(e.db.Dump)
}

// Replay applies recovered WAL units through storage and matcher
// maintenance: assertions restore their original tuple IDs (so
// conflict-set keys and recency survive the restart), retractions
// delete, and each rule-firing unit's instantiation key is re-marked
// fired, restoring refraction state. It returns the number of WM
// operations applied. Call before SetWAL, so replayed units are not
// re-logged.
func (e *Engine) Replay(txns []wal.Txn) (int, error) {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	ops := 0
	for _, t := range txns {
		for _, op := range t.Ops {
			var err error
			if op.Retract {
				err = e.replayRetractLocked(op.Class, op.ID)
			} else {
				err = e.replayAssertLocked(op.Class, op.ID, op.Tuple)
			}
			if err != nil {
				return ops, fmt.Errorf("engine: replay: %w", err)
			}
			ops++
		}
		if !t.Batch && t.Key != "" {
			e.cs.MarkFired(t.Key)
		}
	}
	return ops, nil
}

// replayAssertLocked re-inserts a logged tuple under its original ID and
// runs matcher maintenance. Recovery counters are the caller's concern;
// the regular execution counters are left untouched.
func (e *Engine) replayAssertLocked(class string, id relation.TupleID, t relation.Tuple) error {
	rel, ok := e.db.Get(class)
	if !ok {
		return fmt.Errorf("%w %s", ErrUnknownClass, class)
	}
	if err := rel.InsertAt(id, t); err != nil {
		return err
	}
	stored, _ := rel.Get(id)
	if err := e.matcher.Insert(class, id, stored); err != nil {
		return err
	}
	if e.wmObserver != nil {
		e.wmObserver(true, class, id, stored)
	}
	return nil
}

// LogRestored appends one batch record covering tuples restored outside
// the engine's own paths (System.RestoreWM), so a later recovery
// reproduces them under their original IDs. A no-op without a WAL.
func (e *Engine) LogRestored(rts []relation.RestoredTuple) error {
	if e.wal == nil || len(rts) == 0 {
		return nil
	}
	ops := make([]wal.Op, len(rts))
	for i, rt := range rts {
		ops[i] = wal.Op{Class: rt.Class, ID: rt.ID, Tuple: rt.Tuple}
	}
	e.maintMu.Lock()
	l, seq, err := e.commitUnitLocked("", true, ops, nil)
	e.maintMu.Unlock()
	if err != nil {
		return err
	}
	return e.waitDurable(l, seq)
}

// replayRetractLocked re-applies a logged retraction.
func (e *Engine) replayRetractLocked(class string, id relation.TupleID) error {
	rel, ok := e.db.Get(class)
	if !ok {
		return fmt.Errorf("%w %s", ErrUnknownClass, class)
	}
	t, err := rel.Delete(id)
	if err != nil {
		return err
	}
	if err := e.matcher.Delete(class, id, t); err != nil {
		return err
	}
	if e.wmObserver != nil {
		e.wmObserver(false, class, id, t)
	}
	return nil
}

// Assert inserts a WM element and runs the maintenance process. It is the
// entry point for initial facts and external updates; with a WAL
// attached the change is logged (and synced per policy) before Assert
// returns.
func (e *Engine) Assert(class string, t relation.Tuple) (relation.TupleID, error) {
	if err := e.checkWritable(); err != nil {
		return 0, err
	}
	e.maintMu.Lock()
	rec := e.recorder()
	id, err := e.assertLocked(class, t, rec)
	if err != nil {
		e.maintMu.Unlock()
		return id, err
	}
	l, seq, err := e.commitUnitLocked("", true, rec.ops, rec)
	e.maintMu.Unlock()
	if err != nil {
		return id, err
	}
	return id, e.waitDurable(l, seq)
}

// assertLocked inserts a tuple and runs maintenance. rec, when non-nil,
// records the redo and undo ops as soon as the storage write lands —
// before matcher maintenance — so a maintenance panic still rolls the
// storage change back.
func (e *Engine) assertLocked(class string, t relation.Tuple, rec *opRecorder) (relation.TupleID, error) {
	rel, ok := e.db.Get(class)
	if !ok {
		return 0, fmt.Errorf("engine: %w %s", ErrUnknownClass, class)
	}
	t0 := e.tr.Now()
	id, err := rel.Insert(t)
	if err != nil {
		return 0, err
	}
	stored, _ := rel.Get(id)
	if rec != nil {
		rec.ops = append(rec.ops, wal.Op{Class: class, ID: id, Tuple: stored})
		rec.undo = append(rec.undo, undoOp{retract: true, class: class, id: id})
	}
	e.stats.Inc(metrics.SerialOps)
	e.stats.Inc(metrics.Counter("updates_" + class))
	if err := e.matcher.Insert(class, id, stored); err != nil {
		return 0, err
	}
	if e.tr.Enabled() {
		// Dur covers the store plus the whole maintenance process.
		e.tr.Emit(trace.Event{
			Kind: trace.KindTupleInsert, At: t0, Dur: e.tr.Now() - t0,
			CE: -1, Class: class, ID: uint64(id),
		})
	}
	if e.wmObserver != nil {
		e.wmObserver(true, class, id, stored)
	}
	return id, nil
}

// Retract deletes a WM element and runs the maintenance process; with a
// WAL attached the change is logged before Retract returns.
func (e *Engine) Retract(class string, id relation.TupleID) error {
	if err := e.checkWritable(); err != nil {
		return err
	}
	e.maintMu.Lock()
	rec := e.recorder()
	if _, err := e.retractLocked(class, id, rec); err != nil {
		e.maintMu.Unlock()
		return err
	}
	l, seq, err := e.commitUnitLocked("", true, rec.ops, rec)
	e.maintMu.Unlock()
	if err != nil {
		return err
	}
	return e.waitDurable(l, seq)
}

// retractLocked deletes a tuple and runs maintenance, returning the
// deleted tuple. rec, when non-nil, records the redo and undo ops as
// soon as the storage delete lands — before matcher maintenance — so a
// maintenance panic still rolls the storage change back.
func (e *Engine) retractLocked(class string, id relation.TupleID, rec *opRecorder) (relation.Tuple, error) {
	rel, ok := e.db.Get(class)
	if !ok {
		return nil, fmt.Errorf("engine: %w %s", ErrUnknownClass, class)
	}
	t0 := e.tr.Now()
	t, err := rel.Delete(id)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		rec.ops = append(rec.ops, wal.Op{Retract: true, Class: class, ID: id})
		rec.undo = append(rec.undo, undoOp{class: class, id: id, tuple: t})
	}
	e.stats.Inc(metrics.SerialOps)
	e.stats.Inc(metrics.Counter("updates_" + class))
	if err := e.matcher.Delete(class, id, t); err != nil {
		return nil, err
	}
	if e.tr.Enabled() {
		e.tr.Emit(trace.Event{
			Kind: trace.KindTupleDelete, At: t0, Dur: e.tr.Now() - t0,
			CE: -1, Class: class, ID: uint64(id),
		})
	}
	if e.wmObserver != nil {
		e.wmObserver(false, class, id, t)
	}
	return t, nil
}

// LoadFacts asserts the facts of a parsed program.
func (e *Engine) LoadFacts(prog *lang.Program) error {
	for _, f := range prog.Facts {
		class, tup, err := rules.FactTuple(e.set, f)
		if err != nil {
			return err
		}
		if _, err := e.Assert(class, tup); err != nil {
			return err
		}
	}
	return nil
}

// applyActions interprets the RHS of a fired instantiation. When lockedMu
// is true the caller already holds maintMu (concurrent executor inside
// its commit-scope). rec, when non-nil, collects the applied WM ops for
// the caller's commit-point WAL append; the ops deliberately bypass the
// per-op logging of the public Assert/Retract, which would split one
// atomic firing across several log units. Returns whether a halt action
// ran.
func (e *Engine) applyActions(in *conflict.Instantiation, lockedMu bool, rec *opRecorder) (bool, error) {
	// Recording happens inside assertLocked/retractLocked, between the
	// storage write and matcher maintenance: a panic in maintenance must
	// find the storage op already on the undo list.
	baseAssert := func(class string, t relation.Tuple) (relation.TupleID, error) {
		return e.assertLocked(class, t, rec)
	}
	baseRetract := func(class string, id relation.TupleID) (relation.Tuple, error) {
		return e.retractLocked(class, id, rec)
	}
	if !lockedMu {
		innerAssert, innerRetract := baseAssert, baseRetract
		baseAssert = func(class string, t relation.Tuple) (relation.TupleID, error) {
			e.maintMu.Lock()
			defer e.maintMu.Unlock()
			return innerAssert(class, t)
		}
		baseRetract = func(class string, id relation.TupleID) (relation.Tuple, error) {
			e.maintMu.Lock()
			defer e.maintMu.Unlock()
			return innerRetract(class, id)
		}
	}
	assert := baseAssert
	retract := func(class string, id relation.TupleID) error {
		_, err := baseRetract(class, id)
		return err
	}
	b := in.Bindings.Clone()
	halted := false
	for _, act := range in.Rule.Actions {
		switch act.Kind {
		case lang.ActMake:
			schema := e.set.Classes[act.Class]
			t := make(relation.Tuple, schema.Arity())
			for _, as := range act.Assigns {
				pos, _ := schema.Pos(as.Attr)
				v, err := rules.ResolveTerm(as.Term, b)
				if err != nil {
					return halted, fmt.Errorf("rule %s make: %w", in.Rule.Name, err)
				}
				t[pos] = v
			}
			if _, err := assert(act.Class, t); err != nil {
				return halted, err
			}
		case lang.ActRemove:
			ceIdx := act.CE - 1
			id := in.TupleIDs[ceIdx]
			class := in.Rule.CEs[ceIdx].Class
			if err := retract(class, id); err != nil {
				// The element may already be gone (removed twice by one
				// RHS, or by a concurrent transaction); OPS5 ignores this.
				continue
			}
		case lang.ActModify:
			ceIdx := act.CE - 1
			id := in.TupleIDs[ceIdx]
			class := in.Rule.CEs[ceIdx].Class
			rel, err := e.db.Lookup(class)
			if err != nil {
				return halted, fmt.Errorf("rule %s modify: %w", in.Rule.Name, err)
			}
			old, ok := rel.Get(id)
			if !ok {
				continue
			}
			t := old.Clone()
			for _, as := range act.Assigns {
				pos, _ := in.Rule.CEs[ceIdx].Schema.Pos(as.Attr)
				v, err := rules.ResolveTerm(as.Term, b)
				if err != nil {
					return halted, fmt.Errorf("rule %s modify: %w", in.Rule.Name, err)
				}
				t[pos] = v
			}
			// A modification is a deletion followed by an insertion (§3.1).
			if err := retract(class, id); err != nil {
				continue
			}
			if _, err := assert(class, t); err != nil {
				return halted, err
			}
		case lang.ActWrite:
			if e.cfg.Out != nil {
				parts := make([]string, 0, len(act.Args))
				for _, arg := range act.Args {
					v, err := rules.ResolveTerm(arg, b)
					if err != nil {
						return halted, fmt.Errorf("rule %s write: %w", in.Rule.Name, err)
					}
					parts = append(parts, v.String())
				}
				fmt.Fprintln(e.cfg.Out, strings.Join(parts, " "))
			}
		case lang.ActBind:
			v, err := rules.ResolveTerm(act.Term, b)
			if err != nil {
				return halted, fmt.Errorf("rule %s bind: %w", in.Rule.Name, err)
			}
			b[act.Var] = v
		case lang.ActCall:
			fn, ok := e.funcs[act.Func]
			if !ok {
				return halted, fmt.Errorf("rule %s: call of unregistered function %q", in.Rule.Name, act.Func)
			}
			args := make([]value.V, len(act.Args))
			for i, arg := range act.Args {
				v, err := rules.ResolveTerm(arg, b)
				if err != nil {
					return halted, fmt.Errorf("rule %s call %s: %w", in.Rule.Name, act.Func, err)
				}
				args[i] = v
			}
			if err := fn(args); err != nil {
				return halted, fmt.Errorf("rule %s call %s: %w", in.Rule.Name, act.Func, err)
			}
		case lang.ActHalt:
			halted = true
			e.halted.Store(true)
		}
	}
	return halted, nil
}

// ApplyForExploration fires one instantiation's actions immediately,
// outside any executor and without locking — the primitive the
// experiment harness uses to exhaustively enumerate serial schedules
// (every possible Select choice of §2.1). Exploration firings are not
// WAL-logged; the harness explores alternatives, it does not commit.
func (e *Engine) ApplyForExploration(in *conflict.Instantiation) (halted bool, err error) {
	return e.applyActions(in, false, nil)
}

// RunSerial executes the OPS5 recognize-act cycle: Match (incremental,
// already maintained), Select one instantiation, Act, repeat until the
// conflict set empties, a halt fires, or the firing cap is reached.
func (e *Engine) RunSerial() (Result, error) {
	return e.RunSerialContext(context.Background())
}

// RunSerialContext is RunSerial honoring ctx: cancellation is observed
// between recognize-act cycles (a cycle in progress completes).
func (e *Engine) RunSerialContext(ctx context.Context) (Result, error) {
	var res Result
	e.halted.Store(false)
	for res.Firings < e.cfg.MaxFirings {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if err := e.checkWritable(); err != nil {
			return res, err
		}
		in := e.cs.Select(e.cfg.Strategy)
		if in == nil {
			return res, nil
		}
		res.Cycles++
		batch := []*conflict.Instantiation{in}
		if e.cfg.SetAtATime {
			for _, other := range e.cs.SelectAll() {
				if other.Rule == in.Rule && other.Key() != in.Key() {
					batch = append(batch, other)
				}
			}
		}
		for _, bi := range batch {
			if e.cs.HasFired(bi.Key()) {
				continue
			}
			if bi != in && !e.cs.Contains(bi.Key()) {
				continue // retracted by an earlier member of the batch
			}
			e.cs.MarkFired(bi.Key())
			rec := e.recorder()
			t0 := e.tr.Now()
			halted, err := e.safeApplyActions(bi, false, rec)
			if e.tr.Enabled() {
				e.tr.Emit(trace.Event{
					Kind: trace.KindRuleFire, At: t0, Dur: e.tr.Now() - t0,
					Rule: bi.Rule.Name, CE: -1, Count: 1, Extra: bi.Key(),
				})
			}
			if err != nil {
				if errors.Is(err, ErrRulePanic) {
					// Contained: the firing's effects were rolled back, the
					// instantiation stays fired (quarantined, so a panic
					// cannot loop), and the cycle keeps serving.
					res.Panics++
					continue
				}
				return res, err
			}
			if e.wal != nil {
				// Commit point: the firing's maintenance is complete; log
				// it as one unit before the cycle moves on.
				e.maintMu.Lock()
				l, seq, lerr := e.commitUnitLocked(bi.Key(), false, rec.ops, rec)
				e.maintMu.Unlock()
				if lerr == nil {
					lerr = e.waitDurable(l, seq)
				}
				if lerr != nil {
					return res, lerr
				}
			}
			res.Firings++
			e.stats.Inc(metrics.RuleFirings)
			if halted {
				res.Halted = true
				return res, nil
			}
			if res.Firings >= e.cfg.MaxFirings {
				break
			}
		}
	}
	return res, fmt.Errorf("engine: firing cap %d reached", e.cfg.MaxFirings)
}

// lockPlan computes the 2PL acquisition list for one instantiation, in a
// deterministic global order (reducing, not eliminating, deadlocks).
type lockReq struct {
	tgt  lock.Target
	mode lock.Mode
}

func (e *Engine) lockPlan(in *conflict.Instantiation) []lockReq {
	modes := map[lock.Target]lock.Mode{}
	want := func(tgt lock.Target, mode lock.Mode) {
		if cur, ok := modes[tgt]; !ok || (cur == lock.Shared && mode == lock.Exclusive) {
			modes[tgt] = mode
		}
	}
	// Read locks on every matched tuple (§5.2).
	for i, ce := range in.Rule.CEs {
		if ce.Negated {
			// Negative dependence: relation-level read lock.
			want(lock.RelationTarget(ce.Class), lock.Shared)
			continue
		}
		want(lock.TupleTarget(ce.Class, in.TupleIDs[i]), lock.Shared)
	}
	for _, act := range in.Rule.Actions {
		switch act.Kind {
		case lang.ActRemove, lang.ActModify:
			ce := in.Rule.CEs[act.CE-1]
			want(lock.TupleTarget(ce.Class, in.TupleIDs[act.CE-1]), lock.Exclusive)
			if e.negClasses[ce.Class] {
				// Deletions also change NOT EXISTS results.
				want(lock.RelationTarget(ce.Class), lock.Exclusive)
			}
			if act.Kind == lang.ActModify && e.negClasses[ce.Class] {
				want(lock.RelationTarget(ce.Class), lock.Exclusive)
			}
		case lang.ActMake:
			if e.negClasses[act.Class] {
				// "T_j will always need a write lock on R_i before it can
				// be executed" for inserts into negatively depended-upon
				// relations (the phantom side of §5.2).
				want(lock.RelationTarget(act.Class), lock.Exclusive)
			}
		}
	}
	plan := make([]lockReq, 0, len(modes))
	for tgt, mode := range modes {
		plan = append(plan, lockReq{tgt: tgt, mode: mode})
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].tgt.String() < plan[j].tgt.String() })
	return plan
}

// runTxn executes one instantiation as a transaction: acquire locks,
// validate, act, complete maintenance, commit (release). The returned
// error classifies aborts. Cancellation is observed before lock
// acquisition; once locks are held the transaction runs to completion.
func (e *Engine) runTxn(ctx context.Context, in *conflict.Instantiation) (err error) {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.checkWritable(); err != nil {
		return err
	}
	txn := lock.TxnID(e.nextTxn.Add(1))
	// Backstop containment: a panic anywhere in the transaction outside
	// safeApplyActions (lock planning, validation joins) still releases
	// the transaction's locks and surfaces as an abort instead of
	// killing the worker. safeApplyActions handles the act+maintenance
	// region itself (it must roll back under maintMu).
	defer func() {
		if r := recover(); r != nil {
			e.locks.Release(txn)
			e.stats.Inc(metrics.TxnAborts)
			e.emitTxnAbort(in, txn, "panic")
			err = e.containPanic("txn rule "+in.Rule.Name, r)
		}
	}()
	plan := e.lockPlan(in)
	var deadline time.Time
	if e.cfg.TxnTimeout > 0 {
		deadline = time.Now().Add(e.cfg.TxnTimeout)
	}
	t0 := e.tr.Now()
	for _, req := range plan {
		var aerr error
		if e.cfg.TxnTimeout > 0 {
			// The whole plan shares one watchdog deadline; a transaction
			// whose earlier waits ate the budget fails fast on the rest.
			rem := time.Until(deadline)
			if rem <= 0 {
				rem = time.Nanosecond
			}
			aerr = e.locks.AcquireTimeout(txn, req.tgt, req.mode, rem)
		} else {
			aerr = e.locks.Acquire(txn, req.tgt, req.mode)
		}
		if aerr != nil {
			e.locks.Release(txn)
			// Deadlock victim or watchdog timeout. Count it here so the
			// TxnAborts counter agrees with Result.Aborts and the
			// txn_abort event stream: the lock manager's abortLocked
			// cannot know whether the victim belongs to a rule-firing
			// transaction.
			e.stats.Inc(metrics.TxnAborts)
			reason := "deadlock"
			if errors.Is(aerr, lock.ErrTimeout) {
				reason = "timeout"
			}
			e.emitTxnAbort(in, txn, reason)
			return aerr
		}
	}
	if e.tr.Enabled() {
		e.tr.Emit(trace.Event{
			Kind: trace.KindLockAcquire, At: t0, Dur: e.tr.Now() - t0,
			Rule: in.Rule.Name, CE: -1, ID: uint64(txn), Count: int64(len(plan)),
		})
	}
	commit := func() { e.locks.Release(txn) }
	if e.cfg.CommitEarly {
		// Protocol violation: release locks before acting/maintaining.
		commit()
		commit = func() {}
	}

	// Validation: matched tuples must still exist; negated conditions
	// must still be NOT EXISTS (checked under the relation read lock).
	for i, ce := range in.Rule.CEs {
		if ce.Negated {
			if joiner.Exists(e.db, ce, in.Bindings, e.stats) {
				commit()
				e.stats.Inc(metrics.TxnAborts)
				e.emitTxnAbort(in, txn, "blocked")
				return ErrBlocked
			}
			continue
		}
		var cur relation.Tuple
		ok := false
		if rel, lerr := e.db.Lookup(ce.Class); lerr == nil {
			cur, ok = rel.Get(in.TupleIDs[i])
		}
		if !ok || !cur.Equal(in.Tuples[i]) {
			commit()
			e.stats.Inc(metrics.TxnAborts)
			e.emitTxnAbort(in, txn, "stale")
			return ErrStale
		}
	}

	// Act + maintenance inside the serialized maintenance section; the
	// commit point comes only after the maintenance completes (§5.2).
	e.maintMu.Lock()
	if e.cs.HasFired(in.Key()) {
		e.maintMu.Unlock()
		commit()
		e.stats.Inc(metrics.TxnAborts)
		e.emitTxnAbort(in, txn, "already fired")
		return ErrStale
	}
	e.cs.MarkFired(in.Key())
	rec := e.recorder()
	tAct := e.tr.Now()
	_, err = e.safeApplyActions(in, true, rec)
	if e.tr.Enabled() {
		e.tr.Emit(trace.Event{
			Kind: trace.KindRuleFire, At: tAct, Dur: e.tr.Now() - tAct,
			Rule: in.Rule.Name, CE: -1, ID: uint64(txn), Count: 1, Extra: in.Key(),
		})
	}
	// Commit point (§5.2): maintenance is complete; the unit is appended
	// (fixing its log position) before the locks release. Under the
	// group-commit policy the locks drop here — early lock release — and
	// the acknowledgement below still waits for the group fsync: the log
	// is sequential, so a later unit durable implies this one is too. A
	// panicked unit was rolled back and is never logged.
	var durLog *wal.Log
	var durSeq uint64
	var logErr error
	if err == nil {
		durLog, durSeq, logErr = e.commitUnitLocked(in.Key(), false, rec.ops, rec)
	}
	e.maintMu.Unlock()
	commit()
	if err != nil {
		if errors.Is(err, ErrRulePanic) {
			e.stats.Inc(metrics.TxnAborts)
			e.emitTxnAbort(in, txn, "panic")
		}
		return err
	}
	if logErr != nil {
		return logErr
	}
	if derr := e.waitDurable(durLog, durSeq); derr != nil {
		return derr
	}
	e.stats.Inc(metrics.RuleFirings)
	e.stats.Inc(metrics.TxnCommits)
	if e.tr.Enabled() {
		e.tr.Emit(trace.Event{
			Kind: trace.KindTxnCommit, At: e.tr.Now(),
			Rule: in.Rule.Name, CE: -1, ID: uint64(txn),
		})
	}
	return nil
}

// emitTxnAbort records one transaction abort in the trace, keeping the
// txn_abort event count in lock-step with the TxnAborts counter.
func (e *Engine) emitTxnAbort(in *conflict.Instantiation, txn lock.TxnID, reason string) {
	if !e.tr.Enabled() {
		return
	}
	e.tr.Emit(trace.Event{
		Kind: trace.KindTxnAbort, At: e.tr.Now(),
		Rule: in.Rule.Name, CE: -1, ID: uint64(txn), Extra: reason,
	})
}

// Deadlock-victim retry bounds: exponential backoff from
// txnBackoffBase, capped at txnBackoffCap, at most maxTxnRetries
// attempts after the first. The cap keeps a pathological workload from
// turning retries into a livelock of sleeps; the jitter de-synchronizes
// victims that would otherwise collide again.
const (
	maxTxnRetries  = 16
	txnBackoffBase = 50 * time.Microsecond
	txnBackoffCap  = 5 * time.Millisecond
)

// retryBackoff returns the jittered exponential delay before retry
// attempt n (1-based): uniform in [d/2, 3d/2) around the nominal d.
// The jitter draws from the engine's seeded RNG, keeping retry
// schedules reproducible under a fixed Config.Seed.
func (e *Engine) retryBackoff(n int) time.Duration {
	d := txnBackoffBase << uint(n-1)
	if d <= 0 || d > txnBackoffCap {
		d = txnBackoffCap
	}
	e.rngMu.Lock()
	j := e.rng.Int63n(int64(d))
	e.rngMu.Unlock()
	return d/2 + time.Duration(j)
}

// RunConcurrent executes the conflict set in rounds: each round takes the
// current applicable set Ψ and fires every member as a transaction on the
// worker pool; the next round sees the conflict set produced by those
// firings (Ψ' of §5.2). Stale and blocked transactions abort harmlessly.
func (e *Engine) RunConcurrent() (Result, error) {
	return e.RunConcurrentContext(context.Background())
}

// RunConcurrentContext is RunConcurrent honoring ctx: cancellation is
// observed between rounds and before each transaction acquires locks;
// transactions already holding locks run to completion.
func (e *Engine) RunConcurrentContext(ctx context.Context) (Result, error) {
	var res Result
	e.halted.Store(false)
	var firstErr error
	var errMu sync.Mutex
	for res.Firings < e.cfg.MaxFirings {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if err := e.checkWritable(); err != nil {
			return res, err
		}
		if e.halted.Load() {
			res.Halted = true
			return res, nil
		}
		batch := e.cs.SelectAll()
		if len(batch) == 0 {
			return res, nil
		}
		if len(batch) > e.cfg.MaxFirings-res.Firings {
			batch = batch[:e.cfg.MaxFirings-res.Firings]
		}
		res.Cycles++
		var fired, aborted, panicked atomic.Int64
		work := make(chan *conflict.Instantiation)
		var wg sync.WaitGroup
		for w := 0; w < e.cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for in := range work {
					if e.halted.Load() {
						continue
					}
					err := e.runTxn(ctx, in)
					// A deadlock victim — or a watchdog timeout — is retried
					// with bounded jittered backoff rather than dropped: its
					// instantiation is still applicable (nothing invalidated
					// it — it lost a cycle tie-break or outwaited the
					// deadline), and dropping it strands the firing until the
					// next round, or forever when no next round comes. Each
					// aborted attempt still counts as an abort, keeping
					// Result.Aborts in lock-step with the TxnAborts counter
					// and the txn_abort event stream.
					for attempt := 1; (errors.Is(err, lock.ErrAborted) || errors.Is(err, lock.ErrTimeout)) &&
						attempt <= maxTxnRetries && !e.halted.Load() && ctx.Err() == nil; attempt++ {
						aborted.Add(1)
						e.stats.Inc(metrics.TxnRetries)
						time.Sleep(e.retryBackoff(attempt))
						err = e.runTxn(ctx, in)
					}
					switch {
					case err == nil:
						fired.Add(1)
					case errors.Is(err, ErrRulePanic):
						// Contained: effects rolled back, locks released,
						// instantiation quarantined; the pool keeps serving.
						aborted.Add(1)
						panicked.Add(1)
					case errors.Is(err, ErrStale), errors.Is(err, ErrBlocked),
						errors.Is(err, lock.ErrAborted), errors.Is(err, lock.ErrTimeout):
						aborted.Add(1)
					default:
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				}
			}()
		}
		for _, in := range batch {
			work <- in
		}
		close(work)
		wg.Wait()
		if firstErr != nil {
			return res, firstErr
		}
		res.Firings += int(fired.Load())
		res.Aborts += int(aborted.Load())
		res.Panics += int(panicked.Load())
		if fired.Load() == 0 && aborted.Load() == 0 {
			return res, nil
		}
		if fired.Load() == 0 {
			// Every member aborted (stale or blocked). Their retraction is
			// handled by maintenance; if the conflict set did not change,
			// stop rather than spin.
			remaining := e.cs.SelectAll()
			if len(remaining) == len(batch) {
				return res, nil
			}
		}
	}
	return res, fmt.Errorf("engine: firing cap %d reached", e.cfg.MaxFirings)
}

// SnapshotWM renders the whole working memory canonically: one line per
// live tuple, sorted — the state-equivalence test of §5.2 compares these.
func (e *Engine) SnapshotWM() string {
	var lines []string
	for _, name := range e.db.Names() {
		rel, err := e.db.Lookup(name)
		if err != nil {
			continue // dropped since Names() was taken
		}
		rel.Scan(func(_ relation.TupleID, t relation.Tuple) bool {
			lines = append(lines, name+t.String())
			return true
		})
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
