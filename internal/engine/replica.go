package engine

// This file is the replica-side apply surface of WAL log shipping
// (internal/replica): the entry points a replication client uses to
// mirror a primary's log into the local WAL and drive the shipped
// committed units through exactly the maintenance path recovery replay
// uses — so a replica's derived state (matcher networks, conflict set)
// is the same function of the same log as the primary's. Promotion is
// the inverse gate: truncate the mirrored log to its last complete
// committed unit, audit, then flip the replica gate off.

import (
	"bytes"
	"errors"
	"fmt"

	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/trace"
	"prodsys/internal/wal"
)

// ErrReplica marks a write rejected because the engine is following a
// primary's WAL feed; writes must go to the primary. Test with
// errors.Is. Unlike ErrReadOnly this state is reversible: promotion
// clears it.
var ErrReplica = errors.New("engine: replica mode (writes go to the primary)")

// SetReplica flips the replica write gate. While set, public write
// entry points fail with ErrReplica and mutation comes only through
// ApplyReplicaTxns / ReplicaBootstrap.
func (e *Engine) SetReplica(on bool) { e.replica.Store(on) }

// IsReplica reports whether the replica write gate is set.
func (e *Engine) IsReplica() bool { return e.replica.Load() }

// ApplyReplicaTxns applies committed units shipped from the primary:
// the raw record bytes are mirrored verbatim into the local WAL (so
// the replica's log stays byte-identical to the primary's, offsets and
// all), then each unit runs through the same storage+matcher
// maintenance as recovery replay, including refraction re-marking.
// epoch names the primary log epoch the bytes came from, for tracing.
//
// A local append failure degrades the engine read-only exactly like a
// commit-point append failure on a primary: the replica can no longer
// promise it holds what it acknowledged applying.
func (e *Engine) ApplyReplicaTxns(epoch uint64, raw []byte, txns []wal.Txn) error {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	if e.closed.Load() {
		return ErrClosed
	}
	if e.readOnly.Load() {
		return e.checkWritableIgnoringReplica()
	}
	if l := e.wal; l != nil && len(raw) > 0 {
		if err := l.AppendRaw(raw, len(txns)); err != nil {
			return e.enterReadOnly(err)
		}
	}
	ops := 0
	for _, t := range txns {
		for _, op := range t.Ops {
			var err error
			if op.Retract {
				err = e.replayRetractLocked(op.Class, op.ID)
			} else {
				err = e.replayAssertLocked(op.Class, op.ID, op.Tuple)
			}
			if err != nil {
				return fmt.Errorf("engine: replica apply: %w", err)
			}
			ops++
		}
		if !t.Batch && t.Key != "" {
			e.cs.MarkFired(t.Key)
		}
	}
	e.stats.Add(metrics.ReplicaTxns, int64(len(txns)))
	e.stats.Add(metrics.ReplicaOps, int64(ops))
	e.stats.Add(metrics.ReplicaBytes, int64(len(raw)))
	if e.tr.Enabled() {
		e.tr.Emit(trace.Event{
			Kind: trace.KindReplicaApply, At: e.tr.Now(),
			CE: -1, ID: epoch, Count: int64(ops),
		})
	}
	return nil
}

// checkWritableIgnoringReplica reports the closed/read-only portion of
// checkWritable — the apply path is exempt from the replica gate but
// not from degradation.
func (e *Engine) checkWritableIgnoringReplica() error {
	if e.closed.Load() {
		return ErrClosed
	}
	if cause := e.ReadOnlyCause(); cause != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, cause)
	}
	return ErrReadOnly
}

// ReplicaBootstrap replaces the replica's whole working memory with a
// primary checkpoint snapshot: every live tuple is retracted through
// normal maintenance (so matcher state empties consistently), the
// conflict set is reset, the dump is restored under its original tuple
// IDs and re-propagated, and the local WAL adopts the snapshot as its
// own checkpoint at the primary's epoch. It returns the number of
// tuples restored.
//
// Refraction state older than the snapshot is not carried by
// checkpoints (same caveat as local recovery from a checkpoint): an
// instantiation that fired before the snapshot may re-enter the
// conflict set eligible. The feed replays post-snapshot fired keys.
func (e *Engine) ReplicaBootstrap(epoch uint64, dump []byte) (int, error) {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	if e.closed.Load() {
		return 0, ErrClosed
	}
	for _, name := range e.db.Names() {
		rel, ok := e.db.Get(name)
		if !ok {
			continue
		}
		var ids []relation.TupleID
		rel.Scan(func(id relation.TupleID, _ relation.Tuple) bool {
			ids = append(ids, id)
			return true
		})
		for _, id := range ids {
			if err := e.replayRetractLocked(name, id); err != nil {
				return 0, fmt.Errorf("engine: bootstrap clear: %w", err)
			}
		}
	}
	e.cs.Reset()
	restored, err := e.db.Restore(bytes.NewReader(dump))
	if err != nil {
		return 0, fmt.Errorf("engine: bootstrap restore: %w", err)
	}
	for _, rt := range restored {
		if err := e.matcher.Insert(rt.Class, rt.ID, rt.Tuple); err != nil {
			return 0, fmt.Errorf("engine: bootstrap restore: %w", err)
		}
		if e.wmObserver != nil {
			e.wmObserver(true, rt.Class, rt.ID, rt.Tuple)
		}
	}
	if l := e.wal; l != nil {
		if err := l.AdoptCheckpoint(epoch, dump); err != nil {
			return 0, e.enterReadOnly(err)
		}
	}
	e.stats.Inc(metrics.ReplicaSnapshots)
	return len(restored), nil
}

// ReplicaAdvanceEpoch mirrors a primary checkpoint: the local log
// checkpoints its own (identical) working memory under the primary's
// new epoch, so the mirrored offsets keep lining up. A no-op without a
// WAL.
func (e *Engine) ReplicaAdvanceEpoch(epoch uint64) error {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	if e.closed.Load() {
		return ErrClosed
	}
	if e.wal == nil {
		return nil
	}
	if err := e.wal.CheckpointAs(epoch, e.db.Dump); err != nil {
		return e.enterReadOnly(err)
	}
	e.stats.Inc(metrics.ReplicaEpochs)
	return nil
}

// PromoteTruncate is promotion step one: cut the mirrored log back to
// its last complete committed-unit boundary, discarding any partially
// shipped tail that was never applied. It returns the bytes discarded.
func (e *Engine) PromoteTruncate() (int64, error) {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if e.wal == nil {
		return 0, nil
	}
	n, err := e.wal.TruncateTail()
	if err != nil {
		return n, e.enterReadOnly(err)
	}
	return n, nil
}

// PromoteFinish is promotion step two, run after the caller's audit
// gate passed: checkpoint under a bumped epoch — the fencing token
// that outdates the old primary's log — and open the write gate.
func (e *Engine) PromoteFinish() error {
	e.maintMu.Lock()
	if e.closed.Load() {
		e.maintMu.Unlock()
		return ErrClosed
	}
	if l := e.wal; l != nil {
		if err := l.Checkpoint(e.db.Dump); err != nil {
			e.maintMu.Unlock()
			return e.enterReadOnly(err)
		}
	}
	e.maintMu.Unlock()
	e.SetReplica(false)
	e.stats.Inc(metrics.Promotions)
	return nil
}

// WALPosition reports the live epoch and byte size of the attached
// log — the replication feed cursor. ok is false without a WAL.
func (e *Engine) WALPosition() (epoch uint64, size int64, ok bool) {
	l := e.wal
	if l == nil {
		return 0, 0, false
	}
	epoch, size = l.Position()
	return epoch, size, true
}
