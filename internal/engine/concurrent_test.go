package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"prodsys/internal/lock"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/value"
)

func TestLockPlanReadAndWriteTargets(t *testing.T) {
	e := harness(t, `
(literalize A x)
(literalize B x)
(p consume (A ^x <v>) (B ^x <v>) --> (remove 1))
(A 1)
(B 1)
`, "rete", Config{})
	ins := e.ConflictSet().SelectAll()
	if len(ins) != 1 {
		t.Fatalf("instantiations = %d", len(ins))
	}
	plan := e.lockPlan(ins[0])
	var sawAWrite, sawBRead bool
	for _, req := range plan {
		switch req.tgt.String() {
		case "A/1":
			if req.mode != lock.Exclusive {
				t.Errorf("A/1 should be X-locked (remove target), got %v", req.mode)
			}
			sawAWrite = true
		case "B/1":
			if req.mode != lock.Shared {
				t.Errorf("B/1 should be S-locked (read), got %v", req.mode)
			}
			sawBRead = true
		}
	}
	if !sawAWrite || !sawBRead {
		t.Fatalf("plan missing targets: %v", plan)
	}
	// Plan is sorted deterministically.
	for i := 1; i < len(plan); i++ {
		if plan[i-1].tgt.String() > plan[i].tgt.String() {
			t.Fatalf("plan not sorted: %v", plan)
		}
	}
}

func TestLockPlanNegativeDependence(t *testing.T) {
	e := harness(t, `
(literalize A x)
(literalize B x)
(p once (A ^x <v>) - (B ^x <v>) --> (make B ^x <v>))
(A 1)
`, "rete", Config{})
	ins := e.ConflictSet().SelectAll()
	if len(ins) != 1 {
		t.Fatalf("instantiations = %d", len(ins))
	}
	plan := e.lockPlan(ins[0])
	var relRead, relWrite bool
	for _, req := range plan {
		if req.tgt.String() == "B/*" {
			if req.mode == lock.Exclusive {
				relWrite = true
			} else {
				relRead = true
			}
		}
	}
	// The negated CE wants an S relation lock; the make into the
	// negatively-depended-upon class upgrades it to X.
	if relRead || !relWrite {
		t.Fatalf("negated class should carry a relation-level X lock (make upgrades the S): %v", plan)
	}
}

func TestRunTxnStaleAbort(t *testing.T) {
	e := harness(t, `
(literalize A x)
(literalize Log x)
(p note (A ^x <v>) --> (make Log ^x <v>))
(A 7)
`, "requery", Config{Workers: 1})
	ins := e.ConflictSet().SelectAll()
	if len(ins) != 1 {
		t.Fatal("setup")
	}
	// Pull the rug: delete the supporting tuple directly.
	if err := e.Retract("A", relation.TupleID(ins[0].TupleIDs[0])); err != nil {
		t.Fatal(err)
	}
	err := e.runTxn(context.Background(), ins[0])
	if !errors.Is(err, ErrStale) {
		t.Fatalf("expected ErrStale, got %v", err)
	}
	if e.DB().MustGet("Log").Len() != 0 {
		t.Fatal("stale transaction must not act")
	}
}

func TestRunTxnBlockedAbort(t *testing.T) {
	e := harness(t, `
(literalize A x)
(literalize B x)
(literalize Log x)
(p once (A ^x <v>) - (B ^x <v>) --> (make Log ^x <v>))
(A 7)
`, "requery", Config{Workers: 1})
	ins := e.ConflictSet().SelectAll()
	if len(ins) != 1 {
		t.Fatal("setup")
	}
	// Insert the blocker behind the conflict set's back via the engine.
	if _, err := e.Assert("B", relation.Tuple{value.OfInt(7)}); err != nil {
		t.Fatal(err)
	}
	// The matcher already retracted the instantiation; replay the stale
	// one through the transaction path: NOT EXISTS re-verification must
	// catch it.
	err := e.runTxn(context.Background(), ins[0])
	if !errors.Is(err, ErrBlocked) {
		t.Fatalf("expected ErrBlocked, got %v", err)
	}
	if e.DB().MustGet("Log").Len() != 0 {
		t.Fatal("blocked transaction must not act")
	}
}

func TestWMObserverSeesRuleActions(t *testing.T) {
	e := harness(t, `
(literalize A x)
(literalize Log x)
(p note (A ^x <v>) --> (remove 1) (make Log ^x <v>))
(A 1)
`, "core", Config{})
	var events []string
	e.SetWMObserver(func(inserted bool, class string, id relation.TupleID, _ relation.Tuple) {
		op := "-"
		if inserted {
			op = "+"
		}
		events = append(events, op+class)
	})
	if _, err := e.RunSerial(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(events, " ")
	if joined != "-A +Log" {
		t.Fatalf("observer events = %q", joined)
	}
}

func TestConcurrentAbortCounting(t *testing.T) {
	// Many racers over one token: exactly one commit, the rest abort.
	src := `
(literalize A x)
(literalize W who)
(p P1 (A ^x t) --> (remove 1) (make W ^who p1))
(p P2 (A ^x t) --> (remove 1) (make W ^who p2))
(p P3 (A ^x t) --> (remove 1) (make W ^who p3))
(A t)
`
	e := harness(t, src, "requery", Config{Workers: 3})
	res, err := e.RunConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 1 {
		t.Fatalf("firings = %d", res.Firings)
	}
	if e.DB().MustGet("W").Len() != 1 {
		t.Fatalf("W size = %d", e.DB().MustGet("W").Len())
	}
}

func TestSerialOpsCounted(t *testing.T) {
	e := harness(t, `
(literalize A x)
(p consume (A ^x <v>) --> (remove 1))
(A 1) (A 2)
`, "core", Config{})
	stats := &metrics.Set{}
	_ = stats
	if _, err := e.RunSerial(); err != nil {
		t.Fatal(err)
	}
	// 2 loads + 2 removes = 4 serialized WM operations.
	if got := e.stats.Get(metrics.SerialOps); got != 4 {
		t.Fatalf("SerialOps = %d, want 4", got)
	}
	if got := e.stats.Get(metrics.Counter("updates_A")); got != 4 {
		t.Fatalf("updates_A = %d, want 4", got)
	}
}
