package engine

import (
	"runtime"
	"sort"
	"strconv"
	"sync"

	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/trace"
)

// This file is the parallel match scheduler: an ApplyDelta batch is
// split into per-shard sub-deltas (relation.DB.ShardOf — the same hash
// that placed the tuples and the matchers' derived state), and a
// bounded work-stealing worker pool drives them through the matcher's
// two-phase Shardable protocol — every shard's maintenance runs to a
// barrier before any shard detects, so detection always observes the
// complete post-batch derived state. Matchers that cannot shard (rete
// and rete-shared, whose ordered token propagation through shared beta
// prefixes is inherently cross-shard) simply don't implement
// match.Shardable and keep the serial path.
//
// The scheduler runs under maintMu and the batch's relation-level class
// locks, both already held by ApplyDelta — parallelism here subdivides
// the §5.2 non-interleavable maintenance window, it does not widen it.
// Conflict-set MEMBERSHIP is order-independent (every derivation and
// negation check evaluates against final WM state), and arrival
// sequence numbers are canonicalized after the parallel phases, so a
// sharded run's conflict set is byte-identical to an unsharded run's.

// shardTask is one schedulable unit: a sub-delta covering one shard
// (or, after rebalancing, one class of one shard).
type shardTask struct {
	shard int
	class string // "" = every class in sub; set on rebalanced splits
	sub   *relation.Delta
}

// shardWorkers resolves the worker-pool size for a given shard space:
// Config.ShardWorkers when positive, else min(space, max(2, NumCPU)) —
// at least two workers by default so the concurrent path is exercised
// (and its invariants raceable) even on small machines.
func (e *Engine) shardWorkers(space int) int {
	w := e.cfg.ShardWorkers
	if w == 0 {
		w = runtime.NumCPU()
		if w < 2 {
			w = 2
		}
	}
	if w > space {
		w = space
	}
	return w
}

// splitDelta partitions a batch delta by the tuples' shards, preserving
// per-class entry order within each sub-delta.
func splitDelta(db *relation.DB, d *relation.Delta, space int) []*relation.Delta {
	subs := make([]*relation.Delta, space)
	route := func(class string, e relation.DeltaEntry, del bool) {
		s := db.ShardOf(class, e.Tuple)
		if s < 0 || s >= space {
			s = 0
		}
		if subs[s] == nil {
			subs[s] = relation.NewDelta()
		}
		if del {
			subs[s].AddDelete(class, e.ID, e.Tuple)
		} else {
			subs[s].AddInsert(class, e.ID, e.Tuple)
		}
	}
	for _, class := range d.Classes() {
		for _, e := range d.Deletes(class) {
			route(class, e, true)
		}
		for _, e := range d.Inserts(class) {
			route(class, e, false)
		}
	}
	return subs
}

// rebalance splits oversized multi-class shard tasks into per-class
// tasks, so one hot shard doesn't serialize the tail of the batch
// behind a single worker. Implementations lock their per-shard derived
// state, so two same-shard tasks on different workers contend but stay
// correct.
func (e *Engine) rebalance(tasks []shardTask) []shardTask {
	if len(tasks) < 2 {
		return tasks
	}
	total := 0
	for _, t := range tasks {
		total += t.sub.Tuples()
	}
	threshold := 2 * total / len(tasks)
	out := make([]shardTask, 0, len(tasks))
	for _, t := range tasks {
		classes := t.sub.Classes()
		if len(classes) < 2 || t.sub.Tuples() <= threshold || t.sub.Tuples() < 8 {
			out = append(out, t)
			continue
		}
		e.stats.Inc(metrics.ShardRebalances)
		for _, class := range classes {
			sub := relation.NewDelta()
			for _, en := range t.sub.Deletes(class) {
				sub.AddDelete(class, en.ID, en.Tuple)
			}
			for _, en := range t.sub.Inserts(class) {
				sub.AddInsert(class, en.ID, en.Tuple)
			}
			out = append(out, shardTask{shard: t.shard, class: class, sub: sub})
		}
	}
	return out
}

// workQueue is one worker's deque. The owner pops its own tail (LIFO
// keeps a worker on the cache-warm shard it was just maintaining);
// thieves steal from the head (FIFO takes the oldest, largest-grained
// work first).
type workQueue struct {
	mu    sync.Mutex
	tasks []shardTask
}

func (q *workQueue) popTail() (shardTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := len(q.tasks); n > 0 {
		t := q.tasks[n-1]
		q.tasks = q.tasks[:n-1]
		return t, true
	}
	return shardTask{}, false
}

func (q *workQueue) stealHead() (shardTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) > 0 {
		t := q.tasks[0]
		q.tasks = q.tasks[1:]
		return t, true
	}
	return shardTask{}, false
}

// runShardTasks drives one phase: tasks are dealt round-robin onto the
// workers' queues and executed to completion — the phase barrier is the
// return. The first error (lowest shard, then class, for run-to-run
// stability) is returned; a worker panic is re-raised in the caller so
// the engine's batch panic containment sees it.
func (e *Engine) runShardTasks(phase string, workers int, tasks []shardTask, run func(shardTask) error) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		var firstErr error
		for _, t := range tasks {
			e.execShardTask(phase, -1, t, run, &firstErr)
		}
		return firstErr
	}
	queues := make([]*workQueue, workers)
	for i := range queues {
		queues[i] = &workQueue{}
	}
	for i, t := range tasks {
		q := queues[i%workers]
		q.tasks = append(q.tasks, t)
	}
	var (
		mu       sync.Mutex
		errs     []taskErr
		panicked any
		hasPanic bool
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if !hasPanic {
						hasPanic, panicked = true, r
					}
					mu.Unlock()
				}
			}()
			for {
				t, ok := queues[wid].popTail()
				if !ok {
					for off := 1; off < workers; off++ {
						if t, ok = queues[(wid+off)%workers].stealHead(); ok {
							e.stats.Inc(metrics.ShardSteals)
							break
						}
					}
				}
				if !ok {
					return
				}
				var err error
				e.execShardTask(phase, wid, t, run, &err)
				if err != nil {
					mu.Lock()
					errs = append(errs, taskErr{t.shard, t.class, err})
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if hasPanic {
		panic(panicked)
	}
	return firstTaskErr(errs)
}

type taskErr struct {
	shard int
	class string
	err   error
}

func firstTaskErr(errs []taskErr) error {
	if len(errs) == 0 {
		return nil
	}
	sort.Slice(errs, func(i, j int) bool {
		if errs[i].shard != errs[j].shard {
			return errs[i].shard < errs[j].shard
		}
		return errs[i].class < errs[j].class
	})
	return errs[0].err
}

// execShardTask runs one task, counting it and emitting its trace
// event. wid is -1 on the inline (single-worker) path.
func (e *Engine) execShardTask(phase string, wid int, t shardTask, run func(shardTask) error, errOut *error) {
	e.stats.Inc(metrics.ShardMaintains)
	t0 := e.tr.Now()
	err := run(t)
	if e.tr.Enabled() {
		extra := phase
		if wid >= 0 {
			extra = phase + " w" + strconv.Itoa(wid)
		}
		e.tr.Emit(trace.Event{
			Kind: trace.KindShardMaintain, At: t0, Dur: e.tr.Now() - t0,
			CE: -1, Class: t.class, ID: uint64(t.shard), Count: int64(t.sub.Tuples()), Extra: extra,
		})
	}
	if err != nil && *errOut == nil {
		*errOut = err
	}
}

// maintainDelta runs match maintenance for one batch delta: the
// parallel two-phase path when the matcher is Shardable and the catalog
// is sharded, the classic serial path otherwise.
func (e *Engine) maintainDelta(delta *relation.Delta) error {
	sm, shardable := e.matcher.(match.Shardable)
	space := e.db.ShardSpace()
	if !shardable || space <= 1 || delta.Empty() {
		return match.ApplyDelta(e.matcher, delta)
	}
	workers := e.shardWorkers(space)
	if workers <= 1 {
		return match.ApplyDelta(e.matcher, delta)
	}
	e.stats.Max(metrics.ShardCount, int64(space))
	subs := splitDelta(e.db, delta, space)
	tasks := make([]shardTask, 0, len(subs))
	for s, sub := range subs {
		if sub != nil && !sub.Empty() {
			tasks = append(tasks, shardTask{shard: s, sub: sub})
		}
	}
	if len(tasks) == 0 {
		return nil
	}
	if len(tasks) > 1 {
		e.stats.Inc(metrics.CrossShardTxns)
	}
	tasks = e.rebalance(tasks)

	// Two phases with a barrier between them: all maintenance completes
	// before any detection starts, so cross-shard joins are never missed
	// (see match.Shardable).
	mark := e.cs.Sequence()
	err := e.runShardTasks("maintain", workers, tasks, func(t shardTask) error { return sm.ShardMaintain(t.sub) })
	if err == nil {
		err = e.runShardTasks("detect", workers, tasks, func(t shardTask) error { return sm.ShardDetect(t.sub) })
	}
	// Concurrent workers race to insert instantiations; re-sequencing
	// the batch's additions in sorted-key order keeps recency-based
	// selection deterministic and identical to an unsharded run.
	e.cs.Canonicalize(mark)
	return err
}
