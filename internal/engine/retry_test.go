package engine

import (
	"context"
	"testing"
	"time"

	"prodsys/internal/lock"
	"prodsys/internal/metrics"
)

// retrySrc has exactly one instantiation whose plan X-locks tuple A/1.
const retrySrc = `
(literalize A x)
(p consume (A ^x 1) --> (remove 1))
(A 1)
`

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadlockVictimRetried victimizes a transaction once while it
// queues for its lock and checks the concurrent executor retries it to
// success instead of dropping it, with every aborted attempt still
// counted (Result.Aborts must stay in lock-step with the txn_aborts
// counter — the reconciliation invariant of the tracing layer).
func TestDeadlockVictimRetried(t *testing.T) {
	e := harness(t, retrySrc, "core", Config{Workers: 1})
	blocker := lock.TxnID(1000)
	if err := e.locks.Acquire(blocker, lock.TupleTarget("A", 1), lock.Exclusive); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		res Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.RunConcurrentContext(context.Background())
		done <- outcome{res, err}
	}()

	// Attempt 1 (txn 1) queues behind the blocker; victimize it.
	waitFor(t, "first attempt to queue", func() bool { return e.stats.Get(metrics.LockWaits) >= 1 })
	e.locks.Abort(1)
	// The retry (txn 2) queues again; let it through.
	waitFor(t, "retry to queue", func() bool { return e.stats.Get(metrics.LockWaits) >= 2 })
	e.locks.Release(blocker)

	out := <-done
	if out.err != nil {
		t.Fatalf("run: %v", out.err)
	}
	if out.res.Firings != 1 {
		t.Fatalf("firings = %d, want 1 (victim not retried)", out.res.Firings)
	}
	if out.res.Aborts != 1 {
		t.Fatalf("aborts = %d, want 1 (the victimized attempt)", out.res.Aborts)
	}
	if got := e.stats.Get(metrics.TxnRetries); got != 1 {
		t.Fatalf("txn_retries = %d, want 1", got)
	}
	// The counter carries one abort per victimized engine attempt plus
	// one per manual locks.Abort call (the lock manager counts external
	// aborts itself).
	if got, want := e.stats.Get(metrics.TxnAborts), int64(out.res.Aborts)+1; got != want {
		t.Fatalf("txn_aborts = %d, want %d (Result.Aborts %d + 1 manual)", got, want, out.res.Aborts)
	}
	if count := len(e.db.MustGet("A").Select(nil)); count != 0 {
		t.Fatalf("A still has %d tuples after the retried firing", count)
	}
}

// TestRetriesBoundedUnderPersistentVictimization is the livelock
// regression: a transaction victimized on every single attempt must
// exhaust its bounded retries and give up — the run terminates (no
// retry livelock) with every attempt counted — and the instantiation
// survives in the conflict set for a later run.
func TestRetriesBoundedUnderPersistentVictimization(t *testing.T) {
	e := harness(t, retrySrc, "core", Config{Workers: 1})
	blocker := lock.TxnID(1000)
	if err := e.locks.Acquire(blocker, lock.TupleTarget("A", 1), lock.Exclusive); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		res Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.RunConcurrentContext(context.Background())
		done <- outcome{res, err}
	}()

	// Victimize every attempt: the first plus maxTxnRetries retries.
	attempts := maxTxnRetries + 1
	for i := 1; i <= attempts; i++ {
		waitFor(t, "attempt to queue", func() bool { return e.stats.Get(metrics.LockWaits) >= int64(i) })
		e.locks.Abort(lock.TxnID(i))
	}

	out := <-done
	if out.err != nil {
		t.Fatalf("run: %v", out.err)
	}
	if out.res.Firings != 0 {
		t.Fatalf("firings = %d, want 0", out.res.Firings)
	}
	if out.res.Aborts != attempts {
		t.Fatalf("aborts = %d, want %d (one per victimized attempt)", out.res.Aborts, attempts)
	}
	if got := e.stats.Get(metrics.TxnRetries); got != int64(maxTxnRetries) {
		t.Fatalf("txn_retries = %d, want %d", got, maxTxnRetries)
	}
	// One abort per victimized attempt plus one per manual locks.Abort.
	if got, want := e.stats.Get(metrics.TxnAborts), int64(out.res.Aborts+attempts); got != want {
		t.Fatalf("txn_aborts = %d, want %d (%d attempts + %d manual)", got, want, out.res.Aborts, attempts)
	}

	// The work was deferred, not lost: release the blocker and rerun.
	e.locks.Release(blocker)
	res, err := e.RunConcurrent()
	if err != nil || res.Firings != 1 {
		t.Fatalf("rerun after contention cleared: %+v, %v", res, err)
	}
}

// TestRetryBackoffBounded pins the backoff envelope: positive, jittered
// around an exponential nominal, and never above 1.5× the cap.
func TestRetryBackoffBounded(t *testing.T) {
	e := harness(t, retrySrc, "core", Config{})
	for n := 1; n <= maxTxnRetries+5; n++ {
		for trial := 0; trial < 50; trial++ {
			d := e.retryBackoff(n)
			if d <= 0 {
				t.Fatalf("backoff(%d) = %v, not positive", n, d)
			}
			if d > txnBackoffCap+txnBackoffCap/2 {
				t.Fatalf("backoff(%d) = %v exceeds cap envelope", n, d)
			}
		}
	}
}

// TestRetryBackoffSeeded pins reproducibility: two engines built with
// the same Config.Seed draw identical jitter schedules, and a different
// seed diverges — the per-engine RNG replaced the process-global one.
func TestRetryBackoffSeeded(t *testing.T) {
	sched := func(seed int64) []time.Duration {
		e := harness(t, retrySrc, "core", Config{Seed: seed})
		out := make([]time.Duration, 0, maxTxnRetries)
		for n := 1; n <= maxTxnRetries; n++ {
			out = append(out, e.retryBackoff(n))
		}
		return out
	}
	a, b, c := sched(42), sched(42), sched(43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i+1, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}
