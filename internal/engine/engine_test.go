package engine

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/requery"
	"prodsys/internal/rete"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

// harness builds an engine over the given source with the named matcher.
func harness(t *testing.T, src, matcherName string, cfg Config) *Engine {
	t.Helper()
	set, prog, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet(stats)
	var m match.Matcher
	switch matcherName {
	case "rete":
		m = rete.New(set, cs, stats)
	case "requery":
		m = requery.New(set, db, cs, stats)
	default:
		m = core.New(set, db, cs, stats)
	}
	e := New(set, db, m, stats, cfg)
	if err := e.LoadFacts(prog); err != nil {
		t.Fatal(err)
	}
	return e
}

var matcherNames = []string{"rete", "requery", "core"}

const simplifySrc = `
(literalize Goal type object)
(literalize Expression name arg1 op arg2)

(p PlusOX
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op + ^arg2 <X>)
  -->
    (modify 2 ^op nil ^arg1 nil))

(p TimesOX
    (Goal ^type Simplify ^object <N>)
    (Expression ^name <N> ^arg1 0 ^op * ^arg2 <X>)
  -->
    (modify 2 ^op nil ^arg1 nil))

(Goal Simplify e1)
(Goal Simplify e2)
(Expression e1 0 + 7)
(Expression e2 0 * 9)
(Expression e3 0 + 5)
`

func TestSerialSimplification(t *testing.T) {
	for _, name := range matcherNames {
		t.Run(name, func(t *testing.T) {
			e := harness(t, simplifySrc, name, Config{})
			res, err := e.RunSerial()
			if err != nil {
				t.Fatal(err)
			}
			if res.Firings != 2 {
				t.Fatalf("firings = %d, want 2 (e1 and e2; e3 has no goal)", res.Firings)
			}
			// Both goal expressions were simplified; e3 untouched.
			wm := e.SnapshotWM()
			if !strings.Contains(wm, "Expression(e1, nil, nil, 7)") {
				t.Errorf("e1 not simplified:\n%s", wm)
			}
			if !strings.Contains(wm, "Expression(e2, nil, nil, 9)") {
				t.Errorf("e2 not simplified:\n%s", wm)
			}
			if !strings.Contains(wm, "Expression(e3, 0, +, 5)") {
				t.Errorf("e3 should be untouched:\n%s", wm)
			}
		})
	}
}

const payrollRunSrc = `
(literalize Emp name salary manager)
(p R1
    (Emp ^name <N> ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
  -->
    (remove 1))
(Emp Mike 1000 Sam)
(Emp Sam 900 Pat)
(Emp Pat 2000 nobody)
`

func TestSerialPayrollRemoval(t *testing.T) {
	for _, name := range matcherNames {
		t.Run(name, func(t *testing.T) {
			e := harness(t, payrollRunSrc, name, Config{})
			res, err := e.RunSerial()
			if err != nil {
				t.Fatal(err)
			}
			// Mike earns more than manager Sam: Mike removed. Sam earns
			// less than Pat; Pat's manager does not exist.
			if res.Firings != 1 {
				t.Fatalf("firings = %d, want 1", res.Firings)
			}
			wm := e.SnapshotWM()
			if strings.Contains(wm, "Mike") {
				t.Errorf("Mike should be removed:\n%s", wm)
			}
			if !strings.Contains(wm, "Sam") || !strings.Contains(wm, "Pat") {
				t.Errorf("Sam and Pat should survive:\n%s", wm)
			}
		})
	}
}

func TestHaltStopsExecution(t *testing.T) {
	src := `
(literalize A x)
(p Stop (A ^x 1) --> (halt))
(p Spawn (A ^x <v>) --> (make A ^x 1))
(A 5)
`
	e := harness(t, src, "rete", Config{Strategy: conflict.Priority{}})
	res, err := e.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("halt should stop the run")
	}
}

func TestWriteAndBindActions(t *testing.T) {
	src := `
(literalize A x)
(p Announce (A ^x <v>) --> (bind <msg> hello) (write <msg> <v>))
(A 42)
`
	var out bytes.Buffer
	e := harness(t, src, "core", Config{Out: &out})
	if _, err := e.RunSerial(); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "hello 42" {
		t.Fatalf("write output = %q", got)
	}
}

func TestFiringCap(t *testing.T) {
	src := `
(literalize A x)
(p Loop (A ^x <v>) --> (make A ^x <v>))
(A 1)
`
	e := harness(t, src, "rete", Config{MaxFirings: 25})
	_, err := e.RunSerial()
	if err == nil || !strings.Contains(err.Error(), "firing cap") {
		t.Fatalf("expected firing cap error, got %v", err)
	}
}

func TestRefractionPreventsRefiring(t *testing.T) {
	// A rule that does not falsify its own LHS fires once per
	// instantiation, not forever.
	src := `
(literalize A x)
(literalize Log x)
(p Note (A ^x <v>) --> (make Log ^x <v>))
(A 1)
(A 2)
`
	e := harness(t, src, "rete", Config{})
	res, err := e.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 2 {
		t.Fatalf("firings = %d, want 2", res.Firings)
	}
	if n := e.DB().MustGet("Log").Len(); n != 2 {
		t.Fatalf("Log size = %d", n)
	}
}

func TestSerialStrategiesDiffer(t *testing.T) {
	src := `
(literalize A x)
(literalize Done by)
(p First  (A ^x <v>) - (Done ^by winner) --> (make Done ^by winner) (halt))
(p Second (A ^x <v>) - (Done ^by winner) --> (make Done ^by winner) (halt))
(A 1)
`
	// Priority selects rule First (lower index).
	e := harness(t, src, "rete", Config{Strategy: conflict.Priority{}})
	if _, err := e.RunSerial(); err != nil {
		t.Fatal(err)
	}
	if e.ConflictSet().HasFired("Second|1|0") {
		t.Error("Priority should fire First")
	}
	if !e.ConflictSet().HasFired("First|1|0") {
		t.Error("First should have fired")
	}
}

const forwardChainSrc = `
(literalize Item n)
(literalize Stage n)
(p Advance1 (Stage ^n one) (Item ^n <i>) --> (remove 1) (make Stage ^n two))
(p Advance2 (Stage ^n two) --> (remove 1) (make Stage ^n three))
(Stage one)
(Item 1)
`

func TestForwardChaining(t *testing.T) {
	for _, name := range matcherNames {
		t.Run(name, func(t *testing.T) {
			e := harness(t, forwardChainSrc, name, Config{})
			res, err := e.RunSerial()
			if err != nil {
				t.Fatal(err)
			}
			if res.Firings != 2 {
				t.Fatalf("firings = %d, want 2", res.Firings)
			}
			if !strings.Contains(e.SnapshotWM(), "Stage(three)") {
				t.Fatalf("should reach stage three:\n%s", e.SnapshotWM())
			}
		})
	}
}

func TestConcurrentEquivalentToSerialCommutative(t *testing.T) {
	// Independent rule instantiations: concurrent and serial runs must
	// reach the same final WM.
	src := `
(literalize Task id)
(literalize Done id)
(p Finish (Task ^id <i>) --> (remove 1) (make Done ^id <i>))
(Task 1) (Task 2) (Task 3) (Task 4) (Task 5) (Task 6)
`
	for _, name := range matcherNames {
		t.Run(name, func(t *testing.T) {
			serial := harness(t, src, name, Config{})
			sres, err := serial.RunSerial()
			if err != nil {
				t.Fatal(err)
			}
			conc := harness(t, src, name, Config{Workers: 4})
			cres, err := conc.RunConcurrent()
			if err != nil {
				t.Fatal(err)
			}
			if sres.Firings != 6 || cres.Firings != 6 {
				t.Fatalf("firings serial=%d concurrent=%d", sres.Firings, cres.Firings)
			}
			if serial.SnapshotWM() != conc.SnapshotWM() {
				t.Fatalf("states differ:\nserial:\n%s\nconcurrent:\n%s",
					serial.SnapshotWM(), conc.SnapshotWM())
			}
		})
	}
}

func TestConcurrentConflictingRemovesSerializable(t *testing.T) {
	// Two rules race to remove the same tuple; exactly one may win and
	// the final state must be one of the two serial outcomes.
	src := `
(literalize A x)
(literalize W who)
(p P1 (A ^x token) --> (remove 1) (make W ^who p1))
(p P2 (A ^x token) --> (remove 1) (make W ^who p2))
(A token)
`
	serialOutcomes := map[string]bool{}
	for _, strat := range []conflict.Strategy{conflict.FIFO{}, conflict.LEX{}, conflict.Priority{}} {
		e := harness(t, src, "rete", Config{Strategy: strat})
		if _, err := e.RunSerial(); err != nil {
			t.Fatal(err)
		}
		serialOutcomes[e.SnapshotWM()] = true
	}
	// Also the symmetric outcome (P2 first) is a legal serial schedule.
	// Determine both outcomes explicitly:
	if len(serialOutcomes) == 0 {
		t.Fatal("no serial outcomes")
	}
	for i := 0; i < 10; i++ {
		e := harness(t, src, "rete", Config{Workers: 4})
		res, err := e.RunConcurrent()
		if err != nil {
			t.Fatal(err)
		}
		if res.Firings != 1 {
			t.Fatalf("exactly one of the racers may fire, fired %d (aborts %d)", res.Firings, res.Aborts)
		}
		got := e.SnapshotWM()
		if !strings.Contains(got, "W(p1)") && !strings.Contains(got, "W(p2)") {
			t.Fatalf("final state is no serial outcome:\n%s", got)
		}
		if strings.Contains(got, "A(token)") {
			t.Fatalf("token should be consumed:\n%s", got)
		}
	}
}

func TestConcurrentNegationMakeOnce(t *testing.T) {
	// N instantiations each want to create the unique marker; the
	// relation-level lock on the negated class admits exactly one.
	src := `
(literalize A x)
(literalize B x)
(p MakeOnce (A ^x <v>) - (B ^x marker) --> (make B ^x marker))
(A 1) (A 2) (A 3) (A 4) (A 5) (A 6)
`
	for i := 0; i < 5; i++ {
		e := harness(t, src, "requery", Config{Workers: 6})
		res, err := e.RunConcurrent()
		if err != nil {
			t.Fatal(err)
		}
		if n := e.DB().MustGet("B").Len(); n != 1 {
			t.Fatalf("marker created %d times (firings %d, aborts %d)", n, res.Firings, res.Aborts)
		}
	}
}

func TestCommitEarlyViolatesSerializability(t *testing.T) {
	// With the commit point moved before act+maintenance, the marker can
	// be created more than once — the inconsistency §5.2's protocol
	// prevents. The race is probabilistic; we try repeatedly.
	src := `
(literalize A x)
(literalize B x)
(p MakeOnce (A ^x <v>) - (B ^x marker) --> (make B ^x marker))
(A 1) (A 2) (A 3) (A 4) (A 5) (A 6) (A 7) (A 8)
`
	violated := false
	for i := 0; i < 40 && !violated; i++ {
		e := harness(t, src, "requery", Config{Workers: 8, CommitEarly: true})
		if _, err := e.RunConcurrent(); err != nil {
			t.Fatal(err)
		}
		if e.DB().MustGet("B").Len() > 1 {
			violated = true
		}
	}
	if !violated {
		t.Skip("race window not hit; protocol violation not observable on this scheduler")
	}
}

func TestConcurrentChainedRounds(t *testing.T) {
	// Firings in round 1 enable round 2 (the Ψ→Ψ' evolution of §5.2).
	e := harness(t, forwardChainSrc, "core", Config{Workers: 4})
	res, err := e.RunConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 2 || res.Cycles < 2 {
		t.Fatalf("firings=%d cycles=%d", res.Firings, res.Cycles)
	}
	if !strings.Contains(e.SnapshotWM(), "Stage(three)") {
		t.Fatalf("should reach stage three:\n%s", e.SnapshotWM())
	}
}

func TestAssertRetractDirect(t *testing.T) {
	e := harness(t, `
(literalize A x)
(p Any (A ^x <v>) --> (halt))`, "rete", Config{})
	id, err := e.Assert("A", relation.Tuple{value.OfInt(7)})
	if err != nil {
		t.Fatal(err)
	}
	if e.ConflictSet().Len() != 1 {
		t.Fatal("assert should reach the matcher")
	}
	if err := e.Retract("A", id); err != nil {
		t.Fatal(err)
	}
	if e.ConflictSet().Len() != 0 {
		t.Fatal("retract should reach the matcher")
	}
	if _, err := e.Assert("Nope", relation.Tuple{value.OfInt(1)}); err == nil {
		t.Error("unknown class assert should fail")
	}
	if err := e.Retract("Nope", 1); err == nil {
		t.Error("unknown class retract should fail")
	}
	if e.Matcher().Name() != "rete" || e.Locks() == nil || e.DB() == nil {
		t.Error("accessors")
	}
}

const monkeySrc = `
(literalize Monkey at on holds)
(literalize Thing name at)
(literalize Goal want status)
(p done
    (Goal ^want bananas ^status active)
    (Monkey ^holds bananas)
  -->
    (modify 1 ^status satisfied)
    (halt))
(p grab
    (Goal ^want bananas ^status active)
    (Monkey ^at <p> ^on ladder ^holds nothing)
    (Thing ^name bananas ^at <p>)
  -->
    (modify 2 ^holds bananas))
(p climb
    (Goal ^want bananas ^status active)
    (Monkey ^at <p> ^on floor)
    (Thing ^name ladder ^at <p>)
    (Thing ^name bananas ^at <p>)
  -->
    (modify 2 ^on ladder))
(p push-ladder
    (Goal ^want bananas ^status active)
    (Monkey ^at <p> ^on floor ^holds nothing)
    (Thing ^name ladder ^at <p>)
    (Thing ^name bananas ^at {<b> <> <p>})
  -->
    (modify 2 ^at <b>)
    (modify 3 ^at <b>))
(p walk-to-ladder
    (Goal ^want bananas ^status active)
    (Monkey ^at <p> ^on floor)
    (Thing ^name ladder ^at {<q> <> <p>})
  -->
    (modify 2 ^at <q>))
(Monkey corner floor nothing)
(Thing ladder window)
(Thing bananas centre)
(Goal bananas active)
`

// TestMonkeyAndBananasAllMatchers runs the classic planning program to
// completion with every matcher, checking the same 5-step plan emerges.
func TestMonkeyAndBananasAllMatchers(t *testing.T) {
	for _, name := range []string{"rete", "requery", "core"} {
		t.Run(name, func(t *testing.T) {
			e := harness(t, monkeySrc, name, Config{Strategy: conflict.Priority{}})
			res, err := e.RunSerial()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Halted || res.Firings != 5 {
				t.Fatalf("firings=%d halted=%v", res.Firings, res.Halted)
			}
			wm := e.SnapshotWM()
			if !strings.Contains(wm, "Monkey(centre, ladder, bananas)") {
				t.Fatalf("monkey did not get the bananas:\n%s", wm)
			}
			if !strings.Contains(wm, "Goal(bananas, satisfied)") {
				t.Fatalf("goal not satisfied:\n%s", wm)
			}
		})
	}
}

func TestCallAction(t *testing.T) {
	e := harness(t, `
(literalize A x)
(p notify (A ^x <v>) --> (call record hello <v>))
(A 42)
`, "core", Config{})
	var got [][]string
	e.RegisterFunc("record", func(args []value.V) error {
		strs := make([]string, len(args))
		for i, v := range args {
			strs[i] = v.String()
		}
		got = append(got, strs)
		return nil
	})
	if _, err := e.RunSerial(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "hello" || got[0][1] != "42" {
		t.Fatalf("call args = %v", got)
	}
}

func TestCallUnregisteredFails(t *testing.T) {
	e := harness(t, `
(literalize A x)
(p bad (A ^x <v>) --> (call missing <v>))
(A 1)
`, "core", Config{})
	if _, err := e.RunSerial(); err == nil || !strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("expected unregistered-function error, got %v", err)
	}
}

func TestCallErrorPropagates(t *testing.T) {
	e := harness(t, `
(literalize A x)
(p failing (A ^x <v>) --> (call boom))
(A 1)
`, "core", Config{})
	e.RegisterFunc("boom", func([]value.V) error {
		return errors.New("kaboom")
	})
	if _, err := e.RunSerial(); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("expected callback error, got %v", err)
	}
}

func TestSetAtATimeFiresWholeRulePerCycle(t *testing.T) {
	src := `
(literalize Task id)
(literalize Done id)
(p fin (Task ^id <i>) --> (remove 1) (make Done ^id <i>))
(Task 1) (Task 2) (Task 3) (Task 4) (Task 5)
`
	tuple := harness(t, src, "core", Config{})
	tres, err := tuple.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	set := harness(t, src, "core", Config{SetAtATime: true})
	sres, err := set.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	if tres.Firings != 5 || sres.Firings != 5 {
		t.Fatalf("firings: tuple=%d set=%d", tres.Firings, sres.Firings)
	}
	if tres.Cycles != 5 {
		t.Fatalf("tuple-at-a-time cycles = %d", tres.Cycles)
	}
	if sres.Cycles != 1 {
		t.Fatalf("set-at-a-time cycles = %d, want 1", sres.Cycles)
	}
	if tuple.SnapshotWM() != set.SnapshotWM() {
		t.Fatal("final states differ")
	}
}

func TestSetAtATimeSkipsInvalidated(t *testing.T) {
	// Both instantiations of racer consume the same token: the second
	// batch member is retracted by the first and must be skipped.
	src := `
(literalize A x)
(literalize B y)
(literalize W who)
(p racer (A ^x token) (B ^y <w>) --> (remove 1) (make W ^who <w>))
(A token)
(B b1) (B b2)
`
	e := harness(t, src, "requery", Config{SetAtATime: true})
	res, err := e.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 1 {
		t.Fatalf("firings = %d, want 1 (second batch member invalidated)", res.Firings)
	}
	if e.DB().MustGet("W").Len() != 1 {
		t.Fatalf("W = %v", e.DB().MustGet("W").Len())
	}
}
