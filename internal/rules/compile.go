package rules

import (
	"fmt"

	"prodsys/internal/lang"
	"prodsys/internal/relation"
	"prodsys/internal/value"
)

// CompileError reports a semantic error in a rule program.
type CompileError struct {
	Rule string
	Msg  string
}

func (e *CompileError) Error() string {
	if e.Rule == "" {
		return "compile error: " + e.Msg
	}
	return "compile error in rule " + e.Rule + ": " + e.Msg
}

func errf(rule, format string, args ...any) error {
	return &CompileError{Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// Compile resolves a parsed program against its literalize declarations
// and produces the positional rule model. It validates class and
// attribute references, variable usage (a non-equality test needs the
// variable bound earlier; variables first bound inside a negated
// condition element are local to it), and RHS actions.
func Compile(prog *lang.Program) (*Set, error) {
	set := &Set{
		Classes: make(map[string]*relation.Schema),
		ByClass: make(map[string][]*CE),
		byName:  make(map[string]*Rule),
	}
	for _, lit := range prog.Literalizes {
		if _, dup := set.Classes[lit.Class]; dup {
			return nil, errf("", "class %s literalized twice", lit.Class)
		}
		schema, err := relation.NewSchema(lit.Class, lit.Attrs...)
		if err != nil {
			return nil, errf("", "literalize %s: %v", lit.Class, err)
		}
		set.Classes[lit.Class] = schema
	}
	for idx, p := range prog.Productions {
		if _, dup := set.byName[p.Name]; dup {
			return nil, errf(p.Name, "duplicate rule name")
		}
		r, err := compileRule(set, p, idx)
		if err != nil {
			return nil, err
		}
		set.Rules = append(set.Rules, r)
		set.byName[p.Name] = r
		for _, ce := range r.CEs {
			set.ByClass[ce.Class] = append(set.ByClass[ce.Class], ce)
		}
	}
	return set, nil
}

func compileRule(set *Set, p *lang.Production, idx int) (*Rule, error) {
	r := &Rule{Name: p.Name, Index: idx}
	// bound tracks variables with a binding occurrence in a positive CE
	// processed so far; negLocal tracks variables whose first occurrence
	// was inside a negated CE — those are local to it and may not be
	// referenced by later condition elements or actions.
	bound := map[string]bool{}
	negLocal := map[string]bool{}
	positives := 0
	for i, astCE := range p.LHS {
		schema, ok := set.Classes[astCE.Class]
		if !ok {
			return nil, errf(p.Name, "condition element %d references unliteralized class %s", i+1, astCE.Class)
		}
		ce := &CE{
			Rule:    r,
			Index:   i,
			Class:   astCE.Class,
			Schema:  schema,
			Negated: astCE.Negated,
		}
		if !ce.Negated {
			positives++
		}
		localBound := map[string]bool{}
		for _, test := range astCE.Tests {
			pos, ok := schema.Pos(test.Attr)
			if !ok {
				return nil, errf(p.Name, "class %s has no attribute %s", astCE.Class, test.Attr)
			}
			for _, atom := range test.Atoms {
				r.Specificity++
				if len(atom.Disj) > 0 {
					ce.Disj = append(ce.Disj, DisjTest{Pos: pos, Vals: append([]value.V(nil), atom.Disj...)})
					continue
				}
				if atom.Term.Kind == lang.TermConst {
					ce.Consts = append(ce.Consts, relation.Restriction{Pos: pos, Op: atom.Op, Val: atom.Term.Val})
					continue
				}
				name := atom.Term.Var
				if negLocal[name] && !bound[name] {
					return nil, errf(p.Name, "condition element %d references <%s>, which is bound only inside an earlier negated condition element",
						i+1, name)
				}
				isBound := bound[name] || localBound[name]
				vt := VarTest{Pos: pos, Op: atom.Op, Var: name}
				if !isBound {
					if atom.Op != value.OpEq {
						return nil, errf(p.Name, "condition element %d uses variable <%s> with %s before it is bound",
							i+1, name, atom.Op)
					}
					vt.Binds = true
					localBound[name] = true
				}
				ce.VarTests = append(ce.VarTests, vt)
			}
		}
		if ce.Negated {
			// Bindings made inside a negated CE are local to it.
			for v := range localBound {
				negLocal[v] = true
			}
		} else {
			for v := range localBound {
				bound[v] = true
			}
		}
		r.CEs = append(r.CEs, ce)
	}
	if positives == 0 {
		return nil, errf(p.Name, "rule has no positive condition elements")
	}
	if err := compileActions(set, r, p, bound); err != nil {
		return nil, err
	}
	r.Actions = p.RHS
	return r, nil
}

func compileActions(set *Set, r *Rule, p *lang.Production, bound map[string]bool) error {
	// bind actions introduce new variables usable by later actions.
	avail := map[string]bool{}
	for v := range bound {
		avail[v] = true
	}
	checkTerm := func(t lang.Term, where string) error {
		if t.Kind == lang.TermVar && !avail[t.Var] {
			return errf(p.Name, "%s references unbound variable <%s>", where, t.Var)
		}
		return nil
	}
	for _, act := range p.RHS {
		switch act.Kind {
		case lang.ActMake:
			schema, ok := set.Classes[act.Class]
			if !ok {
				return errf(p.Name, "make references unliteralized class %s", act.Class)
			}
			for _, as := range act.Assigns {
				if _, ok := schema.Pos(as.Attr); !ok {
					return errf(p.Name, "make %s: class has no attribute %s", act.Class, as.Attr)
				}
				if err := checkTerm(as.Term, "make "+act.Class); err != nil {
					return err
				}
			}
		case lang.ActRemove, lang.ActModify:
			if act.CE < 1 || act.CE > len(r.CEs) {
				return errf(p.Name, "%s %d: rule has %d condition elements", act.Kind, act.CE, len(r.CEs))
			}
			target := r.CEs[act.CE-1]
			if target.Negated {
				return errf(p.Name, "%s %d targets a negated condition element", act.Kind, act.CE)
			}
			if act.Kind == lang.ActModify {
				for _, as := range act.Assigns {
					if _, ok := target.Schema.Pos(as.Attr); !ok {
						return errf(p.Name, "modify %d: class %s has no attribute %s", act.CE, target.Class, as.Attr)
					}
					if err := checkTerm(as.Term, fmt.Sprintf("modify %d", act.CE)); err != nil {
						return err
					}
				}
			}
		case lang.ActWrite:
			for _, arg := range act.Args {
				if err := checkTerm(arg, "write"); err != nil {
					return err
				}
			}
		case lang.ActCall:
			for _, arg := range act.Args {
				if err := checkTerm(arg, "call "+act.Func); err != nil {
					return err
				}
			}
		case lang.ActBind:
			if err := checkTerm(act.Term, "bind"); err != nil {
				return err
			}
			avail[act.Var] = true
		case lang.ActHalt:
			// no arguments
		}
	}
	return nil
}

// FactTuple converts a parsed fact into a tuple over the class schema.
// Positional facts may be shorter than the schema (remaining attributes
// stay nil); attribute-form facts set only the named attributes.
func FactTuple(set *Set, f *lang.Fact) (string, relation.Tuple, error) {
	schema, ok := set.Classes[f.Class]
	if !ok {
		return "", nil, errf("", "fact references unliteralized class %s", f.Class)
	}
	t := make(relation.Tuple, schema.Arity())
	if len(f.Positional) > 0 {
		if len(f.Positional) > schema.Arity() {
			return "", nil, errf("", "fact for %s has %d values but the class has %d attributes",
				f.Class, len(f.Positional), schema.Arity())
		}
		for i, term := range f.Positional {
			t[i] = term.Val
		}
		return f.Class, t, nil
	}
	for _, as := range f.Assigns {
		pos, ok := schema.Pos(as.Attr)
		if !ok {
			return "", nil, errf("", "fact for %s: class has no attribute %s", f.Class, as.Attr)
		}
		t[pos] = as.Term.Val
	}
	return f.Class, t, nil
}

// indexable reports whether an operator benefits from a secondary
// index: equality probes the hash side, ranges probe the ordered side.
// Only <> gains nothing from either.
func indexable(op value.Op) bool { return op != value.OpNe }

// BuildDB creates a relation catalog with one WM relation per declared
// class, indexing every attribute that appears in an equality or range
// test of some condition element (a cheap physical-design heuristic
// standing in for the paper's "intelligent indexing"). Each index
// carries both a hash side (equality probes) and an ordered side
// (range probes), so alpha selections like "^salary > n" become index
// probes instead of class scans.
func BuildDB(set *Set, db *relation.DB) error {
	if err := BuildCatalog(set, db); err != nil {
		return err
	}
	return BuildIndexes(set, db)
}

// BuildCatalog creates the WM relations without any secondary indexes.
// Benchmarks use it (followed by nothing, or by BuildIndexes) to compare
// indexed against scan-only access paths on the same catalog.
func BuildCatalog(set *Set, db *relation.DB) error {
	for _, name := range set.ClassNames() {
		schema := set.Classes[name]
		if _, err := db.Create(name, schema.Attrs()...); err != nil {
			return err
		}
	}
	return nil
}

// BuildIndexes applies the physical-design heuristic to an existing
// catalog: every attribute appearing in an indexable condition-element
// test gets a hash+ordered secondary index.
func BuildIndexes(set *Set, db *relation.DB) error {
	for _, name := range set.ClassNames() {
		rel, err := db.Lookup(name)
		if err != nil {
			return err
		}
		for _, ce := range set.ByClass[name] {
			for _, c := range ce.Consts {
				if indexable(c.Op) {
					if err := rel.CreateIndex(c.Pos); err != nil {
						return err
					}
				}
			}
			for _, vt := range ce.VarTests {
				if indexable(vt.Op) {
					if err := rel.CreateIndex(vt.Pos); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// CompileSource parses and compiles in one step.
func CompileSource(src string) (*Set, *lang.Program, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	set, err := Compile(prog)
	if err != nil {
		return nil, nil, err
	}
	return set, prog, nil
}
