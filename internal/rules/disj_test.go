package rules

import (
	"testing"

	"prodsys/internal/relation"
	"prodsys/internal/value"
)

func TestCompileDisjunction(t *testing.T) {
	set := compile(t, `
(literalize Light color brightness)
(p stop (Light ^color << red amber >> ^brightness > 5) --> (halt))`)
	r, _ := set.RuleByName("stop")
	ce := r.CEs[0]
	if len(ce.Disj) != 1 || ce.Disj[0].Pos != 0 || len(ce.Disj[0].Vals) != 2 {
		t.Fatalf("Disj = %+v", ce.Disj)
	}
	if !ce.MatchAlpha(relation.Tuple{value.OfSym("red"), value.OfInt(9)}) {
		t.Error("red/9 should pass")
	}
	if !ce.MatchAlpha(relation.Tuple{value.OfSym("amber"), value.OfInt(9)}) {
		t.Error("amber/9 should pass")
	}
	if ce.MatchAlpha(relation.Tuple{value.OfSym("green"), value.OfInt(9)}) {
		t.Error("green should fail the disjunction")
	}
	if ce.MatchAlpha(relation.Tuple{value.OfSym("red"), value.OfInt(3)}) {
		t.Error("brightness 3 should fail")
	}
	if r.Specificity != 2 {
		t.Errorf("specificity = %d", r.Specificity)
	}
}

func TestDisjTestSatisfies(t *testing.T) {
	d := DisjTest{Pos: 0, Vals: []value.V{value.OfInt(1), value.OfInt(2)}}
	if !d.Satisfies(relation.Tuple{value.OfFloat(2.0)}) {
		t.Error("numeric coercion inside disjunction")
	}
	if d.Satisfies(relation.Tuple{value.OfInt(3)}) {
		t.Error("3 not in {1,2}")
	}
	if (DisjTest{Pos: 5}).Satisfies(relation.Tuple{value.OfInt(1)}) {
		t.Error("out of range")
	}
}
