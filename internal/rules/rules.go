// Package rules compiles parsed OPS5-subset programs into the positional
// rule model shared by every matcher: condition elements with constant
// restrictions and variable tests, the inter-condition join graph, and the
// Related-Condition-Element (RCE) lists of the paper's matching-pattern
// algorithm (§4.2.1).
package rules

import (
	"fmt"
	"sort"
	"strings"

	"prodsys/internal/lang"
	"prodsys/internal/relation"
	"prodsys/internal/value"
)

// Bindings maps variable names to their bound values during matching.
type Bindings map[string]value.V

// Clone copies the bindings.
func (b Bindings) Clone() Bindings {
	out := make(Bindings, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Equal reports whether two binding sets bind the same variables to equal
// values.
func (b Bindings) Equal(o Bindings) bool {
	if len(b) != len(o) {
		return false
	}
	for k, v := range b {
		w, ok := o[k]
		if !ok || !value.Equal(v, w) {
			return false
		}
	}
	return true
}

// Key renders the bindings canonically for deduplication.
func (b Bindings) Key() string {
	names := make([]string, 0, len(b))
	for k := range b {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, k := range names {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(b[k].Key().String())
	}
	return sb.String()
}

// DisjTest is a value disjunction on one attribute: the value must equal
// one of Vals (OPS5's << a b c >> syntax).
type DisjTest struct {
	Pos  int
	Vals []value.V
}

// Satisfies reports whether the tuple's attribute equals one of the
// disjunction's values.
func (d DisjTest) Satisfies(t relation.Tuple) bool {
	if d.Pos < 0 || d.Pos >= len(t) {
		return false
	}
	for _, v := range d.Vals {
		if value.Equal(t[d.Pos], v) {
			return true
		}
	}
	return false
}

// VarTest is one variable-involving predicate on a condition element's
// attribute: tuple[Pos] Op <Var>. When Binds is true this is the binding
// occurrence of Var within the rule (Op is then OpEq).
type VarTest struct {
	Pos   int
	Op    value.Op
	Var   string
	Binds bool
}

// CE is a compiled condition element.
type CE struct {
	Rule    *Rule
	Index   int // 0-based position within the rule's LHS; paper CEN = Index+1
	Class   string
	Schema  *relation.Schema
	Negated bool
	// Consts are the variable-free restrictions, checkable against a lone
	// tuple (the one-input nodes of a Rete network).
	Consts []relation.Restriction
	// Disj are value disjunctions (<< a b c >>), also variable-free.
	Disj []DisjTest
	// VarTests are the variable-involving predicates in source order.
	VarTests []VarTest
}

// CEN returns the paper's 1-based condition element number.
func (ce *CE) CEN() int { return ce.Index + 1 }

// String renders the condition element for diagnostics.
func (ce *CE) String() string {
	neg := ""
	if ce.Negated {
		neg = "-"
	}
	return fmt.Sprintf("%s%s/%d on %s", neg, ce.Rule.Name, ce.CEN(), ce.Class)
}

// MatchAlpha reports whether tuple t passes every variable-free
// restriction of the condition element, including value disjunctions.
// This is the test a Rete one-input node chain performs.
func (ce *CE) MatchAlpha(t relation.Tuple) bool {
	if !relation.SatisfiesAll(t, ce.Consts) {
		return false
	}
	for _, d := range ce.Disj {
		if !d.Satisfies(t) {
			return false
		}
	}
	return true
}

// MatchWith extends bindings b (not mutated) so that tuple t fully
// satisfies the condition element, or reports failure. Alpha restrictions
// are re-checked. Variable tests are evaluated in source order: a binding
// occurrence binds when the variable is still free and compares otherwise;
// a non-equality test requires the variable bound (by an earlier condition
// element or an earlier atom of this one).
func (ce *CE) MatchWith(t relation.Tuple, b Bindings) (Bindings, bool) {
	if !ce.MatchAlpha(t) {
		return nil, false
	}
	out := b
	cloned := false
	for _, vt := range ce.VarTests {
		cur, bound := out[vt.Var]
		switch {
		case vt.Op == value.OpEq && !bound:
			if t[vt.Pos].IsNil() {
				return nil, false // unset field cannot bind
			}
			if !cloned {
				out = out.Clone()
				cloned = true
			}
			out[vt.Var] = t[vt.Pos]
		case bound:
			if !vt.Op.Apply(t[vt.Pos], cur) {
				return nil, false
			}
		default:
			// Non-equality test on an unbound variable: compilation rejects
			// this, so reaching here means inconsistent use; fail closed.
			return nil, false
		}
	}
	if !cloned && len(ce.VarTests) > 0 {
		out = out.Clone()
	} else if out == nil {
		out = Bindings{}
	}
	return out, true
}

// MatchPattern matches tuple t against this condition element under the
// partial bindings of a matching pattern (§4.2): like MatchWith, except a
// non-equality test on an unbound variable is treated as satisfied — the
// pattern simply does not restrict that attribute yet. An equality test
// on an unbound variable binds it. The returned bindings extend b.
func (ce *CE) MatchPattern(t relation.Tuple, b Bindings) (Bindings, bool) {
	if !ce.MatchAlpha(t) {
		return nil, false
	}
	out := b
	cloned := false
	for _, vt := range ce.VarTests {
		cur, bound := out[vt.Var]
		switch {
		case bound:
			if !vt.Op.Apply(t[vt.Pos], cur) {
				return nil, false
			}
		case vt.Op == value.OpEq:
			if t[vt.Pos].IsNil() {
				return nil, false
			}
			if !cloned {
				out = out.Clone()
				cloned = true
			}
			out[vt.Var] = t[vt.Pos]
		default:
			// Unbound non-equality test: unconstrained in the pattern.
		}
	}
	if !cloned {
		out = out.Clone()
	}
	return out, true
}

// Restrictions derives the single-relation selection predicate for this
// condition element under bindings b: all constant tests plus every
// variable test whose variable is bound. free reports the variables that
// remain unbound (their tests are omitted).
func (ce *CE) Restrictions(b Bindings) (rs []relation.Restriction, free []string) {
	rs = append(rs, ce.Consts...)
	seen := map[string]bool{}
	for _, vt := range ce.VarTests {
		if v, ok := b[vt.Var]; ok {
			rs = append(rs, relation.Restriction{Pos: vt.Pos, Op: vt.Op, Val: v})
		} else if !seen[vt.Var] {
			seen[vt.Var] = true
			free = append(free, vt.Var)
		}
	}
	return rs, free
}

// BindingsFromTuple extracts this CE's variable bindings from a tuple
// already known to match it (binding occurrences only).
func (ce *CE) BindingsFromTuple(t relation.Tuple) Bindings {
	b := Bindings{}
	for _, vt := range ce.VarTests {
		if vt.Binds && !t[vt.Pos].IsNil() {
			b[vt.Var] = t[vt.Pos]
		}
	}
	return b
}

// Vars returns the distinct variables referenced by the condition
// element, in first-appearance order.
func (ce *CE) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, vt := range ce.VarTests {
		if !seen[vt.Var] {
			seen[vt.Var] = true
			out = append(out, vt.Var)
		}
	}
	return out
}

// ExtractableVars returns the distinct variables whose value a tuple of
// this condition element determines — those with an equality test. A
// variable referenced only through an inequality (e.g. ^at {<b> <> <p>}
// references p) is constrained but not extractable: no binding for it can
// be projected from a matching tuple.
func (ce *CE) ExtractableVars() []string {
	var out []string
	seen := map[string]bool{}
	for _, vt := range ce.VarTests {
		if vt.Op == value.OpEq && !seen[vt.Var] {
			seen[vt.Var] = true
			out = append(out, vt.Var)
		}
	}
	return out
}

// RCE identifies a related condition element: another condition element of
// the same rule that shares at least one chain of variables with this one
// (the paper simply lists all other condition elements of the rule; we do
// the same).
type RCE struct {
	Class string
	CEN   int // 1-based, as in the paper
}

// Rule is a compiled production.
type Rule struct {
	Name    string
	Index   int // position within the rule set
	CEs     []*CE
	Actions []*lang.Action
	// Specificity counts the total number of tests, used by conflict
	// resolution strategies that prefer more specific rules.
	Specificity int
}

// NumPositive returns the count of non-negated condition elements.
func (r *Rule) NumPositive() int {
	n := 0
	for _, ce := range r.CEs {
		if !ce.Negated {
			n++
		}
	}
	return n
}

// RCEList returns the related condition elements of the CE at 0-based
// index i: every other condition element of the rule, in LHS order.
func (r *Rule) RCEList(i int) []RCE {
	out := make([]RCE, 0, len(r.CEs)-1)
	for j, ce := range r.CEs {
		if j == i {
			continue
		}
		out = append(out, RCE{Class: ce.Class, CEN: ce.CEN()})
	}
	return out
}

// SharedVars returns the variables shared between condition elements i
// and j.
func (r *Rule) SharedVars(i, j int) []string {
	inI := map[string]bool{}
	for _, v := range r.CEs[i].Vars() {
		inI[v] = true
	}
	var out []string
	for _, v := range r.CEs[j].Vars() {
		if inI[v] {
			out = append(out, v)
		}
	}
	return out
}

// String renders the rule name and shape.
func (r *Rule) String() string {
	return fmt.Sprintf("%s(%d CEs, %d actions)", r.Name, len(r.CEs), len(r.Actions))
}

// Set is a compiled rule set together with its class catalog.
type Set struct {
	Classes map[string]*relation.Schema
	Rules   []*Rule
	// ByClass indexes the condition elements defined on each class, the
	// contents of the paper's per-class COND relations.
	ByClass map[string][]*CE
	byName  map[string]*Rule
}

// RuleByName returns the named rule.
func (s *Set) RuleByName(name string) (*Rule, bool) {
	r, ok := s.byName[name]
	return r, ok
}

// ClassNames returns the declared class names in sorted order.
func (s *Set) ClassNames() []string {
	out := make([]string, 0, len(s.Classes))
	for n := range s.Classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResolveTerm evaluates a term under bindings.
func ResolveTerm(t lang.Term, b Bindings) (value.V, error) {
	if t.Kind == lang.TermConst {
		return t.Val, nil
	}
	v, ok := b[t.Var]
	if !ok {
		return value.V{}, fmt.Errorf("unbound variable <%s>", t.Var)
	}
	return v, nil
}
