package rules

import (
	"testing"

	"prodsys/internal/lang"
	"prodsys/internal/relation"
	"prodsys/internal/value"
)

const payrollSrc = `
(literalize Emp name age salary dno manager)
(literalize Dept dno dname floor manager)

(p R1
    (Emp ^name Mike ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
  -->
    (remove 1))

(p R2
    (Emp ^dno <D>)
    (Dept ^dno <D> ^dname Toy ^floor 1)
  -->
    (remove 1))
`

func compile(t *testing.T, src string) *Set {
	t.Helper()
	set, _, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func emp(name string, age, salary, dno int64, mgr string) relation.Tuple {
	return relation.Tuple{
		value.OfSym(name), value.OfInt(age), value.OfInt(salary),
		value.OfInt(dno), value.OfSym(mgr),
	}
}

func TestCompilePayroll(t *testing.T) {
	set := compile(t, payrollSrc)
	if len(set.Rules) != 2 || len(set.Classes) != 2 {
		t.Fatalf("rules=%d classes=%d", len(set.Rules), len(set.Classes))
	}
	r1, ok := set.RuleByName("R1")
	if !ok {
		t.Fatal("R1 missing")
	}
	if r1.NumPositive() != 2 {
		t.Errorf("R1 positives = %d", r1.NumPositive())
	}
	ce1 := r1.CEs[0]
	if len(ce1.Consts) != 1 || ce1.Consts[0].Pos != 0 {
		t.Errorf("R1 CE1 consts: %+v", ce1.Consts)
	}
	if len(ce1.VarTests) != 2 || !ce1.VarTests[0].Binds || !ce1.VarTests[1].Binds {
		t.Errorf("R1 CE1 var tests: %+v", ce1.VarTests)
	}
	ce2 := r1.CEs[1]
	// <M> and <S> are bound by CE1; <S1> binds here.
	var binds, compares int
	for _, vt := range ce2.VarTests {
		if vt.Binds {
			binds++
		} else {
			compares++
		}
	}
	if binds != 1 || compares != 2 {
		t.Errorf("R1 CE2 binds=%d compares=%d: %+v", binds, compares, ce2.VarTests)
	}
	// ByClass: Emp has 3 CEs (two in R1, one in R2), Dept has 1.
	if len(set.ByClass["Emp"]) != 3 || len(set.ByClass["Dept"]) != 1 {
		t.Errorf("ByClass: Emp=%d Dept=%d", len(set.ByClass["Emp"]), len(set.ByClass["Dept"]))
	}
	if names := set.ClassNames(); len(names) != 2 || names[0] != "Dept" {
		t.Errorf("ClassNames = %v", names)
	}
}

func TestRCEList(t *testing.T) {
	set := compile(t, `
(literalize A a1 a2 a3)
(literalize B b1 b2 b3)
(literalize C c1 c2 c3)
(p Rule-1
    (A ^a1 <x> ^a2 a ^a3 <z>)
    (B ^b1 <x> ^b2 <y> ^b3 b)
    (C ^c1 c ^c2 <y> ^c3 <z>)
  -->
    (halt))`)
	r, _ := set.RuleByName("Rule-1")
	// Paper Example 4: COND-A lists (B,2),(C,3); COND-B lists (A,1),(C,3).
	rceA := r.RCEList(0)
	if len(rceA) != 2 || rceA[0] != (RCE{"B", 2}) || rceA[1] != (RCE{"C", 3}) {
		t.Errorf("RCE(A) = %v", rceA)
	}
	rceB := r.RCEList(1)
	if len(rceB) != 2 || rceB[0] != (RCE{"A", 1}) || rceB[1] != (RCE{"C", 3}) {
		t.Errorf("RCE(B) = %v", rceB)
	}
	if got := r.SharedVars(0, 1); len(got) != 1 || got[0] != "x" {
		t.Errorf("SharedVars(A,B) = %v", got)
	}
	if got := r.SharedVars(1, 2); len(got) != 1 || got[0] != "y" {
		t.Errorf("SharedVars(B,C) = %v", got)
	}
	if got := r.SharedVars(0, 2); len(got) != 1 || got[0] != "z" {
		t.Errorf("SharedVars(A,C) = %v", got)
	}
}

func TestMatchAlpha(t *testing.T) {
	set := compile(t, payrollSrc)
	r1, _ := set.RuleByName("R1")
	ce1 := r1.CEs[0]
	if !ce1.MatchAlpha(emp("Mike", 30, 1000, 1, "Sam")) {
		t.Error("Mike should pass CE1 alpha")
	}
	if ce1.MatchAlpha(emp("Sam", 30, 1000, 1, "Pat")) {
		t.Error("Sam should fail CE1 alpha (name Mike)")
	}
}

func TestMatchWith(t *testing.T) {
	set := compile(t, payrollSrc)
	r1, _ := set.RuleByName("R1")
	ce1, ce2 := r1.CEs[0], r1.CEs[1]

	b1, ok := ce1.MatchWith(emp("Mike", 30, 1000, 1, "Sam"), Bindings{})
	if !ok {
		t.Fatal("CE1 should match Mike")
	}
	if !value.Equal(b1["S"], value.OfInt(1000)) || !value.Equal(b1["M"], value.OfSym("Sam")) {
		t.Fatalf("bindings = %v", b1)
	}
	// Sam earns 900 < 1000: CE2 matches and binds S1.
	b2, ok := ce2.MatchWith(emp("Sam", 50, 900, 1, "Pat"), b1)
	if !ok {
		t.Fatal("CE2 should match Sam")
	}
	if !value.Equal(b2["S1"], value.OfInt(900)) {
		t.Fatalf("S1 = %v", b2["S1"])
	}
	// Original bindings must be untouched.
	if _, leaked := b1["S1"]; leaked {
		t.Error("MatchWith mutated caller's bindings")
	}
	// Sam earning 1200 fails the < test.
	if _, ok := ce2.MatchWith(emp("Sam", 50, 1200, 1, "Pat"), b1); ok {
		t.Error("CE2 should reject a manager earning more")
	}
	// Wrong name fails the join on <M>.
	if _, ok := ce2.MatchWith(emp("Pat", 50, 900, 1, "Joe"), b1); ok {
		t.Error("CE2 should reject non-manager")
	}
}

func TestMatchWithRejectsNilBinding(t *testing.T) {
	set := compile(t, payrollSrc)
	r1, _ := set.RuleByName("R1")
	tup := relation.Tuple{value.OfSym("Mike"), value.OfInt(30), value.V{}, value.OfInt(1), value.OfSym("Sam")}
	if _, ok := r1.CEs[0].MatchWith(tup, Bindings{}); ok {
		t.Error("binding an unset (nil) field should fail")
	}
}

func TestRestrictions(t *testing.T) {
	set := compile(t, payrollSrc)
	r1, _ := set.RuleByName("R1")
	ce2 := r1.CEs[1]
	// With S and M bound, CE2's predicate is fully grounded.
	b := Bindings{"S": value.OfInt(1000), "M": value.OfSym("Sam")}
	rs, free := ce2.Restrictions(b)
	if len(free) != 1 || free[0] != "S1" {
		t.Errorf("free = %v", free)
	}
	// name = Sam, salary < 1000 (the <S1> bind contributes nothing).
	sam := emp("Sam", 50, 900, 1, "Pat")
	if !relation.SatisfiesAll(sam, rs) {
		t.Errorf("Sam should satisfy restrictions %v", rs)
	}
	rich := emp("Sam", 50, 2000, 1, "Pat")
	if relation.SatisfiesAll(rich, rs) {
		t.Error("rich Sam should fail salary restriction")
	}
	// Unbound: only the const restriction applies.
	rs0, free0 := ce2.Restrictions(Bindings{})
	if len(rs0) != 0 {
		t.Errorf("CE2 has no const restrictions, got %v", rs0)
	}
	if len(free0) != 3 {
		t.Errorf("free vars = %v", free0)
	}
}

func TestBindingsFromTupleAndVars(t *testing.T) {
	set := compile(t, payrollSrc)
	r1, _ := set.RuleByName("R1")
	ce1 := r1.CEs[0]
	b := ce1.BindingsFromTuple(emp("Mike", 30, 1000, 1, "Sam"))
	if len(b) != 2 || !value.Equal(b["S"], value.OfInt(1000)) {
		t.Errorf("BindingsFromTuple = %v", b)
	}
	if vars := ce1.Vars(); len(vars) != 2 || vars[0] != "S" || vars[1] != "M" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestBindingsCloneEqualKey(t *testing.T) {
	b := Bindings{"x": value.OfInt(1), "y": value.OfSym("a")}
	c := b.Clone()
	if !b.Equal(c) {
		t.Error("clone should be Equal")
	}
	c["x"] = value.OfInt(2)
	if b.Equal(c) {
		t.Error("mutated clone should differ")
	}
	if b["x"].AsInt() != 1 {
		t.Error("clone aliases original")
	}
	if b.Equal(Bindings{"x": value.OfInt(1)}) {
		t.Error("different sizes should differ")
	}
	k1 := Bindings{"x": value.OfInt(3), "y": value.OfSym("a")}.Key()
	k2 := Bindings{"y": value.OfSym("a"), "x": value.OfFloat(3.0)}.Key()
	if k1 != k2 {
		t.Errorf("keys should normalize: %q vs %q", k1, k2)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown class in CE", `(p R (Nope ^x 1) --> (halt))`},
		{"unknown attr", `(literalize A x) (p R (A ^y 1) --> (halt))`},
		{"duplicate literalize", `(literalize A x) (literalize A y)`},
		{"duplicate rule", `(literalize A x) (p R (A ^x 1) --> (halt)) (p R (A ^x 2) --> (halt))`},
		{"unbound nonEq var", `(literalize A x) (p R (A ^x > <v>) --> (halt))`},
		{"all negated", `(literalize A x) (p R - (A ^x 1) --> (halt))`},
		{"neg-local var used later", `(literalize A x) (literalize B y) (p R - (B ^y <v>) (A ^x <v>) --> (halt))`},
		{"make unknown class", `(literalize A x) (p R (A ^x 1) --> (make Z ^q 1))`},
		{"make unknown attr", `(literalize A x) (p R (A ^x 1) --> (make A ^q 1))`},
		{"make unbound var", `(literalize A x) (p R (A ^x 1) --> (make A ^x <v>))`},
		{"remove out of range", `(literalize A x) (p R (A ^x 1) --> (remove 2))`},
		{"remove negated CE", `(literalize A x) (literalize B y) (p R (A ^x 1) - (B ^y 1) --> (remove 2))`},
		{"modify unknown attr", `(literalize A x) (p R (A ^x 1) --> (modify 1 ^q 2))`},
		{"modify unbound var", `(literalize A x) (p R (A ^x 1) --> (modify 1 ^x <v>))`},
		{"write unbound var", `(literalize A x) (p R (A ^x 1) --> (write <v>))`},
		{"bind unbound term", `(literalize A x) (p R (A ^x 1) --> (bind <y> <v>))`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := CompileSource(tc.src); err == nil {
				t.Errorf("CompileSource(%q) should fail", tc.src)
			}
		})
	}
}

func TestBindMakesVarAvailable(t *testing.T) {
	src := `(literalize A x)
(p R (A ^x <v>) --> (bind <w> 5) (make A ^x <w>))`
	if _, _, err := CompileSource(src); err != nil {
		t.Fatalf("bind-then-use should compile: %v", err)
	}
}

func TestNegatedCELocalVarsAllowedWithinCE(t *testing.T) {
	// A variable may bind and be tested inside the same negated CE.
	src := `(literalize A x) (literalize B y z)
(p R (A ^x <v>) - (B ^y <v> ^z <w>) --> (halt))`
	set := compile(t, src)
	r, _ := set.RuleByName("R")
	if !r.CEs[1].Negated {
		t.Fatal("CE2 should be negated")
	}
}

func TestFactTuple(t *testing.T) {
	set := compile(t, `(literalize Emp name age salary)`)
	prog, err := lang.Parse(`(Emp Mike 30) (Emp ^salary 900 ^name Sam)`)
	if err != nil {
		t.Fatal(err)
	}
	cls, tup, err := FactTuple(set, prog.Facts[0])
	if err != nil || cls != "Emp" {
		t.Fatal(err)
	}
	if tup[0].AsString() != "Mike" || tup[1].AsInt() != 30 || !tup[2].IsNil() {
		t.Errorf("positional tuple = %v", tup)
	}
	_, tup2, err := FactTuple(set, prog.Facts[1])
	if err != nil {
		t.Fatal(err)
	}
	if tup2[0].AsString() != "Sam" || !tup2[1].IsNil() || tup2[2].AsInt() != 900 {
		t.Errorf("attr tuple = %v", tup2)
	}
	// Errors.
	bad, _ := lang.Parse(`(Nope 1) (Emp 1 2 3 4) (Emp ^zz 1)`)
	for i, f := range bad.Facts {
		if _, _, err := FactTuple(set, f); err == nil {
			t.Errorf("fact %d should fail", i)
		}
	}
}

func TestBuildDB(t *testing.T) {
	set := compile(t, payrollSrc)
	db := relation.NewDB(nil)
	if err := BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	empRel, ok := db.Get("Emp")
	if !ok {
		t.Fatal("Emp relation missing")
	}
	// name has a const eq test, dno and manager/name have var eq tests.
	if !empRel.HasIndex(0) {
		t.Error("Emp.name should be indexed")
	}
	if !empRel.HasIndex(3) {
		t.Error("Emp.dno should be indexed")
	}
	deptRel := db.MustGet("Dept")
	if !deptRel.HasIndex(0) {
		t.Error("Dept.dno should be indexed")
	}
	// BuildDB on a non-empty catalog fails on duplicates.
	if err := BuildDB(set, db); err == nil {
		t.Error("duplicate BuildDB should fail")
	}
}

func TestResolveTerm(t *testing.T) {
	b := Bindings{"x": value.OfInt(7)}
	v, err := ResolveTerm(lang.VarTerm("x"), b)
	if err != nil || v.AsInt() != 7 {
		t.Fatalf("ResolveTerm var: %v %v", v, err)
	}
	v, err = ResolveTerm(lang.ConstTerm(value.OfSym("k")), nil)
	if err != nil || v.AsString() != "k" {
		t.Fatalf("ResolveTerm const: %v %v", v, err)
	}
	if _, err := ResolveTerm(lang.VarTerm("zz"), b); err == nil {
		t.Error("unbound var should error")
	}
}

func TestCENAndStrings(t *testing.T) {
	set := compile(t, payrollSrc)
	r1, _ := set.RuleByName("R1")
	if r1.CEs[0].CEN() != 1 || r1.CEs[1].CEN() != 2 {
		t.Error("CEN should be 1-based")
	}
	if r1.String() == "" || r1.CEs[0].String() == "" {
		t.Error("String methods should render")
	}
	if r1.Specificity != 6 {
		t.Errorf("R1 specificity = %d, want 6", r1.Specificity)
	}
}

func TestMatchWithEmptyVarTests(t *testing.T) {
	set := compile(t, `(literalize A x) (p R (A ^x 1) --> (halt))`)
	r, _ := set.RuleByName("R")
	b, ok := r.CEs[0].MatchWith(relation.Tuple{value.OfInt(1)}, nil)
	if !ok || b == nil || len(b) != 0 {
		t.Fatalf("const-only CE match: %v %v", b, ok)
	}
}
