package rules

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prodsys/internal/relation"
	"prodsys/internal/value"
)

// TestMatchConsistencyProperty: for random tuples, MatchWith success
// implies MatchPattern success under the same bindings (the pattern
// semantics only relaxes), and both agree with MatchAlpha on
// constant-only condition elements.
func TestMatchConsistencyProperty(t *testing.T) {
	set := compile(t, `
(literalize R a b c)
(p full (R ^a > 10 ^b <x> ^c {<y> < <x>}) --> (halt))
(p flat (R ^a 5 ^b 6) --> (halt))`)
	full, _ := set.RuleByName("full")
	flat, _ := set.RuleByName("flat")
	f := func(a, b, c int64) bool {
		tup := relation.Tuple{value.OfInt(a % 50), value.OfInt(b % 50), value.OfInt(c % 50)}
		ceFull := full.CEs[0]
		if _, ok := ceFull.MatchWith(tup, Bindings{}); ok {
			if _, pok := ceFull.MatchPattern(tup, Bindings{}); !pok {
				return false // pattern match must be a relaxation
			}
		}
		ceFlat := flat.CEs[0]
		_, wok := ceFlat.MatchWith(tup, Bindings{})
		if wok != ceFlat.MatchAlpha(tup) {
			return false // constant-only CE: alpha is the whole test
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRestrictionsSoundProperty: tuples returned by a selection with
// ce.Restrictions(b) must be exactly those accepted by MatchWith when
// every variable is bound.
func TestRestrictionsSoundProperty(t *testing.T) {
	set := compile(t, `
(literalize Emp name salary dno)
(literalize Dept dno)
(p r (Dept ^dno <d>) (Emp ^salary > 100 ^dno <d> ^name <n>) --> (halt))`)
	r, _ := set.RuleByName("r")
	ce := r.CEs[1]
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		b := Bindings{"d": value.OfInt(int64(rng.Intn(5)))}
		tup := relation.Tuple{
			value.OfSym("e"),
			value.OfInt(int64(rng.Intn(300))),
			value.OfInt(int64(rng.Intn(5))),
		}
		rs, free := ce.Restrictions(b)
		if len(free) != 1 || free[0] != "n" {
			t.Fatalf("free = %v", free)
		}
		_, mok := ce.MatchWith(tup, b)
		sok := relation.SatisfiesAll(tup, rs)
		if mok != sok {
			t.Fatalf("MatchWith=%v SatisfiesAll=%v for %v under %v", mok, sok, tup, b)
		}
	}
}

// TestBindingsKeyProperty: Key is order-insensitive and injective up to
// value equality for small random binding sets.
func TestBindingsKeyProperty(t *testing.T) {
	f := func(a, b, c int64) bool {
		x := Bindings{"a": value.OfInt(a), "b": value.OfInt(b), "c": value.OfInt(c)}
		y := Bindings{"c": value.OfInt(c), "a": value.OfInt(a), "b": value.OfInt(b)}
		if x.Key() != y.Key() {
			return false
		}
		z := Bindings{"a": value.OfInt(a + 1), "b": value.OfInt(b), "c": value.OfInt(c)}
		return x.Key() != z.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
