// Package requery implements the paper's simplified algorithm (§4.1):
// no intermediate storage at all. One COND relation per working-memory
// class records the condition elements referring to that class; every WM
// change searches the COND relation and re-evaluates the affected rules'
// LHS joins against the base WM relations.
//
// The trade-off is exactly the one the paper states: minimal space (no
// matching patterns, no tokens) against join recomputation on every
// change. It also serves as the correctness oracle for the other
// matchers, being a direct transcription of the declarative semantics.
package requery

import (
	"fmt"

	"prodsys/internal/conflict"
	"prodsys/internal/joiner"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
)

// Matcher is the simplified re-evaluation matcher.
type Matcher struct {
	set   *rules.Set
	db    *relation.DB
	cs    *conflict.Set
	stats *metrics.Set
	tr    *trace.Tracer
	pl    *joiner.Planner
}

// SetTracer implements match.Traceable: COND-relation searches and join
// re-evaluations are emitted as trace events.
func (m *Matcher) SetTracer(tr *trace.Tracer) { m.tr = tr }

// SetPlanner implements match.Planned: LHS re-evaluations run under
// the planner's cost-based join order (nil restores source order).
func (m *Matcher) SetPlanner(p *joiner.Planner) { m.pl = p }

// New builds the matcher over the engine's WM catalog. The catalog must
// already contain a relation per declared class (rules.BuildDB). stats
// may be nil.
func New(set *rules.Set, db *relation.DB, cs *conflict.Set, stats *metrics.Set) *Matcher {
	return &Matcher{set: set, db: db, cs: cs, stats: stats}
}

// Name implements match.Matcher.
func (m *Matcher) Name() string { return "requery" }

// ConflictSet implements match.Matcher.
func (m *Matcher) ConflictSet() *conflict.Set { return m.cs }

// Insert implements match.Matcher. The WM relation already contains the
// tuple. Each condition element on the class (one COND-relation search)
// either seeds a join re-evaluation (positive CE) or retracts
// instantiations it now blocks (negated CE).
func (m *Matcher) Insert(class string, id relation.TupleID, t relation.Tuple) error {
	for _, ce := range m.set.ByClass[class] {
		m.stats.Inc(metrics.PatternSearches)
		if ce.Negated {
			m.retractBlocked(ce, t)
			continue
		}
		t0 := m.tr.Now()
		pass := ce.MatchAlpha(t)
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindCondScan, At: t0, Dur: m.tr.Now() - t0,
				Rule: ce.Rule.Name, CE: ce.Index, Class: class, ID: uint64(id), Count: 1,
			})
		}
		if !pass {
			continue
		}
		m.deriveWithFixed(ce, id, t)
	}
	return nil
}

// Delete implements match.Matcher. The WM relation no longer contains the
// tuple. Instantiations supported by it are retracted; rules negatively
// dependent on the class are re-derived, since the deletion may have
// unblocked them.
func (m *Matcher) Delete(class string, id relation.TupleID, _ relation.Tuple) error {
	m.cs.RemoveByTuple(class, id)
	seen := map[*rules.Rule]bool{}
	for _, ce := range m.set.ByClass[class] {
		m.stats.Inc(metrics.PatternSearches)
		if !ce.Negated || seen[ce.Rule] {
			continue
		}
		seen[ce.Rule] = true
		m.deriveAll(ce.Rule, ce.Index)
	}
	return nil
}

// deriveWithFixed evaluates ce.Rule's LHS with ce pinned to the new
// tuple, adding every resulting instantiation.
func (m *Matcher) deriveWithFixed(ce *rules.CE, id relation.TupleID, t relation.Tuple) {
	var found int64
	t0 := m.tr.Now()
	fixed := map[int]joiner.Fixed{ce.Index: {ID: id, Tuple: t}}
	m.pl.Enumerate(m.db, ce.Rule, fixed, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
		found++
		m.cs.Add(&conflict.Instantiation{Rule: ce.Rule, TupleIDs: ids, Tuples: tuples, Bindings: b})
	})
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{
			Kind: trace.KindJoinEval, At: t0, Dur: m.tr.Now() - t0,
			Rule: ce.Rule.Name, CE: ce.Index, Class: ce.Class, ID: uint64(id), Count: found,
		})
	}
}

// deriveAll re-evaluates a rule from scratch (used when a blocker of a
// negated condition element disappears). ceIdx attributes the trace
// event to the seeding condition element (-1 when rule-level).
func (m *Matcher) deriveAll(r *rules.Rule, ceIdx int) {
	var found int64
	t0 := m.tr.Now()
	m.pl.Enumerate(m.db, r, nil, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
		found++
		m.cs.Add(&conflict.Instantiation{Rule: r, TupleIDs: ids, Tuples: tuples, Bindings: b})
	})
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{
			Kind: trace.KindJoinEval, At: t0, Dur: m.tr.Now() - t0,
			Rule: r.Name, CE: ceIdx, Count: found,
		})
	}
}

// retractBlocked removes instantiations of ce.Rule whose bindings the new
// tuple now satisfies at the negated condition element.
func (m *Matcher) retractBlocked(ce *rules.CE, t relation.Tuple) {
	m.cs.RemoveWhere(func(in *conflict.Instantiation) bool {
		if in.Rule != ce.Rule {
			return false
		}
		_, blocked := ce.MatchWith(t, in.Bindings)
		return blocked
	})
}

// Rederive rebuilds the whole conflict set from the current WM contents;
// used by tests as the declarative ground truth.
func (m *Matcher) Rederive() {
	m.cs.RemoveWhere(func(*conflict.Instantiation) bool { return true })
	for _, r := range m.set.Rules {
		m.deriveAll(r, -1)
	}
}

// String describes the matcher.
func (m *Matcher) String() string {
	return fmt.Sprintf("requery(%d rules)", len(m.set.Rules))
}
