package requery

import (
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

const src = `
(literalize Emp name salary dno)
(literalize Dept dno dname)
(p Toy (Emp ^dno <d>) (Dept ^dno <d> ^dname Toy) --> (remove 1))
(p Lonely (Emp ^name <n> ^dno <d>) - (Dept ^dno <d>) --> (halt))
`

type fixture struct {
	m  *Matcher
	db *relation.DB
	cs *conflict.Set
	st *metrics.Set
}

func setup(t *testing.T) *fixture {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.Set{}
	db := relation.NewDB(st)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet(st)
	return &fixture{m: New(set, db, cs, st), db: db, cs: cs, st: st}
}

func (f *fixture) insert(t *testing.T, class string, vals ...value.V) relation.TupleID {
	t.Helper()
	rel := f.db.MustGet(class)
	id, err := rel.Insert(relation.Tuple(vals))
	if err != nil {
		t.Fatal(err)
	}
	tup, _ := rel.Get(id)
	if err := f.m.Insert(class, id, tup); err != nil {
		t.Fatal(err)
	}
	return id
}

func (f *fixture) remove(t *testing.T, class string, id relation.TupleID) {
	t.Helper()
	tup, err := f.db.MustGet(class).Delete(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.m.Delete(class, id, tup); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDerives(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	// Lonely fires (no dept 7), Toy does not.
	keys := f.cs.Keys()
	if len(keys) != 1 || keys[0] != "Lonely|1|0" {
		t.Fatalf("conflict set = %v", keys)
	}
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	keys = f.cs.Keys()
	// Toy now fires; Lonely retracted by the blocker.
	if len(keys) != 1 || keys[0] != "Toy|1|1" {
		t.Fatalf("conflict set = %v", keys)
	}
}

func TestDeleteRetractsAndUnblocks(t *testing.T) {
	f := setup(t)
	e := f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	d := f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	f.remove(t, "Dept", d)
	keys := f.cs.Keys()
	if len(keys) != 1 || keys[0] != "Lonely|1|0" {
		t.Fatalf("unblock failed: %v", keys)
	}
	f.remove(t, "Emp", e)
	if f.cs.Len() != 0 {
		t.Fatalf("retract failed: %v", f.cs.Keys())
	}
}

func TestJoinRecomputationCounted(t *testing.T) {
	f := setup(t)
	before := f.st.Get(metrics.JoinsComputed)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	if f.st.Get(metrics.JoinsComputed) == before {
		t.Error("joins should be recomputed on insert")
	}
	if f.st.Get(metrics.PatternSearches) == 0 {
		t.Error("COND searches should be counted")
	}
}

func TestRederiveMatchesIncremental(t *testing.T) {
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	f.insert(t, "Emp", value.OfSym("Bob"), value.OfInt(200), value.OfInt(8))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	incremental := f.cs.Keys()
	f.m.Rederive()
	fromScratch := f.cs.Keys()
	if len(incremental) != len(fromScratch) {
		t.Fatalf("incremental %v vs scratch %v", incremental, fromScratch)
	}
	for i := range incremental {
		if incremental[i] != fromScratch[i] {
			t.Fatalf("incremental %v vs scratch %v", incremental, fromScratch)
		}
	}
}

func TestNameAndString(t *testing.T) {
	f := setup(t)
	if f.m.Name() != "requery" {
		t.Errorf("Name = %q", f.m.Name())
	}
	if f.m.String() != "requery(2 rules)" {
		t.Errorf("String = %q", f.m.String())
	}
	if f.m.ConflictSet() != f.cs {
		t.Error("ConflictSet accessor")
	}
}

func TestNoStorageGrowth(t *testing.T) {
	// The simplified algorithm stores nothing beyond the conflict set: no
	// pattern or token counters should move.
	f := setup(t)
	f.insert(t, "Emp", value.OfSym("Ann"), value.OfInt(100), value.OfInt(7))
	f.insert(t, "Dept", value.OfInt(7), value.OfSym("Toy"))
	if f.st.Get(metrics.PatternsStored) != 0 || f.st.Get(metrics.TokensStored) != 0 {
		t.Error("requery must not store intermediate results")
	}
}
