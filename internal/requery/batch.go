package requery

import (
	"fmt"
	"strings"

	"prodsys/internal/conflict"
	"prodsys/internal/joiner"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
)

// This file is the simplified algorithm's set-oriented path: where the
// tuple-at-a-time path seeds one join re-evaluation per WM change, a
// batch groups its tuples by join-equivalence and re-evaluates each
// affected condition element's residual join once per distinct group —
// the set-at-a-time processing of §4.1/§5.1 applied to the re-evaluation
// strategy. The batch's instantiations reach the conflict set in one
// pass per condition element.

// joinKey renders the tuple's values at the condition element's
// variable-test positions. MatchWith consults a tuple ONLY at those
// positions, so two alpha-passing tuples with equal keys satisfy the
// element under exactly the same bindings — their residual joins are
// identical.
func joinKey(ce *rules.CE, t relation.Tuple) string {
	var b strings.Builder
	for _, vt := range ce.VarTests {
		v := t[vt.Pos]
		fmt.Fprintf(&b, "%d\x00%s\x00", v.Kind(), v.String())
	}
	return b.String()
}

// InsertBatch implements match.BatchMatcher. For each positive condition
// element, alpha-passing batch tuples are grouped by join key; one group
// representative seeds the rule's LHS evaluation, and every complete
// combination is replayed for each group member — yielding exactly the
// union of the per-tuple seeded evaluations at the cost of one join per
// distinct key.
func (m *Matcher) InsertBatch(class string, entries []relation.DeltaEntry) error {
	for _, ce := range m.set.ByClass[class] {
		m.stats.Inc(metrics.PatternSearches)
		if ce.Negated {
			// One conflict-set sweep per negated CE per batch.
			ceCopy := ce
			m.cs.RemoveWhere(func(in *conflict.Instantiation) bool {
				if in.Rule != ceCopy.Rule {
					return false
				}
				for _, e := range entries {
					if _, blocked := ceCopy.MatchWith(e.Tuple, in.Bindings); blocked {
						return true
					}
				}
				return false
			})
			continue
		}
		t0 := m.tr.Now()
		groups := make(map[string][]relation.DeltaEntry)
		var order []string
		for _, e := range entries {
			if !ce.MatchAlpha(e.Tuple) {
				continue
			}
			k := joinKey(ce, e.Tuple)
			if _, seen := groups[k]; !seen {
				order = append(order, k)
			}
			groups[k] = append(groups[k], e)
		}
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{
				Kind: trace.KindCondScan, At: t0, Dur: m.tr.Now() - t0,
				Rule: ce.Rule.Name, CE: ce.Index, Class: class, Count: int64(len(entries)),
			})
		}
		rule := ce.Rule
		var batch []*conflict.Instantiation
		for _, k := range order {
			group := groups[k]
			rep := group[0]
			tJoin := m.tr.Now()
			var found int64
			fixed := map[int]joiner.Fixed{ce.Index: {ID: rep.ID, Tuple: rep.Tuple}}
			m.pl.Enumerate(m.db, rule, fixed, nil, m.stats, func(ids []relation.TupleID, tuples []relation.Tuple, b rules.Bindings) {
				for _, member := range group {
					mids := append([]relation.TupleID(nil), ids...)
					mtups := append([]relation.Tuple(nil), tuples...)
					mids[ce.Index], mtups[ce.Index] = member.ID, member.Tuple
					batch = append(batch, &conflict.Instantiation{Rule: rule, TupleIDs: mids, Tuples: mtups, Bindings: b.Clone()})
					found++
				}
			})
			if m.tr.Enabled() {
				m.tr.Emit(trace.Event{
					Kind: trace.KindJoinEval, At: tJoin, Dur: m.tr.Now() - tJoin,
					Rule: rule.Name, CE: ce.Index, Class: class, ID: uint64(rep.ID), Count: found,
				})
			}
		}
		m.cs.AddAll(batch)
	}
	return nil
}

// DeleteBatch implements match.BatchMatcher: instantiations supported by
// the deleted tuples are retracted, and each rule negatively dependent on
// the class is re-derived once for the whole batch instead of once per
// deleted tuple.
func (m *Matcher) DeleteBatch(class string, entries []relation.DeltaEntry) error {
	for _, e := range entries {
		m.cs.RemoveByTuple(class, e.ID)
	}
	seen := map[*rules.Rule]bool{}
	for _, ce := range m.set.ByClass[class] {
		m.stats.Inc(metrics.PatternSearches)
		if !ce.Negated || seen[ce.Rule] {
			continue
		}
		seen[ce.Rule] = true
		m.deriveAll(ce.Rule, ce.Index)
	}
	return nil
}
