package requery

import "prodsys/internal/relation"

// The simplified algorithm keeps no incremental derived state — every
// change re-evaluates the affected residual joins against working
// memory. Sharded processing therefore has an empty maintenance phase,
// and the whole batch path runs as detection: the planner and conflict
// set are both safe for concurrent use, and every derivation and
// negation check evaluates against final WM state (the engine's
// ApplyDelta precondition), so per-shard sub-batches commute.

// ShardMaintain implements match.Shardable phase 1: a no-op — the
// simplified algorithm materializes nothing between cycles.
func (m *Matcher) ShardMaintain(d *relation.Delta) error { return nil }

// ShardDetect implements match.Shardable phase 2: the existing batch
// path over one shard's sub-delta, deletions first.
func (m *Matcher) ShardDetect(d *relation.Delta) error {
	classes := d.Classes()
	for _, class := range classes {
		if e := d.Deletes(class); len(e) > 0 {
			if err := m.DeleteBatch(class, e); err != nil {
				return err
			}
		}
	}
	for _, class := range classes {
		if e := d.Inserts(class); len(e) > 0 {
			if err := m.InsertBatch(class, e); err != nil {
				return err
			}
		}
	}
	return nil
}
