// Package crosscheck validates that every matcher — the Rete network,
// the simplified re-evaluation algorithm, and the matching-pattern
// algorithm — maintains an identical conflict set over arbitrary
// insert/delete streams. requery is a direct transcription of the
// declarative LHS semantics and serves as the oracle.
package crosscheck

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/marker"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/ptree"
	"prodsys/internal/relation"
	"prodsys/internal/requery"
	"prodsys/internal/rete"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

// session drives a WM catalog and a bank of matchers in lockstep.
type session struct {
	t        *testing.T
	set      *rules.Set
	db       *relation.DB
	matchers []match.Matcher
	live     map[string][]relation.TupleID
}

func newSession(t *testing.T, src string, parallelCore bool) *session {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	db := relation.NewDB(&metrics.Set{})
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	var coreOpts []core.Option
	if parallelCore {
		coreOpts = append(coreOpts, core.WithParallelPropagation())
	}
	s := &session{
		t:    t,
		set:  set,
		db:   db,
		live: map[string][]relation.TupleID{},
		matchers: []match.Matcher{
			rete.New(set, conflict.NewSet(nil), &metrics.Set{}),
			rete.NewShared(set, conflict.NewSet(nil), &metrics.Set{}),
			requery.New(set, db, conflict.NewSet(nil), &metrics.Set{}),
			core.New(set, db, conflict.NewSet(nil), &metrics.Set{}, coreOpts...),
			marker.New(set, db, conflict.NewSet(nil), &metrics.Set{}),
			ptree.NewMatcher(set, db, conflict.NewSet(nil), &metrics.Set{}),
		},
	}
	return s
}

func (s *session) insert(class string, vals ...value.V) relation.TupleID {
	s.t.Helper()
	rel := s.db.MustGet(class)
	id, err := rel.Insert(relation.Tuple(vals))
	if err != nil {
		s.t.Fatal(err)
	}
	tup, _ := rel.Get(id)
	for _, m := range s.matchers {
		if err := m.Insert(class, id, tup); err != nil {
			s.t.Fatalf("%s insert: %v", m.Name(), err)
		}
	}
	s.live[class] = append(s.live[class], id)
	return id
}

func (s *session) delete(class string, id relation.TupleID) {
	s.t.Helper()
	rel := s.db.MustGet(class)
	tup, err := rel.Delete(id)
	if err != nil {
		s.t.Fatal(err)
	}
	for _, m := range s.matchers {
		if err := m.Delete(class, id, tup); err != nil {
			s.t.Fatalf("%s delete: %v", m.Name(), err)
		}
	}
	list := s.live[class]
	for i, x := range list {
		if x == id {
			s.live[class] = append(list[:i], list[i+1:]...)
			break
		}
	}
}

// agree asserts all matchers hold the oracle's conflict set.
func (s *session) agree(context string) {
	s.t.Helper()
	var want []string // requery is the oracle (declarative transcription)
	for _, m := range s.matchers {
		if m.Name() == "requery" {
			want = m.ConflictSet().Keys()
		}
	}
	for _, m := range s.matchers {
		got := m.ConflictSet().Keys()
		if !reflect.DeepEqual(got, want) {
			s.t.Fatalf("%s: %s conflict set = %v, oracle = %v", context, m.Name(), got, want)
		}
	}
}

const payrollSrc = `
(literalize Emp name age salary dno manager)
(literalize Dept dno dname floor manager)
(p R1
    (Emp ^name Mike ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
  -->
    (remove 1))
(p R2
    (Emp ^dno <D>)
    (Dept ^dno <D> ^dname Toy ^floor 1)
  -->
    (remove 1))
`

func TestPayrollScriptAgreement(t *testing.T) {
	s := newSession(t, payrollSrc, false)
	mike := s.insert("Emp", value.OfSym("Mike"), value.OfInt(30), value.OfInt(1000), value.OfInt(1), value.OfSym("Sam"))
	s.agree("after Mike")
	sam := s.insert("Emp", value.OfSym("Sam"), value.OfInt(50), value.OfInt(900), value.OfInt(1), value.OfSym("Pat"))
	s.agree("after Sam")
	if n := s.matchers[0].ConflictSet().Len(); n != 1 {
		t.Fatalf("R1 should be applicable once, conflict set = %v", s.matchers[0].ConflictSet().Keys())
	}
	d := s.insert("Dept", value.OfInt(1), value.OfSym("Toy"), value.OfInt(1), value.OfSym("Sam"))
	s.agree("after Toy dept")
	if n := s.matchers[0].ConflictSet().Len(); n != 3 {
		// R2 applies to both Mike and Sam (dno 1), plus R1.
		t.Fatalf("conflict set size = %d, want 3: %v", n, s.matchers[0].ConflictSet().Keys())
	}
	s.delete("Dept", d)
	s.agree("after dept removal")
	s.delete("Emp", sam)
	s.agree("after Sam removal")
	s.delete("Emp", mike)
	s.agree("after Mike removal")
	if n := s.matchers[0].ConflictSet().Len(); n != 0 {
		t.Fatalf("conflict set should be empty: %v", s.matchers[0].ConflictSet().Keys())
	}
}

const threeWaySrc = `
(literalize A a1 a2 a3)
(literalize B b1 b2 b3)
(literalize C c1 c2 c3)
(p Rule-1
    (A ^a1 <x> ^a2 a ^a3 <z>)
    (B ^b1 <x> ^b2 <y> ^b3 b)
    (C ^c1 c ^c2 <y> ^c3 <z>)
  -->
    (halt))
`

func TestExample5SequenceAgreement(t *testing.T) {
	s := newSession(t, threeWaySrc, false)
	s.insert("B", value.OfInt(4), value.OfInt(5), value.OfSym("b"))
	s.agree("B(4,5,b)")
	s.insert("C", value.OfSym("c"), value.OfInt(7), value.OfInt(8))
	s.agree("C(c,7,8)")
	s.insert("A", value.OfInt(4), value.OfSym("a"), value.OfInt(8))
	s.agree("A(4,a,8)")
	if s.matchers[0].ConflictSet().Len() != 0 {
		t.Fatal("nothing should fire yet")
	}
	s.insert("B", value.OfInt(4), value.OfInt(7), value.OfSym("b"))
	s.agree("B(4,7,b)")
	if s.matchers[0].ConflictSet().Len() != 1 {
		t.Fatalf("Rule-1 should fire exactly once: %v", s.matchers[0].ConflictSet().Keys())
	}
}

const negationSrc = `
(literalize Emp name dno)
(literalize Dept dno dname)
(p Orphan (Emp ^name <n> ^dno <d>) - (Dept ^dno <d>) --> (halt))
(p Staffed (Dept ^dno <d> ^dname <m>) (Emp ^dno <d>) --> (halt))
`

func TestNegationScriptAgreement(t *testing.T) {
	s := newSession(t, negationSrc, false)
	ann := s.insert("Emp", value.OfSym("Ann"), value.OfInt(7))
	s.agree("Ann")
	d7 := s.insert("Dept", value.OfInt(7), value.OfSym("Toy"))
	s.agree("Dept 7")
	s.insert("Emp", value.OfSym("Bob"), value.OfInt(9))
	s.agree("Bob orphan")
	s.delete("Dept", d7)
	s.agree("unblock Ann")
	s.delete("Emp", ann)
	s.agree("Ann gone")
}

const selfJoinSrc = `
(literalize A x y)
(p Self (A ^x <v>) (A ^y <v>) --> (halt))
`

func TestSelfJoinAgreement(t *testing.T) {
	s := newSession(t, selfJoinSrc, false)
	s.insert("A", value.OfInt(3), value.OfInt(3))
	s.agree("self pair")
	s.insert("A", value.OfInt(5), value.OfInt(3))
	s.agree("cross pair")
	s.insert("A", value.OfInt(3), value.OfInt(5))
	s.agree("triangle")
}

// randomSpec drives the fuzzing across several rule programs.
type randomSpec struct {
	name    string
	src     string
	classes map[string]func(r *rand.Rand) []value.V
}

func smallInt(r *rand.Rand) value.V { return value.OfInt(int64(r.Intn(4))) }

var specs = []randomSpec{
	{
		name: "threeway",
		src:  threeWaySrc,
		classes: map[string]func(*rand.Rand) []value.V{
			"A": func(r *rand.Rand) []value.V { return []value.V{smallInt(r), value.OfSym("a"), smallInt(r)} },
			"B": func(r *rand.Rand) []value.V { return []value.V{smallInt(r), smallInt(r), value.OfSym("b")} },
			"C": func(r *rand.Rand) []value.V { return []value.V{value.OfSym("c"), smallInt(r), smallInt(r)} },
		},
	},
	{
		name: "negation",
		src:  negationSrc,
		classes: map[string]func(*rand.Rand) []value.V{
			"Emp": func(r *rand.Rand) []value.V {
				return []value.V{value.OfSym(fmt.Sprintf("e%d", r.Intn(3))), smallInt(r)}
			},
			"Dept": func(r *rand.Rand) []value.V { return []value.V{smallInt(r), value.OfSym("Toy")} },
		},
	},
	{
		name: "selfjoin",
		src:  selfJoinSrc,
		classes: map[string]func(*rand.Rand) []value.V{
			"A": func(r *rand.Rand) []value.V { return []value.V{smallInt(r), smallInt(r)} },
		},
	},
	{
		name: "disjunction",
		src: `
(literalize Light color n)
(literalize Walk n)
(p stop (Light ^color << 0 1 >> ^n <k>) (Walk ^n <k>) --> (halt))
(p free (Light ^color 3 ^n <k>) - (Walk ^n <k>) --> (halt))`,
		classes: map[string]func(*rand.Rand) []value.V{
			"Light": func(r *rand.Rand) []value.V { return []value.V{smallInt(r), smallInt(r)} },
			"Walk":  func(r *rand.Rand) []value.V { return []value.V{smallInt(r)} },
		},
	},
	{
		name: "ineq-shared-var",
		src: `
(literalize M at)
(literalize L at)
(literalize B at)
(p reach (M ^at <p>) (L ^at <p>) (B ^at {<b> <> <p>}) --> (halt))
(p colocated (M ^at <p>) (B ^at <p>) --> (halt))`,
		classes: map[string]func(*rand.Rand) []value.V{
			"M": func(r *rand.Rand) []value.V { return []value.V{smallInt(r)} },
			"L": func(r *rand.Rand) []value.V { return []value.V{smallInt(r)} },
			"B": func(r *rand.Rand) []value.V { return []value.V{smallInt(r)} },
		},
	},
	{
		name: "comparisons",
		src: `
(literalize P x y)
(literalize Q x y)
(p Lt (P ^x <a> ^y <b>) (Q ^x <a> ^y > <b>) --> (halt))
(p NoQ (P ^x <a>) - (Q ^x <a> ^y <= 1) --> (halt))`,
		classes: map[string]func(*rand.Rand) []value.V{
			"P": func(r *rand.Rand) []value.V { return []value.V{smallInt(r), smallInt(r)} },
			"Q": func(r *rand.Rand) []value.V { return []value.V{smallInt(r), smallInt(r)} },
		},
	},
}

func runRandomAgreement(t *testing.T, spec randomSpec, seed int64, steps int, parallel bool) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	s := newSession(t, spec.src, parallel)
	classes := make([]string, 0, len(spec.classes))
	for c := range spec.classes {
		classes = append(classes, c)
	}
	// Deterministic class order for reproducibility.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	for step := 0; step < steps; step++ {
		class := classes[r.Intn(len(classes))]
		if len(s.live[class]) > 0 && r.Intn(100) < 35 {
			ids := s.live[class]
			s.delete(class, ids[r.Intn(len(ids))])
		} else {
			s.insert(class, spec.classes[class](r)...)
		}
		s.agree(fmt.Sprintf("%s seed=%d step=%d", spec.name, seed, step))
	}
}

func TestRandomizedAgreement(t *testing.T) {
	for _, spec := range specs {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				runRandomAgreement(t, spec, seed, 120, false)
			}
		})
	}
}

func TestRandomizedAgreementParallelCore(t *testing.T) {
	for _, spec := range specs {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			for seed := int64(100); seed <= 102; seed++ {
				runRandomAgreement(t, spec, seed, 80, true)
			}
		})
	}
}

func TestLongChurnAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("long churn")
	}
	runRandomAgreement(t, specs[0], 999, 600, false)
	runRandomAgreement(t, specs[1], 998, 600, false)
}
