package crosscheck

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/engine"
	"prodsys/internal/marker"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/ptree"
	"prodsys/internal/relation"
	"prodsys/internal/requery"
	"prodsys/internal/rete"
	"prodsys/internal/rules"
)

// This file validates the set-oriented maintenance path: for every
// matcher, a batched engine (ApplyDelta) and a tuple-at-a-time engine
// (Assert/Retract) consume the same random op stream and must hold
// identical conflict sets and WM after every batch.

var batchMatcherKinds = []string{"rete", "rete-shared", "requery", "core", "core-parallel", "marker", "ptree"}

func newBatchEngine(t *testing.T, src, kind string) *engine.Engine {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet(stats)
	var m match.Matcher
	switch kind {
	case "rete":
		m = rete.New(set, cs, stats)
	case "rete-shared":
		m = rete.NewShared(set, cs, stats)
	case "requery":
		m = requery.New(set, db, cs, stats)
	case "core":
		m = core.New(set, db, cs, stats)
	case "core-parallel":
		m = core.New(set, db, cs, stats, core.WithParallelPropagation())
	case "marker":
		m = marker.New(set, db, cs, stats)
	case "ptree":
		m = ptree.NewMatcher(set, db, cs, stats)
	default:
		t.Fatalf("unknown matcher kind %q", kind)
	}
	return engine.New(set, db, m, stats, engine.Config{})
}

// runBatchEquivalence feeds one random op stream to a per-tuple engine
// and, batch-by-batch, to a batched engine, comparing conflict set and
// WM at every batch boundary. Deletions may target tuples born earlier
// in the same batch, exercising the net-zero path.
func runBatchEquivalence(t *testing.T, spec randomSpec, kind string, seed int64, batches int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	seq := newBatchEngine(t, spec.src, kind)
	bat := newBatchEngine(t, spec.src, kind)

	classes := make([]string, 0, len(spec.classes))
	for c := range spec.classes {
		classes = append(classes, c)
	}
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}

	live := map[string][]relation.TupleID{}
	for b := 0; b < batches; b++ {
		n := 1 + r.Intn(6)
		ops := make([]engine.DeltaOp, 0, n)
		seqIDs := make([]relation.TupleID, 0, n)
		for i := 0; i < n; i++ {
			class := classes[r.Intn(len(classes))]
			if len(live[class]) > 0 && r.Intn(100) < 35 {
				ids := live[class]
				k := r.Intn(len(ids))
				id := ids[k]
				live[class] = append(ids[:k], ids[k+1:]...)
				if err := seq.Retract(class, id); err != nil {
					t.Fatalf("%s seed=%d batch=%d: sequential retract: %v", kind, seed, b, err)
				}
				ops = append(ops, engine.DeltaOp{Retract: true, Class: class, ID: id})
				seqIDs = append(seqIDs, 0)
				continue
			}
			tup := relation.Tuple(spec.classes[class](r))
			id, err := seq.Assert(class, tup)
			if err != nil {
				t.Fatalf("%s seed=%d batch=%d: sequential assert: %v", kind, seed, b, err)
			}
			live[class] = append(live[class], id)
			ops = append(ops, engine.DeltaOp{Class: class, Tuple: tup.Clone()})
			seqIDs = append(seqIDs, id)
		}
		gotIDs, err := bat.ApplyDelta(ops)
		if err != nil {
			t.Fatalf("%s seed=%d batch=%d: ApplyDelta: %v", kind, seed, b, err)
		}
		// Relation IDs are allocated in op order, so both engines must
		// agree — which also keeps later retract ops aligned.
		if !reflect.DeepEqual(gotIDs, seqIDs) {
			t.Fatalf("%s seed=%d batch=%d: ids = %v, want %v", kind, seed, b, gotIDs, seqIDs)
		}
		ctx := fmt.Sprintf("%s %s seed=%d batch=%d (%d ops)", kind, spec.name, seed, b, n)
		if got, want := bat.ConflictSet().Keys(), seq.ConflictSet().Keys(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: batched conflict set = %v, sequential = %v", ctx, got, want)
		}
		if got, want := bat.SnapshotWM(), seq.SnapshotWM(); got != want {
			t.Fatalf("%s: batched WM:\n%s\nsequential WM:\n%s", ctx, got, want)
		}
	}
}

func TestBatchEquivalence(t *testing.T) {
	for _, kind := range batchMatcherKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			for _, spec := range specs {
				spec := spec
				t.Run(spec.name, func(t *testing.T) {
					for seed := int64(1); seed <= 4; seed++ {
						runBatchEquivalence(t, spec, kind, seed, 40)
					}
				})
			}
		})
	}
}

func TestBatchEquivalenceLongChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("long churn")
	}
	for _, kind := range batchMatcherKinds {
		runBatchEquivalence(t, specs[0], kind, 777, 150)
		runBatchEquivalence(t, specs[1], kind, 778, 150)
	}
}
