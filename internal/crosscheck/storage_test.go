package crosscheck

import (
	"math/rand"
	"reflect"
	"testing"

	"prodsys/internal/audit"
	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/marker"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/ptree"
	"prodsys/internal/relation"
	"prodsys/internal/requery"
	"prodsys/internal/rete"
	"prodsys/internal/rules"
	"prodsys/internal/workload"
)

// storageSession drives one WM catalog on a chosen storage backend and
// all seven matchers in lockstep.
type storageSession struct {
	t        *testing.T
	set      *rules.Set
	db       *relation.DB
	stats    *metrics.Set
	matchers []match.Matcher
	live     map[string][]relation.TupleID
}

func newStorageSession(t *testing.T, src string, kind relation.StorageKind) *storageSession {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := db.SetDefaultStorage(kind); err != nil {
		t.Fatal(err)
	}
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	return &storageSession{
		t:     t,
		set:   set,
		db:    db,
		stats: stats,
		live:  map[string][]relation.TupleID{},
		matchers: []match.Matcher{
			rete.New(set, conflict.NewSet(nil), &metrics.Set{}),
			rete.NewShared(set, conflict.NewSet(nil), &metrics.Set{}),
			requery.New(set, db, conflict.NewSet(nil), &metrics.Set{}),
			core.New(set, db, conflict.NewSet(nil), &metrics.Set{}),
			core.New(set, db, conflict.NewSet(nil), &metrics.Set{}, core.WithParallelPropagation()),
			marker.New(set, db, conflict.NewSet(nil), &metrics.Set{}),
			ptree.NewMatcher(set, db, conflict.NewSet(nil), &metrics.Set{}),
		},
	}
}

func (s *storageSession) apply(ops []workload.Op) {
	s.t.Helper()
	for _, op := range ops {
		if op.Delete {
			ids := s.live[op.Class]
			if len(ids) == 0 {
				continue
			}
			id := ids[0]
			s.live[op.Class] = ids[1:]
			rel, err := s.db.Lookup(op.Class)
			if err != nil {
				s.t.Fatal(err)
			}
			tup, err := rel.Delete(id)
			if err != nil {
				s.t.Fatal(err)
			}
			for _, m := range s.matchers {
				if err := m.Delete(op.Class, id, tup); err != nil {
					s.t.Fatalf("%s delete: %v", m.Name(), err)
				}
			}
			continue
		}
		rel, err := s.db.Lookup(op.Class)
		if err != nil {
			s.t.Fatal(err)
		}
		id, err := rel.Insert(op.Tuple)
		if err != nil {
			s.t.Fatal(err)
		}
		stored, _ := rel.Get(id)
		for _, m := range s.matchers {
			if err := m.Insert(op.Class, id, stored); err != nil {
				s.t.Fatalf("%s insert: %v", m.Name(), err)
			}
		}
		s.live[op.Class] = append(s.live[op.Class], id)
	}
}

// oracleKeys returns requery's conflict-set keys (the declarative
// oracle) after asserting every matcher agrees with it.
func (s *storageSession) oracleKeys(context string) []string {
	s.t.Helper()
	var want []string
	for _, m := range s.matchers {
		if m.Name() == "requery" {
			want = m.ConflictSet().Keys()
		}
	}
	for _, m := range s.matchers {
		if got := m.ConflictSet().Keys(); !reflect.DeepEqual(got, want) {
			s.t.Fatalf("%s: %s conflict set = %v, oracle = %v", context, m.Name(), got, want)
		}
	}
	return want
}

// auditAll runs the PR 4 integrity audit over every matcher and fails
// on any divergence.
func (s *storageSession) auditAll(context string) {
	s.t.Helper()
	for _, m := range s.matchers {
		rep, err := audit.New(s.set, s.db, m, s.stats).Run(audit.Options{})
		if err != nil {
			s.t.Fatalf("%s: audit %s: %v", context, m.Name(), err)
		}
		if !rep.Clean() {
			s.t.Fatalf("%s: audit %s: %d divergences: %v", context, m.Name(), len(rep.Divergences), rep.Divergences)
		}
	}
}

// TestStorageBackendCrosscheck runs the randomized payroll workload on
// the row and columnar backends, holding all seven matchers in lockstep
// on each. Every checkpoint asserts (1) all matchers agree with the
// requery oracle, and (2) the full integrity audit is clean; at the end
// the two backends must have produced identical conflict-set histories.
func TestStorageBackendCrosscheck(t *testing.T) {
	const ruleCount, nOps, checkEvery = 20, 400, 100
	src := workload.PayrollRules(ruleCount, false)
	ops := workload.PayrollOps(13, nOps, 0.3)
	var histories [][]string
	for _, kind := range relation.StorageKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			s := newStorageSession(t, src, kind)
			var history []string
			for i := 0; i < len(ops); i += checkEvery {
				j := i + checkEvery
				if j > len(ops) {
					j = len(ops)
				}
				s.apply(ops[i:j])
				ctx := string(kind)
				history = append(history, s.oracleKeys(ctx)...)
				s.auditAll(ctx)
			}
			histories = append(histories, history)
		})
	}
	if len(histories) == 2 && !reflect.DeepEqual(histories[0], histories[1]) {
		t.Fatalf("backends diverge: row history %d keys, columnar %d keys", len(histories[0]), len(histories[1]))
	}
}

// TestStorageBackendCrosscheckMixedStream repeats the crosscheck on a
// second workload shape — range-heavy overlap rules whose alpha tests
// (lo < salary < hi) exercise the merged ordered-index probe — with a
// different churn mix.
func TestStorageBackendCrosscheckMixedStream(t *testing.T) {
	src := workload.OverlapRules(12, 0.5)
	ops := workload.OverlapOps(29, 300)
	// Shuffle deletes deeper into the stream for a distinct churn shape.
	rng := rand.New(rand.NewSource(31))
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	for _, kind := range relation.StorageKinds() {
		t.Run(string(kind), func(t *testing.T) {
			s := newStorageSession(t, src, kind)
			s.apply(ops)
			s.oracleKeys("final")
			s.auditAll("final")
		})
	}
}
