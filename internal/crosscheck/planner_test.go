package crosscheck

import (
	"math/rand"
	"reflect"
	"testing"

	"prodsys/internal/joiner"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/workload"
)

// newPlannedSession builds a storage session on the process-default
// backend (the CI matrix's PRODSYS_STORAGE) and attaches a cost-based
// planner to every matcher that supports one. Matchers that never call
// the joiner (rete variants) ignore the attach — they stay in the
// lockstep comparison as additional oracles.
func newPlannedSession(t *testing.T, src string) *storageSession {
	t.Helper()
	s := newStorageSession(t, src, relation.DefaultStorageKind())
	pl := joiner.NewPlanner(s.db, s.stats)
	for _, m := range s.matchers {
		match.AttachPlanner(m, pl)
	}
	return s
}

// chainOps builds an op stream inserting `chains` complete instances of
// the n-way chain join, link classes shuffled so deltas arrive at every
// join position, with deleteFrac of additional delete ops mixed in.
func chainOps(seed int64, chains, chainLen int, deleteFrac float64) []workload.Op {
	rng := rand.New(rand.NewSource(seed))
	var ops []workload.Op
	for c := 0; c < chains; c++ {
		for i := 0; i < chainLen; i++ {
			class, tup := workload.ChainLink(c, i)
			ops = append(ops, workload.Op{Class: class, Tuple: tup})
			if rng.Float64() < deleteFrac {
				delClass, _ := workload.ChainLink(c, rng.Intn(chainLen))
				ops = append(ops, workload.Op{Delete: true, Class: delClass})
			}
		}
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

// runPlannerCrosscheck drives one planned and one fixed-order session
// over the identical op stream in lockstep. At every checkpoint the two
// conflict sets must be byte-identical (the planner may reorder join
// evaluation, never change the derived set), every matcher inside each
// session must agree with its requery oracle, and the planned session
// must pass the full integrity audit.
func runPlannerCrosscheck(t *testing.T, src string, ops []workload.Op, checkEvery int) {
	planned := newPlannedSession(t, src)
	fixed := newStorageSession(t, src, relation.DefaultStorageKind())
	for i := 0; i < len(ops); i += checkEvery {
		j := i + checkEvery
		if j > len(ops) {
			j = len(ops)
		}
		planned.apply(ops[i:j])
		fixed.apply(ops[i:j])
		got := planned.oracleKeys("planned")
		want := fixed.oracleKeys("fixed")
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ops[0:%d]: planned conflict set diverges from fixed-order oracle:\nplanned: %v\nfixed:   %v", j, got, want)
		}
		planned.auditAll("planned")
	}
	if got := planned.stats.Get(metrics.PlanCacheHits); got == 0 {
		t.Error("planned session recorded no plan cache hits")
	}
}

// TestPlannerCrosscheckPayroll checks the planner property on the
// randomized payroll workload (two-way joins, churn): all seven matchers
// with cost-based planning attached produce exactly the conflict sets of
// the fixed-order evaluation, audited clean at every checkpoint.
func TestPlannerCrosscheckPayroll(t *testing.T) {
	src := workload.PayrollRules(20, false)
	ops := workload.PayrollOps(17, 400, 0.3)
	runPlannerCrosscheck(t, src, ops, 100)
}

// TestPlannerCrosscheckChain repeats the property on the Figure 1 chain
// workload, where join order matters most: a 5-way chain join with
// shuffled link arrival and deletes mixed in.
func TestPlannerCrosscheckChain(t *testing.T) {
	src := workload.ChainRules(5)
	ops := chainOps(23, 24, 5, 0.2)
	runPlannerCrosscheck(t, src, ops, 40)
}
