package crosscheck

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"prodsys/internal/audit"
	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/engine"
	"prodsys/internal/marker"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/ptree"
	"prodsys/internal/relation"
	"prodsys/internal/requery"
	"prodsys/internal/rete"
	"prodsys/internal/rules"
	"prodsys/internal/workload"
)

// This file validates the sharded parallel maintenance path: for every
// matcher, an engine over a 4-way sharded catalog with a 4-worker match
// scheduler and an unsharded serial engine consume the identical op
// stream and must hold byte-identical conflict sets and WM after every
// batch — and the sharded engine's derived state must pass the full
// integrity audit. Rete matchers ride along as the serial-fallback
// control group (they don't implement match.Shardable, so the engine
// must transparently keep them on the classic path). Run under -race
// this doubles as the scheduler's data-race check.

// shardHarness is one engine plus the pieces the integrity audit needs.
type shardHarness struct {
	eng   *engine.Engine
	set   *rules.Set
	db    *relation.DB
	m     match.Matcher
	stats *metrics.Set
}

func newShardHarness(t *testing.T, src, kind string, shards, workers int) *shardHarness {
	t.Helper()
	set, _, err := rules.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := db.SetDefaultShards(shards); err != nil {
		t.Fatal(err)
	}
	if err := rules.BuildDB(set, db); err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet(stats)
	var m match.Matcher
	switch kind {
	case "rete":
		m = rete.New(set, cs, stats)
	case "rete-shared":
		m = rete.NewShared(set, cs, stats)
	case "requery":
		m = requery.New(set, db, cs, stats)
	case "core":
		m = core.New(set, db, cs, stats)
	case "core-parallel":
		m = core.New(set, db, cs, stats, core.WithParallelPropagation())
	case "marker":
		m = marker.New(set, db, cs, stats)
	case "ptree":
		m = ptree.NewMatcher(set, db, cs, stats)
	default:
		t.Fatalf("unknown matcher kind %q", kind)
	}
	eng := engine.New(set, db, m, stats, engine.Config{ShardWorkers: workers})
	return &shardHarness{eng: eng, set: set, db: db, m: m, stats: stats}
}

// audit runs the PR 4 integrity audit over the harness's derived state.
func (h *shardHarness) audit(t *testing.T, context string) {
	t.Helper()
	rep, err := audit.New(h.set, h.db, h.m, h.stats).Run(audit.Options{})
	if err != nil {
		t.Fatalf("%s: audit: %v", context, err)
	}
	if !rep.Clean() {
		t.Fatalf("%s: audit: %d divergences: %v", context, len(rep.Divergences), rep.Divergences)
	}
}

// deltaBatches resolves a workload op stream into concrete DeltaOp
// batches: deletions target a live tuple chosen by the seeded rng,
// tracked against the deterministic ID allocation both engines share.
func deltaBatches(seed int64, ops []workload.Op, batchSize int) [][]engine.DeltaOp {
	rng := rand.New(rand.NewSource(seed))
	live := map[string][]relation.TupleID{}
	next := map[string]relation.TupleID{}
	var batches [][]engine.DeltaOp
	var cur []engine.DeltaOp
	for _, op := range ops {
		if op.Delete {
			ids := live[op.Class]
			if len(ids) == 0 {
				continue
			}
			k := rng.Intn(len(ids))
			id := ids[k]
			live[op.Class] = append(ids[:k], ids[k+1:]...)
			cur = append(cur, engine.DeltaOp{Retract: true, Class: op.Class, ID: id})
		} else {
			next[op.Class]++
			live[op.Class] = append(live[op.Class], next[op.Class])
			cur = append(cur, engine.DeltaOp{Class: op.Class, Tuple: op.Tuple.Clone()})
		}
		if len(cur) >= batchSize {
			batches = append(batches, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// runShardEquivalence drives a sharded(4)/4-worker engine and an
// unsharded engine over identical batches, comparing conflict-set keys
// and WM at every batch boundary and auditing the sharded engine's
// derived state at checkpoints and at the end.
func runShardEquivalence(t *testing.T, src, kind string, batches [][]engine.DeltaOp) {
	t.Helper()
	sharded := newShardHarness(t, src, kind, 4, 4)
	serial := newShardHarness(t, src, kind, 1, 0)
	for b, ops := range batches {
		gotIDs, err := sharded.eng.ApplyDelta(ops)
		if err != nil {
			t.Fatalf("%s batch=%d: sharded ApplyDelta: %v", kind, b, err)
		}
		wantIDs, err := serial.eng.ApplyDelta(ops)
		if err != nil {
			t.Fatalf("%s batch=%d: serial ApplyDelta: %v", kind, b, err)
		}
		if !reflect.DeepEqual(gotIDs, wantIDs) {
			t.Fatalf("%s batch=%d: ids = %v, want %v", kind, b, gotIDs, wantIDs)
		}
		ctx := fmt.Sprintf("%s batch=%d (%d ops)", kind, b, len(ops))
		if got, want := sharded.eng.ConflictSet().Keys(), serial.eng.ConflictSet().Keys(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: sharded conflict set = %v, serial = %v", ctx, got, want)
		}
		if got, want := sharded.eng.SnapshotWM(), serial.eng.SnapshotWM(); got != want {
			t.Fatalf("%s: sharded WM:\n%s\nserial WM:\n%s", ctx, got, want)
		}
		if b%5 == 4 {
			sharded.audit(t, ctx)
		}
	}
	sharded.audit(t, kind+" final")
	serial.audit(t, kind+" serial final")
}

// TestShardedBatchEquivalence checks the seven-matcher sharded vs
// unsharded conflict-set equivalence property on the randomized payroll
// workload (two-way joins with churn) and the Figure 1 chain workload
// (5-way chain join, shuffled link arrival).
func TestShardedBatchEquivalence(t *testing.T) {
	payrollSrc := workload.PayrollRules(12, false)
	payroll := deltaBatches(5, workload.PayrollOps(5, 300, 0.3), 12)
	chainSrc := workload.ChainRules(5)
	chain := deltaBatches(7, chainOps(7, 18, 5, 0.2), 12)
	for _, kind := range batchMatcherKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Run("payroll", func(t *testing.T) { runShardEquivalence(t, payrollSrc, kind, payroll) })
			t.Run("chain", func(t *testing.T) { runShardEquivalence(t, chainSrc, kind, chain) })
		})
	}
}

// TestShardedSchedulerEngages asserts the parallel path actually ran
// for a shardable matcher — a sharded core engine must record shard
// maintenance tasks and at least one cross-shard delta — and that a
// non-shardable matcher (rete) records none.
func TestShardedSchedulerEngages(t *testing.T) {
	src := workload.PayrollRules(8, false)
	batches := deltaBatches(11, workload.PayrollOps(11, 120, 0.2), 10)
	h := newShardHarness(t, src, "core", 4, 4)
	r := newShardHarness(t, src, "rete", 4, 4)
	for _, ops := range batches {
		if _, err := h.eng.ApplyDelta(ops); err != nil {
			t.Fatal(err)
		}
		if _, err := r.eng.ApplyDelta(ops); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.stats.Get(metrics.ShardMaintains); got == 0 {
		t.Error("sharded core engine recorded no shard maintenance tasks")
	}
	if got := h.stats.Get(metrics.CrossShardTxns); got == 0 {
		t.Error("sharded core engine recorded no cross-shard deltas")
	}
	if got := h.stats.Get(metrics.ShardCount); got != 4 {
		t.Errorf("shards gauge = %d, want 4", got)
	}
	if got := r.stats.Get(metrics.ShardMaintains); got != 0 {
		t.Errorf("rete (non-shardable) recorded %d shard tasks, want 0 (serial fallback)", got)
	}
}
