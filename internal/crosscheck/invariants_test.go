package crosscheck

import (
	"math/rand"
	"testing"

	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/marker"
	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rete"
	"prodsys/internal/rules"
	"prodsys/internal/value"
)

// TestStorageDrainsToZero: after inserting a random stream and then
// deleting every live tuple, each matcher's auxiliary storage must be
// empty — tokens, matching patterns, and rule markers all drain.
func TestStorageDrainsToZero(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		set, _, err := rules.CompileSource(threeWaySrc)
		if err != nil {
			t.Fatal(err)
		}
		db := relation.NewDB(nil)
		if err := rules.BuildDB(set, db); err != nil {
			t.Fatal(err)
		}
		reteM := rete.New(set, conflict.NewSet(nil), &metrics.Set{})
		coreM := core.New(set, db, conflict.NewSet(nil), &metrics.Set{})
		markerM := marker.New(set, db, conflict.NewSet(nil), &metrics.Set{})
		matchers := []interface {
			Insert(string, relation.TupleID, relation.Tuple) error
			Delete(string, relation.TupleID, relation.Tuple) error
		}{reteM, coreM, markerM}

		classes := []string{"A", "B", "C"}
		gen := map[string]func() relation.Tuple{
			"A": func() relation.Tuple {
				return relation.Tuple{value.OfInt(int64(r.Intn(3))), value.OfSym("a"), value.OfInt(int64(r.Intn(3)))}
			},
			"B": func() relation.Tuple {
				return relation.Tuple{value.OfInt(int64(r.Intn(3))), value.OfInt(int64(r.Intn(3))), value.OfSym("b")}
			},
			"C": func() relation.Tuple {
				return relation.Tuple{value.OfSym("c"), value.OfInt(int64(r.Intn(3))), value.OfInt(int64(r.Intn(3)))}
			},
		}
		type live struct {
			class string
			id    relation.TupleID
		}
		var all []live
		for i := 0; i < 60; i++ {
			cls := classes[r.Intn(3)]
			tup := gen[cls]()
			id, err := db.MustGet(cls).Insert(tup)
			if err != nil {
				t.Fatal(err)
			}
			stored, _ := db.MustGet(cls).Get(id)
			for _, m := range matchers {
				if err := m.Insert(cls, id, stored); err != nil {
					t.Fatal(err)
				}
			}
			all = append(all, live{cls, id})
		}
		// Delete everything in a shuffled order.
		r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		for _, lv := range all {
			tup, err := db.MustGet(lv.class).Delete(lv.id)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range matchers {
				if err := m.Delete(lv.class, lv.id, tup); err != nil {
					t.Fatal(err)
				}
			}
		}
		if got := reteM.TokenCount(); got != 0 {
			t.Fatalf("seed %d: rete tokens remaining = %d", seed, got)
		}
		if got := coreM.PatternCount(); got != 0 {
			t.Fatalf("seed %d: core patterns remaining = %d", seed, got)
		}
		if got := markerM.MarkCount(); got != 0 {
			t.Fatalf("seed %d: rule markers remaining = %d", seed, got)
		}
		if got := reteM.ConflictSet().Len() + coreM.ConflictSet().Len() + markerM.ConflictSet().Len(); got != 0 {
			t.Fatalf("seed %d: conflict sets not empty: %d", seed, got)
		}
	}
}

// TestConflictSetMatchesFromScratch: after churn, each matcher's conflict
// set must equal a from-scratch recomputation over the surviving WM.
func TestConflictSetMatchesFromScratch(t *testing.T) {
	for _, spec := range specs {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(77))
			s := newSession(t, spec.src, false)
			classes := make([]string, 0, len(spec.classes))
			for c := range spec.classes {
				classes = append(classes, c)
			}
			for i := 1; i < len(classes); i++ {
				for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
					classes[j], classes[j-1] = classes[j-1], classes[j]
				}
			}
			for step := 0; step < 150; step++ {
				class := classes[r.Intn(len(classes))]
				if len(s.live[class]) > 0 && r.Intn(100) < 40 {
					ids := s.live[class]
					s.delete(class, ids[r.Intn(len(ids))])
				} else {
					s.insert(class, spec.classes[class](r)...)
				}
			}
			// From-scratch oracle over the surviving WM.
			fresh := newSession(t, spec.src, false)
			for _, cls := range classes {
				s.db.MustGet(cls).Scan(func(_ relation.TupleID, tup relation.Tuple) bool {
					// Re-insert preserving values (ids differ; compare sizes
					// and per-rule instantiation counts instead of keys).
					fresh.insert(cls, tup...)
					return true
				})
			}
			for i, m := range s.matchers {
				got := m.ConflictSet().Len()
				want := fresh.matchers[i].ConflictSet().Len()
				if got != want {
					t.Fatalf("%s: churned conflict set %d entries, from-scratch %d",
						m.Name(), got, want)
				}
			}
		})
	}
}
