package match

import "prodsys/internal/relation"

// BatchMatcher is implemented by matchers with a genuinely set-oriented
// maintenance path: the whole batch of same-class changes is processed in
// one pass (one COND-relation scan per condition element, one join
// re-evaluation per affected rule, one sweep over each beta memory)
// instead of running the full maintenance process once per tuple.
// Matchers without a native batch path are driven through the per-tuple
// fallback adapters InsertBatch and DeleteBatch below.
type BatchMatcher interface {
	Matcher
	// InsertBatch notifies the matcher that every entry's tuple was stored
	// in the class's WM relation. The WM already reflects the whole batch.
	InsertBatch(class string, entries []relation.DeltaEntry) error
	// DeleteBatch notifies the matcher that every entry's tuple was
	// removed; entry tuples hold the values at removal time.
	DeleteBatch(class string, entries []relation.DeltaEntry) error
}

// InsertBatch feeds a batch of insertions to m, using its native batch
// path when it has one and falling back to tuple-at-a-time Insert calls
// otherwise.
func InsertBatch(m Matcher, class string, entries []relation.DeltaEntry) error {
	if len(entries) == 0 {
		return nil
	}
	if bm, ok := m.(BatchMatcher); ok {
		return bm.InsertBatch(class, entries)
	}
	for _, e := range entries {
		if err := m.Insert(class, e.ID, e.Tuple); err != nil {
			return err
		}
	}
	return nil
}

// DeleteBatch feeds a batch of deletions to m, using its native batch
// path when it has one and falling back to tuple-at-a-time Delete calls
// otherwise.
func DeleteBatch(m Matcher, class string, entries []relation.DeltaEntry) error {
	if len(entries) == 0 {
		return nil
	}
	if bm, ok := m.(BatchMatcher); ok {
		return bm.DeleteBatch(class, entries)
	}
	for _, e := range entries {
		if err := m.Delete(class, e.ID, e.Tuple); err != nil {
			return err
		}
	}
	return nil
}

// ApplyDelta drains a whole batch through the matcher: deletions first,
// then insertions, class by class in deterministic order. The caller must
// have applied every change to the WM relations already, so the matchers
// that re-derive from working memory see the batch's final state.
func ApplyDelta(m Matcher, d *relation.Delta) error {
	classes := d.Classes()
	for _, class := range classes {
		if err := DeleteBatch(m, class, d.Deletes(class)); err != nil {
			return err
		}
	}
	for _, class := range classes {
		if err := InsertBatch(m, class, d.Inserts(class)); err != nil {
			return err
		}
	}
	return nil
}
