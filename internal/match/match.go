// Package match defines the interface every matching algorithm in this
// repository implements: the classic Rete network (internal/rete), its
// straightforward DBMS translation (internal/dbrete), the paper's
// simplified re-evaluation algorithm (internal/requery), and the
// matching-pattern algorithm that is the paper's contribution
// (internal/core).
//
// A matcher observes working-memory changes and maintains a conflict set.
// The engine owns the WM relations; it notifies the matcher after each
// insertion and before each deletion, mirroring Figure 2 of the paper:
// changes to working memory propagate into the match network, which emits
// changes to the conflict set.
//
// Matchers that additionally implement BatchMatcher process whole deltas
// set-at-a-time — the paper's central claim that a DBMS wins by handling
// WM changes as sets rather than tuple-at-a-time (§4.2, §5.1). The
// package-level InsertBatch/DeleteBatch adapters fall back to per-tuple
// notification for matchers without a native batch path.
package match

import (
	"prodsys/internal/conflict"
	"prodsys/internal/joiner"
	"prodsys/internal/relation"
	"prodsys/internal/trace"
)

// Matcher detects the rules applicable after each working-memory change.
type Matcher interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Insert notifies the matcher that tuple t was stored in the class's
	// WM relation under the given ID.
	Insert(class string, id relation.TupleID, t relation.Tuple) error
	// Delete notifies the matcher that the identified tuple is being
	// removed. t is the tuple's value at removal time.
	Delete(class string, id relation.TupleID, t relation.Tuple) error
	// ConflictSet exposes the maintained conflict set.
	ConflictSet() *conflict.Set
}

// Traceable is implemented by matchers that can emit structured
// execution events (condition scans, joins, propagations) through a
// trace.Tracer.
type Traceable interface {
	SetTracer(*trace.Tracer)
}

// AttachTracer hands the tracer to the matcher if it supports tracing.
func AttachTracer(m Matcher, tr *trace.Tracer) {
	if t, ok := m.(Traceable); ok {
		t.SetTracer(tr)
	}
}

// Planned is implemented by matchers whose LHS evaluation goes through
// internal/joiner and can therefore be routed through a cost-based
// join planner. A nil planner restores the fixed source-order
// evaluation.
type Planned interface {
	SetPlanner(*joiner.Planner)
}

// AttachPlanner hands the planner to the matcher if its join paths
// support planning; matchers with their own incremental networks
// (Rete) ignore it.
func AttachPlanner(m Matcher, p *joiner.Planner) {
	if x, ok := m.(Planned); ok {
		x.SetPlanner(p)
	}
}
