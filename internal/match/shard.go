package match

import "prodsys/internal/relation"

// Shardable is the capability interface a matcher implements to declare
// that its batch maintenance may be partitioned by working-memory shard
// and run concurrently — declared, never guessed: the engine's parallel
// match scheduler type-asserts for this interface and falls back to the
// serial ApplyDelta path for matchers without it (rete and rete-shared,
// whose ordered token propagation through shared beta prefixes is
// inherently cross-shard).
//
// The contract is a two-phase protocol over per-shard sub-deltas of one
// engine batch. The engine guarantees:
//
//   - every WM relation already reflects the whole batch (the standard
//     ApplyDelta precondition), so derivations evaluate against final
//     working-memory state;
//   - each sub-delta contains exactly the batch entries whose tuples
//     map to one shard (relation.DB.ShardOf), so per-shard derived
//     state (matching patterns, support counters, marks) is touched by
//     exactly one worker during maintenance;
//   - ShardMaintain is invoked for every sub-delta — possibly
//     concurrently — and ALL ShardMaintain calls complete before the
//     first ShardDetect call (a barrier). Detection therefore observes
//     the complete post-batch derived state, a superset of the marks
//     any serial ordering would see; the verification join filters the
//     extra candidates exactly as it filters false drops. Without the
//     barrier, two shards could each scan before the other propagated
//     and both miss a cross-shard join.
//
// Conflict-set membership stays byte-identical to the serial path
// because every derivation and negation check runs against final WM
// state, making the merge order-independent; the engine canonicalizes
// arrival sequence numbers after the parallel phases so selection order
// is deterministic run-to-run as well.
type Shardable interface {
	Matcher
	// ShardMaintain performs phase 1 for one shard's sub-delta:
	// derived-state maintenance only — withdraw the support fed by the
	// sub-delta's deleted tuples, propagate the inserted tuples'
	// bindings — without touching the conflict set. Implementations
	// with no incremental derived state may make this a no-op.
	ShardMaintain(d *relation.Delta) error
	// ShardDetect performs phase 2 for one shard's sub-delta: conflict
	// set updates — retract instantiations built on deleted tuples,
	// sweep instantiations newly blocked by a negated condition
	// element, detect and verify candidates for inserted tuples, and
	// re-derive negatively dependent rules.
	ShardDetect(d *relation.Delta) error
}

// ApplyDeltaPhased drains one sub-delta through a Shardable matcher's
// two phases back to back — the serial (single-worker) degenerate case,
// used by tests to check phase-split equivalence without a scheduler.
func ApplyDeltaPhased(m Shardable, d *relation.Delta) error {
	if err := m.ShardMaintain(d); err != nil {
		return err
	}
	return m.ShardDetect(d)
}
