// Package conflict implements the conflict set of a production system:
// the rule instantiations whose LHS is currently satisfied, together with
// the selection (conflict-resolution) strategies of the Select phase.
//
// An instantiation pairs a rule with the specific working-memory tuples
// satisfying its positive condition elements, exactly as the Rete network
// outputs "the applicable productions ... together with the token that
// caused the rule to become active" (paper §2.2). Refraction — never
// firing the same instantiation twice — is enforced here, as in OPS5.
package conflict

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
)

// Instantiation is one satisfied rule together with the tuples that
// satisfy its positive condition elements.
type Instantiation struct {
	Rule *rules.Rule
	// TupleIDs is aligned with Rule.CEs; negated condition elements hold
	// zero.
	TupleIDs []relation.TupleID
	// Tuples snapshots the matched tuples (same alignment) for RHS
	// execution; negated positions are nil.
	Tuples []relation.Tuple
	// Bindings is the variable assignment of the match.
	Bindings rules.Bindings
	// Seq is the arrival order assigned by the conflict set.
	Seq uint64
}

// Key identifies the instantiation: rule name plus the matched tuple IDs.
func (in *Instantiation) Key() string {
	var b strings.Builder
	b.WriteString(in.Rule.Name)
	for _, id := range in.TupleIDs {
		b.WriteByte('|')
		b.WriteString(strconv.FormatUint(uint64(id), 10))
	}
	return b.String()
}

// Recency is the largest tuple ID among the matched tuples — the OPS5
// notion of how recent the supporting working memory is.
func (in *Instantiation) Recency() uint64 {
	var max uint64
	for _, id := range in.TupleIDs {
		if uint64(id) > max {
			max = uint64(id)
		}
	}
	return max
}

// String renders the instantiation for traces.
func (in *Instantiation) String() string {
	ids := make([]string, 0, len(in.TupleIDs))
	for i, id := range in.TupleIDs {
		if in.Rule.CEs[i].Negated {
			ids = append(ids, "¬")
			continue
		}
		ids = append(ids, fmt.Sprintf("%s:%d", in.Rule.CEs[i].Class, id))
	}
	return in.Rule.Name + "[" + strings.Join(ids, " ") + "]"
}

// tupleRef locates one tuple occurrence inside an instantiation.
type tupleRef struct {
	class string
	id    relation.TupleID
}

// Set is the conflict set. All methods are safe for concurrent use.
type Set struct {
	mu       sync.Mutex
	items    map[string]*Instantiation
	byTuple  map[tupleRef]map[string]struct{}
	fired    map[string]bool
	seq      uint64
	stats    *metrics.Set
	observer func(added bool, in *Instantiation)
	tr       *trace.Tracer
}

// SetTracer wires the execution tracer; Activation and Deactivation
// events are emitted for every instantiation entering or leaving the
// set. A nil tracer disables emission.
func (s *Set) SetTracer(tr *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr = tr
}

// SetObserver registers a callback invoked after every instantiation
// addition (added=true) and retraction (added=false) — the add and delete
// triggers of materialized-view maintenance [BUNE79] (§2.3). The callback
// runs while the set's lock is held and must not call back into the Set.
func (s *Set) SetObserver(fn func(added bool, in *Instantiation)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// NewSet creates an empty conflict set. stats may be nil.
func NewSet(stats *metrics.Set) *Set {
	return &Set{
		items:   make(map[string]*Instantiation),
		byTuple: make(map[tupleRef]map[string]struct{}),
		fired:   make(map[string]bool),
		stats:   stats,
	}
}

// Add inserts an instantiation, returning false if it is already present.
func (s *Set) Add(in *Instantiation) bool {
	return s.AddAll([]*Instantiation{in}) == 1
}

// AddAll inserts a batch of instantiations under one lock acquisition —
// the conflict set's side of set-oriented maintenance — and returns how
// many were new.
func (s *Set) AddAll(ins []*Instantiation) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	for _, in := range ins {
		key := in.Key()
		if _, dup := s.items[key]; dup {
			continue
		}
		s.seq++
		in.Seq = s.seq
		s.items[key] = in
		for i, id := range in.TupleIDs {
			if in.Rule.CEs[i].Negated || id == 0 {
				continue
			}
			ref := tupleRef{class: in.Rule.CEs[i].Class, id: id}
			set := s.byTuple[ref]
			if set == nil {
				set = make(map[string]struct{})
				s.byTuple[ref] = set
			}
			set[key] = struct{}{}
		}
		s.stats.Inc(metrics.Instantiations)
		if s.tr.Enabled() {
			s.tr.Emit(trace.Event{
				Kind: trace.KindActivation, At: s.tr.Now(),
				Rule: in.Rule.Name, CE: -1, ID: in.Seq, Extra: key,
			})
		}
		if s.observer != nil {
			s.observer(true, in)
		}
		added++
	}
	return added
}

// removeLocked unlinks one instantiation. Caller holds mu.
func (s *Set) removeLocked(key string) bool {
	in, ok := s.items[key]
	if !ok {
		return false
	}
	delete(s.items, key)
	for i, id := range in.TupleIDs {
		if in.Rule.CEs[i].Negated || id == 0 {
			continue
		}
		ref := tupleRef{class: in.Rule.CEs[i].Class, id: id}
		if set := s.byTuple[ref]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(s.byTuple, ref)
			}
		}
	}
	s.stats.Inc(metrics.Retractions)
	if s.tr.Enabled() {
		s.tr.Emit(trace.Event{
			Kind: trace.KindDeactivation, At: s.tr.Now(),
			Rule: in.Rule.Name, CE: -1, ID: in.Seq, Extra: key,
		})
	}
	if s.observer != nil {
		s.observer(false, in)
	}
	return true
}

// Remove deletes the instantiation with the given key, reporting whether
// it was present.
func (s *Set) Remove(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeLocked(key)
}

// RemoveByTuple retracts every instantiation supported by the given
// working-memory tuple (invoked when the tuple is deleted) and returns
// the retracted instantiations.
func (s *Set) RemoveByTuple(class string, id relation.TupleID) []*Instantiation {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref := tupleRef{class: class, id: id}
	keys := s.byTuple[ref]
	out := make([]*Instantiation, 0, len(keys))
	for key := range keys {
		if in, ok := s.items[key]; ok {
			out = append(out, in)
		}
	}
	for _, in := range out {
		s.removeLocked(in.Key())
	}
	return out
}

// RemoveWhere retracts every instantiation for which pred returns true
// and returns the retracted instantiations.
func (s *Set) RemoveWhere(pred func(*Instantiation) bool) []*Instantiation {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Instantiation
	for _, in := range s.items {
		if pred(in) {
			out = append(out, in)
		}
	}
	for _, in := range out {
		s.removeLocked(in.Key())
	}
	return out
}

// Contains reports whether the keyed instantiation is present.
func (s *Set) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[key]
	return ok
}

// Len returns the number of live instantiations.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Items returns the live instantiations in deterministic (Seq) order.
func (s *Set) Items() []*Instantiation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Instantiation, 0, len(s.items))
	for _, in := range s.items {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Sequence returns the current arrival-sequence high-water mark. The
// parallel match scheduler records it before fanning a batch out to
// concurrent shard workers, then calls Canonicalize with it afterwards.
func (s *Set) Sequence() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Canonicalize re-assigns the arrival sequence numbers of every
// instantiation added after mark, in sorted-key order. Concurrent shard
// workers race to insert, so raw Seq values depend on scheduling; the
// set MEMBERSHIP is order-independent (every derivation evaluates
// against final WM state), and re-sequencing the batch's additions by
// key makes recency-based selection deterministic too — a sharded run
// selects exactly what an unsharded run would.
func (s *Set) Canonicalize(mark uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k, in := range s.items {
		if in.Seq > mark {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		s.seq = mark
		return
	}
	sort.Strings(keys)
	seq := mark
	for _, k := range keys {
		seq++
		s.items[k].Seq = seq
	}
	s.seq = seq
}

// Keys returns the sorted keys of the live instantiations; the primary
// tool of the cross-matcher agreement tests.
func (s *Set) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.items))
	for k := range s.items {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MarkFired records that an instantiation has fired, so refraction will
// keep it from being selected again even if re-derived.
func (s *Set) MarkFired(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fired[key] = true
	s.removeLocked(key)
}

// HasFired reports whether the keyed instantiation already fired.
func (s *Set) HasFired(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[key]
}

// Select picks the next instantiation to fire under the given strategy,
// skipping fired ones. It returns nil when no eligible instantiation
// exists (the production system halts, §2.1).
func (s *Set) Select(strategy Strategy) *Instantiation {
	s.mu.Lock()
	cands := make([]*Instantiation, 0, len(s.items))
	for key, in := range s.items {
		if !s.fired[key] {
			cands = append(cands, in)
		}
	}
	s.mu.Unlock()
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Seq < cands[j].Seq })
	return strategy.Select(cands)
}

// SelectAll returns every eligible (unfired) instantiation in Seq order;
// the concurrent executor's batch selection.
func (s *Set) SelectAll() []*Instantiation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Instantiation, 0, len(s.items))
	for key, in := range s.items {
		if !s.fired[key] {
			out = append(out, in)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset clears instantiations and refraction state.
func (s *Set) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = make(map[string]*Instantiation)
	s.byTuple = make(map[tupleRef]map[string]struct{})
	s.fired = make(map[string]bool)
	s.seq = 0
}

// Strategy is a conflict-resolution policy: given a non-empty candidate
// list in Seq order, pick the instantiation to fire.
type Strategy interface {
	Name() string
	Select(cands []*Instantiation) *Instantiation
}

// FIFO fires instantiations in arrival order.
type FIFO struct{}

// Name implements Strategy.
func (FIFO) Name() string { return "fifo" }

// Select implements Strategy.
func (FIFO) Select(cands []*Instantiation) *Instantiation { return cands[0] }

// LEX approximates OPS5's LEX strategy: most recent supporting tuple
// first, then higher specificity, then arrival order.
type LEX struct{}

// Name implements Strategy.
func (LEX) Name() string { return "lex" }

// Select implements Strategy.
func (LEX) Select(cands []*Instantiation) *Instantiation {
	best := cands[0]
	for _, c := range cands[1:] {
		switch {
		case c.Recency() > best.Recency():
			best = c
		case c.Recency() == best.Recency() && c.Rule.Specificity > best.Rule.Specificity:
			best = c
		}
	}
	return best
}

// Priority fires rules in rule-set order (earlier definitions first),
// breaking ties by recency.
type Priority struct{}

// Name implements Strategy.
func (Priority) Name() string { return "priority" }

// Select implements Strategy.
func (Priority) Select(cands []*Instantiation) *Instantiation {
	best := cands[0]
	for _, c := range cands[1:] {
		switch {
		case c.Rule.Index < best.Rule.Index:
			best = c
		case c.Rule.Index == best.Rule.Index && c.Recency() > best.Recency():
			best = c
		}
	}
	return best
}

// Random selects uniformly with a seeded source, modelling the paper's
// "a single transaction is arbitrarily selected from the conflict set".
type Random struct {
	Rand *rand.Rand
}

// NewRandom builds a Random strategy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{Rand: rand.New(rand.NewSource(seed))}
}

// Name implements Strategy.
func (*Random) Name() string { return "random" }

// Select implements Strategy.
func (r *Random) Select(cands []*Instantiation) *Instantiation {
	return cands[r.Rand.Intn(len(cands))]
}
