package conflict

import (
	"testing"

	"prodsys/internal/metrics"
	"prodsys/internal/relation"
	"prodsys/internal/rules"
)

const twoRuleSrc = `
(literalize A x)
(literalize B y)
(p First  (A ^x <v>) (B ^y <v>) --> (halt))
(p Second (A ^x <v>) --> (halt))
`

func fixture(t *testing.T) (*rules.Set, *rules.Rule, *rules.Rule) {
	t.Helper()
	set, _, err := rules.CompileSource(twoRuleSrc)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := set.RuleByName("First")
	r2, _ := set.RuleByName("Second")
	return set, r1, r2
}

func inst(r *rules.Rule, ids ...relation.TupleID) *Instantiation {
	return &Instantiation{Rule: r, TupleIDs: ids, Tuples: make([]relation.Tuple, len(ids))}
}

func TestAddRemoveContains(t *testing.T) {
	_, r1, _ := fixture(t)
	var stats metrics.Set
	s := NewSet(&stats)
	in := inst(r1, 1, 2)
	if !s.Add(in) {
		t.Fatal("first Add should succeed")
	}
	if s.Add(inst(r1, 1, 2)) {
		t.Fatal("duplicate Add should fail")
	}
	if s.Len() != 1 || !s.Contains(in.Key()) {
		t.Fatalf("Len=%d Contains=%v", s.Len(), s.Contains(in.Key()))
	}
	if !s.Remove(in.Key()) {
		t.Fatal("Remove should succeed")
	}
	if s.Remove(in.Key()) {
		t.Fatal("second Remove should fail")
	}
	if stats.Get(metrics.Instantiations) != 1 || stats.Get(metrics.Retractions) != 1 {
		t.Fatalf("stats: %v", stats.Snapshot())
	}
}

func TestKeyAndRecency(t *testing.T) {
	_, r1, _ := fixture(t)
	in := inst(r1, 3, 7)
	if in.Key() != "First|3|7" {
		t.Errorf("Key = %q", in.Key())
	}
	if in.Recency() != 7 {
		t.Errorf("Recency = %d", in.Recency())
	}
	if in.String() == "" {
		t.Error("String should render")
	}
}

func TestRemoveByTuple(t *testing.T) {
	_, r1, r2 := fixture(t)
	s := NewSet(nil)
	s.Add(inst(r1, 1, 2))
	s.Add(inst(r1, 1, 3))
	s.Add(inst(r2, 9))
	removed := s.RemoveByTuple("A", 1)
	if len(removed) != 2 {
		t.Fatalf("removed %d, want 2", len(removed))
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	// B tuple 2 no longer supports anything.
	if got := s.RemoveByTuple("B", 2); len(got) != 0 {
		t.Fatalf("stale reverse index: %v", got)
	}
	// Class distinguishes tuples with the same ID.
	if got := s.RemoveByTuple("A", 9); len(got) != 1 {
		t.Fatalf("A:9 should remove Second: %v", got)
	}
}

func TestRemoveWhere(t *testing.T) {
	_, r1, r2 := fixture(t)
	s := NewSet(nil)
	s.Add(inst(r1, 1, 2))
	s.Add(inst(r2, 3))
	removed := s.RemoveWhere(func(in *Instantiation) bool { return in.Rule.Name == "Second" })
	if len(removed) != 1 || removed[0].Rule.Name != "Second" {
		t.Fatalf("RemoveWhere: %v", removed)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestItemsAndKeysOrdered(t *testing.T) {
	_, r1, r2 := fixture(t)
	s := NewSet(nil)
	s.Add(inst(r2, 5))
	s.Add(inst(r1, 1, 2))
	items := s.Items()
	if len(items) != 2 || items[0].Rule.Name != "Second" || items[0].Seq != 1 {
		t.Fatalf("Items order: %v", items)
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "First|1|2" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestRefraction(t *testing.T) {
	_, r1, _ := fixture(t)
	s := NewSet(nil)
	in := inst(r1, 1, 2)
	s.Add(in)
	got := s.Select(FIFO{})
	if got == nil || got.Key() != in.Key() {
		t.Fatalf("Select = %v", got)
	}
	s.MarkFired(in.Key())
	if !s.HasFired(in.Key()) {
		t.Error("HasFired should be true")
	}
	if s.Len() != 0 {
		t.Error("MarkFired should remove the instantiation")
	}
	// Re-deriving the same instantiation does not make it selectable.
	s.Add(inst(r1, 1, 2))
	if got := s.Select(FIFO{}); got != nil {
		t.Fatalf("refraction violated: selected %v", got)
	}
	// But a fresh tuple combination is selectable.
	s.Add(inst(r1, 1, 9))
	if got := s.Select(FIFO{}); got == nil || got.Key() != "First|1|9" {
		t.Fatalf("fresh instantiation should be selectable: %v", got)
	}
}

func TestSelectEmpty(t *testing.T) {
	s := NewSet(nil)
	if s.Select(FIFO{}) != nil {
		t.Error("empty set should select nil")
	}
}

func TestSelectAll(t *testing.T) {
	_, r1, r2 := fixture(t)
	s := NewSet(nil)
	a := inst(r1, 1, 2)
	b := inst(r2, 3)
	s.Add(a)
	s.Add(b)
	s.MarkFired(a.Key())
	got := s.SelectAll()
	if len(got) != 1 || got[0].Rule.Name != "Second" {
		t.Fatalf("SelectAll = %v", got)
	}
}

func TestStrategies(t *testing.T) {
	_, r1, r2 := fixture(t)
	s := NewSet(nil)
	older := inst(r2, 10) // recency 10, rule index 1, specificity 1
	newer := inst(r1, 3, 12)
	s.Add(older)
	s.Add(newer)

	if got := s.Select(FIFO{}); got.Key() != older.Key() {
		t.Errorf("FIFO selected %v", got)
	}
	if got := s.Select(LEX{}); got.Key() != newer.Key() {
		t.Errorf("LEX selected %v (recency should win)", got)
	}
	if got := s.Select(Priority{}); got.Key() != newer.Key() {
		t.Errorf("Priority selected %v (First has lower index)", got)
	}
	r := NewRandom(42)
	if got := s.Select(r); got == nil {
		t.Error("Random selected nil")
	}
	for _, st := range []Strategy{FIFO{}, LEX{}, Priority{}, NewRandom(1)} {
		if st.Name() == "" {
			t.Error("strategy needs a name")
		}
	}
}

func TestLEXSpecificityTieBreak(t *testing.T) {
	_, r1, r2 := fixture(t)
	s := NewSet(nil)
	a := inst(r2, 5) // specificity 1
	b := inst(r1, 5, 5)
	s.Add(a)
	s.Add(b)
	got := s.Select(LEX{})
	if got.Rule.Name != "First" {
		t.Errorf("LEX tie-break should prefer more specific First, got %v", got)
	}
}

func TestPriorityRecencyTieBreak(t *testing.T) {
	_, r1, _ := fixture(t)
	s := NewSet(nil)
	a := inst(r1, 1, 2)
	b := inst(r1, 1, 9)
	s.Add(a)
	s.Add(b)
	if got := s.Select(Priority{}); got.Key() != b.Key() {
		t.Errorf("Priority tie-break should prefer recency: %v", got)
	}
}

func TestReset(t *testing.T) {
	_, r1, _ := fixture(t)
	s := NewSet(nil)
	in := inst(r1, 1, 2)
	s.Add(in)
	s.MarkFired(in.Key())
	s.Reset()
	if s.Len() != 0 || s.HasFired(in.Key()) {
		t.Error("Reset should clear items and refraction")
	}
	s.Add(inst(r1, 1, 2))
	if got := s.Select(FIFO{}); got == nil {
		t.Error("after Reset the instantiation should be selectable again")
	}
}

func TestNegatedCEZeroIDNotIndexed(t *testing.T) {
	set, _, err := rules.CompileSource(`
(literalize A x)
(literalize B y)
(p Neg (A ^x <v>) - (B ^y <v>) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := set.RuleByName("Neg")
	s := NewSet(nil)
	s.Add(&Instantiation{Rule: r, TupleIDs: []relation.TupleID{4, 0}, Tuples: make([]relation.Tuple, 2)})
	// Deleting B:0 (meaningless id) must not retract.
	if got := s.RemoveByTuple("B", 0); len(got) != 0 {
		t.Fatalf("negated CE should not be tuple-indexed: %v", got)
	}
	if got := s.RemoveByTuple("A", 4); len(got) != 1 {
		t.Fatalf("positive CE should be indexed: %v", got)
	}
}
