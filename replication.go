package prodsys

// This file is the replication surface of the system: the apply entry
// points a replica's feed client (internal/replica) drives, the feed
// cursor a primary exposes, and Promote — the audited replica→primary
// transition. The shipping mechanism itself lives in internal/replica;
// see docs/REPLICATION.md for the topology and epoch-fencing rules.

import (
	"errors"
	"fmt"

	"prodsys/internal/audit"
	"prodsys/internal/engine"
	"prodsys/internal/wal"
)

// ErrReplica marks a write rejected because the system is a replica;
// writes must go to the primary (System.ReplicaOf). Test with
// errors.Is.
var ErrReplica = engine.ErrReplica

// ErrNotReplica marks a Promote call on a system that is already a
// primary.
var ErrNotReplica = errors.New("prodsys: not a replica")

// ErrPromotionGate marks a Promote refused because the pre-promotion
// integrity audit found divergences; the system stays a replica.
var ErrPromotionGate = errors.New("prodsys: promotion gate failed")

// IsReplica reports whether the system is currently following a
// primary (writes rejected with ErrReplica).
func (s *System) IsReplica() bool { return s.eng.IsReplica() }

// ReplicaOf returns the primary's base URL while in replica mode, ""
// on a primary.
func (s *System) ReplicaOf() string {
	if !s.eng.IsReplica() {
		return ""
	}
	return s.replicaOf
}

// WALPosition reports the live WAL epoch and byte size — the
// replication feed cursor. ok is false without a WAL.
func (s *System) WALPosition() (epoch uint64, size int64, ok bool) {
	return s.eng.WALPosition()
}

// WALLog exposes the live write-ahead log handle — the hook the
// replication feed (internal/replica.Feed) reads the log file and the
// epoch-boundary coordinates through. Nil without a WAL.
func (s *System) WALLog() *wal.Log { return s.eng.WAL() }

// ReplicaApply applies committed units shipped from the primary:
// mirrored into the local log byte-for-byte, then run through matcher
// maintenance exactly like recovery replay. The replication client's
// entry point; epoch names the primary log epoch the bytes came from.
func (s *System) ReplicaApply(epoch uint64, raw []byte, txns []wal.Txn) error {
	return s.eng.ApplyReplicaTxns(epoch, raw, txns)
}

// ReplicaBootstrap replaces the replica's working memory with a
// primary checkpoint snapshot and adopts it as the local log's
// checkpoint at the primary's epoch. Returns the tuple count restored.
func (s *System) ReplicaBootstrap(epoch uint64, dump []byte) (int, error) {
	return s.eng.ReplicaBootstrap(epoch, dump)
}

// ReplicaAdvanceEpoch mirrors a primary checkpoint boundary: the local
// log checkpoints its identical working memory under the primary's new
// epoch, keeping mirrored offsets aligned.
func (s *System) ReplicaAdvanceEpoch(epoch uint64) error {
	return s.eng.ReplicaAdvanceEpoch(epoch)
}

// Promote turns a replica into a primary. The caller must have stopped
// the replication client first (no concurrent applies). The sequence:
//
//  1. Truncate the mirrored log to its last complete committed-unit
//     boundary, discarding any partially shipped (never applied) tail.
//  2. Run the full integrity audit as a promotion gate: derived state
//     must match ground truth exactly, or promotion is refused with
//     ErrPromotionGate and the system stays a replica.
//  3. Checkpoint under a bumped epoch — the fencing token that
//     outdates the old primary's log — and open the write gate.
//
// The gate's audit report is returned in both outcomes (nil only on an
// earlier failure).
func (s *System) Promote() (*AuditReport, error) {
	if !s.eng.IsReplica() {
		return nil, ErrNotReplica
	}
	if _, err := s.eng.PromoteTruncate(); err != nil {
		return nil, fmt.Errorf("prodsys: promote truncate: %w", err)
	}
	if s.aud == nil {
		s.aud = audit.New(s.set, s.db, s.matcher, s.stats)
		s.aud.SetTracer(s.tracer)
	}
	var rep *audit.Report
	var gateErr error
	s.eng.WithMaintenanceLock(func() {
		rep, gateErr = s.aud.Gate()
	})
	out := convertAuditReport(rep)
	if gateErr != nil {
		return out, fmt.Errorf("%w: %v", ErrPromotionGate, gateErr)
	}
	if err := s.eng.PromoteFinish(); err != nil {
		return out, fmt.Errorf("prodsys: promote: %w", err)
	}
	s.replicaOf = ""
	return out, nil
}
